#ifndef GRIDVINE_RDF_TRIPLE_H_
#define GRIDVINE_RDF_TRIPLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/term.h"

namespace gridvine {

/// Position of a term within a triple or triple pattern.
enum class TriplePos { kSubject = 0, kPredicate = 1, kObject = 2 };

const char* TriplePosName(TriplePos pos);

/// The unit of data in GridVine's mediation layer (paper Section 2.2):
/// t = {subject, predicate, object}. Subject and predicate are URIs; the
/// object is a URI or a literal. Triples are immutable value types.
class Triple {
 public:
  Triple() = default;
  /// Callers must pass a URI subject/predicate; enforced by Validate().
  Triple(Term subject, Term predicate, Term object)
      : subject_(std::move(subject)),
        predicate_(std::move(predicate)),
        object_(std::move(object)) {}

  const Term& subject() const { return subject_; }
  const Term& predicate() const { return predicate_; }
  const Term& object() const { return object_; }
  const Term& at(TriplePos pos) const;

  /// Checks the RDF well-formedness constraints.
  Status Validate() const;

  /// Line serialization "kindS:value\tkindP:value\tkindO:value" with
  /// backslash escaping of tabs/backslashes; inverse of Parse.
  std::string Serialize() const;
  static Result<Triple> Parse(const std::string& line);

  std::string ToString() const {
    return "(" + subject_.ToString() + ", " + predicate_.ToString() + ", " +
           object_.ToString() + ")";
  }

  bool operator==(const Triple& other) const {
    return subject_ == other.subject_ && predicate_ == other.predicate_ &&
           object_ == other.object_;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }
  bool operator<(const Triple& other) const;

 private:
  Term subject_;
  Term predicate_;
  Term object_;
};

inline std::ostream& operator<<(std::ostream& os, const Triple& t) {
  return os << t.ToString();
}

/// Splits a serialized triple/pattern line into its three terms without
/// applying RDF validation (shared by Triple::Parse and
/// TriplePattern::Parse).
Result<std::vector<Term>> ParseTermFields(const std::string& line);

/// Globally unique identifier scheme (paper Section 2.2): local resource and
/// schema names are made global by concatenating the posting peer's logical
/// address π(p) with a hash of the local identifier:
/// "gv://<path>-<hash16>/<local>".
std::string MakeGlobalId(const std::string& peer_path,
                         const std::string& local_name);

}  // namespace gridvine

#endif  // GRIDVINE_RDF_TRIPLE_H_
