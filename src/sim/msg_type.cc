#include "sim/msg_type.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace gridvine {

namespace {

struct Registry {
  /// Guards every map/deque mutation. The registry used to be
  /// single-threaded like the simulator; the sharded engine's workers can
  /// intern a type on first sight of a message concurrently, so reads take a
  /// shared lock and first-sight interning upgrades to exclusive. Names are
  /// append-only in a deque (never relocated, never erased), so references
  /// returned to callers stay valid after the lock is released.
  mutable std::shared_mutex mu;
  /// Stable storage for names: ids index into `names`, and the string_view
  /// keys of `by_name` point into it (deque never relocates elements).
  std::deque<std::string> names;
  std::unordered_map<std::string_view, uint32_t> by_name;
  /// (outer id << 32 | inner id) -> composite id, so steady-state composite
  /// tag resolution is one integer hash lookup.
  std::unordered_map<uint64_t, uint32_t> composites;

  Registry() {
    names.emplace_back("?");
    by_name.emplace(names.back(), 0);
  }

  uint32_t Intern(std::string_view name) {
    {
      std::shared_lock lock(mu);
      auto it = by_name.find(name);
      if (it != by_name.end()) return it->second;
    }
    std::unique_lock lock(mu);
    return InternLocked(name);
  }

  uint32_t InternLocked(std::string_view name) {
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names.size());
    names.emplace_back(name);
    by_name.emplace(names.back(), id);
    return id;
  }
};

Registry& TheRegistry() {
  static Registry r;
  return r;
}

}  // namespace

MsgType MsgType::Intern(std::string_view name) {
  return MsgType(TheRegistry().Intern(name));
}

MsgType MsgType::Composite(MsgType outer, MsgType inner) {
  Registry& reg = TheRegistry();
  uint64_t key = (uint64_t(outer.id_) << 32) | inner.id_;
  {
    std::shared_lock lock(reg.mu);
    auto it = reg.composites.find(key);
    if (it != reg.composites.end()) return MsgType(it->second);
  }
  std::unique_lock lock(reg.mu);
  auto it = reg.composites.find(key);  // re-check after the upgrade gap
  if (it != reg.composites.end()) return MsgType(it->second);
  uint32_t id =
      reg.InternLocked(reg.names[outer.id_] + "/" + reg.names[inner.id_]);
  reg.composites.emplace(key, id);
  return MsgType(id);
}

MsgType MsgType::Find(std::string_view name) {
  Registry& reg = TheRegistry();
  std::shared_lock lock(reg.mu);
  auto it = reg.by_name.find(name);
  return it == reg.by_name.end() ? MsgType() : MsgType(it->second);
}

size_t MsgType::RegistryCount() {
  Registry& reg = TheRegistry();
  std::shared_lock lock(reg.mu);
  return reg.names.size();
}

const std::string& MsgType::NameOf(uint32_t id) {
  Registry& reg = TheRegistry();
  std::shared_lock lock(reg.mu);
  return id < reg.names.size() ? reg.names[id] : reg.names[0];
}

const std::string& MsgType::name() const { return NameOf(id_); }

}  // namespace gridvine
