#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gridvine {

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sorted_ = samples_.size() <= 1;
}

void SampleStats::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

void SampleStats::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

double SampleStats::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

double SampleStats::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / double(samples_.size());
}

double SampleStats::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / double(samples_.size()));
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: the smallest sample with at least p*n samples at or below
  // it. Rank ceil(p*n) (1-based), so p=0 pins to the minimum and p=1 to the
  // maximum exactly instead of relying on rounding.
  if (p <= 0.0) return samples_.front();
  size_t rank = size_t(std::ceil(p * double(samples_.size())));
  if (rank < 1) rank = 1;
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

double SampleStats::FractionAtMost(double bound) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), bound);
  return double(it - samples_.begin()) / double(samples_.size());
}

double SampleStats::Gini() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  double total = 0;
  for (double v : samples_) total += v;
  if (total <= 0) return 0;
  double weighted = 0;
  for (size_t i = 0; i < samples_.size(); ++i) {
    weighted += double(i + 1) * samples_[i];
  }
  double n = double(samples_.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::string SampleStats::Summary() const {
  std::ostringstream out;
  out << "n=" << count();
  if (!empty()) {
    out << " mean=" << Mean() << " p50=" << Median()
        << " p95=" << Percentile(0.95) << " max=" << Max();
  }
  return out.str();
}

const std::vector<double>& SampleStats::sorted() const {
  EnsureSorted();
  return samples_;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end());
  counts_.assign(edges_.size() + 1, 0);
}

Histogram Histogram::Exponential(double start, double factor, size_t count) {
  std::vector<double> edges;
  edges.reserve(count);
  double edge = start;
  for (size_t i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return Histogram(std::move(edges));
}

double Histogram::Percentile(double p) const {
  if (total_ == 0 || edges_.empty()) return 0;
  p = std::clamp(p, 0.0, 1.0);
  size_t rank = p <= 0.0 ? 1 : size_t(std::ceil(p * double(total_)));
  if (rank < 1) rank = 1;
  if (rank > total_) rank = total_;
  uint64_t seen = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // Bucket b spans [edges_[b-1], edges_[b]); answer the upper edge. The
      // underflow bucket answers edges_.front(), the overflow bucket has no
      // upper edge so it answers its lower bound, edges_.back().
      return b < edges_.size() ? edges_[b] : edges_.back();
    }
  }
  return edges_.back();
}

void Histogram::Add(double value) {
  size_t bucket =
      size_t(std::upper_bound(edges_.begin(), edges_.end(), value) -
             edges_.begin());
  ++counts_[bucket];
  ++total_;
}

std::string Histogram::Format(int bar_width) const {
  std::ostringstream out;
  uint64_t max_count = 1;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  auto row = [&](const std::string& label, uint64_t count) {
    int bar = int(double(bar_width) * double(count) / double(max_count));
    out << "  " << label;
    for (size_t pad = label.size(); pad < 18; ++pad) out << ' ';
    out << count;
    out << "  ";
    for (int i = 0; i < bar; ++i) out << '#';
    out << "\n";
  };
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::ostringstream label;
    if (b == 0) {
      label << "< " << edges_.front();
    } else if (b == counts_.size() - 1) {
      label << ">= " << edges_.back();
    } else {
      label << "[" << edges_[b - 1] << ", " << edges_[b] << ")";
    }
    row(label.str(), counts_[b]);
  }
  return out.str();
}

}  // namespace gridvine
