#ifndef GRIDVINE_RDF_TERM_DICTIONARY_H_
#define GRIDVINE_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace gridvine {

/// Dense integer handle for an interned Term. Ids are assigned contiguously
/// from 0 in interning order and are stable for the dictionary's lifetime.
using TermId = uint32_t;

/// Sentinel: "no term" (never a valid id).
inline constexpr TermId kNoTermId = UINT32_MAX;

/// Hash over (kind, value) — usable for unordered containers of Term.
struct TermHash {
  size_t operator()(const Term& t) const {
    size_t h = std::hash<std::string>()(t.value());
    // Splice the kind into the high bits so "uri x" != "literal x".
    return h ^ (size_t(t.kind()) * 0x9e3779b97f4a7c15ULL);
  }
};

/// String ⇄ id interning table for RDF terms.
///
/// Every distinct (kind, value) pair is stored exactly once; all further
/// occurrences are represented by a 4-byte TermId. This is the standard RDF
/// dictionary-encoding trick: the store hashes/compares fixed-width ids on
/// its hot paths and only touches strings when terms enter or leave the
/// system. Ids are never recycled — a dictionary only grows (callers that
/// erase data keep decode stability; see TripleStore's compaction notes).
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Returns the id of `term`, interning it first if absent.
  TermId Intern(const Term& term);

  /// Returns the id of `term` if already interned; nullopt otherwise.
  /// Never modifies the dictionary — the lookup path for query constants.
  std::optional<TermId> Lookup(const Term& term) const;

  /// The term for a previously returned id. Precondition: id < size().
  const Term& Decode(TermId id) const { return *terms_[id]; }

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  void Clear();

 private:
  // The map owns the Term; unordered_map nodes are address-stable, so the
  // decode table can point straight into them (no second string copy).
  std::unordered_map<Term, TermId, TermHash> ids_;
  std::vector<const Term*> terms_;
};

}  // namespace gridvine

#endif  // GRIDVINE_RDF_TERM_DICTIONARY_H_
