#include "pgrid/load_stats.h"

#include <algorithm>

namespace gridvine {

LoadStats ComputeLoadStatsFrom(const std::vector<uint64_t>& loads_in) {
  LoadStats stats;
  if (loads_in.empty()) return stats;
  std::vector<uint64_t> loads = loads_in;
  for (uint64_t l : loads) {
    stats.total += size_t(l);
    stats.max = std::max(stats.max, size_t(l));
  }
  stats.mean = double(stats.total) / double(loads.size());
  stats.max_over_mean = stats.mean > 0 ? double(stats.max) / stats.mean : 0;

  // Gini via the sorted-rank formula.
  std::sort(loads.begin(), loads.end());
  double n = double(loads.size());
  double weighted = 0;
  for (size_t i = 0; i < loads.size(); ++i) {
    weighted += double(i + 1) * double(loads[i]);
  }
  if (stats.total > 0) {
    stats.gini = (2.0 * weighted) / (n * double(stats.total)) - (n + 1.0) / n;
  }
  return stats;
}

LoadStats ComputeLoadStats(const std::vector<PGridPeer*>& peers) {
  std::vector<uint64_t> loads;
  loads.reserve(peers.size());
  for (const PGridPeer* p : peers) loads.push_back(p->StorageSize());
  return ComputeLoadStatsFrom(loads);
}

LoadStats ComputeRequestLoadStats(const std::vector<PGridPeer*>& peers) {
  std::vector<uint64_t> loads;
  loads.reserve(peers.size());
  for (const PGridPeer* p : peers) {
    loads.push_back(p->counters().extension_deliveries);
  }
  return ComputeLoadStatsFrom(loads);
}

}  // namespace gridvine
