#include "selforg/attribute_matcher.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(AttributeMatcherTest, IdenticalNormalizedNamesScoreHigh) {
  AttributeMatcher m;
  // organism_name vs OrganismName normalize identically.
  double s = m.Score("A#organism_name", "B#OrganismName", {}, {});
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(AttributeMatcherTest, DissimilarNamesScoreLow) {
  AttributeMatcher m;
  EXPECT_LT(m.Score("A#Organism", "B#PubMedRef", {}, {}), 0.3);
}

TEST(AttributeMatcherTest, ValueOverlapBoostsScore) {
  AttributeMatcher m;
  AttributeMatcher::ValueSets a, b;
  a["A#Species"] = {"Aspergillus niger", "Homo sapiens", "Mus musculus"};
  b["B#TaxonName"] = {"Aspergillus niger", "Homo sapiens", "Mus musculus"};
  double with_values = m.Score("A#Species", "B#TaxonName", a, b);
  double without = m.Score("A#Species", "B#TaxonName", {}, {});
  // "species" and "taxonname" are lexically unrelated; identical value sets
  // must rescue the pair.
  EXPECT_LT(without, 0.4);
  EXPECT_GE(with_values, 0.5);
  EXPECT_GT(with_values, without);
}

TEST(AttributeMatcherTest, DisjointValuesSuppressScore) {
  AttributeMatcher m;
  AttributeMatcher::ValueSets a, b;
  a["A#Length"] = {"100", "200", "300"};
  b["B#SeqLen"] = {"5061", "9606", "4932"};
  // Lexical "length" vs "seqlen" is mediocre AND the values disagree.
  EXPECT_LT(m.Score("A#Length", "B#SeqLen", a, b), 0.45);
}

TEST(AttributeMatcherTest, MatchIsOneToOneGreedy) {
  Schema a("A", "d", {"Organism", "SequenceLength"});
  Schema b("B", "d", {"OrganismName", "Length", "SeqLength"});
  AttributeMatcher m;
  auto corr = m.Match(a, b, {}, {});
  // Organism -> OrganismName, SequenceLength -> SeqLength (best one-to-one).
  ASSERT_EQ(corr.size(), 2u);
  std::map<std::string, std::string> got;
  for (const auto& c : corr) got[c.source_attr_uri] = c.target_attr_uri;
  EXPECT_EQ(got["A#Organism"], "B#OrganismName");
  EXPECT_EQ(got["A#SequenceLength"], "B#SeqLength");
}

TEST(AttributeMatcherTest, ThresholdFiltersWeakPairs) {
  Schema a("A", "d", {"Organism"});
  Schema b("B", "d", {"PubMedRef"});
  AttributeMatcher strict(AttributeMatcher::Options{0.5, 0.5, 0.45});
  EXPECT_TRUE(strict.Match(a, b, {}, {}).empty());
  AttributeMatcher lax(AttributeMatcher::Options{0.5, 0.5, 0.0});
  EXPECT_EQ(lax.Match(a, b, {}, {}).size(), 1u);
}

TEST(AttributeMatcherTest, ScoresAreSymmetricInNames) {
  AttributeMatcher m;
  EXPECT_DOUBLE_EQ(m.Score("A#GeneName", "B#Gene", {}, {}),
                   m.Score("B#Gene", "A#GeneName", {}, {}));
}

TEST(AttributeMatcherTest, WeightsRenormalized) {
  AttributeMatcher::Options opts;
  opts.lexical_weight = 2.0;
  opts.value_weight = 0.0;
  AttributeMatcher m(opts);
  AttributeMatcher::ValueSets a, b;
  a["A#Organism"] = {"x"};
  b["B#Organism"] = {"y"};
  // Pure lexical despite value sets present (value weight 0): identical
  // names -> 1.0.
  EXPECT_DOUBLE_EQ(m.Score("A#Organism", "B#Organism", a, b), 1.0);
}

TEST(AttributeMatcherTest, DeterministicTieBreaking) {
  Schema a("A", "d", {"x1"});
  Schema b("B", "d", {"y1", "y2"});
  AttributeMatcher m(AttributeMatcher::Options{0.5, 0.5, 0.0});
  auto c1 = m.Match(a, b, {}, {});
  auto c2 = m.Match(a, b, {}, {});
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].target_attr_uri, c2[0].target_attr_uri);
}

}  // namespace
}  // namespace gridvine
