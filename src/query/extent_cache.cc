#include "query/extent_cache.h"

#include "common/mem_estimate.h"

namespace gridvine {

namespace {
uint32_t Fnv1a32(std::string_view s) {
  uint32_t h = 2166136261u;
  for (char c : s) {
    h ^= uint8_t(c);
    h *= 16777619u;
  }
  return h;
}
}  // namespace

uint64_t ExtentCache::KeyOf(std::string_view pattern, std::string_view probes) {
  auto [it, _] = pattern_ids_.emplace(std::string(pattern),
                                      uint32_t(pattern_ids_.size()));
  return (uint64_t(it->second) << 32) | Fnv1a32(probes);
}

size_t ExtentCache::ChargeOf(std::string_view probes, const Extent& e) {
  return sizeof(Entry) + probes.size() + e.rows.size() +
         e.probe_index.size() * sizeof(uint32_t);
}

const ExtentCache::Extent* ExtentCache::Lookup(std::string_view pattern,
                                               std::string_view probes,
                                               uint64_t store_version) {
  auto it = map_.find(KeyOf(pattern, probes));
  if (it == map_.end() || it->second.probes != probes) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.store_version != store_version) {
    ++stats_.invalidations;
    ++stats_.misses;
    EraseEntry(it);
    return nullptr;
  }
  ++stats_.hits;
  if (it->second.extent.row_count == 0) ++stats_.negative_hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.extent;
}

void ExtentCache::Insert(std::string_view pattern, std::string_view probes,
                         uint64_t store_version, Extent extent) {
  uint64_t key = KeyOf(pattern, probes);
  auto it = map_.find(key);
  if (it != map_.end()) EraseEntry(it);
  Entry e;
  e.probes = std::string(probes);
  e.store_version = store_version;
  e.extent = std::move(extent);
  e.charge = ChargeOf(probes, e.extent);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  bytes_ += e.charge;
  map_.emplace(key, std::move(e));
  EvictToBounds();
}

void ExtentCache::EraseEntry(
    std::unordered_map<uint64_t, Entry>::iterator it) {
  bytes_ -= it->second.charge;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void ExtentCache::EvictToBounds() {
  while (!map_.empty() &&
         (map_.size() > options_.max_entries || bytes_ > options_.max_bytes)) {
    auto it = map_.find(lru_.back());
    ++stats_.evictions;
    EraseEntry(it);
  }
}

void ExtentCache::Clear() {
  map_.clear();
  lru_.clear();
  pattern_ids_.clear();
  bytes_ = 0;
}

size_t ExtentCache::MemoryFootprint() const {
  size_t total = HashMapBytes(map_) + HashMapBytes(pattern_ids_) +
                 lru_.size() * (sizeof(uint64_t) + 2 * sizeof(void*));
  for (const auto& [key, entry] : map_) {
    (void)key;
    total += StringHeapBytes(entry.probes) + StringHeapBytes(entry.extent.rows) +
             entry.extent.probe_index.capacity() * sizeof(uint32_t);
  }
  for (const auto& [pat, id] : pattern_ids_) {
    (void)id;
    total += StringHeapBytes(pat);
  }
  return total;
}

}  // namespace gridvine
