#include "query/stats/stats_cache.h"

#include "common/mem_estimate.h"

namespace gridvine {

const StoreSketch* StatsCache::Lookup(const std::string& region, double now) {
  auto it = sketches_.find(region);
  if (it == sketches_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - it->second.fetched_at > options_.ttl) {
    sketches_.erase(it);
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.sketch;
}

bool StatsCache::Fresh(const std::string& region, double now) const {
  auto it = sketches_.find(region);
  return it != sketches_.end() && now - it->second.fetched_at <= options_.ttl;
}

void StatsCache::Put(const std::string& region, StoreSketch sketch,
                     double now) {
  ++stats_.refreshes;
  sketches_[region] = Entry{std::move(sketch), now};
}

void StatsCache::Observe(const std::string& pattern, double rows, double now) {
  ++stats_.observations;
  if (observed_.size() >= options_.max_observed &&
      observed_.find(pattern) == observed_.end()) {
    // Evict the stalest observation to stay bounded.
    auto oldest = observed_.begin();
    for (auto it = observed_.begin(); it != observed_.end(); ++it) {
      if (it->second.at < oldest->second.at) oldest = it;
    }
    observed_.erase(oldest);
  }
  observed_[pattern] = Observation{rows, now};
}

std::optional<double> StatsCache::ObservedRows(const std::string& pattern,
                                               double now) const {
  auto it = observed_.find(pattern);
  if (it == observed_.end() || now - it->second.at > options_.ttl) {
    return std::nullopt;
  }
  return it->second.rows;
}

size_t StatsCache::MemoryFootprint() const {
  size_t bytes = sizeof(StatsCache) + HashMapBytes(observed_);
  for (const auto& [region, entry] : sketches_) {
    bytes += region.capacity() + sizeof(Entry) +
             entry.sketch.MemoryFootprint();
  }
  for (const auto& [pattern, obs] : observed_) bytes += pattern.capacity();
  return bytes;
}

}  // namespace gridvine
