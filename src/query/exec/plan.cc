#include "query/exec/plan.h"

#include <sstream>

namespace gridvine {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kRemoteScan:
      return "RemoteScan";
    case OpKind::kBindJoin:
      return "BindJoin";
    case OpKind::kLocalJoin:
      return "LocalJoin";
    case OpKind::kExistenceCheck:
      return "ExistenceCheck";
    case OpKind::kProject:
      return "Project";
    case OpKind::kDedup:
      return "Dedup";
  }
  return "?";
}

std::vector<size_t> PhysicalPlan::Order() const {
  std::vector<size_t> order;
  for (const PlanGroup& g : groups) {
    order.insert(order.end(), g.patterns.begin(), g.patterns.end());
  }
  return order;
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    os << "group " << gi << ": ";
    for (size_t si = 0; si < groups[gi].steps.size(); ++si) {
      const PlanStep& s = groups[gi].steps[si];
      if (si > 0) os << " -> ";
      os << OpKindName(s.kind);
      if (s.pattern != PlanStep::kNoPattern) os << "(p" << s.pattern << ")";
    }
    os << "\n";
  }
  os << "tail: ";
  for (size_t si = 0; si < tail.size(); ++si) {
    if (si > 0) os << " -> ";
    os << OpKindName(tail[si].kind);
  }
  return os.str();
}

}  // namespace gridvine
