#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite — the exact
# sequence ROADMAP.md names as the bar every change must keep green.
#
#   $ scripts/check.sh            # RelWithDebInfo build + ctest
#   $ scripts/check.sh --asan     # ASan/UBSan build, runs store + query tests
#   $ scripts/check.sh --tsan     # TSan build, runs the sharded-engine tests
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [[ "${1:-}" == "--tsan" ]]; then
  # ThreadSanitizer over everything that spins up the worker pool: the
  # sharded determinism + chaos suites (real threads at shards 2/4), plus
  # the single-threaded engine tests for the shared seams they exercise.
  cmake --preset tsan
  cmake --build build-tsan -j "$(nproc)" --target sharded_determinism_test \
    sharded_soak_test simulator_test network_test fault_soak_test
  export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1
  ./build-tsan/tests/sharded_determinism_test
  ./build-tsan/tests/sharded_soak_test
  ./build-tsan/tests/simulator_test
  ./build-tsan/tests/network_test
  # Continuous self-organization on the sharded engine: real worker threads
  # under the organizer's fetch/push traffic at shards 2/4.
  ./build-tsan/tests/fault_soak_test --gtest_filter='SelforgSoakTest.Shard*'
  echo "tsan run clean"
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-san -S . -DGV_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-san -j "$(nproc)" --target triple_store_test query_test \
    property_test
  export ASAN_OPTIONS=detect_leaks=1
  export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
  ./build-san/tests/triple_store_test
  ./build-san/tests/query_test
  ./build-san/tests/property_test
  echo "sanitizer run clean"
  exit 0
fi

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure
