#include "rdf/triple_pattern.h"

#include <algorithm>

#include "common/string_util.h"

namespace gridvine {

const Term& TriplePattern::at(TriplePos pos) const {
  switch (pos) {
    case TriplePos::kSubject:
      return subject_;
    case TriplePos::kPredicate:
      return predicate_;
    case TriplePos::kObject:
      return object_;
  }
  return subject_;
}

TriplePattern TriplePattern::With(TriplePos pos, Term term) const {
  TriplePattern out = *this;
  switch (pos) {
    case TriplePos::kSubject:
      out.subject_ = std::move(term);
      break;
    case TriplePos::kPredicate:
      out.predicate_ = std::move(term);
      break;
    case TriplePos::kObject:
      out.object_ = std::move(term);
      break;
  }
  return out;
}

namespace {

bool TermMatches(const Term& pattern_term, const Term& data_term) {
  if (pattern_term.IsVariable()) return true;
  if (pattern_term.IsLiteral() &&
      pattern_term.value().find('%') != std::string::npos) {
    return data_term.IsLiteral() &&
           LikeMatch(data_term.value(), pattern_term.value());
  }
  return pattern_term == data_term;
}

}  // namespace

bool TriplePattern::Matches(const Triple& t) const {
  if (!TermMatches(subject_, t.subject())) return false;
  if (!TermMatches(predicate_, t.predicate())) return false;
  if (!TermMatches(object_, t.object())) return false;
  // Repeated variables must bind consistently, e.g. (?x, p, ?x).
  auto binding_of = [&](TriplePos pos) -> const Term& { return t.at(pos); };
  const TriplePos kAll[] = {TriplePos::kSubject, TriplePos::kPredicate,
                            TriplePos::kObject};
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      const Term& a = at(kAll[i]);
      const Term& b = at(kAll[j]);
      if (a.IsVariable() && b.IsVariable() && a.value() == b.value() &&
          binding_of(kAll[i]) != binding_of(kAll[j])) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  for (TriplePos pos : {TriplePos::kSubject, TriplePos::kPredicate,
                        TriplePos::kObject}) {
    const Term& t = at(pos);
    if (t.IsVariable() &&
        std::find(out.begin(), out.end(), t.value()) == out.end()) {
      out.push_back(t.value());
    }
  }
  return out;
}

bool TriplePattern::IsExactConstant(TriplePos pos) const {
  const Term& t = at(pos);
  if (t.IsVariable()) return false;
  if (t.IsLiteral() && t.value().find('%') != std::string::npos) return false;
  return true;
}

std::optional<TriplePos> TriplePattern::RoutingConstant() const {
  // A subject names one resource; an object value is usually rarer than a
  // predicate (every triple of a relation shares the predicate), hence the
  // specificity order subject > object > predicate.
  if (IsExactConstant(TriplePos::kSubject)) return TriplePos::kSubject;
  if (IsExactConstant(TriplePos::kObject)) return TriplePos::kObject;
  if (IsExactConstant(TriplePos::kPredicate)) return TriplePos::kPredicate;
  return std::nullopt;
}

std::optional<std::string> TriplePattern::ObjectRangePrefix() const {
  if (!object_.IsLiteral()) return std::nullopt;
  size_t wildcard = object_.value().find('%');
  if (wildcard == std::string::npos || wildcard == 0) return std::nullopt;
  return object_.value().substr(0, wildcard);
}

std::string TriplePattern::Serialize() const {
  // Reuse Triple's field encoding by building a pseudo-triple: the kinds tag
  // each field, so variables survive the round trip.
  Triple t(subject_, predicate_, object_);
  return t.Serialize();
}

Result<TriplePattern> TriplePattern::Parse(const std::string& line) {
  GV_ASSIGN_OR_RETURN(auto terms, ParseTermFields(line));
  return TriplePattern(terms[0], terms[1], terms[2]);
}

}  // namespace gridvine
