#include "common/string_util.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"s", "p", "o"};
  EXPECT_EQ(Join(parts, "|"), "s|p|o");
  EXPECT_EQ(Join({}, "|"), "");
  EXPECT_EQ(Join({"one"}, "|"), "one");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("EMBL#Organism", "EMBL#"));
  EXPECT_FALSE(StartsWith("EMBL", "EMBL#"));
  EXPECT_TRUE(EndsWith("query.sparql", ".sparql"));
  EXPECT_FALSE(EndsWith("a", "ab"));
}

TEST(LikeMatchTest, ExactWithoutWildcards) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
}

TEST(LikeMatchTest, ContainsPattern) {
  EXPECT_TRUE(LikeMatch("Aspergillus niger", "%Aspergillus%"));
  EXPECT_TRUE(LikeMatch("Aspergillus", "%Aspergillus%"));
  EXPECT_FALSE(LikeMatch("Penicillium", "%Aspergillus%"));
}

TEST(LikeMatchTest, AnchoredPatterns) {
  EXPECT_TRUE(LikeMatch("protein kinase", "protein%"));
  EXPECT_FALSE(LikeMatch("my protein", "protein%"));
  EXPECT_TRUE(LikeMatch("my protein", "%protein"));
  EXPECT_FALSE(LikeMatch("protein x", "%protein"));
}

TEST(LikeMatchTest, MultipleWildcards) {
  EXPECT_TRUE(LikeMatch("abcXdefYghi", "%abc%def%ghi%"));
  EXPECT_TRUE(LikeMatch("abcdefghi", "abc%ghi"));
  EXPECT_FALSE(LikeMatch("abcdefgh", "abc%ghi"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_FALSE(LikeMatch("x", ""));
}

TEST(LikeMatchTest, BacktrackingCase) {
  // Requires re-expanding the first '%' after a partial match.
  EXPECT_TRUE(LikeMatch("aXbYb", "%b"));
  EXPECT_TRUE(LikeMatch("mississippi", "%issip%"));
}

TEST(EditDistanceTest, KnownDistances) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("organism", "organism"), 0u);
  EXPECT_EQ(EditDistance("organism", "organisme"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("abcdef", "azced"), EditDistance("azced", "abcdef"));
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  double s = EditSimilarity("Organism", "OrganismName");
  EXPECT_GT(s, 0.5);
  EXPECT_LT(s, 1.0);
}

TEST(TrigramTest, PaddedTrigrams) {
  auto t = Trigrams("go");
  EXPECT_TRUE(t.count("$$g"));
  EXPECT_TRUE(t.count("$go"));
  EXPECT_TRUE(t.count("go$"));
  EXPECT_TRUE(t.count("o$$"));
  EXPECT_EQ(t.size(), 4u);
}

TEST(TrigramSimilarityTest, SimilarAndDissimilar) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("organism", "organism"), 1.0);
  EXPECT_GT(TrigramSimilarity("organism", "organisms"), 0.7);
  EXPECT_LT(TrigramSimilarity("organism", "sequence"), 0.3);
  // Case-insensitive.
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ABC", "abc"), 1.0);
}

TEST(JaccardTest, SetOverlap) {
  std::set<std::string> a = {"x", "y", "z"};
  std::set<std::string> b = {"y", "z", "w"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
}

}  // namespace
}  // namespace gridvine
