#include "query/rdql_parser.h"

#include <cctype>

namespace gridvine {

namespace {

/// Minimal recursive-descent scanner over the query text. Error messages
/// carry the character offset to make malformed queries easy to fix.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes a case-insensitive keyword; false (no consumption) otherwise.
  bool ConsumeKeyword(const std::string& keyword) {
    SkipSpace();
    if (pos_ + keyword.size() > text_.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    // Keyword must not run into an identifier character.
    size_t after = pos_ + keyword.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument("RDQL parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  /// ?name — letters, digits, '_' after the '?'.
  Result<std::string> ParseVarName() {
    SkipSpace();
    if (!ConsumeChar('?')) return Error("expected '?variable'");
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      name.push_back(text_[pos_++]);
    }
    if (name.empty()) return Error("empty variable name after '?'");
    return name;
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("expected term");
    char c = text_[pos_];
    if (c == '?') {
      GV_ASSIGN_OR_RETURN(std::string name, ParseVarName());
      return Term::Var(name);
    }
    if (c == '<') {
      ++pos_;
      std::string uri;
      while (pos_ < text_.size() && text_[pos_] != '>') {
        uri.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) return Error("unterminated URI (missing '>')");
      ++pos_;  // '>'
      if (uri.empty()) return Error("empty URI");
      return Term::Uri(uri);
    }
    if (c == '"') {
      ++pos_;
      std::string lit;
      bool escaped = false;
      while (pos_ < text_.size()) {
        char d = text_[pos_++];
        if (escaped) {
          lit.push_back(d);
          escaped = false;
        } else if (d == '\\') {
          escaped = true;
        } else if (d == '"') {
          return Term::Literal(lit);
        } else {
          lit.push_back(d);
        }
      }
      return Error("unterminated literal (missing '\"')");
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<TriplePattern> ParsePattern() {
    if (!ConsumeChar('(')) return Error("expected '(' to start a pattern");
    GV_ASSIGN_OR_RETURN(Term s, ParseTerm());
    if (!ConsumeChar(',')) return Error("expected ',' after subject");
    GV_ASSIGN_OR_RETURN(Term p, ParseTerm());
    if (!ConsumeChar(',')) return Error("expected ',' after predicate");
    GV_ASSIGN_OR_RETURN(Term o, ParseTerm());
    if (!ConsumeChar(')')) return Error("expected ')' to close the pattern");
    return TriplePattern(std::move(s), std::move(p), std::move(o));
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseRdql(const std::string& text) {
  Scanner scan(text);
  if (!scan.ConsumeKeyword("SELECT")) {
    return scan.Error("query must start with SELECT");
  }
  std::vector<std::string> vars;
  do {
    GV_ASSIGN_OR_RETURN(std::string name, scan.ParseVarName());
    vars.push_back(std::move(name));
  } while (scan.ConsumeChar(','));

  if (!scan.ConsumeKeyword("WHERE")) {
    return scan.Error("expected WHERE after the variable list");
  }
  std::vector<TriplePattern> patterns;
  do {
    GV_ASSIGN_OR_RETURN(TriplePattern p, scan.ParsePattern());
    patterns.push_back(std::move(p));
  } while (scan.ConsumeChar(','));

  if (!scan.AtEnd()) {
    return scan.Error("trailing input after the pattern list");
  }
  ConjunctiveQuery query(std::move(vars), std::move(patterns));
  GV_RETURN_NOT_OK(query.Validate());
  return query;
}

Result<TriplePatternQuery> ParseRdqlSingle(const std::string& text) {
  GV_ASSIGN_OR_RETURN(ConjunctiveQuery cq, ParseRdql(text));
  if (cq.patterns().size() != 1) {
    return Status::InvalidArgument(
        "expected a single triple pattern, got " +
        std::to_string(cq.patterns().size()));
  }
  if (cq.distinguished_vars().size() != 1) {
    return Status::InvalidArgument(
        "expected a single distinguished variable, got " +
        std::to_string(cq.distinguished_vars().size()));
  }
  TriplePatternQuery q(cq.distinguished_vars()[0], cq.patterns()[0]);
  GV_RETURN_NOT_OK(q.Validate());
  return q;
}

}  // namespace gridvine
