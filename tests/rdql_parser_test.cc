#include "query/rdql_parser.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(RdqlParserTest, SinglePatternQuery) {
  auto q = ParseRdqlSingle(
      "SELECT ?x WHERE (?x, <EMBL#Organism>, \"%Aspergillus%\")");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->distinguished_var(), "x");
  EXPECT_TRUE(q->pattern().subject().IsVariable());
  EXPECT_EQ(q->pattern().predicate(), Term::Uri("EMBL#Organism"));
  EXPECT_EQ(q->pattern().object(), Term::Literal("%Aspergillus%"));
}

TEST(RdqlParserTest, ConjunctiveQuery) {
  auto q = ParseRdql(
      "SELECT ?x, ?l WHERE (?x, <EMBL#Organism>, \"%niger%\"),"
      " (?x, <EMBL#Length>, ?l)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->distinguished_vars(),
            (std::vector<std::string>{"x", "l"}));
  ASSERT_EQ(q->patterns().size(), 2u);
  EXPECT_EQ(q->patterns()[1].predicate().value(), "EMBL#Length");
}

TEST(RdqlParserTest, KeywordsCaseInsensitiveAndFreeWhitespace) {
  auto q = ParseRdql(
      "  select   ?x\n  where\n    ( ?x , <p> , \"v\" )  ");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns().size(), 1u);
}

TEST(RdqlParserTest, UriObject) {
  auto q = ParseRdqlSingle("SELECT ?x WHERE (?x, <rdf:type>, <bio:Protein>)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->pattern().object().IsUri());
  EXPECT_EQ(q->pattern().object().value(), "bio:Protein");
}

TEST(RdqlParserTest, EscapedLiteral) {
  auto q = ParseRdqlSingle(
      "SELECT ?x WHERE (?x, <p>, \"say \\\"hi\\\" \\\\ done\")");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->pattern().object().value(), "say \"hi\" \\ done");
}

TEST(RdqlParserTest, VariablePredicate) {
  auto q = ParseRdqlSingle("SELECT ?p WHERE (<s1>, ?p, ?o)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->pattern().predicate().IsVariable());
}

TEST(RdqlParserTest, RejectsMalformedQueries) {
  // Missing SELECT.
  EXPECT_FALSE(ParseRdql("WHERE (?x, <p>, ?y)").ok());
  // Missing WHERE.
  EXPECT_FALSE(ParseRdql("SELECT ?x (?x, <p>, ?y)").ok());
  // Unterminated URI.
  EXPECT_FALSE(ParseRdql("SELECT ?x WHERE (?x, <p, ?y)").ok());
  // Unterminated literal.
  EXPECT_FALSE(ParseRdql("SELECT ?x WHERE (?x, <p>, \"v)").ok());
  // Missing closing paren.
  EXPECT_FALSE(ParseRdql("SELECT ?x WHERE (?x, <p>, ?y").ok());
  // Empty variable.
  EXPECT_FALSE(ParseRdql("SELECT ? WHERE (?x, <p>, ?y)").ok());
  // Trailing junk.
  EXPECT_FALSE(ParseRdql("SELECT ?x WHERE (?x, <p>, ?y) garbage").ok());
  // Selected variable unbound.
  EXPECT_FALSE(ParseRdql("SELECT ?z WHERE (?x, <p>, ?y)").ok());
  // Empty URI.
  EXPECT_FALSE(ParseRdql("SELECT ?x WHERE (?x, <>, ?y)").ok());
}

TEST(RdqlParserTest, ErrorMessagesCarryOffset) {
  auto r = ParseRdql("SELECT ?x WHERE [?x, <p>, ?y]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(RdqlParserTest, SingleRejectsMultiPattern) {
  EXPECT_FALSE(
      ParseRdqlSingle("SELECT ?x WHERE (?x, <p>, ?y), (?x, <q>, ?z)").ok());
  EXPECT_FALSE(ParseRdqlSingle("SELECT ?x, ?y WHERE (?x, <p>, ?y)").ok());
}

TEST(RdqlParserTest, RoundTripThroughToString) {
  // The paper's running example parses and prints back in SearchFor form.
  auto q = ParseRdqlSingle(
      "SELECT ?x WHERE (?x, <EMBL#Organism>, \"%Aspergillus%\")");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(),
            "SearchFor(x? : (?x, <EMBL#Organism>, \"%Aspergillus%\"))");
}

TEST(RdqlParserTest, KeywordPrefixIdentifiersNotConfused) {
  // "SELECTx" must not parse as the SELECT keyword.
  EXPECT_FALSE(ParseRdql("SELECTx ?x WHERE (?x, <p>, ?y)").ok());
}

}  // namespace
}  // namespace gridvine
