// Walk-through of the paper's Figure 2: a query posed against the EMBL
// schema is reformulated through a schema mapping into the EMP schema, and
// the results of both are aggregated. Shows the iterative strategy (the
// issuer reformulates) side by side with the recursive one (intermediate
// peers reformulate), with message accounting.
//
//   $ ./examples/reformulation_demo

#include <cstdio>

#include "gridvine/gridvine_network.h"

using namespace gridvine;

namespace {

uint64_t TotalMessages(GridVineNetwork& net) {
  return net.network()->stats().messages_sent;
}

void RunMode(GridVineNetwork& net, ReformulationMode mode, const char* name) {
  TriplePatternQuery query(
      "x", TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                         Term::Literal("%Aspergillus%")));
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  opts.mode = mode;
  opts.timeout = 5.0;

  uint64_t before = TotalMessages(net);
  auto result = net.SearchFor(12, query, opts);
  uint64_t messages = TotalMessages(net) - before;

  std::printf("--- %s reformulation ---\n", name);
  std::printf("1) SearchFor(x1? : (?x, EMBL#Organism, %%Aspergillus%%))\n");
  std::printf("2) mapping EMBL#Organism -> EMP#SystematicName applied\n");
  std::printf("3) aggregated results:\n");
  for (const auto& item : result.items) {
    std::printf("   x = %-16s  [schema %s, %d mapping(s), %.0f ms]\n",
                item.value.value().c_str(), item.schema.c_str(),
                item.mapping_path_len, item.arrival * 1000);
  }
  std::printf("   schemas answered: %zu, network messages: %llu\n\n",
              result.schemas_answered, (unsigned long long)messages);
}

}  // namespace

int main() {
  GridVineNetwork::Options options;
  options.num_peers = 32;
  options.key_depth = 12;
  options.seed = 7;
  options.latency = GridVineNetwork::LatencyKind::kConstant;
  options.latency_param = 0.015;
  GridVineNetwork net(options);

  // Two schemas describing the same kind of data with different vocabulary.
  if (!net.InsertSchema(0, Schema("EMBL", "bio", {"Organism"})).ok() ||
      !net.InsertSchema(1, Schema("EMP", "bio", {"SystematicName"})).ok()) {
    return 1;
  }

  // EMBL data (two matching sequences) and EMP data (one matching entry) —
  // exactly the Figure 2 setting.
  net.InsertTriple(0, Triple(Term::Uri("EMBL:A78712"),
                             Term::Uri("EMBL#Organism"),
                             Term::Literal("Aspergillus niger")));
  net.InsertTriple(0, Triple(Term::Uri("EMBL:A78767"),
                             Term::Uri("EMBL#Organism"),
                             Term::Literal("Aspergillus niger")));
  net.InsertTriple(1, Triple(Term::Uri("NEN94295-05"),
                             Term::Uri("EMP#SystematicName"),
                             Term::Literal("Aspergillus niger var. x")));

  // The pairwise GAV mapping of Figure 2.
  SchemaMapping mapping("embl-to-emp", "EMBL", "EMP");
  mapping.AddCorrespondence("EMBL#Organism", "EMP#SystematicName").ok();
  mapping.set_bidirectional(true);
  if (!net.InsertMapping(0, mapping).ok()) return 1;
  std::printf("mapping inserted: EMBL#Organism <-> EMP#SystematicName\n\n");

  RunMode(net, ReformulationMode::kIterative, "iterative");
  RunMode(net, ReformulationMode::kRecursive, "recursive");
  return 0;
}
