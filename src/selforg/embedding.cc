#include "selforg/embedding.h"

#include <cmath>
#include <cstdint>

#include "common/string_util.h"

namespace gridvine {

namespace {

/// Same normalization the lexical channel uses, so "Organism_Name" and
/// "organismname" land on the same trigrams.
std::string NormalizeToken(const std::string& s) {
  std::string out;
  for (char c : ToLower(s)) {
    if (c != '_' && c != '-' && c != ' ') out.push_back(c);
  }
  return out;
}

/// FNV-1a: stable across platforms (std::hash is not specified to be).
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Feature-hashes every character trigram (with boundary padding) of
/// `token` into `vec`, weight per occurrence. Sign hash keeps collisions
/// unbiased.
void AddTrigrams(const std::string& token, float weight,
                 std::vector<float>* vec) {
  if (token.empty()) return;
  std::string padded = "^" + token + "$";
  if (padded.size() < 3) return;
  const size_t dim = vec->size();
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    uint64_t h = Fnv1a(padded.substr(i, 3));
    size_t bucket = size_t(h % dim);
    float sign = ((h >> 32) & 1) ? 1.0f : -1.0f;
    (*vec)[bucket] += sign * weight;
  }
}

}  // namespace

Embedding EmbedAttribute(const std::string& local_name,
                         const std::set<std::string>& values, int dim) {
  Embedding vec(dim > 0 ? size_t(dim) : 0, 0.0f);
  if (vec.empty()) return vec;
  AddTrigrams(NormalizeToken(local_name), 1.0f, &vec);
  if (!values.empty()) {
    // Value trigrams share the name's total mass so a large sample cannot
    // drown out the name signal.
    float w = 1.0f / float(values.size());
    for (const auto& v : values) AddTrigrams(NormalizeToken(v), w, &vec);
  }
  double norm = 0;
  for (float x : vec) norm += double(x) * double(x);
  if (norm > 0) {
    float inv = float(1.0 / std::sqrt(norm));
    for (float& x : vec) x *= inv;
  }
  return vec;
}

double CosineSimilarity(const Embedding& a, const Embedding& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += double(a[i]) * double(b[i]);
    na += double(a[i]) * double(a[i]);
    nb += double(b[i]) * double(b[i]);
  }
  if (na <= 0 || nb <= 0) return 0.0;
  double cos = dot / std::sqrt(na * nb);
  // Sign-hashed features make small negative cosines possible; clamp into
  // the score range the matcher blends.
  return cos < 0 ? 0.0 : (cos > 1 ? 1.0 : cos);
}

}  // namespace gridvine
