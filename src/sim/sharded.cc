#include "sim/sharded.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "common/metrics.h"

namespace gridvine {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

std::string_view ShardDropCauseName(DropCause cause) {
  switch (cause) {
    case DropCause::kEndpoint: return "endpoint";
    case DropCause::kLoss: return "loss";
    case DropCause::kBurstLoss: return "burst";
    case DropCause::kPartition: return "partition";
  }
  return "?";
}
}  // namespace

void ShardSimulator::ScheduleAt(SimTime t, EventFn fn) {
  ScheduleKeyedAt(t, engine_->NextSubkey(current_actor_), std::move(fn));
}

/// The Network facade one shard's peers talk to. Every operation delegates
/// to the engine; the base-class transport state (latency, rng, node slots)
/// is unused — only the inherited per-lane NetworkStats and the interface
/// matter. One lane is touched by exactly one worker thread during epochs:
/// sends by actors the shard owns, deliveries to nodes the shard owns.
class ShardedNetwork::ShardLane : public Network {
 public:
  NodeId AddNode(NetworkNode* node) override { return engine_->AddNode(node); }
  void SetAlive(NodeId id, bool alive) override {
    engine_->SetAlive(id, alive);
  }
  bool IsAlive(NodeId id) const override { return engine_->IsAlive(id); }
  size_t size() const override { return engine_->size(); }
  void Send(NodeId from, NodeId to,
            std::shared_ptr<const MessageBody> body) override {
    engine_->DoSend(shard_, this, from, to, std::move(body));
  }

 private:
  friend class ShardedNetwork;
  ShardLane(ShardedNetwork* engine, uint32_t shard, Simulator* sim)
      : Network(sim, nullptr, Rng(0), 0.0), engine_(engine), shard_(shard) {}

  ShardedNetwork* engine_;
  uint32_t shard_;
};

ShardedNetwork::ShardedNetwork(Options opts)
    : shards_(opts.shards == 0 ? 1 : opts.shards),
      seed_(opts.seed),
      loss_probability_(opts.loss_probability),
      latency_(std::move(opts.latency)),
      external_rng_(Mix64(opts.seed ^ 0xE7037ED1A0B428DBULL)) {
  assert(latency_ != nullptr);
  lookahead_ = latency_->MinDelay();
  assert(lookahead_ > 0 && "parallel lookahead needs MinDelay() > 0");
  if (lookahead_ <= 0) lookahead_ = 1e-9;  // still terminates, just slowly

  sims_.reserve(shards_);
  lanes_.reserve(shards_);
  tracers_.reserve(shards_);
  for (uint32_t s = 0; s < shards_; ++s) {
    auto sim = std::make_unique<ShardSimulator>();
    sim->engine_ = this;
    lanes_.emplace_back(new ShardLane(this, s, sim.get()));
    // The shard's private ring: shard index in the span-id high bits keeps
    // ids unique for any shard count, the clock is the shard's own sim, and
    // the order key is content-derived from the acting node. Inert (and
    // alloc-free) until EnableTracing.
    auto tracer = std::make_unique<Tracer>();
    tracer->SetIdBase(uint64_t(s) << Tracer::kShardIdShift);
    ShardSimulator* raw_sim = sim.get();
    tracer->SetClock([raw_sim] { return raw_sim->Now(); });
    tracer->SetOrderSource(
        [this, raw_sim] { return NextTraceOrder(raw_sim->current_actor()); });
    lanes_.back()->SetTracer(tracer.get());
    tracers_.push_back(std::move(tracer));
    sims_.push_back(std::move(sim));
  }
  trace_endbox_.resize(shards_);
  outbox_.resize(size_t(shards_) * shards_);
  shard_counters_.resize(shards_);
  finish_times_.resize(shards_);
  if (shards_ > 1) {
    workers_.reserve(shards_);
    for (uint32_t s = 0; s < shards_; ++s) {
      workers_.emplace_back([this, s] { WorkerMain(s); });
    }
  }
}

ShardedNetwork::~ShardedNetwork() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> l(mu_);
      exit_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

Network* ShardedNetwork::LaneFor(NodeId id) {
  return lanes_[OwnerShard(id)].get();
}

Network* ShardedNetwork::LaneForShard(uint32_t s) { return lanes_[s].get(); }

NodeId ShardedNetwork::AddNode(NetworkNode* node) {
  assert(!running_);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  alive_.push_back(1);
  seq_.push_back(0);
  trace_seq_.push_back(0);
  // Per-node stream derived from (seed, id) only — independent of shard
  // count and of every other node's draw history.
  node_rng_.emplace_back(Mix64(seed_ ^ (0x9E3779B97F4A7C15ULL * (id + 1))));
  return id;
}

void ShardedNetwork::SetAlive(NodeId id, bool alive) {
  assert(!running_);
  if (id < alive_.size()) alive_[id] = alive ? 1 : 0;
}

uint64_t ShardedNetwork::NextSubkey(uint32_t actor) {
  if (actor == ShardSimulator::kExternalActor) {
    return (uint64_t(actor) << 32) | uint32_t(++external_seq_);
  }
  return (uint64_t(actor) << 32) | uint64_t(++seq_[actor]);
}

uint64_t ShardedNetwork::NextTraceOrder(uint32_t actor) {
  if (actor == ShardSimulator::kExternalActor) {
    // Plain low counter: external spans (trace roots the quiescent driver
    // opens) sort before every node span at an equal timestamp.
    return ++external_trace_seq_;
  }
  // actor + 1 so node 0's keys stay disjoint from the external counter.
  return (uint64_t(actor + 1) << 32) | uint64_t(++trace_seq_[actor]);
}

void ShardedNetwork::EnableTracing(size_t capacity_per_shard) {
  assert(!running_);
  for (auto& t : tracers_) t->Enable(capacity_per_shard);
}

void ShardedNetwork::DisableTracing() {
  assert(!running_);
  for (auto& t : tracers_) t->Disable();
}

std::vector<Tracer*> ShardedNetwork::TracerParts() {
  std::vector<Tracer*> parts;
  parts.reserve(tracers_.size());
  for (auto& t : tracers_) parts.push_back(t.get());
  return parts;
}

void ShardedNetwork::ScheduleForNode(NodeId id, SimTime delay, EventFn fn) {
  assert(!running_ && id < nodes_.size());
  if (delay < 0) delay = 0;
  sims_[OwnerShard(id)]->ScheduleKeyedAt(now_ + delay, NextSubkey(id),
                                         std::move(fn));
}

void ShardedNetwork::ScheduleGlobal(SimTime at, std::function<void()> fn) {
  assert(!running_);
  if (at < now_) at = now_;
  global_tasks_.push_back(GlobalTask{at, ++global_task_seq_, std::move(fn)});
  std::push_heap(global_tasks_.begin(), global_tasks_.end(), std::greater<>());
}

void ShardedNetwork::RunAsNode(NodeId id, const std::function<void()>& fn) {
  assert(!running_ && id < nodes_.size());
  ShardSimulator* sim = sims_[OwnerShard(id)].get();
  const uint32_t prev = sim->current_actor();
  sim->set_current_actor(id);
  fn();
  sim->set_current_actor(prev);
}

void ShardedNetwork::DoSend(uint32_t shard, ShardLane* lane, NodeId from,
                            NodeId to,
                            std::shared_ptr<const MessageBody> body) {
  const size_t bytes = body->SizeBytes();
  const MsgType type = body->TypeTag();
  ++lane->stats_.messages_sent;
  lane->stats_.bytes_sent += bytes;
  lane->CountSend(type, bytes);

  // Flight span on the sender shard's ring, mirroring Network::Send: the
  // explicit body ctx wins over the ambient delivery being handled. Opening
  // a span draws no Rng and touches no event counters, so the traced run
  // stays bit-identical to the untraced one.
  Tracer* tracer = lane->tracer_;
  TraceCtx flight{};
  if (tracer != nullptr && tracer->enabled()) {
    const TraceCtx parent =
        body->trace_ctx.valid() ? body->trace_ctx : lane->delivery_ctx_;
    if (parent.valid()) {
      flight = tracer->StartSpan(type.name(), parent);
      tracer->Annotate(flight, "from", double(from));
      tracer->Annotate(flight, "to", double(to));
      tracer->Annotate(flight, "bytes", double(bytes));
    }
  }
  auto end_dropped = [&](DropCause cause) {
    if (!flight.valid()) return;
    tracer->Annotate(flight, "drop", ShardDropCauseName(cause));
    tracer->EndSpan(flight);
  };

  if (!IsAlive(from) || !IsAlive(to)) {
    lane->CountDrop(type, DropCause::kEndpoint);
    end_dropped(DropCause::kEndpoint);
    return;
  }

  ShardSimulator* sim = sims_[shard].get();
  const uint32_t actor = sim->current_actor();
  SmallRng* rng = RngFor(actor);
  const SimTime now = sim->Now();

  if (loss_probability_ > 0 && rng->Bernoulli(loss_probability_)) {
    lane->CountDrop(type, DropCause::kLoss);
    end_dropped(DropCause::kLoss);
    return;
  }
  // Same fixed consultation order as the single-threaded Network
  // (partitions, bursts, duplication) so a seed consumes the actor's stream
  // identically run to run.
  if (fault_plan_) {
    DropCause cause;
    if (fault_plan_->ShouldDrop(now, from, to, rng, &cause)) {
      lane->CountDrop(type, cause);
      end_dropped(cause);
      return;
    }
    if (fault_plan_->ShouldDuplicate(rng)) {
      ++lane->stats_.messages_duplicated;
      // The extra copy gets its own flight span under the original's, same
      // as the single-threaded transport.
      TraceCtx dup{};
      if (flight.valid()) {
        dup = tracer->StartSpan(type.name(),
                                TraceCtx{flight.trace_id, flight.span_id});
        tracer->Annotate(dup, "duplicate", 1.0);
      }
      SimTime dup_delay =
          latency_->Sample(rng) + fault_plan_->ExtraLatency(now, rng);
      Dispatch(shard, from, to, now + dup_delay, NextSubkey(actor), body, dup);
    }
  }

  SimTime delay = latency_->Sample(rng);
  if (fault_plan_) delay += fault_plan_->ExtraLatency(now, rng);
  Dispatch(shard, from, to, now + delay, NextSubkey(actor), std::move(body),
           flight);
}

void ShardedNetwork::Dispatch(uint32_t src_shard, NodeId from, NodeId to,
                              SimTime at, uint64_t subkey,
                              std::shared_ptr<const MessageBody> body,
                              TraceCtx ctx) {
  const uint32_t dst = OwnerShard(to);
  if (dst == src_shard) {
    if (ctx.valid()) {
      sims_[dst]->ScheduleKeyedAt(
          at, subkey, TracedShardDelivery{this, from, to, std::move(body), ctx});
    } else {
      sims_[dst]->ScheduleKeyedAt(
          at, subkey, ShardDelivery{this, from, to, std::move(body)});
    }
  } else {
    // Conservative guarantee: at >= send time + MinDelay >= epoch horizon,
    // so folding this in at the next barrier can never schedule into the
    // destination's past.
    outbox_[size_t(src_shard) * shards_ + dst].push_back(
        PendingDelivery{at, subkey, from, to, std::move(body), ctx});
    ++shard_counters_[src_shard].cross_sent;
  }
}

void ShardedNetwork::Deliver(NodeId from, NodeId to,
                             std::shared_ptr<const MessageBody> body) {
  const uint32_t dst = OwnerShard(to);
  ShardLane* lane = lanes_[dst].get();
  if (IsAlive(to)) {
    ++lane->stats_.messages_delivered;
    // The handler runs as the destination: its sends, timers and draws
    // attribute to `to`'s counter and stream, exactly as if `to` had
    // scheduled them from one of its own events.
    ShardSimulator* sim = sims_[dst].get();
    const uint32_t prev = sim->current_actor();
    sim->set_current_actor(to);
    nodes_[to]->OnMessage(from, std::move(body));
    sim->set_current_actor(prev);
  } else {
    lane->CountDrop(body->TypeTag(), DropCause::kEndpoint);
  }
}

void ShardedNetwork::EndFlight(uint32_t dst, TraceCtx flight, SimTime at,
                               int8_t cause) {
  const uint64_t owner = flight.span_id >> Tracer::kShardIdShift;
  if (owner == dst) {
    // Own ring — apply in place (same worker thread).
    Tracer* t = tracers_[dst].get();
    if (cause >= 0) {
      t->Annotate(flight, "drop", ShardDropCauseName(DropCause(cause)));
    }
    t->EndSpanAt(flight, at);
  } else {
    // Another shard's ring: hand off at the barrier, like cross-shard sends.
    trace_endbox_[dst].push_back(TraceEndOp{flight, at, cause});
  }
}

void ShardedNetwork::DeliverTraced(NodeId from, NodeId to,
                                   std::shared_ptr<const MessageBody> body,
                                   TraceCtx ctx) {
  const uint32_t dst = OwnerShard(to);
  ShardLane* lane = lanes_[dst].get();
  ShardSimulator* sim = sims_[dst].get();
  if (IsAlive(to)) {
    ++lane->stats_.messages_delivered;
    EndFlight(dst, ctx, sim->Now(), -1);
    // Expose the flight ctx as the lane's ambient delivery context, so the
    // handler's sends parent under this hop — mirrors Network::Deliver.
    const uint32_t prev = sim->current_actor();
    const TraceCtx prev_ctx = lane->delivery_ctx_;
    sim->set_current_actor(to);
    lane->delivery_ctx_ = ctx;
    nodes_[to]->OnMessage(from, std::move(body));
    lane->delivery_ctx_ = prev_ctx;
    sim->set_current_actor(prev);
  } else {
    lane->CountDrop(body->TypeTag(), DropCause::kEndpoint);
    EndFlight(dst, ctx, sim->Now(), int8_t(DropCause::kEndpoint));
  }
}

void ShardedNetwork::RunShardEpoch(uint32_t s, SimTime horizon) {
  ShardSimulator* sim = sims_[s].get();
  uint64_t subkey;
  EventFn fn;
  while (sim->PopBefore(horizon, &subkey, &fn)) {
    sim->set_current_actor(static_cast<uint32_t>(subkey >> 32));
    fn();
  }
  sim->set_current_actor(ShardSimulator::kExternalActor);
}

void ShardedNetwork::RunEpochParallel(SimTime horizon) {
  running_ = true;
  if (shards_ == 1) {
    // Same epoch structure, no threads: shards==1 is the reference run the
    // multi-shard configurations must match bit for bit.
    RunShardEpoch(0, horizon);
  } else {
    std::unique_lock<std::mutex> l(mu_);
    epoch_horizon_ = horizon;
    done_count_ = 0;
    ++generation_;
    cv_start_.notify_all();
    cv_done_.wait(l, [&] { return done_count_ == shards_; });
    auto first = finish_times_[0], last = finish_times_[0];
    for (uint32_t s = 1; s < shards_; ++s) {
      first = std::min(first, finish_times_[s]);
      last = std::max(last, finish_times_[s]);
    }
    barrier_wait_seconds_ +=
        std::chrono::duration<double>(last - first).count();
  }
  running_ = false;
}

void ShardedNetwork::WorkerMain(uint32_t s) {
  uint64_t seen = 0;
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_start_.wait(l, [&] { return exit_ || generation_ != seen; });
      if (exit_) return;
      seen = generation_;
      horizon = epoch_horizon_;
    }
    RunShardEpoch(s, horizon);
    finish_times_[s] = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> l(mu_);
      ++done_count_;
    }
    cv_done_.notify_one();
  }
}

void ShardedNetwork::DrainMailboxes() {
  for (size_t box_idx = 0; box_idx < outbox_.size(); ++box_idx) {
    auto& box = outbox_[box_idx];
    if (box.empty()) continue;
    Simulator* dst = sims_[box_idx % shards_].get();
    for (PendingDelivery& p : box) {
      if (p.ctx.valid()) {
        dst->ScheduleKeyedAt(p.at, p.subkey,
                             TracedShardDelivery{this, p.from, p.to,
                                                 std::move(p.body), p.ctx});
      } else {
        dst->ScheduleKeyedAt(p.at, p.subkey,
                             ShardDelivery{this, p.from, p.to,
                                           std::move(p.body)});
      }
    }
    box.clear();  // keeps capacity: steady-state drains allocate nothing
  }
  DrainTraceEnds();
}

void ShardedNetwork::DrainTraceEnds() {
  for (auto& box : trace_endbox_) {
    for (const TraceEndOp& op : box) {
      const uint64_t owner = op.ctx.span_id >> Tracer::kShardIdShift;
      if (owner >= tracers_.size()) continue;
      Tracer* t = tracers_[owner].get();
      if (op.drop_cause >= 0) {
        t->Annotate(op.ctx, "drop",
                    ShardDropCauseName(DropCause(op.drop_cause)));
      }
      t->EndSpanAt(op.ctx, op.at);
    }
    box.clear();
  }
}

void ShardedNetwork::AdvanceAll(SimTime t) {
  for (auto& s : sims_) s->AdvanceTo(t);
}

size_t ShardedNetwork::RunLoop(SimTime until, const bool* done,
                               size_t max_events) {
  const size_t start = events_executed();
  for (;;) {
    DrainMailboxes();
    if (done != nullptr && *done) break;
    if (events_executed() - start >= max_events) break;

    SimTime tg = global_tasks_.empty() ? kInf : global_tasks_.front().at;
    SimTime te = kInf;
    for (auto& s : sims_) te = std::min(te, s->NextEventTime());
    const SimTime head = std::min(tg, te);
    if (head == kInf || head > until) break;

    if (tg <= te) {
      // Global task due first (ties go to the task): run it quiesced, with
      // every clock advanced to its time.
      AdvanceAll(tg);
      now_ = tg;
      std::pop_heap(global_tasks_.begin(), global_tasks_.end(),
                    std::greater<>());
      GlobalTask task = std::move(global_tasks_.back());
      global_tasks_.pop_back();
      task.fn();
      continue;
    }

    // Epoch window [head, head + lookahead), shrunk to keep global tasks at
    // quiescent points and to honor the run bound. The boundary depends
    // only on globally-earliest times, so the epoch sequence — and with it
    // the set of events each epoch executes — is shard-count invariant.
    SimTime horizon = head + lookahead_;
    if (tg < horizon) horizon = tg;
    const SimTime cap = std::nextafter(until, kInf);  // include time == until
    if (horizon > cap) horizon = cap;
    RunEpochParallel(horizon);
    ++epochs_;
  }

  SimTime end_now = now_;
  for (auto& s : sims_) end_now = std::max(end_now, s->Now());
  if (until != kInf && until > end_now) end_now = until;
  now_ = end_now;
  AdvanceAll(end_now);
  return events_executed() - start;
}

size_t ShardedNetwork::RunUntilIdle(size_t max_events) {
  return RunLoop(kInf, nullptr, max_events);
}

size_t ShardedNetwork::RunUntil(SimTime t) {
  return RunLoop(t, nullptr, SIZE_MAX);
}

size_t ShardedNetwork::RunUntilFlag(const bool* done) {
  return RunLoop(kInf, done, SIZE_MAX);
}

size_t ShardedNetwork::events_executed() const {
  size_t n = 0;
  for (auto& s : sims_) n += s->events_executed();
  return n;
}

size_t ShardedNetwork::pending() const {
  size_t n = global_tasks_.size();
  for (auto& s : sims_) n += s->pending();
  for (auto& box : outbox_) n += box.size();
  return n;
}

NetworkStats ShardedNetwork::AggregateStats() const {
  NetworkStats out;
  for (auto& lane : lanes_) out.Accumulate(lane->stats());
  return out;
}

uint64_t ShardedNetwork::cross_shard_messages() const {
  uint64_t n = 0;
  for (const auto& c : shard_counters_) n += c.cross_sent;
  return n;
}

void ShardedNetwork::PublishMetrics(MetricsRegistry* metrics) const {
  AggregateStats().Publish(metrics);
  metrics->Counter("sim.shard.shards") += shards_;
  metrics->Counter("sim.shard.epochs") += epochs_;
  metrics->Counter("sim.shard.events") += events_executed();
  metrics->Counter("sim.shard.cross_shard_messages") += cross_shard_messages();
  metrics->Counter("sim.shard.barrier_wait_us") +=
      uint64_t(barrier_wait_seconds_ * 1e6);
}

size_t ShardedNetwork::MemoryFootprint() const {
  size_t bytes = nodes_.capacity() * sizeof(NetworkNode*) +
                 alive_.capacity() * sizeof(uint8_t) +
                 seq_.capacity() * sizeof(uint32_t) +
                 trace_seq_.capacity() * sizeof(uint32_t) +
                 node_rng_.capacity() * sizeof(SmallRng) +
                 global_tasks_.capacity() * sizeof(GlobalTask) +
                 shard_counters_.capacity() * sizeof(ShardCounters);
  for (const auto& box : trace_endbox_) {
    bytes += box.capacity() * sizeof(TraceEndOp);
  }
  for (const auto& s : sims_) {
    bytes += sizeof(ShardSimulator) + s->MemoryFootprint();
  }
  bytes += lanes_.size() * sizeof(ShardLane);
  for (const auto& box : outbox_) {
    bytes += box.capacity() * sizeof(PendingDelivery);
  }
  return bytes;
}

}  // namespace gridvine
