#include "schema/schema.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

Schema Embl() {
  return Schema("EMBL", "protein-sequences",
                {"Organism", "AccessionNumber", "SequenceLength"});
}

TEST(SchemaTest, BasicAccessors) {
  Schema s = Embl();
  EXPECT_EQ(s.name(), "EMBL");
  EXPECT_EQ(s.domain(), "protein-sequences");
  EXPECT_EQ(s.attributes().size(), 3u);
  EXPECT_TRUE(s.HasAttribute("Organism"));
  EXPECT_FALSE(s.HasAttribute("organism"));  // case-sensitive
  EXPECT_FALSE(s.HasAttribute("Nope"));
}

TEST(SchemaTest, AttributeUris) {
  Schema s = Embl();
  EXPECT_EQ(s.AttributeUri("Organism"), "EMBL#Organism");
  auto uris = s.AttributeUris();
  ASSERT_EQ(uris.size(), 3u);
  EXPECT_EQ(uris[0], "EMBL#Organism");
}

TEST(SchemaTest, SplitAttributeUri) {
  auto r = Schema::SplitAttributeUri("EMBL#Organism");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first, "EMBL");
  EXPECT_EQ(r->second, "Organism");
  EXPECT_FALSE(Schema::SplitAttributeUri("NoHashHere").ok());
  EXPECT_EQ(Schema::SchemaOfUri("EMBL#Organism"), "EMBL");
  EXPECT_EQ(Schema::SchemaOfUri("NoHash"), "");
  EXPECT_EQ(Schema::LocalOfUri("EMBL#Organism"), "Organism");
  EXPECT_EQ(Schema::LocalOfUri("NoHash"), "NoHash");
}

TEST(SchemaTest, ValidateRejectsBadNames) {
  EXPECT_TRUE(Embl().Validate().ok());
  EXPECT_FALSE(Schema("", "d", {"a"}).Validate().ok());
  EXPECT_FALSE(Schema("A#B", "d", {"a"}).Validate().ok());
  EXPECT_FALSE(Schema("A", "d", {"a,b"}).Validate().ok());
  EXPECT_FALSE(Schema("A", "d", {"a", "a"}).Validate().ok());
  EXPECT_FALSE(Schema("A", "d", {""}).Validate().ok());
  EXPECT_FALSE(Schema("A", "d|x", {"a"}).Validate().ok());
}

TEST(SchemaTest, SerializeParseRoundTrip) {
  Schema s = Embl();
  auto parsed = Schema::Parse(s.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, s);
}

TEST(SchemaTest, RoundTripEmptyAttributes) {
  Schema s("Empty", "d", {});
  auto parsed = Schema::Parse(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->attributes().empty());
}

TEST(SchemaTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Schema::Parse("junk").ok());
  EXPECT_FALSE(Schema::Parse("mapping|a|b|c").ok());
  EXPECT_FALSE(Schema::Parse("schema|a|b").ok());
}

TEST(SchemaRegistryTest, RegisterGetReplace) {
  SchemaRegistry reg;
  EXPECT_TRUE(reg.Register(Embl()).ok());
  EXPECT_TRUE(reg.Contains("EMBL"));
  EXPECT_FALSE(reg.Contains("EMP"));
  EXPECT_EQ(reg.size(), 1u);

  auto got = reg.Get("EMBL");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->attributes().size(), 3u);
  EXPECT_TRUE(reg.Get("missing").status().IsNotFound());

  // Re-registering replaces.
  Schema updated("EMBL", "protein-sequences", {"Organism"});
  EXPECT_TRUE(reg.Register(updated).ok());
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.Get("EMBL")->attributes().size(), 1u);
}

TEST(SchemaRegistryTest, RejectsInvalid) {
  SchemaRegistry reg;
  EXPECT_FALSE(reg.Register(Schema("", "d", {})).ok());
  EXPECT_EQ(reg.size(), 0u);
}

TEST(SchemaRegistryTest, NamesListed) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.Register(Embl()).ok());
  ASSERT_TRUE(reg.Register(Schema("EMP", "protein-sequences",
                                  {"SystematicName"}))
                  .ok());
  auto names = reg.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "EMBL");
  EXPECT_EQ(names[1], "EMP");
}

}  // namespace
}  // namespace gridvine
