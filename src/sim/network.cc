#include "sim/network.h"

#include <utility>

namespace gridvine {

Network::Network(Simulator* sim, std::unique_ptr<LatencyModel> latency,
                 Rng rng, double loss_probability)
    : sim_(sim),
      latency_(std::move(latency)),
      rng_(rng),
      loss_probability_(loss_probability) {}

NodeId Network::AddNode(NetworkNode* node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeSlot{node, true});
  return id;
}

void Network::SetAlive(NodeId id, bool alive) {
  if (id < nodes_.size()) nodes_[id].alive = alive;
}

bool Network::IsAlive(NodeId id) const {
  return id < nodes_.size() && nodes_[id].alive;
}

void Network::Send(NodeId from, NodeId to,
                   std::shared_ptr<const MessageBody> body) {
  ++stats_.messages_sent;
  stats_.bytes_sent += body->SizeBytes();
  ++stats_.messages_by_type[body->TypeTag()];

  if (!IsAlive(from) || to >= nodes_.size() || !nodes_[to].alive ||
      (loss_probability_ > 0 && rng_.Bernoulli(loss_probability_))) {
    ++stats_.messages_dropped;
    return;
  }

  SimTime delay = latency_->Sample(&rng_);
  sim_->Schedule(delay, [this, from, to, body = std::move(body)]() {
    // Liveness re-checked at delivery time: the node may have died in flight.
    if (to < nodes_.size() && nodes_[to].alive) {
      ++stats_.messages_delivered;
      nodes_[to].node->OnMessage(from, body);
    } else {
      ++stats_.messages_dropped;
    }
  });
}

}  // namespace gridvine
