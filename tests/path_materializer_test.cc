#include "mapping/path_materializer.h"

#include <gtest/gtest.h>

#include "query/reformulation.h"

namespace gridvine {
namespace {

SchemaMapping Link(const std::string& id, const std::string& src,
                   const std::string& dst, double confidence = 0.9) {
  SchemaMapping m(id, src, dst);
  m.set_provenance(MappingProvenance::kAutomatic);
  m.set_confidence(confidence);
  EXPECT_TRUE(m.AddCorrespondence(src + "#organism", dst + "#organism").ok());
  EXPECT_TRUE(m.AddCorrespondence(src + "#length", dst + "#length").ok());
  return m;
}

TEST(PathMaterializerTest, MaterializeChain) {
  std::vector<SchemaMapping> path = {Link("ab", "A", "B"),
                                     Link("bc", "B", "C"),
                                     Link("cd", "C", "D")};
  auto shortcut = PathMaterializer::MaterializePath(path);
  ASSERT_TRUE(shortcut.ok()) << shortcut.status();
  EXPECT_EQ(shortcut->id(), "shortcut-A-D");
  EXPECT_EQ(shortcut->source_schema(), "A");
  EXPECT_EQ(shortcut->target_schema(), "D");
  EXPECT_EQ(*shortcut->MapAttribute("A#organism"), "D#organism");
  EXPECT_EQ(shortcut->provenance(), MappingProvenance::kAutomatic);
  EXPECT_NEAR(shortcut->confidence(), 0.9 * 0.9 * 0.9, 1e-9);
}

TEST(PathMaterializerTest, EmptyAndBrokenChainsFail) {
  EXPECT_FALSE(PathMaterializer::MaterializePath({}).ok());
  std::vector<SchemaMapping> broken = {Link("ab", "A", "B"),
                                       Link("cd", "C", "D")};
  EXPECT_FALSE(PathMaterializer::MaterializePath(broken).ok());
}

TEST(PathMaterializerTest, ShortcutEqualsChainedReformulation) {
  std::vector<SchemaMapping> path = {Link("ab", "A", "B"),
                                     Link("bc", "B", "C")};
  auto shortcut = PathMaterializer::MaterializePath(path);
  ASSERT_TRUE(shortcut.ok());
  TriplePatternQuery q("x",
                       TriplePattern(Term::Var("x"), Term::Uri("A#organism"),
                                     Term::Literal("%x%")));
  auto direct = Reformulate(q, *shortcut);
  auto chained = ReformulateAlongPath(q, path);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(direct->pattern(), chained->pattern());
}

TEST(PathMaterializerTest, SelectsOnlyDistantPairs) {
  MappingGraph g;
  g.AddMapping(Link("ab", "A", "B"));
  g.AddMapping(Link("bc", "B", "C"));
  g.AddMapping(Link("cd", "C", "D"));
  PathMaterializer::Options opts;
  opts.min_path_len = 3;
  PathMaterializer pm(opts);
  auto shortcuts = pm.SelectAndMaterialize(g);
  // Only A->D is 3 hops away.
  ASSERT_EQ(shortcuts.size(), 1u);
  EXPECT_EQ(shortcuts[0].id(), "shortcut-A-D");
}

TEST(PathMaterializerTest, RespectsShortcutCap) {
  MappingGraph g;
  // Chain of 8 schemas: many pairs at distance >= 3.
  for (int i = 0; i < 7; ++i) {
    g.AddMapping(Link("m" + std::to_string(i), "S" + std::to_string(i),
                      "S" + std::to_string(i + 1)));
  }
  PathMaterializer::Options opts;
  opts.min_path_len = 3;
  opts.max_shortcuts = 3;
  PathMaterializer pm(opts);
  EXPECT_EQ(pm.SelectAndMaterialize(g).size(), 3u);
}

TEST(PathMaterializerTest, SkipsChainsWithNoSurvivingCorrespondences) {
  // ab maps organism only; bc maps length only: composition is empty.
  SchemaMapping ab("ab", "A", "B");
  ab.AddCorrespondence("A#organism", "B#organism").ok();
  SchemaMapping bc("bc", "B", "C");
  bc.AddCorrespondence("B#length", "C#length").ok();
  SchemaMapping cd("cd", "C", "D");
  cd.AddCorrespondence("C#length", "D#length").ok();
  MappingGraph g;
  g.AddMapping(ab);
  g.AddMapping(bc);
  g.AddMapping(cd);
  PathMaterializer::Options opts;
  opts.min_path_len = 3;
  PathMaterializer pm(opts);
  EXPECT_TRUE(pm.SelectAndMaterialize(g).empty());
}

TEST(PathMaterializerTest, DeprecatedEdgesNotUsed) {
  MappingGraph g;
  g.AddMapping(Link("ab", "A", "B"));
  g.AddMapping(Link("bc", "B", "C"));
  g.AddMapping(Link("cd", "C", "D"));
  g.Deprecate("bc");
  PathMaterializer::Options opts;
  opts.min_path_len = 3;
  PathMaterializer pm(opts);
  EXPECT_TRUE(pm.SelectAndMaterialize(g).empty());
}

}  // namespace
}  // namespace gridvine
