#include "common/hash.h"

#include <cctype>

namespace gridvine {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

Key UniformHash(std::string_view data, int depth) {
  // Chain FNV blocks when more than 64 bits are requested.
  std::string bits;
  bits.reserve(static_cast<size_t>(depth));
  uint64_t h = Mix64(Fnv1a64(data));
  int produced = 0;
  int round = 0;
  while (produced < depth) {
    int take = depth - produced < 64 ? depth - produced : 64;
    // Take the MOST significant bits so that a deeper hash of the same data
    // extends the shallower one (prefix property used by the overlay).
    Key part = Key::FromUint(take == 64 ? h : (h >> (64 - take)), take);
    bits += part.bits();
    produced += take;
    ++round;
    h = Mix64(Fnv1a64(std::string(data) + "#" + std::to_string(round)));
  }
  return Key::FromBits(bits).value();
}

namespace {

// Normalizes a character into the ordered alphabet used for the fraction
// digits: terminator / below-'0' characters (0), '0'-'9' (1..10), the
// punctuation band between '9' and 'a' (11), 'a'-'z' (12..37), above (38).
// The mapping is monotone in (case-folded) ASCII, which is what makes the
// hash order-preserving; characters within one band collide by design.
constexpr int kRadix = 39;

int CharDigit(unsigned char c) {
  c = static_cast<unsigned char>(std::tolower(c));
  if (c < '0') return 0;
  if (c <= '9') return 1 + (c - '0');
  if (c < 'a') return 11;  // punctuation between digits and letters
  if (c <= 'z') return 12 + (c - 'a');
  return kRadix - 1;
}

}  // namespace

Key OrderPreservingHash::SubtreeFor(std::string_view value_prefix) const {
  // Low bound: the prefix itself (implicitly padded with terminators, the
  // minimal digit). High bound: padded with '~', which maps to the maximal
  // digit bucket.
  Key low = (*this)(value_prefix);
  std::string high(value_prefix);
  high.append(24, '~');  // kMaxDigits worth of maximal padding
  Key high_key = (*this)(high);
  return low.Prefix(low.CommonPrefixLength(high_key));
}

Key OrderPreservingHash::operator()(std::string_view data) const {
  // Interpret the string as the fraction sum_i digit_i / radix^(i+1) and emit
  // `depth_` bits of its binary expansion using exact long multiplication on
  // the digit vector (avoids double rounding, preserving order for long
  // shared prefixes).
  constexpr size_t kMaxDigits = 24;  // 24 digits * log2(38) > 125 bits
  int digits[kMaxDigits];
  size_t n = data.size() < kMaxDigits ? data.size() : kMaxDigits;
  for (size_t i = 0; i < n; ++i) {
    digits[i] = CharDigit(static_cast<unsigned char>(data[i]));
  }
  for (size_t i = n; i < kMaxDigits; ++i) digits[i] = 0;

  std::string bits;
  bits.reserve(static_cast<size_t>(depth_));
  for (int b = 0; b < depth_; ++b) {
    // Multiply the fractional number by 2; the carry out is the next bit.
    int carry = 0;
    for (size_t i = kMaxDigits; i-- > 0;) {
      int v = digits[i] * 2 + carry;
      digits[i] = v % kRadix;
      carry = v / kRadix;
    }
    bits.push_back(carry ? '1' : '0');
  }
  return Key::FromBits(bits).value();
}

}  // namespace gridvine
