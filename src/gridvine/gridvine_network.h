#ifndef GRIDVINE_GRIDVINE_GRIDVINE_NETWORK_H_
#define GRIDVINE_GRIDVINE_GRIDVINE_NETWORK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "gridvine/gridvine_peer.h"
#include "pgrid/pgrid_builder.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace gridvine {

/// Owns a complete simulated GridVine deployment: the event loop, the
/// transport, and N GridVine peers wired into a P-Grid overlay. This is the
/// top-level entry point used by examples, tests and the experiment benches.
///
/// Asynchronous operations of GridVinePeer are also exposed as synchronous
/// helpers that pump the simulator until the operation completes — the
/// natural shape for experiment scripts.
class GridVineNetwork {
 public:
  enum class LatencyKind { kConstant, kUniform, kWan };

  struct Options {
    size_t num_peers = 16;
    int key_depth = 16;
    uint64_t seed = 1;
    LatencyKind latency = LatencyKind::kConstant;
    /// kConstant: the latency; kUniform: [0, 2x]; kWan: the base delay.
    SimTime latency_param = 0.02;
    /// kWan only: parameters of the log-normal variable delay component,
    /// plus the straggler mixture (overloaded-host extra delay).
    double wan_mu = -3.2;
    double wan_sigma = 1.1;
    double wan_straggler_prob = 0.0;
    SimTime wan_straggler_mean = 4.0;
    double loss_probability = 0.0;
    int refs_per_level = 2;
    /// > 1 runs the deployment on the sharded conservative-parallel engine
    /// (ShardedNetwork): peers are partitioned across this many event-queue
    /// shards with worker threads. Outcomes are bit-identical across shard
    /// counts, and tracing works the same as in classic mode — tracer()
    /// returns a TraceView merging the per-shard span rings into one
    /// causally ordered sequence. sim()/network() return null — use
    /// engine(). 1 (default) keeps the classic single-queue path.
    uint32_t shards = 1;
    /// Run the sharded engine even at shards == 1 (its threadless reference
    /// mode). Classic and sharded runs are NOT comparable bit-for-bit (the
    /// engines consume random streams differently); forcing the engine lets
    /// a shards=1 run anchor a shard-count invariance comparison.
    bool force_sharded = false;
    PGridPeer::Options overlay;
    GridVinePeer::Options peer;
  };

  explicit GridVineNetwork(Options options);

  GridVineNetwork(const GridVineNetwork&) = delete;
  GridVineNetwork& operator=(const GridVineNetwork&) = delete;

  /// Single-queue event loop and transport; null when shards > 1.
  Simulator* sim() { return engine_ ? nullptr : &sim_; }
  Network* network() { return network_.get(); }
  /// The sharded engine; null when shards == 1.
  ShardedNetwork* engine() { return engine_.get(); }
  Rng* rng() { return &rng_; }

  /// Simulated time, whichever engine is driving.
  SimTime Now() const { return engine_ ? engine_->Now() : sim_.Now(); }

  /// The deployment's tracer, pre-wired into the transport and clocked on
  /// simulated time. Disabled (zero-cost) until tracer()->Enable(). In
  /// classic mode this views the single ring; in sharded mode it merges the
  /// per-shard rings (Snapshot() sorts by the causal (start, order) key, so
  /// the merged sequence is identical for any shard count of the same seed).
  /// Enable/Disable/Clear are quiescent-only on the sharded engine, same as
  /// every other control call.
  TraceView* tracer() { return &trace_view_; }

  /// Scratch registry for CollectMetrics; also usable directly.
  MetricsRegistry* metrics() { return &metrics_; }

  // --- Time-series health layer -------------------------------------------

  /// Starts the windowed health layer: every `window_s` simulated seconds a
  /// tick collects a full metrics snapshot, evaluates the watchdog's
  /// invariant rules over the window, and appends the snapshot to the
  /// time series. Ticks ride the event loop (a global task on the sharded
  /// engine), so windows land at deterministic simulated times; they stop
  /// re-arming once the deployment goes idle — call HealthTick() for a
  /// manual sample, or EnableHealth again to restart the cadence.
  void EnableHealth(double window_s, HealthWatchdog::Options opts = {});

  /// Samples one window right now: CollectMetrics + watchdog evaluation +
  /// time-series append, stamped Now(). The shell's `health` refresh.
  void HealthTick();

  MetricsTimeSeries* timeseries() { return &timeseries_; }
  HealthWatchdog* watchdog() { return &watchdog_; }
  double health_window() const { return health_window_; }

  /// Clears the registry and republishes a fresh snapshot from the network
  /// and every peer (both layers); returns it.
  MetricsRegistry& CollectMetrics();

  /// Registers an extra publisher CollectMetrics() invokes after the engine
  /// and peers — how higher layers (e.g. the self-organizer's gv.selforg.*
  /// counters) join the unified snapshot without a dependency from this
  /// layer.
  void AddMetricsSource(std::function<void(MetricsRegistry*)> source) {
    metrics_sources_.push_back(std::move(source));
  }

  size_t size() const { return peers_.size(); }
  GridVinePeer* peer(size_t i) { return peers_[i].get(); }
  std::vector<PGridPeer*> overlay_peers();

  /// Rewires the overlay into a trie adapted to `sample` keys (storage
  /// balance under skewed key distributions, experiment E7). Existing
  /// overlay storage is NOT redistributed — call before inserting data.
  void RebuildOverlayAdaptive(const std::vector<Key>& sample);

  // --- Synchronous wrappers (pump the simulator until completion) ----------

  Status InsertTriple(size_t peer_idx, const Triple& triple);
  /// Bulk load through one peer: all overlay updates in flight at once,
  /// pumped to completion — much faster than a loop of InsertTriple calls,
  /// which each wait for three acks before issuing the next.
  Status InsertTriples(size_t peer_idx, const std::vector<Triple>& triples);
  Status RemoveTriple(size_t peer_idx, const Triple& triple);
  Status InsertSchema(size_t peer_idx, const Schema& schema);
  /// Replaces a stored schema definition (schema evolution); see
  /// GridVinePeer::UpsertSchema.
  Status UpsertSchema(size_t peer_idx, const Schema& schema);
  Status InsertMapping(size_t peer_idx, const SchemaMapping& mapping);
  Status UpsertMapping(size_t peer_idx, const SchemaMapping& mapping);
  Status PublishDegree(size_t peer_idx, const std::string& domain,
                       const std::string& schema, int in_degree,
                       int out_degree);

  Result<Schema> FetchSchema(size_t peer_idx, const std::string& name);
  Result<std::vector<SchemaMapping>> FetchMappingsFor(
      size_t peer_idx, const std::string& schema);
  Result<std::vector<GridVinePeer::DegreeRecord>> FetchDomainDegrees(
      size_t peer_idx, const std::string& domain);

  GridVinePeer::QueryResult SearchFor(
      size_t peer_idx, const TriplePatternQuery& query,
      const GridVinePeer::QueryOptions& options = {});
  GridVinePeer::ConjunctiveResult SearchForConjunctive(
      size_t peer_idx, const ConjunctiveQuery& query,
      const GridVinePeer::QueryOptions& options = {});

  /// SearchFor routed through the peer's QueryFrontend (admission control);
  /// may return Status::Overload when the peer is saturated.
  GridVinePeer::QueryResult ServeFor(
      size_t peer_idx, const TriplePatternQuery& query,
      const GridVinePeer::QueryOptions& options = {});
  GridVinePeer::ConjunctiveResult ServeForConjunctive(
      size_t peer_idx, const ConjunctiveQuery& query,
      const GridVinePeer::QueryOptions& options = {});

  /// Runs the event loop until idle (drains in-flight maintenance traffic).
  void Settle() {
    if (engine_) {
      engine_->RunUntilIdle();
    } else {
      sim_.Run();
    }
  }

  /// Advances simulated time to `t`, engine-agnostic. The building block of
  /// continuous background activities (SelfOrganizer::RunContinuous): faults
  /// and churn fire inside the slice, synchronous work runs between slices.
  void RunUntil(SimTime t) {
    if (engine_) {
      engine_->RunUntil(t);
    } else {
      sim_.RunUntil(t);
    }
  }

  /// Marks a peer dead/alive in the transport, engine-agnostic. On the
  /// sharded engine this must be called between runs (quiescent), same as
  /// ShardedNetwork::SetAlive.
  void SetAlive(size_t peer_idx, bool alive) {
    if (engine_) {
      engine_->SetAlive(static_cast<NodeId>(peer_idx), alive);
    } else {
      network_->SetAlive(static_cast<NodeId>(peer_idx), alive);
    }
  }

  /// Aggregate per-peer + engine memory accounting, in bytes. `breakdown`
  /// (optional) receives named per-component totals for display.
  size_t MemoryFootprint(
      std::vector<std::pair<std::string, size_t>>* breakdown = nullptr) const;

 private:
  std::unique_ptr<LatencyModel> MakeLatency();

  /// Pumps the simulator one event at a time until `*done` or idle.
  void PumpUntil(const bool* done);

  /// Arms the next health tick `health_window_` seconds out (engine-agnostic).
  void ScheduleHealthTick();

  /// Runs `f` attributed to peer `peer_idx` — on the sharded engine, issuing
  /// work from outside an event must go through RunAsNode so the sends it
  /// triggers draw from that peer's streams. Direct call in single mode.
  template <typename F>
  void Issue(size_t peer_idx, F&& f) {
    if (engine_) {
      engine_->RunAsNode(static_cast<NodeId>(peer_idx), std::forward<F>(f));
    } else {
      f();
    }
  }

  Options options_;
  Simulator sim_;
  Rng rng_;
  Tracer tracer_;  // classic mode's single ring (inert when sharded)
  /// What tracer() hands out: {&tracer_} in classic mode, the engine's
  /// per-shard rings in sharded mode.
  TraceView trace_view_;
  MetricsRegistry metrics_;
  MetricsTimeSeries timeseries_;
  HealthWatchdog watchdog_;
  double health_window_ = 0;  // 0 until EnableHealth
  bool health_enabled_ = false;
  std::unique_ptr<Network> network_;
  std::unique_ptr<ShardedNetwork> engine_;  // shards > 1 only
  std::vector<std::unique_ptr<GridVinePeer>> peers_;
  std::vector<std::function<void(MetricsRegistry*)>> metrics_sources_;
};

}  // namespace gridvine

#endif  // GRIDVINE_GRIDVINE_GRIDVINE_NETWORK_H_
