#include "selforg/attribute_matcher.h"

#include <algorithm>

#include "common/string_util.h"

namespace gridvine {

namespace {

/// Case-folds and strips separators so "organism_name", "OrganismName" and
/// "organism-name" normalize identically.
std::string NormalizeName(const std::string& local) {
  std::string out;
  for (char c : ToLower(local)) {
    if (c != '_' && c != '-' && c != ' ') out.push_back(c);
  }
  return out;
}

}  // namespace

double AttributeMatcher::Score(const std::string& source_attr_uri,
                               const std::string& target_attr_uri,
                               const ValueSets& source_values,
                               const ValueSets& target_values) const {
  std::string a = NormalizeName(Schema::LocalOfUri(source_attr_uri));
  std::string b = NormalizeName(Schema::LocalOfUri(target_attr_uri));
  double lexical = std::max(EditSimilarity(a, b), TrigramSimilarity(a, b));

  auto sit = source_values.find(source_attr_uri);
  auto tit = target_values.find(target_attr_uri);
  bool have_values = sit != source_values.end() && !sit->second.empty() &&
                     tit != target_values.end() && !tit->second.empty();
  if (!have_values) {
    // No instance evidence: rely on the lexical component alone.
    return lexical;
  }
  double value_sim = JaccardSimilarity(sit->second, tit->second);
  double total_weight = options_.lexical_weight + options_.value_weight;
  return (options_.lexical_weight * lexical +
          options_.value_weight * value_sim) /
         (total_weight > 0 ? total_weight : 1.0);
}

std::vector<AttributeMatcher::Correspondence> AttributeMatcher::Match(
    const Schema& source, const Schema& target,
    const ValueSets& source_values, const ValueSets& target_values) const {
  // Score every pair, then assign greedily best-first one-to-one.
  std::vector<Correspondence> candidates;
  for (const auto& sa : source.AttributeUris()) {
    for (const auto& ta : target.AttributeUris()) {
      double score = Score(sa, ta, source_values, target_values);
      if (score >= options_.threshold) {
        candidates.push_back(Correspondence{sa, ta, score});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Correspondence& a, const Correspondence& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.source_attr_uri != b.source_attr_uri) {
                return a.source_attr_uri < b.source_attr_uri;
              }
              return a.target_attr_uri < b.target_attr_uri;
            });
  std::set<std::string> used_src, used_dst;
  std::vector<Correspondence> out;
  for (const auto& c : candidates) {
    if (used_src.count(c.source_attr_uri) || used_dst.count(c.target_attr_uri)) {
      continue;
    }
    used_src.insert(c.source_attr_uri);
    used_dst.insert(c.target_attr_uri);
    out.push_back(c);
  }
  return out;
}

}  // namespace gridvine
