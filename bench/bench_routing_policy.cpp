// Ablation — routing-constant selection policy (DESIGN.md §5):
//
//   paper §2.3: "When two constant terms appear in the triple pattern, the
//   most specific one should be used."
//
// Queries of the form (subject, predicate, ?o) can be routed by either
// constant. Routing by predicate concentrates every query about a relation
// on the handful of peers owning the predicate keys; routing by subject
// spreads the load across the subject key space. This bench quantifies the
// difference: destination-load Gini, hop counts and latency for both
// policies on the same 2000-query workload.
//
//   $ ./bench/bench_routing_policy

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_json.h"
#include "common/hash.h"
#include "gridvine/gridvine_network.h"

using namespace gridvine;

namespace {

struct PolicyResult {
  double destination_gini = 0;
  double max_share = 0;  // busiest destination's share of all answers
  double mean_latency = 0;
};

double Gini(std::vector<uint64_t> loads) {
  std::sort(loads.begin(), loads.end());
  double total = 0;
  for (uint64_t l : loads) total += double(l);
  if (total == 0) return 0;
  double weighted = 0;
  for (size_t i = 0; i < loads.size(); ++i) {
    weighted += double(i + 1) * double(loads[i]);
  }
  double n = double(loads.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

PolicyResult RunPolicy(TriplePos position, uint64_t seed) {
  GridVineNetwork::Options options;
  options.num_peers = 128;
  options.key_depth = 24;
  options.seed = seed;
  options.latency = GridVineNetwork::LatencyKind::kConstant;
  options.latency_param = 0.02;
  GridVineNetwork net(options);

  // Synthetic corpus with lexically DIVERSE subject URIs (as when entities
  // come from many independent databases): the policy variable is isolated
  // from the prefix-clustering effect, which E7 measures separately.
  // 20 relations ("S<j>#attr"), 400 entities, one triple per (entity, attr
  // sample).
  const int kSchemas = 20;
  const int kEntities = 400;
  std::vector<Triple> triples;
  for (int e = 0; e < kEntities; ++e) {
    std::ostringstream subject;
    subject << std::hex << Fnv1a64(std::to_string(e) + "-entity");
    for (int s = 0; s < kSchemas; ++s) {
      if ((e + s) % 4 != 0) continue;  // sparse description
      triples.emplace_back(
          Term::Uri(subject.str()),
          Term::Uri("S" + std::to_string(s) + "#attr"),
          Term::Literal("value " + std::to_string((e * 7 + s) % 50)));
    }
  }
  for (size_t i = 0; i < triples.size(); ++i) {
    if (!net.InsertTriple(i % net.size(), triples[i]).ok()) return {};
  }

  // Queries (subject, predicate, ?o): both positions are exact constants.
  Rng rng(99);
  std::vector<uint64_t> answered_before(net.size());
  for (size_t i = 0; i < net.size(); ++i) {
    answered_before[i] = net.peer(i)->counters().queries_answered;
  }
  double latency_sum = 0;
  const int kQueries = 2000;
  for (int q = 0; q < kQueries; ++q) {
    const Triple& t = triples[size_t(
        rng.UniformInt(0, int64_t(triples.size()) - 1))];
    TriplePatternQuery query(
        "o", TriplePattern(t.subject(), t.predicate(), Term::Var("o")));
    GridVinePeer::QueryOptions qopts;
    qopts.routing_position = position;
    auto res = net.SearchFor(size_t(rng.UniformInt(0, int64_t(net.size()) - 1)),
                             query, qopts);
    latency_sum += res.latency;
  }

  PolicyResult out;
  std::vector<uint64_t> loads;
  uint64_t total = 0, max_load = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    uint64_t load =
        net.peer(i)->counters().queries_answered - answered_before[i];
    loads.push_back(load);
    total += load;
    max_load = std::max(max_load, load);
  }
  out.destination_gini = Gini(loads);
  out.max_share = total ? double(max_load) / double(total) : 0;
  out.mean_latency = latency_sum / kQueries;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_routing_policy");
  std::printf("Ablation: query routing-constant policy "
              "(2000 (s,p,?o) queries, 128 peers)\n\n");
  std::printf("  %-22s %12s %12s %12s\n", "policy", "dest gini",
              "max share", "mean lat");
  struct Row {
    const char* name;
    TriplePos pos;
  };
  for (const Row& row : {Row{"subject (specific)", TriplePos::kSubject},
                         Row{"predicate (generic)", TriplePos::kPredicate}}) {
    PolicyResult r = RunPolicy(row.pos, 11);
    std::printf("  %-22s %12.3f %11.1f%% %10.3fs\n", row.name,
                r.destination_gini, r.max_share * 100, r.mean_latency);
    json.Add(row.pos == TriplePos::kSubject ? "subject" : "predicate",
             {{"destination_gini", r.destination_gini},
              {"max_share", r.max_share},
              {"mean_latency_s", r.mean_latency}});
  }
  json.Finish();
  std::printf("\n  expectation: predicate routing funnels all queries about "
              "a relation to the few peers owning\n  predicate keys (high "
              "gini, high max share); subject routing spreads the same "
              "workload.\n  This is why the paper routes by the most "
              "specific constant.\n");
  return 0;
}
