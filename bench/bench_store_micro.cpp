// Experiment E8 — microbenchmarks of the local database DB_p and the hash
// functions (paper Section 2.2: each peer's local store supports selection,
// projection and join; every triple is hashed three times on insert).
//
// google-benchmark binary; run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/string_util.h"
#include "store/binding_codec.h"
#include "store/triple_store.h"

namespace gridvine {
namespace {

Triple MakeTriple(int i) {
  return Triple(Term::Uri("ebi:P" + std::to_string(100000 + i % 500)),
                Term::Uri("EMBL#Attr" + std::to_string(i % 8)),
                Term::Literal("value " + std::to_string(i % 64)));
}

TripleStore BuildStore(int n) {
  TripleStore store;
  for (int i = 0; i < n; ++i) store.Insert(MakeTriple(i)).ok();
  return store;
}

void BM_TripleInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TripleStore store;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(store.Insert(MakeTriple(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TripleInsert)->Arg(1000)->Arg(10000);

void BM_TripleInsertBatch(benchmark::State& state) {
  std::vector<Triple> batch;
  for (int i = 0; i < state.range(0); ++i) batch.push_back(MakeTriple(i));
  for (auto _ : state) {
    state.PauseTiming();
    TripleStore store;
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.InsertBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TripleInsertBatch)->Arg(1000)->Arg(10000);

void BM_SelectByPredicate(benchmark::State& state) {
  TripleStore store = BuildStore(int(state.range(0)));
  TriplePattern pattern(Term::Var("s"), Term::Uri("EMBL#Attr3"),
                        Term::Var("o"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Select(pattern));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectByPredicate)->Arg(1000)->Arg(10000);

void BM_SelectBySubject(benchmark::State& state) {
  TripleStore store = BuildStore(int(state.range(0)));
  TriplePattern pattern(Term::Uri("ebi:P100042"), Term::Var("p"),
                        Term::Var("o"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Select(pattern));
  }
}
BENCHMARK(BM_SelectBySubject)->Arg(1000)->Arg(10000);

void BM_SelectWithLikePattern(benchmark::State& state) {
  TripleStore store = BuildStore(int(state.range(0)));
  TriplePattern pattern(Term::Var("s"), Term::Uri("EMBL#Attr3"),
                        Term::Literal("%value 1%"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Select(pattern));
  }
}
BENCHMARK(BM_SelectWithLikePattern)->Arg(1000)->Arg(10000);

void BM_SelfJoin(benchmark::State& state) {
  TripleStore store = BuildStore(int(state.range(0)));
  TriplePattern left(Term::Var("x"), Term::Uri("EMBL#Attr1"), Term::Var("a"));
  TriplePattern right(Term::Var("x"), Term::Uri("EMBL#Attr2"), Term::Var("b"));
  for (auto _ : state) {
    auto l = store.MatchPattern(left);
    auto r = store.MatchPattern(right);
    benchmark::DoNotOptimize(TripleStore::Join(l, r));
  }
}
BENCHMARK(BM_SelfJoin)->Arg(1000)->Arg(5000);

// The join alone, on prebuilt binding sets (BM_SelfJoin also measures the
// two MatchPattern calls feeding it).
void BM_HashJoin(benchmark::State& state) {
  TripleStore store = BuildStore(int(state.range(0)));
  TriplePattern left(Term::Var("x"), Term::Uri("EMBL#Attr1"), Term::Var("a"));
  TriplePattern right(Term::Var("x"), Term::Uri("EMBL#Attr2"), Term::Var("b"));
  auto l = store.MatchPattern(left);
  auto r = store.MatchPattern(right);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TripleStore::Join(l, r));
  }
  state.SetItemsProcessed(state.iterations() * int64_t(l.size() + r.size()));
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(5000);

void BM_OrderPreservingHash(benchmark::State& state) {
  OrderPreservingHash h(int(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h("EMBL#Organism" + std::to_string(i++ % 1000)));
  }
}
BENCHMARK(BM_OrderPreservingHash)->Arg(16)->Arg(32)->Arg(64);

void BM_UniformHash(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UniformHash("EMBL#Organism" + std::to_string(i++ % 1000), 32));
  }
}
BENCHMARK(BM_UniformHash);

void BM_LikeMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LikeMatch("Aspergillus niger strain CBS 513.88", "%niger%strain%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_TripleSerializeParse(benchmark::State& state) {
  Triple t = MakeTriple(7);
  for (auto _ : state) {
    std::string s = t.Serialize();
    benchmark::DoNotOptimize(Triple::Parse(s));
  }
}
BENCHMARK(BM_TripleSerializeParse);

void BM_BindingCodec(benchmark::State& state) {
  std::vector<BindingSet> rows;
  for (int i = 0; i < 64; ++i) {
    BindingSet row;
    row["x"] = Term::Uri("ebi:P" + std::to_string(i));
    row["o"] = Term::Literal("Aspergillus niger");
    rows.push_back(row);
  }
  for (auto _ : state) {
    std::string s = SerializeBindings(rows);
    benchmark::DoNotOptimize(ParseBindings(s));
  }
}
BENCHMARK(BM_BindingCodec);

}  // namespace
}  // namespace gridvine

BENCHMARK_MAIN();
