// Property tests for the statistics layer: KMV distinct sketches, per-store
// sketches (build, estimate, canonical wire form) and the issuer-side
// statistics cache with its TTL and observation-override semantics.

#include <gtest/gtest.h>

#include <string>

#include "query/stats/sketch.h"
#include "query/stats/stats_cache.h"
#include "store/triple_store.h"

namespace gridvine {
namespace {

TEST(KmvSketchTest, ExactBelowKAndDuplicateInsensitive) {
  KmvSketch s(64);
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 50; ++i) s.AddString("v" + std::to_string(i));
  }
  EXPECT_DOUBLE_EQ(s.Estimate(), 50.0);
}

TEST(KmvSketchTest, EstimateWithinTolerance) {
  // ~12% standard error at k = 64; the 40% band holds with huge margin for
  // any reasonable hash behaviour while still catching broken estimators.
  for (int n : {500, 5000, 50000}) {
    KmvSketch s;
    for (int i = 0; i < n; ++i) s.AddString("value-" + std::to_string(i));
    double est = s.Estimate();
    EXPECT_GT(est, n * 0.6) << "n=" << n;
    EXPECT_LT(est, n * 1.4) << "n=" << n;
  }
}

TEST(KmvSketchTest, InsertionOrderInvariantAndRoundTrips) {
  KmvSketch a, b;
  for (int i = 0; i < 300; ++i) a.AddString("x" + std::to_string(i));
  for (int i = 299; i >= 0; --i) b.AddString("x" + std::to_string(i));
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Serialize(), b.Serialize());

  auto parsed = KmvSketch::Parse(a.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == a);
  EXPECT_DOUBLE_EQ(parsed->Estimate(), a.Estimate());
}

TEST(KmvSketchTest, MergeEqualsUnion) {
  KmvSketch a, b, u;
  for (int i = 0; i < 200; ++i) {
    a.AddString("a" + std::to_string(i));
    u.AddString("a" + std::to_string(i));
  }
  for (int i = 0; i < 200; ++i) {
    b.AddString("b" + std::to_string(i));
    u.AddString("b" + std::to_string(i));
  }
  a.Merge(b);
  EXPECT_TRUE(a == u);
}

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

TEST(StoreSketchTest, EstimatesPatternsAgainstStore) {
  TripleStore store;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(store
                    .Insert(T("s" + std::to_string(i), "p:type",
                              i % 4 == 0 ? "gadget" : "widget"))
                    .ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .Insert(T("s" + std::to_string(i), "p:size",
                              std::to_string(i % 3)))
                    .ok());
  }
  StoreSketch sk = StoreSketch::Build(store);
  EXPECT_EQ(sk.total_rows(), store.size());
  EXPECT_EQ(sk.built_version(), store.version());

  // Exact predicate: the slice's row count (exact — the store is small).
  PatternEstimate e = sk.EstimatePattern(
      TriplePattern(Term::Var("x"), Term::Uri("p:type"), Term::Var("o")));
  ASSERT_TRUE(e.known);
  EXPECT_DOUBLE_EQ(e.rows, 40.0);
  EXPECT_DOUBLE_EQ(e.distinct_objects, 2.0);

  // Exact predicate + exact object: rows / distinct objects.
  e = sk.EstimatePattern(TriplePattern(Term::Var("x"), Term::Uri("p:type"),
                                       Term::Literal("gadget")));
  ASSERT_TRUE(e.known);
  EXPECT_NEAR(e.rows, 20.0, 1e-9);

  // Absent predicate: known, zero rows — the planner can exploit it.
  e = sk.EstimatePattern(
      TriplePattern(Term::Var("x"), Term::Uri("p:none"), Term::Var("o")));
  ASSERT_TRUE(e.known);
  EXPECT_DOUBLE_EQ(e.rows, 0.0);

  // Range object: the sketch keeps no value order -> unknown, greedy rank.
  e = sk.EstimatePattern(TriplePattern(Term::Var("x"), Term::Uri("p:type"),
                                       Term::Literal("gad%")));
  EXPECT_FALSE(e.known);
}

TEST(StoreSketchTest, SerializeRoundTripIsCanonical) {
  TripleStore store;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(store
                    .Insert(T("s" + std::to_string(i % 7),
                              "p" + std::to_string(i % 3),
                              "o" + std::to_string(i)))
                    .ok());
  }
  StoreSketch sk = StoreSketch::Build(store);
  std::string wire = sk.Serialize();
  auto parsed = StoreSketch::Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Serialize(), wire);
  EXPECT_EQ(parsed->total_rows(), sk.total_rows());
  EXPECT_EQ(parsed->built_version(), sk.built_version());
  TriplePattern p(Term::Var("x"), Term::Uri("p1"), Term::Var("o"));
  EXPECT_DOUBLE_EQ(parsed->EstimatePattern(p).rows,
                   sk.EstimatePattern(p).rows);

  EXPECT_FALSE(StoreSketch::Parse("garbage").ok());
  EXPECT_FALSE(StoreSketch::Parse(wire.substr(0, wire.size() / 2)).ok());
}

TEST(StoreSketchTest, SameDataSameBytes) {
  // Determinism across builds: the sketch is pure FNV-1a over the content,
  // so two stores holding the same triples serialize identically even when
  // loaded in different orders.
  TripleStore a, b;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(a.Insert(T("s" + std::to_string(i), "p", "o")).ok());
  }
  for (int i = 29; i >= 0; --i) {
    ASSERT_TRUE(b.Insert(T("s" + std::to_string(i), "p", "o")).ok());
  }
  StoreSketch sa = StoreSketch::Build(a);
  StoreSketch sb = StoreSketch::Build(b);
  EXPECT_EQ(sa.total_rows(), sb.total_rows());
  TriplePattern p(Term::Var("x"), Term::Uri("p"), Term::Var("o"));
  EXPECT_DOUBLE_EQ(sa.EstimatePattern(p).distinct_subjects,
                   sb.EstimatePattern(p).distinct_subjects);
}

TEST(StatsCacheTest, TtlExpiryAndObservationOverrides) {
  StatsCache::Options o;
  o.ttl = 10.0;
  StatsCache cache(o);
  TripleStore store;
  ASSERT_TRUE(store.Insert(T("s", "p", "o")).ok());
  cache.Put("region-a", StoreSketch::Build(store), /*now=*/0.0);

  EXPECT_TRUE(cache.Fresh("region-a", 5.0));
  EXPECT_NE(cache.Lookup("region-a", 5.0), nullptr);
  EXPECT_FALSE(cache.Fresh("region-a", 11.0));
  EXPECT_EQ(cache.Lookup("region-a", 11.0), nullptr);  // expired -> dropped
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.Observe("pat", 42.0, 0.0);
  auto obs = cache.ObservedRows("pat", 5.0);
  ASSERT_TRUE(obs.has_value());
  EXPECT_DOUBLE_EQ(*obs, 42.0);
  EXPECT_FALSE(cache.ObservedRows("pat", 11.0).has_value());
  EXPECT_FALSE(cache.ObservedRows("other", 5.0).has_value());
}

}  // namespace
}  // namespace gridvine
