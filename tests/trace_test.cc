// Tracer unit tests plus end-to-end causal propagation through the full
// stack: one traced query must yield a single consistent span tree covering
// the messages the network attributes to that query's traffic.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "gridvine/gridvine_network.h"

namespace gridvine {
namespace {

TEST(TracerTest, DisabledIsInert) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  TraceCtx root = t.StartTrace("op");
  EXPECT_FALSE(root.valid());
  TraceCtx child = t.StartSpan("child", root);
  EXPECT_FALSE(child.valid());
  t.EndSpan(child);
  t.Annotate(root, "k", 1.0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Snapshot().size(), 0u);
}

TEST(TracerTest, ParentChildStructure) {
  Tracer t;
  t.Enable();
  TraceCtx root = t.StartTrace("op.root");
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.trace_id, root.span_id);  // a root names its trace
  TraceCtx child = t.StartSpan("hop", root);
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  t.EndSpan(child);
  t.EndSpan(root);

  auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "op.root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, root.span_id);
  EXPECT_GE(spans[0].end, spans[0].start);
}

TEST(TracerTest, InvalidParentStartsNewTrace) {
  Tracer t;
  t.Enable();
  TraceCtx s = t.StartSpan("orphanless", TraceCtx{});
  ASSERT_TRUE(s.valid());
  EXPECT_EQ(s.trace_id, s.span_id);
  t.EndSpan(s);
  TraceAnalyzer ta(t.Snapshot());
  EXPECT_EQ(ta.CheckConsistency(), "");
}

TEST(TracerTest, ClockStampsSimulatedTime) {
  Tracer t;
  double now = 1.5;
  t.SetClock([&now] { return now; });
  t.Enable();
  TraceCtx s = t.StartTrace("op");
  now = 2.25;
  t.EndSpan(s);
  auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start, 1.5);
  EXPECT_DOUBLE_EQ(spans[0].end, 2.25);
}

TEST(TracerTest, EndSpanIsIdempotent) {
  Tracer t;
  double now = 1.0;
  t.SetClock([&now] { return now; });
  t.Enable();
  TraceCtx s = t.StartTrace("op");
  now = 2.0;
  t.EndSpan(s);
  now = 9.0;
  t.EndSpan(s);  // second end must not move the timestamp
  EXPECT_DOUBLE_EQ(t.Snapshot()[0].end, 2.0);
}

TEST(TracerTest, RingEvictsOldestAndCounts) {
  Tracer t;
  t.Enable(/*capacity=*/4);
  std::vector<TraceCtx> spans;
  for (int i = 0; i < 10; ++i) {
    TraceCtx s = t.StartTrace("op");
    t.EndSpan(s);
    spans.push_back(s);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.evicted(), 6u);
  auto snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(snap.front().span_id, spans[6].span_id);
  EXPECT_EQ(snap.back().span_id, spans[9].span_id);
}

TEST(TracerTest, InstantIsZeroDuration) {
  Tracer t;
  double now = 3.0;
  t.SetClock([&now] { return now; });
  t.Enable();
  TraceCtx root = t.StartTrace("op");
  TraceCtx mark = t.Instant("op.retry", root);
  ASSERT_TRUE(mark.valid());
  t.EndSpan(root);
  TraceAnalyzer ta(t.Snapshot());
  const Tracer::Span* s = ta.Find(mark.span_id);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->start, s->end);
  EXPECT_EQ(ta.OpenCount(), 0u);
}

TEST(TracerTest, AnnotationsRecorded) {
  Tracer t;
  t.Enable();
  TraceCtx s = t.StartTrace("op");
  t.Annotate(s, "rows", 7.0);
  t.Annotate(s, "schema", "EMBL");
  t.EndSpan(s);
  auto spans = t.Snapshot();
  ASSERT_EQ(spans[0].annotations.size(), 2u);
  EXPECT_EQ(spans[0].annotations[0].key, "rows");
  EXPECT_TRUE(spans[0].annotations[0].is_number);
  EXPECT_DOUBLE_EQ(spans[0].annotations[0].number, 7.0);
  EXPECT_EQ(spans[0].annotations[1].text, "EMBL");
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer t;
  t.Enable();
  TraceCtx s = t.StartTrace("op.search");
  t.Annotate(s, "rows", 2.0);
  t.EndSpan(s);
  std::string json = t.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("op.search"), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

TEST(TracerTest, EndSpanAtUsesExplicitTime) {
  Tracer t;
  double now = 1.0;
  t.SetClock([&now] { return now; });
  t.Enable();
  TraceCtx s = t.StartTrace("op");
  t.EndSpanAt(s, 4.5);  // the ending shard's clock, not ours
  auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 4.5);
}

TEST(TracerTest, IntervalRecordsRetroactiveSpan) {
  Tracer t;
  double now = 5.0;
  t.SetClock([&now] { return now; });
  t.Enable();
  TraceCtx root = t.StartTrace("op.dispatch");
  TraceCtx back = t.Interval("op.backoff", root, 5.5, 7.25);
  ASSERT_TRUE(back.valid());
  t.EndSpan(root);
  TraceAnalyzer ta(t.Snapshot());
  const Tracer::Span* s = ta.Find(back.span_id);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->parent_id, root.span_id);
  EXPECT_DOUBLE_EQ(s->start, 5.5);
  EXPECT_DOUBLE_EQ(s->end, 7.25);
  EXPECT_EQ(ta.OpenCount(), 0u);
  EXPECT_EQ(ta.CheckConsistency(), "");
}

TEST(TracerTest, IdBasePutsShardIndexInHighBits) {
  Tracer t;
  t.SetIdBase(uint64_t(3) << Tracer::kShardIdShift);
  t.Enable();
  TraceCtx s = t.StartTrace("op");
  EXPECT_EQ(s.span_id >> Tracer::kShardIdShift, 3u);
  t.EndSpan(s);
  // Without an order source the order key falls back to the span id.
  EXPECT_EQ(t.Snapshot()[0].order, s.span_id);
}

TEST(TracerTest, OrderSourceStampsContentDerivedKeys) {
  Tracer t;
  uint64_t order = 100;
  t.SetOrderSource([&order] { return ++order; });
  t.Enable();
  TraceCtx a = t.StartTrace("op");
  TraceCtx b = t.StartSpan("hop", a);
  t.EndSpan(b);
  t.EndSpan(a);
  auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].order, 101u);
  EXPECT_EQ(spans[1].order, 102u);
}

TEST(TraceViewTest, MergesShardRingsInCausalOrder) {
  Tracer shard0, shard1;
  double now = 0.0;
  uint64_t order = 0;
  for (Tracer* t : {&shard0, &shard1}) {
    t->SetClock([&now] { return now; });
    t->SetOrderSource([&order] { return ++order; });
  }
  shard1.SetIdBase(uint64_t(1) << Tracer::kShardIdShift);
  TraceView view({&shard0, &shard1});
  view.Enable();
  EXPECT_TRUE(view.enabled());
  EXPECT_EQ(view.parts(), 2u);

  now = 1.0;
  TraceCtx root = view.StartTrace("op.search");  // lands on shard 0
  now = 2.0;
  TraceCtx hop = shard1.StartSpan("QUERY", root);  // cross-shard child
  now = 3.0;
  shard1.EndSpan(hop);
  view.EndSpan(root);  // routed to shard 0 by the id bits
  EXPECT_EQ(view.size(), 2u);

  auto spans = view.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "op.search");  // parent precedes child
  EXPECT_EQ(spans[1].name, "QUERY");
  EXPECT_EQ(spans[1].parent_id, root.span_id);
  EXPECT_DOUBLE_EQ(spans[0].end, 3.0);
  TraceAnalyzer ta(std::move(spans));
  EXPECT_EQ(ta.CheckConsistency(), "");

  std::string json = view.ToChromeJson();
  EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
}

TEST(TraceAnalyzerTest, EvictionDowngradesOrphansToWarnings) {
  Tracer t;
  t.Enable(/*capacity=*/2);
  TraceCtx root = t.StartTrace("op");
  TraceCtx a = t.StartSpan("hop", root);
  TraceCtx b = t.StartSpan("hop", root);  // evicts the root span
  t.EndSpan(a);
  t.EndSpan(b);
  ASSERT_EQ(t.evicted(), 1u);
  TraceAnalyzer ta(t.Snapshot());
  // Strict mode: a missing parent is corruption.
  EXPECT_NE(ta.CheckConsistency(), "");
  // Eviction-aware mode: the same orphans are expected casualties.
  EXPECT_EQ(ta.CheckConsistency(t.evicted()), "");
  EXPECT_EQ(ta.orphan_warnings(), 2u);
}

TEST(TraceAnalyzerTest, CriticalPathAttributesInnermostSpans) {
  // Synthetic tree over [0, 10]: queue [0,2], flight [2,5], service [5,6],
  // backoff [6,7], executor [7,9]; [9,10] only the root is active.
  std::vector<Tracer::Span> spans(6);
  spans[0] = {1, 1, 0, 1, "op.search", 0, 10, {}};
  spans[1] = {1, 2, 1, 2, "op.queue", 0, 2, {}};
  spans[2] = {1, 3, 1, 3, "QUERY", 2, 5, {}};
  spans[3] = {1, 4, 1, 4, "op.service", 5, 6, {}};
  spans[4] = {1, 5, 1, 5, "op.backoff", 6, 7, {}};
  spans[5] = {1, 6, 1, 6, "exec.scan", 7, 9, {}};
  TraceAnalyzer ta(std::move(spans));
  auto cp = ta.CriticalPathFor(1);
  EXPECT_DOUBLE_EQ(cp.total, 10.0);
  EXPECT_DOUBLE_EQ(cp.queue, 2.0);
  EXPECT_DOUBLE_EQ(cp.network, 3.0);
  EXPECT_DOUBLE_EQ(cp.service, 1.0);
  EXPECT_DOUBLE_EQ(cp.retry, 1.0);
  // exec.scan's 2s plus the root-only gap [9,10] (root is op.* = compute).
  EXPECT_DOUBLE_EQ(cp.compute, 3.0);
  EXPECT_DOUBLE_EQ(cp.queue + cp.service + cp.network + cp.retry + cp.compute,
                   cp.total);
}

TEST(TraceAnalyzerTest, CategoryOfBucketsSpanNames) {
  using Cat = TraceAnalyzer::Category;
  EXPECT_EQ(TraceAnalyzer::CategoryOf("op.queue"), Cat::kQueue);
  EXPECT_EQ(TraceAnalyzer::CategoryOf("op.service"), Cat::kService);
  EXPECT_EQ(TraceAnalyzer::CategoryOf("op.backoff"), Cat::kRetry);
  EXPECT_EQ(TraceAnalyzer::CategoryOf("op.search"), Cat::kCompute);
  EXPECT_EQ(TraceAnalyzer::CategoryOf("exec.bind_join"), Cat::kCompute);
  EXPECT_EQ(TraceAnalyzer::CategoryOf("QUERY"), Cat::kNetwork);
  EXPECT_EQ(TraceAnalyzer::CategoryOf("ANSWER"), Cat::kNetwork);
}

TEST(TraceAnalyzerTest, DetectsOrphanParent) {
  std::vector<Tracer::Span> spans(1);
  spans[0].trace_id = 5;
  spans[0].span_id = 6;
  spans[0].parent_id = 5;  // parent never recorded
  spans[0].name = "hop";
  spans[0].end = 1.0;
  TraceAnalyzer ta(std::move(spans));
  EXPECT_NE(ta.CheckConsistency(), "");
}

TEST(TraceAnalyzerTest, DetectsCrossTraceParent) {
  std::vector<Tracer::Span> spans(2);
  spans[0] = {1, 1, 0, 1, "root", 0, 1, {}};
  spans[1] = {9, 2, 1, 2, "hop", 0, 1, {}};  // parent in trace 1, claims trace 9
  TraceAnalyzer ta(std::move(spans));
  EXPECT_NE(ta.CheckConsistency(), "");
}

// --- End-to-end propagation --------------------------------------------------

GridVineNetwork::Options SmallNet(uint64_t seed) {
  GridVineNetwork::Options o;
  o.num_peers = 16;
  o.key_depth = 14;
  o.seed = seed;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.01;
  o.peer.query_timeout = 3.0;
  return o;
}

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

TEST(TracePropagationTest, QueryYieldsOneConsistentTree) {
  GridVineNetwork net(SmallNet(21));
  ASSERT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
  ASSERT_TRUE(net.InsertSchema(1, Schema("B", "d", {"organism"})).ok());
  ASSERT_TRUE(
      net.InsertTriple(0, T("a1", "A#organism", "Aspergillus niger")).ok());
  ASSERT_TRUE(
      net.InsertTriple(1, T("b1", "B#organism", "Aspergillus niger")).ok());
  SchemaMapping m("ab", "A", "B");
  ASSERT_TRUE(m.AddCorrespondence("A#organism", "B#organism").ok());
  ASSERT_TRUE(net.InsertMapping(0, m).ok());

  net.tracer()->Enable();
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Uri("A#organism"),
                         Term::Literal("Aspergillus niger")));
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  auto res = net.SearchFor(5, q, opts);
  ASSERT_TRUE(res.status.ok());
  ASSERT_NE(res.trace_id, 0u);

  TraceAnalyzer ta(net.tracer()->Snapshot());
  EXPECT_EQ(ta.CheckConsistency(), "");
  EXPECT_EQ(ta.OpenCount(), 0u);
  // The query root, one dispatch branch per reformulation target, and at
  // least one responder marker — all in the query's own trace.
  EXPECT_EQ(ta.CountNamed("op.search", res.trace_id), 1u);
  EXPECT_GE(ta.CountNamed("op.dispatch", res.trace_id), 2u);
  EXPECT_GE(ta.CountNamed("op.answer", res.trace_id), 2u);
}

TEST(TracePropagationTest, UntracedRunRecordsNothing) {
  GridVineNetwork net(SmallNet(22));
  ASSERT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
  ASSERT_TRUE(net.InsertTriple(0, T("a1", "A#organism", "x")).ok());
  TriplePatternQuery q("x", TriplePattern(Term::Var("x"),
                                          Term::Uri("A#organism"),
                                          Term::Literal("x")));
  auto res = net.SearchFor(3, q);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.trace_id, 0u);
  EXPECT_EQ(net.tracer()->size(), 0u);
}

TEST(TracePropagationTest, TracingDoesNotPerturbResults) {
  auto run = [](bool traced) {
    GridVineNetwork net(SmallNet(23));
    EXPECT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
    EXPECT_TRUE(net.InsertTriple(0, T("a1", "A#organism", "v")).ok());
    if (traced) net.tracer()->Enable();
    TriplePatternQuery q("x", TriplePattern(Term::Var("x"),
                                            Term::Uri("A#organism"),
                                            Term::Literal("v")));
    auto res = net.SearchFor(3, q);
    NetworkStats stats = net.network()->stats();
    return std::make_pair(res.items.size(), stats);
  };
  auto [items_on, stats_on] = run(true);
  auto [items_off, stats_off] = run(false);
  EXPECT_EQ(items_on, items_off);
  EXPECT_TRUE(stats_on == stats_off);
}

// The acceptance bar: during a traced conjunctive query every message the
// network sends belongs to the query's causal tree — flight spans cover
// >= 95% of the per-type message deltas, and the executor's row counts
// reconcile with the result.
TEST(TracePropagationTest, ConjunctiveQueryCoversItsMessages) {
  GridVineNetwork net(SmallNet(24));
  ASSERT_TRUE(net.InsertSchema(0, Schema("A", "d", {"type", "size"})).ok());
  std::vector<Triple> triples;
  for (int e = 0; e < 8; ++e) {
    std::string subj = "x:e" + std::to_string(e);
    triples.push_back(T(subj, "x:type", e % 2 ? "gadget" : "widget"));
    triples.push_back(T(subj, "x:size", std::to_string(e % 3)));
  }
  ASSERT_TRUE(net.InsertTriples(0, triples).ok());

  NetworkStats before = net.network()->stats();
  net.tracer()->Enable();
  ConjunctiveQuery q(
      {"x", "l"},
      {TriplePattern(Term::Var("x"), Term::Uri("x:type"),
                     Term::Literal("gadget")),
       TriplePattern(Term::Var("x"), Term::Uri("x:size"), Term::Var("l"))});
  auto res = net.SearchForConjunctive(2, q);
  ASSERT_TRUE(res.status.ok());
  ASSERT_NE(res.trace_id, 0u);
  EXPECT_FALSE(res.rows.empty());
  NetworkStats after = net.network()->stats();

  TraceAnalyzer ta(net.tracer()->Snapshot());
  EXPECT_EQ(ta.CheckConsistency(), "");
  EXPECT_EQ(ta.OpenCount(), 0u);
  EXPECT_EQ(ta.CountNamed("op.cquery", res.trace_id), 1u);
  EXPECT_GE(ta.CountNamed("exec.scan", res.trace_id) +
                ta.CountNamed("exec.bind_join", res.trace_id),
            2u);
  EXPECT_EQ(ta.CountNamed("exec.finalize", res.trace_id), 1u);

  // Per-type reconciliation: everything sent during the query window was a
  // query-type message, and each send has a flight span named after its type.
  uint64_t sent_delta = after.messages_sent - before.messages_sent;
  ASSERT_GT(sent_delta, 0u);
  uint64_t covered = 0;
  for (uint32_t id = 0; id < after.messages_by_type.size(); ++id) {
    uint64_t prev =
        id < before.messages_by_type.size() ? before.messages_by_type[id] : 0;
    uint64_t d = after.messages_by_type[id] - prev;
    if (d == 0) continue;
    covered += ta.CountNamed(MsgType::NameOf(id), res.trace_id);
  }
  EXPECT_GE(double(covered), 0.95 * double(sent_delta))
      << "flight spans " << covered << " of " << sent_delta << " messages";
  EXPECT_LE(covered, sent_delta);
}

}  // namespace
}  // namespace gridvine
