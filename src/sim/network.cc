#include "sim/network.h"

#include <utility>

namespace gridvine {

uint64_t NetworkStats::MessagesForType(std::string_view name) const {
  MsgType t = MsgType::Find(name);
  if (t.unknown() || t.id() >= messages_by_type.size()) return 0;
  return messages_by_type[t.id()];
}

uint64_t NetworkStats::BytesForType(std::string_view name) const {
  MsgType t = MsgType::Find(name);
  if (t.unknown() || t.id() >= bytes_by_type.size()) return 0;
  return bytes_by_type[t.id()];
}

uint64_t NetworkStats::DropsForType(std::string_view name) const {
  MsgType t = MsgType::Find(name);
  if (t.unknown() || t.id() >= drops_by_type.size()) return 0;
  return drops_by_type[t.id()];
}

std::map<std::string, uint64_t> NetworkStats::MessagesByTypeName() const {
  std::map<std::string, uint64_t> out;
  for (uint32_t id = 0; id < messages_by_type.size(); ++id) {
    if (messages_by_type[id] != 0) out.emplace(MsgType::NameOf(id), messages_by_type[id]);
  }
  return out;
}

Network::Network(Simulator* sim, std::unique_ptr<LatencyModel> latency,
                 Rng rng, double loss_probability)
    : sim_(sim),
      latency_(std::move(latency)),
      rng_(rng),
      loss_probability_(loss_probability) {}

NodeId Network::AddNode(NetworkNode* node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeSlot{node, true});
  return id;
}

void Network::SetAlive(NodeId id, bool alive) {
  if (id < nodes_.size()) nodes_[id].alive = alive;
}

bool Network::IsAlive(NodeId id) const {
  return id < nodes_.size() && nodes_[id].alive;
}

void Network::CountSend(MsgType type, size_t bytes) {
  // Grow to the full registry size in one step so a burst of new types costs
  // at most one reallocation, and established types never reallocate. The
  // drop vector is sized here too (not on first drop) so drop attribution
  // never allocates on the steady-state path.
  if (type.id() >= stats_.messages_by_type.size()) {
    size_t n = MsgType::RegistryCount();
    stats_.messages_by_type.resize(n, 0);
    stats_.bytes_by_type.resize(n, 0);
    stats_.drops_by_type.resize(n, 0);
  }
  ++stats_.messages_by_type[type.id()];
  stats_.bytes_by_type[type.id()] += bytes;
}

void Network::CountDrop(MsgType type, DropCause cause) {
  ++stats_.messages_dropped;
  switch (cause) {
    case DropCause::kEndpoint: ++stats_.drops_endpoint; break;
    case DropCause::kLoss: ++stats_.drops_loss; break;
    case DropCause::kBurstLoss: ++stats_.drops_burst; break;
    case DropCause::kPartition: ++stats_.drops_partition; break;
  }
  // CountSend sizes the vector for every type this network sends, so this
  // growth step only triggers after a ResetStats() with messages still in
  // flight — never on the steady-state (zero-allocation) path.
  if (type.id() >= stats_.drops_by_type.size()) {
    stats_.drops_by_type.resize(MsgType::RegistryCount(), 0);
  }
  ++stats_.drops_by_type[type.id()];
}

void Network::Send(NodeId from, NodeId to,
                   std::shared_ptr<const MessageBody> body) {
  const size_t bytes = body->SizeBytes();
  const MsgType type = body->TypeTag();
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  CountSend(type, bytes);

  if (!IsAlive(from) || to >= nodes_.size() || !nodes_[to].alive) {
    CountDrop(type, DropCause::kEndpoint);
    return;
  }
  if (loss_probability_ > 0 && rng_.Bernoulli(loss_probability_)) {
    CountDrop(type, DropCause::kLoss);
    return;
  }
  // Fault plan last, in a fixed order (partitions, then bursts, then
  // duplication), so a given seed consumes Rng draws identically run to run.
  if (fault_plan_) {
    DropCause cause;
    if (fault_plan_->ShouldDrop(sim_->Now(), from, to, &rng_, &cause)) {
      CountDrop(type, cause);
      return;
    }
    if (fault_plan_->ShouldDuplicate(&rng_)) {
      ++stats_.messages_duplicated;
      SimTime dup_delay = latency_->Sample(&rng_) +
                          fault_plan_->ExtraLatency(sim_->Now(), &rng_);
      sim_->Schedule(dup_delay, Delivery{this, from, to, body});
    }
  }

  SimTime delay = latency_->Sample(&rng_);
  if (fault_plan_) delay += fault_plan_->ExtraLatency(sim_->Now(), &rng_);
  sim_->Schedule(delay, Delivery{this, from, to, std::move(body)});
}

void Network::Deliver(NodeId from, NodeId to,
                      std::shared_ptr<const MessageBody> body) {
  // Liveness re-checked at delivery time: the node may have died in flight.
  if (to < nodes_.size() && nodes_[to].alive) {
    ++stats_.messages_delivered;
    nodes_[to].node->OnMessage(from, std::move(body));
  } else {
    CountDrop(body->TypeTag(), DropCause::kEndpoint);
  }
}

}  // namespace gridvine
