#include "rdf/ntriples.h"

#include <cctype>

#include "common/string_util.h"

namespace gridvine {

namespace {

std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Cursor over one line.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  Status Error(const std::string& what) const {
    return Status::Corruption("N-Triples: " + what + " (column " +
                              std::to_string(pos_ + 1) + ")");
  }

  Result<std::string> ParseUriRef() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '<') {
      return Error("expected '<'");
    }
    ++pos_;
    std::string uri;
    while (pos_ < line_.size() && line_[pos_] != '>') {
      uri.push_back(line_[pos_++]);
    }
    if (pos_ >= line_.size()) return Error("unterminated URI");
    ++pos_;
    if (uri.empty()) return Error("empty URI");
    return uri;
  }

  Result<Term> ParseObject() {
    SkipSpace();
    if (pos_ >= line_.size()) return Error("expected object term");
    if (line_[pos_] == '<') {
      GV_ASSIGN_OR_RETURN(std::string uri, ParseUriRef());
      return Term::Uri(uri);
    }
    if (line_[pos_] != '"') return Error("expected '\"' or '<'");
    ++pos_;
    std::string lit;
    while (pos_ < line_.size()) {
      char c = line_[pos_++];
      if (c == '\\') {
        if (pos_ >= line_.size()) return Error("dangling escape");
        char e = line_[pos_++];
        switch (e) {
          case '"':
            lit.push_back('"');
            break;
          case '\\':
            lit.push_back('\\');
            break;
          case 'n':
            lit.push_back('\n');
            break;
          case 't':
            lit.push_back('\t');
            break;
          default:
            return Error(std::string("unknown escape '\\") + e + "'");
        }
      } else if (c == '"') {
        return Term::Literal(lit);
      } else {
        lit.push_back(c);
      }
    }
    return Error("unterminated literal");
  }

  Status ExpectDot() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '.') {
      return Error("expected terminating '.'");
    }
    ++pos_;
    SkipSpace();
    // A trailing comment after the '.' is allowed.
    if (pos_ < line_.size() && line_[pos_] != '#') {
      return Error("trailing content after '.'");
    }
    return Status::OK();
  }

 private:
  const std::string& line_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToNTriplesLine(const Triple& triple) {
  std::string out = "<" + triple.subject().value() + "> <" +
                    triple.predicate().value() + "> ";
  if (triple.object().IsUri()) {
    out += "<" + triple.object().value() + ">";
  } else {
    out += "\"" + EscapeLiteral(triple.object().value()) + "\"";
  }
  out += " .";
  return out;
}

Result<Triple> ParseNTriplesLine(const std::string& line) {
  LineScanner scan(line);
  GV_ASSIGN_OR_RETURN(std::string subject, scan.ParseUriRef());
  GV_ASSIGN_OR_RETURN(std::string predicate, scan.ParseUriRef());
  GV_ASSIGN_OR_RETURN(Term object, scan.ParseObject());
  GV_RETURN_NOT_OK(scan.ExpectDot());
  Triple t(Term::Uri(subject), Term::Uri(predicate), std::move(object));
  GV_RETURN_NOT_OK(t.Validate());
  return t;
}

std::string ToNTriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += ToNTriplesLine(t);
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<Triple>> ParseNTriples(const std::string& text) {
  std::vector<Triple> out;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    // Strip comments and skip blank lines.
    std::string line = raw;
    size_t hash = line.find('#');
    // '#' inside a URI or literal is content, not a comment: only treat a
    // '#' before any '<' / '"' as a comment starter.
    size_t first_term = line.find_first_of("<\"");
    if (hash != std::string::npos &&
        (first_term == std::string::npos || hash < first_term)) {
      line = line.substr(0, hash);
    }
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    auto triple = ParseNTriplesLine(line);
    if (!triple.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                triple.status().message());
    }
    out.push_back(std::move(triple).value());
  }
  return out;
}

}  // namespace gridvine
