#ifndef GRIDVINE_SELFORG_INCREMENTAL_ASSESSOR_H_
#define GRIDVINE_SELFORG_INCREMENTAL_ASSESSOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mapping/mapping_graph.h"
#include "selforg/mapping_assessor.h"

namespace gridvine {

/// Incremental Bayesian mapping-quality analysis: the continuous-mode
/// counterpart of MappingAssessor::Assess.
///
/// Instead of re-enumerating every cycle and re-converging belief
/// propagation from scratch each round, the assessor subscribes to
/// MappingGraph edge events (add / deprecate / re-intern / remove) and
/// maintains the cycle factor graph across rounds:
///
///  * adding a mapping enumerates only the cycles *through the new edge*
///    (every new cycle must traverse it) and inserts their factors;
///  * deprecating or removing a mapping drops exactly the factors whose
///    cycle contains it;
///  * re-interning (same id, changed content) is remove-then-add.
///
/// Message passing is dirty-region residual propagation: only factors whose
/// inputs changed recompute their outgoing messages, a per-Update() message
/// cap bounds the work each round, and unconverged regions carry over to the
/// next round.
///
/// Equivalence invariant (the correctness story, enforced by the
/// differential tests): the maintained factor graph is *bit-identical* to
/// the one a fresh assessor builds from the same graph content, regardless
/// of the event history that produced that content. Two ingredients make
/// this hold:
///
///  1. discovery probes both orientations of an edge, so a cycle whose only
///     valid traversal crosses the newest edge backwards is still found;
///  2. each cycle's scored representation is canonical — the
///     lexicographically smallest closed walk that starts with one of its
///     mappings traversed forward — so the consistency verdict does not
///     depend on which edge's insertion discovered the cycle.
///
/// Consequently AssessWithFixedSchedule() (the deterministic cold-start
/// schedule over the maintained structure) is bit-identical to the same
/// call on a rebuilt assessor. The warm-started fixed point of Update() is
/// a fixed point of the same message operator; on graphs where loopy BP is
/// unambiguous (the realistic regime: dense consistent cycles, few bad
/// edges) it agrees with a rebuilt assessor's converged posteriors within
/// 1e-6. Heavily frustrated graphs can have multiple BP fixed points, in
/// which case only the fixed-schedule equivalence is guaranteed (see
/// incremental_assessor_test).
class IncrementalAssessor : public MappingGraph::Listener {
 public:
  struct Options {
    /// Cycle-enumeration and BP parameters shared with the batch assessor
    /// (max_cycle_len, epsilon/delta, default_prior, bp_iterations,
    /// min_chained_attributes).
    MappingAssessor::Options assess;
    /// Factor->variable messages recomputed per Update() call. Unconverged
    /// factors stay dirty and resume next round.
    size_t message_cap = 50000;
    /// Residual threshold: a message change below this does not re-dirty
    /// its neighborhood.
    double tolerance = 1e-10;
  };

  struct UpdateStats {
    size_t messages = 0;      // factor->variable messages recomputed
    size_t sweeps = 0;        // dirty-set passes
    size_t dirty_before = 0;  // dirty factors at entry
    size_t dirty_after = 0;   // dirty factors left (cap hit) at exit
    bool converged = false;   // dirty set drained below tolerance
  };

  IncrementalAssessor();
  explicit IncrementalAssessor(Options options);
  ~IncrementalAssessor() override;

  IncrementalAssessor(const IncrementalAssessor&) = delete;
  IncrementalAssessor& operator=(const IncrementalAssessor&) = delete;

  /// Subscribes to `graph` and (re)builds the factor graph from its current
  /// content. Any previous attachment is released. The graph must outlive
  /// the assessor or Detach() must be called first.
  void Attach(MappingGraph* graph);
  void Detach();
  bool attached() const { return graph_ != nullptr; }

  /// Runs capped residual message passing over the dirty region.
  UpdateStats Update();

  /// Warm posteriors from the current messages (call after Update()).
  /// Variables without cycle evidence sit at their prior, exactly like the
  /// batch assessor.
  std::map<std::string, double> Posteriors() const;
  double Posterior(const std::string& id) const;

  /// Cold-start sum-product with the batch assessor's fixed Jacobi schedule
  /// (bp_iterations synchronous sweeps) over the *maintained* structure, in
  /// canonical factor order. Pure: does not touch the incremental message
  /// state. Bit-identical across event histories that yield the same graph
  /// content — the object the differential test compares.
  std::map<std::string, double> AssessWithFixedSchedule() const;

  /// Deterministic fingerprint of the maintained structure: every factor's
  /// canonical cycle, verdict, scope and every variable's prior. Equal
  /// strings mean equal factor graphs.
  std::string StructureDigest() const;

  size_t factor_count() const { return factors_.size(); }
  size_t variable_count() const { return prior_.size(); }
  size_t dirty_count() const { return dirty_.size(); }
  /// Total factor->variable messages recomputed since Attach().
  uint64_t lifetime_messages() const { return lifetime_messages_; }

  const Options& options() const { return options_; }

  // MappingGraph::Listener:
  void OnMappingAdded(const MappingGraph& graph,
                      const std::string& id) override;
  void OnMappingReplaced(const MappingGraph& graph,
                         const std::string& id) override;
  void OnMappingDeprecated(const MappingGraph& graph,
                           const std::string& id) override;
  void OnMappingRemoved(const MappingGraph& graph,
                        const std::string& id) override;

 private:
  /// A factor key is the cycle's unordered edge-id set, sorted. Two
  /// traversals of the same edges are one observation.
  using FactorKey = std::vector<std::string>;

  struct Factor {
    std::vector<std::string> cycle;  // canonical scored representation
    bool consistent = false;
    int attributes_checked = 0;
    std::vector<std::string> vars;  // automatic mappings in scope, sorted
    std::vector<double> msg_fv;     // factor -> vars[i], value = P(good)
    std::vector<double> msg_vf;     // vars[i] -> factor
  };

  void HandleAdd(const MappingGraph& graph, const std::string& id);
  void HandleRemove(const std::string& id);
  void InsertFactor(const MappingGraph& graph, const FactorKey& key);
  void DropFactor(const FactorKey& key);
  void MarkNeighborsDirty(const std::string& var, const FactorKey& except);

  /// All simple-cycle edge-id sets containing `id` (either orientation),
  /// up to assess.max_cycle_len edges.
  std::set<FactorKey> CycleSetsContaining(const MappingGraph& graph,
                                          const std::string& id) const;
  /// Lexicographically smallest closed forward-start walk over `key`, or
  /// empty when no orientation closes (factor skipped).
  std::vector<std::string> CanonicalCycleOrder(const MappingGraph& graph,
                                               const FactorKey& key) const;

  size_t SlotOf(const Factor& f, const std::string& var) const;
  void RefreshVarToFactor(Factor* f);
  double FactorToVarMessage(const Factor& f, size_t slot) const;

  Options options_;
  MappingAssessor checker_;  // CheckCycle implementation + shared knobs
  MappingGraph* graph_ = nullptr;

  std::map<std::string, double> prior_;  // active automatic mappings
  std::map<FactorKey, Factor> factors_;
  /// Every member edge id -> factors whose cycle contains it (including
  /// manual mappings, which are in the cycle but not in scope).
  std::map<std::string, std::set<FactorKey>> edge_index_;
  /// Variable id -> factors where it is in scope.
  std::map<std::string, std::set<FactorKey>> incidence_;
  std::set<FactorKey> dirty_;
  uint64_t lifetime_messages_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_INCREMENTAL_ASSESSOR_H_
