#ifndef GRIDVINE_COMMON_STATS_H_
#define GRIDVINE_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gridvine {

/// Accumulates scalar samples and answers the distribution questions the
/// experiment harnesses keep asking (percentiles, CDF fractions, moments).
/// Samples are kept; queries sort lazily. Not thread-safe (the simulator is
/// single-threaded).
class SampleStats {
 public:
  SampleStats() = default;

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Population standard deviation; 0 with fewer than 2 samples.
  double Stddev() const;

  /// p in [0, 1]; nearest-rank on the sorted samples. 0 when empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(0.5); }

  /// Fraction of samples <= bound (a CDF point). 0 when empty.
  double FractionAtMost(double bound) const;

  /// Gini coefficient of the (non-negative) samples; 0 = perfectly even.
  double Gini() const;

  /// "n=5 mean=1.2 p50=1.0 p95=3.4 max=4.0" — for quick logging.
  std::string Summary() const;

  /// The sorted samples (for custom post-processing).
  const std::vector<double>& sorted() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket histogram for printing latency/size distributions in bench
/// output and for the MetricsRegistry, where sorted-sample percentiles
/// (O(n log n) per snapshot) would be too expensive. Percentile answers are
/// quantized to bucket upper edges — pick edges to the resolution you need.
class Histogram {
 public:
  /// Buckets: [edges[0], edges[1]), [edges[1], edges[2]), ...; samples below
  /// the first edge and at/above the last land in two open-ended buckets.
  explicit Histogram(std::vector<double> edges);

  /// `count` geometric edges: start, start*factor, start*factor^2, ...
  /// The usual shape for latencies/sizes spanning orders of magnitude.
  static Histogram Exponential(double start, double factor, size_t count);

  void Add(double value);
  size_t total() const { return total_; }
  size_t count() const { return total_; }

  /// p in [0, 1]; nearest-rank over buckets, answering the containing
  /// bucket's upper edge (the open-ended overflow bucket answers the last
  /// edge — its lower bound). 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& edges() const { return edges_; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t bucket) const { return counts_[bucket]; }

  /// One line per bucket: "[lo, hi)  count  ####".
  std::string Format(int bar_width = 40) const;

 private:
  std::vector<double> edges_;
  std::vector<uint64_t> counts_;  // edges.size() + 1 buckets
  size_t total_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_STATS_H_
