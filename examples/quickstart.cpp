// Quickstart: stand up a small GridVine network, share a schema and a few
// triples, and run a triple-pattern query — the minimal end-to-end tour of
// the public API.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "gridvine/gridvine_network.h"

using namespace gridvine;  // examples favour brevity

int main() {
  // 1. A simulated deployment: 16 peers in a P-Grid overlay, 20 ms links.
  GridVineNetwork::Options options;
  options.num_peers = 16;
  options.key_depth = 12;
  options.seed = 2007;
  options.latency = GridVineNetwork::LatencyKind::kConstant;
  options.latency_param = 0.020;
  GridVineNetwork net(options);
  std::printf("network up: %zu peers, %d-bit key space\n\n", net.size(),
              options.key_depth);

  // 2. Share a schema (peer 0 defines it; it lands at Hash("EMBL")).
  Schema embl("EMBL", "bio", {"Organism", "SequenceLength"});
  if (!net.InsertSchema(0, embl).ok()) return 1;
  std::printf("schema inserted: %s\n", embl.Serialize().c_str());

  // 3. Share triples. Each is indexed three times (subject / predicate /
  //    object) so constraint queries on any position can be routed.
  struct Row {
    const char* id;
    const char* organism;
  };
  for (const Row& row : {Row{"embl:A78712", "Aspergillus niger"},
                         Row{"embl:A78767", "Aspergillus niger"},
                         Row{"embl:B00001", "Penicillium chrysogenum"}}) {
    Triple t(Term::Uri(row.id), Term::Uri("EMBL#Organism"),
             Term::Literal(row.organism));
    if (!net.InsertTriple(1, t).ok()) return 1;
    std::printf("triple inserted: %s\n", t.ToString().c_str());
  }

  // 4. Query from a different peer: the paper's running example —
  //    SearchFor(x? : (?x, EMBL#Organism, %Aspergillus%)).
  TriplePatternQuery query(
      "x", TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                         Term::Literal("%Aspergillus%")));
  std::printf("\n%s\n", query.ToString().c_str());
  auto result = net.SearchFor(9, query);
  if (!result.status.ok()) {
    std::printf("query failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  for (const auto& item : result.items) {
    std::printf("  result: %-14s (schema %s, %.0f ms)\n",
                item.value.value().c_str(), item.schema.c_str(),
                item.arrival * 1000);
  }
  std::printf("answered in %.0f ms simulated time\n", result.latency * 1000);
  return 0;
}
