#include "rdf/term_dictionary.h"

namespace gridvine {

TermId TermDictionary::Intern(const Term& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  auto [inserted, _] = ids_.emplace(term, id);
  terms_.push_back(&inserted->first);
  return id;
}

std::optional<TermId> TermDictionary::Lookup(const Term& term) const {
  auto it = ids_.find(term);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void TermDictionary::Clear() {
  ids_.clear();
  terms_.clear();
}

}  // namespace gridvine
