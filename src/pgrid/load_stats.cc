#include "pgrid/load_stats.h"

#include <algorithm>

namespace gridvine {

LoadStats ComputeLoadStats(const std::vector<PGridPeer*>& peers) {
  LoadStats stats;
  if (peers.empty()) return stats;
  std::vector<size_t> loads;
  loads.reserve(peers.size());
  for (const PGridPeer* p : peers) {
    loads.push_back(p->StorageSize());
    stats.total += p->StorageSize();
    stats.max = std::max(stats.max, p->StorageSize());
  }
  stats.mean = double(stats.total) / double(peers.size());
  stats.max_over_mean = stats.mean > 0 ? double(stats.max) / stats.mean : 0;

  // Gini via the sorted-rank formula.
  std::sort(loads.begin(), loads.end());
  double n = double(loads.size());
  double weighted = 0;
  for (size_t i = 0; i < loads.size(); ++i) {
    weighted += double(i + 1) * double(loads[i]);
  }
  if (stats.total > 0) {
    stats.gini = (2.0 * weighted) / (n * double(stats.total)) - (n + 1.0) / n;
  }
  return stats;
}

}  // namespace gridvine
