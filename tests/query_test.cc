#include <gtest/gtest.h>

#include "query/query.h"
#include "query/reformulation.h"
#include "query/reformulation_cache.h"

namespace gridvine {
namespace {

TriplePatternQuery OrganismQuery(const std::string& schema = "EMBL") {
  return TriplePatternQuery(
      "x", TriplePattern(Term::Var("x"), Term::Uri(schema + "#Organism"),
                         Term::Literal("%Aspergillus%")));
}

SchemaMapping OrganismMapping(const std::string& id, const std::string& src,
                              const std::string& dst) {
  SchemaMapping m(id, src, dst);
  EXPECT_TRUE(m.AddCorrespondence(src + "#Organism", dst + "#Organism").ok());
  return m;
}

TEST(QueryTest, ValidateRequiresDistinguishedVarInPattern) {
  EXPECT_TRUE(OrganismQuery().Validate().ok());
  TriplePatternQuery bad(
      "z", TriplePattern(Term::Var("x"), Term::Uri("p"), Term::Var("y")));
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  TriplePatternQuery empty(
      "", TriplePattern(Term::Var("x"), Term::Uri("p"), Term::Var("y")));
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());
}

TEST(QueryTest, SchemaNameFromPredicate) {
  EXPECT_EQ(OrganismQuery().SchemaName(), "EMBL");
  TriplePatternQuery varpred(
      "x", TriplePattern(Term::Var("x"), Term::Var("p"), Term::Var("y")));
  EXPECT_EQ(varpred.SchemaName(), "");
}

TEST(QueryTest, SerializeParseRoundTrip) {
  TriplePatternQuery q = OrganismQuery();
  auto parsed = TriplePatternQuery::Parse(q.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, q);
}

TEST(QueryTest, ParseRejectsGarbage) {
  EXPECT_FALSE(TriplePatternQuery::Parse("no separator").ok());
  EXPECT_FALSE(TriplePatternQuery::Parse("x\x1egarbage").ok());
}

TEST(QueryTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(OrganismQuery().ToString(),
            "SearchFor(x? : (?x, <EMBL#Organism>, \"%Aspergillus%\"))");
}

TEST(ConjunctiveQueryTest, Validate) {
  ConjunctiveQuery q(
      {"x"},
      {TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                     Term::Literal("%niger%")),
       TriplePattern(Term::Var("x"), Term::Uri("EMBL#Length"),
                     Term::Var("l"))});
  EXPECT_TRUE(q.Validate().ok());

  ConjunctiveQuery no_patterns({"x"}, {});
  EXPECT_TRUE(no_patterns.Validate().IsInvalidArgument());

  ConjunctiveQuery unbound(
      {"z"}, {TriplePattern(Term::Var("x"), Term::Uri("p"), Term::Var("y"))});
  EXPECT_TRUE(unbound.Validate().IsInvalidArgument());
}

TEST(ReformulateTest, SubstitutesPredicate) {
  auto q = OrganismQuery("EMBL");
  SchemaMapping m("m1", "EMBL", "EMP");
  ASSERT_TRUE(m.AddCorrespondence("EMBL#Organism", "EMP#SystematicName").ok());
  auto r = Reformulate(q, m);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->pattern().predicate().value(), "EMP#SystematicName");
  // Everything else unchanged (the paper's Figure 2 example).
  EXPECT_EQ(r->pattern().object().value(), "%Aspergillus%");
  EXPECT_EQ(r->distinguished_var(), "x");
}

TEST(ReformulateTest, FailsOnWrongSchema) {
  auto q = OrganismQuery("PDB");
  SchemaMapping m = OrganismMapping("m1", "EMBL", "EMP");
  EXPECT_TRUE(Reformulate(q, m).status().IsInvalidArgument());
}

TEST(ReformulateTest, FailsOnMissingCorrespondence) {
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Uri("EMBL#Keywords"),
                         Term::Var("y")));
  SchemaMapping m = OrganismMapping("m1", "EMBL", "EMP");
  EXPECT_TRUE(Reformulate(q, m).status().IsNotFound());
}

TEST(ReformulateTest, FailsOnDeprecatedMapping) {
  auto q = OrganismQuery();
  SchemaMapping m = OrganismMapping("m1", "EMBL", "EMP");
  m.set_deprecated(true);
  EXPECT_TRUE(Reformulate(q, m).status().IsInvalidArgument());
}

TEST(ReformulateTest, FailsOnVariablePredicate) {
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Var("p"), Term::Var("y")));
  SchemaMapping m = OrganismMapping("m1", "EMBL", "EMP");
  EXPECT_TRUE(Reformulate(q, m).status().IsInvalidArgument());
}

TEST(ReformulateTest, AlongPath) {
  auto q = OrganismQuery("A");
  std::vector<SchemaMapping> path = {OrganismMapping("ab", "A", "B"),
                                     OrganismMapping("bc", "B", "C")};
  auto r = ReformulateAlongPath(q, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->pattern().predicate().value(), "C#Organism");
  // Broken chain fails.
  std::vector<SchemaMapping> broken = {OrganismMapping("ab", "A", "B"),
                                       OrganismMapping("cd", "C", "D")};
  EXPECT_FALSE(ReformulateAlongPath(q, broken).ok());
}

TEST(ExpandQueryTest, ReachesAllSchemasOnce) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  g.AddMapping(OrganismMapping("bc", "B", "C"));
  g.AddMapping(OrganismMapping("ac", "A", "C"));
  g.AddMapping(OrganismMapping("ca", "C", "A"));  // back-edge: no revisit

  auto expansions = ExpandQuery(OrganismQuery("A"), g, /*max_hops=*/5);
  // B and C each reached exactly once (A itself excluded).
  ASSERT_EQ(expansions.size(), 2u);
  std::set<std::string> schemas;
  for (const auto& e : expansions) {
    schemas.insert(e.schema);
    EXPECT_EQ(e.query.SchemaName(), e.schema);
  }
  EXPECT_TRUE(schemas.count("B"));
  EXPECT_TRUE(schemas.count("C"));
}

TEST(ExpandQueryTest, RespectsMaxHops) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  g.AddMapping(OrganismMapping("bc", "B", "C"));
  auto expansions = ExpandQuery(OrganismQuery("A"), g, /*max_hops=*/1);
  ASSERT_EQ(expansions.size(), 1u);
  EXPECT_EQ(expansions[0].schema, "B");
}

TEST(ExpandQueryTest, TracksConfidenceAndPath) {
  MappingGraph g;
  auto ab = OrganismMapping("ab", "A", "B");
  ab.set_confidence(0.9);
  auto bc = OrganismMapping("bc", "B", "C");
  bc.set_confidence(0.5);
  g.AddMapping(ab);
  g.AddMapping(bc);
  auto expansions = ExpandQuery(OrganismQuery("A"), g, 5);
  ASSERT_EQ(expansions.size(), 2u);
  for (const auto& e : expansions) {
    if (e.schema == "C") {
      EXPECT_EQ(e.mapping_ids,
                (std::vector<std::string>{"ab", "bc"}));
      EXPECT_NEAR(e.confidence, 0.45, 1e-9);
    }
  }
}

TEST(ExpandQueryTest, PrunesBranchesWithoutCorrespondence) {
  MappingGraph g;
  SchemaMapping partial("ab", "A", "B");
  ASSERT_TRUE(partial.AddCorrespondence("A#Other", "B#Other").ok());
  g.AddMapping(partial);  // no Organism correspondence
  g.AddMapping(OrganismMapping("ac", "A", "C"));
  auto expansions = ExpandQuery(OrganismQuery("A"), g, 5);
  ASSERT_EQ(expansions.size(), 1u);
  EXPECT_EQ(expansions[0].schema, "C");
}

TEST(ExpandQueryTest, UsesBidirectionalMappingsBackwards) {
  MappingGraph g;
  auto ba = OrganismMapping("ba", "B", "A");
  ba.set_bidirectional(true);
  g.AddMapping(ba);
  auto expansions = ExpandQuery(OrganismQuery("A"), g, 5);
  ASSERT_EQ(expansions.size(), 1u);
  EXPECT_EQ(expansions[0].schema, "B");
  EXPECT_EQ(expansions[0].query.pattern().predicate().value(), "B#Organism");
}

TEST(OrientMappingsTest, ForwardEquivalenceAndReversedBidirectional) {
  auto eq = OrganismMapping("ab", "A", "B");
  auto bi = OrganismMapping("cb", "C", "B");
  bi.set_bidirectional(true);
  std::vector<SchemaMapping> raw = {eq, bi};
  auto from_a = OrientMappingsFrom("A", raw);
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(from_a[0].target_schema(), "B");
  auto from_b = OrientMappingsFrom("B", raw);
  // eq is unidirectional (no reverse); bi reverses to B -> C.
  ASSERT_EQ(from_b.size(), 1u);
  EXPECT_EQ(from_b[0].target_schema(), "C");
}

TEST(OrientMappingsTest, SubsumptionReversesAsSoundSpecialization) {
  // A#Organism ⊑ B#Organism, NOT bidirectional.
  auto sub = OrganismMapping("ab", "A", "B");
  sub.set_type(MappingType::kSubsumption);
  std::vector<SchemaMapping> raw = {sub};
  // Forward (generalizing) traversal allowed by default...
  auto from_a = OrientMappingsFrom("A", raw);
  ASSERT_EQ(from_a.size(), 1u);
  // ...but excluded under sound_only.
  EXPECT_TRUE(OrientMappingsFrom("A", raw, /*sound_only=*/true).empty());
  // Reverse (specializing) traversal is always available.
  auto from_b = OrientMappingsFrom("B", raw);
  ASSERT_EQ(from_b.size(), 1u);
  EXPECT_EQ(from_b[0].target_schema(), "A");
  EXPECT_EQ(OrientMappingsFrom("B", raw, true).size(), 1u);
}

TEST(OrientMappingsTest, DeprecatedExcluded) {
  auto m = OrganismMapping("ab", "A", "B");
  m.set_deprecated(true);
  EXPECT_TRUE(OrientMappingsFrom("A", {m}).empty());
}

// --- ReformulationCache ------------------------------------------------------

std::set<std::string> SchemasOf(const std::vector<ReformulatedQuery>& rs) {
  std::set<std::string> out;
  for (const auto& r : rs) out.insert(r.schema);
  return out;
}

TEST(ReformulationCacheTest, HitReturnsSameExpansions) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  g.AddMapping(OrganismMapping("bc", "B", "C"));

  ReformulationCache cache;
  auto q = OrganismQuery("A");
  auto first = cache.Expand(q, g, 5);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  auto second = cache.Expand(q, g, 5);
  EXPECT_EQ(cache.hits(), 1u);

  ASSERT_EQ(first.size(), second.size());
  auto plain = ExpandQuery(q, g, 5);
  ASSERT_EQ(second.size(), plain.size());
  EXPECT_EQ(SchemasOf(second), SchemasOf(plain));
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second[i].query.Serialize(), first[i].query.Serialize());
    EXPECT_EQ(second[i].mapping_ids, first[i].mapping_ids);
    EXPECT_EQ(second[i].confidence, first[i].confidence);
  }
}

TEST(ReformulationCacheTest, CacheKeyedByPredicateNotWholeQuery) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  ReformulationCache cache;
  cache.Expand(OrganismQuery("A"), g, 5);
  // Same predicate, different object constant: the derivation is reusable.
  TriplePatternQuery other("x",
                           TriplePattern(Term::Var("x"), Term::Uri("A#Organism"),
                                         Term::Literal("%Penicillium%")));
  auto rs = cache.Expand(other, g, 5);
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(rs.size(), 1u);
  // The cached derivation is re-applied to THIS query's pattern.
  EXPECT_EQ(rs[0].query.pattern().object().value(), "%Penicillium%");
  EXPECT_EQ(rs[0].query.pattern().predicate().value(), "B#Organism");
}

TEST(ReformulationCacheTest, AddMappingInvalidates) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  ReformulationCache cache;
  auto q = OrganismQuery("A");
  EXPECT_EQ(cache.Expand(q, g, 5).size(), 1u);
  uint64_t v = g.version();
  g.AddMapping(OrganismMapping("bc", "B", "C"));
  EXPECT_GT(g.version(), v);
  // Stale entry is recomputed, not served: the new schema C appears.
  auto rs = cache.Expand(q, g, 5);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(SchemasOf(rs), (std::set<std::string>{"B", "C"}));
}

TEST(ReformulationCacheTest, DeprecateInvalidates) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  g.AddMapping(OrganismMapping("bc", "B", "C"));
  ReformulationCache cache;
  auto q = OrganismQuery("A");
  EXPECT_EQ(cache.Expand(q, g, 5).size(), 2u);
  uint64_t v = g.version();
  ASSERT_TRUE(g.Deprecate("bc"));
  EXPECT_GT(g.version(), v);
  auto rs = cache.Expand(q, g, 5);
  EXPECT_EQ(SchemasOf(rs), (std::set<std::string>{"B"}));
  // Deprecating an already-deprecated mapping is a no-op: version stable,
  // so the recomputed entry now serves hits again.
  v = g.version();
  g.Deprecate("bc");
  EXPECT_EQ(g.version(), v);
  cache.Expand(q, g, 5);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ReformulationCacheTest, RemoveMappingInvalidates) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  ReformulationCache cache;
  auto q = OrganismQuery("A");
  EXPECT_EQ(cache.Expand(q, g, 5).size(), 1u);
  ASSERT_TRUE(g.RemoveMapping("ab"));
  EXPECT_TRUE(cache.Expand(q, g, 5).empty());
  // Removing a nonexistent mapping does not bump the version.
  uint64_t v = g.version();
  g.RemoveMapping("nope");
  EXPECT_EQ(g.version(), v);
}

TEST(ReformulationCacheTest, DistinctHopBudgetsCachedSeparately) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  g.AddMapping(OrganismMapping("bc", "B", "C"));
  ReformulationCache cache;
  auto q = OrganismQuery("A");
  EXPECT_EQ(cache.Expand(q, g, 1).size(), 1u);
  EXPECT_EQ(cache.Expand(q, g, 5).size(), 2u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ExpandQueryTest, EmptyForVariablePredicate) {
  MappingGraph g;
  g.AddMapping(OrganismMapping("ab", "A", "B"));
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Var("p"), Term::Var("y")));
  EXPECT_TRUE(ExpandQuery(q, g, 5).empty());
}

}  // namespace
}  // namespace gridvine
