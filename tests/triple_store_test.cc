#include "store/triple_store.h"

#include <gtest/gtest.h>

#include "store/ntriples_loader.h"

namespace gridvine {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.Insert(T("seq1", "EMBL#Organism", "Aspergillus niger")).ok());
    ASSERT_TRUE(store_.Insert(T("seq1", "EMBL#Length", "1204")).ok());
    ASSERT_TRUE(store_.Insert(T("seq2", "EMBL#Organism", "Penicillium")).ok());
    ASSERT_TRUE(store_.Insert(T("seq3", "EMBL#Organism", "Aspergillus flavus")).ok());
    ASSERT_TRUE(store_.Insert(T("seq3", "EMP#SystematicName", "NEN94295-05")).ok());
  }
  TripleStore store_;
};

TEST_F(TripleStoreTest, InsertDeduplicates) {
  EXPECT_EQ(store_.size(), 5u);
  EXPECT_TRUE(store_.Insert(T("seq1", "EMBL#Length", "1204")).ok());
  EXPECT_EQ(store_.size(), 5u);
}

TEST_F(TripleStoreTest, InsertValidates) {
  Triple bad(Term::Literal("x"), Term::Uri("p"), Term::Literal("o"));
  EXPECT_TRUE(store_.Insert(bad).IsInvalidArgument());
}

TEST_F(TripleStoreTest, ContainsAndErase) {
  Triple t = T("seq2", "EMBL#Organism", "Penicillium");
  EXPECT_TRUE(store_.Contains(t));
  EXPECT_TRUE(store_.Erase(t));
  EXPECT_FALSE(store_.Contains(t));
  EXPECT_FALSE(store_.Erase(t));
  EXPECT_EQ(store_.size(), 4u);
  // Erased triple no longer surfaces in selections.
  auto rows = store_.Select(TriplePattern(Term::Var("x"),
                                          Term::Uri("EMBL#Organism"),
                                          Term::Var("y")));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, ReinsertAfterErase) {
  Triple t = T("seq2", "EMBL#Organism", "Penicillium");
  store_.Erase(t);
  ASSERT_TRUE(store_.Insert(t).ok());
  EXPECT_TRUE(store_.Contains(t));
  EXPECT_EQ(store_.size(), 5u);
}

TEST_F(TripleStoreTest, SelectByPredicate) {
  auto rows = store_.Select(TriplePattern(Term::Var("x"),
                                          Term::Uri("EMBL#Organism"),
                                          Term::Var("y")));
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(TripleStoreTest, SelectBySubject) {
  auto rows = store_.Select(
      TriplePattern(Term::Uri("seq3"), Term::Var("p"), Term::Var("o")));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, SelectWithLikePattern) {
  auto rows = store_.Select(TriplePattern(Term::Var("x"),
                                          Term::Uri("EMBL#Organism"),
                                          Term::Literal("%Aspergillus%")));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, SelectFullScanWhenNoExactConstant) {
  auto rows = store_.Select(TriplePattern(Term::Var("x"), Term::Var("p"),
                                          Term::Literal("%e%")));
  // "Aspergillus niger", "Penicillium", NEN... no 'e' in "1204".
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(TripleStoreTest, MatchPatternExtractsBindings) {
  auto bindings = store_.MatchPattern(TriplePattern(
      Term::Var("x"), Term::Uri("EMBL#Organism"), Term::Literal("%Aspergillus%")));
  ASSERT_EQ(bindings.size(), 2u);
  for (const auto& b : bindings) {
    ASSERT_TRUE(b.count("x"));
    EXPECT_TRUE(b.at("x").IsUri());
  }
}

TEST_F(TripleStoreTest, ProjectDeduplicatesAndSorts) {
  auto bindings = store_.MatchPattern(
      TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"), Term::Var("y")));
  auto xs = store_.Project(bindings, "x");
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[0].value(), "seq1");
  EXPECT_EQ(xs[2].value(), "seq3");
  EXPECT_TRUE(store_.Project(bindings, "unbound").empty());
}

TEST_F(TripleStoreTest, JoinOnSharedVariable) {
  // ?x organism %Aspergillus% AND ?x has a systematic name ?n
  auto left = store_.MatchPattern(TriplePattern(
      Term::Var("x"), Term::Uri("EMBL#Organism"), Term::Literal("%Aspergillus%")));
  auto right = store_.MatchPattern(TriplePattern(
      Term::Var("x"), Term::Uri("EMP#SystematicName"), Term::Var("n")));
  auto joined = TripleStore::Join(left, right);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].at("x").value(), "seq3");
  EXPECT_EQ(joined[0].at("n").value(), "NEN94295-05");
}

TEST_F(TripleStoreTest, JoinWithNoSharedVariableIsCrossProduct) {
  auto left = store_.MatchPattern(TriplePattern(
      Term::Var("a"), Term::Uri("EMBL#Length"), Term::Var("l")));
  auto right = store_.MatchPattern(TriplePattern(
      Term::Var("b"), Term::Uri("EMP#SystematicName"), Term::Var("n")));
  auto joined = TripleStore::Join(left, right);
  EXPECT_EQ(joined.size(), left.size() * right.size());
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].size(), 4u);  // a, l, b, n
}

TEST_F(TripleStoreTest, JoinEmptySideIsEmpty) {
  auto left = store_.MatchPattern(TriplePattern(
      Term::Var("x"), Term::Uri("EMBL#Organism"), Term::Var("y")));
  EXPECT_TRUE(TripleStore::Join(left, {}).empty());
  EXPECT_TRUE(TripleStore::Join({}, left).empty());
}

TEST_F(TripleStoreTest, DistinctPredicates) {
  auto preds = store_.DistinctPredicates();
  EXPECT_EQ(preds.size(), 3u);
}

TEST_F(TripleStoreTest, ObjectValuesFor) {
  auto values = store_.ObjectValuesFor("EMBL#Organism");
  EXPECT_EQ(values.size(), 3u);
  EXPECT_TRUE(values.count("Penicillium"));
  EXPECT_TRUE(store_.ObjectValuesFor("nope#nope").empty());
}

TEST_F(TripleStoreTest, AllAndClear) {
  EXPECT_EQ(store_.All().size(), 5u);
  store_.Clear();
  EXPECT_TRUE(store_.empty());
  EXPECT_TRUE(store_.All().empty());
  EXPECT_TRUE(store_.Insert(T("s", "p", "o")).ok());
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(TripleStoreTest, InsertBatchDeduplicatesAndValidates) {
  TripleStore store;
  std::vector<Triple> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(T("s" + std::to_string(i % 4), "p", "o" + std::to_string(i)));
  }
  batch.push_back(batch.front());  // duplicate inside the batch
  ASSERT_TRUE(store.InsertBatch(batch).ok());
  EXPECT_EQ(store.size(), 10u);

  // A bad triple rejects the whole batch before any mutation.
  std::vector<Triple> bad = {T("x", "p", "o"),
                             Triple(Term::Literal("no"), Term::Uri("p"),
                                    Term::Literal("o"))};
  EXPECT_TRUE(store.InsertBatch(bad).IsInvalidArgument());
  EXPECT_EQ(store.size(), 10u);
  EXPECT_FALSE(store.Contains(T("x", "p", "o")));
}

TEST_F(TripleStoreTest, DictionarySharesTermsAcrossTriples) {
  TripleStore store;
  ASSERT_TRUE(store.Insert(T("s", "p", "o1")).ok());
  size_t base = store.dictionary_size();
  EXPECT_EQ(base, 3u);
  // Same subject/predicate, new object: exactly one new term.
  ASSERT_TRUE(store.Insert(T("s", "p", "o2")).ok());
  EXPECT_EQ(store.dictionary_size(), base + 1);
  // Same string, different kind (URI vs literal) is a distinct term.
  ASSERT_TRUE(store.Insert(Triple(Term::Uri("s"), Term::Uri("p"),
                                  Term::Uri("o1"))).ok());
  EXPECT_EQ(store.dictionary_size(), base + 2);
  // Erase does not shrink the dictionary (ids stay stable for reinserts).
  store.Erase(T("s", "p", "o1"));
  EXPECT_EQ(store.dictionary_size(), base + 2);
}

TEST_F(TripleStoreTest, CompactionPreservesResultsUnderMassErase) {
  // 200 triples, erase 150 (enough to trip the dead-fraction threshold
  // several times), then verify every survivor by all three indexes.
  TripleStore store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.Insert(T("s" + std::to_string(i), "p" + std::to_string(i % 3),
                       "o" + std::to_string(i)))
            .ok());
  }
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(store.Erase(T("s" + std::to_string(i),
                              "p" + std::to_string(i % 3),
                              "o" + std::to_string(i))));
  }
  EXPECT_EQ(store.size(), 50u);
  for (int i = 150; i < 200; ++i) {
    Triple t = T("s" + std::to_string(i), "p" + std::to_string(i % 3),
                 "o" + std::to_string(i));
    EXPECT_TRUE(store.Contains(t));
    EXPECT_EQ(store.Select(TriplePattern(t.subject(), Term::Var("p"),
                                         Term::Var("o"))).size(), 1u);
    EXPECT_EQ(store.Select(TriplePattern(Term::Var("s"), Term::Var("p"),
                                         t.object())).size(), 1u);
  }
  auto by_pred = store.Select(
      TriplePattern(Term::Var("s"), Term::Uri("p0"), Term::Var("o")));
  size_t expect_p0 = 0;
  for (int i = 150; i < 200; ++i) expect_p0 += (i % 3 == 0);
  EXPECT_EQ(by_pred.size(), expect_p0);
  // Reinsert an erased triple: comes back exactly once.
  ASSERT_TRUE(store.Insert(T("s0", "p0", "o0")).ok());
  EXPECT_EQ(store.Select(TriplePattern(Term::Uri("s0"), Term::Var("p"),
                                       Term::Var("o"))).size(), 1u);
}

TEST_F(TripleStoreTest, LoadNTriplesBulkLoads) {
  TripleStore store;
  std::string text =
      "<seq1> <EMBL#Organism> \"Aspergillus niger\" .\n"
      "# a comment line\n"
      "<seq1> <EMBL#Length> \"1204\" .\n"
      "<seq2> <EMBL#Organism> \"Penicillium\" .\n";
  auto n = LoadNTriples(text, &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.Contains(T("seq2", "EMBL#Organism", "Penicillium")));
}

// Property sweep: store N triples, every one findable by each index.
class TripleStorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleStorePropertyTest, AllTriplesFindableByEveryIndex) {
  TripleStore store;
  int n = GetParam();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store
                    .Insert(T("s" + std::to_string(i % 17),
                              "p" + std::to_string(i % 5),
                              "o" + std::to_string(i)))
                    .ok());
  }
  EXPECT_EQ(store.size(), size_t(n));
  for (int i = 0; i < n; ++i) {
    Triple t = T("s" + std::to_string(i % 17), "p" + std::to_string(i % 5),
                 "o" + std::to_string(i));
    auto by_s = store.Select(
        TriplePattern(t.subject(), Term::Var("p"), Term::Var("o")));
    auto by_p = store.Select(
        TriplePattern(Term::Var("s"), t.predicate(), Term::Var("o")));
    auto by_o = store.Select(
        TriplePattern(Term::Var("s"), Term::Var("p"), t.object()));
    auto in = [&t](const std::vector<Triple>& v) {
      for (const auto& x : v) {
        if (x == t) return true;
      }
      return false;
    };
    EXPECT_TRUE(in(by_s));
    EXPECT_TRUE(in(by_p));
    EXPECT_TRUE(in(by_o));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TripleStorePropertyTest,
                         ::testing::Values(1, 10, 100, 500));

}  // namespace
}  // namespace gridvine
