#include "query/exec/bind.h"

namespace gridvine {

TriplePattern SubstituteBindings(const TriplePattern& pattern,
                                 const BindingSet& bindings) {
  TriplePattern out = pattern;
  for (TriplePos pos :
       {TriplePos::kSubject, TriplePos::kPredicate, TriplePos::kObject}) {
    const Term& t = out.at(pos);
    if (!t.IsVariable()) continue;
    auto it = bindings.find(t.value());
    if (it != bindings.end()) out = out.With(pos, it->second);
  }
  return out;
}

BindingSet RestrictTo(const BindingSet& row,
                      const std::vector<std::string>& vars) {
  BindingSet out;
  for (const std::string& var : vars) {
    auto it = row.find(var);
    if (it != row.end()) out.emplace(var, it->second);
  }
  return out;
}

std::vector<std::string> SharedVars(const TriplePattern& pattern,
                                    const BindingSet& row) {
  std::vector<std::string> shared;
  for (const std::string& var : pattern.Variables()) {
    if (row.count(var)) shared.push_back(var);
  }
  return shared;
}

}  // namespace gridvine
