// Experiment E3 — connectivity indicator vs. giant component (paper
// Section 3.1):
//
//   ci = Σ (jk − k) p_jk ;  ci >= 0  <=>  a giant connected component
//   emerges in the graph of schemas and mappings.
//
// 50 schemas (as in the demo); random directed mappings are added one
// at a time. After each insertion we print the indicator (computed only
// from the degree sequence, as the registry peer would) against the measured
// largest-SCC fraction. The crossover of ci through 0 must coincide with the
// giant component emerging.
//
//   $ ./bench/bench_connectivity

#include <cstdio>
#include <set>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "mapping/mapping_graph.h"
#include "selforg/connectivity.h"

using namespace gridvine;

namespace {

SchemaMapping RandomMapping(int seq, const std::string& a,
                            const std::string& b) {
  // Directed mappings: the generating-function criterion ci = Σ(jk − k)p_jk
  // is derived for directed graphs. (For a purely bidirectional mapping
  // network each schema has j = k, so jk − k = k(k−1) >= 0 and the indicator
  // never goes negative — which is why the live self-organizer additionally
  // treats isolated schemas as under-connectivity.)
  SchemaMapping m("m" + std::to_string(seq), a, b);
  m.AddCorrespondence(a + "#Organism", b + "#Organism").ok();
  return m;
}

void RunTrial(uint64_t seed, int num_schemas, bool print_rows) {
  MappingGraph graph;
  std::vector<std::string> schemas;
  for (int s = 0; s < num_schemas; ++s) {
    schemas.push_back("S" + std::to_string(s));
    graph.AddSchema(schemas.back());
  }

  Rng rng(seed);
  std::set<std::pair<int, int>> used;
  double crossover_mappings = -1;
  double giant_at_crossover = 0;
  if (print_rows) {
    std::printf("  %-9s %9s %9s %12s\n", "mappings", "ci", "SCC-frac",
                "giant(>25%)");
  }
  for (int added = 1; added <= 3 * num_schemas; ++added) {
    int a, b;
    do {
      a = int(rng.UniformInt(0, num_schemas - 1));
      b = int(rng.UniformInt(0, num_schemas - 1));
    } while (a == b || used.count({a, b}));
    used.insert({a, b});
    graph.AddMapping(RandomMapping(added, schemas[size_t(a)],
                                   schemas[size_t(b)]));

    double ci = ConnectivityIndicator(graph.DegreeSequence());
    double scc = graph.LargestSccFraction();
    if (crossover_mappings < 0 && ci >= 0) {
      crossover_mappings = added;
      giant_at_crossover = scc;
    }
    if (print_rows && (added % 10 == 0 || crossover_mappings == added)) {
      std::printf("  %-9d %9.3f %8.0f%% %12s\n", added, ci, scc * 100,
                  scc > 0.25 ? "yes" : "no");
    }
  }
  if (print_rows) {
    std::printf("\n  ci crossed 0 at %d mappings; largest SCC there: %.0f%%\n",
                int(crossover_mappings), giant_at_crossover * 100);
  }
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_connectivity");
  std::printf("E3: connectivity indicator vs. giant-SCC emergence "
              "(50 schemas, random directed mappings)\n\n");
  RunTrial(/*seed=*/1, /*num_schemas=*/50, /*print_rows=*/true);

  // Aggregate check across seeds: at the ci >= 0 crossover the largest SCC
  // must already be substantial (the indicator predicts the transition).
  std::printf("\n  crossover statistics over 20 seeds:\n");
  double scc_sum = 0;
  double mappings_sum = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    MappingGraph graph;
    std::vector<std::string> schemas;
    for (int s = 0; s < 50; ++s) {
      schemas.push_back("S" + std::to_string(s));
      graph.AddSchema(schemas.back());
    }
    Rng rng(seed * 7919);
    std::set<std::pair<int, int>> used;
    for (int added = 1; added <= 150; ++added) {
      int a, b;
      do {
        a = int(rng.UniformInt(0, 49));
        b = int(rng.UniformInt(0, 49));
      } while (a == b || used.count({a, b}));
      used.insert({a, b});
      graph.AddMapping(RandomMapping(added, schemas[size_t(a)],
                                     schemas[size_t(b)]));
      if (ConnectivityIndicator(graph.DegreeSequence()) >= 0) {
        scc_sum += graph.LargestSccFraction();
        mappings_sum += added;
        break;
      }
    }
  }
  std::printf("    mean mappings at ci=0 crossover: %.1f\n",
              mappings_sum / 20);
  std::printf("    mean largest-SCC fraction there: %.0f%%\n",
              scc_sum / 20 * 100);
  json.Add("crossover", {{"mean_mappings_at_ci0", mappings_sum / 20},
                         {"mean_scc_fraction", scc_sum / 20}});
  json.Finish();
  return 0;
}
