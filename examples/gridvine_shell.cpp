// Interactive GridVine shell — the closest thing to the paper's live
// demonstration: a simulated network you can feed schemas, mappings and
// N-Triples data, then query with RDQL. Reads commands from stdin (also
// scriptable through a pipe).
//
//   $ ./examples/gridvine_shell
//   gridvine> help
//
// Example session:
//   schema EMBL bio Organism,SequenceLength
//   schema EMP bio SystematicName
//   triple <embl:A78712> <EMBL#Organism> "Aspergillus niger" .
//   triple <emp:NEN94295> <EMP#SystematicName> "Aspergillus niger" .
//   map EMBL EMP EMBL#Organism>EMP#SystematicName
//   query SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")
//   stats

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>

#include "common/string_util.h"
#include "gridvine/query_frontend.h"
#include "query/rdql_parser.h"
#include "rdf/ntriples.h"
#include "workload/bio_workload.h"
#include "gridvine/gridvine_network.h"

using namespace gridvine;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  schema <name> <domain> <attr1,attr2,...>   share a schema\n"
      "  triple <s> <p> \"o\" .                       share one N-Triples "
      "line\n"
      "  map <src> <dst> <sAttr>ToAttr[;...]        share a bidirectional "
      "mapping\n"
      "                                             (correspondences "
      "'src#a>dst#b')\n"
      "  query <RDQL>                               run a query "
      "(reformulation on)\n"
      "  queryplain <RDQL>                          run without "
      "reformulation\n"
      "  cquery <RDQL>                              conjunctive query "
      "(bind-join)\n"
      "  cquerycollect <RDQL>                       conjunctive, "
      "collect-then-join\n"
      "  plan explain <RDQL>                        physical plan + "
      "estimated/observed rows\n"
      "  demo                                       load a small "
      "bioinformatic corpus\n"
      "  stats                                      network statistics\n"
      "  cache stats                                extent-cache totals "
      "across peers\n"
      "  frontend stats                             query-frontend totals "
      "across peers\n"
      "  mem                                        per-component memory "
      "footprint\n"
      "  trace on|off                               toggle span recording\n"
      "  trace dump [file]                          export Chrome trace "
      "JSON\n"
      "  metrics [prefix|file]                      unified metrics JSON; a "
      "prefix\n"
      "                                             like 'gv.cache' filters "
      "names,\n"
      "                                             a path ('/' or .json) "
      "writes\n"
      "  health on [window_s]                       start the windowed "
      "watchdog\n"
      "  health                                     sample now + list "
      "violations\n"
      "  top [n]                                    busiest metrics in the "
      "latest\n"
      "                                             window (by |delta|)\n"
      "  timeseries [file]                          windowed metrics "
      "history JSON\n"
      "  help | quit\n"
      "flags: --shards N runs the deployment on the sharded engine\n");
}

}  // namespace

int main(int argc, char** argv) {
  GridVineNetwork::Options options;
  options.num_peers = 32;
  options.key_depth = 24;
  options.seed = 1;
  options.latency = GridVineNetwork::LatencyKind::kConstant;
  options.latency_param = 0.02;
  options.peer.query_timeout = 5.0;
  // The serving layer is on: responder-side extent caching, and every query
  // enters through the issuing peer's QueryFrontend ('frontend stats').
  options.peer.cache.enabled = true;
  // Statistics too, so 'plan explain' and conjunctive queries show the
  // cost-based/adaptive pipeline (stale caches degrade to greedy).
  options.peer.stats.enabled = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      options.shards = uint32_t(std::max(1, std::atoi(argv[++i])));
    } else {
      std::fprintf(stderr, "usage: %s [--shards N]\n", argv[0]);
      return 2;
    }
  }
  GridVineNetwork net(options);
  if (options.shards > 1) {
    std::printf(
        "GridVine shell — %zu simulated peers on %u shards. Type 'help'.\n",
        net.size(), options.shards);
  } else {
    std::printf("GridVine shell — %zu simulated peers. Type 'help'.\n",
                net.size());
  }

  size_t next_peer = 0;
  size_t last_peer = 0;  // most recent issuer — 'plan explain' reads its cache
  auto pick_peer = [&]() {
    last_peer = next_peer++ % net.size();
    return last_peer;
  };

  std::string line;
  std::printf("gridvine> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      // fallthrough to prompt
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "schema") {
      std::string name, domain, attrs;
      in >> name >> domain >> attrs;
      Schema schema(name, domain, Split(attrs, ','));
      Status st = net.InsertSchema(pick_peer(), schema);
      std::printf(st.ok() ? "ok: %s\n" : "error: %s\n",
                  st.ok() ? schema.Serialize().c_str()
                          : st.ToString().c_str());
    } else if (cmd == "triple") {
      std::string rest;
      std::getline(in, rest);
      auto triple = ParseNTriplesLine(rest);
      if (!triple.ok()) {
        std::printf("error: %s\n", triple.status().ToString().c_str());
      } else {
        Status st = net.InsertTriple(pick_peer(), *triple);
        std::printf(st.ok() ? "ok: %s\n" : "error: %s\n",
                    st.ok() ? triple->ToString().c_str()
                            : st.ToString().c_str());
      }
    } else if (cmd == "map") {
      std::string src, dst, corr;
      in >> src >> dst >> corr;
      SchemaMapping m(src + "-" + dst, src, dst);
      m.set_bidirectional(true);
      Status st;
      for (const auto& pair : Split(corr, ';')) {
        size_t gt = pair.find('>');
        if (gt == std::string::npos) {
          st = Status::InvalidArgument("correspondence needs 'a>b': " + pair);
          break;
        }
        st = m.AddCorrespondence(pair.substr(0, gt), pair.substr(gt + 1));
        if (!st.ok()) break;
      }
      if (st.ok()) st = net.InsertMapping(pick_peer(), m);
      if (st.ok()) {
        std::printf("ok: %zu correspondence(s)\n", m.size());
      } else {
        std::printf("error: %s\n", st.ToString().c_str());
      }
    } else if (cmd == "query" || cmd == "queryplain") {
      std::string rest;
      std::getline(in, rest);
      auto q = ParseRdqlSingle(rest);
      if (!q.ok()) {
        std::printf("error: %s\n", q.status().ToString().c_str());
      } else {
        GridVinePeer::QueryOptions qopts;
        qopts.reformulate = (cmd == "query");
        auto res = net.ServeFor(pick_peer(), *q, qopts);
        if (!res.status.ok()) {
          std::printf("error: %s\n", res.status.ToString().c_str());
        } else {
          for (const auto& item : res.items) {
            std::printf("  %-24s [%s, %d mapping(s), %.0f ms]\n",
                        item.value.value().c_str(), item.schema.c_str(),
                        item.mapping_path_len, item.arrival * 1000);
          }
          std::printf("%zu result(s), %zu schema(s), %.0f ms\n",
                      res.items.size(), res.schemas_answered,
                      res.latency * 1000);
        }
      }
    } else if (cmd == "cquery" || cmd == "cquerycollect") {
      std::string rest;
      std::getline(in, rest);
      auto q = ParseRdql(rest);
      if (!q.ok()) {
        std::printf("error: %s\n", q.status().ToString().c_str());
      } else {
        GridVinePeer::QueryOptions qopts;
        qopts.bind_join = (cmd == "cquery");
        auto res = net.ServeForConjunctive(pick_peer(), *q, qopts);
        if (!res.status.ok()) {
          std::printf("error: %s\n", res.status.ToString().c_str());
        } else {
          for (const auto& row : res.rows) {
            std::string printed;
            for (const auto& [var, term] : row) {
              if (!printed.empty()) printed += "  ";
              printed += "?" + var + "=" + term.value();
            }
            std::printf("  %s\n", printed.c_str());
          }
          std::printf(
              "%zu row(s), %.0f ms; shipped %llu row(s) "
              "(%llu scan / %llu probe / %llu bound)\n",
              res.rows.size(), res.latency * 1000,
              (unsigned long long)res.metrics.RowsShipped(),
              (unsigned long long)res.metrics.scan_rows,
              (unsigned long long)res.metrics.probe_rows,
              (unsigned long long)res.metrics.bound_rows);
        }
      }
    } else if (cmd == "demo") {
      BioWorkload::Options wl;
      wl.num_schemas = 6;
      wl.num_entities = 60;
      wl.entities_per_schema = 20;
      BioWorkload workload(wl);
      for (size_t s = 0; s < workload.schemas().size(); ++s) {
        net.InsertSchema(s, workload.schemas()[s]);
        for (const auto& t : workload.TriplesFor(s)) net.InsertTriple(s, t);
        if (s > 0) {
          net.InsertMapping(
              s, workload.GroundTruthMapping(s - 1, s,
                                             "demo-" + std::to_string(s)));
        }
      }
      std::printf("loaded %zu schemas / %zu triples; try:\n  query SELECT ?x "
                  "WHERE (?x, <%s>, \"%%Aspergillus%%\")\n",
                  workload.schemas().size(), workload.TotalTriples(),
                  workload.AttributeFor(0, "organism").c_str());
    } else if (cmd == "stats") {
      // network() is null on the sharded engine; the aggregate view is the
      // same counters folded across lanes.
      const NetworkStats s = net.engine() ? net.engine()->AggregateStats()
                                          : net.network()->stats();
      std::printf("messages sent/delivered/dropped: %llu/%llu/%llu, "
                  "bytes: %llu\n",
                  (unsigned long long)s.messages_sent,
                  (unsigned long long)s.messages_delivered,
                  (unsigned long long)s.messages_dropped,
                  (unsigned long long)s.bytes_sent);
      size_t triples = 0;
      for (size_t i = 0; i < net.size(); ++i) {
        triples += net.peer(i)->local_db().size();
      }
      std::printf("local DB entries across peers: %zu\n", triples);
    } else if (cmd == "cache") {
      std::string arg;
      in >> arg;
      if (arg != "stats") {
        std::printf("usage: cache stats\n");
      } else {
        uint64_t hits = 0, misses = 0, evictions = 0, invalidations = 0;
        size_t entries = 0, bytes = 0;
        for (size_t i = 0; i < net.size(); ++i) {
          const ExtentCache* c = net.peer(i)->cache();
          if (c == nullptr) continue;
          hits += c->stats().hits;
          misses += c->stats().misses;
          evictions += c->stats().evictions;
          invalidations += c->stats().invalidations;
          entries += c->entries();
          bytes += c->bytes();
        }
        double total = double(hits + misses);
        std::printf("extent cache: %llu hit(s) / %llu miss(es) (%.0f%% hit "
                    "rate), %llu eviction(s), %llu invalidation(s)\n",
                    (unsigned long long)hits, (unsigned long long)misses,
                    total > 0 ? 100.0 * double(hits) / total : 0.0,
                    (unsigned long long)evictions,
                    (unsigned long long)invalidations);
        std::printf("cached extents across peers: %zu entries, %zu bytes\n",
                    entries, bytes);
      }
    } else if (cmd == "frontend") {
      std::string arg;
      in >> arg;
      if (arg != "stats") {
        std::printf("usage: frontend stats\n");
      } else {
        QueryFrontend::Stats total;
        for (size_t i = 0; i < net.size(); ++i) {
          QueryFrontend::Stats s = net.peer(i)->frontend()->stats();
          total.submitted += s.submitted;
          total.started += s.started;
          total.completed += s.completed;
          total.shed += s.shed;
          total.max_queue_depth =
              std::max(total.max_queue_depth, s.max_queue_depth);
          total.active += s.active;
          total.queued += s.queued;
        }
        std::printf("frontend: %llu submitted, %llu started, %llu completed, "
                    "%llu shed\n",
                    (unsigned long long)total.submitted,
                    (unsigned long long)total.started,
                    (unsigned long long)total.completed,
                    (unsigned long long)total.shed);
        std::printf("live: %llu active, %llu queued; deepest queue seen: "
                    "%llu\n",
                    (unsigned long long)total.active,
                    (unsigned long long)total.queued,
                    (unsigned long long)total.max_queue_depth);
      }
    } else if (cmd == "mem") {
      std::vector<std::pair<std::string, size_t>> breakdown;
      size_t total = net.MemoryFootprint(&breakdown);
      for (const auto& [part, bytes] : breakdown) {
        std::printf("  %-16s %12zu bytes\n", part.c_str(), bytes);
      }
      std::printf("  %-16s %12zu bytes (%.0f per peer, %zu peers)\n",
                  "total", total, double(total) / double(net.size()),
                  net.size());
    } else if (cmd == "plan") {
      std::string sub;
      in >> sub;
      std::string rest;
      std::getline(in, rest);
      if (sub != "explain" || rest.empty()) {
        std::printf("usage: plan explain <RDQL>\n");
      } else {
        auto q = ParseRdql(rest);
        if (!q.ok()) {
          std::printf("error: %s\n", q.status().ToString().c_str());
        } else {
          // The most recent issuer explains, so 'cquery' followed by
          // 'plan explain' shows the sketches and observed-row feedback
          // that query left in its statistics cache.
          GridVinePeer::QueryOptions qopts;
          std::printf("issuer: peer %zu\n%s", last_peer,
                      net.peer(last_peer)
                          ->ExplainConjunctivePlan(*q, qopts)
                          .c_str());
        }
      }
    } else if (cmd == "trace") {
      std::string arg, file;
      in >> arg >> file;
      if (arg == "on") {
        net.tracer()->Enable();
        std::printf("ok: tracing on\n");
      } else if (arg == "off") {
        net.tracer()->Disable();
        std::printf("ok: tracing off\n");
      } else if (arg == "dump") {
        std::string json = net.tracer()->ToChromeJson();
        if (file.empty()) {
          std::printf("%s\n", json.c_str());
        } else {
          std::ofstream out(file);
          out << json << "\n";
          std::printf("ok: %zu span(s) -> %s\n", net.tracer()->size(),
                      file.c_str());
        }
      } else {
        std::printf("usage: trace on|off|dump [file]\n");
      }
    } else if (cmd == "metrics") {
      std::string arg;
      in >> arg;
      bool is_file = arg.find('/') != std::string::npos ||
                     (arg.size() > 5 &&
                      arg.compare(arg.size() - 5, 5, ".json") == 0);
      if (!arg.empty() && !is_file) {
        // Prefix filter: 'metrics gv.cache' lists just that family.
        size_t shown = 0;
        for (const auto& [name, value] : net.CollectMetrics().Flatten()) {
          if (name.compare(0, arg.size(), arg) != 0) continue;
          std::printf("  %-40s %.6g\n", name.c_str(), value);
          ++shown;
        }
        std::printf("%zu metric(s) matching '%s'\n", shown, arg.c_str());
      } else {
        std::string json = net.CollectMetrics().ToJson();
        if (arg.empty()) {
          std::printf("%s\n", json.c_str());
        } else {
          std::ofstream out(arg);
          out << json << "\n";
          std::printf("ok: metrics -> %s\n", arg.c_str());
        }
      }
    } else if (cmd == "health") {
      std::string arg;
      in >> arg;
      if (arg == "on") {
        double window = 0.5;
        in >> window;
        net.EnableHealth(window);
        std::printf("ok: health watchdog on (window %.3fs)\n", window);
      } else if (arg.empty()) {
        net.HealthTick();
        const HealthWatchdog* wd = net.watchdog();
        std::printf("health: %zu window(s) evaluated, %zu violation(s)\n",
                    wd->windows_evaluated(), wd->violations().size());
        size_t from = wd->violations().size() > 10
                          ? wd->violations().size() - 10
                          : 0;
        for (size_t i = from; i < wd->violations().size(); ++i) {
          const auto& v = wd->violations()[i];
          std::printf("  [t=%.3f] %-14s %s\n", v.window_end, v.rule.c_str(),
                      v.detail.c_str());
        }
      } else {
        std::printf("usage: health [on [window_s]]\n");
      }
    } else if (cmd == "top") {
      int n = 15;
      in >> n;
      net.HealthTick();
      auto rows = net.timeseries()->LatestWindow();
      std::printf("  %-40s %14s %14s\n", "metric", "value", "delta");
      for (const auto& row : rows) {
        if (n-- <= 0) break;
        std::printf("  %-40s %14.6g %+14.6g\n", row.name.c_str(), row.value,
                    row.delta);
      }
    } else if (cmd == "timeseries") {
      std::string file;
      in >> file;
      std::string json = net.timeseries()->ToJson(net.health_window());
      if (file.empty()) {
        std::printf("%s\n", json.c_str());
      } else {
        std::ofstream out(file);
        out << json;
        std::printf("ok: %zu sample(s) over %zu window(s) -> %s\n",
                    net.timeseries()->size(), net.timeseries()->windows(),
                    file.c_str());
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    std::printf("gridvine> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
