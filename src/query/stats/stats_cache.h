#ifndef GRIDVINE_QUERY_STATS_STATS_CACHE_H_
#define GRIDVINE_QUERY_STATS_STATS_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "query/stats/sketch.h"

namespace gridvine {

/// Issuer-side cache of remote statistics, one entry per key region the
/// issuer has planned against. Entries carry the simulated time they were
/// fetched and expire after `ttl` (bounded staleness: a refreshed region is
/// re-fetched lazily by the next query that routes there, not pushed).
///
/// Region keys are opaque strings (the overlay key's serialization), keeping
/// this layer free of any overlay dependency — symmetric with ExtentCache.
///
/// The cache also holds per-pattern *observed* cardinalities fed back by the
/// executor after each query: an observation is ground truth for the exact
/// pattern it was measured on, so it overrides the sketch estimate until it
/// expires on the same TTL.
class StatsCache {
 public:
  struct Options {
    /// Staleness bound, simulated seconds.
    double ttl = 60.0;
    /// Cap on retained per-pattern observations (oldest dropped first).
    size_t max_observed = 4096;
  };
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;   ///< absent or expired on lookup
    uint64_t refreshes = 0;
    uint64_t observations = 0;
  };

  StatsCache() = default;
  explicit StatsCache(Options options) : options_(options) {}

  /// The region's sketch if present and fresh at `now`, else nullptr (an
  /// expired entry is dropped). Valid until the next non-const call.
  const StoreSketch* Lookup(const std::string& region, double now);

  /// True without perturbing hit/miss accounting (the prefetch planner asks
  /// "do I need to fetch?" before the plan-time Lookup).
  bool Fresh(const std::string& region, double now) const;

  void Put(const std::string& region, StoreSketch sketch, double now);

  /// Records the observed extent cardinality of one pattern (serialized
  /// form), overriding sketch estimates until it expires.
  void Observe(const std::string& pattern, double rows, double now);
  std::optional<double> ObservedRows(const std::string& pattern,
                                     double now) const;

  const Stats& stats() const { return stats_; }
  size_t entries() const { return sketches_.size(); }
  size_t MemoryFootprint() const;

 private:
  struct Entry {
    StoreSketch sketch;
    double fetched_at = 0;
  };
  struct Observation {
    double rows = 0;
    double at = 0;
  };

  Options options_;
  Stats stats_;
  std::map<std::string, Entry> sketches_;
  std::unordered_map<std::string, Observation> observed_;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_STATS_STATS_CACHE_H_
