#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gridvine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::NetworkError("x").IsNetworkError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Timeout("slow");
  Status t = s;
  EXPECT_TRUE(t.IsTimeout());
  EXPECT_EQ(t.message(), "slow");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  GV_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  GV_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(3, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace gridvine
