#include "rdf/term.h"

namespace gridvine {

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kUri:
      return "<" + value_ + ">";
    case TermKind::kLiteral:
      return "\"" + value_ + "\"";
    case TermKind::kVariable:
      return "?" + value_;
  }
  return value_;
}

}  // namespace gridvine
