#include "selforg/incremental_assessor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mapping/mapping_graph.h"
#include "selforg/mapping_assessor.h"

namespace gridvine {
namespace {

SchemaMapping M(const std::string& id, const std::string& src,
                const std::string& dst,
                const std::vector<std::pair<std::string, std::string>>& corr,
                MappingProvenance prov = MappingProvenance::kAutomatic) {
  SchemaMapping m(id, src, dst);
  m.set_provenance(prov);
  for (const auto& [s, d] : corr) {
    EXPECT_TRUE(m.AddCorrespondence(src + "#" + s, dst + "#" + d).ok());
  }
  return m;
}

const std::vector<std::pair<std::string, std::string>> kIdentity = {
    {"organism", "organism"}, {"length", "length"}, {"gene", "gene"}};
const std::vector<std::pair<std::string, std::string>> kSwapped = {
    {"organism", "gene"}, {"length", "length"}, {"gene", "organism"}};

/// Drives `graph` (with `assessor` attached) through `steps` random
/// add / re-intern / deprecate / remove events. Interleaves Update() calls
/// so the incremental machinery runs mid-history, not only at the end.
void RunRandomHistory(MappingGraph* graph, IncrementalAssessor* assessor,
                      uint64_t seed, int steps) {
  Rng rng(seed);
  const std::vector<std::string> schemas = {"S0", "S1", "S2", "S3", "S4"};
  std::vector<std::string> ids;
  int seq = 0;
  for (int step = 0; step < steps; ++step) {
    int kind = int(rng.UniformInt(0, 9));
    if (kind < 5 || ids.empty()) {
      // Add a fresh mapping between a random ordered schema pair.
      size_t a = size_t(rng.UniformInt(0, int64_t(schemas.size()) - 1));
      size_t b = size_t(rng.UniformInt(0, int64_t(schemas.size()) - 2));
      if (b >= a) ++b;
      std::string id = "m" + std::to_string(seq++);
      auto m = M(id, schemas[a], schemas[b],
                 rng.Bernoulli(0.25) ? kSwapped : kIdentity,
                 rng.Bernoulli(0.15) ? MappingProvenance::kManual
                                     : MappingProvenance::kAutomatic);
      m.set_bidirectional(rng.Bernoulli(0.5));
      m.set_confidence(rng.Bernoulli(0.5) ? 0.7 : 0.55);
      graph->AddMapping(m);
      ids.push_back(id);
    } else if (kind < 7) {
      // Re-intern: same id, changed content (correspondences flipped).
      const std::string& id = ids[size_t(rng.UniformInt(0, int64_t(ids.size()) - 1))];
      auto cur = graph->Get(id);
      if (cur.ok() && !cur->deprecated()) {
        bool was_identity =
            cur->correspondences().count(cur->source_schema() + "#organism") &&
            cur->correspondences().at(cur->source_schema() + "#organism") ==
                cur->target_schema() + "#organism";
        auto m = M(id, cur->source_schema(), cur->target_schema(),
                   was_identity ? kSwapped : kIdentity, cur->provenance());
        m.set_bidirectional(cur->bidirectional());
        m.set_confidence(cur->confidence());
        graph->AddMapping(m);
      }
    } else if (kind < 9) {
      graph->Deprecate(ids[size_t(rng.UniformInt(0, int64_t(ids.size()) - 1))]);
    } else {
      size_t pick = size_t(rng.UniformInt(0, int64_t(ids.size()) - 1));
      graph->RemoveMapping(ids[pick]);
      ids.erase(ids.begin() + long(pick));
    }
    if (step % 7 == 3) assessor->Update();
  }
}

/// Exact (bitwise) equality of two posterior maps.
void ExpectBitIdentical(const std::map<std::string, double>& a,
                        const std::map<std::string, double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [id, p] : a) {
    ASSERT_TRUE(b.count(id)) << id;
    EXPECT_EQ(p, b.at(id)) << id;  // exact, not NEAR
  }
}

// ---------------------------------------------------------------------------
// Differential: incremental maintenance == full rebuild, on randomized
// event histories with pinned seeds.
// ---------------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, StructureMatchesFreshRebuild) {
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  RunRandomHistory(&graph, &inc, GetParam(), 80);

  MappingGraph copy = graph;
  copy.SetListener(nullptr);
  IncrementalAssessor fresh;
  fresh.Attach(&copy);

  EXPECT_EQ(inc.factor_count(), fresh.factor_count());
  EXPECT_EQ(inc.variable_count(), fresh.variable_count());
  EXPECT_EQ(inc.StructureDigest(), fresh.StructureDigest());
}

TEST_P(DifferentialTest, FixedScheduleBitIdenticalToRebuild) {
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  RunRandomHistory(&graph, &inc, GetParam(), 80);

  MappingGraph copy = graph;
  copy.SetListener(nullptr);
  IncrementalAssessor fresh;
  fresh.Attach(&copy);

  // Same structure + same deterministic cold-start schedule => the exact
  // same float operations, so exact equality is required, not approximate.
  ExpectBitIdentical(inc.AssessWithFixedSchedule(),
                     fresh.AssessWithFixedSchedule());
}

TEST_P(DifferentialTest, WarmUpdateConvergesAndStaysClean) {
  // The warm-started residual schedule must drain on arbitrary histories
  // (no leaked dirty state) and produce valid posteriors. Note: on heavily
  // frustrated random graphs loopy BP has *multiple* fixed points, so the
  // warm fixed point is not compared against a cold rebuild here — the
  // guaranteed cross-history equivalence is AssessWithFixedSchedule (above);
  // warm-vs-rebuilt agreement on unambiguous graphs is covered by
  // WarmStartDifferentialTest.
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  RunRandomHistory(&graph, &inc, GetParam(), 80);
  for (int i = 0; i < 200 && inc.dirty_count() > 0; ++i) inc.Update();
  EXPECT_EQ(inc.dirty_count(), 0u);
  auto stats = inc.Update();  // nothing left to do
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.messages, 0u);
}

TEST_P(DifferentialTest, PosteriorsStayInUnitInterval) {
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  RunRandomHistory(&graph, &inc, GetParam(), 80);
  for (int i = 0; i < 200 && inc.dirty_count() > 0; ++i) inc.Update();

  for (const auto& [id, p] : inc.Posteriors()) {
    EXPECT_GE(p, 0.0) << id;
    EXPECT_LE(p, 1.0) << id;
    EXPECT_TRUE(std::isfinite(p)) << id;
  }
  for (const auto& [id, p] : inc.AssessWithFixedSchedule()) {
    EXPECT_GE(p, 0.0) << id;
    EXPECT_LE(p, 1.0) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, DifferentialTest,
                         ::testing::Values(3u, 17u, 101u));

// ---------------------------------------------------------------------------
// Differential vs the legacy batch assessor on a deterministic graph whose
// cycle verdicts are representation-independent (all-consistent, or one
// clearly inconsistent edge): decisions must agree.
// ---------------------------------------------------------------------------

void BuildRichGraph(MappingGraph* g, bool include_bad) {
  const std::vector<std::string> schemas = {"A", "B", "C", "D"};
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (size_t j = 0; j < schemas.size(); ++j) {
      if (i == j) continue;
      std::string id = schemas[i] + schemas[j];
      g->AddMapping(M(id, schemas[i], schemas[j],
                      include_bad && id == "BC" ? kSwapped : kIdentity));
    }
  }
}

TEST(WarmStartDifferentialTest, WarmFixedPointMatchesRebuiltOnRichGraph) {
  // On a graph where loopy BP converges to a single regime (dense
  // consistent cycles, one bad edge), the warm-started incremental fixed
  // point and a cold rebuild's converged fixed point coincide within the
  // documented epsilon — even after a history detour that makes the warm
  // message state genuinely path-dependent.
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  BuildRichGraph(&graph, /*include_bad=*/true);
  inc.Update();
  graph.Deprecate("CD");
  inc.Update();
  graph.AddMapping(M("CD", "C", "D", kIdentity));  // re-intern reactivates
  for (int i = 0; i < 200 && inc.dirty_count() > 0; ++i) inc.Update();
  EXPECT_EQ(inc.dirty_count(), 0u);

  MappingGraph copy = graph;
  copy.SetListener(nullptr);
  IncrementalAssessor fresh;
  fresh.Attach(&copy);
  for (int i = 0; i < 200 && fresh.dirty_count() > 0; ++i) fresh.Update();

  auto warm = inc.Posteriors();
  auto rebuilt = fresh.Posteriors();
  ASSERT_EQ(warm.size(), rebuilt.size());
  for (const auto& [id, p] : warm) {
    EXPECT_NEAR(p, rebuilt.at(id), 1e-6) << id;
  }
}

TEST(IncrementalVsLegacyTest, SameDecisionsOnRichGraph) {
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  BuildRichGraph(&graph, /*include_bad=*/true);
  for (int i = 0; i < 200 && inc.dirty_count() > 0; ++i) inc.Update();

  MappingAssessor legacy;
  auto batch = legacy.Assess(graph);
  auto warm = inc.Posteriors();
  ASSERT_EQ(warm.size(), batch.posterior.size());
  for (const auto& [id, p] : batch.posterior) {
    ASSERT_TRUE(warm.count(id)) << id;
    // Decision-level agreement around the deprecation line (factor
    // representations and multiply order differ between the two paths).
    if (id == "BC") {
      EXPECT_LT(warm.at(id), 0.45);
    } else {
      EXPECT_GT(warm.at(id), 0.5) << id;
    }
    EXPECT_NEAR(warm.at(id), p, 0.05) << id;
  }
}

TEST(IncrementalVsLegacyTest, LonelyMappingKeepsPrior) {
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  auto lone = M("xy", "X", "Y", kIdentity);
  lone.set_confidence(0.66);
  graph.AddMapping(lone);
  inc.Update();
  EXPECT_NEAR(inc.Posterior("xy"), 0.66, 1e-9);
  EXPECT_NEAR(inc.AssessWithFixedSchedule().at("xy"), 0.66, 1e-9);
}

// ---------------------------------------------------------------------------
// Property: event-order independence for histories reaching the same
// active content.
// ---------------------------------------------------------------------------

TEST(OrderIndependenceTest, PermutedAddsYieldIdenticalState) {
  std::vector<SchemaMapping> ms;
  ms.push_back(M("ab", "A", "B", kIdentity));
  ms.push_back(M("bc", "B", "C", kIdentity));
  ms.push_back(M("ca", "C", "A", kIdentity));
  ms.push_back(M("ba", "B", "A", kSwapped));
  auto bidi = M("ac", "A", "C", kIdentity);
  bidi.set_bidirectional(true);
  ms.push_back(bidi);

  std::vector<size_t> order = {0, 1, 2, 3, 4};
  std::string base_digest;
  std::map<std::string, double> base_posteriors;
  int tried = 0;
  do {
    MappingGraph g;
    IncrementalAssessor inc;
    inc.Attach(&g);
    for (size_t i : order) g.AddMapping(ms[i]);
    if (base_digest.empty()) {
      base_digest = inc.StructureDigest();
      base_posteriors = inc.AssessWithFixedSchedule();
    } else {
      EXPECT_EQ(inc.StructureDigest(), base_digest)
          << "order " << ::testing::PrintToString(order);
      ExpectBitIdentical(inc.AssessWithFixedSchedule(), base_posteriors);
    }
  } while (std::next_permutation(order.begin(), order.end()) && ++tried < 24);
}

TEST(OrderIndependenceTest, DeprecateReAddHistoryConverges) {
  // Two histories with the same final active content: one plain build, one
  // with a deprecate + re-intern detour on the way.
  MappingGraph plain;
  IncrementalAssessor inc_plain;
  inc_plain.Attach(&plain);
  BuildRichGraph(&plain, /*include_bad=*/false);

  MappingGraph detour;
  IncrementalAssessor inc_detour;
  inc_detour.Attach(&detour);
  BuildRichGraph(&detour, /*include_bad=*/true);  // BC starts swapped
  inc_detour.Update();
  detour.Deprecate("AB");
  auto ab = M("AB", "A", "B", kIdentity);  // re-intern reactivates it
  detour.AddMapping(ab);
  inc_detour.Update();
  auto bc = M("BC", "B", "C", kIdentity);  // fix the bad edge in place
  detour.AddMapping(bc);

  // Digests agree on the *active* structure; the deprecated-then-readded
  // and replaced mappings leave no residue.
  EXPECT_EQ(inc_plain.StructureDigest(), inc_detour.StructureDigest());
  ExpectBitIdentical(inc_plain.AssessWithFixedSchedule(),
                     inc_detour.AssessWithFixedSchedule());
}

// ---------------------------------------------------------------------------
// Property: deprecation monotonicity. On a graph whose shared cycles are
// all *consistent*, deprecating one mapping can only lower (never raise)
// the posteriors of the others: consistent factors always push beliefs up,
// so losing them is losing support. (Inconsistent shared cycles push down,
// so this property intentionally restricts itself to consistent ones.)
// ---------------------------------------------------------------------------

TEST(DeprecationMonotonicityTest, DeprecationNeverRaisesOthers) {
  MappingGraph graph;
  IncrementalAssessor inc;
  inc.Attach(&graph);
  BuildRichGraph(&graph, /*include_bad=*/false);

  auto before = inc.AssessWithFixedSchedule();
  graph.Deprecate("AB");
  auto after = inc.AssessWithFixedSchedule();

  EXPECT_EQ(after.count("AB"), 0u);
  for (const auto& [id, p] : after) {
    EXPECT_LE(p, before.at(id) + 1e-12) << id;
  }
  // And strictly lower for a mapping that shared consistent cycles with AB.
  EXPECT_LT(after.at("BA"), before.at("BA"));
}

// ---------------------------------------------------------------------------
// Property: the per-round message cap bounds each Update() and capped
// convergence reaches the same fixed point as unconstrained convergence.
// ---------------------------------------------------------------------------

TEST(MessageCapTest, CapRespectedAndStillConverges) {
  IncrementalAssessor::Options capped_opts;
  capped_opts.message_cap = 12;

  MappingGraph graph;
  IncrementalAssessor capped(capped_opts);
  capped.Attach(&graph);
  BuildRichGraph(&graph, /*include_bad=*/true);

  size_t rounds = 0;
  bool converged = false;
  while (rounds < 5000) {
    auto stats = capped.Update();
    ++rounds;
    EXPECT_LE(stats.messages, capped_opts.message_cap);
    if (stats.converged && capped.dirty_count() == 0) {
      converged = true;
      break;
    }
  }
  EXPECT_TRUE(converged) << "capped propagation never drained";
  EXPECT_GT(rounds, 1u) << "cap of 12 should force multiple rounds";

  MappingGraph graph2;
  IncrementalAssessor uncapped;
  uncapped.Attach(&graph2);
  BuildRichGraph(&graph2, /*include_bad=*/true);
  for (int i = 0; i < 200 && uncapped.dirty_count() > 0; ++i) uncapped.Update();

  auto a = capped.Posteriors();
  auto b = uncapped.Posteriors();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [id, p] : a) {
    EXPECT_NEAR(p, b.at(id), 1e-6) << id;
  }
}

TEST(MessageCapTest, DirtyCarryOverIsReported) {
  IncrementalAssessor::Options opts;
  opts.message_cap = 1;  // pathological: at most one factor per round
  MappingGraph graph;
  IncrementalAssessor inc(opts);
  inc.Attach(&graph);
  BuildRichGraph(&graph, /*include_bad=*/false);

  auto stats = inc.Update();
  EXPECT_FALSE(stats.converged);
  EXPECT_GT(stats.dirty_after, 0u);
  EXPECT_GT(inc.dirty_count(), 0u);
}

// ---------------------------------------------------------------------------
// MappingGraph event feed: the contract the incremental assessor (and the
// version-keyed caches) rely on.
// ---------------------------------------------------------------------------

class RecordingListener : public MappingGraph::Listener {
 public:
  void OnMappingAdded(const MappingGraph&, const std::string& id) override {
    events.push_back("add:" + id);
  }
  void OnMappingReplaced(const MappingGraph&, const std::string& id) override {
    events.push_back("replace:" + id);
  }
  void OnMappingDeprecated(const MappingGraph&,
                           const std::string& id) override {
    events.push_back("deprecate:" + id);
  }
  void OnMappingRemoved(const MappingGraph&, const std::string& id) override {
    events.push_back("remove:" + id);
  }
  std::vector<std::string> events;
};

TEST(MappingGraphEventTest, EventsAndVersionGating) {
  MappingGraph g;
  RecordingListener rec;
  g.SetListener(&rec);

  g.AddMapping(M("ab", "A", "B", kIdentity));
  uint64_t v1 = g.version();
  EXPECT_EQ(rec.events, std::vector<std::string>{"add:ab"});

  // Identical re-add: no event, no version bump — periodic view re-syncs
  // must not invalidate the ReformulationCache or the extent cache.
  g.AddMapping(M("ab", "A", "B", kIdentity));
  EXPECT_EQ(g.version(), v1);
  EXPECT_EQ(rec.events.size(), 1u);

  // Changed content under the same id: replace event + bump.
  g.AddMapping(M("ab", "A", "B", kSwapped));
  EXPECT_GT(g.version(), v1);
  EXPECT_EQ(rec.events.back(), "replace:ab");

  uint64_t v2 = g.version();
  EXPECT_TRUE(g.Deprecate("ab"));
  EXPECT_GT(g.version(), v2);
  EXPECT_EQ(rec.events.back(), "deprecate:ab");

  // Deprecating again: still "present" (true), but no event, no bump.
  uint64_t v3 = g.version();
  EXPECT_TRUE(g.Deprecate("ab"));
  EXPECT_EQ(g.version(), v3);
  EXPECT_EQ(rec.events.back(), "deprecate:ab");
  EXPECT_EQ(rec.events.size(), 3u);

  EXPECT_TRUE(g.RemoveMapping("ab"));
  EXPECT_GT(g.version(), v3);
  EXPECT_EQ(rec.events.back(), "remove:ab");
}

TEST(MappingGraphEventTest, DetachStopsDelivery) {
  MappingGraph g;
  RecordingListener rec;
  g.SetListener(&rec);
  g.AddMapping(M("ab", "A", "B", kIdentity));
  g.SetListener(nullptr);
  g.AddMapping(M("cd", "C", "D", kIdentity));
  EXPECT_EQ(rec.events.size(), 1u);
}

// A backwards-only cycle: the newest edge's forward orientation closes no
// cycle, but its backward traversal does. Discovery must find it (the
// counterexample that forced two-orientation probing).
TEST(IncrementalDiscoveryTest, FindsCycleThroughNewEdgeBackwards) {
  MappingGraph g;
  IncrementalAssessor inc;
  inc.Attach(&g);
  g.AddMapping(M("ac", "A", "C", kIdentity));
  g.AddMapping(M("cb", "C", "B", kIdentity));
  EXPECT_EQ(inc.factor_count(), 0u);
  auto ab = M("ab", "A", "B", kIdentity);
  ab.set_bidirectional(true);
  g.AddMapping(ab);  // closes A->C->B->(ab backwards)->A
  EXPECT_EQ(inc.factor_count(), 1u);

  MappingGraph copy = g;
  copy.SetListener(nullptr);
  IncrementalAssessor fresh;
  fresh.Attach(&copy);
  EXPECT_EQ(inc.StructureDigest(), fresh.StructureDigest());
}

}  // namespace
}  // namespace gridvine
