#include "pgrid/routing_table.h"

#include <algorithm>

#include "common/mem_estimate.h"

namespace gridvine {

void RoutingTable::SetPath(const Key& path) {
  path_ = path;
  const size_t new_levels = static_cast<size_t>(path.length());
  // Same semantics as the old per-level vectors being resized: growing adds
  // empty levels, shrinking drops the refs of truncated levels.
  slots_.resize(new_levels * size_t(max_refs_per_level_), kInvalidNode);
  counts_.resize(new_levels, 0);
}

bool RoutingTable::AddRef(int level, NodeId id) {
  if (level < 0 || level >= levels()) return false;
  uint8_t& count = counts_[static_cast<size_t>(level)];
  if (int(count) >= max_refs_per_level_) return false;
  NodeId* block = LevelBlock(level);
  for (uint8_t i = 0; i < count; ++i) {
    if (block[i] == id) return false;
  }
  block[count++] = id;
  return true;
}

void RoutingTable::ClearLinks() {
  std::fill(counts_.begin(), counts_.end(), uint8_t{0});
  replicas_.clear();
}

void RoutingTable::RemoveRef(NodeId id) {
  for (int level = 0; level < levels(); ++level) {
    NodeId* block = LevelBlock(level);
    uint8_t& count = counts_[static_cast<size_t>(level)];
    uint8_t kept = 0;
    for (uint8_t i = 0; i < count; ++i) {
      if (block[i] != id) block[kept++] = block[i];
    }
    count = kept;
  }
}

RefSpan RoutingTable::RefsAt(int level) const {
  if (level < 0 || level >= levels()) return RefSpan();
  return RefSpan(LevelBlock(level), counts_[static_cast<size_t>(level)]);
}

int RoutingTable::DivergenceLevel(const Key& key) const {
  int l = path_.CommonPrefixLength(key);
  // A key shorter than the path that matches it entirely also belongs to
  // this peer's subtree neighbourhood; treat as local.
  if (l >= key.length()) return path_.length();
  return l;
}

void RoutingTable::AddReplica(NodeId id) {
  if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
    replicas_.push_back(id);
  }
}

void RoutingTable::RemoveReplica(NodeId id) {
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), id),
                  replicas_.end());
}

size_t RoutingTable::TotalRefs() const {
  size_t n = 0;
  for (uint8_t c : counts_) n += c;
  return n;
}

size_t RoutingTable::MemoryFootprint() const {
  return slots_.capacity() * sizeof(NodeId) +
         counts_.capacity() * sizeof(uint8_t) +
         replicas_.capacity() * sizeof(NodeId) + StringHeapBytes(path_.bits());
}

}  // namespace gridvine
