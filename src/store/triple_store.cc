#include "store/triple_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace gridvine {

Status TripleStore::Insert(const Triple& t) {
  GV_RETURN_NOT_OK(t.Validate());
  if (present_.count(t)) return Status::OK();  // idempotent
  uint32_t id = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  live_.push_back(true);
  present_.insert(t);
  by_subject_.emplace(t.subject().value(), id);
  by_predicate_.emplace(t.predicate().value(), id);
  by_object_.emplace(t.object().value(), id);
  ++live_count_;
  return Status::OK();
}

bool TripleStore::Erase(const Triple& t) {
  if (!present_.count(t)) return false;
  present_.erase(t);
  // Tombstone the slot; index entries pointing at dead slots are skipped on
  // scan. Index cleanup is lazy (Clear rebuilds), which keeps Erase O(k)
  // in the subject fan-out instead of touching three indexes.
  auto range = by_subject_.equal_range(t.subject().value());
  for (auto it = range.first; it != range.second; ++it) {
    uint32_t id = it->second;
    if (live_[id] && triples_[id] == t) {
      live_[id] = false;
      --live_count_;
      return true;
    }
  }
  return false;
}

bool TripleStore::Contains(const Triple& t) const { return present_.count(t); }

void TripleStore::Clear() {
  triples_.clear();
  live_.clear();
  present_.clear();
  by_subject_.clear();
  by_predicate_.clear();
  by_object_.clear();
  live_count_ = 0;
}

std::vector<uint32_t> TripleStore::CandidateIds(
    const TriplePattern& pattern) const {
  // Pick the smallest applicable exact index.
  const std::unordered_multimap<std::string, uint32_t>* index = nullptr;
  const std::string* key = nullptr;
  size_t best = SIZE_MAX;
  auto consider = [&](TriplePos pos,
                      const std::unordered_multimap<std::string, uint32_t>& m) {
    if (!pattern.IsExactConstant(pos)) return;
    const std::string& v = pattern.at(pos).value();
    size_t n = m.count(v);
    if (n < best) {
      best = n;
      index = &m;
      key = &v;
    }
  };
  consider(TriplePos::kSubject, by_subject_);
  consider(TriplePos::kPredicate, by_predicate_);
  consider(TriplePos::kObject, by_object_);

  std::vector<uint32_t> ids;
  if (index != nullptr) {
    auto range = index->equal_range(*key);
    for (auto it = range.first; it != range.second; ++it) {
      if (live_[it->second]) ids.push_back(it->second);
    }
  } else {
    for (uint32_t id = 0; id < triples_.size(); ++id) {
      if (live_[id]) ids.push_back(id);
    }
  }
  return ids;
}

std::vector<Triple> TripleStore::Select(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  for (uint32_t id : CandidateIds(pattern)) {
    if (pattern.Matches(triples_[id])) out.push_back(triples_[id]);
  }
  return out;
}

std::vector<BindingSet> TripleStore::MatchPattern(
    const TriplePattern& pattern) const {
  std::vector<BindingSet> out;
  for (const Triple& t : Select(pattern)) {
    BindingSet b;
    for (TriplePos pos :
         {TriplePos::kSubject, TriplePos::kPredicate, TriplePos::kObject}) {
      if (pattern.at(pos).IsVariable()) {
        b[pattern.at(pos).value()] = t.at(pos);
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<Term> TripleStore::Project(const std::vector<BindingSet>& bindings,
                                       const std::string& var) const {
  std::set<Term> seen;
  for (const BindingSet& b : bindings) {
    auto it = b.find(var);
    if (it != b.end()) seen.insert(it->second);
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

std::vector<BindingSet> TripleStore::Join(const std::vector<BindingSet>& left,
                                          const std::vector<BindingSet>& right) {
  if (left.empty() || right.empty()) return {};
  // Shared variables from the first rows (all rows of one side share keys).
  std::vector<std::string> shared;
  for (const auto& [var, _] : left[0]) {
    if (right[0].count(var)) shared.push_back(var);
  }

  auto join_key = [&shared](const BindingSet& b) {
    std::string key;
    for (const auto& var : shared) {
      const Term& t = b.at(var);
      key += std::to_string(int(t.kind()));
      key += ':';
      key += t.value();
      key += '\x1f';
    }
    return key;
  };

  std::unordered_multimap<std::string, const BindingSet*> hashed;
  for (const BindingSet& b : right) hashed.emplace(join_key(b), &b);

  std::vector<BindingSet> out;
  for (const BindingSet& l : left) {
    auto range = hashed.equal_range(join_key(l));
    for (auto it = range.first; it != range.second; ++it) {
      BindingSet merged = l;
      for (const auto& [var, term] : *it->second) merged[var] = term;
      out.push_back(std::move(merged));
    }
  }
  return out;
}

std::vector<Term> TripleStore::DistinctPredicates() const {
  std::set<Term> seen;
  for (uint32_t id = 0; id < triples_.size(); ++id) {
    if (live_[id]) seen.insert(triples_[id].predicate());
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

std::set<std::string> TripleStore::ObjectValuesFor(
    const std::string& predicate_uri) const {
  std::set<std::string> out;
  auto range = by_predicate_.equal_range(predicate_uri);
  for (auto it = range.first; it != range.second; ++it) {
    if (live_[it->second]) out.insert(triples_[it->second].object().value());
  }
  return out;
}

std::vector<Triple> TripleStore::All() const {
  std::vector<Triple> out;
  out.reserve(live_count_);
  for (uint32_t id = 0; id < triples_.size(); ++id) {
    if (live_[id]) out.push_back(triples_[id]);
  }
  return out;
}

}  // namespace gridvine
