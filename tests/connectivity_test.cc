#include "selforg/connectivity.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(ConnectivityIndicatorTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(ConnectivityIndicator({}), 0.0);
}

TEST(ConnectivityIndicatorTest, DirectedRingIsExactlyCritical) {
  // Every schema has in = out = 1: jk - k = 0 -> ci = 0, the phase
  // transition point for the giant component.
  std::vector<std::pair<int, int>> ring(10, {1, 1});
  EXPECT_DOUBLE_EQ(ConnectivityIndicator(ring), 0.0);
}

TEST(ConnectivityIndicatorTest, ChainIsSubcritical) {
  // A -> B -> C: A(0,1), B(1,1), C(1,0).
  std::vector<std::pair<int, int>> chain = {{0, 1}, {1, 1}, {1, 0}};
  EXPECT_LT(ConnectivityIndicator(chain), 0.0);
  EXPECT_NEAR(ConnectivityIndicator(chain), -1.0 / 3.0, 1e-12);
}

TEST(ConnectivityIndicatorTest, DenselyCrossLinkedIsSupercritical) {
  // Every schema has in = out = 2: jk - k = 4 - 2 = 2 > 0.
  std::vector<std::pair<int, int>> dense(8, {2, 2});
  EXPECT_DOUBLE_EQ(ConnectivityIndicator(dense), 2.0);
}

TEST(ConnectivityIndicatorTest, OutStarIsSubcritical) {
  // Hub with out-degree 5, five leaves with in-degree 1 and nothing out:
  // hub: 0*5-5 = -5; leaves: 1*0-0 = 0.
  std::vector<std::pair<int, int>> star = {{0, 5}, {1, 0}, {1, 0},
                                           {1, 0}, {1, 0}, {1, 0}};
  EXPECT_NEAR(ConnectivityIndicator(star), -5.0 / 6.0, 1e-12);
}

TEST(ConnectivityIndicatorTest, IsolatedSchemasContributeZero) {
  // Isolated nodes (0,0) contribute nothing but count in the mean, diluting
  // positive contributions — more schemas require more mappings.
  std::vector<std::pair<int, int>> g = {{2, 2}, {0, 0}, {0, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(ConnectivityIndicator(g), 0.5);
}

TEST(ConnectivityIndicatorTest, MatchesGiantComponentEmergence) {
  // Monotone: adding (2,2) nodes to a chain graph pushes ci over 0.
  std::vector<std::pair<int, int>> g = {{0, 1}, {1, 1}, {1, 1}, {1, 0}};
  double before = ConnectivityIndicator(g);
  EXPECT_LT(before, 0.0);
  for (int i = 0; i < 4; ++i) g.push_back({2, 2});
  EXPECT_GT(ConnectivityIndicator(g), 0.0);
}

}  // namespace
}  // namespace gridvine
