#ifndef GRIDVINE_SIM_SIMULATOR_H_
#define GRIDVINE_SIM_SIMULATOR_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/event_fn.h"

namespace gridvine {

/// Simulated wall-clock time in seconds.
using SimTime = double;

/// Single-threaded discrete-event scheduler. All network traffic, timers and
/// periodic maintenance in GridVine run as events on one Simulator, which
/// makes experiments deterministic and lets us measure latencies in simulated
/// seconds regardless of host speed.
///
/// The queue is a hand-rolled 4-ary min-heap over (time, seq), split into two
/// arrays: the heap itself holds 24-byte trivially-copyable keys
/// (time, seq, slot), while the EventFn callables sit still in a slot pool
/// recycled through a free list. Sifting therefore compares and copies only
/// small keys — a pop at 10k pending events touches a handful of cache lines
/// instead of relocating 70-byte records down five levels. The seed's
/// std::priority_queue<Event> additionally forced a copy of every
/// std::function on pop (top() is const); here the callable is moved out of
/// its slot exactly once, and with EventFn's inline captures, scheduling and
/// firing an ordinary timer touches no heap.
/// Execution order is fully determined by (time, seq): same-time events run
/// FIFO regardless of heap shape, so the refactor cannot perturb seeded runs.
class Simulator {
 public:
  Simulator() = default;
  virtual ~Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (clamped to >= 0).
  void Schedule(SimTime delay, EventFn fn) { ScheduleAt(now_ + ClampDelay(delay), std::move(fn)); }

  /// Schedules `fn` at absolute time `t` (clamped to >= Now()). Virtual so a
  /// shard of the parallel engine (sim/sharded.h) can intercept scheduling
  /// and substitute a content-derived tie-break key; the single-threaded
  /// engine pays one indirect call per event for the seam.
  virtual void ScheduleAt(SimTime t, EventFn fn);

  /// Schedules `fn` at `t` with an explicit 64-bit tie-break key in place of
  /// the per-simulator sequence number. Two events at the same time run in
  /// ascending `subkey` order *regardless of scheduling order or heap
  /// shape* — the property the sharded engine needs for runs to be
  /// bit-identical across shard counts. Keys must be unique per (t, subkey)
  /// within one simulator; an instance must use either keyed or sequence
  /// scheduling exclusively, never a mix (the sequence counter knows nothing
  /// about foreign keys).
  void ScheduleKeyedAt(SimTime t, uint64_t subkey, EventFn fn);

  /// Firing time of the earliest pending event, or +infinity when idle.
  SimTime NextEventTime() const;

  /// Removes the earliest event if it fires strictly before `horizon`:
  /// advances the clock to it, moves its callable into `*fn`, stores its
  /// tie-break key (sequence number or ScheduleKeyedAt subkey) in `*subkey`
  /// and counts it as executed. Returns false (touching nothing) otherwise.
  /// This is the epoch-bounded pop the sharded engine's workers drive.
  bool PopBefore(SimTime horizon, uint64_t* subkey, EventFn* fn);

  /// Advances the clock to `t` if it is ahead (never backwards).
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs events with firing time <= `t`, then advances the clock to `t`
  /// (unless the queue drained earlier at a later time). Returns events run.
  size_t RunUntil(SimTime t);

  /// Drains events until `*done` is true or the queue is empty, checking the
  /// flag before each event. One call replaces a caller-side `Run(1)` loop
  /// (the synchronous-wrapper pump), with identical stop semantics: no event
  /// fires after the flag flips. Returns events run.
  size_t RunUntilFlag(const bool* done);

  /// Number of pending events.
  size_t pending() const { return heap_.size(); }

  /// Total events executed over the simulator's lifetime.
  size_t events_executed() const { return executed_; }

  /// Bytes of heap owned by the event queue (heap keys, callable slots and
  /// the free list), by capacity — what the queue is actually holding from
  /// the allocator, not just what is live right now.
  size_t MemoryFootprint() const {
    return heap_.capacity() * sizeof(HeapEntry) +
           slots_.capacity() * sizeof(EventFn) +
           free_slots_.capacity() * sizeof(uint32_t);
  }

 private:
  static SimTime ClampDelay(SimTime delay) { return delay < 0 ? 0 : delay; }

  /// Heap key: everything ordering needs, nothing more — trivially copyable,
  /// so sift levels are plain copies with no callable relocation. The
  /// ordering (time, then seq FIFO) is packed into one 128-bit integer:
  /// sim times are always >= +0.0, and non-negative IEEE doubles order
  /// identically to their bit patterns read as unsigned integers, so
  /// (time_bits << 64) | seq compares with a single branchless wide compare
  /// instead of a data-dependent double/seq branch pair.
  struct HeapEntry {
    unsigned __int128 key;  // (bit_cast<uint64>(time) << 64) | seq
    uint32_t slot;          // index into slots_

    SimTime time() const {
      uint64_t bits = static_cast<uint64_t>(key >> 64);
      SimTime t;
      std::memcpy(&t, &bits, sizeof(t));
      return t;
    }
  };

  static HeapEntry MakeEntry(SimTime t, uint64_t seq, uint32_t slot) {
    uint64_t bits;
    std::memcpy(&bits, &t, sizeof(bits));
    return HeapEntry{(static_cast<unsigned __int128>(bits) << 64) | seq, slot};
  }

  void Push(HeapEntry ev);
  /// Removes the earliest event, advances now_ to its time and returns its
  /// callable (slot released first — fn may re-schedule and reuse it).
  /// Precondition: !heap_.empty().
  EventFn PopMin();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t executed_ = 0;
  /// 4-ary min-heap of keys: children of node i are 4i+1 .. 4i+4. A wider
  /// node halves the tree depth vs a binary heap; with 24-byte entries all
  /// four children of a node fit in 1-2 cache lines.
  std::vector<HeapEntry> heap_;
  /// Parked callables, addressed by HeapEntry::slot; never moved by sifts.
  std::vector<EventFn> slots_;
  /// Recycled slot indices (LIFO for cache warmth).
  std::vector<uint32_t> free_slots_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_SIMULATOR_H_
