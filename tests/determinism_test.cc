// Determinism regression guard for the event-engine refactor: two
// GridVineNetwork runs with the same seed must produce byte-identical
// NetworkStats (every counter, including the per-type vectors) and identical
// query results. Execution order in the simulator is fully determined by
// (time, seq), so any heap/event-queue change that perturbs ordering — even
// among same-time events — trips this test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gridvine/gridvine_network.h"

namespace gridvine {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

/// One full scenario: lossy WAN transport (exercises the rng on every send),
/// bulk loads, mappings, reformulated queries. Returns everything observable.
struct RunOutcome {
  NetworkStats stats;
  std::vector<std::string> query_values;
  double query_latency = 0;
  SimTime final_time = 0;
  size_t events_executed = 0;

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

RunOutcome RunScenario(uint64_t seed) {
  GridVineNetwork::Options o;
  o.num_peers = 24;
  o.key_depth = 14;
  o.seed = seed;
  o.latency = GridVineNetwork::LatencyKind::kWan;
  o.latency_param = 0.01;
  o.loss_probability = 0.02;
  o.peer.query_timeout = 3.0;
  GridVineNetwork net(o);

  EXPECT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
  EXPECT_TRUE(net.InsertSchema(1, Schema("B", "d", {"organism"})).ok());
  std::vector<Triple> batch;
  for (int i = 0; i < 20; ++i) {
    batch.push_back(T("a" + std::to_string(i), "A#organism",
                      i % 2 ? "Aspergillus niger" : "Penicillium"));
  }
  net.InsertTriples(2, batch);  // lossy: some acks may time out — still seeded
  EXPECT_TRUE(
      net.InsertTriple(1, T("b1", "B#organism", "Aspergillus flavus")).ok());
  SchemaMapping m("ab", "A", "B");
  EXPECT_TRUE(m.AddCorrespondence("A#organism", "B#organism").ok());
  net.InsertMapping(0, m);

  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Uri("A#organism"),
                         Term::Literal("%Aspergillus%")));
  auto res = net.SearchFor(5, q, opts);
  net.Settle();

  RunOutcome out;
  out.stats = net.network()->stats();
  for (const auto& item : res.items) {
    out.query_values.push_back(item.value.value());
  }
  out.query_latency = res.latency;
  out.final_time = net.sim()->Now();
  out.events_executed = net.sim()->events_executed();
  return out;
}

TEST(DeterminismTest, SameSeedGivesByteIdenticalStatsAndResults) {
  RunOutcome a = RunScenario(1234);
  RunOutcome b = RunScenario(1234);
  // Field-by-field first, for a readable diff on failure.
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.stats.messages_dropped, b.stats.messages_dropped);
  EXPECT_EQ(a.stats.bytes_sent, b.stats.bytes_sent);
  EXPECT_EQ(a.stats.MessagesByTypeName(), b.stats.MessagesByTypeName());
  EXPECT_EQ(a.query_values, b.query_values);
  EXPECT_EQ(a.events_executed, b.events_executed);
  // Then the whole record, defaulted equality over every field.
  EXPECT_TRUE(a == b);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the scenario is actually seed-sensitive (a vacuously
  // deterministic scenario would make the test above meaningless).
  RunOutcome a = RunScenario(1234);
  RunOutcome c = RunScenario(4321);
  EXPECT_FALSE(a.stats == c.stats);
}

}  // namespace
}  // namespace gridvine
