#ifndef GRIDVINE_PGRID_ROUTING_TABLE_H_
#define GRIDVINE_PGRID_ROUTING_TABLE_H_

#include <optional>
#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "sim/network.h"

namespace gridvine {

/// A P-Grid peer's routing state: for each level l of its path π(p), a set of
/// references to peers whose paths share the first l bits of π(p) and differ
/// at bit l (the "complementary subtree" at that level), plus the replica set
/// σ(p) of peers with the same path.
///
/// The level-wise invariant is exactly what makes greedy prefix routing
/// resolve any key in at most |π(p)| forwards.
class RoutingTable {
 public:
  /// `max_refs_per_level` caps fan-out; additional refs are ignored. More
  /// refs give routing more alternatives under churn at modest memory cost.
  explicit RoutingTable(int max_refs_per_level = 4)
      : max_refs_per_level_(max_refs_per_level) {}

  /// Sets the owning peer's path; resizes the level structure and drops refs
  /// that became inconsistent with the new path (those at levels >= length
  /// never existed; levels shorten only during re-balancing).
  void SetPath(const Key& path);
  const Key& path() const { return path_; }

  /// Adds a reference at `level` (0-based bit index into the path); ignored
  /// when the level is out of range, the table is full at that level, or the
  /// ref is a duplicate. Returns true if stored.
  bool AddRef(int level, NodeId id);

  /// Removes a reference wherever it appears (e.g. observed dead).
  void RemoveRef(NodeId id);

  /// Drops every reference and replica link (used when the peer's region is
  /// reassigned wholesale and existing links no longer satisfy the
  /// complementary-subtree invariant).
  void ClearLinks();

  const std::vector<NodeId>& RefsAt(int level) const;

  /// Picks the next hop for `key`: the divergence level l of `key` against
  /// π(p) selects the ref list; a uniformly random entry is returned (random
  /// choice spreads load over alternatives and lets retries explore different
  /// paths under churn). Excludes `exclude` if other options exist.
  /// Returns nullopt when the key belongs to this peer's subtree or no ref
  /// is known at the divergence level.
  std::optional<NodeId> NextHop(const Key& key, Rng* rng,
                                NodeId exclude = kInvalidNode) const;

  /// Divergence level of `key` against the path, or path length if the key
  /// lies in this peer's subtree.
  int DivergenceLevel(const Key& key) const;

  void AddReplica(NodeId id);
  void RemoveReplica(NodeId id);
  const std::vector<NodeId>& replicas() const { return replicas_; }

  int levels() const { return static_cast<int>(refs_.size()); }
  int max_refs_per_level() const { return max_refs_per_level_; }

  /// Total number of stored references across levels.
  size_t TotalRefs() const;

 private:
  int max_refs_per_level_;
  Key path_;
  std::vector<std::vector<NodeId>> refs_;  // refs_[l] = complementary subtree
  std::vector<NodeId> replicas_;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_ROUTING_TABLE_H_
