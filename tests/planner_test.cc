#include "query/planner.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

TEST(ClassifyPatternTest, AllClasses) {
  EXPECT_EQ(ClassifyPattern(P(Term::Uri("s"), Term::Var("p"), Term::Var("o"))),
            PatternCost::kExactSubject);
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Uri("p"), Term::Literal("exact"))),
            PatternCost::kExactObject);
  EXPECT_EQ(ClassifyPattern(P(Term::Var("s"), Term::Uri("p"), Term::Var("o"))),
            PatternCost::kExactPredicate);
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Var("p"), Term::Literal("abc%"))),
            PatternCost::kRange);
  EXPECT_EQ(ClassifyPattern(P(Term::Var("s"), Term::Var("p"), Term::Var("o"))),
            PatternCost::kUnroutable);
  // Leading wildcard: not a range.
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Var("p"), Term::Literal("%abc"))),
            PatternCost::kUnroutable);
  // Wildcard literal with an exact predicate: predicate class.
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Uri("p"), Term::Literal("%abc%"))),
            PatternCost::kExactPredicate);
}

TEST(PlanConjunctiveTest, CheapestFirst) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),       // predicate
       P(Term::Uri("s"), Term::Uri("p2"), Term::Var("x")),       // subject
       P(Term::Var("x"), Term::Uri("p3"), Term::Literal("v"))}); // object
  auto order = PlanConjunctive(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // exact subject first
  EXPECT_EQ(order[1], 2u);  // exact object second
  EXPECT_EQ(order[2], 0u);  // predicate last
}

TEST(PlanConjunctiveTest, PrefersJoinConnectedPatterns) {
  // p0 binds ?a; p1 is cheap (subject) but disconnected from ?a until p2
  // runs; p2 is predicate-class but shares ?a.
  ConjunctiveQuery q(
      {"a"},
      {P(Term::Uri("s0"), Term::Uri("p0"), Term::Var("a")),   // subject, ?a
       P(Term::Uri("s1"), Term::Uri("p1"), Term::Var("b")),   // subject, ?b
       P(Term::Var("a"), Term::Uri("p2"), Term::Var("b"))});  // joins both
  auto order = PlanConjunctive(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  // After p0, the connected pattern p2 (predicate class, connected) competes
  // with p1 (subject class, NOT connected): connectivity wins.
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
}

TEST(PlanConjunctiveTest, StableForEqualRanks) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),
       P(Term::Var("x"), Term::Uri("p2"), Term::Var("o2"))});
  auto order = PlanConjunctive(q);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
}

TEST(PlanConjunctiveTest, SinglePattern) {
  ConjunctiveQuery q({"x"},
                     {P(Term::Var("x"), Term::Uri("p"), Term::Var("o"))});
  EXPECT_EQ(PlanConjunctive(q), (std::vector<size_t>{0}));
}

TEST(PlanPhysicalTest, DisconnectedPatternsFormConcurrentGroups) {
  // {?a} component (p0, p2) and {?b} component (p1) share no variable, so
  // they become separate groups merged by one cross-group LocalJoin.
  ConjunctiveQuery q(
      {"a", "b"},
      {P(Term::Uri("s0"), Term::Uri("p0"), Term::Var("a")),
       P(Term::Var("b"), Term::Uri("p1"), Term::Literal("v")),
       P(Term::Var("a"), Term::Uri("p2"), Term::Var("c"))});
  PhysicalPlan plan = PlanPhysical(q);
  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.groups[0].patterns, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(plan.groups[1].patterns, (std::vector<size_t>{1}));
  ASSERT_EQ(plan.tail.size(), 3u);
  EXPECT_EQ(plan.tail[0].kind, OpKind::kLocalJoin);
  EXPECT_EQ(plan.tail[1].kind, OpKind::kProject);
  EXPECT_EQ(plan.tail[2].kind, OpKind::kDedup);
  // Order() flattens group-major and matches the legacy contract.
  EXPECT_EQ(plan.Order(), (std::vector<size_t>{0, 2, 1}));
  EXPECT_EQ(plan.Order(), PlanConjunctive(q));
}

TEST(PlanPhysicalTest, BindJoinChainShape) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("s"), Term::Uri("p0"), Term::Var("x")),
       P(Term::Var("x"), Term::Uri("p1"), Term::Var("o"))});
  PhysicalPlan bind = PlanPhysical(q);
  ASSERT_EQ(bind.groups.size(), 1u);
  const auto& steps = bind.groups[0].steps;
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, OpKind::kRemoteScan);
  EXPECT_EQ(steps[0].pattern, 0u);
  EXPECT_EQ(steps[1].kind, OpKind::kLocalJoin);
  EXPECT_EQ(steps[2].kind, OpKind::kBindJoin);
  EXPECT_EQ(steps[2].pattern, 1u);

  // Collect mode trades every BindJoin for a full RemoteScan + LocalJoin;
  // the pattern order is identical either way.
  PlanOptions collect;
  collect.bind_join = false;
  PhysicalPlan coll = PlanPhysical(q, collect);
  ASSERT_EQ(coll.groups.size(), 1u);
  const auto& csteps = coll.groups[0].steps;
  ASSERT_EQ(csteps.size(), 4u);
  EXPECT_EQ(csteps[2].kind, OpKind::kRemoteScan);
  EXPECT_EQ(csteps[2].pattern, 1u);
  EXPECT_EQ(csteps[3].kind, OpKind::kLocalJoin);
  EXPECT_EQ(bind.Order(), coll.Order());
}

TEST(PlanPhysicalTest, FullyConstantPatternBecomesExistenceCheck) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p"), Term::Var("o")),
       P(Term::Uri("s"), Term::Uri("p"), Term::Literal("v"))});
  PhysicalPlan plan = PlanPhysical(q);
  ASSERT_EQ(plan.groups.size(), 2u);
  // The constant pattern is exact-subject class, so its singleton group
  // leads; it resolves as an existence probe, not a scan.
  ASSERT_EQ(plan.groups[0].patterns, (std::vector<size_t>{1}));
  ASSERT_EQ(plan.groups[0].steps.size(), 1u);
  EXPECT_EQ(plan.groups[0].steps[0].kind, OpKind::kExistenceCheck);
  EXPECT_EQ(plan.groups[0].steps[0].pattern, 1u);
  ASSERT_EQ(plan.groups[1].patterns, (std::vector<size_t>{0}));
  EXPECT_EQ(plan.groups[1].steps[0].kind, OpKind::kRemoteScan);
}

TEST(PlanPhysicalTest, DeterministicAcrossRepeatedRuns) {
  // Two components whose leads have equal cost (both exact-predicate):
  // ties break on the lowest original pattern index, every run.
  ConjunctiveQuery q(
      {"a", "b"},
      {P(Term::Var("a"), Term::Uri("p1"), Term::Var("o1")),
       P(Term::Var("b"), Term::Uri("p2"), Term::Var("o2")),
       P(Term::Var("a"), Term::Uri("p3"), Term::Var("o3")),
       P(Term::Var("b"), Term::Uri("p4"), Term::Var("o4"))});
  PhysicalPlan first = PlanPhysical(q);
  ASSERT_EQ(first.groups.size(), 2u);
  EXPECT_EQ(first.groups[0].patterns, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(first.groups[1].patterns, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(first.Order(), (std::vector<size_t>{0, 2, 1, 3}));
  for (int i = 0; i < 10; ++i) {
    PhysicalPlan again = PlanPhysical(q);
    ASSERT_EQ(again.ToString(), first.ToString());
    ASSERT_EQ(again.Order(), first.Order());
  }
}

}  // namespace
}  // namespace gridvine
