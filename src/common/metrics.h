#ifndef GRIDVINE_COMMON_METRICS_H_
#define GRIDVINE_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace gridvine {

/// A flat registry of named counters, gauges and fixed-bucket histograms the
/// peers and the network publish into — the single snapshot surface behind
/// the shell's `metrics` command and the benches' JSON reports.
///
/// Naming convention (docs/ARCHITECTURE.md section 3.6): dotted paths,
/// layer-first — "net.messages_sent", "pgrid.retries", "gv.queries_issued",
/// "net.msg.<type>.sent". Not thread-safe (the simulator is
/// single-threaded). References returned by the accessors stay valid until
/// Clear() — the maps are node-based.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotonic counter; created at zero on first use. Publishers add into
  /// it (`Counter("pgrid.retries") += n`) so per-peer publications aggregate.
  uint64_t& Counter(std::string_view name);
  /// Point-in-time value (sizes, ratios); created at zero on first use.
  double& Gauge(std::string_view name);
  /// Fixed-bucket histogram (stats.h); `edges` is used only on first
  /// creation of `name`.
  Histogram& Histo(std::string_view name, std::vector<double> edges);
  /// Convenience: add one observation to Histo(name, edges).
  void Observe(std::string_view name, std::vector<double> edges, double value);

  void Clear();
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count": n,
  /// "p50": ..., "p90": ..., "p99": ..., "buckets": [{"le": edge, "count":
  /// n}, ...]}}} — keys sorted, so a snapshot diffs cleanly.
  std::string ToJson() const;

  /// Counters + gauges + histogram percentiles as (name, value) rows, for
  /// bench_json.h consumption. Histograms contribute "<name>.p50" / ".p90" /
  /// ".p99" / ".count".
  std::vector<std::pair<std::string, double>> Flatten() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_METRICS_H_
