#include "pgrid/routing_table.h"

#include <algorithm>

namespace gridvine {

void RoutingTable::SetPath(const Key& path) {
  path_ = path;
  refs_.resize(static_cast<size_t>(path.length()));
}

bool RoutingTable::AddRef(int level, NodeId id) {
  if (level < 0 || level >= levels()) return false;
  auto& lst = refs_[static_cast<size_t>(level)];
  if (static_cast<int>(lst.size()) >= max_refs_per_level_) return false;
  if (std::find(lst.begin(), lst.end(), id) != lst.end()) return false;
  lst.push_back(id);
  return true;
}

void RoutingTable::ClearLinks() {
  for (auto& lst : refs_) lst.clear();
  replicas_.clear();
}

void RoutingTable::RemoveRef(NodeId id) {
  for (auto& lst : refs_) {
    lst.erase(std::remove(lst.begin(), lst.end(), id), lst.end());
  }
}

const std::vector<NodeId>& RoutingTable::RefsAt(int level) const {
  static const std::vector<NodeId> kEmpty;
  if (level < 0 || level >= levels()) return kEmpty;
  return refs_[static_cast<size_t>(level)];
}

int RoutingTable::DivergenceLevel(const Key& key) const {
  int l = path_.CommonPrefixLength(key);
  // A key shorter than the path that matches it entirely also belongs to
  // this peer's subtree neighbourhood; treat as local.
  if (l >= key.length()) return path_.length();
  return l;
}

std::optional<NodeId> RoutingTable::NextHop(const Key& key, Rng* rng,
                                            NodeId exclude) const {
  int l = DivergenceLevel(key);
  if (l >= path_.length()) return std::nullopt;  // our subtree: local
  const auto& lst = refs_[static_cast<size_t>(l)];
  if (lst.empty()) return std::nullopt;
  // Prefer an alternative to `exclude` when one exists.
  std::vector<NodeId> candidates;
  candidates.reserve(lst.size());
  for (NodeId id : lst) {
    if (id != exclude) candidates.push_back(id);
  }
  if (candidates.empty()) candidates = lst;
  return rng->PickOne(candidates);
}

void RoutingTable::AddReplica(NodeId id) {
  if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
    replicas_.push_back(id);
  }
}

void RoutingTable::RemoveReplica(NodeId id) {
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), id),
                  replicas_.end());
}

size_t RoutingTable::TotalRefs() const {
  size_t n = 0;
  for (const auto& lst : refs_) n += lst.size();
  return n;
}

}  // namespace gridvine
