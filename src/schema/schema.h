#ifndef GRIDVINE_SCHEMA_SCHEMA_H_
#define GRIDVINE_SCHEMA_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/result.h"

namespace gridvine {

/// A user-defined schema at the mediation layer (paper Section 2.2): a named
/// set of attributes used as predicates in triples. An attribute "Organism"
/// of schema "EMBL" appears in triples as the predicate URI "EMBL#Organism".
///
/// Schemas carry the application `domain` they belong to (e.g.
/// "protein-sequences"), which names the key space where connectivity
/// statistics for the domain are aggregated (Section 3.1).
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::string domain,
         std::vector<std::string> attributes)
      : name_(std::move(name)),
        domain_(std::move(domain)),
        attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::string& domain() const { return domain_; }
  const std::vector<std::string>& attributes() const { return attributes_; }

  bool HasAttribute(const std::string& local_name) const;

  /// Full predicate URI of a local attribute name: "<schema>#<attr>".
  std::string AttributeUri(const std::string& local_name) const {
    return name_ + "#" + local_name;
  }
  /// All attribute URIs in declaration order.
  std::vector<std::string> AttributeUris() const;

  /// Splits "<schema>#<attr>" into (schema, attr); error if no '#'.
  static Result<std::pair<std::string, std::string>> SplitAttributeUri(
      const std::string& uri);
  /// The schema part of an attribute URI, or "" if the URI has no '#'.
  static std::string SchemaOfUri(const std::string& uri);
  /// The local part of an attribute URI (after the last '#').
  static std::string LocalOfUri(const std::string& uri);

  /// Checks invariants: non-empty name, no reserved characters ('#', '\t',
  /// '|') in the name or attribute names, no duplicate attributes.
  Status Validate() const;

  /// Line format "schema|<name>|<domain>|attr1,attr2,...".
  std::string Serialize() const;
  static Result<Schema> Parse(const std::string& line);

  bool operator==(const Schema& other) const {
    return name_ == other.name_ && domain_ == other.domain_ &&
           attributes_ == other.attributes_;
  }

 private:
  std::string name_;
  std::string domain_;
  std::vector<std::string> attributes_;
};

/// The process-wide Schema intern pool: every SchemaRegistry entry is a ref
/// into it, so N peers tracking the same schema hold one object, not N.
InternPool<Schema>& SchemaPool();

/// In-memory set of known schemas (the view a single peer accumulates).
/// Entries are refcounted interned objects shared across registries.
class SchemaRegistry {
 public:
  /// Registers or replaces a schema under its name.
  Status Register(const Schema& schema);
  bool Contains(const std::string& name) const;
  Result<Schema> Get(const std::string& name) const;
  /// The shared immutable object for `name`, or null when absent. Prefer
  /// this over Get() when the caller just reads — no copy.
  std::shared_ptr<const Schema> GetShared(const std::string& name) const;
  std::vector<std::string> Names() const;
  size_t size() const { return schemas_.size(); }

  /// Bytes owned by this registry itself (the ref array — the schemas live
  /// in SchemaPool() and are shared).
  size_t MemoryFootprint() const {
    return schemas_.capacity() * sizeof(schemas_[0]);
  }

 private:
  std::vector<std::shared_ptr<const Schema>> schemas_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SCHEMA_SCHEMA_H_
