#ifndef GRIDVINE_SIM_LATENCY_H_
#define GRIDVINE_SIM_LATENCY_H_

#include <memory>

#include "common/rng.h"
#include "sim/simulator.h"

namespace gridvine {

/// Samples per-message one-way delivery latency. The choice of model is what
/// turns routing hop counts into the wall-clock CDF reported in experiment E1.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One latency sample in seconds.
  virtual SimTime Sample(Rng* rng) = 0;
  /// Sample drawing from a per-node SmallRng stream — the sharded engine's
  /// path, where draw order must not depend on global send interleaving.
  /// The two overloads need not produce the same sequences; each engine is
  /// its own determinism domain.
  virtual SimTime Sample(SmallRng* rng) = 0;
  /// Hard lower bound on any sample: no message arrives sooner than this.
  /// The sharded engine's conservative lookahead — the epoch width within
  /// which shards may run without hearing from each other — is exactly this
  /// bound, so it must be positive for parallel simulation to make progress.
  virtual SimTime MinDelay() const = 0;
};

/// Fixed latency; used by unit tests to make timing assertions exact.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime latency) : latency_(latency) {}
  SimTime Sample(Rng*) override { return latency_; }
  SimTime Sample(SmallRng*) override { return latency_; }
  SimTime MinDelay() const override { return latency_; }

 private:
  SimTime latency_;
};

/// Uniform latency in [lo, hi).
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {}
  SimTime Sample(Rng* rng) override { return rng->UniformDouble(lo_, hi_); }
  SimTime Sample(SmallRng* rng) override {
    return rng->UniformDouble(lo_, hi_);
  }
  SimTime MinDelay() const override { return lo_; }

 private:
  SimTime lo_, hi_;
};

/// Wide-area latency: a base propagation delay plus a log-normal tail, plus
/// an optional straggler component (with probability `straggler_prob` the
/// message crosses an overloaded host and picks up an extra exponential
/// delay of mean `straggler_mean`). This mixture matches the heavy-tailed
/// behaviour of the paper's 340-machine PlanetLab-style deployment, where a
/// sizeable fraction of queries took several seconds.
class WanLatency : public LatencyModel {
 public:
  /// `base` is the deterministic floor, `mu`/`sigma` parameterize the
  /// log-normal variable part (of the underlying normal, seconds).
  explicit WanLatency(SimTime base = 0.015, double mu = -3.2,
                      double sigma = 1.1, double straggler_prob = 0.0,
                      SimTime straggler_mean = 4.0)
      : base_(base),
        mu_(mu),
        sigma_(sigma),
        straggler_prob_(straggler_prob),
        straggler_mean_(straggler_mean) {}

  SimTime Sample(Rng* rng) override {
    SimTime t = base_ + rng->LogNormal(mu_, sigma_);
    if (straggler_prob_ > 0 && rng->Bernoulli(straggler_prob_)) {
      t += rng->Exponential(1.0 / straggler_mean_);
    }
    return t;
  }
  SimTime Sample(SmallRng* rng) override {
    SimTime t = base_ + rng->LogNormal(mu_, sigma_);
    if (straggler_prob_ > 0 && rng->Bernoulli(straggler_prob_)) {
      t += rng->Exponential(1.0 / straggler_mean_);
    }
    return t;
  }
  SimTime MinDelay() const override { return base_; }

 private:
  SimTime base_;
  double mu_, sigma_;
  double straggler_prob_;
  SimTime straggler_mean_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_LATENCY_H_
