// ExtentCache unit tests plus the TripleStore version-counter contract the
// cache's invalidation rule depends on. The regression of record here: a
// store version that only moved on inserts would let the cache serve rows
// for deleted triples forever — Erase, Clear and tombstone compaction must
// all bump it.

#include <gtest/gtest.h>

#include <string>

#include "query/extent_cache.h"
#include "rdf/triple.h"
#include "store/triple_store.h"

namespace gridvine {
namespace {

ExtentCache::Extent Rows(const std::string& payload, uint64_t count) {
  ExtentCache::Extent e;
  e.rows = payload;
  e.row_count = count;
  return e;
}

TEST(ExtentCacheTest, HitAfterInsert) {
  ExtentCache cache;
  cache.Insert("p1", "probes-a", 7, Rows("row-data", 3));
  const ExtentCache::Extent* hit = cache.Lookup("p1", "probes-a", 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows, "row-data");
  EXPECT_EQ(hit->row_count, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ExtentCacheTest, NegativeHitsCountEmptyExtents) {
  // Cached empty extents are the cheap "this peer has nothing for you"
  // answers; they get their own counter so operators can tell how much of
  // the hit rate is negative caching.
  ExtentCache cache;
  cache.Insert("empty", "", 1, Rows("", 0));
  cache.Insert("full", "", 1, Rows("row-data", 2));
  ASSERT_NE(cache.Lookup("empty", "", 1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  // A hit on a non-empty extent bumps hits only.
  ASSERT_NE(cache.Lookup("full", "", 1), nullptr);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  // Misses never count as negative hits.
  EXPECT_EQ(cache.Lookup("absent", "", 1), nullptr);
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  // Repeated empty hits keep counting.
  ASSERT_NE(cache.Lookup("empty", "", 1), nullptr);
  EXPECT_EQ(cache.stats().negative_hits, 2u);
}

TEST(ExtentCacheTest, MissOnUnknownKeyAndDistinctProbes) {
  ExtentCache cache;
  cache.Insert("p1", "probes-a", 1, Rows("a", 1));
  EXPECT_EQ(cache.Lookup("p2", "probes-a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("p1", "probes-b", 1), nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
  // Same pattern with two probe signatures: two independent entries.
  cache.Insert("p1", "probes-b", 1, Rows("b", 1));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.Lookup("p1", "probes-a", 1)->rows, "a");
  EXPECT_EQ(cache.Lookup("p1", "probes-b", 1)->rows, "b");
}

TEST(ExtentCacheTest, VersionMismatchDropsEntry) {
  ExtentCache cache;
  cache.Insert("p1", "", 5, Rows("stale", 1));
  // Store moved on (insert/erase/compaction): the entry is dropped, counted
  // as invalidation + miss, and is gone even for the original version.
  EXPECT_EQ(cache.Lookup("p1", "", 6), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.Lookup("p1", "", 5), nullptr);
}

TEST(ExtentCacheTest, LruEvictionByEntryCount) {
  ExtentCache::Options opts;
  opts.max_entries = 2;
  ExtentCache cache(opts);
  cache.Insert("a", "", 1, Rows("a", 1));
  cache.Insert("b", "", 1, Rows("b", 1));
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.Lookup("a", "", 1), nullptr);
  cache.Insert("c", "", 1, Rows("c", 1));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup("a", "", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", "", 1), nullptr);
  EXPECT_NE(cache.Lookup("c", "", 1), nullptr);
}

TEST(ExtentCacheTest, ByteBoundEviction) {
  ExtentCache::Options opts;
  opts.max_bytes = 600;
  ExtentCache cache(opts);
  cache.Insert("a", "", 1, Rows(std::string(200, 'x'), 10));
  cache.Insert("b", "", 1, Rows(std::string(200, 'y'), 10));
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.bytes(), 600u);
  EXPECT_NE(cache.Lookup("b", "", 1), nullptr);  // newest survives
}

TEST(ExtentCacheTest, ReplaceUpdatesInPlace) {
  ExtentCache cache;
  cache.Insert("p", "", 1, Rows("old", 1));
  cache.Insert("p", "", 2, Rows("new", 2));
  EXPECT_EQ(cache.entries(), 1u);
  const auto* hit = cache.Lookup("p", "", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows, "new");
}

TEST(ExtentCacheTest, MemoryFootprintTracksEntries) {
  ExtentCache cache;
  size_t empty = cache.MemoryFootprint();
  cache.Insert("p", "probes", 1, Rows(std::string(1000, 'z'), 50));
  EXPECT_GT(cache.MemoryFootprint(), empty + 1000);
}

// --- TripleStore version contract -------------------------------------------

Triple T(int i) {
  return Triple(Term::Uri("s" + std::to_string(i)), Term::Uri("p"),
                Term::Literal("o" + std::to_string(i)));
}

TEST(TripleStoreVersionTest, InsertBumpsOncePerNewTriple) {
  TripleStore db;
  uint64_t v0 = db.version();
  ASSERT_TRUE(db.Insert(T(1)).ok());
  EXPECT_EQ(db.version(), v0 + 1);
  // Duplicate insert is a no-op: a cache keyed on the version must not be
  // invalidated by it.
  ASSERT_TRUE(db.Insert(T(1)).ok());
  EXPECT_EQ(db.version(), v0 + 1);
}

TEST(TripleStoreVersionTest, EraseAndClearBump) {
  TripleStore db;
  ASSERT_TRUE(db.Insert(T(1)).ok());
  uint64_t v = db.version();
  EXPECT_TRUE(db.Erase(T(1)));
  EXPECT_GT(db.version(), v);
  // Erasing something absent leaves the version alone.
  v = db.version();
  EXPECT_FALSE(db.Erase(T(2)));
  EXPECT_EQ(db.version(), v);
  ASSERT_TRUE(db.Insert(T(3)).ok());
  v = db.version();
  db.Clear();
  EXPECT_GT(db.version(), v);
}

TEST(TripleStoreVersionTest, CompactionBumps) {
  // Drive the store across the compaction threshold (>= 64 slots, >= 50%
  // dead) and check the version moved strictly past the per-erase bumps:
  // compaction renumbers slots, so cached extents computed before it are
  // stale even though the logical contents did not change.
  TripleStore db;
  const int n = 80;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(db.Insert(T(i)).ok());
  uint64_t erased = 0;
  uint64_t v_before = db.version();
  for (int i = 0; i < n / 2 + 1; ++i) {
    ASSERT_TRUE(db.Erase(T(i)));
    ++erased;
  }
  // At least one compaction ran somewhere in that erase run.
  EXPECT_GT(db.version(), v_before + erased);
  EXPECT_EQ(db.size(), size_t(n) - erased);
}

}  // namespace
}  // namespace gridvine
