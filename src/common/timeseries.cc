#include "common/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/metrics.h"
#include "common/trace.h"

namespace gridvine {

void MetricsTimeSeries::Record(double window_end, const MetricsRegistry& m) {
  // Re-recording the same instant (e.g. a manual tick right after a timer
  // tick) replaces that window instead of duplicating its rows.
  while (!samples_.empty() && samples_.back().t == window_end) {
    samples_.pop_back();
  }
  for (auto& [name, value] : m.Flatten()) {
    if (samples_.size() == capacity_) {
      samples_.pop_front();
      ++evicted_;
    }
    samples_.push_back(Sample{window_end, std::move(name), value});
  }
}

size_t MetricsTimeSeries::windows() const {
  size_t n = 0;
  double last = -1;
  bool first = true;
  for (const Sample& s : samples_) {
    if (first || s.t != last) {
      ++n;
      last = s.t;
      first = false;
    }
  }
  return n;
}

std::vector<MetricsTimeSeries::WindowRow> MetricsTimeSeries::LatestWindow()
    const {
  std::vector<WindowRow> out;
  if (samples_.empty()) return out;
  const double t_last = samples_.back().t;
  // Find the previous window's values for delta computation.
  double t_prev = -1;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->t != t_last) {
      t_prev = it->t;
      break;
    }
  }
  std::map<std::string, double, std::less<>> prev;
  for (const Sample& s : samples_) {
    if (s.t == t_prev) prev[s.name] = s.value;
  }
  for (const Sample& s : samples_) {
    if (s.t != t_last) continue;
    auto it = prev.find(s.name);
    const double delta = it == prev.end() ? s.value : s.value - it->second;
    out.push_back(WindowRow{s.name, s.value, delta});
  }
  std::sort(out.begin(), out.end(), [](const WindowRow& a, const WindowRow& b) {
    const double da = std::fabs(a.delta), db = std::fabs(b.delta);
    return da != db ? da > db : a.name < b.name;
  });
  return out;
}

std::vector<std::pair<double, double>> MetricsTimeSeries::Series(
    std::string_view name) const {
  std::vector<std::pair<double, double>> out;
  for (const Sample& s : samples_) {
    if (s.name == name) out.emplace_back(s.t, s.value);
  }
  return out;
}

std::string MetricsTimeSeries::ToJson(double window_s) const {
  std::ostringstream os;
  os.precision(15);
  os << "{\"window_s\": " << window_s << ",\n\"samples\": [\n";
  size_t i = 0;
  for (const Sample& s : samples_) {
    os << "  {\"t\": " << s.t << ", \"name\": \"";
    for (char c : s.name) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\", \"value\": ";
    if (std::isfinite(s.value)) {
      os << s.value;
    } else {
      os << "null";
    }
    os << "}" << (++i < samples_.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

double HealthWatchdog::Value(
    const std::map<std::string, double, std::less<>>& row,
    std::string_view name) const {
  auto it = row.find(name);
  return it == row.end() ? 0.0 : it->second;
}

void HealthWatchdog::Fire(double window_end, std::string rule,
                          std::string detail) {
  ++fired_[rule];
  if (tracer_ != nullptr && tracer_->enabled()) {
    TraceCtx marker = tracer_->StartTrace("health.violation");
    tracer_->Annotate(marker, "rule", rule);
    tracer_->Annotate(marker, "window_end", window_end);
    tracer_->EndSpan(marker);
  }
  violations_.push_back(Violation{window_end, std::move(rule),
                                  std::move(detail)});
}

size_t HealthWatchdog::Evaluate(double window_end, MetricsRegistry* m) {
  std::map<std::string, double, std::less<>> cur;
  for (const auto& [name, value] : m->Flatten()) cur[name] = value;
  const size_t before = violations_.size();
  ++windows_evaluated_;

  auto fmt = [](double v) {
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
  };

  // Conservation is a cumulative invariant: every delivered or dropped
  // message was once sent (or forged by duplication) — a per-window check
  // would false-positive on messages in flight across the boundary.
  {
    const double sent = Value(cur, "net.messages_sent") +
                        Value(cur, "net.messages_duplicated");
    const double done = Value(cur, "net.messages_delivered") +
                        Value(cur, "net.messages_dropped");
    if (done > sent) {
      Fire(window_end, "conservation",
           "delivered+dropped " + fmt(done) + " > sent+duplicated " +
               fmt(sent));
    }
  }

  if (have_prev_) {
    auto delta = [&](std::string_view name) {
      return Value(cur, name) - Value(prev_, name);
    };
    // Retry-rate spike: overlay retries per message put on the wire.
    {
      const double sends = delta("net.messages_sent");
      const double retries = delta("pgrid.retries");
      if (sends >= double(opts_.retry_min_sends) &&
          retries > opts_.retry_rate_threshold * sends) {
        Fire(window_end, "retry_spike",
             fmt(retries) + " retries / " + fmt(sends) + " sends in window");
      }
    }
    // Cache hit-rate collapse — only meaningful once the cache has been hot.
    {
      const double hits = delta("gv.cache.hits");
      const double lookups = hits + delta("gv.cache.misses");
      if (hits > 0) cache_seen_hot_ = true;
      if (cache_seen_hot_ && lookups >= double(opts_.cache_min_lookups) &&
          hits < opts_.cache_collapse_threshold * lookups) {
        Fire(window_end, "cache_collapse",
             fmt(hits) + " hits / " + fmt(lookups) + " lookups in window");
      }
    }
    // Frontend shed rate: admission control turning work away.
    {
      const double submitted = delta("gv.frontend.submitted");
      const double shed = delta("gv.frontend.shed");
      if (submitted >= double(opts_.shed_min_submitted) &&
          shed > opts_.shed_rate_threshold * submitted) {
        Fire(window_end, "shed_rate",
             fmt(shed) + " shed / " + fmt(submitted) + " submitted in window");
      }
    }
  }

  prev_ = std::move(cur);
  have_prev_ = true;
  PublishMetrics(m);
  return violations_.size() - before;
}

uint64_t HealthWatchdog::fired(std::string_view rule) const {
  auto it = fired_.find(rule);
  return it == fired_.end() ? 0 : it->second;
}

void HealthWatchdog::PublishMetrics(MetricsRegistry* m) const {
  // `=` not `+=`: these are cumulative totals, re-stamped on every snapshot
  // (CollectMetrics clears the registry each time).
  m->Counter("health.windows") = windows_evaluated_;
  m->Counter("health.violations") = violations_.size();
  for (const auto& [rule, count] : fired_) {
    m->Counter("health." + rule) = count;
  }
}

}  // namespace gridvine
