#!/usr/bin/env python3
"""Validates an exported Chrome trace (and optional metrics / timeseries JSON).

Usage: validate_trace.py TRACE_JSON [METRICS_JSON] [TIMESERIES_JSON]

Checks, exiting non-zero on the first violation:
  - the trace file is valid JSON with a non-empty "traceEvents" list;
  - every event carries args.span_id, span ids are unique;
  - every non-zero args.parent_id refers to a recorded span with the same
    tid (= trace id) and a strictly smaller causal key (ts, then args.order)
    -- the merge key shard rings are combined on, so parent chains strictly
    decrease and cannot cycle;
  - every span tree is acyclic by explicit parent-chain traversal (belt and
    braces on top of the key argument);
  - shard-merged traces ("otherData": {"shards": N}): span-id high bits name
    a shard below N, and the merged event sequence is sorted by the causal
    (ts, order) key -- the property that makes the merged trace identical to
    the shards=1 trace of the same seed;
  - the optional metrics file is valid JSON with the counters / gauges /
    histograms sections;
  - the optional timeseries file matches the MetricsTimeSeries::ToJson
    schema: a numeric "window_s" and a "samples" list of {t, name, value}
    rows with non-decreasing t.
"""

import json
import sys

SHARD_ID_SHIFT = 48  # Tracer::kShardIdShift


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def causal_key(ev):
    return (ev["ts"], ev["args"].get("order", ev["args"]["span_id"]))


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    shards = doc.get("otherData", {}).get("shards", 1)
    by_id = {}
    for ev in events:
        args = ev.get("args", {})
        span_id = args.get("span_id")
        if not isinstance(span_id, int) or span_id <= 0:
            fail(f"{path}: event without a positive args.span_id: {ev}")
        if span_id in by_id:
            fail(f"{path}: duplicate span id {span_id}")
        if shards > 1 and (span_id >> SHARD_ID_SHIFT) >= shards:
            fail(f"{path}: span {span_id} names shard "
                 f"{span_id >> SHARD_ID_SHIFT} of {shards}")
        by_id[span_id] = ev
    for ev in events:
        span_id = ev["args"]["span_id"]
        parent_id = ev["args"].get("parent_id", 0)
        if parent_id == 0:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            fail(f"{path}: span {span_id} has unknown parent {parent_id}")
        if causal_key(parent) >= causal_key(ev):
            fail(f"{path}: span {span_id} parent {parent_id} not causally "
                 "before it (cycle risk)")
        if parent.get("tid") != ev.get("tid"):
            fail(f"{path}: span {span_id} crosses traces to parent "
                 f"{parent_id}")
    # Explicit acyclicity: walk every parent chain once, memoizing spans
    # already proven to reach a root.
    ok = set()
    for ev in events:
        chain = []
        span_id = ev["args"]["span_id"]
        while span_id != 0 and span_id not in ok:
            if span_id in chain:
                fail(f"{path}: parent cycle through span {span_id}")
            chain.append(span_id)
            span_id = by_id[span_id]["args"].get("parent_id", 0)
        ok.update(chain)
    if shards > 1:
        keys = [causal_key(ev) for ev in events]
        for i in range(1, len(keys)):
            if keys[i - 1] >= keys[i]:
                fail(f"{path}: merged events out of (ts, order) key order at "
                     f"index {i}")
    roots = sum(1 for ev in events if ev["args"].get("parent_id", 0) == 0)
    print(f"validate_trace: {path}: {len(events)} span(s), {roots} tree(s), "
          f"{shards} shard(s), acyclic")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"{path}: missing \"{section}\" section")
    print(f"validate_trace: {path}: {len(doc['counters'])} counter(s), "
          f"{len(doc['gauges'])} gauge(s), {len(doc['histograms'])} "
          "histogram(s)")


def validate_timeseries(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc.get("window_s"), (int, float)):
        fail(f"{path}: missing numeric \"window_s\"")
    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail(f"{path}: no samples")
    last_t = None
    names = set()
    for row in samples:
        if not isinstance(row.get("t"), (int, float)):
            fail(f"{path}: sample without numeric t: {row}")
        if not isinstance(row.get("name"), str) or not row["name"]:
            fail(f"{path}: sample without a name: {row}")
        if "value" not in row:
            fail(f"{path}: sample without a value: {row}")
        if last_t is not None and row["t"] < last_t:
            fail(f"{path}: sample times go backwards at t={row['t']}")
        last_t = row["t"]
        names.add(row["name"])
    windows = len({row["t"] for row in samples})
    print(f"validate_trace: {path}: {len(samples)} sample(s), {windows} "
          f"window(s), {len(names)} metric(s)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate_trace(sys.argv[1])
    if len(sys.argv) > 2:
        validate_metrics(sys.argv[2])
    if len(sys.argv) > 3:
        validate_timeseries(sys.argv[3])
    print("validate_trace: OK")


if __name__ == "__main__":
    main()
