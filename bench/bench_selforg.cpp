// Experiment E9 — continuous self-organization vs network size (paper
// Section 3 + the agreement-maintenance extension):
//
// For each network size the run starts with schemas but zero mappings,
// self-organizes to global interoperability (convergence time), evolves one
// schema mid-run (every renamable attribute moves to a different vocabulary
// variant), and keeps running rounds until the dangling mappings are
// deprecated, replacements are re-derived, and query recall recovers to at
// least 95% of its pre-change level.
//
// Convergence rounds must stay flat as the network grows — the organizer's
// work is a function of the schema population, not the peer count; only the
// per-round wall time grows with routing depth.
//
//   $ ./bench/bench_selforg
//
// Quick mode (GV_BENCH_QUICK=1) runs a single small size as a CI smoke.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.h"
#include "selforg_scale.h"

using namespace gridvine;
using gridvine::bench::EvolutionScaleResult;
using gridvine::bench::RunEvolutionAtScale;

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_selforg");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;

  std::vector<size_t> sizes;
  if (quick) {
    sizes = {256};
  } else {
    sizes = {1000, 10240};
  }

  std::printf("E9: self-organization + schema evolution vs network size\n");
  std::printf("  8 schemas, mappings from zero, evolution at convergence, "
              "recovery target 95%%\n\n");
  std::printf("  %-8s %9s %9s %8s %8s %9s %8s %9s %9s\n", "peers", "conv",
              "organize", "recall", "dip", "recover", "recall'", "stale",
              "created");

  for (size_t peers : sizes) {
    EvolutionScaleResult r = RunEvolutionAtScale(peers, /*seed=*/404);
    std::printf("  %-8zu %9d %8.1fs %7.0f%% %7.0f%% %9d %7.0f%% %9zu %9zu\n",
                r.peers, r.convergence_rounds, r.organize_seconds,
                r.recall_pre * 100, r.recall_post * 100, r.recovery_rounds,
                r.recall_final * 100, r.stale_deprecated, r.created_total);
    json.Add("peers_" + std::to_string(peers),
             {{"peers", double(r.peers)},
              {"convergence_rounds", double(r.convergence_rounds)},
              {"recall_pre", r.recall_pre},
              {"recall_post_evolution", r.recall_post},
              {"recall_final", r.recall_final},
              {"recovery_rounds", double(r.recovery_rounds)},
              {"recovery_ratio",
               r.recall_pre > 0 ? r.recall_final / r.recall_pre : 0.0},
              {"stale_deprecated", double(r.stale_deprecated)},
              {"created_total", double(r.created_total)},
              {"bp_messages", double(r.bp_messages)},
              {"organize_seconds", r.organize_seconds},
              {"repair_seconds", r.repair_seconds}});
  }

  json.Finish();
  std::printf("\n  expectation: convergence rounds flat in network size; the "
              "evolution dips recall and the\n  repair rounds restore >= 95%% "
              "of the pre-change level at every size.\n");
  return 0;
}
