#ifndef GRIDVINE_PGRID_RETRY_POLICY_H_
#define GRIDVINE_PGRID_RETRY_POLICY_H_

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace gridvine {

/// Per-request retry discipline for the reliable request layer: capped
/// exponential backoff with symmetric jitter. Pure arithmetic over an
/// explicit Rng — no simulator dependency — so the schedule is unit-testable
/// in isolation and deterministic under a fixed seed.
///
/// Attempt numbering is 1-based: attempt 1 waits ~base_timeout, attempt 2
/// ~base_timeout * backoff_multiplier, ..., capped at max_timeout. Jitter
/// multiplies the backed-off value by a uniform factor in
/// [1 - jitter, 1 + jitter] (drawn from the caller's Rng — in the simulator
/// that is the peer's forked stream, preserving whole-run determinism) so
/// synchronized timeouts across peers do not re-collide on retry.
struct RetryPolicy {
  /// Timeout for the first attempt, seconds.
  SimTime base_timeout = 8.0;
  /// Total attempts before giving up (1 = no retries).
  int max_attempts = 3;
  /// Growth factor per attempt.
  double backoff_multiplier = 2.0;
  /// Upper bound applied before jitter.
  SimTime max_timeout = 60.0;
  /// Symmetric jitter fraction in [0, 1); 0 disables the Rng draw entirely.
  double jitter = 0.1;

  /// Backed-off, jittered timeout for 1-based `attempt`. Templated over the
  /// generator: GridVinePeer jitters from its big Rng, overlay peers from
  /// their CompactRng.
  template <typename RngT>
  SimTime TimeoutFor(int attempt, RngT* rng) const {
    double t = base_timeout;
    for (int i = 1; i < attempt && t < max_timeout; ++i) {
      t *= backoff_multiplier;
    }
    t = std::min(t, double(max_timeout));
    if (jitter > 0) t *= rng->UniformDouble(1.0 - jitter, 1.0 + jitter);
    return t;
  }

  /// Backoff with the jitter stripped — the midpoint TimeoutFor jitters
  /// around; exposed for tests asserting the envelope.
  SimTime NominalTimeoutFor(int attempt) const {
    double t = base_timeout;
    for (int i = 1; i < attempt && t < max_timeout; ++i) {
      t *= backoff_multiplier;
    }
    return std::min(t, double(max_timeout));
  }

  /// True once `attempts_made` attempts have been spent.
  bool Exhausted(int attempts_made) const {
    return attempts_made >= max_attempts;
  }

  /// The terminal status of an exhausted request: always kTimeout, so
  /// callers can branch on Status::IsTimeout() regardless of how the last
  /// attempt died.
  static Status TimeoutStatus(int attempts_made) {
    return Status::Timeout("request timed out after " +
                           std::to_string(attempts_made) + " attempt(s)");
  }
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_RETRY_POLICY_H_
