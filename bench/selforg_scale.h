#ifndef GRIDVINE_BENCH_SELFORG_SCALE_H_
#define GRIDVINE_BENCH_SELFORG_SCALE_H_

// Shared driver for the schema-evolution-at-scale experiment: a network of
// `peers` peers (sharded engine at the larger sizes) self-organizes from
// zero mappings to full interoperability, one schema then evolves mid-run
// (every renamable attribute moves to a different vocabulary variant), and
// continued rounds must repair the damage — deprecate the dangling
// mappings, re-derive replacements, and recover query recall.
//
// Used by bench_selforg (network-size sweep), and by bench_recall_evolution
// / bench_mapping_quality for their evolution_at_scale rows, so the three
// JSON records stay consistent with each other.

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "selforg/self_organizer.h"
#include "workload/bio_workload.h"

namespace gridvine {
namespace bench {

struct EvolutionScaleResult {
  size_t peers = 0;
  int convergence_rounds = 0;  // rounds to reach scc == 1.0 from no mappings
  double recall_pre = 0;       // query recall at convergence
  double recall_post = 0;      // right after the evolution (the dip)
  double recall_final = 0;     // after the repair rounds
  int recovery_rounds = 0;     // rounds from evolution until recovered (or cap)
  size_t stale_deprecated = 0;  // dangling mappings repaired away
  size_t created_total = 0;     // mappings created over the whole run
  uint64_t bp_messages = 0;     // lifetime incremental BP messages
  double organize_seconds = 0;  // wall time of the initial convergence loop
  double repair_seconds = 0;    // wall time of the post-evolution loop
};

inline double MeasureScaleRecall(
    GridVineNetwork& net, const std::vector<BioWorkload::GeneratedQuery>& qs,
    const BioWorkload& workload) {
  double total = 0;
  for (size_t i = 0; i < qs.size(); ++i) {
    GridVinePeer::QueryOptions opts;
    opts.reformulate = true;
    opts.mode = ReformulationMode::kIterative;
    opts.max_hops = int(workload.schemas().size());
    opts.timeout = 30.0;
    auto res = net.SearchFor(i % workload.schemas().size(), qs[i].query, opts);
    std::set<std::string> found;
    for (const auto& item : res.items) found.insert(item.value.value());
    total += BioWorkload::Recall(qs[i], found);
  }
  return qs.empty() ? 0.0 : total / double(qs.size());
}

inline EvolutionScaleResult RunEvolutionAtScale(size_t peers, uint64_t seed,
                                                bool verbose = false) {
  using clock = std::chrono::steady_clock;
  EvolutionScaleResult out;
  out.peers = peers;

  GridVineNetwork::Options no;
  no.num_peers = peers;
  no.key_depth = 16;
  no.seed = seed;
  no.latency = GridVineNetwork::LatencyKind::kConstant;
  no.latency_param = 0.01;
  // The sharded conservative-parallel engine carries the large sizes; the
  // outcome is shard-count invariant, so the shard count is purely a speed
  // knob.
  no.shards = peers >= 4096 ? 4 : 1;
  no.peer.query_timeout = 10.0;
  GridVineNetwork net(no);

  BioWorkload::Options wl;
  wl.num_schemas = 8;
  wl.num_entities = 120;
  wl.entities_per_schema = 30;
  wl.seed = 31;
  BioWorkload workload(wl);

  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    if (!net.InsertSchema(s, workload.schemas()[s]).ok()) return out;
    if (!net.InsertTriples(s, workload.TriplesFor(s)).ok()) return out;
  }
  net.Settle();

  SelfOrganizer::Options org;
  org.domain = workload.options().domain;
  org.creations_per_round = 4;
  org.seed = 5;
  SelfOrganizer organizer(&net, org);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    organizer.RegisterSchemaOwner(workload.schemas()[s].name(), s);
  }

  // Fixed query mix: the concept every schema realizes, one query per
  // schema — full interoperability means recall ~1 whatever the issuer.
  Rng qrng(77);
  std::vector<BioWorkload::GeneratedQuery> queries;
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    queries.push_back(workload.MakeQuery(s, &qrng, "organism"));
  }

  // Phase 1: organize from zero mappings to global interoperability.
  auto t0 = clock::now();
  const int kMaxRounds = 16;
  for (int round = 1; round <= kMaxRounds; ++round) {
    auto report = organizer.RunRound();
    out.created_total += report.mappings_created;
    out.convergence_rounds = round;
    if (verbose) {
      std::printf("    organize round %d: ci=%.2f scc=%.0f%% created=%zu\n",
                  round, report.ci_after, report.scc_fraction_after * 100,
                  report.mappings_created);
    }
    if (report.scc_fraction_after >= 1.0) break;
  }
  out.organize_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();
  out.recall_pre = MeasureScaleRecall(net, queries, workload);

  // Phase 2: one schema evolves — every renamable attribute moves to a
  // different vocabulary variant, severing the mappings that reference it.
  Rng ev_rng(seed + 7);
  auto ev = workload.EvolveSchema(3, 1.0, &ev_rng);
  if (!net.UpsertSchema(3, ev.new_schema).ok()) return out;
  for (const auto& t : ev.removed_triples) {
    if (!net.RemoveTriple(3, t).ok()) return out;
  }
  for (const auto& t : ev.added_triples) {
    if (!net.InsertTriple(3, t).ok()) return out;
  }
  net.Settle();
  out.recall_post = MeasureScaleRecall(net, queries, workload);

  // Phase 3: continued rounds repair (stale deprecation) and re-derive.
  t0 = clock::now();
  const int kMaxRepairRounds = 10;
  for (int round = 1; round <= kMaxRepairRounds; ++round) {
    auto report = organizer.RunRound();
    out.created_total += report.mappings_created;
    out.stale_deprecated += report.mappings_stale_deprecated;
    out.recovery_rounds = round;
    double recall = MeasureScaleRecall(net, queries, workload);
    out.recall_final = recall;
    if (verbose) {
      std::printf(
          "    repair round %d: scc=%.0f%% stale=%zu created=%zu "
          "recall=%.0f%%\n",
          round, report.scc_fraction_after * 100,
          report.mappings_stale_deprecated, report.mappings_created,
          recall * 100);
    }
    if (report.scc_fraction_after >= 1.0 &&
        recall >= 0.95 * out.recall_pre) {
      break;
    }
  }
  out.repair_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();
  out.bp_messages = organizer.assessor().lifetime_messages();
  return out;
}

}  // namespace bench
}  // namespace gridvine

#endif  // GRIDVINE_BENCH_SELFORG_SCALE_H_
