#include "store/binding_codec.h"

namespace gridvine {

namespace {

constexpr char kRowSep = '\x1e';
constexpr char kUnitSep = '\x1f';

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == kRowSep || c == kUnitSep) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

char KindTag(TermKind kind) {
  switch (kind) {
    case TermKind::kUri:
      return 'U';
    case TermKind::kLiteral:
      return 'L';
    case TermKind::kVariable:
      return 'V';
  }
  return '?';
}

Result<Term> MakeTerm(char tag, std::string value) {
  switch (tag) {
    case 'U':
      return Term::Uri(std::move(value));
    case 'L':
      return Term::Literal(std::move(value));
    case 'V':
      return Term::Var(std::move(value));
    default:
      return Status::Corruption(std::string("bad term tag: ") + tag);
  }
}

}  // namespace

std::string SerializeBindings(const std::vector<BindingSet>& rows) {
  std::string out;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out.push_back(kRowSep);
    bool first = true;
    for (const auto& [var, term] : rows[r]) {
      if (!first) out.push_back(kUnitSep);
      first = false;
      out += Escape(var);
      out.push_back('=');
      out.push_back(KindTag(term.kind()));
      out.push_back(':');
      out += Escape(term.value());
    }
  }
  return out;
}

Result<std::vector<BindingSet>> ParseBindings(const std::string& data) {
  std::vector<BindingSet> rows;
  if (data.empty()) return rows;

  // Split on unescaped separators while unescaping in one pass.
  BindingSet cur_row;
  std::string cur_unit;
  bool escaped = false;
  auto flush_unit = [&]() -> Status {
    if (cur_unit.empty()) return Status::Corruption("empty binding unit");
    size_t eq = cur_unit.find('=');
    if (eq == std::string::npos || cur_unit.size() < eq + 3 ||
        cur_unit[eq + 2] != ':') {
      return Status::Corruption("malformed binding unit: " + cur_unit);
    }
    GV_ASSIGN_OR_RETURN(
        Term t, MakeTerm(cur_unit[eq + 1], cur_unit.substr(eq + 3)));
    cur_row[cur_unit.substr(0, eq)] = std::move(t);
    cur_unit.clear();
    return Status::OK();
  };

  for (char c : data) {
    if (escaped) {
      cur_unit.push_back(c);
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == kUnitSep) {
      GV_RETURN_NOT_OK(flush_unit());
    } else if (c == kRowSep) {
      GV_RETURN_NOT_OK(flush_unit());
      rows.push_back(std::move(cur_row));
      cur_row.clear();
    } else {
      cur_unit.push_back(c);
    }
  }
  if (escaped) return Status::Corruption("dangling escape");
  GV_RETURN_NOT_OK(flush_unit());
  rows.push_back(std::move(cur_row));
  return rows;
}

size_t BindingDeduper::Intern(const BindingSet& row, bool* inserted) {
  if (row.size() > kMaxInlineVars) {
    auto [it, fresh] = wide_rows_.emplace(SerializeBindings({row}), count_);
    if (inserted) *inserted = fresh;
    if (fresh) ++count_;
    return it->second;
  }
  Key key;
  for (const auto& [var, term] : row) {
    key.packed[key.len++] =
        (static_cast<uint64_t>(VarId(var)) << 32) | TermIdFor(term);
  }
  auto [it, fresh] = rows_.emplace(key, count_);
  if (inserted) *inserted = fresh;
  if (fresh) ++count_;
  return it->second;
}

uint32_t BindingDeduper::VarId(const std::string& var) {
  auto [it, fresh] =
      var_ids_.emplace(var, static_cast<uint32_t>(var_ids_.size()));
  (void)fresh;
  return it->second;
}

uint32_t BindingDeduper::TermIdFor(const Term& term) {
  auto [it, fresh] =
      term_ids_.emplace(term, static_cast<uint32_t>(term_ids_.size()));
  (void)fresh;
  return it->second;
}

}  // namespace gridvine
