#ifndef GRIDVINE_BENCH_BENCH_JSON_H_
#define GRIDVINE_BENCH_BENCH_JSON_H_

// Shared JSON reporting for the hand-rolled experiment benches (E1..E7),
// mirroring the flags google-benchmark binaries already understand:
//
//   --benchmark_format=json         print a JSON document on stdout (after
//                                   the human-readable tables)
//   --benchmark_out=FILE            write the JSON document to FILE
//   --benchmark_out_format=json     accepted for symmetry (JSON is the only
//                                   supported format)
//
// The document matches google-benchmark's envelope — {"context": ...,
// "benchmarks": [...]} — so scripts/run_bench.sh can treat every bench
// binary uniformly. Benches record one entry per result row via Add().

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace gridvine {
namespace bench {

class BenchJson {
 public:
  BenchJson(int argc, char** argv, std::string bench_name)
      : name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto value_of = [&arg](const std::string& prefix) -> std::string {
        return arg.substr(prefix.size());
      };
      if (arg.rfind("--benchmark_format=", 0) == 0) {
        stdout_json_ = value_of("--benchmark_format=") == "json";
      } else if (arg.rfind("--benchmark_out=", 0) == 0) {
        out_file_ = value_of("--benchmark_out=");
      }
      // --benchmark_out_format is accepted and ignored (always json).
    }
  }

  /// Records one result row, e.g.
  ///   json.Add("chain_4/iterative", {{"results", 12}, {"messages", 84}});
  void Add(const std::string& row_name,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    Row row;
    row.name = name_ + "/" + row_name;
    for (const auto& [k, v] : metrics) row.metrics.emplace_back(k, v);
    rows_.push_back(std::move(row));
  }

  /// Same, for metric lists built up at runtime (names included).
  void Add(const std::string& row_name,
           std::vector<std::pair<std::string, double>> metrics) {
    Row row;
    row.name = name_ + "/" + row_name;
    row.metrics = std::move(metrics);
    rows_.push_back(std::move(row));
  }

  /// Emits the JSON document; call once, at the end of main().
  void Finish() const {
    if (!stdout_json_ && out_file_.empty()) return;
    std::string doc = Render();
    if (!out_file_.empty()) {
      std::ofstream out(out_file_);
      out << doc;
    }
    if (stdout_json_) std::fputs(doc.c_str(), stdout);
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static void AppendEscaped(std::ostringstream& os, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
  }

  std::string Render() const {
    std::ostringstream os;
    os << "{\n  \"context\": {\"executable\": \"";
    AppendEscaped(os, name_);
    os << "\"},\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      os << "    {\"name\": \"";
      AppendEscaped(os, row.name);
      os << "\", \"run_type\": \"iteration\"";
      for (const auto& [k, v] : row.metrics) {
        os << ", \"" << k << "\": " << v;
      }
      os << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
  }

  std::string name_;
  bool stdout_json_ = false;
  std::string out_file_;
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace gridvine

#endif  // GRIDVINE_BENCH_BENCH_JSON_H_
