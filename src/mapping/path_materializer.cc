#include "mapping/path_materializer.h"

namespace gridvine {

Result<SchemaMapping> PathMaterializer::MaterializePath(
    const std::vector<SchemaMapping>& path) {
  if (path.empty()) {
    return Status::InvalidArgument("cannot materialize an empty path");
  }
  SchemaMapping composed = path[0];
  for (size_t i = 1; i < path.size(); ++i) {
    GV_ASSIGN_OR_RETURN(composed, composed.Compose(path[i]));
  }
  SchemaMapping shortcut("shortcut-" + composed.source_schema() + "-" +
                             composed.target_schema(),
                         composed.source_schema(), composed.target_schema());
  shortcut.set_type(composed.type());
  shortcut.set_provenance(MappingProvenance::kAutomatic);
  shortcut.set_confidence(composed.confidence());
  for (const auto& [src, dst] : composed.correspondences()) {
    GV_RETURN_NOT_OK(shortcut.AddCorrespondence(src, dst));
  }
  return shortcut;
}

std::vector<SchemaMapping> PathMaterializer::SelectAndMaterialize(
    const MappingGraph& graph) const {
  std::vector<SchemaMapping> out;
  std::vector<std::string> schemas = graph.Schemas();
  for (const auto& src : schemas) {
    for (const auto& dst : schemas) {
      if (src == dst || out.size() >= options_.max_shortcuts) continue;
      auto path = graph.FindPath(src, dst, options_.max_path_len);
      if (!path.ok() || int(path->size()) < options_.min_path_len) continue;
      auto shortcut = MaterializePath(*path);
      if (!shortcut.ok()) continue;
      if (shortcut->size() < options_.min_correspondences) continue;
      out.push_back(std::move(shortcut).value());
    }
  }
  return out;
}

}  // namespace gridvine
