#ifndef GRIDVINE_TESTS_FAULT_HARNESS_H_
#define GRIDVINE_TESTS_FAULT_HARNESS_H_

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "pgrid/maintenance.h"
#include "pgrid/online_exchange.h"
#include "pgrid/pgrid_builder.h"
#include "sim/churn.h"
#include "sim/fault_plan.h"

namespace gridvine {

/// One chaos scenario: a seeded overlay, a seeded fault plan (loss bursts,
/// partitions, latency spikes, duplication) layered over base loss and
/// churn, and a stream of Retrieve/Update operations issued from a pinned
/// peer. Everything — overlay wiring, fault windows, op mix, retry jitter —
/// derives from `seed`, so a failing run replays bit-identically from the
/// seed the harness prints.
struct FaultScenario {
  std::string name = "scenario";
  uint64_t seed = 1;

  // Topology.
  int peers = 48;
  int key_depth = 9;
  int refs_per_level = 3;

  // Workload: `operations` mixed Retrieve/Update ops, one every
  // `op_interval` simulated seconds after `warmup`.
  int operations = 120;
  SimTime op_interval = 2.0;
  SimTime warmup = 5.0;
  double update_fraction = 0.25;

  // Reliability layer. With `retries_on == false` the policy is clamped to a
  // single attempt (fire once, then timeout) — the paper-faithful baseline.
  RetryPolicy retry{/*base_timeout=*/1.5, /*max_attempts=*/4,
                    /*backoff_multiplier=*/2.0, /*max_timeout=*/12.0,
                    /*jitter=*/0.1};
  bool retries_on = true;

  // Faults. Window placement/extent is drawn from a generator forked off
  // `seed`; counts say how many windows of each kind to scatter over the run.
  double loss = 0.0;               // base independent loss
  int loss_bursts = 0;             // elevated-loss windows
  int partitions = 0;              // bidirectional partition windows
  int latency_spikes = 0;          // extra-latency windows
  double duplicate_probability = 0.0;

  // Churn (issuer pinned). offline_fraction f sets mean downtime so that
  // f = down / (up + down).
  bool churn = false;
  double offline_fraction = 0.2;
  double mean_session = 120.0;
  bool maintenance = true;
  /// Record spans for the whole run (every op traced); the trace invariants
  /// below check causal bookkeeping survives drops/duplicates/retries.
  bool trace = false;
  /// Wire ChurnModel's transition listener so a rejoining peer re-enters the
  /// overlay with one online-exchange encounter (the rejoin contract
  /// documented in sim/churn.h).
  bool rejoin_exchange = false;
};

/// Everything a scenario run observes; CheckDrainInvariants() interrogates it.
struct FaultRunResult {
  NetworkStats stats;
  uint64_t churn_transitions = 0;
  uint64_t rejoin_encounters = 0;

  // Operation accounting.
  size_t ops_issued = 0;
  size_t ops_ok = 0;         // resolved OK
  size_t ops_timeout = 0;    // resolved Status::Timeout
  size_t ops_other = 0;      // resolved with any other terminal status
  size_t unresolved = 0;     // callback never fired
  size_t resolved_twice = 0; // callback fired more than once
  size_t retrieves_issued = 0;
  size_t retrieves_hit = 0;  // retrieves that returned the planted value

  // Leak accounting after the simulator drained.
  size_t leaked_pending = 0;     // sum of PGridPeer::PendingRequests()
  size_t events_left = 0;        // Simulator::pending() after Run()

  uint64_t retries = 0;    // summed over peers
  uint64_t failovers = 0;  // summed over peers

  // Trace accounting (scenario.trace only).
  std::vector<Tracer::Span> spans;
  uint64_t spans_evicted = 0;

  double Recall() const {
    return retrieves_issued == 0
               ? 0.0
               : double(retrieves_hit) / double(retrieves_issued);
  }
};

/// Derives the fault windows from the scenario seed. Windows land inside the
/// op phase so they actually intersect traffic.
inline std::unique_ptr<FaultPlan> MakeFaultPlan(
    const FaultScenario& s, const std::vector<PGridPeer*>& peers) {
  auto plan = std::make_unique<FaultPlan>();
  Rng rng(s.seed * 0x9e3779b97f4a7c15ULL + 17);
  const SimTime horizon = s.warmup + s.operations * s.op_interval;
  for (int i = 0; i < s.loss_bursts; ++i) {
    FaultPlan::LossBurst b;
    b.start = rng.UniformDouble(s.warmup, horizon);
    b.end = b.start + rng.UniformDouble(5.0, 20.0);
    b.probability = rng.UniformDouble(0.4, 0.9);
    plan->AddLossBurst(b);
  }
  for (int i = 0; i < s.partitions; ++i) {
    FaultPlan::Partition part;
    part.start = rng.UniformDouble(s.warmup, horizon);
    part.end = part.start + rng.UniformDouble(8.0, 25.0);
    for (auto* p : peers) {
      (rng.Bernoulli(0.25) ? part.group_a : part.group_b).push_back(p->id());
    }
    if (part.group_a.empty() || part.group_b.empty()) {
      // Degenerate draw: force a minimal two-sided cut.
      part.group_a.assign(1, peers.front()->id());
      part.group_b.assign(1, peers.back()->id());
    }
    plan->AddPartition(part);
  }
  for (int i = 0; i < s.latency_spikes; ++i) {
    FaultPlan::LatencySpike sp;
    sp.start = rng.UniformDouble(s.warmup, horizon);
    sp.end = sp.start + rng.UniformDouble(5.0, 15.0);
    sp.extra = rng.UniformDouble(0.2, 0.8);
    sp.extra_mean_tail = 0.1;
    plan->AddLatencySpike(sp);
  }
  plan->set_duplicate_probability(s.duplicate_probability);
  return plan;
}

/// Builds the world, runs the scenario to quiescence, and reports what
/// happened. Same scenario (same seed) → bit-identical FaultRunResult::stats.
inline FaultRunResult RunFaultScenario(const FaultScenario& s) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.03), Rng(s.seed),
              s.loss);
  Tracer tracer;
  if (s.trace) {
    tracer.SetClock([&sim] { return sim.Now(); });
    tracer.Enable(/*capacity=*/1 << 20);
    net.SetTracer(&tracer);
  }

  PGridPeer::Options popts;
  popts.key_depth = s.key_depth;
  popts.retry = s.retry;
  if (!s.retries_on) popts.retry.max_attempts = 1;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  for (int i = 0; i < s.peers; ++i) {
    owned.push_back(
        std::make_unique<PGridPeer>(&sim, &net, Rng(s.seed * 131 + i), popts));
    peers.push_back(owned.back().get());
  }
  Rng build_rng(s.seed + 1);
  PGridBuilder::BuildBalanced(peers, &build_rng, s.refs_per_level);

  // Plant one value per region key; every replica of the region holds it.
  std::vector<Key> keys;
  keys.reserve(size_t(s.peers));
  for (int k = 0; k < s.peers; ++k) {
    Key key = Key::FromUint(uint64_t(k) * 13, s.key_depth);
    keys.push_back(key);
    for (auto* p : peers) {
      if (p->path().IsPrefixOf(key)) p->InsertLocal(key, "v");
    }
  }

  std::vector<std::unique_ptr<MaintenanceAgent>> maint;
  if (s.maintenance) {
    MaintenanceAgent::Options mopts;
    mopts.period = 10.0;
    mopts.probe_timeout = 1.0;
    for (auto* p : peers) {
      maint.push_back(std::make_unique<MaintenanceAgent>(
          &sim, p, Rng(s.seed * 7 + p->id()), mopts));
      maint.back()->Start();
    }
  }

  // Exchange agents exist only to serve rejoin re-entry; they are never
  // Start()ed (no periodic encounters), so they add no traffic unless a
  // churned peer comes back.
  FaultRunResult result;
  std::vector<std::unique_ptr<OnlineExchangeAgent>> exchange;
  std::vector<OnlineExchangeAgent*> exchange_by_id(size_t(s.peers), nullptr);
  if (s.rejoin_exchange) {
    OnlineExchangeAgent::Options xopts;
    xopts.transaction_timeout = 5.0;
    for (auto* p : peers) {
      exchange.push_back(std::make_unique<OnlineExchangeAgent>(
          &sim, p, Rng(s.seed * 59 + p->id()), xopts));
      exchange_by_id[p->id()] = exchange.back().get();
    }
  }

  net.SetFaultPlan(MakeFaultPlan(s, peers));

  ChurnModel::Options copts;
  copts.mean_session_seconds = s.mean_session;
  copts.mean_downtime_seconds =
      s.offline_fraction <= 0
          ? 0.001
          : s.mean_session * s.offline_fraction / (1 - s.offline_fraction);
  copts.pinned = {peers[0]->id()};
  ChurnModel churn(&sim, &net, Rng(s.seed + 5), copts);
  churn.SetTransitionListener([&](NodeId id, bool alive) {
    if (alive && id < exchange_by_id.size() && exchange_by_id[id] != nullptr) {
      exchange_by_id[id]->InitiateEncounter();
      ++result.rejoin_encounters;
    }
  });
  if (s.churn) churn.Start();

  // Operation stream. Each op records how often its callback fired and with
  // what terminal status; the drain check wants exactly one resolution per
  // op, each either OK or Timeout.
  struct OpRecord {
    int resolutions = 0;
    Status status;
    bool value_hit = false;
    bool is_retrieve = false;
  };
  std::vector<OpRecord> ops(size_t(s.operations));
  PGridPeer* issuer = peers[0];
  Rng op_rng(s.seed + 9);
  for (int i = 0; i < s.operations; ++i) {
    const Key key = keys[size_t(op_rng.UniformInt(0, s.peers - 1))];
    const bool is_update = op_rng.Bernoulli(s.update_fraction);
    OpRecord* rec = &ops[size_t(i)];
    rec->is_retrieve = !is_update;
    const SimTime when = s.warmup + i * s.op_interval;
    if (is_update) {
      sim.ScheduleAt(when, [issuer, key, rec, i]() {
        issuer->Update(key, "u" + std::to_string(i),
                       [rec](Result<PGridPeer::UpdateOutcome> r) {
                         ++rec->resolutions;
                         rec->status = r.status();
                       });
      });
    } else {
      sim.ScheduleAt(when, [issuer, key, rec]() {
        issuer->Retrieve(key, [rec](Result<PGridPeer::LookupResult> r) {
          ++rec->resolutions;
          rec->status = r.status();
          if (r.ok() && !r->values.empty()) rec->value_hit = true;
        });
      });
    }
  }

  // End of the op phase: freeze churn and maintenance, then drain. Already
  // scheduled transitions/rounds become no-ops; outstanding requests resolve
  // by answer or timeout; the heap empties.
  const SimTime stop_at = s.warmup + s.operations * s.op_interval + 1.0;
  sim.ScheduleAt(stop_at, [&churn, &maint]() {
    churn.Stop();
    for (auto& m : maint) m->Stop();
  });
  sim.Run();

  result.stats = net.stats();
  if (s.trace) {
    result.spans = tracer.Snapshot();
    result.spans_evicted = tracer.evicted();
  }
  result.churn_transitions = churn.transitions();
  result.events_left = sim.pending();
  for (auto* p : peers) {
    result.leaked_pending += p->PendingRequests();
    result.retries += p->counters().retries;
    result.failovers += p->counters().failovers;
  }
  for (const auto& rec : ops) {
    ++result.ops_issued;
    if (rec.resolutions == 0) {
      ++result.unresolved;
      continue;
    }
    if (rec.resolutions > 1) ++result.resolved_twice;
    if (rec.status.ok()) {
      ++result.ops_ok;
    } else if (rec.status.IsTimeout()) {
      ++result.ops_timeout;
    } else {
      ++result.ops_other;
    }
    if (rec.is_retrieve) {
      ++result.retrieves_issued;
      if (rec.value_hit) ++result.retrieves_hit;
    }
  }
  return result;
}

/// The drain invariants. Every violation message leads with the scenario
/// seed so the run can be replayed exactly:
///   GV_SOAK_SEED=<seed> ./build/tests/fault_soak_test
inline ::testing::AssertionResult CheckDrainInvariants(
    const FaultScenario& s, const FaultRunResult& r) {
  std::ostringstream tag;
  tag << "[scenario=" << s.name << " seed=" << s.seed
      << "] replay with: GV_SOAK_SEED=" << s.seed
      << " ./build/tests/fault_soak_test — ";
  auto fail = [&tag](const std::string& what) {
    return ::testing::AssertionFailure() << tag.str() << what;
  };
  const NetworkStats& n = r.stats;

  // 1. Conservation: every message put on the wire (plus every fault-plan
  //    duplicate) was either delivered or dropped.
  if (n.messages_sent + n.messages_duplicated !=
      n.messages_delivered + n.messages_dropped) {
    return fail("conservation broken: sent=" +
                std::to_string(n.messages_sent) + " + duplicated=" +
                std::to_string(n.messages_duplicated) + " != delivered=" +
                std::to_string(n.messages_delivered) + " + dropped=" +
                std::to_string(n.messages_dropped));
  }

  // 2. Drop-cause attribution sums to the total drop count.
  const uint64_t causes =
      n.drops_endpoint + n.drops_loss + n.drops_burst + n.drops_partition;
  if (causes != n.messages_dropped) {
    return fail("drop causes sum to " + std::to_string(causes) +
                ", expected messages_dropped=" +
                std::to_string(n.messages_dropped));
  }

  // 3. Per-type attribution sums to the totals.
  const uint64_t by_type_sent = std::accumulate(
      n.messages_by_type.begin(), n.messages_by_type.end(), uint64_t{0});
  if (by_type_sent != n.messages_sent) {
    return fail("per-type send counts sum to " + std::to_string(by_type_sent) +
                ", expected messages_sent=" + std::to_string(n.messages_sent));
  }
  const uint64_t by_type_dropped = std::accumulate(
      n.drops_by_type.begin(), n.drops_by_type.end(), uint64_t{0});
  if (by_type_dropped != n.messages_dropped) {
    return fail("per-type drop counts sum to " +
                std::to_string(by_type_dropped) +
                ", expected messages_dropped=" +
                std::to_string(n.messages_dropped));
  }

  // 4. No leaked in-flight requests and a fully drained event heap.
  if (r.leaked_pending != 0) {
    return fail(std::to_string(r.leaked_pending) +
                " pending request(s) leaked after drain");
  }
  if (r.events_left != 0) {
    return fail(std::to_string(r.events_left) +
                " event(s) still queued after Run()");
  }

  // 5. Every operation resolved exactly once, to OK or Timeout.
  if (r.unresolved != 0) {
    return fail(std::to_string(r.unresolved) + " op(s) never resolved");
  }
  if (r.resolved_twice != 0) {
    return fail(std::to_string(r.resolved_twice) +
                " op(s) resolved more than once");
  }
  if (r.ops_other != 0) {
    return fail(std::to_string(r.ops_other) +
                " op(s) resolved with a status outside {OK, Timeout}");
  }
  if (r.ops_ok + r.ops_timeout != r.ops_issued) {
    return fail("op accounting inconsistent: ok=" + std::to_string(r.ops_ok) +
                " + timeout=" + std::to_string(r.ops_timeout) +
                " != issued=" + std::to_string(r.ops_issued));
  }
  return ::testing::AssertionSuccess();
}

/// Causal-bookkeeping invariants for a traced run (scenario.trace == true):
/// dropped, duplicated and retried messages must still produce a correctly
/// parented, fully closed span forest with exact retry/failover accounting.
inline ::testing::AssertionResult CheckTraceInvariants(
    const FaultScenario& s, const FaultRunResult& r) {
  std::ostringstream tag;
  tag << "[scenario=" << s.name << " seed=" << s.seed
      << "] replay with: GV_SOAK_SEED=" << s.seed
      << " ./build/tests/fault_soak_test — ";
  auto fail = [&tag](const std::string& what) {
    return ::testing::AssertionFailure() << tag.str() << what;
  };

  // The ring was sized for the run; eviction would invalidate the checks.
  if (r.spans_evicted != 0) {
    return fail(std::to_string(r.spans_evicted) +
                " span(s) evicted — ring too small for the scenario");
  }
  TraceAnalyzer ta(r.spans);

  // 1. Structure: unique ids, parents present, acyclic, per-trace coherent —
  //    no orphans even when a parent's message was dropped or duplicated.
  std::string structural = ta.CheckConsistency();
  if (!structural.empty()) return fail("trace inconsistent: " + structural);

  // 2. Every span closed after the drain (flight spans of dropped messages
  //    are ended by the drop path; op spans by resolution or timeout).
  if (ta.OpenCount() != 0) {
    return fail(std::to_string(ta.OpenCount()) +
                " span(s) still open after drain");
  }

  // 3. Exactly one op root per issued operation — duplicates and retries do
  //    not double-count an operation.
  const size_t op_roots =
      ta.CountNamed("op.retrieve") + ta.CountNamed("op.update");
  if (op_roots != r.ops_issued) {
    return fail("op span count " + std::to_string(op_roots) +
                " != ops issued " + std::to_string(r.ops_issued));
  }

  // 4. Retry/failover markers reconcile with the peers' counters.
  if (ta.CountNamed("op.retry") != r.retries) {
    return fail("op.retry markers " +
                std::to_string(ta.CountNamed("op.retry")) +
                " != retries counted " + std::to_string(r.retries));
  }
  if (ta.CountNamed("op.failover") != r.failovers) {
    return fail("op.failover markers " +
                std::to_string(ta.CountNamed("op.failover")) +
                " != failovers counted " + std::to_string(r.failovers));
  }
  return ::testing::AssertionSuccess();
}

}  // namespace gridvine

#endif  // GRIDVINE_TESTS_FAULT_HARNESS_H_
