#include "pgrid/exchange.h"

#include <algorithm>

namespace gridvine {

void ExchangeProtocol::RunRandomEncounters(size_t count) {
  if (peers_.size() < 2) return;
  for (size_t i = 0; i < count; ++i) {
    size_t a = size_t(rng_.UniformInt(0, int64_t(peers_.size()) - 1));
    size_t b = size_t(rng_.UniformInt(0, int64_t(peers_.size()) - 2));
    if (b >= a) ++b;
    Encounter(peers_[a], peers_[b]);
  }
}

void ExchangeProtocol::Encounter(PGridPeer* p, PGridPeer* q) {
  const Key& pp = p->path();
  const Key& pq = q->path();
  int l = pp.CommonPrefixLength(pq);

  if (l == pp.length() && l == pq.length()) {
    // Identical paths (possibly both empty): split or replicate.
    size_t joint = p->StorageSize() + q->StorageSize();
    bool can_deepen = pp.length() < p->options().key_depth;
    if (joint > options_.max_local_keys && can_deepen) {
      Split(p, q);
    } else {
      // Become replicas and synchronize content.
      p->routing()->AddReplica(q->id());
      q->routing()->AddReplica(p->id());
      for (const auto& [k, v] : p->storage()) q->InsertLocal(k, v);
      for (const auto& [k, v] : q->storage()) p->InsertLocal(k, v);
    }
  } else if (l == pp.length()) {
    // π(p) is a proper prefix of π(q): p specializes away from q.
    Specialize(p, q);
  } else if (l == pq.length()) {
    Specialize(q, p);
  } else {
    // Paths diverge: swap routing knowledge.
    ExchangeRefs(p, q);
  }
  TransferData(p, q);
}

double ExchangeProtocol::SpecializedFraction() const {
  if (peers_.empty()) return 0.0;
  size_t specialized = 0;
  for (const PGridPeer* p : peers_) {
    if (!p->path().empty()) ++specialized;
  }
  return double(specialized) / double(peers_.size());
}

void ExchangeProtocol::Split(PGridPeer* p, PGridPeer* q) {
  int level = p->path().length();
  Key path0 = p->path().WithBit(0);
  Key path1 = q->path().WithBit(1);
  p->SetPath(path0);
  q->SetPath(path1);
  p->routing()->AddRef(level, q->id());
  q->routing()->AddRef(level, p->id());
  // Former replicas now cover only half the region each; drop the link (the
  // peers will re-pair with same-path peers in later encounters).
  p->routing()->RemoveReplica(q->id());
  q->routing()->RemoveReplica(p->id());
  ++splits_;
}

void ExchangeProtocol::Specialize(PGridPeer* shorter, PGridPeer* longer) {
  int level = shorter->path().length();
  int partner_bit = longer->path().bit(level);
  shorter->SetPath(shorter->path().WithBit(1 - partner_bit));
  shorter->routing()->AddRef(level, longer->id());
  longer->routing()->AddRef(level, shorter->id());
}

void ExchangeProtocol::ExchangeRefs(PGridPeer* p, PGridPeer* q) {
  int l = p->path().CommonPrefixLength(q->path());
  // At the divergence level each peer is (a member of) the other's
  // complementary subtree.
  p->routing()->AddRef(l, q->id());
  q->routing()->AddRef(l, p->id());
  // Gossip refs for shallower levels: a ref useful to p at level < l is
  // useful to q as well (same prefix up to l).
  for (int level = 0; level < l; ++level) {
    for (NodeId r : p->routing()->RefsAt(level)) {
      q->routing()->AddRef(level, r);
    }
    for (NodeId r : q->routing()->RefsAt(level)) {
      p->routing()->AddRef(level, r);
    }
  }
}

void ExchangeProtocol::TransferData(PGridPeer* p, PGridPeer* q) {
  auto hand_over = [](PGridPeer* from, PGridPeer* to) {
    std::vector<std::pair<Key, std::string>> moved;
    for (const auto& [k, v] : from->storage()) {
      if (!from->IsResponsibleFor(k) && to->IsResponsibleFor(k)) {
        moved.emplace_back(k, v);
      }
    }
    for (const auto& [k, v] : moved) {
      from->EraseLocal(k, v);
      to->InsertLocal(k, v);
    }
  };
  hand_over(p, q);
  hand_over(q, p);
}

}  // namespace gridvine
