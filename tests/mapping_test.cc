#include <gtest/gtest.h>

#include "mapping/mapping_graph.h"
#include "mapping/schema_mapping.h"

namespace gridvine {
namespace {

SchemaMapping MakeMapping(const std::string& id, const std::string& src,
                          const std::string& dst,
                          bool bidirectional = false) {
  SchemaMapping m(id, src, dst);
  m.set_bidirectional(bidirectional);
  EXPECT_TRUE(m.AddCorrespondence(src + "#Organism", dst + "#Organism").ok());
  return m;
}

TEST(SchemaMappingTest, CorrespondenceValidation) {
  SchemaMapping m("m1", "EMBL", "EMP");
  EXPECT_TRUE(m.AddCorrespondence("EMBL#Organism", "EMP#SystematicName").ok());
  EXPECT_TRUE(
      m.AddCorrespondence("WRONG#Organism", "EMP#Name").IsInvalidArgument());
  EXPECT_TRUE(
      m.AddCorrespondence("EMBL#X", "WRONG#Name").IsInvalidArgument());
  EXPECT_EQ(m.size(), 1u);
}

TEST(SchemaMappingTest, MapAttributeBothDirections) {
  SchemaMapping m("m1", "EMBL", "EMP");
  ASSERT_TRUE(m.AddCorrespondence("EMBL#Organism", "EMP#SystematicName").ok());
  EXPECT_EQ(*m.MapAttribute("EMBL#Organism"), "EMP#SystematicName");
  EXPECT_FALSE(m.MapAttribute("EMBL#Missing").has_value());
  EXPECT_EQ(*m.MapAttributeReverse("EMP#SystematicName"), "EMBL#Organism");
  EXPECT_FALSE(m.MapAttributeReverse("EMP#Missing").has_value());
}

TEST(SchemaMappingTest, Reversed) {
  SchemaMapping m("m1", "A", "B");
  ASSERT_TRUE(m.AddCorrespondence("A#x", "B#y").ok());
  m.set_confidence(0.8);
  SchemaMapping r = m.Reversed();
  EXPECT_EQ(r.source_schema(), "B");
  EXPECT_EQ(r.target_schema(), "A");
  EXPECT_EQ(*r.MapAttribute("B#y"), "A#x");
  EXPECT_DOUBLE_EQ(r.confidence(), 0.8);
}

TEST(SchemaMappingTest, ComposeChainsCorrespondences) {
  SchemaMapping ab("ab", "A", "B");
  ASSERT_TRUE(ab.AddCorrespondence("A#x", "B#y").ok());
  ASSERT_TRUE(ab.AddCorrespondence("A#u", "B#v").ok());
  SchemaMapping bc("bc", "B", "C");
  ASSERT_TRUE(bc.AddCorrespondence("B#y", "C#z").ok());
  ab.set_confidence(0.9);
  bc.set_confidence(0.8);

  auto ac = ab.Compose(bc);
  ASSERT_TRUE(ac.ok());
  EXPECT_EQ(ac->source_schema(), "A");
  EXPECT_EQ(ac->target_schema(), "C");
  EXPECT_EQ(*ac->MapAttribute("A#x"), "C#z");
  // A#u has no chain through bc: dropped.
  EXPECT_FALSE(ac->MapAttribute("A#u").has_value());
  EXPECT_NEAR(ac->confidence(), 0.72, 1e-9);

  // Mismatched composition fails.
  EXPECT_FALSE(bc.Compose(ab).ok());
}

TEST(SchemaMappingTest, ComposeWeakensTypeToSubsumption) {
  SchemaMapping ab("ab", "A", "B");
  ASSERT_TRUE(ab.AddCorrespondence("A#x", "B#y").ok());
  SchemaMapping bc("bc", "B", "C");
  ASSERT_TRUE(bc.AddCorrespondence("B#y", "C#z").ok());
  bc.set_type(MappingType::kSubsumption);
  auto ac = ab.Compose(bc);
  ASSERT_TRUE(ac.ok());
  EXPECT_EQ(ac->type(), MappingType::kSubsumption);
}

TEST(SchemaMappingTest, SerializeParseRoundTrip) {
  SchemaMapping m("m-7", "EMBL", "EMP");
  ASSERT_TRUE(m.AddCorrespondence("EMBL#Organism", "EMP#SystematicName").ok());
  ASSERT_TRUE(m.AddCorrespondence("EMBL#Length", "EMP#SeqLength").ok());
  m.set_type(MappingType::kSubsumption);
  m.set_provenance(MappingProvenance::kAutomatic);
  m.set_bidirectional(true);
  m.set_deprecated(true);
  m.set_confidence(0.625);

  auto parsed = SchemaMapping::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id(), "m-7");
  EXPECT_EQ(parsed->source_schema(), "EMBL");
  EXPECT_EQ(parsed->target_schema(), "EMP");
  EXPECT_EQ(parsed->type(), MappingType::kSubsumption);
  EXPECT_EQ(parsed->provenance(), MappingProvenance::kAutomatic);
  EXPECT_TRUE(parsed->bidirectional());
  EXPECT_TRUE(parsed->deprecated());
  EXPECT_DOUBLE_EQ(parsed->confidence(), 0.625);
  EXPECT_EQ(parsed->correspondences().size(), 2u);
  EXPECT_EQ(*parsed->MapAttribute("EMBL#Organism"), "EMP#SystematicName");
}

TEST(SchemaMappingTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SchemaMapping::Parse("junk").ok());
  EXPECT_FALSE(SchemaMapping::Parse("schema|A|d|x").ok());
  EXPECT_FALSE(
      SchemaMapping::Parse("mapping|id|A|B|badtype|manual|0|0|1|").ok());
  EXPECT_FALSE(
      SchemaMapping::Parse("mapping|id|A|B|equiv|manual|0|0|xyz|").ok());
  EXPECT_FALSE(
      SchemaMapping::Parse("mapping|id|A|B|equiv|manual|0|0|1|no-arrow").ok());
}

// ---- MappingGraph ----------------------------------------------------------

TEST(MappingGraphTest, DegreesAndCounts) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  g.AddMapping(MakeMapping("bc", "B", "C"));
  g.AddMapping(MakeMapping("ca", "C", "A"));
  EXPECT_EQ(g.schema_count(), 3u);
  EXPECT_EQ(g.active_mapping_count(), 3u);
  EXPECT_EQ(g.OutDegree("A"), 1);
  EXPECT_EQ(g.InDegree("A"), 1);
  g.AddMapping(MakeMapping("ab2", "A", "B"));
  EXPECT_EQ(g.OutDegree("A"), 2);
}

TEST(MappingGraphTest, BidirectionalCountsBothWays) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B", /*bidirectional=*/true));
  EXPECT_EQ(g.OutDegree("B"), 1);
  EXPECT_EQ(g.InDegree("A"), 1);
  auto from_b = g.MappingsFrom("B");
  ASSERT_EQ(from_b.size(), 1u);
  EXPECT_EQ(from_b[0].source_schema(), "B");
  EXPECT_EQ(from_b[0].target_schema(), "A");
}

TEST(MappingGraphTest, DeprecationExcludesFromEverything) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  EXPECT_TRUE(g.Deprecate("ab"));
  EXPECT_FALSE(g.Deprecate("missing"));
  EXPECT_EQ(g.active_mapping_count(), 0u);
  EXPECT_EQ(g.mapping_count(), 1u);
  EXPECT_TRUE(g.MappingsFrom("A").empty());
  EXPECT_EQ(g.OutDegree("A"), 0);
  EXPECT_FALSE(g.FindPath("A", "B", 5).ok());
}

TEST(MappingGraphTest, FindPathShortest) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  g.AddMapping(MakeMapping("bc", "B", "C"));
  g.AddMapping(MakeMapping("cd", "C", "D"));
  g.AddMapping(MakeMapping("ad", "A", "D"));
  auto path = g.FindPath("A", "D", 5);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);  // direct edge wins
  EXPECT_EQ((*path)[0].id(), "ad");

  auto path2 = g.FindPath("A", "C", 5);
  ASSERT_TRUE(path2.ok());
  EXPECT_EQ(path2->size(), 2u);

  EXPECT_TRUE(g.FindPath("A", "C", 1).status().IsNotFound());
  EXPECT_TRUE(g.FindPath("D", "A", 5).status().IsNotFound());
  auto self = g.FindPath("A", "A", 5);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->empty());
}

TEST(MappingGraphTest, FindPathUsesReversedBidirectional) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B", /*bidirectional=*/true));
  auto path = g.FindPath("B", "A", 3);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0].source_schema(), "B");
}

TEST(MappingGraphTest, CyclesThroughMapping) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  g.AddMapping(MakeMapping("bc", "B", "C"));
  g.AddMapping(MakeMapping("ca", "C", "A"));
  g.AddMapping(MakeMapping("ba", "B", "A"));
  auto cycles = g.CyclesThrough("ab", 4);
  // ab->ba (len 2) and ab->bc->ca (len 3).
  ASSERT_EQ(cycles.size(), 2u);
  for (const auto& c : cycles) {
    EXPECT_EQ(c.front(), "ab");
  }
  // Length cap: only the 2-cycle survives.
  EXPECT_EQ(g.CyclesThrough("ab", 2).size(), 1u);
  // Unknown mapping: none.
  EXPECT_TRUE(g.CyclesThrough("zz", 4).empty());
}

TEST(MappingGraphTest, SccFractionAndConnectivity) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  g.AddMapping(MakeMapping("bc", "B", "C"));
  // Chain: each schema its own SCC.
  EXPECT_NEAR(g.LargestSccFraction(), 1.0 / 3.0, 1e-9);
  EXPECT_FALSE(g.IsStronglyConnected());
  g.AddMapping(MakeMapping("ca", "C", "A"));
  EXPECT_DOUBLE_EQ(g.LargestSccFraction(), 1.0);
  EXPECT_TRUE(g.IsStronglyConnected());
}

TEST(MappingGraphTest, IsolatedSchemaBreaksConnectivity) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B", true));
  g.AddSchema("Lonely");
  EXPECT_FALSE(g.IsStronglyConnected());
  EXPECT_NEAR(g.LargestSccFraction(), 2.0 / 3.0, 1e-9);
}

TEST(MappingGraphTest, DegreeSequence) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  g.AddMapping(MakeMapping("ac", "A", "C"));
  auto seq = g.DegreeSequence();
  ASSERT_EQ(seq.size(), 3u);
  int total_in = 0, total_out = 0;
  for (auto [in, out] : seq) {
    total_in += in;
    total_out += out;
  }
  EXPECT_EQ(total_in, 2);
  EXPECT_EQ(total_out, 2);
}

TEST(MappingGraphTest, RemoveMapping) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  EXPECT_TRUE(g.RemoveMapping("ab"));
  EXPECT_FALSE(g.RemoveMapping("ab"));
  EXPECT_EQ(g.mapping_count(), 0u);
  // Schemas persist after mapping removal.
  EXPECT_EQ(g.schema_count(), 2u);
}

TEST(MappingGraphTest, GetAndContains) {
  MappingGraph g;
  g.AddMapping(MakeMapping("ab", "A", "B"));
  EXPECT_TRUE(g.Contains("ab"));
  EXPECT_FALSE(g.Contains("xy"));
  ASSERT_TRUE(g.Get("ab").ok());
  EXPECT_TRUE(g.Get("xy").status().IsNotFound());
}

}  // namespace
}  // namespace gridvine
