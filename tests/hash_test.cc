#include "common/hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gridvine {
namespace {

TEST(Fnv1aTest, KnownValuesAndDeterminism) {
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), Fnv1a64("a"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(UniformHashTest, ProducesRequestedDepth) {
  EXPECT_EQ(UniformHash("hello", 16).length(), 16);
  EXPECT_EQ(UniformHash("hello", 64).length(), 64);
  EXPECT_EQ(UniformHash("hello", 100).length(), 100);
  EXPECT_EQ(UniformHash("hello", 0).length(), 0);
}

TEST(UniformHashTest, Deterministic) {
  EXPECT_EQ(UniformHash("x", 32), UniformHash("x", 32));
}

TEST(UniformHashTest, LongerDepthExtendsPrefix) {
  Key short_key = UniformHash("foo", 16);
  Key long_key = UniformHash("foo", 64);
  EXPECT_TRUE(short_key.IsPrefixOf(long_key));
}

TEST(UniformHashTest, FirstBitRoughlyBalanced) {
  int ones = 0;
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    if (UniformHash("item-" + std::to_string(i), 8).bit(0) == 1) ++ones;
  }
  EXPECT_GT(ones, kN / 2 - 150);
  EXPECT_LT(ones, kN / 2 + 150);
}

TEST(OrderPreservingHashTest, DepthHonored) {
  OrderPreservingHash h(20);
  EXPECT_EQ(h("abc").length(), 20);
  EXPECT_EQ(h("").length(), 20);
}

TEST(OrderPreservingHashTest, Deterministic) {
  OrderPreservingHash h(24);
  EXPECT_EQ(h("EMBL#Organism"), h("EMBL#Organism"));
}

TEST(OrderPreservingHashTest, PreservesOrderOnExamples) {
  OrderPreservingHash h(32);
  // Case-insensitive lexicographic order must map to key order.
  std::vector<std::string> sorted = {"aardvark", "abacus",   "banana",
                                     "bandana",  "cucumber", "zebra"};
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_TRUE(h(sorted[i]) < h(sorted[i + 1]) || h(sorted[i]) == h(sorted[i + 1]))
        << sorted[i] << " vs " << sorted[i + 1];
  }
}

TEST(OrderPreservingHashTest, SharedPrefixStringsShareKeyPrefix) {
  OrderPreservingHash h(32);
  Key a = h("protein_alpha");
  Key b = h("protein_beta");
  // 8 shared leading characters => a substantial shared key prefix.
  EXPECT_GE(a.CommonPrefixLength(b), 8);
}

// Property: for randomly generated string pairs, order is preserved.
class OrderPreservationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderPreservationPropertyTest, RandomPairsOrdered) {
  OrderPreservingHash h(40);
  Rng rng{uint64_t(GetParam())};
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz0123456789_#";
  auto random_string = [&]() {
    size_t len = size_t(rng.UniformInt(1, 18));
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s += alphabet[size_t(rng.UniformInt(0, int64_t(alphabet.size()) - 1))];
    }
    return s;
  };
  for (int i = 0; i < 500; ++i) {
    std::string a = random_string();
    std::string b = random_string();
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    // a < b lexicographically (all-lowercase alphabet) => hash(a) <= hash(b)
    Key ka = h(a);
    Key kb = h(b);
    EXPECT_FALSE(kb < ka) << "order violated: '" << a << "' -> " << ka.bits()
                          << " vs '" << b << "' -> " << kb.bits();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderPreservationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(OrderPreservingHashTest, SkewedInputsProduceSkewedKeys) {
  // Strings sharing a long prefix land close together: that is the expected
  // skew that the adaptive trie must absorb (experiment E7).
  OrderPreservingHash h(16);
  Key a = h("EMBL#AccessionNumber");
  Key b = h("EMBL#AccessionDate");
  EXPECT_GE(a.CommonPrefixLength(b), 12);
}

}  // namespace
}  // namespace gridvine
