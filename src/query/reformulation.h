#ifndef GRIDVINE_QUERY_REFORMULATION_H_
#define GRIDVINE_QUERY_REFORMULATION_H_

#include <vector>

#include "common/result.h"
#include "mapping/mapping_graph.h"
#include "mapping/schema_mapping.h"
#include "query/query.h"

namespace gridvine {

/// Rewrites `query` from its schema into `mapping.target_schema()` by
/// substituting the predicate with its correspondent (view unfolding over a
/// GAV attribute correspondence — the operation of the paper's Figure 2).
/// Fails when the query's predicate is a variable, belongs to a different
/// schema, has no correspondence, or the mapping is deprecated.
Result<TriplePatternQuery> Reformulate(const TriplePatternQuery& query,
                                       const SchemaMapping& mapping);

/// Chains Reformulate along a path of mappings.
Result<TriplePatternQuery> ReformulateAlongPath(
    const TriplePatternQuery& query, const std::vector<SchemaMapping>& path);

/// Orients raw mappings (as fetched from a schema's key space) so each can
/// reformulate a query posed *against* `schema`:
///
///  * forward, when `schema` is the mapping's source — for subsumption
///    mappings (source ⊑ target) this *generalizes* the query: the target
///    schema may return a superset of sound answers;
///  * reversed, when `schema` is the target and the mapping is bidirectional
///    (equivalences), or when the mapping is a subsumption — specializing a
///    query from the broader to the narrower attribute is always sound.
///
/// With `sound_only`, the generalizing direction (forward subsumption) is
/// excluded, trading recall for precision.
std::vector<SchemaMapping> OrientMappingsFrom(
    const std::string& schema, const std::vector<SchemaMapping>& mappings,
    bool sound_only = false);

/// One reformulated query together with how it was derived.
struct ReformulatedQuery {
  TriplePatternQuery query;
  std::vector<std::string> mapping_ids;  ///< path of mappings applied
  std::string schema;                    ///< schema the query now targets
  double confidence = 1.0;               ///< product of mapping confidences
};

/// Expands `query` into every distinct reformulation reachable through
/// non-deprecated mappings of `graph`, visiting each schema at most once
/// (BFS, at most `max_hops` mappings deep). The original query is NOT
/// included. Branches whose predicate loses its correspondence are pruned
/// silently — exactly what happens in the live system when a mapping only
/// covers part of a schema.
std::vector<ReformulatedQuery> ExpandQuery(const TriplePatternQuery& query,
                                           const MappingGraph& graph,
                                           int max_hops);

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_REFORMULATION_H_
