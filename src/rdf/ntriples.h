#ifndef GRIDVINE_RDF_NTRIPLES_H_
#define GRIDVINE_RDF_NTRIPLES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace gridvine {

/// W3C N-Triples-style serialization (the natural interchange format for
/// the RDF data GridVine shares — e.g. exports from a bioinformatic
/// repository):
///
///   <subject> <predicate> "literal object" .
///   <subject> <predicate> <object-uri> .
///
/// Literals support the \" \\ \n \t escapes. '#' starts a line comment;
/// blank lines are skipped. Datatype/language annotations are not supported
/// (GridVine's mediation layer stores plain literals).

/// One triple per line; inverse of ParseNTriplesLine.
std::string ToNTriplesLine(const Triple& triple);

Result<Triple> ParseNTriplesLine(const std::string& line);

/// Whole-document forms.
std::string ToNTriples(const std::vector<Triple>& triples);

/// Parses a document; fails on the first malformed line (the error message
/// carries the 1-based line number).
Result<std::vector<Triple>> ParseNTriples(const std::string& text);

}  // namespace gridvine

#endif  // GRIDVINE_RDF_NTRIPLES_H_
