// Experiment E4 — the Section 4 demonstration storyline:
//
//   "In a sparse network of mappings, few results get returned initially
//    (low recall), while more and more results are retrieved as mappings get
//    created automatically to ensure the global interoperability of the
//    system."
//
// A live network shares 10 heterogeneous schemas with no mappings. Each
// self-organization round publishes degrees, reads the connectivity
// indicator, creates mappings while ci < 0 (or schemas are isolated), and
// assesses/deprecates. After each round we measure mean recall over a fixed
// query mix (reformulation enabled). Recall must climb from near-zero toward
// the giant-component regime.
//
//   $ ./bench/bench_recall_evolution

#include <cstdio>
#include <cstdlib>
#include <set>

#include "bench_json.h"
#include "selforg_scale.h"
#include "selforg/self_organizer.h"
#include "workload/bio_workload.h"

using namespace gridvine;

namespace {

struct RecallMeasurement {
  double mean_recall = 0;
  double mean_results = 0;
};

RecallMeasurement MeasureRecall(
    GridVineNetwork& net, const BioWorkload& workload,
    const std::vector<BioWorkload::GeneratedQuery>& queries) {
  RecallMeasurement out;
  for (size_t i = 0; i < queries.size(); ++i) {
    GridVinePeer::QueryOptions opts;
    opts.reformulate = true;
    opts.mode = ReformulationMode::kIterative;
    opts.max_hops = int(workload.schemas().size());
    opts.timeout = 15.0;
    size_t issuer = i % net.size();
    auto res = net.SearchFor(issuer, queries[i].query, opts);
    std::set<std::string> found;
    for (const auto& item : res.items) found.insert(item.value.value());
    out.mean_recall += BioWorkload::Recall(queries[i], found);
    out.mean_results += double(found.size());
  }
  out.mean_recall /= double(queries.size());
  out.mean_results /= double(queries.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_recall_evolution");
  GridVineNetwork::Options net_options;
  net_options.num_peers = 48;
  net_options.key_depth = 14;
  net_options.seed = 404;
  net_options.latency = GridVineNetwork::LatencyKind::kConstant;
  net_options.latency_param = 0.01;
  net_options.peer.query_timeout = 6.0;
  GridVineNetwork net(net_options);

  BioWorkload::Options wl;
  wl.num_schemas = 10;
  wl.num_entities = 200;
  wl.entities_per_schema = 50;
  wl.seed = 31;
  BioWorkload workload(wl);

  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    if (!net.InsertSchema(s, workload.schemas()[s]).ok()) return 1;
    if (!net.InsertTriples(s, workload.TriplesFor(s)).ok()) return 1;
  }

  SelfOrganizer::Options org;
  org.domain = workload.options().domain;
  org.creations_per_round = 2;
  org.seed = 5;
  SelfOrganizer organizer(&net, org);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    organizer.RegisterSchemaOwner(workload.schemas()[s].name(), s);
  }

  // Fixed query mix: organism queries from every schema (the concept every
  // schema realizes, so full interoperability means recall ~1).
  Rng qrng(77);
  std::vector<BioWorkload::GeneratedQuery> queries;
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    queries.push_back(workload.MakeQuery(s, &qrng, "organism"));
  }

  std::printf("E4: recall evolution under self-organizing mappings "
              "(paper Section 4)\n");
  std::printf("  peers=%zu schemas=%zu triples=%zu queries/round=%zu\n\n",
              net.size(), workload.schemas().size(), workload.TotalTriples(),
              queries.size());
  std::printf("  %-6s %9s %7s %9s %11s %8s %8s\n", "round", "ci", "SCC%",
              "created", "deprecated", "active", "recall");

  auto initial = MeasureRecall(net, workload, queries);
  std::printf("  %-6d %9s %7s %9s %11s %8d %7.0f%%\n", 0, "-", "-", "-", "-",
              0, initial.mean_recall * 100);
  json.Add("round_0", {{"recall", initial.mean_recall}});

  int round = 1;
  for (; round <= 10; ++round) {
    auto report = organizer.RunRound();
    auto m = MeasureRecall(net, workload, queries);
    std::printf("  %-6d %9.3f %6.0f%% %9zu %11zu %8zu %7.0f%%\n", round,
                report.ci_after, report.scc_fraction_after * 100,
                report.mappings_created, report.mappings_deprecated,
                report.active_mappings, m.mean_recall * 100);
    if (report.scc_fraction_after >= 1.0 && m.mean_recall > 0.8) break;
  }

  // Phase 2 — the paper's perturbation: "Removing some of the existing
  // mappings fosters the creation of additional mappings". Deprecate half
  // of the active mappings and watch the organizer rebuild interoperability.
  {
    MappingGraph graph = organizer.BuildGraphView();
    size_t removed = 0;
    size_t target = graph.active_mapping_count() / 2;
    for (const auto& schema : graph.Schemas()) {
      for (const auto& m : graph.MappingsFrom(schema)) {
        if (removed >= target) break;
        auto orig = graph.Get(m.id());
        if (!orig.ok() || orig->deprecated()) continue;
        SchemaMapping dep = *orig;
        dep.set_deprecated(true);
        if (net.UpsertMapping(organizer.OwnerOf(dep.source_schema()), dep)
                .ok()) {
          graph.Deprecate(m.id());
          ++removed;
        }
      }
    }
    auto m = MeasureRecall(net, workload, queries);
    std::printf("\n  -- deprecated %zu mappings (perturbation) -- recall "
                "drops to %.0f%%\n\n",
                removed, m.mean_recall * 100);
  }
  ++round;
  for (int r2 = 1; r2 <= 8; ++r2, ++round) {
    auto report = organizer.RunRound();
    auto m = MeasureRecall(net, workload, queries);
    std::printf("  %-6d %9.3f %6.0f%% %9zu %11zu %8zu %7.0f%%\n", round,
                report.ci_after, report.scc_fraction_after * 100,
                report.mappings_created, report.mappings_deprecated,
                report.active_mappings, m.mean_recall * 100);
    if (report.scc_fraction_after >= 1.0 && m.mean_recall > 0.8) break;
  }
  {
    auto final_m = MeasureRecall(net, workload, queries);
    json.Add("final", {{"recall", final_m.mean_recall},
                       {"rounds", double(round)}});
  }
  std::printf("\n  expectation: recall rises from its single-schema floor as "
              "ci crosses 0; after the\n  perturbation it dips and recovers "
              "as replacement mappings are created automatically.\n");

  // Phase 3 — schema evolution at scale (agreement maintenance): on a
  // 10k-peer network one schema's attributes all move to different
  // vocabulary variants mid-run; continued rounds must deprecate the
  // dangling mappings, re-derive replacements and recover recall to >= 95%
  // of the pre-change level. Quick mode shrinks the network (CI smoke).
  {
    const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
    const size_t peers = quick ? 256 : 10240;
    std::printf("\n  -- schema evolution at scale (%zu peers) --\n", peers);
    auto r = gridvine::bench::RunEvolutionAtScale(peers, /*seed=*/404);
    std::printf("  converged in %d rounds; recall %.0f%% -> %.0f%% (evolution)"
                " -> %.0f%% after %d repair rounds\n",
                r.convergence_rounds, r.recall_pre * 100, r.recall_post * 100,
                r.recall_final * 100, r.recovery_rounds);
    json.Add("evolution_at_scale",
             {{"peers", double(r.peers)},
              {"convergence_rounds", double(r.convergence_rounds)},
              {"recall_pre", r.recall_pre},
              {"recall_post_evolution", r.recall_post},
              {"recall_final", r.recall_final},
              {"recovery_ratio",
               r.recall_pre > 0 ? r.recall_final / r.recall_pre : 0.0},
              {"recovery_rounds", double(r.recovery_rounds)}});
  }
  json.Finish();
  return 0;
}
