#ifndef GRIDVINE_COMMON_INTERNER_H_
#define GRIDVINE_COMMON_INTERNER_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/mem_estimate.h"

namespace gridvine {

/// Process-wide refcounted intern pool for immutable shared values, keyed by
/// a canonical string (the value's serialized form). All holders of the same
/// logical value share one heap object: a simulation where 100k peers each
/// register the same dozen schemas stores a dozen Schema objects, not 1.2M
/// copies. Mutation happens by replacing a holder's pointer with a newly
/// interned variant — never by writing through the shared object.
///
/// Thread-safe (lookups take a shared lock): peers on different simulator
/// shards may intern concurrently. The pool keeps entries alive even when no
/// holder remains; call Prune() to drop unreferenced ones.
template <typename T>
class InternPool {
 public:
  /// The pool's object for `key`, creating it from `value` if absent.
  std::shared_ptr<const T> Intern(const std::string& key, const T& value) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = pool_.find(key);
      if (it != pool_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = pool_.try_emplace(key);
    if (inserted) it->second = std::make_shared<const T>(value);
    return it->second;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pool_.size();
  }

  /// Drops entries referenced only by the pool itself; returns how many.
  size_t Prune() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    size_t dropped = 0;
    for (auto it = pool_.begin(); it != pool_.end();) {
      if (it->second.use_count() == 1) {
        it = pool_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Structural bytes (keys, map nodes, objects + control blocks); the
  /// objects' own heap (their strings) is not traversed.
  size_t MemoryFootprint() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    size_t bytes = HashMapBytes(pool_);
    for (const auto& [key, value] : pool_) {
      (void)value;
      bytes += StringHeapBytes(key) + sizeof(T) + 4 * sizeof(void*);
    }
    return bytes;
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const T>> pool_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_INTERNER_H_
