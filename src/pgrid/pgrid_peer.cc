#include "pgrid/pgrid_peer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/mem_estimate.h"
#include "common/metrics.h"

namespace gridvine {

PGridPeer::PGridPeer(Simulator* sim, Network* network, Rng rng,
                     Options options)
    : sim_(sim),
      network_(network),
      rng_(rng),
      options_(options),
      id_(kInvalidNode),
      routing_(options.max_refs_per_level) {
  id_ = network_->AddNode(this);
}

Tracer* PGridPeer::LiveTracer() const {
  Tracer* tr = network_->tracer();
  return (tr != nullptr && tr->enabled()) ? tr : nullptr;
}

TraceCtx PGridPeer::StartOpSpan(std::string_view name) {
  Tracer* tr = LiveTracer();
  if (tr == nullptr) return TraceCtx{};
  return tr->StartSpan(name, network_->ambient_ctx());
}

void PGridPeer::EndOpSpan(TraceCtx span, bool ok, int hops, int attempts) {
  Tracer* tr = LiveTracer();
  if (tr == nullptr || !span.valid()) return;
  if (!ok) tr->Annotate(span, "error", 1.0);
  if (hops >= 0) tr->Annotate(span, "hops", double(hops));
  tr->Annotate(span, "attempts", double(attempts));
  tr->EndSpan(span);
}

bool PGridPeer::IsResponsibleFor(const Key& key) const {
  const Key& p = routing_.path();
  return p.IsPrefixOf(key) || key.IsPrefixOf(p);
}

std::vector<std::string> PGridPeer::LocalLookup(const Key& key) const {
  std::vector<std::string> out;
  for (auto it = storage_.lower_bound(key); it != storage_.end(); ++it) {
    if (!key.IsPrefixOf(it->first)) break;
    out.push_back(it->second);
  }
  return out;
}

void PGridPeer::InsertLocal(const Key& key, const std::string& value) {
  // Idempotent insert: skip an identical (key, value) pair.
  if (!present_.emplace(key.bits(), value).second) return;
  storage_.emplace(key, value);
  if (storage_listener_) storage_listener_(UpdateOp::kInsert, key, value);
}

bool PGridPeer::EraseLocal(const Key& key, const std::string& value) {
  if (present_.erase({key.bits(), value}) == 0) return false;
  auto range = storage_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == value) {
      storage_.erase(it);
      break;
    }
  }
  if (storage_listener_) storage_listener_(UpdateOp::kDelete, key, value);
  return true;
}

std::vector<std::pair<Key, std::string>> PGridPeer::EvictForeignEntries() {
  std::vector<std::pair<Key, std::string>> evicted;
  for (auto it = storage_.begin(); it != storage_.end();) {
    if (!IsResponsibleFor(it->first)) {
      evicted.emplace_back(it->first, it->second);
      present_.erase({it->first.bits(), it->second});
      if (storage_listener_) {
        storage_listener_(UpdateOp::kDelete, it->first, it->second);
      }
      it = storage_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

void PGridPeer::ApplyLocal(UpdateOp op, const Key& key,
                           const std::string& value) {
  if (op == UpdateOp::kInsert) {
    InsertLocal(key, value);
  } else {
    EraseLocal(key, value);
  }
}

void PGridPeer::ReplicateToSiblings(UpdateOp op, const Key& key,
                                    const std::string& value) {
  if (!options_.replicate_updates) return;
  for (NodeId replica : routing_.replicas()) {
    auto msg = std::make_shared<ReplicaUpdate>();
    msg->key = key;
    msg->value = value;
    msg->op = op;
    network_->Send(id_, replica, msg);
  }
}

// --- Client-side operations -------------------------------------------------

void PGridPeer::Retrieve(const Key& key, RetrieveCallback cb) {
  ++counters_.retrieves_issued;
  if (IsResponsibleFor(key)) {
    ++counters_.local_answers;
    if (Tracer* tr = LiveTracer()) {
      tr->Annotate(tr->Instant("op.retrieve", network_->ambient_ctx()),
                   "local", 1.0);
    }
    LookupResult res;
    res.values = LocalLookup(key);
    res.responder = id_;
    cb(std::move(res));
    return;
  }
  uint64_t rid = NextRequestId();
  Pending p;
  p.kind = Pending::Kind::kRetrieve;
  p.retrieve_cb = std::move(cb);
  p.key = key;
  p.started = sim_->Now();
  p.span = StartOpSpan("op.retrieve");
  pending_.emplace(rid, std::move(p));
  SendRetrieveAttempt(rid);
}

void PGridPeer::SendRetrieveAttempt(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.attempts;
  // Avoid the first hops of ALL failed attempts while alternatives exist:
  // consecutive attempts explore disjoint routes, and thereby different
  // members of the destination's replica set σ(p), without ever re-picking
  // a hop this flight already timed out on.
  auto next = routing_.NextHopAvoiding(p.key, &rng_, p.tried_hops.data(),
                                       p.tried_hops.size());
  if (!next.has_value()) {
    // No usable ref right now (all evicted under churn). The attempt is
    // still spent: wait out the backoff — maintenance may refill the level —
    // and resolve as Timeout once the budget is gone.
    ++counters_.routing_dead_ends;
    if (options_.retry.Exhausted(p.attempts)) {
      FailPending(request_id, RetryPolicy::TimeoutStatus(p.attempts));
    } else {
      ArmTimeout(request_id);
    }
    return;
  }
  p.tried_hops.push_back(*next);
  auto req = std::make_shared<RetrieveRequest>();
  req->request_id = request_id;
  req->key = p.key;
  req->origin = id_;
  req->hops = 1;
  req->trace_ctx = p.span;  // every attempt's hops parent under the op
  network_->Send(id_, *next, req);
  ArmTimeout(request_id);
}

void PGridPeer::Update(const Key& key, const std::string& value,
                       UpdateCallback cb) {
  ++counters_.updates_issued;
  if (IsResponsibleFor(key)) {
    ++counters_.local_answers;
    if (Tracer* tr = LiveTracer()) {
      tr->Annotate(tr->Instant("op.update", network_->ambient_ctx()),
                   "local", 1.0);
    }
    ApplyLocal(UpdateOp::kInsert, key, value);
    ReplicateToSiblings(UpdateOp::kInsert, key, value);
    UpdateOutcome out;
    out.responder = id_;
    cb(std::move(out));
    return;
  }
  uint64_t rid = NextRequestId();
  Pending p;
  p.kind = Pending::Kind::kUpdate;
  p.update_cb = std::move(cb);
  p.key = key;
  p.value = value;
  p.op = UpdateOp::kInsert;
  p.started = sim_->Now();
  p.span = StartOpSpan("op.update");
  pending_.emplace(rid, std::move(p));
  SendUpdateAttempt(rid);
}

void PGridPeer::Remove(const Key& key, const std::string& value,
                       UpdateCallback cb) {
  ++counters_.updates_issued;
  if (IsResponsibleFor(key)) {
    ++counters_.local_answers;
    if (Tracer* tr = LiveTracer()) {
      tr->Annotate(tr->Instant("op.remove", network_->ambient_ctx()),
                   "local", 1.0);
    }
    ApplyLocal(UpdateOp::kDelete, key, value);
    ReplicateToSiblings(UpdateOp::kDelete, key, value);
    UpdateOutcome out;
    out.responder = id_;
    cb(std::move(out));
    return;
  }
  uint64_t rid = NextRequestId();
  Pending p;
  p.kind = Pending::Kind::kUpdate;
  p.update_cb = std::move(cb);
  p.key = key;
  p.value = value;
  p.op = UpdateOp::kDelete;
  p.started = sim_->Now();
  p.span = StartOpSpan("op.remove");
  pending_.emplace(rid, std::move(p));
  SendUpdateAttempt(rid);
}

void PGridPeer::SendUpdateAttempt(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.attempts;
  auto next = routing_.NextHopAvoiding(p.key, &rng_, p.tried_hops.data(),
                                       p.tried_hops.size());
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    if (options_.retry.Exhausted(p.attempts)) {
      FailPending(request_id, RetryPolicy::TimeoutStatus(p.attempts));
    } else {
      ArmTimeout(request_id);
    }
    return;
  }
  p.tried_hops.push_back(*next);
  auto req = std::make_shared<UpdateRequest>();
  req->request_id = request_id;
  req->key = p.key;
  req->value = p.value;
  req->op = p.op;
  req->origin = id_;
  req->hops = 1;
  req->trace_ctx = p.span;
  network_->Send(id_, *next, req);
  ArmTimeout(request_id);
}

void PGridPeer::ArmTimeout(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  int attempt_at_arm = it->second.attempts;
  // Capped exponential backoff with jitter from the peer's seeded stream.
  SimTime timeout = options_.retry.TimeoutFor(attempt_at_arm, &rng_);
  // Captured for the retroactive backoff span: now - timeout at the fire is
  // off by floating-point rounding (the interval could start before its
  // parent span).
  SimTime armed_at = sim_->Now();
  sim_->Schedule(timeout, [this, request_id, attempt_at_arm, armed_at] {
    auto it2 = pending_.find(request_id);
    // Already answered, or a newer attempt owns the timeout.
    if (it2 == pending_.end() || it2->second.attempts != attempt_at_arm) return;
    ++counters_.timeouts;
    if (options_.retry.Exhausted(it2->second.attempts)) {
      FailPending(request_id, RetryPolicy::TimeoutStatus(attempt_at_arm));
      return;
    }
    ++counters_.retries;
    if (Tracer* tr = LiveTracer()) {
      // Timer context, no ambient delivery: the marker must be parented
      // explicitly on the op span.
      if (it2->second.span.valid()) {
        tr->Instant("op.retry", it2->second.span);
        // Retroactive: the timeout window just waited through is backoff
        // time on the op's critical path.
        tr->Interval("op.backoff", it2->second.span, armed_at, sim_->Now());
      }
    }
    if (it2->second.kind == Pending::Kind::kRetrieve) {
      SendRetrieveAttempt(request_id);
    } else {
      SendUpdateAttempt(request_id);
    }
  });
}

void PGridPeer::FailPending(uint64_t request_id, Status status) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  EndOpSpan(p.span, /*ok=*/false, /*hops=*/-1, p.attempts);
  if (p.kind == Pending::Kind::kRetrieve) {
    p.retrieve_cb(std::move(status));
  } else {
    p.update_cb(std::move(status));
  }
}

bool PGridPeer::FailoverPending(uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end() || options_.retry.Exhausted(it->second.attempts)) {
    return false;
  }
  ++counters_.failovers;
  if (Tracer* tr = LiveTracer()) {
    if (it->second.span.valid()) tr->Instant("op.failover", it->second.span);
  }
  if (it->second.kind == Pending::Kind::kRetrieve) {
    SendRetrieveAttempt(request_id);
  } else {
    SendUpdateAttempt(request_id);
  }
  return true;
}

// --- Extension interface ------------------------------------------------------

std::optional<NodeId> PGridPeer::PayloadNextHop(const Key& key,
                                                NodeId exclude) {
  if (!options_.load_aware) return routing_.NextHop(key, &rng_, exclude);
  auto next = routing_.NextHopLeastLoaded(
      key,
      [this](NodeId id) {
        auto it = send_loads_.find(id);
        return it == send_loads_.end() ? uint64_t{0} : it->second;
      },
      exclude);
  if (next.has_value()) ++send_loads_[*next];
  return next;
}

void PGridPeer::Route(const Key& key,
                      std::shared_ptr<const MessageBody> payload) {
  if (IsResponsibleFor(key)) {
    ++counters_.extension_deliveries;
    if (extension_handler_) extension_handler_(id_, std::move(payload), 0);
    return;
  }
  auto env = std::make_shared<RoutedEnvelope>();
  env->key = key;
  env->origin = id_;
  env->hops = 1;
  // Send() sees only the envelope, so the payload's causal ctx must be
  // lifted onto it for the flight span to parent correctly.
  env->trace_ctx = payload->trace_ctx;
  env->payload = std::move(payload);
  auto next = PayloadNextHop(key);
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    return;  // fire-and-forget: the payload protocol's timeout handles loss
  }
  network_->Send(id_, *next, env);
}

void PGridPeer::SendDirect(NodeId to,
                           std::shared_ptr<const MessageBody> payload) {
  if (to == id_) {
    ++counters_.extension_deliveries;
    if (extension_handler_) extension_handler_(id_, std::move(payload), -1);
    return;
  }
  auto env = std::make_shared<DirectEnvelope>();
  env->trace_ctx = payload->trace_ctx;
  env->payload = std::move(payload);
  network_->Send(id_, to, env);
}

void PGridPeer::RouteRange(const Key& prefix,
                           std::shared_ptr<const MessageBody> payload) {
  RangeEnvelope env;
  env.prefix = prefix;
  env.min_level = prefix.length();
  env.origin = id_;
  env.hops = 0;
  env.trace_ctx = payload->trace_ctx;
  env.payload = std::move(payload);
  if (IsResponsibleFor(prefix)) {
    // Already inside (or covering) the subtree: shower from here.
    ShowerRange(env);
    return;
  }
  auto next = PayloadNextHop(prefix);
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    return;
  }
  auto msg = std::make_shared<RangeEnvelope>(env);
  msg->hops = 1;
  network_->Send(id_, *next, msg);
}

void PGridPeer::ShowerRange(const RangeEnvelope& env) {
  // Deliver locally: this peer owns part (or all) of the subtree.
  ++counters_.extension_deliveries;
  if (extension_handler_) extension_handler_(env.origin, env.payload, env.hops);
  // Split: each ref at level l >= min_level covers the complementary
  // subtree at l, which lies entirely inside `prefix`; handing it
  // min_level = l + 1 partitions the remainder without overlap.
  for (int level = std::max(env.min_level, env.prefix.length());
       level < routing_.path().length(); ++level) {
    const auto& refs = routing_.RefsAt(level);
    if (refs.empty()) continue;  // region unreachable (no live ref known)
    auto msg = std::make_shared<RangeEnvelope>(env);
    msg->min_level = level + 1;
    msg->hops = env.hops + 1;
    NodeId target;
    if (options_.load_aware) {
      target = refs[0];
      uint64_t best = 0;
      for (size_t i = 0; i < refs.size(); ++i) {
        auto lit = send_loads_.find(refs[i]);
        uint64_t w = lit == send_loads_.end() ? 0 : lit->second;
        if (i == 0 || w < best) {
          target = refs[i];
          best = w;
        }
      }
      ++send_loads_[target];
    } else {
      target = rng_.PickOne(refs);
    }
    network_->Send(id_, target, msg);
  }
}

void PGridPeer::HandleRangeEnvelope(NodeId from, const RangeEnvelope& env) {
  const Key& path = routing_.path();
  bool in_region = env.prefix.IsPrefixOf(path) || path.IsPrefixOf(env.prefix);
  if (in_region) {
    ShowerRange(env);
    return;
  }
  if (env.hops >= options_.max_hops) return;
  auto next = PayloadNextHop(env.prefix, /*exclude=*/from);
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    return;
  }
  ++counters_.forwards;
  auto fwd = std::make_shared<RangeEnvelope>(env);
  fwd->hops = env.hops + 1;
  network_->Send(id_, *next, fwd);
}

void PGridPeer::HandleRoutedEnvelope(NodeId from, const RoutedEnvelope& env) {
  if (IsResponsibleFor(env.key)) {
    ++counters_.extension_deliveries;
    if (extension_handler_) extension_handler_(env.origin, env.payload, env.hops);
    return;
  }
  if (env.hops >= options_.max_hops) return;
  auto next = PayloadNextHop(env.key, /*exclude=*/from);
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    return;
  }
  ++counters_.forwards;
  auto fwd = std::make_shared<RoutedEnvelope>(env);
  fwd->hops = env.hops + 1;
  network_->Send(id_, *next, fwd);
}

// --- Message handling --------------------------------------------------------

void PGridPeer::OnMessage(NodeId from, std::shared_ptr<const MessageBody> body) {
  if (auto* renv = dynamic_cast<const RoutedEnvelope*>(body.get())) {
    HandleRoutedEnvelope(from, *renv);
  } else if (auto* range = dynamic_cast<const RangeEnvelope*>(body.get())) {
    HandleRangeEnvelope(from, *range);
  } else if (auto* denv = dynamic_cast<const DirectEnvelope*>(body.get())) {
    ++counters_.extension_deliveries;
    if (extension_handler_) extension_handler_(from, denv->payload, -1);
  } else if (auto* rreq = dynamic_cast<const RetrieveRequest*>(body.get())) {
    HandleRetrieveRequest(from, *rreq);
  } else if (auto* rresp = dynamic_cast<const RetrieveResponse*>(body.get())) {
    HandleRetrieveResponse(*rresp);
  } else if (auto* ureq = dynamic_cast<const UpdateRequest*>(body.get())) {
    HandleUpdateRequest(from, *ureq);
  } else if (auto* uack = dynamic_cast<const UpdateAck*>(body.get())) {
    HandleUpdateAck(*uack);
  } else if (auto* rupd = dynamic_cast<const ReplicaUpdate*>(body.get())) {
    HandleReplicaUpdate(*rupd);
  } else if (auto* ping = dynamic_cast<const PingRequest*>(body.get())) {
    auto pong = std::make_shared<PingResponse>();
    pong->nonce = ping->nonce;
    pong->path = routing_.path();
    pong->responder = id_;
    network_->Send(id_, ping->origin, pong);
  } else if (auto* rreq2 = dynamic_cast<const RefsRequest*>(body.get())) {
    auto resp = std::make_shared<RefsResponse>();
    resp->nonce = rreq2->nonce;
    resp->responder_path = routing_.path();
    resp->responder = id_;
    for (int level = 0; level < routing_.levels(); ++level) {
      for (NodeId ref : routing_.RefsAt(level)) {
        resp->candidates.push_back(ref);
      }
    }
    for (NodeId rep : routing_.replicas()) resp->candidates.push_back(rep);
    network_->Send(id_, rreq2->origin, resp);
  } else {
    for (auto& handler : protocol_handlers_) {
      if (handler(from, *body)) return;
    }
    GV_CLOG("pgrid", Warning) << "peer " << id_ << ": unknown message "
                              << body->TypeTag().name();
  }
}

void PGridPeer::HandleRetrieveRequest(NodeId from, const RetrieveRequest& req) {
  if (IsResponsibleFor(req.key)) {
    auto resp = std::make_shared<RetrieveResponse>();
    resp->request_id = req.request_id;
    resp->key = req.key;
    resp->values = LocalLookup(req.key);
    resp->hops = req.hops;
    resp->responder = id_;
    network_->Send(id_, req.origin, resp);
    return;
  }
  if (req.hops >= options_.max_hops) {
    auto resp = std::make_shared<RetrieveResponse>();
    resp->request_id = req.request_id;
    resp->key = req.key;
    resp->status = Status::NetworkError("hop limit exceeded");
    resp->hops = req.hops;
    resp->responder = id_;
    network_->Send(id_, req.origin, resp);
    return;
  }
  auto next = routing_.NextHop(req.key, &rng_, /*exclude=*/from);
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    auto resp = std::make_shared<RetrieveResponse>();
    resp->request_id = req.request_id;
    resp->key = req.key;
    resp->status = Status::Unavailable("routing dead end at peer " +
                                       std::to_string(id_));
    resp->hops = req.hops;
    resp->responder = id_;
    network_->Send(id_, req.origin, resp);
    return;
  }
  ++counters_.forwards;
  auto fwd = std::make_shared<RetrieveRequest>(req);
  fwd->hops = req.hops + 1;
  network_->Send(id_, *next, fwd);
}

void PGridPeer::HandleRetrieveResponse(const RetrieveResponse& resp) {
  auto it = pending_.find(resp.request_id);
  if (it == pending_.end()) return;  // late duplicate after timeout/answer
  if (!resp.status.ok()) {
    // Negative answer (dead end / hop limit somewhere along the route):
    // fail over to an alternate route while the budget lasts.
    if (FailoverPending(resp.request_id)) return;
    FailPending(resp.request_id,
                RetryPolicy::TimeoutStatus(it->second.attempts));
    return;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  EndOpSpan(p.span, /*ok=*/true, resp.hops, p.attempts);
  LookupResult res;
  res.values = resp.values;
  res.hops = resp.hops;
  res.rtt = sim_->Now() - p.started;
  res.responder = resp.responder;
  p.retrieve_cb(std::move(res));
}

void PGridPeer::HandleUpdateRequest(NodeId from, const UpdateRequest& req) {
  if (IsResponsibleFor(req.key)) {
    ApplyLocal(req.op, req.key, req.value);
    ReplicateToSiblings(req.op, req.key, req.value);
    auto ack = std::make_shared<UpdateAck>();
    ack->request_id = req.request_id;
    ack->hops = req.hops;
    ack->responder = id_;
    network_->Send(id_, req.origin, ack);
    return;
  }
  if (req.hops >= options_.max_hops) {
    auto ack = std::make_shared<UpdateAck>();
    ack->request_id = req.request_id;
    ack->status = Status::NetworkError("hop limit exceeded");
    ack->hops = req.hops;
    ack->responder = id_;
    network_->Send(id_, req.origin, ack);
    return;
  }
  auto next = routing_.NextHop(req.key, &rng_, /*exclude=*/from);
  if (!next.has_value()) {
    ++counters_.routing_dead_ends;
    auto ack = std::make_shared<UpdateAck>();
    ack->request_id = req.request_id;
    ack->status = Status::Unavailable("routing dead end at peer " +
                                      std::to_string(id_));
    ack->hops = req.hops;
    ack->responder = id_;
    network_->Send(id_, req.origin, ack);
    return;
  }
  ++counters_.forwards;
  auto fwd = std::make_shared<UpdateRequest>(req);
  fwd->hops = req.hops + 1;
  network_->Send(id_, *next, fwd);
}

void PGridPeer::HandleUpdateAck(const UpdateAck& ack) {
  auto it = pending_.find(ack.request_id);
  if (it == pending_.end()) return;
  if (!ack.status.ok()) {
    if (FailoverPending(ack.request_id)) return;
    FailPending(ack.request_id, RetryPolicy::TimeoutStatus(it->second.attempts));
    return;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  EndOpSpan(p.span, /*ok=*/true, ack.hops, p.attempts);
  UpdateOutcome out;
  out.hops = ack.hops;
  out.rtt = sim_->Now() - p.started;
  out.responder = ack.responder;
  p.update_cb(std::move(out));
}

void PGridPeer::PublishMetrics(MetricsRegistry* metrics) const {
  metrics->Counter("pgrid.retrieves_issued") += counters_.retrieves_issued;
  metrics->Counter("pgrid.updates_issued") += counters_.updates_issued;
  metrics->Counter("pgrid.forwards") += counters_.forwards;
  metrics->Counter("pgrid.local_answers") += counters_.local_answers;
  metrics->Counter("pgrid.routing_dead_ends") += counters_.routing_dead_ends;
  metrics->Counter("pgrid.timeouts") += counters_.timeouts;
  metrics->Counter("pgrid.retries") += counters_.retries;
  metrics->Counter("pgrid.failovers") += counters_.failovers;
  metrics->Counter("pgrid.extension_deliveries") +=
      counters_.extension_deliveries;
  metrics->Counter("pgrid.storage_entries") += storage_.size();
  metrics->Gauge("pgrid.pending_requests") += double(pending_.size());
}

void PGridPeer::HandleReplicaUpdate(const ReplicaUpdate& upd) {
  ApplyLocal(upd.op, upd.key, upd.value);
}

size_t PGridPeer::MemoryFootprint() const {
  size_t bytes = sizeof(*this) + routing_.MemoryFootprint();
  bytes += RbTreeBytes(storage_.size(),
                       sizeof(std::multimap<Key, std::string>::value_type));
  for (const auto& [key, value] : storage_) {
    bytes += StringHeapBytes(key.bits()) + StringHeapBytes(value);
  }
  bytes += RbTreeBytes(present_.size(), sizeof(*present_.begin()));
  for (const auto& [k, v] : present_) {
    bytes += StringHeapBytes(k) + StringHeapBytes(v);
  }
  bytes += HashMapBytes(pending_);
  for (const auto& [rid, p] : pending_) {
    bytes += p.tried_hops.capacity() * sizeof(NodeId);
  }
  bytes += HashMapBytes(send_loads_);
  bytes += protocol_handlers_.capacity() * sizeof(ProtocolHandler);
  return bytes;
}

}  // namespace gridvine
