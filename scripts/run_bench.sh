#!/usr/bin/env bash
# Runs every benchmark binary with JSON reporting and writes
# BENCH_<name>.json at the repo root. Human-readable tables still go to
# stdout; the JSON files are the machine-readable record checked into the
# repo for before/after comparisons.
#
#   $ scripts/run_bench.sh [--quick] [build-dir] [filter]
#
# build-dir defaults to ./build. filter is a substring: only benches whose
# name contains it are run (e.g. `scripts/run_bench.sh build store` runs
# only bench_store_micro).
#
# --quick is the CI smoke mode: it sets GV_BENCH_QUICK=1 (the handwritten
# bench drivers shrink their iteration counts), caps the google-benchmark
# binaries at minimal run time, and writes the JSON into a temporary
# directory so the checked-in full-run BENCH_*.json records are not
# clobbered by throwaway numbers.
set -euo pipefail

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
filter="${2:-}"

out_root="$repo_root"
extra_args=()
if [[ "$quick" -eq 1 ]]; then
  export GV_BENCH_QUICK=1
  out_root="$(mktemp -d)"
  extra_args+=(--benchmark_min_time=0.01)
  echo "quick mode: JSON goes to $out_root (repo records untouched)"
fi

bench_dir="$build_dir/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found; build first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

ran=0
for bin in "$bench_dir"/bench_*; do
  [[ -x "$bin" && ! -d "$bin" ]] || continue
  name="$(basename "$bin")"
  [[ -z "$filter" || "$name" == *"$filter"* ]] || continue
  # Strip the bench_ prefix for the artifact name: BENCH_store_micro.json.
  out="$out_root/BENCH_${name#bench_}.json"
  echo "== $name -> $(basename "$out")"
  "$bin" --benchmark_out="$out" --benchmark_out_format=json "${extra_args[@]}"
  ran=$((ran + 1))
done

if [[ "$ran" -eq 0 ]]; then
  echo "error: no benchmarks matched filter '$filter'" >&2
  exit 1
fi

# Quick mode doubles as the CI smoke path: also run the chaos soak test so
# the fault-injection invariants (message conservation, drop attribution,
# no leaked requests, bit-identical replay) are exercised alongside the
# benches. A failing run prints the scenario seed to replay it.
if [[ "$quick" -eq 1 && -z "$filter" && -x "$build_dir/tests/fault_soak_test" ]]; then
  echo "== fault_soak_test (chaos smoke; failing seeds are printed for replay)"
  "$build_dir/tests/fault_soak_test" --gtest_brief=1
fi
# Same smoke treatment for the conjunctive executor: loss/churn/duplication
# over the bind-join pipeline, plus the bind-vs-collect differential.
if [[ "$quick" -eq 1 && -z "$filter" && -x "$build_dir/tests/conjunctive_chaos_test" ]]; then
  echo "== conjunctive_chaos_test (executor chaos smoke)"
  "$build_dir/tests/conjunctive_chaos_test" --gtest_brief=1
fi
# Sharded-engine smoke: the multi-shard chaos soak (conservation + replay
# invariants with real worker threads). The 100k-peer scale point itself runs
# inside bench_routing's quick mode above (E2b section).
if [[ "$quick" -eq 1 && -z "$filter" && -x "$build_dir/tests/sharded_soak_test" ]]; then
  echo "== sharded_soak_test (multi-shard chaos smoke)"
  "$build_dir/tests/sharded_soak_test" --gtest_brief=1
fi
# Observability artifact: a scripted shell session traces one conjunctive
# query end to end and exports the Chrome trace plus the unified metrics
# JSON. GV_ARTIFACT_DIR overrides the destination (CI uploads it and the
# validator asserts the trace parses and every span tree is acyclic).
shell_bin="$build_dir/examples/gridvine_shell"
if [[ "$quick" -eq 1 && -z "$filter" && -x "$shell_bin" ]]; then
  artifact_dir="${GV_ARTIFACT_DIR:-$out_root}"
  mkdir -p "$artifact_dir"
  echo "== trace artifact (scripted shell session) -> $artifact_dir"
  "$shell_bin" >/dev/null <<EOF
trace on
schema W w type,size
triple <w:e1> <W#type> "gadget" .
triple <w:e2> <W#type> "widget" .
triple <w:e1> <W#size> "3" .
triple <w:e2> <W#size> "5" .
cquery SELECT ?x, ?l WHERE (?x, <W#type>, "gadget"), (?x, <W#size>, ?l)
trace dump $artifact_dir/trace_conjunctive.json
metrics $artifact_dir/metrics.json
quit
EOF
  if command -v python3 >/dev/null 2>&1; then
    python3 "$repo_root/scripts/validate_trace.py" \
      "$artifact_dir/trace_conjunctive.json" "$artifact_dir/metrics.json"
  else
    echo "python3 not found; skipping trace validation"
  fi
fi
# Sharded observability artifact: the same session shape on the 2-shard
# engine with the windowed health layer on. The trace dump carries
# otherData.shards=2, which switches the validator to the shard-merge checks
# (shard-index span-id bits, strictly increasing merged (ts, order) keys),
# and the timeseries dump is checked against the windowed-sample schema.
if [[ "$quick" -eq 1 && -z "$filter" && -x "$shell_bin" ]]; then
  artifact_dir="${GV_ARTIFACT_DIR:-$out_root}"
  mkdir -p "$artifact_dir"
  echo "== sharded trace + timeseries artifact -> $artifact_dir"
  "$shell_bin" --shards 2 >/dev/null <<EOF
trace on
health on 0.25
schema W w type,size
triple <w:e1> <W#type> "gadget" .
triple <w:e2> <W#type> "widget" .
triple <w:e1> <W#size> "3" .
triple <w:e2> <W#size> "5" .
cquery SELECT ?x, ?l WHERE (?x, <W#type>, "gadget"), (?x, <W#size>, ?l)
query SELECT ?x WHERE (?x, <W#type>, "widget")
trace dump $artifact_dir/trace_sharded.json
metrics $artifact_dir/metrics_sharded.json
timeseries $artifact_dir/timeseries.json
quit
EOF
  if command -v python3 >/dev/null 2>&1; then
    python3 "$repo_root/scripts/validate_trace.py" \
      "$artifact_dir/trace_sharded.json" \
      "$artifact_dir/metrics_sharded.json" \
      "$artifact_dir/timeseries.json"
  else
    echo "python3 not found; skipping sharded trace validation"
  fi
fi
# Serving-throughput smoke: bench_serving ran in the loop above (flash-crowd
# arrival process, four feature modes); validate that BENCH_serving.json
# carries the metrics CI consumers graph and that the equal-recall
# cross-check passed. In quick mode CI uploads the file as an artifact.
serving_json="$out_root/BENCH_serving.json"
if [[ -f "$serving_json" ]] && command -v python3 >/dev/null 2>&1; then
  echo "== validating $(basename "$serving_json")"
  python3 - "$serving_json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
rows = {r["name"]: r for r in doc["benchmarks"]}
required_rows = ["off", "cache", "batch", "cache_batch", "summary"]
required_keys = ["qps", "hit_rate", "p99_ms", "peers", "concurrency"]
for mode in required_rows:
    name = "bench_serving/" + mode
    if name not in rows:
        sys.exit(f"missing row {name}")
    for key in required_keys:
        if key not in rows[name]:
            sys.exit(f"row {name} missing key {key}")
summary = rows["bench_serving/summary"]
if summary["equal_recall"] != 1.0:
    sys.exit("serving modes returned different results (equal_recall != 1)")
print(f"  ok: qps_speedup={summary['qps_speedup']:.2f}x "
      f"hit_rate={summary['hit_rate']:.2f} p99={summary['p99_ms']:.0f}ms")
EOF
  if [[ "$quick" -eq 1 && -n "${GV_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$GV_ARTIFACT_DIR"
    cp "$serving_json" "$GV_ARTIFACT_DIR/"
  fi
fi
# Adaptive-execution smoke: bench_conjunctive ran the Zipf skewed-workload
# sweep in the loop above (greedy vs cost-based vs adaptive). Validate that
# the three mode rows and the summary carry the keys CI consumers graph,
# that all modes returned identical results, and — full runs only — that
# cost-based actually beat greedy on shipped rows (quick runs shrink the
# corpus too far to hold the full-run ratio to a floor). In quick mode CI
# uploads the JSON as the Zipf-sweep artifact.
conjunctive_json="$out_root/BENCH_conjunctive.json"
if [[ -f "$conjunctive_json" ]] && command -v python3 >/dev/null 2>&1; then
  echo "== validating $(basename "$conjunctive_json")"
  GV_BENCH_FULL="$((1 - quick))" python3 - "$conjunctive_json" <<'EOF'
import json, os, sys

doc = json.load(open(sys.argv[1]))
rows = {r["name"]: r for r in doc["benchmarks"]}
required_rows = ["zipf_greedy", "zipf_cost", "zipf_adaptive", "zipf_summary"]
required_keys = ["mode", "rows_shipped", "bytes", "messages", "est_error",
                 "replica_imbalance", "drift_rows_shipped"]
for mode in required_rows[:3]:
    name = "bench_conjunctive/" + mode
    if name not in rows:
        sys.exit(f"missing row {name}")
    for key in required_keys:
        if key not in rows[name]:
            sys.exit(f"row {name} missing key {key}")
summary = rows.get("bench_conjunctive/zipf_summary")
if summary is None:
    sys.exit("missing row bench_conjunctive/zipf_summary")
if summary["differential_ok"] != 1.0:
    sys.exit("planner modes returned different results (differential_ok != 1)")
ratio = summary["greedy_over_cost_rows"]
if os.environ.get("GV_BENCH_FULL") == "1" and ratio < 2.0:
    sys.exit(f"cost-based plan only {ratio:.2f}x better than greedy "
             f"on shipped rows (acceptance floor is 2x)")
print(f"  ok: greedy/cost rows={ratio:.2f}x "
      f"bytes={summary['greedy_over_cost_bytes']:.2f}x "
      f"adaptive drift advantage="
      f"{summary['cost_over_adaptive_drift_rows']:.2f}x")
EOF
  if [[ "$quick" -eq 1 && -n "${GV_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$GV_ARTIFACT_DIR"
    cp "$conjunctive_json" "$GV_ARTIFACT_DIR/"
  fi
fi
# Tracing-overhead gate: bench_sim_micro measures the relay hot path with no
# tracer, an attached-but-disabled tracer, and an enabled one (plus the
# 2-shard variant). Disabled tracing must stay under 3% overhead — the
# observability layer may not tax untraced runs. The gate reads the median
# of paired per-rep ratios and only binds on full runs; quick-mode windows
# (~10 ms) are pure jitter.
sim_micro_json="$out_root/BENCH_sim_micro.json"
if [[ -f "$sim_micro_json" ]] && command -v python3 >/dev/null 2>&1; then
  echo "== validating $(basename "$sim_micro_json")"
  GV_BENCH_FULL="$((1 - quick))" python3 - "$sim_micro_json" <<'EOF'
import json, os, sys

doc = json.load(open(sys.argv[1]))
rows = {r["name"]: r for r in doc["benchmarks"]}
classic = rows.get("bench_sim_micro/tracing_overhead")
sharded = rows.get("bench_sim_micro/tracing_overhead_sharded")
if classic is None or sharded is None:
    sys.exit("missing tracing_overhead row(s) in BENCH_sim_micro.json")
for key in ["messages_per_sec_untraced", "messages_per_sec_disabled",
            "messages_per_sec_enabled", "disabled_overhead_pct",
            "enabled_overhead_pct"]:
    if key not in classic:
        sys.exit(f"tracing_overhead row missing key {key}")
for key in ["shards", "messages_per_sec_untraced", "messages_per_sec_enabled",
            "enabled_overhead_pct"]:
    if key not in sharded:
        sys.exit(f"tracing_overhead_sharded row missing key {key}")
dis = classic["disabled_overhead_pct"]
if os.environ.get("GV_BENCH_FULL") == "1" and dis >= 3.0:
    sys.exit(f"attached-but-disabled tracer costs {dis:.1f}% on the relay "
             f"hot path (gate is 3%)")
print(f"  ok: disabled_overhead={dis:.1f}% "
      f"enabled={classic['enabled_overhead_pct']:.1f}% "
      f"sharded_enabled={sharded['enabled_overhead_pct']:.1f}%")
EOF
fi
# Self-organization smoke: bench_selforg ran the schema-evolution scenario
# in the loop above (quick mode shrinks the network). Validate that every
# row carries the keys CI consumers graph and that recall recovered after
# the mid-run schema change.
selforg_json="$out_root/BENCH_selforg.json"
if [[ -f "$selforg_json" ]] && command -v python3 >/dev/null 2>&1; then
  echo "== validating $(basename "$selforg_json")"
  python3 - "$selforg_json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
rows = doc["benchmarks"]
if not rows:
    sys.exit("BENCH_selforg.json has no rows")
required_keys = ["peers", "convergence_rounds", "recall_final",
                 "recall_pre", "recovery_ratio"]
for row in rows:
    for key in required_keys:
        if key not in row:
            sys.exit(f"row {row['name']} missing key {key}")
    if row["recovery_ratio"] < 0.95:
        sys.exit(f"row {row['name']}: recall only recovered to "
                 f"{row['recovery_ratio']:.2f} of pre-evolution level")
biggest = max(rows, key=lambda r: r["peers"])
print(f"  ok: {len(rows)} size(s), largest {int(biggest['peers'])} peers, "
      f"convergence_rounds={int(biggest['convergence_rounds'])} "
      f"recall_final={biggest['recall_final']:.2f}")
EOF
fi
echo
echo "wrote $ran JSON report(s) at $out_root/BENCH_*.json"
