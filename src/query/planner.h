#ifndef GRIDVINE_QUERY_PLANNER_H_
#define GRIDVINE_QUERY_PLANNER_H_

#include <vector>

#include "query/exec/plan.h"
#include "query/query.h"
#include "query/stats/sketch.h"

namespace gridvine {

/// How cheaply (and how selectively) one triple pattern can be resolved in
/// the distributed engine, best first. The ordering doubles as a selectivity
/// estimate: an exact subject names one resource; an exact object value is
/// rarer than a predicate shared by a whole relation; a range ("abc%")
/// multicast costs more than any single lookup; a pattern with no routable
/// constant cannot start a conjunction at all.
enum class PatternCost {
  kExactSubject = 0,
  kExactObject = 1,
  kExactPredicate = 2,
  kRange = 3,
  kUnroutable = 4,
};

/// Classifies one pattern.
PatternCost ClassifyPattern(const TriplePattern& pattern);

struct PlanOptions {
  /// When true (default), each pattern after a group's first is resolved by
  /// pushing the running bindings toward the data (kBindJoin); when false,
  /// every pattern is fetched in full and joined at the issuer
  /// (kRemoteScan + kLocalJoin — the collect-then-join baseline).
  bool bind_join = true;
  /// Per-pattern cardinality estimates, parallel to query.patterns(). Empty
  /// (the default) selects the legacy greedy planner — plans byte-identical
  /// to before statistics existed. Non-empty switches group ordering to the
  /// cost model: patterns are chained by estimated running join cardinality
  /// and each post-lead edge picks bind-join vs collect from estimated
  /// probe/extent row counts. Patterns whose estimate is !known fall back to
  /// the greedy (PatternCost, index) rank within the cost ordering.
  std::vector<PatternEstimate> estimates;
};

/// Builds the physical plan for a conjunctive query: patterns are split into
/// join-connected groups (union-find over shared variables; a fully-constant
/// pattern is its own group, planned as an existence check), each group's
/// chain orders its patterns cheapest-first with the join-connected
/// constraint, and the tail merges the groups. Ties are broken by original
/// pattern index everywhere, so the plan is identical across runs and
/// platforms. Groups are ordered by their cheapest (cost, index) pattern;
/// the flattened PhysicalPlan::Order() reproduces the serial planner's
/// order exactly.
PhysicalPlan PlanPhysical(const ConjunctiveQuery& query,
                          const PlanOptions& options = {});

/// Execution order for a conjunctive query's patterns: cheapest/most
/// selective first, with the constraint that every pattern after the first
/// shares a variable with some earlier pattern where possible (keeps the
/// running join bounded instead of building cross products). Returns indexes
/// into `query.patterns()`. Equivalent to PlanPhysical(query).Order().
std::vector<size_t> PlanConjunctive(const ConjunctiveQuery& query);

/// A re-planned continuation of one group's operator chain, produced when
/// the adaptive executor observes a cardinality far from the estimate: the
/// remaining patterns re-ordered by the cost model against the *observed*
/// prefix cardinality, with fresh per-edge bind/collect choices.
struct GroupSuffix {
  std::vector<size_t> patterns;
  std::vector<PlanStep> steps;
  std::vector<double> est_cards;
};

/// Re-plans the unexecuted tail of a group. `consumed` are the group's
/// already-executed pattern indexes (their variables are bound),
/// `remaining` the unexecuted ones, `prefix_card` the observed cardinality
/// of the running binding set. Deterministic: equal inputs give equal
/// suffixes.
GroupSuffix PlanGroupSuffix(const ConjunctiveQuery& query,
                            const std::vector<size_t>& consumed,
                            const std::vector<size_t>& remaining,
                            double prefix_card, const PlanOptions& options);

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_PLANNER_H_
