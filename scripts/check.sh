#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite — the exact
# sequence ROADMAP.md names as the bar every change must keep green.
#
#   $ scripts/check.sh            # RelWithDebInfo build + ctest
#   $ scripts/check.sh --asan     # ASan/UBSan build, runs store + query tests
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-san -S . -DGV_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-san -j "$(nproc)" --target triple_store_test query_test \
    property_test
  export ASAN_OPTIONS=detect_leaks=1
  export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
  ./build-san/tests/triple_store_test
  ./build-san/tests/query_test
  ./build-san/tests/property_test
  echo "sanitizer run clean"
  exit 0
fi

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure
