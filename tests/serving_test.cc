// Serving-layer end-to-end guarantees: the extent cache, the cross-query
// batcher and the responder service model must change performance only —
// never results, and never determinism.
//
//  * Same seed + full serving stack twice => byte-identical outcomes
//    (events executed, final clock, every counter).
//  * Batching on vs off => identical result rows for every query (the
//    envelope is pure transport).
//  * Shards {1, 2} with the serving stack on => identical result rows (the
//    batcher and service model run in simulated time, so the sharded engine
//    contract extends to them).
//  * Cache staleness regression: delete a triple, re-query through the
//    cache — the row must be gone (store version bumps on Remove, not just
//    Insert).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gridvine/gridvine_network.h"
#include "gridvine/query_frontend.h"
#include "store/binding_codec.h"

namespace gridvine {
namespace {

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

std::vector<Triple> MakeCorpus(int entities) {
  std::vector<Triple> triples;
  for (int e = 0; e < entities; ++e) {
    Term subj = Term::Uri("x:e" + std::to_string(e));
    triples.emplace_back(subj, Term::Uri("x:type"),
                         Term::Literal("cat" + std::to_string(e % 4)));
    triples.emplace_back(subj, Term::Uri("x:size"),
                         Term::Literal(std::to_string(e % 3)));
  }
  return triples;
}

GridVineNetwork::Options ServingOptions(uint64_t seed, bool cache, bool batch,
                                        uint32_t shards) {
  GridVineNetwork::Options o;
  o.num_peers = 16;
  o.key_depth = 12;
  o.seed = seed;
  o.latency = GridVineNetwork::LatencyKind::kUniform;
  o.latency_param = 0.01;
  o.shards = shards;
  o.peer.cache.enabled = cache;
  o.peer.batch.enabled = batch;
  o.peer.service.enabled = true;
  o.peer.frontend.max_concurrent = 4;
  o.peer.frontend.max_queue = 64;
  return o;
}

/// A mixed burst (single-pattern + bind-join conjunctive, repeated patterns
/// so the cache and batcher both engage), submitted concurrently through the
/// frontends of several gateway peers at one instant. Returns per-query
/// sorted row serializations.
struct BurstOutcome {
  std::vector<std::vector<std::string>> rows;  // per query, sorted
  size_t events_executed = 0;
  SimTime final_time = 0;
  uint64_t cache_hits = 0;
  uint64_t batch_items = 0;
  uint64_t batch_flushes = 0;
  uint64_t shed = 0;
};

BurstOutcome RunBurst(uint64_t seed, bool cache, bool batch) {
  GridVineNetwork net(ServingOptions(seed, cache, batch, 1));
  EXPECT_TRUE(net.InsertTriples(0, MakeCorpus(32)).ok());
  net.Settle();

  const int kQueries = 24;
  BurstOutcome out;
  out.rows.resize(kQueries);
  net.sim()->ScheduleAt(1.0, [&] {
    for (int i = 0; i < kQueries; ++i) {
      GridVinePeer* gw = net.peer(1 + size_t(i) % 4);
      std::vector<std::string>* rows = &out.rows[size_t(i)];
      if (i % 3 == 2) {
        ConjunctiveQuery cq(
            {"x", "l"},
            {P(Term::Var("x"), Term::Uri("x:type"),
               Term::Literal("cat" + std::to_string(i % 4))),
             P(Term::Var("x"), Term::Uri("x:size"), Term::Var("l"))});
        GridVinePeer::QueryOptions opts;
        opts.bind_join = true;
        gw->frontend()->SubmitConjunctive(
            cq, opts, [rows](GridVinePeer::ConjunctiveResult r) {
              EXPECT_TRUE(r.status.ok()) << r.status;
              for (const auto& row : r.rows)
                rows->push_back(SerializeBindings({row}));
              std::sort(rows->begin(), rows->end());
            });
      } else {
        TriplePatternQuery q(
            "x", P(Term::Var("x"), Term::Uri("x:type"),
                   Term::Literal("cat" + std::to_string(i % 4))));
        gw->frontend()->Submit(q, {}, [rows](GridVinePeer::QueryResult r) {
          EXPECT_TRUE(r.status.ok()) << r.status;
          for (const auto& item : r.items)
            rows->push_back(item.value.value());
          std::sort(rows->begin(), rows->end());
        });
      }
    }
  });
  net.Settle();

  out.events_executed = net.sim()->events_executed();
  out.final_time = net.sim()->Now();
  for (size_t p = 0; p < net.size(); ++p) {
    if (net.peer(p)->cache())
      out.cache_hits += net.peer(p)->cache()->stats().hits;
    out.batch_items += net.peer(p)->counters().batch_items;
    out.batch_flushes += net.peer(p)->counters().batch_flushes;
    out.shed += net.peer(p)->frontend()->stats().shed;
  }
  // The burst is sized within every frontend's queue: equal recall requires
  // that no mode sheds.
  EXPECT_EQ(out.shed, 0u);
  return out;
}

TEST(ServingDeterminismTest, SameSeedBitIdenticalWithFullStack) {
  BurstOutcome a = RunBurst(42, /*cache=*/true, /*batch=*/true);
  BurstOutcome b = RunBurst(42, /*cache=*/true, /*batch=*/true);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.batch_items, b.batch_items);
  EXPECT_EQ(a.batch_flushes, b.batch_flushes);
  // The stack actually engaged (otherwise this test proves nothing).
  EXPECT_GT(a.cache_hits, 0u);
  EXPECT_GT(a.batch_items, 0u);
}

TEST(ServingDeterminismTest, BatchingAndCacheDoNotChangeResults) {
  BurstOutcome off = RunBurst(42, false, false);
  BurstOutcome cache_only = RunBurst(42, true, false);
  BurstOutcome batch_only = RunBurst(42, false, true);
  BurstOutcome full = RunBurst(42, true, true);
  EXPECT_EQ(off.rows, cache_only.rows);
  EXPECT_EQ(off.rows, batch_only.rows);
  EXPECT_EQ(off.rows, full.rows);
  size_t nonempty = 0;
  for (const auto& r : off.rows) nonempty += r.empty() ? 0 : 1;
  EXPECT_GT(nonempty, 0u);
}

TEST(ServingDeterminismTest, ShardedEngineMatchesSingleQueue) {
  // Sequential queries through the frontend wrappers (the sharded engine has
  // no external clock to schedule a burst on); the serving stack still runs
  // on every hop. Rows must match across shard counts.
  std::vector<std::vector<std::string>> per_shards;
  for (uint32_t shards : {1u, 2u}) {
    GridVineNetwork net(ServingOptions(9, true, true, shards));
    EXPECT_TRUE(net.InsertTriples(0, MakeCorpus(24)).ok());
    net.Settle();
    std::vector<std::string> rows;
    for (int i = 0; i < 6; ++i) {
      TriplePatternQuery q(
          "x", P(Term::Var("x"), Term::Uri("x:type"),
                 Term::Literal("cat" + std::to_string(i % 4))));
      auto res = net.ServeFor(1 + size_t(i) % 3, q);
      EXPECT_TRUE(res.status.ok()) << res.status;
      std::vector<std::string> vals;
      for (const auto& item : res.items) vals.push_back(item.value.value());
      std::sort(vals.begin(), vals.end());
      for (auto& v : vals) rows.push_back(std::to_string(i) + ":" + v);
    }
    per_shards.push_back(std::move(rows));
  }
  EXPECT_EQ(per_shards[0], per_shards[1]);
  EXPECT_FALSE(per_shards[0].empty());
}

TEST(ServingCacheTest, RemoveInvalidatesCachedExtents) {
  GridVineNetwork net(ServingOptions(5, /*cache=*/true, /*batch=*/false, 1));
  Triple doomed(Term::Uri("x:doomed"), Term::Uri("x:type"),
                Term::Literal("cat0"));
  ASSERT_TRUE(net.InsertTriples(0, MakeCorpus(16)).ok());
  ASSERT_TRUE(net.InsertTriple(0, doomed).ok());
  net.Settle();

  TriplePatternQuery q("x", P(Term::Var("x"), Term::Uri("x:type"),
                              Term::Literal("cat0")));
  auto has_doomed = [&](const GridVinePeer::QueryResult& r) {
    for (const auto& item : r.items)
      if (item.value.value() == "x:doomed") return true;
    return false;
  };

  // Warm the cache, then hit it.
  auto r1 = net.ServeFor(2, q);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_TRUE(has_doomed(r1));
  auto r2 = net.ServeFor(2, q);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_TRUE(has_doomed(r2));
  uint64_t hits = 0;
  for (size_t p = 0; p < net.size(); ++p)
    hits += net.peer(p)->cache()->stats().hits;
  EXPECT_GT(hits, 0u);

  // Delete and re-query: the cached extent was computed at an older store
  // version, so it must be dropped, not served.
  ASSERT_TRUE(net.RemoveTriple(0, doomed).ok());
  net.Settle();
  auto r3 = net.ServeFor(2, q);
  ASSERT_TRUE(r3.status.ok());
  EXPECT_FALSE(has_doomed(r3)) << "cache served rows for a deleted triple";
  uint64_t invalidations = 0;
  for (size_t p = 0; p < net.size(); ++p)
    invalidations += net.peer(p)->cache()->stats().invalidations;
  EXPECT_GT(invalidations, 0u);

  // And back again after re-insert.
  ASSERT_TRUE(net.InsertTriple(0, doomed).ok());
  net.Settle();
  auto r4 = net.ServeFor(2, q);
  ASSERT_TRUE(r4.status.ok());
  EXPECT_TRUE(has_doomed(r4));
}

TEST(ServingCacheTest, DeprecateInvalidatesReformulatedResults) {
  // Mirror of RemoveInvalidatesCachedExtents at the mediation layer: rows
  // reachable only through a mapping must disappear when the mapping is
  // deprecated (and reappear when it is reactivated), even with the serving
  // caches warm. A stale reformulation or extent entry keyed to the old
  // mapping state would keep serving the B-schema rows.
  GridVineNetwork net(ServingOptions(5, /*cache=*/true, /*batch=*/false, 1));
  ASSERT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
  ASSERT_TRUE(net.InsertSchema(1, Schema("B", "d", {"organism"})).ok());
  ASSERT_TRUE(net.InsertTriple(0, Triple(Term::Uri("x:a1"),
                                         Term::Uri("A#organism"),
                                         Term::Literal("Aspergillus niger")))
                  .ok());
  ASSERT_TRUE(net.InsertTriple(1, Triple(Term::Uri("x:b1"),
                                         Term::Uri("B#organism"),
                                         Term::Literal("Aspergillus flavus")))
                  .ok());
  SchemaMapping m("ab", "A", "B");
  ASSERT_TRUE(m.AddCorrespondence("A#organism", "B#organism").ok());
  ASSERT_TRUE(net.InsertMapping(0, m).ok());
  net.Settle();

  TriplePatternQuery q("x", P(Term::Var("x"), Term::Uri("A#organism"),
                              Term::Literal("%Aspergillus%")));
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  auto subjects = [&](const GridVinePeer::QueryResult& r) {
    std::set<std::string> s;
    for (const auto& item : r.items) s.insert(item.value.value());
    return s;
  };

  // Warm: both schemas answer through the mapping.
  auto r1 = net.ServeFor(2, q, opts);
  ASSERT_TRUE(r1.status.ok()) << r1.status;
  EXPECT_EQ(subjects(r1), (std::set<std::string>{"x:a1", "x:b1"}));
  auto r2 = net.ServeFor(2, q, opts);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(subjects(r2), (std::set<std::string>{"x:a1", "x:b1"}));

  // Deprecate (the self-organizer's Bayesian verdict path: UpsertMapping
  // with the deprecated flag) and re-query.
  SchemaMapping dep = m;
  dep.set_deprecated(true);
  ASSERT_TRUE(net.UpsertMapping(0, dep).ok());
  net.Settle();
  auto r3 = net.ServeFor(2, q, opts);
  ASSERT_TRUE(r3.status.ok());
  EXPECT_EQ(subjects(r3), (std::set<std::string>{"x:a1"}))
      << "deprecated mapping still reformulates";

  // Reactivate and re-query: the B rows must come back.
  ASSERT_TRUE(net.UpsertMapping(0, m).ok());
  net.Settle();
  auto r4 = net.ServeFor(2, q, opts);
  ASSERT_TRUE(r4.status.ok());
  EXPECT_EQ(subjects(r4), (std::set<std::string>{"x:a1", "x:b1"}));
}

}  // namespace
}  // namespace gridvine
