#include "sim/fault_plan.h"

#include <algorithm>

namespace gridvine {

void FaultPlan::AddPartition(const Partition& partition) {
  PartitionSpec spec;
  spec.start = partition.start;
  spec.end = partition.end;
  NodeId max_id = 0;
  for (NodeId id : partition.group_a) max_id = std::max(max_id, id);
  for (NodeId id : partition.group_b) max_id = std::max(max_id, id);
  spec.side.assign(size_t(max_id) + 1, 0);
  for (NodeId id : partition.group_a) spec.side[id] = 1;
  for (NodeId id : partition.group_b) spec.side[id] = 2;
  partitions_.push_back(std::move(spec));
}

bool FaultPlan::ShouldDrop(SimTime now, NodeId from, NodeId to, Rng* rng,
                           DropCause* cause) const {
  for (const PartitionSpec& p : partitions_) {
    if (now < p.start || now >= p.end) continue;
    uint8_t sf = from < p.side.size() ? p.side[from] : 0;
    uint8_t st = to < p.side.size() ? p.side[to] : 0;
    if (sf != 0 && st != 0 && sf != st) {
      *cause = DropCause::kPartition;
      return true;
    }
  }
  for (const LossBurst& b : bursts_) {
    if (now < b.start || now >= b.end || b.probability <= 0) continue;
    if (rng->Bernoulli(b.probability)) {
      *cause = DropCause::kBurstLoss;
      return true;
    }
  }
  return false;
}

bool FaultPlan::ShouldDuplicate(Rng* rng) const {
  return duplicate_probability_ > 0 && rng->Bernoulli(duplicate_probability_);
}

SimTime FaultPlan::ExtraLatency(SimTime now, Rng* rng) const {
  SimTime extra = 0;
  for (const LatencySpike& s : spikes_) {
    if (now < s.start || now >= s.end) continue;
    extra += s.extra;
    if (s.extra_mean_tail > 0) {
      extra += rng->Exponential(1.0 / s.extra_mean_tail);
    }
  }
  return extra;
}

}  // namespace gridvine
