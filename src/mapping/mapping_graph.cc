#include "mapping/mapping_graph.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/mem_estimate.h"

namespace gridvine {

void MappingGraph::AddSchema(const std::string& name) { schemas_.insert(name); }

void MappingGraph::AddMapping(const SchemaMapping& mapping) {
  schemas_.insert(mapping.source_schema());
  schemas_.insert(mapping.target_schema());
  std::string serialized = mapping.Serialize();
  auto it = mappings_.find(mapping.id());
  if (it != mappings_.end()) {
    // Re-intern path: only a genuine content change bumps the version and
    // notifies; re-syncing an unchanged record is free.
    if (it->second->Serialize() == serialized) return;
    it->second = MappingPool().Intern(serialized, mapping);
    ++version_;
    if (listener_) listener_->OnMappingReplaced(*this, mapping.id());
    return;
  }
  mappings_[mapping.id()] = MappingPool().Intern(serialized, mapping);
  ++version_;
  if (listener_) listener_->OnMappingAdded(*this, mapping.id());
}

bool MappingGraph::RemoveMapping(const std::string& id) {
  if (mappings_.erase(id) == 0) return false;
  ++version_;
  if (listener_) listener_->OnMappingRemoved(*this, id);
  return true;
}

bool MappingGraph::Deprecate(const std::string& id) {
  auto it = mappings_.find(id);
  if (it == mappings_.end()) return false;
  if (!it->second->deprecated()) {
    // The stored object is shared; swap in an interned deprecated variant
    // instead of writing through it.
    SchemaMapping updated = *it->second;
    updated.set_deprecated(true);
    it->second = MappingPool().Intern(updated.Serialize(), updated);
    ++version_;
    if (listener_) listener_->OnMappingDeprecated(*this, id);
  }
  return true;
}

Result<SchemaMapping> MappingGraph::Get(const std::string& id) const {
  auto it = mappings_.find(id);
  if (it == mappings_.end()) return Status::NotFound("no mapping " + id);
  return *it->second;
}

std::shared_ptr<const SchemaMapping> MappingGraph::GetShared(
    const std::string& id) const {
  auto it = mappings_.find(id);
  return it == mappings_.end() ? nullptr : it->second;
}

bool MappingGraph::Contains(const std::string& id) const {
  return mappings_.count(id) > 0;
}

std::vector<std::string> MappingGraph::Schemas() const {
  return std::vector<std::string>(schemas_.begin(), schemas_.end());
}

size_t MappingGraph::active_mapping_count() const {
  size_t n = 0;
  for (const auto& [_, m] : mappings_) {
    if (!m->deprecated()) ++n;
  }
  return n;
}

std::vector<MappingGraph::Edge> MappingGraph::ActiveEdges() const {
  std::vector<Edge> edges;
  for (const auto& [id, m] : mappings_) {
    if (m->deprecated()) continue;
    edges.push_back(Edge{id, m->source_schema(), m->target_schema(), false});
    if (m->bidirectional()) {
      edges.push_back(Edge{id, m->target_schema(), m->source_schema(), true});
    }
  }
  return edges;
}

std::vector<SchemaMapping> MappingGraph::MappingsFrom(
    const std::string& schema) const {
  std::vector<SchemaMapping> out;
  for (const auto& [_, m] : mappings_) {
    if (m->deprecated()) continue;
    if (m->source_schema() == schema) out.push_back(*m);
    if (m->bidirectional() && m->target_schema() == schema) {
      out.push_back(m->Reversed());
    }
  }
  return out;
}

int MappingGraph::InDegree(const std::string& schema) const {
  int n = 0;
  for (const Edge& e : ActiveEdges()) {
    if (e.to == schema) ++n;
  }
  return n;
}

int MappingGraph::OutDegree(const std::string& schema) const {
  int n = 0;
  for (const Edge& e : ActiveEdges()) {
    if (e.from == schema) ++n;
  }
  return n;
}

Result<std::vector<SchemaMapping>> MappingGraph::FindPath(
    const std::string& src, const std::string& dst, int max_hops) const {
  if (src == dst) return std::vector<SchemaMapping>{};
  std::vector<Edge> edges = ActiveEdges();
  // BFS over schemas; parent edge index remembered for reconstruction.
  std::map<std::string, int> parent_edge;
  std::map<std::string, int> depth;
  std::queue<std::string> frontier;
  frontier.push(src);
  depth[src] = 0;
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop();
    if (depth[cur] >= max_hops) continue;
    for (size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      if (e.from != cur || depth.count(e.to)) continue;
      depth[e.to] = depth[cur] + 1;
      parent_edge[e.to] = int(i);
      if (e.to == dst) {
        // Reconstruct the path backwards.
        std::vector<SchemaMapping> path;
        std::string node = dst;
        while (node != src) {
          const Edge& pe = edges[size_t(parent_edge[node])];
          const SchemaMapping& m = *mappings_.at(pe.mapping_id);
          path.push_back(pe.reversed ? m.Reversed() : m);
          node = pe.from;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(e.to);
    }
  }
  return Status::NotFound("no mapping path " + src + " -> " + dst);
}

std::vector<std::vector<std::string>> MappingGraph::CyclesThrough(
    const std::string& id, int max_len) const {
  std::vector<std::vector<std::string>> cycles;
  auto it = mappings_.find(id);
  if (it == mappings_.end() || it->second->deprecated()) return cycles;
  const std::string& home = it->second->source_schema();
  const std::string& start = it->second->target_schema();
  std::vector<Edge> edges = ActiveEdges();

  // DFS over simple paths start -> home (edge `id` traversed first and
  // never reused; schemas not revisited).
  std::vector<std::string> path_ids = {id};
  std::set<std::string> visited = {home, start};
  std::function<void(const std::string&)> dfs = [&](const std::string& cur) {
    if (int(path_ids.size()) >= max_len) return;
    for (const Edge& e : edges) {
      if (e.from != cur) continue;
      if (e.mapping_id == id) continue;  // never reuse the probed mapping
      if (e.to == home) {
        auto cycle = path_ids;
        cycle.push_back(e.mapping_id);
        cycles.push_back(std::move(cycle));
        continue;
      }
      if (visited.count(e.to)) continue;
      visited.insert(e.to);
      path_ids.push_back(e.mapping_id);
      dfs(e.to);
      path_ids.pop_back();
      visited.erase(e.to);
    }
  };
  if (home != start) {
    dfs(start);
  }
  return cycles;
}

double MappingGraph::LargestSccFraction() const {
  if (schemas_.empty()) return 1.0;
  // Tarjan's strongly-connected-components algorithm, iterative to keep
  // stack depth bounded for large schema graphs.
  std::vector<std::string> nodes(schemas_.begin(), schemas_.end());
  std::map<std::string, int> node_index;
  for (size_t i = 0; i < nodes.size(); ++i) node_index[nodes[i]] = int(i);
  std::vector<std::vector<int>> adj(nodes.size());
  for (const Edge& e : ActiveEdges()) {
    adj[size_t(node_index[e.from])].push_back(node_index[e.to]);
  }

  int n = int(nodes.size());
  std::vector<int> index(size_t(n), -1), low(size_t(n), 0);
  std::vector<bool> on_stack(size_t(n), false);
  std::vector<int> stack;
  int next_index = 0;
  size_t largest = 0;

  struct Frame {
    int v;
    size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[size_t(root)] != -1) continue;
    std::vector<Frame> call_stack = {{root, 0}};
    index[size_t(root)] = low[size_t(root)] = next_index++;
    stack.push_back(root);
    on_stack[size_t(root)] = true;
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      if (f.child < adj[size_t(f.v)].size()) {
        int w = adj[size_t(f.v)][f.child++];
        if (index[size_t(w)] == -1) {
          index[size_t(w)] = low[size_t(w)] = next_index++;
          stack.push_back(w);
          on_stack[size_t(w)] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[size_t(w)]) {
          low[size_t(f.v)] = std::min(low[size_t(f.v)], index[size_t(w)]);
        }
      } else {
        if (low[size_t(f.v)] == index[size_t(f.v)]) {
          size_t comp_size = 0;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[size_t(w)] = false;
            ++comp_size;
            if (w == f.v) break;
          }
          largest = std::max(largest, comp_size);
        }
        int v = f.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          int parent = call_stack.back().v;
          low[size_t(parent)] = std::min(low[size_t(parent)], low[size_t(v)]);
        }
      }
    }
  }
  return double(largest) / double(n);
}

bool MappingGraph::IsStronglyConnected() const {
  return LargestSccFraction() >= 1.0;
}

std::vector<std::pair<int, int>> MappingGraph::DegreeSequence() const {
  std::map<std::string, std::pair<int, int>> degrees;
  for (const auto& s : schemas_) degrees[s] = {0, 0};
  for (const Edge& e : ActiveEdges()) {
    ++degrees[e.to].first;    // in-degree
    ++degrees[e.from].second; // out-degree
  }
  std::vector<std::pair<int, int>> out;
  out.reserve(degrees.size());
  for (const auto& [_, d] : degrees) out.push_back(d);
  return out;
}

size_t MappingGraph::MemoryFootprint() const {
  size_t bytes = RbTreeBytes(schemas_.size(), sizeof(*schemas_.begin())) +
                 RbTreeBytes(mappings_.size(), sizeof(*mappings_.begin()));
  for (const auto& s : schemas_) bytes += StringHeapBytes(s);
  for (const auto& [id, m] : mappings_) {
    (void)m;
    bytes += StringHeapBytes(id);
  }
  return bytes;
}

}  // namespace gridvine
