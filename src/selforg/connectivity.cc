#include "selforg/connectivity.h"

namespace gridvine {

double ConnectivityIndicator(
    const std::vector<std::pair<int, int>>& degrees) {
  if (degrees.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [in, out] : degrees) {
    sum += double(in) * double(out) - double(out);
  }
  return sum / double(degrees.size());
}

}  // namespace gridvine
