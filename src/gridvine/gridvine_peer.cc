#include "gridvine/gridvine_peer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "query/planner.h"
#include "query/reformulation.h"
#include "store/binding_codec.h"

namespace gridvine {

namespace {

/// Record-type prefixes distinguishing non-triple values in overlay storage.
bool IsStructuredRecord(const std::string& value) {
  return StartsWith(value, "schema|") || StartsWith(value, "mapping|") ||
         StartsWith(value, "conn|");
}

/// Aggregates N update acknowledgements into one status callback: the first
/// error wins; OK once all arrive.
class AckAggregator {
 public:
  AckAggregator(int expected, GridVinePeer::StatusCallback cb)
      : remaining_(expected), cb_(std::move(cb)) {}

  PGridPeer::UpdateCallback MakeCallback() {
    auto self = shared_from_this_;
    return [this, self](Result<PGridPeer::UpdateOutcome> r) {
      if (!r.ok() && first_error_.ok()) first_error_ = r.status();
      if (--remaining_ == 0) {
        cb_(first_error_);
      }
    };
  }

  /// Creates an aggregator kept alive by its own callbacks.
  static std::shared_ptr<AckAggregator> Create(
      int expected, GridVinePeer::StatusCallback cb) {
    auto agg = std::make_shared<AckAggregator>(expected, std::move(cb));
    agg->shared_from_this_ = agg;
    return agg;
  }

 private:
  std::shared_ptr<AckAggregator> shared_from_this_;
  int remaining_;
  Status first_error_;
  GridVinePeer::StatusCallback cb_;
};

}  // namespace

GridVinePeer::GridVinePeer(Simulator* sim, Network* network, Rng rng,
                           Options options,
                           PGridPeer::Options overlay_options)
    : sim_(sim),
      network_(network),
      rng_(rng),
      options_(options),
      hash_(options.key_depth) {
  overlay_options.key_depth = options.key_depth;
  overlay_ = std::make_unique<PGridPeer>(sim, network, rng_.Fork(),
                                         overlay_options);
  overlay_->SetExtensionHandler(
      [this](NodeId origin, std::shared_ptr<const MessageBody> payload,
             int hops) { OnExtensionMessage(origin, std::move(payload), hops); });
  overlay_->SetStorageListener(
      [this](UpdateOp op, const Key& key, const std::string& value) {
        OnStorageChange(op, key, value);
      });
}

// --- Storage mirroring --------------------------------------------------------

void GridVinePeer::OnStorageChange(UpdateOp op, const Key& /*key*/,
                                   const std::string& value) {
  if (IsStructuredRecord(value)) return;
  auto triple = Triple::Parse(value);
  if (!triple.ok()) return;  // unknown record type: not DB_p material
  if (op == UpdateOp::kInsert) {
    // A triple indexed three times may land on this peer up to three times;
    // TripleStore::Insert is idempotent so DB_p stays duplicate-free.
    local_db_.Insert(*triple).ok();
  } else {
    local_db_.Erase(*triple);
  }
}

// --- Mediation-layer updates ---------------------------------------------------

void GridVinePeer::InsertTriple(const Triple& triple, StatusCallback cb) {
  Status valid = triple.Validate();
  if (!valid.ok()) {
    cb(valid);
    return;
  }
  std::string value = triple.Serialize();
  auto agg = AckAggregator::Create(3, std::move(cb));
  // Update(t) = Update(Hash(s), t), Update(Hash(p), t), Update(Hash(o), t).
  overlay_->Update(KeyFor(triple.subject().value()), value,
                   agg->MakeCallback());
  overlay_->Update(KeyFor(triple.predicate().value()), value,
                   agg->MakeCallback());
  overlay_->Update(KeyFor(triple.object().value()), value,
                   agg->MakeCallback());
}

void GridVinePeer::InsertTriples(const std::vector<Triple>& triples,
                                 StatusCallback cb) {
  if (triples.empty()) {
    cb(Status::OK());
    return;
  }
  for (const Triple& t : triples) {
    Status valid = t.Validate();
    if (!valid.ok()) {
      cb(valid);
      return;
    }
  }
  auto agg = AckAggregator::Create(int(triples.size()) * 3, std::move(cb));
  for (const Triple& t : triples) {
    std::string value = t.Serialize();
    overlay_->Update(KeyFor(t.subject().value()), value, agg->MakeCallback());
    overlay_->Update(KeyFor(t.predicate().value()), value,
                     agg->MakeCallback());
    overlay_->Update(KeyFor(t.object().value()), value, agg->MakeCallback());
  }
}

void GridVinePeer::RemoveTriple(const Triple& triple, StatusCallback cb) {
  std::string value = triple.Serialize();
  auto agg = AckAggregator::Create(3, std::move(cb));
  overlay_->Remove(KeyFor(triple.subject().value()), value,
                   agg->MakeCallback());
  overlay_->Remove(KeyFor(triple.predicate().value()), value,
                   agg->MakeCallback());
  overlay_->Remove(KeyFor(triple.object().value()), value,
                   agg->MakeCallback());
}

void GridVinePeer::InsertSchema(const Schema& schema, StatusCallback cb) {
  Status valid = schema.Validate();
  if (!valid.ok()) {
    cb(valid);
    return;
  }
  overlay_->Update(KeyFor(schema.name()), schema.Serialize(),
                   [cb](Result<PGridPeer::UpdateOutcome> r) {
                     cb(r.ok() ? Status::OK() : r.status());
                   });
}

namespace {

/// A mapping must be discoverable from every schema that can traverse it:
/// bidirectional equivalences reformulate both ways, and subsumptions are
/// always traversable backwards (the sound specialization direction), so
/// both kinds are indexed under the target schema's key space too.
bool StoredAtBothKeySpaces(const SchemaMapping& mapping) {
  return mapping.bidirectional() ||
         mapping.type() == MappingType::kSubsumption;
}

}  // namespace

void GridVinePeer::InsertMapping(const SchemaMapping& mapping,
                                 StatusCallback cb) {
  std::string value = mapping.Serialize();
  int copies = StoredAtBothKeySpaces(mapping) ? 2 : 1;
  auto agg = AckAggregator::Create(copies, std::move(cb));
  overlay_->Update(KeyFor(mapping.source_schema()), value,
                   agg->MakeCallback());
  if (StoredAtBothKeySpaces(mapping)) {
    overlay_->Update(KeyFor(mapping.target_schema()), value,
                     agg->MakeCallback());
  }
}

void GridVinePeer::UpsertMapping(const SchemaMapping& mapping,
                                 StatusCallback cb) {
  // Fetch current records at the source key space, remove any with the same
  // id, then insert the new state. (Bidirectional copies are refreshed too.)
  FetchMappingsFor(
      mapping.source_schema(),
      [this, mapping, cb](Result<std::vector<SchemaMapping>> existing) {
        std::vector<std::string> stale;
        if (existing.ok()) {
          for (const auto& m : *existing) {
            if (m.id() == mapping.id() &&
                m.Serialize() != mapping.Serialize()) {
              stale.push_back(m.Serialize());
            }
          }
        }
        int ops = int(stale.size()) * (StoredAtBothKeySpaces(mapping) ? 2 : 1);
        auto agg = AckAggregator::Create(ops + 1, cb);
        for (const auto& value : stale) {
          overlay_->Remove(KeyFor(mapping.source_schema()), value,
                           agg->MakeCallback());
          if (StoredAtBothKeySpaces(mapping)) {
            overlay_->Remove(KeyFor(mapping.target_schema()), value,
                             agg->MakeCallback());
          }
        }
        InsertMapping(mapping, [agg](Status s) {
          agg->MakeCallback()(
              s.ok() ? Result<PGridPeer::UpdateOutcome>(
                           PGridPeer::UpdateOutcome{})
                     : Result<PGridPeer::UpdateOutcome>(s));
        });
      });
}

// --- Mediation-layer lookups ----------------------------------------------------

void GridVinePeer::FetchSchema(const std::string& name,
                               std::function<void(Result<Schema>)> cb) {
  overlay_->Retrieve(
      KeyFor(name), [name, cb](Result<PGridPeer::LookupResult> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        for (const auto& value : r->values) {
          if (!StartsWith(value, "schema|")) continue;
          auto schema = Schema::Parse(value);
          if (schema.ok() && schema->name() == name) {
            cb(std::move(schema));
            return;
          }
        }
        cb(Status::NotFound("schema not in network: " + name));
      });
}

void GridVinePeer::FetchMappingsFor(
    const std::string& schema,
    std::function<void(Result<std::vector<SchemaMapping>>)> cb) {
  overlay_->Retrieve(
      KeyFor(schema), [cb](Result<PGridPeer::LookupResult> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        std::vector<SchemaMapping> mappings;
        for (const auto& value : r->values) {
          if (!StartsWith(value, "mapping|")) continue;
          auto m = SchemaMapping::Parse(value);
          if (m.ok()) mappings.push_back(std::move(m).value());
        }
        cb(std::move(mappings));
      });
}

// --- Connectivity registry ------------------------------------------------------

void GridVinePeer::PublishDegree(const std::string& domain,
                                 const std::string& schema, int in_degree,
                                 int out_degree, StatusCallback cb) {
  std::string record = "conn|" + schema + "|" + std::to_string(in_degree) +
                       "|" + std::to_string(out_degree) + "|" +
                       std::to_string(next_version_++);
  auto prev_key = std::make_pair(domain, schema);
  auto it = published_degrees_.find(prev_key);
  int ops = it != published_degrees_.end() ? 2 : 1;
  auto agg = AckAggregator::Create(ops, std::move(cb));
  if (it != published_degrees_.end()) {
    overlay_->Remove(KeyFor(domain), it->second, agg->MakeCallback());
  }
  overlay_->Update(KeyFor(domain), record, agg->MakeCallback());
  published_degrees_[prev_key] = record;
}

void GridVinePeer::FetchDomainDegrees(
    const std::string& domain,
    std::function<void(Result<std::vector<DegreeRecord>>)> cb) {
  overlay_->Retrieve(
      KeyFor(domain), [cb](Result<PGridPeer::LookupResult> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        // Keep the latest version per schema.
        std::map<std::string, DegreeRecord> latest;
        for (const auto& value : r->values) {
          if (!StartsWith(value, "conn|")) continue;
          auto parts = Split(value, '|');
          if (parts.size() != 5) continue;
          DegreeRecord rec;
          rec.schema = parts[1];
          rec.in_degree = std::atoi(parts[2].c_str());
          rec.out_degree = std::atoi(parts[3].c_str());
          rec.version = std::strtoull(parts[4].c_str(), nullptr, 10);
          auto it = latest.find(rec.schema);
          if (it == latest.end() || it->second.version < rec.version) {
            latest[rec.schema] = rec;
          }
        }
        std::vector<DegreeRecord> out;
        out.reserve(latest.size());
        for (auto& [_, rec] : latest) out.push_back(rec);
        cb(std::move(out));
      });
}

// --- Query engine ---------------------------------------------------------------

uint64_t GridVinePeer::StartQuery(
    const TriplePatternQuery& query, const QueryOptions& options,
    std::function<void(PendingQuery&)> on_finish) {
  ++counters_.queries_issued;
  uint64_t qid = (uint64_t(id()) << 32) | next_query_id_++;
  PendingQuery p;
  p.query = query;
  p.options = options;
  p.started = sim_->Now();
  p.on_finish = std::move(on_finish);
  p.visited.insert(query.SchemaName());
  pending_queries_.emplace(qid, std::move(p));

  int max_hops = options.max_hops >= 0 ? options.max_hops
                                       : options_.max_reformulation_hops;
  SimTime timeout =
      options.timeout > 0 ? options.timeout : options_.query_timeout;

  PendingQuery& pq = pending_queries_.at(qid);
  pq.outstanding = 1;
  int ttl = options.reformulate &&
                    options.mode == ReformulationMode::kRecursive
                ? max_hops
                : 0;
  DispatchQuery(qid, query, id(), options.mode, ttl, {query.SchemaName()},
                0, 1.0, options.sound_only);

  if (options.reformulate && options.mode == ReformulationMode::kIterative) {
    IterativeExpand(qid, query, {query.SchemaName()}, 0, 0, 1.0);
  }

  sim_->Schedule(timeout, [this, qid] { FinishQuery(qid); });
  return qid;
}

void GridVinePeer::SearchFor(const TriplePatternQuery& query,
                             const QueryOptions& options, QueryCallback cb) {
  Status valid = query.Validate();
  if (!valid.ok()) {
    QueryResult res;
    res.status = valid;
    cb(std::move(res));
    return;
  }
  std::string var = query.distinguished_var();
  StartQuery(query, options, [this, var, cb](PendingQuery& p) {
    QueryResult res;
    res.status = Status::OK();
    res.schemas_answered = p.schemas_answered.size();
    res.reformulations = p.reformulations;
    res.latency = sim_->Now() - p.started;
    res.first_result_latency = p.first_result;
    // Deduplicate by (schema, value); earliest arrival wins.
    std::map<std::pair<std::string, std::string>, ResultItem> dedup;
    for (const RowBatch& batch : p.batches) {
      for (const BindingSet& row : batch.rows) {
        auto it = row.find(var);
        if (it == row.end()) continue;
        auto key = std::make_pair(batch.schema, it->second.value());
        auto found = dedup.find(key);
        if (found != dedup.end() && found->second.arrival <= batch.arrival) {
          continue;
        }
        ResultItem item;
        item.value = it->second;
        item.schema = batch.schema;
        item.mapping_path_len = batch.mapping_path_len;
        item.confidence = batch.confidence;
        item.arrival = batch.arrival;
        dedup[key] = std::move(item);
      }
    }
    res.items.reserve(dedup.size());
    for (auto& [_, item] : dedup) res.items.push_back(std::move(item));
    std::sort(res.items.begin(), res.items.end(),
              [](const ResultItem& a, const ResultItem& b) {
                return a.arrival < b.arrival;
              });
    cb(std::move(res));
  });
}

void GridVinePeer::DispatchQuery(uint64_t qid, const TriplePatternQuery& query,
                                 NodeId reply_to, ReformulationMode mode,
                                 int ttl, std::vector<std::string> visited,
                                 int path_len, double confidence,
                                 bool sound_only) {
  auto routing = query.pattern().RoutingConstant();
  auto range_prefix = query.pattern().ObjectRangePrefix();
  // Routing-policy override (ablation): only the issuer's own dispatch.
  if (reply_to == id()) {
    auto it = pending_queries_.find(qid);
    if (it != pending_queries_.end() &&
        it->second.options.routing_position.has_value() &&
        query.pattern().IsExactConstant(
            *it->second.options.routing_position)) {
      routing = it->second.options.routing_position;
    }
  }
  if (!routing.has_value() && !range_prefix.has_value()) {
    // Cannot route an all-variable pattern: the branch dies silently; the
    // origin's timeout (or outstanding counter) handles it.
    auto it = pending_queries_.find(qid);
    if (it != pending_queries_.end() && reply_to == id()) {
      --it->second.outstanding;
      MaybeFinishIterative(qid);
    }
    return;
  }
  auto req = std::make_shared<QueryRequest>();
  req->query_id = qid;
  req->query = query.Serialize();
  req->reply_to = reply_to;
  req->mode = mode;
  req->ttl = ttl;
  req->visited_schemas = std::move(visited);
  req->mapping_path_len = path_len;
  req->confidence = confidence;
  req->sound_only = sound_only;
  if (routing.has_value()) {
    Key route_key = KeyFor(query.pattern().at(*routing).value());
    auto it2 = pending_queries_.find(qid);
    if (reply_to == id() && it2 != pending_queries_.end() &&
        !it2->second.closed) {
      // Issuer-side branch: track it and hand it to the retrying layer
      // instead of a single fire-and-forget send. The request object is
      // retained so a retry re-routes the identical payload.
      uint64_t did = next_dispatch_id_++;
      req->dispatch_id = did;
      it2->second.open_dispatches.emplace(did,
                                          OpenDispatch{req, route_key, 1});
      // Route may answer synchronously (origin responsible): emplace first.
      overlay_->Route(route_key, req);
      ArmDispatchTimer(qid, did, 1);
      return;
    }
    overlay_->Route(route_key, std::move(req));
    return;
  }
  // No exact constant, but a prefix-constrained literal ("Asp%..."): the
  // order-preserving hash maps the value range to a key-space subtree;
  // multicast the query there. The number of responders is unknown, so the
  // origin must collect until its window closes.
  auto it = pending_queries_.find(qid);
  if (it != pending_queries_.end() && reply_to == id()) {
    it->second.used_range_dispatch = true;
  }
  overlay_->RouteRange(hash_.SubtreeFor(*range_prefix), std::move(req));
}

void GridVinePeer::IterativeExpand(uint64_t qid,
                                   const TriplePatternQuery& query,
                                   std::set<std::string> /*visited*/,
                                   int depth, int path_len,
                                   double confidence) {
  auto it = pending_queries_.find(qid);
  if (it == pending_queries_.end() || it->second.closed) return;
  int max_hops = it->second.options.max_hops >= 0
                     ? it->second.options.max_hops
                     : options_.max_reformulation_hops;
  if (depth >= max_hops) return;

  ++it->second.outstanding;  // the mapping fetch itself
  FetchMappingsFor(
      query.SchemaName(),
      [this, qid, query, depth, path_len,
       confidence](Result<std::vector<SchemaMapping>> fetched) {
        auto it2 = pending_queries_.find(qid);
        if (it2 == pending_queries_.end() || it2->second.closed) return;
        PendingQuery& p = it2->second;
        --p.outstanding;
        if (fetched.ok()) {
          std::string schema = query.SchemaName();
          for (const SchemaMapping& m : OrientMappingsFrom(
                   schema, *fetched, p.options.sound_only)) {
            if (p.visited.count(m.target_schema())) continue;
            auto reformed = Reformulate(query, m);
            if (!reformed.ok()) continue;
            p.visited.insert(m.target_schema());
            ++p.reformulations;
            ++p.outstanding;
            DispatchQuery(qid, *reformed, id(), ReformulationMode::kIterative,
                          0, {}, path_len + 1, confidence * m.confidence(),
                          p.options.sound_only);
            IterativeExpand(qid, *reformed, {}, depth + 1, path_len + 1,
                            confidence * m.confidence());
          }
        }
        MaybeFinishIterative(qid);
      });
}

void GridVinePeer::ArmDispatchTimer(uint64_t qid, uint64_t did, int attempt) {
  SimTime timeout = options_.query_retry.TimeoutFor(attempt, &rng_);
  sim_->Schedule(timeout, [this, qid, did, attempt] {
    auto it = pending_queries_.find(qid);
    if (it == pending_queries_.end() || it->second.closed) return;
    auto d = it->second.open_dispatches.find(did);
    // Answered in the meantime, or a newer attempt owns the timer.
    if (d == it->second.open_dispatches.end() ||
        d->second.attempts != attempt) {
      return;
    }
    if (options_.query_retry.Exhausted(d->second.attempts)) {
      // Branch written off: close it so iterative completion need not wait
      // for the global query timeout.
      CloseDispatch(it->second, qid, did);
      return;
    }
    ++d->second.attempts;
    int next_attempt = d->second.attempts;
    Key route_key = d->second.route_key;
    std::shared_ptr<QueryRequest> req = d->second.req;
    // Route can resolve synchronously and erase the dispatch; do not touch
    // `d` past this point.
    overlay_->Route(route_key, std::move(req));
    ArmDispatchTimer(qid, did, next_attempt);
  });
}

void GridVinePeer::CloseDispatch(PendingQuery& p, uint64_t qid, uint64_t did) {
  p.open_dispatches.erase(did);
  bool iterative = !p.options.reformulate ||
                   p.options.mode == ReformulationMode::kIterative;
  if (iterative && !p.used_range_dispatch) {
    --p.outstanding;
    MaybeFinishIterative(qid);
  }
}

void GridVinePeer::MaybeFinishIterative(uint64_t qid) {
  auto it = pending_queries_.find(qid);
  if (it == pending_queries_.end() || it->second.closed) return;
  PendingQuery& p = it->second;
  if (p.used_range_dispatch) return;  // unknown responder count: wait out
  bool iterative = !p.options.reformulate ||
                   p.options.mode == ReformulationMode::kIterative;
  if (iterative && p.outstanding <= 0) FinishQuery(qid);
}

void GridVinePeer::FinishQuery(uint64_t qid) {
  auto it = pending_queries_.find(qid);
  if (it == pending_queries_.end() || it->second.closed) return;
  it->second.closed = true;
  PendingQuery p = std::move(it->second);
  pending_queries_.erase(it);
  p.on_finish(p);
}

// --- Message handling -------------------------------------------------------------

void GridVinePeer::OnExtensionMessage(
    NodeId /*origin*/, std::shared_ptr<const MessageBody> payload,
    int /*hops*/) {
  if (auto* req = dynamic_cast<const QueryRequest*>(payload.get())) {
    HandleQueryRequest(*req);
  } else if (auto* resp = dynamic_cast<const QueryResponse*>(payload.get())) {
    HandleQueryResponse(*resp);
  } else {
    GV_LOG(Warning) << "gridvine peer " << id() << ": unknown payload "
                    << payload->TypeTag().name();
  }
}

void GridVinePeer::HandleQueryRequest(const QueryRequest& req) {
  auto query = TriplePatternQuery::Parse(req.query);
  if (!query.ok()) {
    GV_LOG(Warning) << "bad query payload: " << query.status();
    return;
  }
  std::string schema = query->SchemaName();

  if (req.mode == ReformulationMode::kRecursive) {
    // A schema is processed once per query at any given peer.
    auto seen_key = std::make_pair(req.query_id, schema);
    if (recursive_seen_.count(seen_key)) return;
    recursive_seen_.insert(seen_key);
  }

  ++counters_.queries_answered;
  auto rows = local_db_.MatchPattern(query->pattern());
  auto resp = std::make_shared<QueryResponse>();
  resp->query_id = req.query_id;
  resp->dispatch_id = req.dispatch_id;
  resp->schema = schema;
  resp->rows = SerializeBindings(rows);
  resp->mapping_path_len = req.mapping_path_len;
  resp->confidence = req.confidence;
  resp->responder = id();
  overlay_->SendDirect(req.reply_to, std::move(resp));

  if (req.mode != ReformulationMode::kRecursive || req.ttl <= 0) return;

  // Recursive mode: this peer reformulates and forwards on behalf of the
  // issuer (paper Section 4, "successive reformulations are delegated to
  // intermediate peers").
  TriplePatternQuery q = std::move(query).value();
  auto visited = req.visited_schemas;
  if (std::find(visited.begin(), visited.end(), schema) == visited.end()) {
    visited.push_back(schema);
  }
  uint64_t qid = req.query_id;
  NodeId reply_to = req.reply_to;
  int ttl = req.ttl;
  int path_len = req.mapping_path_len;
  double confidence = req.confidence;
  bool sound_only = req.sound_only;
  FetchMappingsFor(
      schema, [this, q, visited, qid, reply_to, ttl, path_len, confidence,
               sound_only](Result<std::vector<SchemaMapping>> fetched) {
        if (!fetched.ok()) return;
        std::string schema = q.SchemaName();
        for (const SchemaMapping& m :
             OrientMappingsFrom(schema, *fetched, sound_only)) {
          if (std::find(visited.begin(), visited.end(),
                        m.target_schema()) != visited.end()) {
            continue;
          }
          auto reformed = Reformulate(q, m);
          if (!reformed.ok()) continue;
          ++counters_.reformulations_performed;
          auto next_visited = visited;
          next_visited.push_back(m.target_schema());
          DispatchQuery(qid, *reformed, reply_to,
                        ReformulationMode::kRecursive, ttl - 1, next_visited,
                        path_len + 1, confidence * m.confidence(),
                        sound_only);
        }
      });
}

void GridVinePeer::HandleQueryResponse(const QueryResponse& resp) {
  auto it = pending_queries_.find(resp.query_id);
  if (it == pending_queries_.end() || it->second.closed) return;
  PendingQuery& p = it->second;

  // A response for a tracked branch that is no longer open is a duplicate
  // (network duplication, or both the original and a retry answering):
  // every branch is accounted exactly once, so drop it here.
  if (resp.dispatch_id != 0 &&
      p.open_dispatches.find(resp.dispatch_id) == p.open_dispatches.end()) {
    return;
  }

  auto rows = ParseBindings(resp.rows);
  if (rows.ok()) {
    RowBatch batch;
    batch.schema = resp.schema;
    batch.mapping_path_len = resp.mapping_path_len;
    batch.confidence = resp.confidence;
    batch.arrival = sim_->Now() - p.started;
    batch.rows = std::move(rows).value();
    if (!batch.rows.empty() && p.first_result < 0) {
      p.first_result = batch.arrival;
    }
    p.schemas_answered.insert(resp.schema);
    if (p.options.on_answer) {
      p.options.on_answer(batch.schema, batch.rows.size(), batch.arrival);
    }
    p.batches.push_back(std::move(batch));
  }

  if (resp.dispatch_id != 0) {
    // CloseDispatch handles the outstanding-branch accounting (and may
    // complete the query).
    CloseDispatch(p, resp.query_id, resp.dispatch_id);
  } else {
    bool iterative = !p.options.reformulate ||
                     p.options.mode == ReformulationMode::kIterative;
    if (iterative && !p.used_range_dispatch) {
      --p.outstanding;
      MaybeFinishIterative(resp.query_id);
    }
  }
}

// --- Conjunctive queries ------------------------------------------------------------

void GridVinePeer::SearchForConjunctive(
    const ConjunctiveQuery& query, const QueryOptions& options,
    std::function<void(ConjunctiveResult)> cb) {
  Status valid = query.Validate();
  if (!valid.ok()) {
    ConjunctiveResult res;
    res.status = valid;
    cb(std::move(res));
    return;
  }

  // Sequentially resolve each pattern (cheapest first, join-connected where
  // possible — see query/planner.h); join binding sets as they arrive.
  struct State {
    ConjunctiveQuery query;
    std::vector<size_t> order;
    QueryOptions options;
    std::function<void(ConjunctiveResult)> cb;
    std::vector<BindingSet> acc;
    size_t next_pattern = 0;
    SimTime started = 0;
  };
  auto state = std::make_shared<State>();
  state->query = query;
  state->order = PlanConjunctive(query);
  state->options = options;
  state->cb = std::move(cb);
  state->started = sim_->Now();

  auto step = std::make_shared<std::function<void()>>();
  *step = [this, state, step]() {
    if (state->next_pattern >= state->query.patterns().size()) {
      ConjunctiveResult res;
      res.status = Status::OK();
      res.latency = sim_->Now() - state->started;
      // Restrict to distinguished variables, deduplicated.
      std::set<std::string> row_keys;
      for (const BindingSet& row : state->acc) {
        BindingSet restricted;
        for (const auto& var : state->query.distinguished_vars()) {
          auto it = row.find(var);
          if (it != row.end()) restricted[var] = it->second;
        }
        std::string key = SerializeBindings({restricted});
        if (row_keys.insert(key).second) {
          res.rows.push_back(std::move(restricted));
        }
      }
      state->cb(std::move(res));
      return;
    }

    const TriplePattern& pattern =
        state->query.patterns()[state->order[state->next_pattern]];
    ++state->next_pattern;
    // Pick any variable as the distinguished one; rows carry all bindings.
    auto vars = pattern.Variables();
    TriplePatternQuery sub(vars.empty() ? "none" : vars[0], pattern);
    if (!vars.empty() && sub.Validate().ok()) {
      StartQuery(sub, state->options, [this, state, step](PendingQuery& p) {
        // Union the rows of all batches (dedup by serialized form).
        std::vector<BindingSet> rows;
        std::set<std::string> seen;
        for (const RowBatch& batch : p.batches) {
          for (const BindingSet& row : batch.rows) {
            std::string key = SerializeBindings({row});
            if (seen.insert(key).second) rows.push_back(row);
          }
        }
        state->acc = state->next_pattern == 1
                         ? std::move(rows)
                         : TripleStore::Join(state->acc, rows);
        if (state->acc.empty()) {
          // Short-circuit: conjunction already empty.
          ConjunctiveResult res;
          res.status = Status::OK();
          res.latency = sim_->Now() - state->started;
          state->cb(std::move(res));
          return;
        }
        (*step)();
      });
    } else {
      // Fully constant pattern (existence check) is not supported in the
      // distributed engine; treat as unsatisfiable rather than guessing.
      ConjunctiveResult res;
      res.status = Status::NotImplemented(
          "conjunctive patterns must contain at least one variable");
      state->cb(std::move(res));
    }
  };
  (*step)();
}

}  // namespace gridvine
