#include "selforg/self_organizer.h"

#include <gtest/gtest.h>

#include "workload/bio_workload.h"

namespace gridvine {
namespace {

/// Live-network fixture: 8 peers, 5 schemas with data, schema i owned by
/// peer i. No mappings initially.
class SelfOrganizerTest : public ::testing::Test {
 protected:
  SelfOrganizerTest() : net_(NetOptions()), workload_(WorkloadOptions()) {}

  static GridVineNetwork::Options NetOptions() {
    GridVineNetwork::Options o;
    o.num_peers = 8;
    o.key_depth = 12;
    o.seed = 5;
    o.latency = GridVineNetwork::LatencyKind::kConstant;
    o.latency_param = 0.01;
    o.peer.query_timeout = 4.0;
    return o;
  }

  static BioWorkload::Options WorkloadOptions() {
    BioWorkload::Options o;
    o.num_schemas = 5;
    o.num_entities = 40;
    o.entities_per_schema = 16;
    o.min_attrs = 4;
    o.max_attrs = 6;
    o.value_noise = 0.0;
    o.seed = 21;
    return o;
  }

  static SelfOrganizer::Options OrgOptions() {
    SelfOrganizer::Options o;
    o.domain = "protein-sequences";
    o.creations_per_round = 3;
    o.seed = 9;
    return o;
  }

  void SetUp() override {
    for (size_t s = 0; s < workload_.schemas().size(); ++s) {
      ASSERT_TRUE(net_.InsertSchema(s, workload_.schemas()[s]).ok());
      for (const auto& t : workload_.TriplesFor(s)) {
        ASSERT_TRUE(net_.InsertTriple(s, t).ok());
      }
    }
    organizer_ = std::make_unique<SelfOrganizer>(&net_, OrgOptions());
    for (size_t s = 0; s < workload_.schemas().size(); ++s) {
      organizer_->RegisterSchemaOwner(workload_.schemas()[s].name(), s);
    }
  }

  GridVineNetwork net_;
  BioWorkload workload_;
  std::unique_ptr<SelfOrganizer> organizer_;
};

TEST_F(SelfOrganizerTest, IndicatorNegativeWithoutMappings) {
  ASSERT_TRUE(organizer_->PublishAllDegrees().ok());
  auto ci = organizer_->ComputeIndicator();
  ASSERT_TRUE(ci.ok()) << ci.status();
  // All degrees zero: ci = 0 at best; definitely not positive, and the
  // graph is certainly not strongly connected.
  EXPECT_LE(*ci, 0.0);
  EXPECT_LT(organizer_->BuildGraphView().LargestSccFraction(), 1.0);
}

TEST_F(SelfOrganizerTest, GraphViewSeesInsertedMappings) {
  ASSERT_TRUE(
      net_.InsertMapping(0, workload_.GroundTruthMapping(0, 1, "m01")).ok());
  MappingGraph g = organizer_->BuildGraphView();
  EXPECT_TRUE(g.Contains("m01"));
  EXPECT_EQ(g.active_mapping_count(), 1u);
}

TEST_F(SelfOrganizerTest, CreateMappingFindsCorrectCorrespondences) {
  auto created = organizer_->CreateMapping(workload_.schemas()[0].name(),
                                           workload_.schemas()[1].name());
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_GT(created->size(), 0u);
  // With shared instance references and name variants, the matcher should be
  // mostly right.
  EXPECT_GE(workload_.MappingPrecision(*created), 0.7)
      << created->Serialize();
  // And the mapping must now be discoverable in the network.
  auto fetched = net_.FetchMappingsFor(3, workload_.schemas()[0].name());
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 1u);
  EXPECT_EQ((*fetched)[0].id(), created->id());
}

TEST_F(SelfOrganizerTest, SampleValueSetsReflectData) {
  auto sets = organizer_->SampleValueSets(workload_.schemas()[0]);
  std::string organism_attr = workload_.AttributeFor(0, "organism");
  ASSERT_TRUE(sets.count(organism_attr));
  EXPECT_FALSE(sets.at(organism_attr).empty());
}

TEST_F(SelfOrganizerTest, CandidatePairsPreferUnlinkedSchemas) {
  ASSERT_TRUE(
      net_.InsertMapping(0, workload_.GroundTruthMapping(0, 1, "m01")).ok());
  MappingGraph g = organizer_->BuildGraphView();
  auto pairs = organizer_->SelectCandidatePairs(g, 100);
  for (const auto& [a, b] : pairs) {
    bool is_linked_pair =
        (a == workload_.schemas()[0].name() &&
         b == workload_.schemas()[1].name()) ||
        (a == workload_.schemas()[1].name() &&
         b == workload_.schemas()[0].name());
    EXPECT_FALSE(is_linked_pair);
  }
  // 5 schemas, 10 pairs, 1 linked -> 9 candidates.
  EXPECT_EQ(pairs.size(), 9u);
}

TEST_F(SelfOrganizerTest, RoundsDriveNetworkTowardInteroperability) {
  double last_scc = organizer_->BuildGraphView().LargestSccFraction();
  EXPECT_LT(last_scc, 1.0);
  size_t total_created = 0;
  double final_scc = last_scc;
  for (int round = 0; round < 6; ++round) {
    auto report = organizer_->RunRound();
    total_created += report.mappings_created;
    final_scc = report.scc_fraction_after;
    if (report.ci_after >= 0 && final_scc >= 1.0) break;
  }
  EXPECT_GT(total_created, 0u);
  // The mediation layer must reach (or approach) global interoperability.
  EXPECT_GE(final_scc, 0.8);
  auto ci = organizer_->ComputeIndicator();
  ASSERT_TRUE(ci.ok());
  EXPECT_GE(*ci, 0.0);
}

TEST_F(SelfOrganizerTest, CreateMappingFailsForUnknownSchema) {
  auto r = organizer_->CreateMapping("NoSuchSchema",
                                     workload_.schemas()[0].name());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
  auto r2 = organizer_->CreateMapping(workload_.schemas()[0].name(),
                                      "NoSuchSchema");
  EXPECT_TRUE(r2.status().IsNotFound());
}

TEST_F(SelfOrganizerTest, IndicatorBeforeAnyPublishIsNotFound) {
  auto ci = organizer_->ComputeIndicator();
  EXPECT_TRUE(ci.status().IsNotFound()) << ci.status();
}

TEST_F(SelfOrganizerTest, OwnerOfUnknownSchemaDefaultsToZero) {
  EXPECT_EQ(organizer_->OwnerOf("NoSuchSchema"), 0u);
  organizer_->RegisterSchemaOwner("X", 3);
  EXPECT_EQ(organizer_->OwnerOf("X"), 3u);
}

TEST_F(SelfOrganizerTest, ErroneousMappingGetsDeprecated) {
  // Correct mesh between all pairs except an injected erroneous mapping.
  const auto& schemas = workload_.schemas();
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (size_t j = i + 1; j < schemas.size(); ++j) {
      if (i == 1 && j == 2) continue;
      auto gt = workload_.GroundTruthMapping(
          i, j, "gt-" + std::to_string(i) + "-" + std::to_string(j));
      // Mark as automatic so the assessor evaluates everything.
      gt.set_provenance(MappingProvenance::kAutomatic);
      gt.set_confidence(0.7);
      ASSERT_TRUE(net_.InsertMapping(i, gt).ok());
    }
  }
  Rng rng(13);
  auto bad = workload_.ErroneousMapping(1, 2, "bad-1-2", &rng);
  ASSERT_TRUE(net_.InsertMapping(1, bad).ok());

  auto report = organizer_->RunRound();
  EXPECT_GE(report.mappings_deprecated, 1u);
  bool bad_deprecated = false;
  for (const auto& id : report.deprecated_ids) {
    if (id == "bad-1-2") bad_deprecated = true;
    // No correct mapping may be deprecated.
    EXPECT_EQ(id, "bad-1-2") << "false positive deprecation";
  }
  EXPECT_TRUE(bad_deprecated);

  // The deprecation must be visible network-wide.
  auto fetched = net_.FetchMappingsFor(4, schemas[1].name());
  ASSERT_TRUE(fetched.ok());
  for (const auto& m : *fetched) {
    if (m.id() == "bad-1-2") {
      EXPECT_TRUE(m.deprecated());
    }
  }
}

TEST_F(SelfOrganizerTest, LegacyModeDeprecatesErroneousMappingToo) {
  // Same scenario as ErroneousMappingGetsDeprecated, with the incremental
  // assessor disabled: the two assessment paths must reach the same
  // deprecation decisions.
  auto opts = OrgOptions();
  opts.incremental = false;
  organizer_ = std::make_unique<SelfOrganizer>(&net_, opts);
  const auto& schemas = workload_.schemas();
  for (size_t s = 0; s < schemas.size(); ++s) {
    organizer_->RegisterSchemaOwner(schemas[s].name(), s);
  }
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (size_t j = i + 1; j < schemas.size(); ++j) {
      if (i == 1 && j == 2) continue;
      auto gt = workload_.GroundTruthMapping(
          i, j, "gt-" + std::to_string(i) + "-" + std::to_string(j));
      gt.set_provenance(MappingProvenance::kAutomatic);
      gt.set_confidence(0.7);
      ASSERT_TRUE(net_.InsertMapping(i, gt).ok());
    }
  }
  Rng rng(13);
  ASSERT_TRUE(
      net_.InsertMapping(1, workload_.ErroneousMapping(1, 2, "bad-1-2", &rng))
          .ok());

  auto report = organizer_->RunRound();
  EXPECT_EQ(report.bp_messages, 0u);  // incremental machinery idle
  ASSERT_EQ(report.deprecated_ids.size(), 1u);
  EXPECT_EQ(report.deprecated_ids[0], "bad-1-2");
}

TEST_F(SelfOrganizerTest, IncrementalStateMatchesFreshRebuildAfterRounds) {
  // Live-network differential: after real rounds (creations, deprecations,
  // DHT round-trips) the maintained factor graph must equal what a fresh
  // assessor builds from the same view — no leaked or missing state.
  for (int round = 0; round < 3; ++round) organizer_->RunRound();

  MappingGraph copy = organizer_->graph_view();
  copy.SetListener(nullptr);
  IncrementalAssessor fresh(organizer_->assessor().options());
  fresh.Attach(&copy);
  EXPECT_EQ(organizer_->assessor().StructureDigest(), fresh.StructureDigest());
  EXPECT_EQ(organizer_->assessor().factor_count(), fresh.factor_count());
}

TEST_F(SelfOrganizerTest, RunContinuousAdvancesTimeAndOrganizes) {
  SimTime before = net_.Now();
  auto reports = organizer_->RunContinuous(4, 0.5);
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_GE(net_.Now(), before + 4 * 0.5);
  size_t created = 0;
  for (const auto& r : reports) created += r.mappings_created;
  EXPECT_GT(created, 0u);
  EXPECT_GE(reports.back().scc_fraction_after, 0.8);
  // The maintained factor graph tracks the created automatic mappings.
  // (Factors only appear once cycles form, which candidate selection avoids
  // early on — variables appear with the first automatic mapping.)
  EXPECT_GT(organizer_->assessor().variable_count(), 0u);
  for (const auto& r : reports) EXPECT_TRUE(r.bp_converged);
}

TEST_F(SelfOrganizerTest, SchemaEvolutionRepairedAndRecovered) {
  // Reach interoperability first.
  for (int round = 0; round < 6; ++round) {
    if (organizer_->RunRound().scc_fraction_after >= 1.0) break;
  }
  ASSERT_GE(organizer_->BuildGraphView().LargestSccFraction(), 0.8);

  // Schema 1 evolves: attribute renames invalidate the mappings that
  // reference the old URIs.
  Rng rng(7);
  auto ev = workload_.EvolveSchema(1, 0.6, &rng);
  ASSERT_FALSE(ev.renamed_uris.empty());
  ASSERT_TRUE(net_.UpsertSchema(1, ev.new_schema).ok());
  for (const auto& t : ev.removed_triples) {
    ASSERT_TRUE(net_.RemoveTriple(1, t).ok());
  }
  for (const auto& t : ev.added_triples) {
    ASSERT_TRUE(net_.InsertTriple(1, t).ok());
  }

  // Agreement maintenance: the next round deprecates the now-dangling
  // mappings...
  auto repair_report = organizer_->RunRound();
  EXPECT_GE(repair_report.mappings_stale_deprecated, 1u);
  const std::string evolved = ev.new_schema.name();
  for (const auto& id : repair_report.stale_deprecated_ids) {
    auto m = organizer_->graph_view().Get(id);
    ASSERT_TRUE(m.ok());
    EXPECT_TRUE(m->source_schema() == evolved || m->target_schema() == evolved)
        << id << " does not touch the evolved schema";
  }

  // ...and subsequent rounds re-derive mappings for the evolved schema,
  // restoring interoperability.
  double scc = repair_report.scc_fraction_after;
  for (int round = 0; round < 6 && scc < 1.0; ++round) {
    scc = organizer_->RunRound().scc_fraction_after;
  }
  EXPECT_GE(scc, 0.8);
  bool evolved_linked = false;
  MappingGraph g = organizer_->BuildGraphView();
  for (const auto& schema : g.Schemas()) {
    for (const auto& m : g.MappingsFrom(schema)) {
      if (m.source_schema() == evolved || m.target_schema() == evolved) {
        evolved_linked = true;
      }
    }
  }
  EXPECT_TRUE(evolved_linked);
}

TEST_F(SelfOrganizerTest, PublishesSelforgMetrics) {
  net_.AddMetricsSource(
      [this](MetricsRegistry* r) { organizer_->PublishMetrics(r); });
  organizer_->RunRound();
  auto& m = net_.CollectMetrics();
  EXPECT_GE(m.Counter("gv.selforg.rounds"), 1u);
  EXPECT_GT(m.Gauge("gv.selforg.bp.factors") +
                m.Gauge("gv.selforg.active_mappings"),
            0.0);
}

TEST_F(SelfOrganizerTest, EmbeddingChannelStillFindsCorrectMappings) {
  auto opts = OrgOptions();
  opts.matcher.embedding_weight = 0.25;
  opts.matcher.lexical_weight = 0.375;
  opts.matcher.value_weight = 0.375;
  organizer_ = std::make_unique<SelfOrganizer>(&net_, opts);
  const auto& schemas = workload_.schemas();
  for (size_t s = 0; s < schemas.size(); ++s) {
    organizer_->RegisterSchemaOwner(schemas[s].name(), s);
  }
  auto created =
      organizer_->CreateMapping(schemas[0].name(), schemas[1].name());
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_GE(workload_.MappingPrecision(*created), 0.7) << created->Serialize();
}

}  // namespace
}  // namespace gridvine
