#include "common/key.h"

#include <algorithm>

namespace gridvine {

Result<Key> Key::FromBits(const std::string& bits) {
  for (char c : bits) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("key bits must be '0'/'1', got: " + bits);
    }
  }
  return Key(bits);
}

Key Key::FromUint(uint64_t value, int num_bits) {
  if (num_bits < 0) num_bits = 0;
  if (num_bits > 64) num_bits = 64;
  std::string bits;
  bits.reserve(static_cast<size_t>(num_bits));
  for (int i = num_bits - 1; i >= 0; --i) {
    bits.push_back(((value >> i) & 1u) ? '1' : '0');
  }
  return Key(std::move(bits));
}

Key Key::WithBit(int b) const {
  std::string bits = bits_;
  bits.push_back(b ? '1' : '0');
  return Key(std::move(bits));
}

Key Key::Prefix(int n) const {
  n = std::clamp(n, 0, length());
  return Key(bits_.substr(0, static_cast<size_t>(n)));
}

Key Key::WithFlippedBit(int i) const {
  std::string bits = bits_;
  size_t idx = static_cast<size_t>(i);
  bits[idx] = bits[idx] == '1' ? '0' : '1';
  return Key(std::move(bits));
}

bool Key::IsPrefixOf(const Key& other) const {
  if (length() > other.length()) return false;
  return other.bits_.compare(0, bits_.size(), bits_) == 0;
}

int Key::CommonPrefixLength(const Key& other) const {
  int n = std::min(length(), other.length());
  int i = 0;
  while (i < n && bits_[static_cast<size_t>(i)] ==
                      other.bits_[static_cast<size_t>(i)]) {
    ++i;
  }
  return i;
}

double Key::ToFraction() const {
  double f = 0.0;
  double w = 0.5;
  for (char c : bits_) {
    if (c == '1') f += w;
    w *= 0.5;
  }
  return f;
}

}  // namespace gridvine
