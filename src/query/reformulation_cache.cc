#include "query/reformulation_cache.h"

namespace gridvine {

std::vector<ReformulatedQuery> ReformulationCache::Expand(
    const TriplePatternQuery& query, const MappingGraph& graph, int max_hops) {
  const Term& pred = query.pattern().predicate();
  if (!pred.IsUri()) return {};  // nothing to rewrite (matches ExpandQuery)

  TermId pid = predicate_ids_.Intern(pred);
  uint64_t key = (uint64_t(pid) << 32) | uint32_t(max_hops);

  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.graph_version == graph.version()) {
    ++hits_;
  } else {
    ++misses_;
    Entry entry;
    entry.graph_version = graph.version();
    for (const ReformulatedQuery& rq : ExpandQuery(query, graph, max_hops)) {
      entry.derivations.push_back(
          Derivation{rq.query.pattern().predicate().value(), rq.mapping_ids,
                     rq.schema, rq.confidence});
    }
    it = cache_.insert_or_assign(key, std::move(entry)).first;
  }
  const Entry& entry = it->second;

  // Re-apply the cached derivations to this query's concrete pattern: only
  // the predicate differs between expansions of the same (schema, predicate).
  std::vector<ReformulatedQuery> out;
  out.reserve(entry.derivations.size());
  for (const Derivation& d : entry.derivations) {
    ReformulatedQuery rq;
    rq.query = query.WithPattern(query.pattern().With(
        TriplePos::kPredicate, Term::Uri(d.predicate_uri)));
    rq.mapping_ids = d.mapping_ids;
    rq.schema = d.schema;
    rq.confidence = d.confidence;
    out.push_back(std::move(rq));
  }
  return out;
}

void ReformulationCache::Clear() {
  cache_.clear();
  predicate_ids_.Clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace gridvine
