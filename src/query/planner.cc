#include "query/planner.h"

#include <algorithm>
#include <climits>
#include <map>
#include <numeric>
#include <set>
#include <string>

namespace gridvine {

PatternCost ClassifyPattern(const TriplePattern& pattern) {
  if (pattern.IsExactConstant(TriplePos::kSubject)) {
    return PatternCost::kExactSubject;
  }
  if (pattern.IsExactConstant(TriplePos::kObject)) {
    return PatternCost::kExactObject;
  }
  if (pattern.IsExactConstant(TriplePos::kPredicate)) {
    return PatternCost::kExactPredicate;
  }
  if (pattern.ObjectRangePrefix().has_value()) return PatternCost::kRange;
  return PatternCost::kUnroutable;
}

namespace {

/// Orders one join-connected component's patterns: cheapest first, then
/// repeatedly the cheapest pattern sharing a variable with the prefix.
/// Within a connected component some remaining pattern is always adjacent
/// to the prefix, and connected (rank <= 4) beats unconnected (rank >= 10),
/// so the chain never breaks connectivity. Ties go to the lowest original
/// index, keeping plans byte-identical across runs and platforms.
std::vector<size_t> OrderComponent(const std::vector<TriplePattern>& patterns,
                                   std::vector<size_t> remaining) {
  std::vector<size_t> order;
  std::set<std::string> bound_vars;
  while (!remaining.empty()) {
    size_t best_slot = 0;
    int best_rank = INT_MAX;
    for (size_t slot = 0; slot < remaining.size(); ++slot) {
      const TriplePattern& p = patterns[remaining[slot]];
      bool connected = order.empty();
      for (const auto& var : p.Variables()) {
        if (bound_vars.count(var)) connected = true;
      }
      int rank = int(ClassifyPattern(p)) + (connected ? 0 : 10);
      if (rank < best_rank) {
        best_rank = rank;
        best_slot = slot;
      }
    }
    size_t chosen = remaining[best_slot];
    remaining.erase(remaining.begin() + ptrdiff_t(best_slot));
    order.push_back(chosen);
    for (const auto& var : patterns[chosen].Variables()) {
      bound_vars.insert(var);
    }
  }
  return order;
}

}  // namespace

PhysicalPlan PlanPhysical(const ConjunctiveQuery& query,
                          const PlanOptions& options) {
  const auto& patterns = query.patterns();
  const size_t n = patterns.size();

  // Union-find over shared variables: patterns sharing a variable join into
  // one component; a fully-constant pattern stays alone.
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&parent](size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  std::map<std::string, size_t> var_owner;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& var : patterns[i].Variables()) {
      auto [it, fresh] = var_owner.emplace(var, i);
      if (!fresh) parent[find(i)] = find(it->second);
    }
  }

  std::map<size_t, std::vector<size_t>> components;  // root -> members
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);

  struct Ranked {
    std::vector<size_t> order;
    int lead_cost;
    size_t lead_index;
  };
  std::vector<Ranked> ranked;
  for (auto& [root, members] : components) {
    Ranked r;
    r.order = OrderComponent(patterns, std::move(members));
    r.lead_cost = int(ClassifyPattern(patterns[r.order[0]]));
    r.lead_index = r.order[0];
    ranked.push_back(std::move(r));
  }
  // Groups run cheapest-lead first — the order the serial planner would
  // reach them in, so Order() matches the legacy contract.
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.lead_cost != b.lead_cost) return a.lead_cost < b.lead_cost;
    return a.lead_index < b.lead_index;
  });

  PhysicalPlan plan;
  for (Ranked& r : ranked) {
    PlanGroup g;
    g.patterns = std::move(r.order);
    const size_t lead = g.patterns[0];
    if (g.patterns.size() == 1 && patterns[lead].Variables().empty()) {
      g.steps.push_back({OpKind::kExistenceCheck, lead});
    } else {
      g.steps.push_back({OpKind::kRemoteScan, lead});
      g.steps.push_back({OpKind::kLocalJoin});
      for (size_t k = 1; k < g.patterns.size(); ++k) {
        if (options.bind_join) {
          g.steps.push_back({OpKind::kBindJoin, g.patterns[k]});
        } else {
          g.steps.push_back({OpKind::kRemoteScan, g.patterns[k]});
          g.steps.push_back({OpKind::kLocalJoin});
        }
      }
    }
    plan.groups.push_back(std::move(g));
  }
  for (size_t gi = 1; gi < plan.groups.size(); ++gi) {
    plan.tail.push_back({OpKind::kLocalJoin});
  }
  plan.tail.push_back({OpKind::kProject});
  plan.tail.push_back({OpKind::kDedup});
  return plan;
}

std::vector<size_t> PlanConjunctive(const ConjunctiveQuery& query) {
  return PlanPhysical(query).Order();
}

}  // namespace gridvine
