#ifndef GRIDVINE_COMMON_TRACE_H_
#define GRIDVINE_COMMON_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gridvine {

/// Causal trace context carried on every simulated message and delivery: the
/// trace (one user-visible operation) and the span that caused the carrier.
/// 16 bytes, trivially copyable — riding it on a message body or a Delivery
/// record costs two register copies and no allocation. A zero span_id means
/// "not traced" (the disabled-mode default).
struct TraceCtx {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

/// Records spans — named intervals of *simulated* time with a parent link
/// and key/value annotations — into a bounded ring buffer, and exports them
/// as Chrome trace_event JSON (loadable in chrome://tracing or Perfetto).
///
/// Contracts:
///   - Disabled (the default), every call is a cheap early-out and performs
///     no allocation; the send+delivery hot path stays zero-alloc.
///   - Span ids come from a plain counter, and no call draws from any Rng —
///     enabling tracing never perturbs a seeded run.
///   - The ring overwrites the oldest span once `capacity` is exceeded
///     (`evicted()` counts casualties); consistency checks require a
///     capacity that held the whole run.
///
/// Timestamps come from the clock callback (normally Simulator::Now via
/// SetClock); without one, spans sit at t = 0.
class Tracer {
 public:
  struct Annotation {
    std::string key;
    bool is_number = true;
    double number = 0;
    std::string text;
  };

  struct Span {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;  ///< 0 for a trace root
    std::string_view name;   ///< literal or interned — storage outlives us
    double start = 0;
    double end = -1;  ///< simulated seconds; -1 while open
    std::vector<Annotation> annotations;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The simulated-time source for span timestamps.
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }

  bool enabled() const { return enabled_; }
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  /// Drops every recorded span (enabled state and capacity kept).
  void Clear();

  /// Opens a root span: a new trace. Returns the invalid ctx when disabled.
  TraceCtx StartTrace(std::string_view name);
  /// Opens a child of `parent`; an invalid parent starts a new trace.
  TraceCtx StartSpan(std::string_view name, TraceCtx parent);
  void EndSpan(TraceCtx ctx);
  /// Zero-duration marker span (retries, drops observed elsewhere).
  TraceCtx Instant(std::string_view name, TraceCtx parent);

  void Annotate(TraceCtx ctx, std::string_view key, double value);
  void Annotate(TraceCtx ctx, std::string_view key, std::string_view value);

  size_t size() const { return ring_.size(); }
  uint64_t evicted() const { return evicted_; }

  /// The recorded spans, oldest first.
  std::vector<Span> Snapshot() const;

  /// Chrome trace_event JSON: one "X" (complete) event per span, ts/dur in
  /// microseconds of simulated time, tid = trace id, span/parent ids and
  /// annotations in args.
  std::string ToChromeJson() const;

 private:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  double Now() const { return clock_ ? clock_() : 0.0; }
  /// Slot for a live ctx, or nullptr (ended span evicted, or stale ctx).
  Span* Find(TraceCtx ctx);
  TraceCtx Open(std::string_view name, uint64_t trace_id, uint64_t parent_id);

  bool enabled_ = false;
  size_t capacity_ = kDefaultCapacity;
  uint64_t next_id_ = 1;
  uint64_t evicted_ = 0;
  std::vector<Span> ring_;
  size_t head_ = 0;  ///< next slot to overwrite once the ring is full
  /// span_id -> ring slot, for EndSpan/Annotate on spans still buffered.
  std::unordered_map<uint64_t, size_t> index_;
  std::function<double()> clock_;
};

/// Read-side helper over a span snapshot: per-trace counts and the
/// structural consistency invariant the chaos harness asserts.
class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(std::vector<Tracer::Span> spans);

  const std::vector<Tracer::Span>& spans() const { return spans_; }
  const Tracer::Span* Find(uint64_t span_id) const;

  /// Spans with this exact name (across all traces / within one trace).
  size_t CountNamed(std::string_view name) const;
  size_t CountNamed(std::string_view name, uint64_t trace_id) const;
  /// Spans still open (end < 0).
  size_t OpenCount() const;

  /// Structural invariants: unique span ids, every parent present with a
  /// smaller id (creation order — hence acyclic) and the same trace id.
  /// Returns the empty string when consistent, else a description of the
  /// first violation. Only meaningful when the tracer evicted nothing.
  std::string CheckConsistency() const;

 private:
  std::vector<Tracer::Span> spans_;
  std::unordered_map<uint64_t, size_t> by_id_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_TRACE_H_
