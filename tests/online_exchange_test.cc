#include "pgrid/online_exchange.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/hash.h"
#include "pgrid/maintenance.h"

namespace gridvine {
namespace {

/// A fully message-driven bootstrap: peers start with empty paths, their own
/// data, and a handful of seed contacts. No out-of-band construction at all.
struct BootstrapNet {
  explicit BootstrapNet(size_t n, uint64_t seed = 1,
                        size_t items_per_peer = 12)
      : net(&sim, std::make_unique<ConstantLatency>(0.02), Rng(seed)) {
    PGridPeer::Options popts;
    popts.key_depth = 8;
    OnlineExchangeAgent::Options xopts;
    xopts.period = 5.0;
    xopts.max_local_keys = 24;
    Rng data_rng(seed * 13);
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 31 + i), popts));
      peers.push_back(owned.back().get());
      agents.push_back(std::make_unique<OnlineExchangeAgent>(
          &sim, peers.back(), Rng(seed * 77 + i), xopts));
      for (size_t j = 0; j < items_per_peer; ++j) {
        Key k = UniformHash(
            "item-" + std::to_string(i) + "-" + std::to_string(j), 8);
        peers.back()->InsertLocal(k, "v" + std::to_string(i * 100 + j));
      }
    }
    // Seed contacts: a ring plus one long link — connected, sparse.
    for (size_t i = 0; i < n; ++i) {
      agents[i]->AddSeedContact(peers[(i + 1) % n]->id());
      agents[i]->AddSeedContact(peers[(i + n / 2) % n]->id());
    }
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  std::vector<std::unique_ptr<OnlineExchangeAgent>> agents;
};

TEST(OnlineExchangeTest, TwoPeersSplitOverMessages) {
  BootstrapNet b(2, 3, /*items_per_peer=*/20);  // joint 40 > 24: must split
  b.agents[0]->InitiateEncounter();
  b.sim.Run();
  // One of the two initiated an exchange that ended in a split.
  EXPECT_EQ(b.peers[0]->path().length(), 1);
  EXPECT_EQ(b.peers[1]->path().length(), 1);
  EXPECT_NE(b.peers[0]->path(), b.peers[1]->path());
  // Cross refs installed at level 0.
  EXPECT_EQ(b.peers[0]->routing()->RefsAt(0).size(), 1u);
  EXPECT_EQ(b.peers[1]->routing()->RefsAt(0).size(), 1u);
  // Data drained to the responsible side.
  for (auto* p : b.peers) {
    for (const auto& [k, v] : p->storage()) {
      EXPECT_TRUE(p->IsResponsibleFor(k)) << p->path() << " holds " << k;
    }
  }
}

TEST(OnlineExchangeTest, TwoLightPeersReplicate) {
  BootstrapNet b(2, 5, /*items_per_peer=*/4);  // joint 8 <= 24: replicate
  b.agents[0]->InitiateEncounter();
  b.sim.Run();
  EXPECT_TRUE(b.peers[0]->path().empty());
  EXPECT_TRUE(b.peers[1]->path().empty());
  EXPECT_EQ(b.peers[0]->routing()->replicas().size(), 1u);
  EXPECT_EQ(b.peers[1]->routing()->replicas().size(), 1u);
  // Content synchronized (union on both sides).
  EXPECT_EQ(b.peers[0]->StorageSize(), 8u);
  EXPECT_EQ(b.peers[1]->StorageSize(), 8u);
}

TEST(OnlineExchangeTest, NetworkSpecializesOverSimulatedTime) {
  BootstrapNet b(24, 7);
  for (auto& agent : b.agents) agent->Start();
  b.sim.RunUntil(600);
  for (auto& agent : b.agents) agent->Stop();

  size_t specialized = 0;
  for (auto* p : b.peers) {
    if (!p->path().empty()) ++specialized;
  }
  EXPECT_GT(specialized, b.peers.size() * 8 / 10)
      << specialized << "/" << b.peers.size();

  // Key space covered: every key has a responsible peer.
  for (uint64_t k = 0; k < 256; k += 9) {
    Key key = Key::FromUint(k, 8);
    bool covered = false;
    for (auto* p : b.peers) {
      if (p->IsResponsibleFor(key)) covered = true;
    }
    EXPECT_TRUE(covered) << key;
  }

  // All data sits at responsible peers (drained through commits).
  for (auto* p : b.peers) {
    for (const auto& [k, v] : p->storage()) {
      EXPECT_TRUE(p->IsResponsibleFor(k));
    }
  }
}

TEST(OnlineExchangeTest, FullyMessageDrivenBootstrapServesLookups) {
  BootstrapNet b(16, 11, /*items_per_peer=*/16);
  // Remember everything that was seeded.
  std::vector<std::pair<Key, std::string>> all;
  for (auto* p : b.peers) {
    for (const auto& [k, v] : p->storage()) all.emplace_back(k, v);
  }
  // Exchange (construction) + maintenance (ref health) together.
  std::vector<std::unique_ptr<MaintenanceAgent>> maint;
  MaintenanceAgent::Options mopts;
  mopts.period = 20.0;
  for (auto* p : b.peers) {
    maint.push_back(
        std::make_unique<MaintenanceAgent>(&b.sim, p, Rng(900 + p->id()), mopts));
    maint.back()->Start();
  }
  for (auto& agent : b.agents) agent->Start();
  b.sim.RunUntil(900);

  size_t found = 0, probed = 0;
  for (size_t i = 0; i < all.size(); i += 5) {
    ++probed;
    bool done = false, got = false;
    const auto& [key, value] = all[i];
    b.peers[i % b.peers.size()]->Retrieve(
        key, [&](Result<PGridPeer::LookupResult> r) {
          done = true;
          if (!r.ok()) return;
          for (const auto& v : r->values) {
            if (v == value) got = true;
          }
        });
    while (!done && b.sim.pending() > 0) b.sim.Run(1);
    if (got) ++found;
  }
  // The vast majority of seeded data must be findable through the overlay
  // that was built purely from messages.
  EXPECT_GE(found, probed * 9 / 10) << found << "/" << probed;
}

}  // namespace
}  // namespace gridvine
