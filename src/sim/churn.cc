#include "sim/churn.h"

#include <algorithm>

namespace gridvine {

bool ChurnModel::IsPinned(NodeId id) const {
  return std::find(options_.pinned.begin(), options_.pinned.end(), id) !=
         options_.pinned.end();
}

void ChurnModel::Start() {
  running_ = true;
  for (NodeId id = 0; id < network_->size(); ++id) {
    if (IsPinned(id)) continue;
    ScheduleNext(id, /*currently_alive=*/true);
  }
}

void ChurnModel::ScheduleNext(NodeId id, bool currently_alive) {
  double mean = currently_alive ? options_.mean_session_seconds
                                : options_.mean_downtime_seconds;
  double delay = rng_.Exponential(1.0 / std::max(mean, 1e-9));
  sim_->Schedule(delay, [this, id, currently_alive]() {
    if (!running_) return;
    bool next_alive = !currently_alive;
    network_->SetAlive(id, next_alive);
    ++transitions_;
    // Listener runs after the flip: a rejoin handler can send right away.
    if (listener_) listener_(id, next_alive);
    ScheduleNext(id, next_alive);
  });
}

}  // namespace gridvine
