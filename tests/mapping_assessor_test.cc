#include "selforg/mapping_assessor.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

/// Builds a mapping with per-attribute correspondences given as local-name
/// pairs, e.g. {{"x", "x"}, {"y", "y"}} for an identity-style mapping.
SchemaMapping M(const std::string& id, const std::string& src,
                const std::string& dst,
                const std::vector<std::pair<std::string, std::string>>& corr,
                MappingProvenance prov = MappingProvenance::kAutomatic) {
  SchemaMapping m(id, src, dst);
  m.set_provenance(prov);
  for (const auto& [s, d] : corr) {
    EXPECT_TRUE(m.AddCorrespondence(src + "#" + s, dst + "#" + d).ok());
  }
  return m;
}

const std::vector<std::pair<std::string, std::string>> kIdentity = {
    {"organism", "organism"}, {"length", "length"}, {"gene", "gene"}};
// Swaps organism and gene: composing around a cycle will not return home.
const std::vector<std::pair<std::string, std::string>> kSwapped = {
    {"organism", "gene"}, {"length", "length"}, {"gene", "organism"}};

TEST(CycleCheckTest, ConsistentTriangle) {
  MappingGraph g;
  g.AddMapping(M("ab", "A", "B", kIdentity));
  g.AddMapping(M("bc", "B", "C", kIdentity));
  g.AddMapping(M("ca", "C", "A", kIdentity));
  MappingAssessor assessor;
  auto obs = assessor.CheckCycle(g, {"ab", "bc", "ca"});
  EXPECT_EQ(obs.attributes_checked, 3);
  EXPECT_TRUE(obs.consistent);
}

TEST(CycleCheckTest, InconsistentTriangle) {
  MappingGraph g;
  g.AddMapping(M("ab", "A", "B", kIdentity));
  g.AddMapping(M("bc", "B", "C", kSwapped));
  g.AddMapping(M("ca", "C", "A", kIdentity));
  MappingAssessor assessor;
  auto obs = assessor.CheckCycle(g, {"ab", "bc", "ca"});
  EXPECT_EQ(obs.attributes_checked, 3);
  // organism and gene come back swapped; only length survives: 1/3 < half.
  EXPECT_FALSE(obs.consistent);
}

TEST(CycleCheckTest, BrokenChainYieldsNoEvidence) {
  MappingGraph g;
  g.AddMapping(M("ab", "A", "B", kIdentity));
  g.AddMapping(M("cd", "C", "D", kIdentity));
  MappingAssessor assessor;
  auto obs = assessor.CheckCycle(g, {"ab", "cd"});
  EXPECT_EQ(obs.attributes_checked, 0);
}

TEST(CycleCheckTest, PartialCorrespondenceDropsAttributes) {
  MappingGraph g;
  g.AddMapping(M("ab", "A", "B", kIdentity));
  g.AddMapping(M("bc", "B", "C", {{"organism", "organism"}}));
  g.AddMapping(M("ca", "C", "A", {{"organism", "organism"}}));
  MappingAssessor assessor;
  auto obs = assessor.CheckCycle(g, {"ab", "bc", "ca"});
  EXPECT_EQ(obs.attributes_checked, 1);  // only organism chains through
  EXPECT_TRUE(obs.consistent);
}

TEST(CycleCheckTest, UsesBidirectionalEdgesBackwards) {
  MappingGraph g;
  auto ab = M("ab", "A", "B", kIdentity);
  auto ab2 = M("ab2", "A", "B", kIdentity);
  ab2.set_bidirectional(true);
  g.AddMapping(ab);
  g.AddMapping(ab2);
  MappingAssessor assessor;
  // Forward over ab, backward over ab2.
  auto obs = assessor.CheckCycle(g, {"ab", "ab2"});
  EXPECT_EQ(obs.attributes_checked, 3);
  EXPECT_TRUE(obs.consistent);
}

class AssessorTest : public ::testing::Test {
 protected:
  /// Four schemas fully cross-linked with correct mappings plus one bad
  /// apple: every correct mapping participates in consistent 2-cycles, the
  /// bad one makes its cycles inconsistent.
  void BuildRichGraph(bool include_bad) {
    const std::vector<std::string> schemas = {"A", "B", "C", "D"};
    for (size_t i = 0; i < schemas.size(); ++i) {
      for (size_t j = 0; j < schemas.size(); ++j) {
        if (i == j) continue;
        std::string id = schemas[i] + schemas[j];
        if (include_bad && id == "BC") {
          graph_.AddMapping(M(id, schemas[i], schemas[j], kSwapped));
        } else {
          graph_.AddMapping(M(id, schemas[i], schemas[j], kIdentity));
        }
      }
    }
  }
  MappingGraph graph_;
};

TEST_F(AssessorTest, AllCorrectMappingsGetHighPosterior) {
  BuildRichGraph(/*include_bad=*/false);
  MappingAssessor assessor;
  auto assessment = assessor.Assess(graph_);
  ASSERT_EQ(assessment.posterior.size(), 12u);
  for (const auto& [id, p] : assessment.posterior) {
    EXPECT_GT(p, 0.9) << id;
  }
  EXPECT_FALSE(assessment.observations.empty());
}

TEST_F(AssessorTest, BadMappingGetsLowestPosterior) {
  BuildRichGraph(/*include_bad=*/true);
  MappingAssessor assessor;
  auto assessment = assessor.Assess(graph_);
  double bad = assessment.posterior.at("BC");
  for (const auto& [id, p] : assessment.posterior) {
    if (id != "BC") {
      EXPECT_GT(p, bad) << id << " should outrank the erroneous mapping";
    }
  }
  EXPECT_LT(bad, 0.45);
  // Correct mappings must stay above the deprecation line despite sharing
  // inconsistent cycles with the bad one.
  for (const auto& [id, p] : assessment.posterior) {
    if (id != "BC") EXPECT_GT(p, 0.5) << id;
  }
}

TEST_F(AssessorTest, ManualMappingsAreNotAssessed) {
  graph_.AddMapping(M("ab", "A", "B", kIdentity, MappingProvenance::kManual));
  graph_.AddMapping(M("ba", "B", "A", kIdentity));
  MappingAssessor assessor;
  auto assessment = assessor.Assess(graph_);
  EXPECT_EQ(assessment.posterior.count("ab"), 0u);
  EXPECT_EQ(assessment.posterior.count("ba"), 1u);
  // The automatic one benefits from the consistent cycle with the manual.
  EXPECT_GT(assessment.posterior.at("ba"), 0.7);
}

TEST_F(AssessorTest, MappingWithoutCyclesKeepsPrior) {
  auto lone = M("xy", "X", "Y", kIdentity);
  lone.set_confidence(0.66);
  graph_.AddMapping(lone);
  MappingAssessor assessor;
  auto assessment = assessor.Assess(graph_);
  EXPECT_NEAR(assessment.posterior.at("xy"), 0.66, 1e-9);
}

TEST_F(AssessorTest, DeprecatedMappingsExcluded) {
  BuildRichGraph(false);
  graph_.Deprecate("AB");
  MappingAssessor assessor;
  auto assessment = assessor.Assess(graph_);
  EXPECT_EQ(assessment.posterior.count("AB"), 0u);
}

TEST_F(AssessorTest, CycleLengthCapHonored) {
  // Only a 3-cycle exists; with max_cycle_len = 2 no evidence is found.
  graph_.AddMapping(M("ab", "A", "B", kIdentity));
  graph_.AddMapping(M("bc", "B", "C", kIdentity));
  graph_.AddMapping(M("ca", "C", "A", kIdentity));
  MappingAssessor::Options opts;
  opts.max_cycle_len = 2;
  MappingAssessor assessor(opts);
  auto assessment = assessor.Assess(graph_);
  EXPECT_TRUE(assessment.observations.empty());
}

}  // namespace
}  // namespace gridvine
