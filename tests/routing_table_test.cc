#include "pgrid/routing_table.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

Key K(const std::string& bits) { return Key::FromBits(bits).value(); }

TEST(RoutingTableTest, SetPathSizesLevels) {
  RoutingTable rt(2);
  EXPECT_EQ(rt.levels(), 0);
  rt.SetPath(K("0101"));
  EXPECT_EQ(rt.levels(), 4);
  EXPECT_EQ(rt.path(), K("0101"));
}

TEST(RoutingTableTest, AddRefRespectsCapAndDedup) {
  RoutingTable rt(2);
  rt.SetPath(K("00"));
  EXPECT_TRUE(rt.AddRef(0, 1));
  EXPECT_FALSE(rt.AddRef(0, 1));  // duplicate
  EXPECT_TRUE(rt.AddRef(0, 2));
  EXPECT_FALSE(rt.AddRef(0, 3));  // over cap
  EXPECT_EQ(rt.RefsAt(0).size(), 2u);
  EXPECT_FALSE(rt.AddRef(5, 9));  // out of range
  EXPECT_FALSE(rt.AddRef(-1, 9));
  EXPECT_EQ(rt.TotalRefs(), 2u);
}

TEST(RoutingTableTest, RemoveRefEverywhere) {
  RoutingTable rt(4);
  rt.SetPath(K("00"));
  rt.AddRef(0, 7);
  rt.AddRef(1, 7);
  rt.AddRef(1, 8);
  rt.RemoveRef(7);
  EXPECT_TRUE(rt.RefsAt(0).empty());
  EXPECT_EQ(rt.RefsAt(1).size(), 1u);
}

TEST(RoutingTableTest, DivergenceLevel) {
  RoutingTable rt(2);
  rt.SetPath(K("0101"));
  EXPECT_EQ(rt.DivergenceLevel(K("1000")), 0);
  EXPECT_EQ(rt.DivergenceLevel(K("0001")), 1);
  EXPECT_EQ(rt.DivergenceLevel(K("0111")), 2);
  EXPECT_EQ(rt.DivergenceLevel(K("0100")), 3);
  // Keys in our subtree (path prefixes key) => path length.
  EXPECT_EQ(rt.DivergenceLevel(K("01010")), 4);
  EXPECT_EQ(rt.DivergenceLevel(K("0101")), 4);
  // Short key that prefixes the path is also "ours".
  EXPECT_EQ(rt.DivergenceLevel(K("01")), 4);
}

TEST(RoutingTableTest, NextHopPicksDivergenceLevelRef) {
  RoutingTable rt(2);
  rt.SetPath(K("0101"));
  rt.AddRef(0, 10);
  rt.AddRef(2, 20);
  Rng rng(1);
  auto hop = rt.NextHop(K("1111"), &rng);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 10u);
  hop = rt.NextHop(K("0110"), &rng);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 20u);
}

TEST(RoutingTableTest, NextHopNulloptForOwnSubtreeOrMissingRef) {
  RoutingTable rt(2);
  rt.SetPath(K("0101"));
  rt.AddRef(0, 10);
  Rng rng(1);
  EXPECT_FALSE(rt.NextHop(K("01011"), &rng).has_value());  // local
  EXPECT_FALSE(rt.NextHop(K("0001"), &rng).has_value());   // no ref at lvl 1
}

TEST(RoutingTableTest, NextHopAvoidsExcludedWhenPossible) {
  RoutingTable rt(4);
  rt.SetPath(K("0"));
  rt.AddRef(0, 1);
  rt.AddRef(0, 2);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto hop = rt.NextHop(K("1"), &rng, /*exclude=*/1);
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(*hop, 2u);
  }
  // When the excluded ref is the only one, it is still used.
  RoutingTable rt2(4);
  rt2.SetPath(K("0"));
  rt2.AddRef(0, 1);
  auto hop = rt2.NextHop(K("1"), &rng, /*exclude=*/1);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 1u);
}

TEST(RoutingTableTest, ReplicaSetDedupAndRemove) {
  RoutingTable rt(2);
  rt.SetPath(K("01"));
  rt.AddReplica(5);
  rt.AddReplica(5);
  rt.AddReplica(6);
  EXPECT_EQ(rt.replicas().size(), 2u);
  rt.RemoveReplica(5);
  EXPECT_EQ(rt.replicas().size(), 1u);
  EXPECT_EQ(rt.replicas()[0], 6u);
}

}  // namespace
}  // namespace gridvine
