// Experiment A3 — the reliable request layer under injected faults (paper
// Section 2.1: Retrieve/Update "provide probabilistic guarantees ... even in
// highly unreliable, dynamic environments").
//
// 64 peers (two replicas per region), routing-table maintenance on, active
// churn, and a lossy wire. For each loss level we run the same 400-lookup
// workload twice: with the retry/failover layer enabled (capped exponential
// backoff, alternate-route failover) and with it clamped to a single
// attempt — the fire-and-forget baseline. The headline number is recall
// (lookups returning the planted value); the acceptance bar for this repo is
// retries-on recall >= 2x retries-off at 10% loss under churn.
//
// A second scenario layers a FaultPlan on top — a loss burst, a partition, a
// latency spike, duplication — and reports the network's per-cause drop
// attribution, exercising the same counters the chaos soak test pins.
//
//   $ ./bench/bench_fault

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "common/stats.h"
#include "sim/churn.h"
#include "sim/fault_plan.h"
#include "pgrid/maintenance.h"
#include "pgrid/pgrid_builder.h"

using namespace gridvine;

namespace {

struct Trial {
  double recall = 0;
  double mean_rtt = 0;
  double mean_hops = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  NetworkStats stats;
};

Trial Run(double loss, double offline_fraction, bool retries_on,
          bool chaos_windows, int queries, uint64_t seed) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.03), Rng(seed), loss);
  PGridPeer::Options popts;
  popts.key_depth = 10;
  popts.retry.base_timeout = 1.5;
  popts.retry.max_attempts = retries_on ? 6 : 1;
  popts.retry.max_timeout = 12.0;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  // 96 peers over 64 six-bit regions: regions 0..31 get two replicas, the
  // rest one. The workload targets the replicated half so the failover path
  // (retry reaching the live member of σ(p)) has something to reach.
  for (int i = 0; i < 96; ++i) {
    owned.push_back(
        std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 131 + i), popts));
    peers.push_back(owned.back().get());
  }
  Rng build_rng(seed + 1);
  PGridBuilder::BuildBalanced(peers, &build_rng, /*refs_per_level=*/4);

  MaintenanceAgent::Options mopts;
  mopts.period = 12.0;
  mopts.probe_timeout = 1.0;
  std::vector<std::unique_ptr<MaintenanceAgent>> agents;
  for (auto* p : peers) {
    agents.push_back(std::make_unique<MaintenanceAgent>(
        &sim, p, Rng(seed * 7 + p->id()), mopts));
    agents.back()->Start();
  }

  // One entry per queried region, present on every replica of the region.
  // Key k*16 has top six bits == k: region k exactly.
  for (uint64_t k = 0; k < 32; ++k) {
    Key key = Key::FromUint(k * 16, 10);
    for (auto* p : peers) {
      if (p->path().IsPrefixOf(key)) p->InsertLocal(key, "v");
    }
  }

  if (chaos_windows) {
    auto plan = std::make_unique<FaultPlan>();
    FaultPlan::LossBurst burst;
    burst.start = 300.0;
    burst.end = 340.0;
    burst.probability = 0.7;
    plan->AddLossBurst(burst);
    FaultPlan::Partition part;  // first 16 peers cut from the rest
    part.start = 800.0;
    part.end = 840.0;
    for (auto* p : peers) {
      (p->id() < 16 ? part.group_a : part.group_b).push_back(p->id());
    }
    plan->AddPartition(part);
    FaultPlan::LatencySpike spike;
    spike.start = 1200.0;
    spike.end = 1220.0;
    spike.extra = 0.3;
    spike.extra_mean_tail = 0.1;
    plan->AddLatencySpike(spike);
    plan->set_duplicate_probability(0.05);
    net.SetFaultPlan(std::move(plan));
  }

  ChurnModel::Options copts;
  copts.mean_session_seconds = 60;
  copts.mean_downtime_seconds =
      offline_fraction <= 0
          ? 0.001
          : 60 * offline_fraction / (1 - offline_fraction);
  copts.pinned = {peers[0]->id()};
  ChurnModel churn(&sim, &net, Rng(seed + 5), copts);
  if (offline_fraction > 0) churn.Start();

  SampleStats rtt, hops;
  size_t ok = 0;
  for (int q = 0; q < queries; ++q) {
    sim.RunUntil(sim.Now() + 5);
    Key key = Key::FromUint(uint64_t(q % 32) * 16, 10);
    bool done = false, got = false;
    peers[0]->Retrieve(key, [&](Result<PGridPeer::LookupResult> r) {
      done = true;
      if (r.ok() && !r->values.empty()) {
        got = true;
        rtt.Add(r->rtt);
        hops.Add(double(r->hops));
      }
    });
    while (!done && sim.pending() > 0) sim.Run(1);
    if (got) ++ok;
  }
  churn.Stop();
  for (auto& a : agents) a->Stop();  // else periodic rounds never drain
  sim.Run();  // drain: outstanding requests resolve by answer or timeout

  Trial t;
  t.recall = double(ok) / queries;
  t.mean_rtt = rtt.Mean();
  t.mean_hops = hops.Mean();
  for (auto* p : peers) {
    t.retries += p->counters().retries;
    t.failovers += p->counters().failovers;
  }
  t.stats = net.stats();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_fault");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const int queries = quick ? 120 : 400;
  const double offline = 0.30;

  std::printf("A3: reliable requests under loss + churn (96 peers, offline "
              "fraction %.0f%%, %d lookups/cell)\n\n", offline * 100, queries);
  std::printf("  %-12s | %-36s | %-36s\n", "", "retries ON (<=6 attempts)",
              "retries OFF (single attempt)");
  std::printf("  %-12s | %9s %9s %7s %7s | %9s %9s\n", "loss", "recall",
              "rtt(s)", "retries", "failov", "recall", "rtt(s)");

  std::vector<double> losses = quick ? std::vector<double>{0.10}
                                     : std::vector<double>{0.05, 0.10, 0.20};
  for (double loss : losses) {
    Trial on = Run(loss, offline, /*retries_on=*/true,
                   /*chaos_windows=*/false, queries, 42);
    Trial off = Run(loss, offline, /*retries_on=*/false,
                    /*chaos_windows=*/false, queries, 42);
    std::printf("  %-11.0f%% | %8.1f%% %9.3f %7llu %7llu | %8.1f%% %9.3f\n",
                loss * 100, on.recall * 100, on.mean_rtt,
                (unsigned long long)on.retries,
                (unsigned long long)on.failovers, off.recall * 100,
                off.mean_rtt);
    std::string row = "loss_" + std::to_string(int(loss * 100));
    json.Add(row + "/retries_on",
             {{"recall", on.recall},
              {"mean_rtt_s", on.mean_rtt},
              {"mean_hops", on.mean_hops},
              {"retries", double(on.retries)},
              {"failovers", double(on.failovers)}});
    json.Add(row + "/retries_off",
             {{"recall", off.recall},
              {"mean_rtt_s", off.mean_rtt},
              {"mean_hops", off.mean_hops}});
    if (loss == 0.10) {
      double ratio = off.recall > 0 ? on.recall / off.recall : 0;
      json.Add("loss_10/improvement", {{"recall_ratio", ratio}});
      std::printf("  -> 10%% loss recall ratio on/off: %.2fx (acceptance: "
                  ">= 2x)\n", ratio);
    }
  }

  // Chaos scenario: every fault type at once; report where drops went.
  Trial chaos = Run(0.08, offline, /*retries_on=*/true, /*chaos_windows=*/true,
                    queries, 42);
  const NetworkStats& s = chaos.stats;
  std::printf("\n  chaos cell (8%% loss + burst + partition + spike + 5%% "
              "duplication):\n");
  std::printf("    recall %.1f%%; drops by cause: endpoint %llu, loss %llu, "
              "burst %llu, partition %llu; duplicated %llu\n",
              chaos.recall * 100, (unsigned long long)s.drops_endpoint,
              (unsigned long long)s.drops_loss,
              (unsigned long long)s.drops_burst,
              (unsigned long long)s.drops_partition,
              (unsigned long long)s.messages_duplicated);
  json.Add("chaos/drop_attribution",
           {{"recall", chaos.recall},
            {"drops_endpoint", double(s.drops_endpoint)},
            {"drops_loss", double(s.drops_loss)},
            {"drops_burst", double(s.drops_burst)},
            {"drops_partition", double(s.drops_partition)},
            {"duplicated", double(s.messages_duplicated)},
            {"sent", double(s.messages_sent)},
            {"delivered", double(s.messages_delivered)},
            {"dropped", double(s.messages_dropped)}});
  json.Finish();
  std::printf("\n  expectation: backoff+failover recovers most losses "
              "(recall stays high) at bounded\n  extra traffic; the "
              "single-attempt baseline degrades linearly with wire loss.\n");
  return 0;
}
