// Bind-join pushdown vs collect-then-join on a skewed selective-join
// workload: a handful of "gadget" entities (the selective pattern) joined
// against a wide w:size extent every entity contributes to. Collect mode
// ships the full extent of every pattern to the issuer; bind-join ships the
// running join's distinct keys out and only the matching rows back, so rows
// shipped should drop by the extent/selectivity ratio (the PR acceptance
// floor is 3x) and the message count should fall with it (one batched probe
// dispatch per destination key region instead of per-extent responses).
//
//   $ ./bench/bench_conjunctive
//   $ GV_ENTITIES=100 GV_QUERIES=8 ./bench/bench_conjunctive   # quicker
//   $ GV_BENCH_QUICK=1 ./bench/bench_conjunctive               # CI smoke
//
// Every query is also checked differentially: both modes must return the
// same result set, or the bench aborts.
//
// The second half is the Zipf skew sweep: predicate extents drawn from a
// Zipf(s) size distribution, queried greedy vs cost-based vs adaptive. The
// greedy heuristic cannot tell the hot extent from a cold one of the same
// pattern shape, so it leads every join with the hot extent; the cost-based
// planner leads with the cold one from fetched sketches (acceptance floor:
// 2x fewer rows+bytes at equal recall). A drift phase then grows cold
// extents under the static planner's stale sketches — adaptive
// re-optimization plus observed-cardinality feedback must recover while
// static cost-based keeps paying for its stale choice.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "trace_stats.h"
#include "gridvine/gridvine_network.h"
#include "pgrid/load_stats.h"
#include "query/stats/sketch.h"
#include "store/binding_codec.h"

using namespace gridvine;

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? size_t(std::strtoull(v, nullptr, 10)) : fallback;
}

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

/// Skewed store: every entity has a w:size (the wide extent); one in
/// `selectivity` is a gadget (the selective extent); gadgets link around.
std::vector<Triple> MakeTriples(size_t entities, size_t selectivity,
                                Rng* rng) {
  std::vector<Triple> triples;
  for (size_t e = 0; e < entities; ++e) {
    Term subj = Term::Uri("w:e" + std::to_string(e));
    const bool gadget = e % selectivity == 0;
    triples.emplace_back(subj, Term::Uri("w:type"),
                         Term::Literal(gadget ? "gadget" : "widget"));
    triples.emplace_back(
        subj, Term::Uri("w:size"),
        Term::Literal(std::to_string(rng->UniformInt(1, 9))));
    if (gadget) {
      triples.emplace_back(
          subj, Term::Uri("w:link"),
          Term::Uri("w:e" + std::to_string(
                                rng->UniformInt(0, int64_t(entities) - 1))));
    }
  }
  return triples;
}

std::vector<ConjunctiveQuery> MakeQueries() {
  return {
      // Selective type pattern drives a bind-join into the wide size extent.
      ConjunctiveQuery(
          {"x", "l"},
          {P(Term::Var("x"), Term::Uri("w:type"), Term::Literal("gadget")),
           P(Term::Var("x"), Term::Uri("w:size"), Term::Var("l"))}),
      // Two hops: gadgets, their links, and the link targets' sizes.
      ConjunctiveQuery(
          {"x", "y", "l"},
          {P(Term::Var("x"), Term::Uri("w:type"), Term::Literal("gadget")),
           P(Term::Var("x"), Term::Uri("w:link"), Term::Var("y")),
           P(Term::Var("y"), Term::Uri("w:size"), Term::Var("l"))}),
      // No entity is a gizmo: binding propagation short-circuits after the
      // first scan and never dispatches into the wide size extent, while
      // collect mode ships the whole extent before discovering the join is
      // empty — the message-count gap of the two strategies.
      ConjunctiveQuery(
          {"x", "l"},
          {P(Term::Var("x"), Term::Uri("w:type"), Term::Literal("gizmo")),
           P(Term::Var("x"), Term::Uri("w:size"), Term::Var("l"))}),
  };
}

struct ModeStats {
  uint64_t rows_shipped = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double latency_sum = 0;
  size_t queries = 0;
  std::vector<std::set<std::string>> row_sets;
  std::vector<size_t> hops;     ///< per-query message flights, from traces
  std::vector<size_t> retries;  ///< per-query retry markers, from traces
  gridvine::bench::CriticalPathAgg cp;  ///< latency attribution, from traces

  double MeanLatency() const {
    return queries == 0 ? 0 : latency_sum / double(queries);
  }
};

/// One full deployment + query run in the given mode. Same seed → identical
/// overlay, placement and data in both modes; only the executor differs.
ModeStats RunMode(bool bind_join, size_t entities, size_t selectivity,
                  size_t rounds, uint64_t seed) {
  GridVineNetwork::Options options;
  options.num_peers = 24;
  options.key_depth = 12;
  options.seed = seed;
  GridVineNetwork net(options);

  Rng data_rng(seed * 31 + 7);
  if (!net.InsertTriples(0, MakeTriples(entities, selectivity, &data_rng))
           .ok()) {
    std::fprintf(stderr, "data load failed\n");
    std::exit(1);
  }
  net.Settle();

  const uint64_t msg_before = net.network()->stats().messages_sent;
  const uint64_t bytes_before = net.network()->stats().bytes_sent;

  // Traced run == untraced run (span ids are a plain counter, no Rng draw),
  // so hop/retry extraction does not perturb the message counts above.
  net.tracer()->Enable(1 << 16);

  GridVinePeer::QueryOptions qopts;
  qopts.bind_join = bind_join;
  ModeStats stats;
  const auto queries = MakeQueries();
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& q : queries) {
      size_t issuer = (r * queries.size()) % net.size();
      net.tracer()->Clear();
      auto res = net.SearchForConjunctive(issuer, q, qopts);
      if (!res.status.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     res.status.ToString().c_str());
        std::exit(1);
      }
      TraceAnalyzer an(net.tracer()->Snapshot());
      auto ts = gridvine::bench::HopsAndRetries(an.spans(), res.trace_id);
      stats.hops.push_back(ts.hops);
      stats.retries.push_back(ts.retries);
      stats.cp.Add(an.CriticalPathFor(res.trace_id));
      stats.rows_shipped += res.metrics.RowsShipped();
      stats.latency_sum += res.latency;
      ++stats.queries;
      std::set<std::string> rows;
      for (const auto& row : res.rows) rows.insert(SerializeBindings({row}));
      stats.row_sets.push_back(std::move(rows));
    }
  }
  stats.messages = net.network()->stats().messages_sent - msg_before;
  stats.bytes = net.network()->stats().bytes_sent - bytes_before;
  return stats;
}

// --- Zipf skew sweep: greedy vs cost-based vs adaptive -----------------------

constexpr size_t kZipfPreds = 8;

/// Predicate k's extent holds entities / (k + 1)^s subjects: z:p0 is the hot
/// extent every query must join against, the tail predicates are cold.
/// Deterministic (no rng) so every mode loads byte-identical data.
std::vector<Triple> MakeZipfTriples(size_t entities, double s) {
  std::vector<Triple> triples;
  for (size_t k = 0; k < kZipfPreds; ++k) {
    size_t n = std::max<size_t>(
        2, size_t(double(entities) / std::pow(double(k + 1), s)));
    for (size_t i = 0; i < n; ++i) {
      triples.emplace_back(
          Term::Uri("w:e" + std::to_string(i)),
          Term::Uri("z:p" + std::to_string(k)),
          Term::Literal("v" + std::to_string(k) + "_" + std::to_string(i)));
    }
  }
  return triples;
}

/// Growth for the drift phase: the three coldest extents balloon under
/// fresh subjects (w:d*), so result sets stay untouched while every cached
/// sketch's row count for those predicates goes badly stale.
std::vector<Triple> MakeDriftTriples(size_t rows_per_pred) {
  std::vector<Triple> triples;
  for (size_t k = kZipfPreds - 3; k < kZipfPreds; ++k) {
    for (size_t i = 0; i < rows_per_pred; ++i) {
      triples.emplace_back(
          Term::Uri("w:d" + std::to_string(i)),
          Term::Uri("z:p" + std::to_string(k)),
          Term::Literal("d" + std::to_string(k) + "_" + std::to_string(i)));
    }
  }
  return triples;
}

/// Each query joins the hot extent against one cold one, hot pattern FIRST:
/// the greedy planner (same shape class, index order) leads with it and
/// ships the whole hot extent; the cost model reorders.
std::vector<ConjunctiveQuery> MakeZipfQueries() {
  std::vector<ConjunctiveQuery> queries;
  for (size_t k = 2; k < kZipfPreds; ++k) {
    queries.emplace_back(
        std::vector<std::string>{"x", "a", "b"},
        std::vector<TriplePattern>{
            P(Term::Var("x"), Term::Uri("z:p0"), Term::Var("a")),
            P(Term::Var("x"), Term::Uri("z:p" + std::to_string(k)),
              Term::Var("b"))});
  }
  return queries;
}

struct ZipfModeCfg {
  const char* row;
  int mode;  ///< 0 = greedy, 1 = static cost-based, 2 = adaptive
  bool stats;
  double divergence;
  bool load_aware;
};

struct ZipfStats {
  uint64_t rows = 0, bytes = 0, messages = 0;
  uint64_t drift_rows = 0, drift_bytes = 0;
  uint64_t reoptimizations = 0;
  double latency_sum = 0;
  size_t queries = 0;
  double imbalance = 0, gini = 0;
  std::vector<std::set<std::string>> row_sets;
};

ZipfStats RunZipfMode(const ZipfModeCfg& cfg, size_t entities, double zipf_s,
                      size_t rounds, uint64_t seed) {
  GridVineNetwork::Options options;
  options.num_peers = 24;
  options.key_depth = 12;
  options.seed = seed;
  options.overlay.load_aware = cfg.load_aware;
  if (cfg.stats) {
    options.peer.stats.enabled = true;
    // Never expire: the drift phase measures what stale sketches cost the
    // static planner, so TTL refresh must not bail it out.
    options.peer.stats.ttl = 1e9;
    options.peer.stats.divergence = cfg.divergence;
  }
  GridVineNetwork net(options);
  if (!net.InsertTriples(0, MakeZipfTriples(entities, zipf_s)).ok()) {
    std::fprintf(stderr, "zipf data load failed\n");
    std::exit(1);
  }
  net.Settle();

  const auto queries = MakeZipfQueries();
  GridVinePeer::QueryOptions qopts;
  ZipfStats stats;
  // rows_sink == nullptr marks an unmeasured warm-up query.
  auto run_query = [&](const ConjunctiveQuery& q, uint64_t* rows_sink) {
    auto res = net.SearchForConjunctive(0, q, qopts);
    if (!res.status.ok()) {
      std::fprintf(stderr, "zipf query failed: %s\n",
                   res.status.ToString().c_str());
      std::exit(1);
    }
    if (rows_sink == nullptr) return;
    *rows_sink += res.metrics.RowsShipped();
    stats.latency_sum += res.latency;
    stats.reoptimizations += res.metrics.reoptimizations;
    ++stats.queries;
    std::set<std::string> rows;
    for (const auto& row : res.rows) rows.insert(SerializeBindings({row}));
    stats.row_sets.push_back(std::move(rows));
  };
  auto measure = [&](uint64_t* rows_out, uint64_t* bytes_out) {
    const uint64_t msg0 = net.network()->stats().messages_sent;
    const uint64_t bytes0 = net.network()->stats().bytes_sent;
    for (size_t r = 0; r < rounds; ++r) {
      for (const auto& q : queries) run_query(q, rows_out);
    }
    *bytes_out += net.network()->stats().bytes_sent - bytes0;
    stats.messages += net.network()->stats().messages_sent - msg0;
  };
  // Warm-up: one pass per query populates the issuer's sketch cache (and
  // extent caches) so the measured phases compare steady-state planning,
  // not first-touch fetch costs. Greedy gets the same pass for symmetry.
  for (const auto& q : queries) run_query(q, nullptr);
  measure(&stats.rows, &stats.bytes);
  // Drift: grow the cold extents, then re-measure against stale sketches.
  if (!net.InsertTriples(0, MakeDriftTriples(entities * 2)).ok()) {
    std::fprintf(stderr, "drift load failed\n");
    std::exit(1);
  }
  net.Settle();
  measure(&stats.drift_rows, &stats.drift_bytes);
  auto loads = ComputeRequestLoadStats(net.overlay_peers());
  stats.imbalance = loads.max_over_mean;
  stats.gini = loads.gini;
  return stats;
}

/// Mean relative error of the extent-cardinality estimates a mode plans
/// with, against ground truth on the pre-drift data. Cost/adaptive plan
/// from KMV sketches; greedy has no statistics, so its implicit prior is
/// "every extent is average-sized".
double ZipfEstError(size_t entities, double zipf_s, bool sketched) {
  TripleStore store;
  for (const Triple& t : MakeZipfTriples(entities, zipf_s)) {
    if (!store.Insert(t).ok()) std::exit(1);
  }
  StoreSketch sketch = StoreSketch::Build(store);
  double err_sum = 0;
  size_t n = 0;
  for (size_t k = 0; k < kZipfPreds; ++k) {
    TriplePattern p(Term::Var("x"), Term::Uri("z:p" + std::to_string(k)),
                    Term::Var("o"));
    double truth = 0;
    for (const Triple& t : store.All()) {
      if (t.predicate().value() == p.predicate().value()) ++truth;
    }
    double est = sketched ? sketch.EstimatePattern(p).rows
                          : double(store.size()) / double(kZipfPreds);
    err_sum += std::fabs(est - truth) / std::max(1.0, truth);
    ++n;
  }
  return n == 0 ? 0 : err_sum / double(n);
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_conjunctive");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const size_t kEntities = EnvOr("GV_ENTITIES", quick ? 80 : 400);
  const size_t kSelectivity = EnvOr("GV_SELECTIVITY", 20);
  const size_t kRounds = EnvOr("GV_QUERIES", quick ? 2 : 8);
  const uint64_t kSeed = EnvOr("GV_SEED", 42);

  std::printf("bind-join pushdown vs collect-then-join\n");
  std::printf("  entities=%zu selectivity=1/%zu rounds=%zu seed=%llu\n",
              kEntities, kSelectivity, kRounds, (unsigned long long)kSeed);

  ModeStats bind = RunMode(true, kEntities, kSelectivity, kRounds, kSeed);
  ModeStats collect = RunMode(false, kEntities, kSelectivity, kRounds, kSeed);

  // Differential gate: identical result sets, query by query.
  if (bind.row_sets != collect.row_sets) {
    std::fprintf(stderr, "DIFFERENTIAL MISMATCH: bind-join result sets "
                         "differ from collect-then-join\n");
    return 1;
  }

  const double row_ratio =
      bind.rows_shipped == 0
          ? 0
          : double(collect.rows_shipped) / double(bind.rows_shipped);
  std::printf("\n  %-24s %12s %12s\n", "metric", "bind-join", "collect");
  std::printf("  %-24s %12llu %12llu\n", "rows shipped",
              (unsigned long long)bind.rows_shipped,
              (unsigned long long)collect.rows_shipped);
  std::printf("  %-24s %12llu %12llu\n", "messages",
              (unsigned long long)bind.messages,
              (unsigned long long)collect.messages);
  std::printf("  %-24s %12llu %12llu\n", "bytes",
              (unsigned long long)bind.bytes,
              (unsigned long long)collect.bytes);
  std::printf("  %-24s %12.3f %12.3f\n", "mean latency (s)",
              bind.MeanLatency(), collect.MeanLatency());
  using gridvine::bench::CountPercentile;
  std::printf("  %-24s %12.0f %12.0f\n", "hops p50 (traced)",
              CountPercentile(bind.hops, 0.50),
              CountPercentile(collect.hops, 0.50));
  std::printf("  %-24s %12.0f %12.0f\n", "hops p99 (traced)",
              CountPercentile(bind.hops, 0.99),
              CountPercentile(collect.hops, 0.99));
  std::printf("  %-24s %12.0f %12.0f\n", "retries p99 (traced)",
              CountPercentile(bind.retries, 0.99),
              CountPercentile(collect.retries, 0.99));
  std::printf("\n  rows-shipped improvement: %.1fx (acceptance floor 3x)\n",
              row_ratio);
  std::printf("  differential check: %zu queries, result sets identical\n",
              bind.row_sets.size());

  std::printf("  bind-join ");
  bind.cp.Print("");
  std::printf("  collect   ");
  collect.cp.Print("");

  std::vector<std::pair<std::string, double>> bind_row = {
      {"rows_shipped", double(bind.rows_shipped)},
      {"messages", double(bind.messages)},
      {"bytes", double(bind.bytes)},
      {"mean_latency_s", bind.MeanLatency()},
      {"hops_p50", CountPercentile(bind.hops, 0.50)},
      {"hops_p90", CountPercentile(bind.hops, 0.90)},
      {"hops_p99", CountPercentile(bind.hops, 0.99)},
      {"retries_p99", CountPercentile(bind.retries, 0.99)}};
  bind.cp.AppendShares(&bind_row);
  json.Add("bind_join", std::move(bind_row));
  std::vector<std::pair<std::string, double>> collect_row = {
      {"rows_shipped", double(collect.rows_shipped)},
      {"messages", double(collect.messages)},
      {"bytes", double(collect.bytes)},
      {"mean_latency_s", collect.MeanLatency()},
      {"hops_p50", CountPercentile(collect.hops, 0.50)},
      {"hops_p90", CountPercentile(collect.hops, 0.90)},
      {"hops_p99", CountPercentile(collect.hops, 0.99)},
      {"retries_p99", CountPercentile(collect.retries, 0.99)}};
  collect.cp.AppendShares(&collect_row);
  json.Add("collect", std::move(collect_row));
  json.Add("summary", {{"rows_shipped_ratio", row_ratio},
                       {"message_delta",
                        double(collect.messages) - double(bind.messages)},
                       {"differential_ok", 1.0}});

  // --- Zipf skew sweep -------------------------------------------------------
  const double kZipfS = [] {
    const char* v = std::getenv("GV_ZIPF");
    return v != nullptr ? std::strtod(v, nullptr) : 1.2;
  }();
  const size_t kZipfEntities = EnvOr("GV_ZIPF_ENTITIES", quick ? 120 : 400);
  const size_t kZipfRounds = EnvOr("GV_ZIPF_ROUNDS", quick ? 2 : 4);

  std::printf("\nZipf(%.1f) skew sweep: greedy vs cost-based vs adaptive\n",
              kZipfS);
  std::printf("  entities=%zu preds=%zu rounds=%zu seed=%llu\n", kZipfEntities,
              kZipfPreds, kZipfRounds, (unsigned long long)kSeed);

  const ZipfModeCfg kModes[] = {
      {"zipf_greedy", 0, /*stats=*/false, /*divergence=*/0.0,
       /*load_aware=*/false},
      {"zipf_cost", 1, /*stats=*/true, /*divergence=*/0.0,
       /*load_aware=*/false},
      {"zipf_adaptive", 2, /*stats=*/true, /*divergence=*/2.0,
       /*load_aware=*/true},
  };
  ZipfStats zs[3];
  for (int m = 0; m < 3; ++m) {
    zs[m] = RunZipfMode(kModes[m], kZipfEntities, kZipfS, kZipfRounds, kSeed);
  }
  // Equal recall, phase by phase: all three modes must agree on every
  // result set (drift data joins nothing, so the drift phase agrees too).
  for (int m = 1; m < 3; ++m) {
    if (zs[m].row_sets != zs[0].row_sets) {
      std::fprintf(stderr, "DIFFERENTIAL MISMATCH: %s result sets differ "
                           "from greedy\n",
                   kModes[m].row);
      return 1;
    }
  }

  std::printf("\n  %-24s %12s %12s %12s\n", "metric", "greedy", "cost",
              "adaptive");
  auto zrow = [&](const char* label, auto get) {
    std::printf("  %-24s %12.0f %12.0f %12.0f\n", label, get(zs[0]),
                get(zs[1]), get(zs[2]));
  };
  zrow("rows shipped", [](const ZipfStats& s) { return double(s.rows); });
  zrow("bytes", [](const ZipfStats& s) { return double(s.bytes); });
  zrow("messages", [](const ZipfStats& s) { return double(s.messages); });
  zrow("drift rows shipped",
       [](const ZipfStats& s) { return double(s.drift_rows); });
  zrow("drift bytes", [](const ZipfStats& s) { return double(s.drift_bytes); });
  zrow("re-optimizations",
       [](const ZipfStats& s) { return double(s.reoptimizations); });
  std::printf("  %-24s %12.3f %12.3f %12.3f\n", "replica max/mean",
              zs[0].imbalance, zs[1].imbalance, zs[2].imbalance);

  const double greedy_over_cost_rows =
      zs[1].rows == 0 ? 0 : double(zs[0].rows) / double(zs[1].rows);
  const double greedy_over_cost_bytes =
      zs[1].bytes == 0 ? 0 : double(zs[0].bytes) / double(zs[1].bytes);
  const double cost_over_adaptive_drift =
      zs[2].drift_rows == 0
          ? 0
          : double(zs[1].drift_rows) / double(zs[2].drift_rows);
  std::printf("\n  greedy/cost rows: %.2fx  bytes: %.2fx "
              "(acceptance floor 2x)\n",
              greedy_over_cost_rows, greedy_over_cost_bytes);
  std::printf("  static-cost/adaptive drift rows: %.2fx "
              "(adaptive must stay >= 0.95)\n",
              cost_over_adaptive_drift);

  for (int m = 0; m < 3; ++m) {
    const ZipfStats& s = zs[m];
    json.Add(kModes[m].row,
             {{"mode", double(kModes[m].mode)},
              {"rows_shipped", double(s.rows)},
              {"bytes", double(s.bytes)},
              {"messages", double(s.messages)},
              {"mean_latency_s",
               s.queries == 0 ? 0 : s.latency_sum / double(s.queries)},
              {"est_error",
               ZipfEstError(kZipfEntities, kZipfS, kModes[m].stats)},
              {"replica_imbalance", s.imbalance},
              {"load_gini", s.gini},
              {"drift_rows_shipped", double(s.drift_rows)},
              {"drift_bytes", double(s.drift_bytes)},
              {"reoptimizations", double(s.reoptimizations)}});
  }
  json.Add("zipf_summary",
           {{"zipf_s", kZipfS},
            {"greedy_over_cost_rows", greedy_over_cost_rows},
            {"greedy_over_cost_bytes", greedy_over_cost_bytes},
            {"cost_over_adaptive_drift_rows", cost_over_adaptive_drift},
            {"differential_ok", 1.0}});
  json.Finish();
  return 0;
}
