// Microbenchmarks of query reformulation over an in-memory mapping graph:
// raw ExpandQuery (re-deriving the BFS for every query, as the seed did)
// versus the memoized ReformulationCache, plus single-edge Reformulate.
//
// google-benchmark binary; run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include <string>

#include "query/reformulation.h"
#include "query/reformulation_cache.h"

namespace gridvine {
namespace {

/// A mapping graph shaped like a community of `n` schemas: a ring of
/// equivalences plus chords, every mapping covering the Organism attribute.
MappingGraph BuildGraph(int n) {
  MappingGraph g;
  auto schema = [](int i) { return "S" + std::to_string(i); };
  auto add = [&](int a, int b) {
    SchemaMapping m(schema(a) + ">" + schema(b), schema(a), schema(b));
    m.AddCorrespondence(schema(a) + "#Organism", schema(b) + "#Organism").ok();
    g.AddMapping(m);
  };
  for (int i = 0; i < n; ++i) add(i, (i + 1) % n);
  for (int i = 0; i < n; i += 3) add(i, (i + n / 2) % n);
  return g;
}

TriplePatternQuery OrganismQuery(const std::string& schema) {
  return TriplePatternQuery(
      "x", TriplePattern(Term::Var("x"), Term::Uri(schema + "#Organism"),
                         Term::Literal("%Aspergillus%")));
}

void BM_ExpandQuery(benchmark::State& state) {
  MappingGraph g = BuildGraph(int(state.range(0)));
  auto q = OrganismQuery("S0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpandQuery(q, g, 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpandQuery)->Arg(8)->Arg(32)->Arg(128);

void BM_ExpandQueryCached(benchmark::State& state) {
  MappingGraph g = BuildGraph(int(state.range(0)));
  auto q = OrganismQuery("S0");
  ReformulationCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Expand(q, g, 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpandQueryCached)->Arg(8)->Arg(32)->Arg(128);

void BM_Reformulate(benchmark::State& state) {
  SchemaMapping m("ab", "A", "B");
  m.AddCorrespondence("A#Organism", "B#Organism").ok();
  auto q = OrganismQuery("A");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Reformulate(q, m));
  }
}
BENCHMARK(BM_Reformulate);

}  // namespace
}  // namespace gridvine

BENCHMARK_MAIN();
