#ifndef GRIDVINE_PGRID_ROUTING_TABLE_H_
#define GRIDVINE_PGRID_ROUTING_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "sim/network.h"

namespace gridvine {

/// Read-only view over one level's references (or the replica set): a
/// pointer + length into the table's contiguous slot array. Iterable and
/// indexable like the std::vector it replaced; invalidated by any mutation
/// of the table, so don't hold one across AddRef/RemoveRef/SetPath.
class RefSpan {
 public:
  using value_type = NodeId;

  RefSpan() = default;
  RefSpan(const NodeId* data, size_t size) : data_(data), size_(size) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  const NodeId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](size_t i) const { return data_[i]; }

 private:
  const NodeId* data_ = nullptr;
  size_t size_ = 0;
};

/// A P-Grid peer's routing state: for each level l of its path π(p), a set of
/// references to peers whose paths share the first l bits of π(p) and differ
/// at bit l (the "complementary subtree" at that level), plus the replica set
/// σ(p) of peers with the same path.
///
/// The level-wise invariant is exactly what makes greedy prefix routing
/// resolve any key in at most |π(p)| forwards.
///
/// Layout: one contiguous NodeId array of `levels * max_refs_per_level`
/// fixed-width blocks plus a byte of occupancy per level — two heap
/// allocations per peer total (vs. one vector header + one heap block per
/// level before). At 4 refs/level a 20-level table is 320 B of ids + 20
/// count bytes, and a simulation holding a million of these keeps them in
/// ~400 MB instead of several GB of malloc'd node fragments. The level cap
/// is bounded at 255 so counts fit a byte.
class RoutingTable {
 public:
  /// `max_refs_per_level` caps fan-out; additional refs are ignored. More
  /// refs give routing more alternatives under churn at modest memory cost.
  explicit RoutingTable(int max_refs_per_level = 4)
      : max_refs_per_level_(
            max_refs_per_level < 1
                ? 1
                : (max_refs_per_level > 255 ? 255 : max_refs_per_level)) {}

  /// Sets the owning peer's path; resizes the level structure and drops refs
  /// that became inconsistent with the new path (those at levels >= length
  /// never existed; levels shorten only during re-balancing).
  void SetPath(const Key& path);
  const Key& path() const { return path_; }

  /// Adds a reference at `level` (0-based bit index into the path); ignored
  /// when the level is out of range, the table is full at that level, or the
  /// ref is a duplicate. Returns true if stored.
  bool AddRef(int level, NodeId id);

  /// Removes a reference wherever it appears (e.g. observed dead).
  void RemoveRef(NodeId id);

  /// Drops every reference and replica link (used when the peer's region is
  /// reassigned wholesale and existing links no longer satisfy the
  /// complementary-subtree invariant).
  void ClearLinks();

  /// View of level `level`'s refs (empty for out-of-range levels).
  /// Invalidated by any table mutation.
  RefSpan RefsAt(int level) const;

  /// Picks the next hop for `key`: the divergence level l of `key` against
  /// π(p) selects the ref list; a uniformly random entry is returned (random
  /// choice spreads load over alternatives and lets retries explore different
  /// paths under churn). Excludes `exclude` if other options exist.
  /// Returns nullopt when the key belongs to this peer's subtree or no ref
  /// is known at the divergence level. Allocation-free. Templated over the
  /// generator so callers holding a big Rng and peers holding a CompactRng
  /// share one implementation (both draw exactly once).
  template <typename RngT>
  std::optional<NodeId> NextHop(const Key& key, RngT* rng,
                                NodeId exclude = kInvalidNode) const {
    int l = DivergenceLevel(key);
    if (l >= path_.length()) return std::nullopt;  // our subtree: local
    const NodeId* block = LevelBlock(l);
    const uint8_t count = counts_[static_cast<size_t>(l)];
    if (count == 0) return std::nullopt;
    // Prefer an alternative to `exclude` when one exists. Selection draws one
    // uniform index over the candidate count and scans to it — the same
    // single Rng draw (hence the same picks, seed for seed) as the old
    // build-a-candidate-vector-and-PickOne, without the allocation.
    uint8_t eligible = 0;
    for (uint8_t i = 0; i < count; ++i) {
      if (block[i] != exclude) ++eligible;
    }
    const bool filtered = eligible > 0;
    const uint8_t n = filtered ? eligible : count;
    auto pick = static_cast<uint8_t>(rng->UniformInt(0, int64_t(n) - 1));
    for (uint8_t i = 0, seen = 0; i < count; ++i) {
      if (filtered && block[i] == exclude) continue;
      if (seen++ == pick) return block[i];
    }
    return block[count - 1];  // unreachable
  }

  /// NextHop with a *set* of hops to avoid — the per-flight failover variant:
  /// a retry should not re-try ANY first hop that already timed out for this
  /// request, not just the latest one. Preference order: refs outside the
  /// whole tried set; else refs other than the most recent tried hop; else
  /// any ref. Exactly one rng draw in every path, and with |tried| <= 1 the
  /// candidate filtering (and hence the draw, seed for seed) is identical to
  /// single-exclude NextHop.
  template <typename RngT>
  std::optional<NodeId> NextHopAvoiding(const Key& key, RngT* rng,
                                        const NodeId* tried,
                                        size_t tried_count) const {
    int l = DivergenceLevel(key);
    if (l >= path_.length()) return std::nullopt;
    const NodeId* block = LevelBlock(l);
    const uint8_t count = counts_[static_cast<size_t>(l)];
    if (count == 0) return std::nullopt;
    auto in_tried = [&](NodeId id, size_t upto) {
      for (size_t t = 0; t < upto; ++t) {
        if (tried[t] == id) return true;
      }
      return false;
    };
    uint8_t eligible = 0;
    for (uint8_t i = 0; i < count; ++i) {
      if (!in_tried(block[i], tried_count)) ++eligible;
    }
    // Fallback ladder when every ref was already tried: avoid at least the
    // most recent attempt (the HEAD behaviour), then give up on filtering.
    const NodeId last =
        tried_count > 0 ? tried[tried_count - 1] : kInvalidNode;
    enum class Filter { kAll, kLastOnly, kNone } mode = Filter::kAll;
    if (eligible == 0) {
      mode = Filter::kLastOnly;
      eligible = 0;
      for (uint8_t i = 0; i < count; ++i) {
        if (block[i] != last) ++eligible;
      }
      if (eligible == 0) {
        mode = Filter::kNone;
        eligible = count;
      }
    }
    auto pick = static_cast<uint8_t>(rng->UniformInt(0, int64_t(eligible) - 1));
    for (uint8_t i = 0, seen = 0; i < count; ++i) {
      if (mode == Filter::kAll && in_tried(block[i], tried_count)) continue;
      if (mode == Filter::kLastOnly && block[i] == last) continue;
      if (seen++ == pick) return block[i];
    }
    return block[count - 1];  // unreachable
  }

  /// Deterministic load-aware pick: among the refs at the divergence level
  /// (minus `exclude` when alternatives exist), returns the one minimizing
  /// `load(id)`, ties broken by slot order. No rng draw — the caller's
  /// counters are the only state, which keeps load-aware runs deterministic
  /// and leaves the random-draw sequence untouched when the feature is off.
  template <typename LoadFn>
  std::optional<NodeId> NextHopLeastLoaded(const Key& key, LoadFn&& load,
                                           NodeId exclude = kInvalidNode) const {
    int l = DivergenceLevel(key);
    if (l >= path_.length()) return std::nullopt;
    const NodeId* block = LevelBlock(l);
    const uint8_t count = counts_[static_cast<size_t>(l)];
    if (count == 0) return std::nullopt;
    uint8_t eligible = 0;
    for (uint8_t i = 0; i < count; ++i) {
      if (block[i] != exclude) ++eligible;
    }
    const bool filtered = eligible > 0;
    std::optional<NodeId> best;
    uint64_t best_load = 0;
    for (uint8_t i = 0; i < count; ++i) {
      if (filtered && block[i] == exclude) continue;
      uint64_t w = load(block[i]);
      if (!best || w < best_load) {
        best = block[i];
        best_load = w;
      }
    }
    return best;
  }

  /// Divergence level of `key` against the path, or path length if the key
  /// lies in this peer's subtree.
  int DivergenceLevel(const Key& key) const;

  void AddReplica(NodeId id);
  void RemoveReplica(NodeId id);
  const std::vector<NodeId>& replicas() const { return replicas_; }

  int levels() const { return static_cast<int>(counts_.size()); }
  int max_refs_per_level() const { return max_refs_per_level_; }

  /// Total number of stored references across levels.
  size_t TotalRefs() const;

  /// Bytes of heap behind this table (slot array, counts, replicas, path),
  /// by capacity.
  size_t MemoryFootprint() const;

 private:
  NodeId* LevelBlock(int level) {
    return slots_.data() + size_t(level) * size_t(max_refs_per_level_);
  }
  const NodeId* LevelBlock(int level) const {
    return slots_.data() + size_t(level) * size_t(max_refs_per_level_);
  }

  int max_refs_per_level_;
  Key path_;
  /// Fixed-width blocks, one per level: slots_[l*cap .. l*cap+counts_[l]).
  std::vector<NodeId> slots_;
  std::vector<uint8_t> counts_;
  std::vector<NodeId> replicas_;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_ROUTING_TABLE_H_
