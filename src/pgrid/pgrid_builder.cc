#include "pgrid/pgrid_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

namespace gridvine {

void PGridBuilder::BuildBalanced(const std::vector<PGridPeer*>& peers,
                                 Rng* rng, int refs_per_level) {
  if (peers.empty()) return;
  size_t n = peers.size();
  int depth = 0;
  while ((size_t(1) << (depth + 1)) <= n) ++depth;
  size_t leaves = size_t(1) << depth;
  for (size_t i = 0; i < n; ++i) {
    peers[i]->SetPath(Key::FromUint(i % leaves, depth));
  }
  WireRouting(peers, rng, refs_per_level);
}

void PGridBuilder::BuildAdaptive(const std::vector<PGridPeer*>& peers,
                                 const std::vector<Key>& sample, Rng* rng,
                                 int refs_per_level) {
  if (peers.empty()) return;
  if (sample.empty()) {
    BuildBalanced(peers, rng, refs_per_level);
    return;
  }

  // Recursive proportional split. Each frame owns a set of peers and the
  // sample keys under the current prefix; with >1 peer the space is split at
  // the next bit and peers are allocated proportionally to sample mass.
  std::function<void(std::vector<PGridPeer*>, std::vector<Key>, Key)> split =
      [&](std::vector<PGridPeer*> group, std::vector<Key> keys, Key prefix) {
        if (group.size() <= 1 ||
            (!keys.empty() && prefix.length() >= keys[0].length())) {
          for (PGridPeer* p : group) p->SetPath(prefix);
          return;
        }
        std::vector<Key> zeros, ones;
        for (const Key& k : keys) {
          if (k.length() > prefix.length() && k.bit(prefix.length()) == 1) {
            ones.push_back(k);
          } else {
            zeros.push_back(k);
          }
        }
        double frac1 =
            keys.empty() ? 0.5 : double(ones.size()) / double(keys.size());
        auto n1 = size_t(std::lround(frac1 * double(group.size())));
        n1 = std::clamp<size_t>(n1, 1, group.size() - 1);
        std::vector<PGridPeer*> g1(group.begin(),
                                   group.begin() + ptrdiff_t(n1));
        std::vector<PGridPeer*> g0(group.begin() + ptrdiff_t(n1), group.end());
        split(std::move(g0), std::move(zeros), prefix.WithBit(0));
        split(std::move(g1), std::move(ones), prefix.WithBit(1));
      };

  std::vector<PGridPeer*> shuffled = peers;
  rng->Shuffle(&shuffled);
  split(shuffled, sample, Key());
  WireRouting(peers, rng, refs_per_level);
}

void PGridBuilder::WireRouting(const std::vector<PGridPeer*>& peers, Rng* rng,
                               int refs_per_level) {
  for (PGridPeer* p : peers) {
    // Reset the level structure and drop stale links: when paths are
    // reassigned wholesale (e.g. balanced -> adaptive rebuild), refs wired
    // for the old topology would violate the complementary-subtree
    // invariant and create routing loops.
    p->routing()->SetPath(p->path());
    p->routing()->ClearLinks();
  }
  // Index peers by path string so complementary-subtree candidates can be
  // found with a prefix range scan instead of a full pass per level.
  std::vector<std::pair<std::string, PGridPeer*>> by_path;
  by_path.reserve(peers.size());
  for (PGridPeer* q : peers) by_path.emplace_back(q->path().bits(), q);
  std::sort(by_path.begin(), by_path.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto for_each_with_prefix = [&](const std::string& prefix,
                                  const std::function<void(PGridPeer*)>& fn) {
    auto lo = std::lower_bound(
        by_path.begin(), by_path.end(), prefix,
        [](const auto& e, const std::string& v) { return e.first < v; });
    for (auto it = lo; it != by_path.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      fn(it->second);
    }
  };

  for (PGridPeer* p : peers) {
    const Key& path = p->path();
    for (int level = 0; level < path.length(); ++level) {
      // Complementary subtree at `level`: same first `level` bits, opposite
      // bit at `level`.
      std::string prefix =
          path.Prefix(level).bits() + (path.bit(level) ? '0' : '1');
      std::vector<NodeId> candidates;
      for_each_with_prefix(prefix, [&](PGridPeer* q) {
        if (q != p) candidates.push_back(q->id());
      });
      rng->Shuffle(&candidates);
      int take = std::min<int>(refs_per_level, int(candidates.size()));
      for (int i = 0; i < take; ++i) {
        p->routing()->AddRef(level, candidates[size_t(i)]);
      }
    }
    // Replica set: identical paths.
    for_each_with_prefix(path.bits(), [&](PGridPeer* q) {
      if (q != p && q->path() == path) p->routing()->AddReplica(q->id());
    });
  }
}

}  // namespace gridvine
