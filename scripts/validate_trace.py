#!/usr/bin/env python3
"""Validates an exported Chrome trace (and optionally a metrics JSON).

Usage: validate_trace.py TRACE_JSON [METRICS_JSON]

Checks, exiting non-zero on the first violation:
  - the trace file is valid JSON with a non-empty "traceEvents" list;
  - every event carries args.span_id, span ids are unique;
  - every non-zero args.parent_id refers to a recorded span with a smaller
    id (creation order) and the same tid (= trace id) — which makes every
    span tree acyclic by construction;
  - the optional metrics file is valid JSON with the counters / gauges /
    histograms sections.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    by_id = {}
    for ev in events:
        args = ev.get("args", {})
        span_id = args.get("span_id")
        if not isinstance(span_id, int) or span_id <= 0:
            fail(f"{path}: event without a positive args.span_id: {ev}")
        if span_id in by_id:
            fail(f"{path}: duplicate span id {span_id}")
        by_id[span_id] = ev
    for ev in events:
        span_id = ev["args"]["span_id"]
        parent_id = ev["args"].get("parent_id", 0)
        if parent_id == 0:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            fail(f"{path}: span {span_id} has unknown parent {parent_id}")
        if parent_id >= span_id:
            fail(f"{path}: span {span_id} parent {parent_id} not older "
                 "(cycle risk)")
        if parent.get("tid") != ev.get("tid"):
            fail(f"{path}: span {span_id} crosses traces to parent "
                 f"{parent_id}")
    roots = sum(1 for ev in events if ev["args"].get("parent_id", 0) == 0)
    print(f"validate_trace: {path}: {len(events)} span(s), {roots} tree(s), "
          "acyclic")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"{path}: missing \"{section}\" section")
    print(f"validate_trace: {path}: {len(doc['counters'])} counter(s), "
          f"{len(doc['gauges'])} gauge(s), {len(doc['histograms'])} "
          "histogram(s)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate_trace(sys.argv[1])
    if len(sys.argv) > 2:
        validate_metrics(sys.argv[2])
    print("validate_trace: OK")


if __name__ == "__main__":
    main()
