#include "query/planner.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

TEST(ClassifyPatternTest, AllClasses) {
  EXPECT_EQ(ClassifyPattern(P(Term::Uri("s"), Term::Var("p"), Term::Var("o"))),
            PatternCost::kExactSubject);
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Uri("p"), Term::Literal("exact"))),
            PatternCost::kExactObject);
  EXPECT_EQ(ClassifyPattern(P(Term::Var("s"), Term::Uri("p"), Term::Var("o"))),
            PatternCost::kExactPredicate);
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Var("p"), Term::Literal("abc%"))),
            PatternCost::kRange);
  EXPECT_EQ(ClassifyPattern(P(Term::Var("s"), Term::Var("p"), Term::Var("o"))),
            PatternCost::kUnroutable);
  // Leading wildcard: not a range.
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Var("p"), Term::Literal("%abc"))),
            PatternCost::kUnroutable);
  // Wildcard literal with an exact predicate: predicate class.
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Uri("p"), Term::Literal("%abc%"))),
            PatternCost::kExactPredicate);
}

TEST(PlanConjunctiveTest, CheapestFirst) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),       // predicate
       P(Term::Uri("s"), Term::Uri("p2"), Term::Var("x")),       // subject
       P(Term::Var("x"), Term::Uri("p3"), Term::Literal("v"))}); // object
  auto order = PlanConjunctive(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // exact subject first
  EXPECT_EQ(order[1], 2u);  // exact object second
  EXPECT_EQ(order[2], 0u);  // predicate last
}

TEST(PlanConjunctiveTest, PrefersJoinConnectedPatterns) {
  // p0 binds ?a; p1 is cheap (subject) but disconnected from ?a until p2
  // runs; p2 is predicate-class but shares ?a.
  ConjunctiveQuery q(
      {"a"},
      {P(Term::Uri("s0"), Term::Uri("p0"), Term::Var("a")),   // subject, ?a
       P(Term::Uri("s1"), Term::Uri("p1"), Term::Var("b")),   // subject, ?b
       P(Term::Var("a"), Term::Uri("p2"), Term::Var("b"))});  // joins both
  auto order = PlanConjunctive(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  // After p0, the connected pattern p2 (predicate class, connected) competes
  // with p1 (subject class, NOT connected): connectivity wins.
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
}

TEST(PlanConjunctiveTest, StableForEqualRanks) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),
       P(Term::Var("x"), Term::Uri("p2"), Term::Var("o2"))});
  auto order = PlanConjunctive(q);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
}

TEST(PlanConjunctiveTest, SinglePattern) {
  ConjunctiveQuery q({"x"},
                     {P(Term::Var("x"), Term::Uri("p"), Term::Var("o"))});
  EXPECT_EQ(PlanConjunctive(q), (std::vector<size_t>{0}));
}

TEST(PlanPhysicalTest, DisconnectedPatternsFormConcurrentGroups) {
  // {?a} component (p0, p2) and {?b} component (p1) share no variable, so
  // they become separate groups merged by one cross-group LocalJoin.
  ConjunctiveQuery q(
      {"a", "b"},
      {P(Term::Uri("s0"), Term::Uri("p0"), Term::Var("a")),
       P(Term::Var("b"), Term::Uri("p1"), Term::Literal("v")),
       P(Term::Var("a"), Term::Uri("p2"), Term::Var("c"))});
  PhysicalPlan plan = PlanPhysical(q);
  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.groups[0].patterns, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(plan.groups[1].patterns, (std::vector<size_t>{1}));
  ASSERT_EQ(plan.tail.size(), 3u);
  EXPECT_EQ(plan.tail[0].kind, OpKind::kLocalJoin);
  EXPECT_EQ(plan.tail[1].kind, OpKind::kProject);
  EXPECT_EQ(plan.tail[2].kind, OpKind::kDedup);
  // Order() flattens group-major and matches the legacy contract.
  EXPECT_EQ(plan.Order(), (std::vector<size_t>{0, 2, 1}));
  EXPECT_EQ(plan.Order(), PlanConjunctive(q));
}

TEST(PlanPhysicalTest, BindJoinChainShape) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("s"), Term::Uri("p0"), Term::Var("x")),
       P(Term::Var("x"), Term::Uri("p1"), Term::Var("o"))});
  PhysicalPlan bind = PlanPhysical(q);
  ASSERT_EQ(bind.groups.size(), 1u);
  const auto& steps = bind.groups[0].steps;
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, OpKind::kRemoteScan);
  EXPECT_EQ(steps[0].pattern, 0u);
  EXPECT_EQ(steps[1].kind, OpKind::kLocalJoin);
  EXPECT_EQ(steps[2].kind, OpKind::kBindJoin);
  EXPECT_EQ(steps[2].pattern, 1u);

  // Collect mode trades every BindJoin for a full RemoteScan + LocalJoin;
  // the pattern order is identical either way.
  PlanOptions collect;
  collect.bind_join = false;
  PhysicalPlan coll = PlanPhysical(q, collect);
  ASSERT_EQ(coll.groups.size(), 1u);
  const auto& csteps = coll.groups[0].steps;
  ASSERT_EQ(csteps.size(), 4u);
  EXPECT_EQ(csteps[2].kind, OpKind::kRemoteScan);
  EXPECT_EQ(csteps[2].pattern, 1u);
  EXPECT_EQ(csteps[3].kind, OpKind::kLocalJoin);
  EXPECT_EQ(bind.Order(), coll.Order());
}

TEST(PlanPhysicalTest, FullyConstantPatternBecomesExistenceCheck) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p"), Term::Var("o")),
       P(Term::Uri("s"), Term::Uri("p"), Term::Literal("v"))});
  PhysicalPlan plan = PlanPhysical(q);
  ASSERT_EQ(plan.groups.size(), 2u);
  // The constant pattern is exact-subject class, so its singleton group
  // leads; it resolves as an existence probe, not a scan.
  ASSERT_EQ(plan.groups[0].patterns, (std::vector<size_t>{1}));
  ASSERT_EQ(plan.groups[0].steps.size(), 1u);
  EXPECT_EQ(plan.groups[0].steps[0].kind, OpKind::kExistenceCheck);
  EXPECT_EQ(plan.groups[0].steps[0].pattern, 1u);
  ASSERT_EQ(plan.groups[1].patterns, (std::vector<size_t>{0}));
  EXPECT_EQ(plan.groups[1].steps[0].kind, OpKind::kRemoteScan);
}

TEST(PlanPhysicalTest, DeterministicAcrossRepeatedRuns) {
  // Two components whose leads have equal cost (both exact-predicate):
  // ties break on the lowest original pattern index, every run.
  ConjunctiveQuery q(
      {"a", "b"},
      {P(Term::Var("a"), Term::Uri("p1"), Term::Var("o1")),
       P(Term::Var("b"), Term::Uri("p2"), Term::Var("o2")),
       P(Term::Var("a"), Term::Uri("p3"), Term::Var("o3")),
       P(Term::Var("b"), Term::Uri("p4"), Term::Var("o4"))});
  PhysicalPlan first = PlanPhysical(q);
  ASSERT_EQ(first.groups.size(), 2u);
  EXPECT_EQ(first.groups[0].patterns, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(first.groups[1].patterns, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(first.Order(), (std::vector<size_t>{0, 2, 1, 3}));
  for (int i = 0; i < 10; ++i) {
    PhysicalPlan again = PlanPhysical(q);
    ASSERT_EQ(again.ToString(), first.ToString());
    ASSERT_EQ(again.Order(), first.Order());
  }
}

// --- Cost-based planning (PlanOptions::estimates) ---------------------------

PatternEstimate Est(double rows, double ds, double dobj) {
  PatternEstimate e;
  e.known = true;
  e.rows = rows;
  e.distinct_subjects = ds;
  e.distinct_objects = dobj;
  return e;
}

TEST(CostPlannerTest, AllUnknownEstimatesMatchGreedyPlan) {
  // Differential guarantee: estimates that carry no information must produce
  // the greedy plan verbatim (same orders, same operator chains).
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),
       P(Term::Uri("s"), Term::Uri("p2"), Term::Var("x")),
       P(Term::Var("x"), Term::Uri("p3"), Term::Literal("v"))});
  PhysicalPlan greedy = PlanPhysical(q);
  PlanOptions unknown;
  unknown.estimates.resize(q.patterns().size());  // all !known
  PhysicalPlan cost = PlanPhysical(q, unknown);
  EXPECT_EQ(cost.ToString(), greedy.ToString());
  EXPECT_EQ(cost.Order(), greedy.Order());
}

TEST(CostPlannerTest, SmallestEstimatedExtentLeads) {
  // Greedy ranks the exact-subject pattern first; the estimates say its
  // extent is three orders of magnitude larger, so the cost model flips the
  // order and records its running cardinalities.
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p0"), Term::Var("o")),   // predicate class
       P(Term::Uri("s"), Term::Uri("p1"), Term::Var("x"))}); // subject class
  EXPECT_EQ(PlanPhysical(q).Order(), (std::vector<size_t>{1, 0}));

  PlanOptions opts;
  opts.estimates = {Est(2, 2, 2), Est(1000, 500, 500)};
  PhysicalPlan plan = PlanPhysical(q, opts);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].patterns, (std::vector<size_t>{0, 1}));
  ASSERT_EQ(plan.groups[0].est_cards.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.groups[0].est_cards[0], 2.0);
  EXPECT_DOUBLE_EQ(plan.groups[0].est_cards[1], 2.0 * 1000 / 500);
}

TEST(CostPlannerTest, EdgePicksBindOrCollectFromEstimates) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("s"), Term::Uri("p0"), Term::Var("x")),
       P(Term::Var("x"), Term::Uri("p1"), Term::Var("o"))});

  // The edge extent fans out hard (one distinct subject feeding the join):
  // the bound side of the bind-join would ship ~500 result rows back where
  // collecting the raw 100-row extent ships it once — the edge collects
  // despite bind_join = true.
  PlanOptions collect_wins;
  collect_wins.estimates = {Est(5, 5, 5), Est(100, 1, 100)};
  PhysicalPlan coll = PlanPhysical(q, collect_wins);
  ASSERT_EQ(coll.groups.size(), 1u);
  ASSERT_EQ(coll.groups[0].steps.size(), 4u);
  EXPECT_EQ(coll.groups[0].steps[2].kind, OpKind::kRemoteScan);
  EXPECT_EQ(coll.groups[0].steps[2].pattern, 1u);
  EXPECT_EQ(coll.groups[0].steps[3].kind, OpKind::kLocalJoin);

  // Small running join against a huge extent: bind-join pushdown stays.
  PlanOptions bind_wins;
  bind_wins.estimates = {Est(10, 1, 10), Est(10000, 10000, 10000)};
  PhysicalPlan bind = PlanPhysical(q, bind_wins);
  ASSERT_EQ(bind.groups[0].steps.size(), 3u);
  EXPECT_EQ(bind.groups[0].steps[2].kind, OpKind::kBindJoin);
  EXPECT_EQ(bind.groups[0].steps[2].pattern, 1u);
}

TEST(CostPlannerTest, UnroutablePatternAlwaysBinds) {
  // A RemoteScan of an unroutable pattern resolves no rows, so even when
  // the cost model would prefer collecting its (tiny) extent, the edge must
  // stay a bind-join.
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("s"), Term::Uri("p0"), Term::Var("x")),
       P(Term::Var("x"), Term::Var("p"), Term::Var("o"))});
  PlanOptions opts;
  opts.estimates = {Est(1000, 1, 1000), Est(5, 5, 5)};
  PhysicalPlan plan = PlanPhysical(q, opts);
  ASSERT_EQ(plan.groups.size(), 1u);
  ASSERT_EQ(plan.groups[0].steps.size(), 3u);
  EXPECT_EQ(plan.groups[0].steps[2].kind, OpKind::kBindJoin);
  EXPECT_EQ(plan.groups[0].steps[2].pattern, 1u);
}

TEST(CostPlannerTest, GroupSuffixDeterministicAndOrdersByObservedCard) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("s"), Term::Uri("p0"), Term::Var("x")),
       P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),
       P(Term::Var("x"), Term::Uri("p2"), Term::Var("o2"))});
  PlanOptions opts;
  opts.estimates = {Est(10, 1, 10), Est(500, 100, 100), Est(20, 20, 20)};

  GroupSuffix s1 = PlanGroupSuffix(q, {0}, {1, 2}, /*prefix_card=*/8, opts);
  GroupSuffix s2 = PlanGroupSuffix(q, {0}, {1, 2}, /*prefix_card=*/8, opts);
  ASSERT_EQ(s1.patterns.size(), 2u);
  // The smaller joined cardinality (pattern 2) extends the prefix first.
  EXPECT_EQ(s1.patterns[0], 2u);
  EXPECT_EQ(s1.patterns[1], 1u);
  // Equal inputs -> equal suffixes (the adaptive splice must be replayable).
  EXPECT_EQ(s1.patterns, s2.patterns);
  EXPECT_EQ(s1.est_cards, s2.est_cards);
  ASSERT_EQ(s1.steps.size(), s2.steps.size());
  for (size_t i = 0; i < s1.steps.size(); ++i) {
    EXPECT_EQ(s1.steps[i].kind, s2.steps[i].kind);
    EXPECT_EQ(s1.steps[i].pattern, s2.steps[i].pattern);
  }
}

}  // namespace
}  // namespace gridvine
