#ifndef GRIDVINE_COMMON_RNG_H_
#define GRIDVINE_COMMON_RNG_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace gridvine {

/// Deterministic random source used throughout the simulator. Every component
/// takes its Rng (or a seed) explicitly so whole-network experiments are
/// reproducible bit-for-bit from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
  }

  /// Log-normal sample with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential sample with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Zipf-distributed rank in [0, n): P(k) ∝ 1/(k+1)^s. Inverse-CDF over a
  /// lazily built table would be faster; rejection-free linear scan is fine
  /// for the n (tens to thousands) used in workload generation.
  size_t Zipf(size_t n, double s) {
    assert(n > 0);
    double norm = 0;
    for (size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
    double u = UniformDouble(0.0, norm);
    double acc = 0;
    for (size_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(double(k), s);
      if (u <= acc) return k - 1;
    }
    return n - 1;
  }

  /// Picks a uniformly random element of a non-empty indexable container
  /// (vector, span, ...). Returns whatever operator[] returns — a reference
  /// for vectors, a value for by-value views.
  template <typename C>
  decltype(auto) PickOne(const C& v) {
    assert(v.size() > 0);
    return v[static_cast<size_t>(UniformInt(0, int64_t(v.size()) - 1))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Derives an independent child generator; used to give each peer its own
  /// stream so adding a peer does not perturb the others' randomness.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: a full-avalanche 64 -> 64 bit mix, usable on its own
/// to derive independent seeds from (seed, index) pairs.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// 8-byte deterministic generator (SplitMix64). Statistically far weaker than
/// Rng's mt19937_64 (2.5 KB of state), but with one machine word of state it
/// is what makes *per-node* random streams affordable at 1M simulated peers:
/// the sharded network keeps one SmallRng per node so every node's latency /
/// loss / fault draws come from its own stream and are independent of the
/// global interleaving of sends — the property that keeps multi-shard runs
/// bit-identical to single-shard runs. Draw-for-draw it does NOT reproduce
/// Rng's sequences; the two engines are separate determinism domains.
class SmallRng {
 public:
  SmallRng() : state_(0) {}
  explicit SmallRng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Uniform in [0, 1) with 53 random bits.
  double NextDouble() {
    return double(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (two uniforms per call; no state carried
  /// between calls so each sample's draw count is fixed — important for
  /// deterministic replay).
  double Normal() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0) u1 = 5e-324;  // guard log(0)
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double LogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * Normal());
  }

  double Exponential(double rate) {
    double u = NextDouble();
    if (u <= 0) u = 5e-324;
    return -std::log(u) / rate;
  }

 private:
  uint64_t state_;
};

/// Counter-based per-peer generator: the full Rng-style drawing interface
/// (UniformInt / PickOne / Fork / jitter doubles) over a single SmallRng
/// machine word. This is what overlay peers carry instead of a 2.5 KB
/// mt19937_64 — the dominant share of a bare peer's footprint at the 1M-peer
/// scale point. Seeded from one draw of a caller-owned Rng so existing
/// `PGridPeer(..., Rng(seed), ...)` call sites keep working unchanged; like
/// SmallRng it is a separate determinism domain from Rng (same-seed runs are
/// self-identical and shard-count invariant, but not draw-for-draw equal to
/// the mt19937_64 streams).
class CompactRng {
 public:
  CompactRng() : rng_(0) {}
  explicit CompactRng(uint64_t seed) : rng_(seed) {}
  /// Consumes exactly one draw of `source` to seed the compact stream.
  explicit CompactRng(Rng& source) : rng_(source.engine()()) {}

  uint64_t Next() { return rng_.Next(); }

  /// Uniform integer in [lo, hi] inclusive. Lemire-style widening multiply
  /// keeps it allocation- and division-free; the (bounded) modulo bias of a
  /// 64-bit draw over overlay-sized ranges is far below anything the
  /// simulator can observe.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    uint64_t span = uint64_t(hi) - uint64_t(lo) + 1;
    if (span == 0) return int64_t(rng_.Next());  // full 64-bit range
    unsigned __int128 wide = (unsigned __int128)rng_.Next() * span;
    return lo + int64_t(uint64_t(wide >> 64));
  }

  double UniformDouble(double lo, double hi) {
    return rng_.UniformDouble(lo, hi);
  }

  bool Bernoulli(double p) { return rng_.Bernoulli(p); }

  double Exponential(double rate) { return rng_.Exponential(rate); }

  double LogNormal(double mu, double sigma) { return rng_.LogNormal(mu, sigma); }

  template <typename C>
  decltype(auto) PickOne(const C& v) {
    assert(v.size() > 0);
    return v[static_cast<size_t>(UniformInt(0, int64_t(v.size()) - 1))];
  }

  CompactRng Fork() { return CompactRng(rng_.Next()); }

 private:
  SmallRng rng_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_RNG_H_
