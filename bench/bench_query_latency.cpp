// Experiment E1 — the paper's Section 2.3 deployment claim:
//
//   "A recent deployment of GridVine on 340 machines scattered around the
//    world sharing 17000 triples showed that 40% of the 23000 triple pattern
//    queries we submitted were answered within one second only, and 75%
//    within five seconds."
//
// We rebuild that deployment on the simulator: 340 peers, a WAN latency
// model with a heavy log-normal tail (PlanetLab-like), ~17k triples from the
// 50-schema bioinformatic workload, and 23k triple-pattern queries issued
// from random peers. The harness prints the latency CDF and the two
// fractions the paper reports.
//
//   $ ./bench/bench_query_latency            # full 23000 queries
//   $ GV_QUERIES=2000 ./bench/bench_query_latency   # quicker run

// A second section (E1b) replays the same workload on a 100k-peer
// deployment driven by the sharded engine — the scale target of the
// compact-state work — and records latency, per-peer memory and event
// throughput in an extra JSON row.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "trace_stats.h"
#include "workload/bio_workload.h"
#include "gridvine/gridvine_network.h"

using namespace gridvine;

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? size_t(std::strtoull(v, nullptr, 10)) : fallback;
}

double Fraction(const std::vector<double>& sorted, double bound) {
  size_t n = size_t(std::upper_bound(sorted.begin(), sorted.end(), bound) -
                    sorted.begin());
  return sorted.empty() ? 0 : double(n) / double(sorted.size());
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = size_t(p * double(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_query_latency");
  const size_t kPeers = EnvOr("GV_PEERS", 340);
  const size_t kQueries = EnvOr("GV_QUERIES", 23000);

  GridVineNetwork::Options options;
  options.num_peers = kPeers;
  options.key_depth = 16;
  options.seed = 20070923;
  options.latency = GridVineNetwork::LatencyKind::kWan;
  // Heavy-tailed WAN calibration (PlanetLab-era, 2007 Java stack): the
  // variable part of each one-way message delay is log-normal with median
  // ~110 ms and a fat tail (sigma = 1.3), on a 15 ms propagation floor.
  options.latency_param = 0.015;
  options.wan_mu = -2.5;
  options.wan_sigma = 1.2;
  // ~7% of messages cross an overloaded host and pick up seconds of queue
  // delay — the PlanetLab pathology behind the paper's fat 5-second tail.
  options.wan_straggler_prob = 0.09;
  options.wan_straggler_mean = 6.0;
  options.peer.query_timeout = 30.0;
  options.overlay.retry.base_timeout = 30.0;
  GridVineNetwork net(options);

  BioWorkload::Options wl;
  wl.num_schemas = 50;
  wl.num_entities = 500;
  wl.entities_per_schema = 42;  // ~17k triples at ~8 attrs/schema
  wl.seed = 7;
  BioWorkload workload(wl);

  std::printf("E1: triple-pattern query latency (paper Section 2.3)\n");
  std::printf("  peers=%zu triples=%zu queries=%zu\n", kPeers,
              workload.TotalTriples(), kQueries);

  // Deployment: schema owners spread across the network, data inserted.
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    size_t owner = (s * 7) % net.size();
    if (!net.InsertSchema(owner, workload.schemas()[s]).ok()) return 1;
    if (!net.InsertTriples(owner, workload.TriplesFor(s)).ok()) return 1;
  }
  std::printf("  data inserted; issuing queries...\n");

  // Tracing is on for the whole query phase: span ids come from a plain
  // counter, so a traced run is bit-identical to an untraced one. The ring is
  // cleared per query, making each snapshot exactly one query's causal tree.
  net.tracer()->Enable(1 << 16);

  auto e1_t0 = std::chrono::steady_clock::now();
  Rng rng(99);
  std::vector<double> latencies;
  latencies.reserve(kQueries);
  std::vector<size_t> hops;
  std::vector<size_t> retries;
  hops.reserve(kQueries);
  retries.reserve(kQueries);
  size_t failed = 0;
  size_t empty = 0;
  gridvine::bench::CriticalPathAgg cp_agg;
  for (size_t q = 0; q < kQueries; ++q) {
    size_t schema = size_t(rng.UniformInt(0, int64_t(workload.schemas().size()) - 1));
    auto gq = workload.MakeQuery(schema, &rng);
    size_t issuer = size_t(rng.UniformInt(0, int64_t(net.size()) - 1));
    net.tracer()->Clear();
    auto res = net.SearchFor(issuer, gq.query);
    if (!res.status.ok()) {
      ++failed;
      continue;
    }
    if (res.items.empty()) ++empty;
    latencies.push_back(res.latency);
    TraceAnalyzer an(net.tracer()->Snapshot());
    auto ts = gridvine::bench::HopsAndRetries(an.spans(), res.trace_id);
    hops.push_back(ts.hops);
    retries.push_back(ts.retries);
    cp_agg.Add(an.CriticalPathFor(res.trace_id));
  }
  std::sort(latencies.begin(), latencies.end());
  const double e1_run_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - e1_t0)
          .count();
  const double e1_qps = e1_run_s > 0 ? double(kQueries) / e1_run_s : 0;

  std::printf("\n  %-28s %10s %10s\n", "metric", "paper", "measured");
  std::printf("  %-28s %10s %9.0f%%\n", "answered within 1 s", "40%",
              Fraction(latencies, 1.0) * 100);
  std::printf("  %-28s %10s %9.0f%%\n", "answered within 5 s", "75%",
              Fraction(latencies, 5.0) * 100);
  std::printf("\n  latency percentiles (s): p10=%.2f p25=%.2f p50=%.2f "
              "p75=%.2f p90=%.2f p99=%.2f\n",
              Percentile(latencies, 0.10), Percentile(latencies, 0.25),
              Percentile(latencies, 0.50), Percentile(latencies, 0.75),
              Percentile(latencies, 0.90), Percentile(latencies, 0.99));
  using gridvine::bench::CountPercentile;
  std::printf("  per-query hops (from traces): p50=%.0f p90=%.0f p99=%.0f\n",
              CountPercentile(hops, 0.50), CountPercentile(hops, 0.90),
              CountPercentile(hops, 0.99));
  std::printf("  per-query retries (from traces): p50=%.0f p90=%.0f "
              "p99=%.0f\n",
              CountPercentile(retries, 0.50), CountPercentile(retries, 0.90),
              CountPercentile(retries, 0.99));
  cp_agg.Print();
  std::printf("  queries failed: %zu, empty answers: %zu\n", failed, empty);
  std::printf("  network traffic: %llu messages, %.1f MB\n",
              (unsigned long long)net.network()->stats().messages_sent,
              double(net.network()->stats().bytes_sent) / 1e6);
  std::vector<std::pair<std::string, double>> e1_row = {
      {"within_1s", Fraction(latencies, 1.0)},
      {"within_5s", Fraction(latencies, 5.0)},
      {"p50_s", Percentile(latencies, 0.50)},
      {"p90_s", Percentile(latencies, 0.90)},
      {"p99_s", Percentile(latencies, 0.99)},
      {"failed", double(failed)},
      {"empty", double(empty)},
      {"messages", double(net.network()->stats().messages_sent)},
      {"hops_p50", CountPercentile(hops, 0.50)},
      {"hops_p90", CountPercentile(hops, 0.90)},
      {"hops_p99", CountPercentile(hops, 0.99)},
      {"retries_p50", CountPercentile(retries, 0.50)},
      {"retries_p90", CountPercentile(retries, 0.90)},
      {"retries_p99", CountPercentile(retries, 0.99)},
      {"queries_per_sec", e1_qps}};
  cp_agg.AppendShares(&e1_row);
  json.Add("latency", std::move(e1_row));

  // ---- E1b: the same workload at 100k peers on the sharded engine ----------
  //
  // Tracing works in sharded mode too: every shard records into a private
  // ring and net.tracer() is the merged causal view, so this section gets
  // the same per-query hop counts and critical-path attribution as E1.
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const size_t kScalePeers = EnvOr("GV_SCALE_PEERS", quick ? 20000 : 100000);
  const size_t kScaleQueries = EnvOr("GV_SCALE_QUERIES", quick ? 100 : 2000);
  const uint32_t kShards = 4;

  GridVineNetwork::Options sopt = options;
  sopt.num_peers = kScalePeers;
  sopt.shards = kShards;
  std::printf("\nE1b: full query path at scale (sharded engine)\n");
  std::printf("  peers=%zu shards=%u queries=%zu\n", kScalePeers, kShards,
              kScaleQueries);

  auto t0 = std::chrono::steady_clock::now();
  GridVineNetwork snet(sopt);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    size_t owner = (s * 7) % snet.size();
    if (!snet.InsertSchema(owner, workload.schemas()[s]).ok()) return 1;
    if (!snet.InsertTriples(owner, workload.TriplesFor(s)).ok()) return 1;
  }
  auto t1 = std::chrono::steady_clock::now();
  const size_t events_before = snet.engine()->events_executed();

  snet.tracer()->Enable(1 << 16);

  Rng srng(99);
  std::vector<double> slat;
  slat.reserve(kScaleQueries);
  std::vector<size_t> shops;
  size_t sfailed = 0;
  size_t sempty = 0;
  gridvine::bench::CriticalPathAgg scp_agg;
  for (size_t q = 0; q < kScaleQueries; ++q) {
    size_t schema =
        size_t(srng.UniformInt(0, int64_t(workload.schemas().size()) - 1));
    auto gq = workload.MakeQuery(schema, &srng);
    size_t issuer = size_t(srng.UniformInt(0, int64_t(snet.size()) - 1));
    snet.tracer()->Clear();
    auto res = snet.SearchFor(issuer, gq.query);
    if (!res.status.ok()) {
      ++sfailed;
      continue;
    }
    if (res.items.empty()) ++sempty;
    slat.push_back(res.latency);
    TraceAnalyzer an(snet.tracer()->Snapshot());
    shops.push_back(
        gridvine::bench::HopsAndRetries(an.spans(), res.trace_id).hops);
    scp_agg.Add(an.CriticalPathFor(res.trace_id));
  }
  auto t2 = std::chrono::steady_clock::now();
  std::sort(slat.begin(), slat.end());

  const double build_s = std::chrono::duration<double>(t1 - t0).count();
  const double run_s = std::chrono::duration<double>(t2 - t1).count();
  const size_t events = snet.engine()->events_executed() - events_before;
  const double events_per_sec = run_s > 0 ? double(events) / run_s : 0;
  const double bytes_per_peer =
      double(snet.MemoryFootprint()) / double(kScalePeers);
  const NetworkStats sstats = snet.engine()->AggregateStats();

  std::printf("  answered within 1 s: %.0f%%, within 5 s: %.0f%%\n",
              Fraction(slat, 1.0) * 100, Fraction(slat, 5.0) * 100);
  std::printf("  latency (s): p50=%.2f p90=%.2f p99=%.2f  failed=%zu "
              "empty=%zu\n",
              Percentile(slat, 0.50), Percentile(slat, 0.90),
              Percentile(slat, 0.99), sfailed, sempty);
  std::printf("  build=%.1fs  queries=%.1fs  %.0f events/s  %.0f bytes/peer  "
              "%llu messages\n",
              build_s, run_s, events_per_sec, bytes_per_peer,
              (unsigned long long)sstats.messages_sent);
  scp_agg.Print();
  std::vector<std::pair<std::string, double>> e1b_row = {
      {"peers", double(kScalePeers)},
      {"shards", double(kShards)},
      {"within_1s", Fraction(slat, 1.0)},
      {"within_5s", Fraction(slat, 5.0)},
      {"p50_s", Percentile(slat, 0.50)},
      {"p90_s", Percentile(slat, 0.90)},
      {"p99_s", Percentile(slat, 0.99)},
      {"failed", double(sfailed)},
      {"empty", double(sempty)},
      {"messages", double(sstats.messages_sent)},
      {"bytes_per_peer", bytes_per_peer},
      {"events_per_sec", events_per_sec},
      {"queries_per_sec", run_s > 0 ? double(kScaleQueries) / run_s : 0},
      {"build_s", build_s},
      {"run_s", run_s},
      {"hops_p50", CountPercentile(shops, 0.50)},
      {"hops_p90", CountPercentile(shops, 0.90)}};
  scp_agg.AppendShares(&e1b_row);
  json.Add("scale_" + std::to_string(kScalePeers) + "/shards_" +
               std::to_string(kShards),
           std::move(e1b_row));
  json.Finish();
  return 0;
}
