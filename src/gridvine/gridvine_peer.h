#ifndef GRIDVINE_GRIDVINE_GRIDVINE_PEER_H_
#define GRIDVINE_GRIDVINE_GRIDVINE_PEER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "gridvine/messages.h"
#include "mapping/mapping_graph.h"
#include "mapping/schema_mapping.h"
#include "pgrid/pgrid_peer.h"
#include "query/exec/backend.h"
#include "query/exec/executor.h"
#include "query/extent_cache.h"
#include "query/query.h"
#include "query/stats/stats_cache.h"
#include "rdf/triple.h"
#include "schema/schema.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "store/triple_store.h"

namespace gridvine {

class QueryFrontend;

/// A complete GridVine peer: the semantic mediation layer stacked on a P-Grid
/// overlay peer (the paper's Figure 1). It provides the mediation-layer
/// primitives —
///
///   Update(data)      -> InsertTriple   (indexed 3x: subject/predicate/object)
///   Update(schema)    -> InsertSchema   (at Hash(schema name))
///   Update(mapping)   -> InsertMapping  (at the source-schema key space)
///   Update(connectivity) -> PublishDegree (at Hash(domain))
///   SearchFor(query)  -> SearchFor      (with optional reformulation,
///                                        iterative or recursive)
///
/// — and maintains the local relational database DB_p mirroring the overlay
/// entries this peer is responsible for.
class GridVinePeer {
 public:
  struct Options {
    /// Bits of overlay keys produced by the order-preserving hash.
    int key_depth = 16;
    /// Window a query waits for (more) answers before reporting.
    SimTime query_timeout = 10.0;
    /// Max mappings chained during reformulation (iterative BFS depth and
    /// recursive TTL).
    int max_reformulation_hops = 6;
    /// Retry discipline for the issuing peer's query dispatches (the
    /// reliable query layer): a branch that has not answered within the
    /// backed-off window is re-routed, up to max_attempts, instead of being
    /// written off by the single query_timeout. Branch retries stay inside
    /// the query window — an exhausted branch closes early so iterative
    /// queries need not wait out the full timeout.
    RetryPolicy query_retry{/*base_timeout=*/2.5, /*max_attempts=*/3,
                            /*backoff_multiplier=*/2.0, /*max_timeout=*/10.0,
                            /*jitter=*/0.1};

    // --- Serving layer (all default-off / no-op, so seeded runs of the
    // --- pre-serving scenarios replay unchanged) ---------------------------

    /// Responder-side result/extent cache (query/extent_cache.h): identical
    /// pattern + bound-constant signatures are answered from the cached wire
    /// payload, validated against TripleStore::version().
    struct CacheOptions {
      bool enabled = false;
      size_t max_entries = 4096;
      size_t max_bytes = 4u << 20;
    } cache;

    /// Cross-query batching: issuer-tracked RemoteScan/BoundScan requests
    /// headed to the same key region coalesce into one BatchEnvelope within
    /// `window` simulated seconds (or as soon as `max_items` accumulate).
    /// Retries always re-route the retained individual request, bypassing
    /// the batcher, so a lost envelope never strands its branches.
    struct BatchOptions {
      bool enabled = false;
      SimTime window = 0.005;
      size_t max_items = 32;
    } batch;

    /// Responder-side service-time model: answering a scan occupies the
    /// peer's single logical server FIFO for a simulated cost, so hot key
    /// regions saturate under flash crowds and caching/batching buy real
    /// simulated throughput. Off = responses leave instantly (legacy).
    struct ServiceModel {
      bool enabled = false;
      SimTime per_request = 1e-3;  ///< fixed cost per wire request served
      SimTime per_item = 1e-4;     ///< marginal cost per extra batched item
      SimTime per_row = 5e-5;      ///< per result row matched + serialized
      SimTime per_hit = 1e-4;      ///< flat cost when served from the cache
    } service;

    /// Admission control for the per-peer QueryFrontend.
    struct FrontendOptions {
      size_t max_concurrent = 8;
      size_t max_queue = 64;
    } frontend;

    /// Distributed statistics + cost-based conjunctive planning
    /// (query/stats/): before planning, the issuer fetches the StoreSketch
    /// of each key region its patterns route to (cached with bounded
    /// staleness), orders joins by estimated cardinality, and the executor
    /// re-optimizes mid-flight when observations diverge. Off = legacy
    /// greedy planning; seeded runs replay bit-identically.
    struct StatsOptions {
      bool enabled = false;
      /// Cached sketch staleness bound (simulated seconds).
      SimTime ttl = 60.0;
      /// How long planning waits for outstanding sketch fetches before
      /// degrading the unanswered regions to the greedy rank. Fetches are
      /// single-attempt: a lost record costs accuracy, never correctness.
      SimTime fetch_timeout = 1.0;
      /// Mid-flight re-optimization threshold: the group's operator suffix
      /// is re-planned when observed/estimated cardinality diverges by this
      /// factor (either direction). <= 0 disables adaptive execution
      /// (static cost-based plans only).
      double divergence = 4.0;
    } stats;
  };

  using StatusCallback = std::function<void(Status)>;

  GridVinePeer(Simulator* sim, Network* network, Rng rng, Options options,
               PGridPeer::Options overlay_options);
  ~GridVinePeer();

  GridVinePeer(const GridVinePeer&) = delete;
  GridVinePeer& operator=(const GridVinePeer&) = delete;

  /// The underlying overlay peer (construction, routing introspection).
  PGridPeer* overlay() { return overlay_.get(); }
  const PGridPeer* overlay() const { return overlay_.get(); }
  NodeId id() const { return overlay_->id(); }

  /// The local database DB_p: every triple this peer stores at the overlay
  /// layer, kept in sync automatically (including replication traffic).
  const TripleStore& local_db() const { return local_db_; }

  /// The hasher defining this network's key space.
  const OrderPreservingHash& hasher() const { return hash_; }

  // --- Mediation-layer updates ---------------------------------------------

  /// Inserts a triple: three overlay updates keyed by the hash of its
  /// subject, predicate and object. The callback fires once all three are
  /// acknowledged (first error wins, remaining acks ignored).
  void InsertTriple(const Triple& triple, StatusCallback cb);

  /// Bulk load: validates every triple up front (failing fast, before any
  /// network traffic), then dispatches all 3·n overlay updates at once and
  /// fires the callback after the last ack (first error wins). Receiving
  /// peers absorb the burst through TripleStore's batch-friendly indexes.
  void InsertTriples(const std::vector<Triple>& triples, StatusCallback cb);

  /// Removes a triple (three overlay deletes).
  void RemoveTriple(const Triple& triple, StatusCallback cb);

  /// Publishes a schema definition at Hash(schema name).
  void InsertSchema(const Schema& schema, StatusCallback cb);

  /// Replaces the stored definition of `schema` (matched by name) with the
  /// given state, removing any stale serializations first. FetchSchema
  /// returns the first record matching the name, so schema *evolution* must
  /// go through this (a plain InsertSchema would leave the old definition
  /// discoverable).
  void UpsertSchema(const Schema& schema, StatusCallback cb);

  /// Publishes a mapping at its source schema's key space — and, when the
  /// mapping is bidirectional, at the target schema's key space too.
  void InsertMapping(const SchemaMapping& mapping, StatusCallback cb);

  /// Replaces the stored record of `mapping` (matched by id) with the given
  /// state — how deprecation becomes visible to the whole network.
  void UpsertMapping(const SchemaMapping& mapping, StatusCallback cb);

  // --- Mediation-layer lookups ---------------------------------------------

  /// Fetches a schema definition by name.
  void FetchSchema(const std::string& name,
                   std::function<void(Result<Schema>)> cb);

  /// Fetches all mappings stored at `schema`'s key space (deprecated ones
  /// included; callers filter).
  void FetchMappingsFor(const std::string& schema,
                        std::function<void(Result<std::vector<SchemaMapping>>)> cb);

  // --- Connectivity registry (Section 3.1) ---------------------------------

  /// One schema's degree record in a domain's connectivity registry.
  struct DegreeRecord {
    std::string schema;
    int in_degree = 0;
    int out_degree = 0;
    uint64_t version = 0;
  };

  /// Publishes (schema, in, out) under Hash(domain), superseding this peer's
  /// previous record for the schema (version counter).
  void PublishDegree(const std::string& domain, const std::string& schema,
                     int in_degree, int out_degree, StatusCallback cb);

  /// Retrieves the registry for `domain`: latest record per schema.
  void FetchDomainDegrees(
      const std::string& domain,
      std::function<void(Result<std::vector<DegreeRecord>>)> cb);

  // --- Query resolution (Sections 2.3 and 4) --------------------------------

  struct QueryOptions {
    /// Reformulate through schema mappings at all? (false = Section 2.3
    /// single-schema resolution.)
    bool reformulate = false;
    ReformulationMode mode = ReformulationMode::kIterative;
    /// Override of Options::max_reformulation_hops when >= 0.
    int max_hops = -1;
    /// Override of Options::query_timeout when > 0.
    SimTime timeout = -1;
    /// Ablation knob: route by this position instead of the most-specific
    /// constant (ignored unless that position holds an exact constant).
    /// Only affects the original dispatch at the issuing peer.
    std::optional<TriplePos> routing_position;
    /// Only traverse sound mapping directions: excludes generalizing
    /// (forward subsumption) reformulations — precision over recall. See
    /// OrientMappingsFrom in query/reformulation.h.
    bool sound_only = false;
    /// Conjunctive queries only: resolve patterns after a group's first by
    /// pushing the accumulated bindings toward the data (bind-join
    /// pushdown) instead of fetching each pattern's full extent. False
    /// selects the collect-then-join baseline.
    bool bind_join = true;
    /// Streaming hook: invoked for each batch of answer rows as it arrives
    /// (before the final aggregate callback) — how the paper's demo
    /// "monitors the list of results received for each query" live.
    /// Arguments: schema that answered, rows in the batch, arrival time.
    std::function<void(const std::string& schema, size_t rows,
                       SimTime arrival)>
        on_answer;
    /// Causal parent for the query's "op.search" span (the conjunctive
    /// executor routes its operator spans here). Invalid = parent on the
    /// ambient delivery ctx, or start a fresh trace.
    TraceCtx trace_parent{};
  };

  /// One value of the distinguished variable, with provenance.
  struct ResultItem {
    Term value;
    std::string schema;        ///< schema of the matching data
    int mapping_path_len = 0;  ///< mappings applied to reach that schema
    double confidence = 1.0;
    SimTime arrival = 0;       ///< simulated time the answer arrived
  };

  struct QueryResult {
    Status status;             ///< OK if the (original) query was resolved
    std::vector<ResultItem> items;
    size_t schemas_answered = 0;
    size_t reformulations = 0;
    SimTime latency = 0;       ///< issue-to-completion simulated seconds
    SimTime first_result_latency = -1;  ///< -1 when no results
    /// Trace of this query's span tree (0 when tracing was off) — the bench
    /// key for per-query hop/retry counts from the tracer's snapshot.
    uint64_t trace_id = 0;
  };
  using QueryCallback = std::function<void(QueryResult)>;

  /// Resolves SearchFor(x? : pattern). Items are deduplicated by
  /// (value, schema). With reformulation enabled the result aggregates
  /// answers from every schema reachable through non-deprecated mappings.
  void SearchFor(const TriplePatternQuery& query, const QueryOptions& options,
                 QueryCallback cb);

  /// Resolves a conjunctive query through the plan-driven executor
  /// (query/exec/): patterns split into join-connected groups running
  /// concurrently, each group resolved scan-then-bind-join (paper Section
  /// 2.3, with bind-join pushdown). Returns the distinct binding rows
  /// restricted to the distinguished variables.
  struct ConjunctiveResult {
    Status status;
    std::vector<BindingSet> rows;
    SimTime latency = 0;
    /// Issuer-side shipping accounting for this query.
    ConjunctiveExecutor::Metrics metrics;
    /// Trace of the query's "op.cquery" span tree (0 when tracing was off).
    uint64_t trace_id = 0;
  };
  void SearchForConjunctive(const ConjunctiveQuery& query,
                            const QueryOptions& options,
                            std::function<void(ConjunctiveResult)> cb);

  /// Human-readable plan explanation: the physical plan this peer would
  /// execute for `query` right now (greedy, or cost-based from whatever
  /// sketches its statistics cache currently holds — no fetches are
  /// issued), with per-pattern estimated rows and the last observed
  /// cardinality fed back by the adaptive executor.
  std::string ExplainConjunctivePlan(const ConjunctiveQuery& query,
                                     const QueryOptions& options);

  /// Statistics for experiments.
  struct Counters {
    uint64_t queries_issued = 0;
    uint64_t queries_answered = 0;  // as destination
    uint64_t reformulations_performed = 0;  // as recursive intermediary
    uint64_t bound_scans_answered = 0;  // as destination
    uint64_t result_rows_sent = 0;      // as destination (all response kinds)
    uint64_t batch_items = 0;           // as issuer: requests coalesced
    uint64_t batch_flushes = 0;         // as issuer: envelopes (or lone parts)
    uint64_t batches_answered = 0;      // as destination: envelopes served
    uint64_t stats_fetches = 0;         // as issuer: StatsRequests routed
    uint64_t stats_served = 0;          // as destination: sketches answered
    uint64_t sketch_rebuilds = 0;       // serving sketch rebuilt (store moved)
  };
  const Counters& counters() const { return counters_; }

  /// This peer's admission-controlled serving entry point (always present;
  /// Options::frontend bounds it).
  QueryFrontend* frontend() { return frontend_.get(); }
  const QueryFrontend* frontend() const { return frontend_.get(); }

  /// The responder-side extent cache, or nullptr when Options::cache is off.
  const ExtentCache* cache() const { return cache_.get(); }

  /// The issuer-side statistics cache, or nullptr when Options::stats is off.
  const StatsCache* stats_cache() const { return stats_cache_.get(); }

  /// Adds this peer's counters into `metrics` under "gv.*".
  void PublishMetrics(MetricsRegistry* metrics) const;

  /// Bytes held by this peer across both layers: the mediation-layer object,
  /// local triple store, and the P-Grid overlay peer underneath.
  size_t MemoryFootprint() const;

  /// Conjunctive executors still in flight (0 once every conjunctive query
  /// has resolved — the chaos tests' leak check).
  size_t ActiveConjunctiveExecs() const { return active_execs_.size(); }
  /// Single-pattern queries still in flight.
  size_t PendingQueryCount() const { return pending_queries_.size(); }

  const Options& options() const { return options_; }

 private:
  /// One destination's answer to one (possibly reformulated) pattern.
  struct RowBatch {
    std::string schema;
    int mapping_path_len = 0;
    double confidence = 1.0;
    SimTime arrival = 0;
    std::vector<BindingSet> rows;
  };

  /// One retried dispatch branch of a pending query: the request is kept so
  /// a retry re-routes the identical payload (same dispatch_id — duplicate
  /// answers collapse onto one branch closure).
  struct OpenDispatch {
    std::shared_ptr<QueryRequest> req;
    Key route_key;
    int attempts = 1;
    /// "op.dispatch" branch span; attempts' flights and retry markers
    /// parent here.
    TraceCtx span;
  };

  struct PendingQuery {
    TriplePatternQuery query;
    QueryOptions options;
    SimTime started = 0;
    // Aggregation state.
    std::vector<RowBatch> batches;
    std::set<std::string> schemas_answered;
    std::set<std::string> visited;  // schemas covered (iterative expansion)
    size_t reformulations = 0;
    SimTime first_result = -1;
    // Iterative-mode bookkeeping: branches still expected to answer.
    int outstanding = 0;
    // Dispatch branches awaiting an answer, keyed by dispatch_id.
    std::unordered_map<uint64_t, OpenDispatch> open_dispatches;
    // Range (multicast) dispatches have an unknown number of responders:
    // such a query only completes at its timeout.
    bool used_range_dispatch = false;
    bool closed = false;
    /// "op.search" span covering the whole query.
    TraceCtx span;
    // Invoked exactly once when the query completes (early or at timeout).
    std::function<void(PendingQuery&)> on_finish;
  };

  Key KeyFor(const std::string& term_value) const { return hash_(term_value); }

  /// Core engine shared by SearchFor and SearchForConjunctive: resolves one
  /// pattern (with optional reformulation) and hands the accumulated batches
  /// to `on_finish`.
  uint64_t StartQuery(const TriplePatternQuery& query,
                      const QueryOptions& options,
                      std::function<void(PendingQuery&)> on_finish);

  /// Fans one (possibly reformulated) pattern out to its destination.
  /// `reply_to` is the peer that must receive the answer.
  void DispatchQuery(uint64_t qid, const TriplePatternQuery& query,
                     NodeId reply_to, ReformulationMode mode, int ttl,
                     std::vector<std::string> visited, int path_len,
                     double confidence, bool sound_only);

  /// Iterative engine: fetch mappings of `schema`, reformulate, recurse.
  void IterativeExpand(uint64_t qid, const TriplePatternQuery& query,
                       std::set<std::string> visited, int depth,
                       int path_len, double confidence);

  void FinishQuery(uint64_t qid);
  void MaybeFinishIterative(uint64_t qid);

  /// Arms the per-branch retry timer for `attempt` of dispatch `did`: on
  /// expiry the branch is re-routed (backoff per Options::query_retry) or,
  /// once exhausted, closed so the query can complete without it.
  void ArmDispatchTimer(uint64_t qid, uint64_t did, int attempt);
  /// Closes one open dispatch branch and updates completion bookkeeping.
  void CloseDispatch(PendingQuery& p, uint64_t qid, uint64_t did);

  // --- Bind-join transport (the QueryBackend the executor drives) ----------

  /// The peer-side QueryBackend implementation (defined in the .cc).
  class ExecBackend;

  /// One retried bound-scan dispatch branch (one destination key region of
  /// one BoundScan call). The request is retained so a retry re-routes the
  /// identical payload; duplicate answers collapse onto one branch closure.
  struct OpenBoundScan {
    std::shared_ptr<BoundScanRequest> req;
    Key route_key;
    int attempts = 1;
    uint64_t call_id = 0;
    /// Maps the branch's local probe indexes back to the call's.
    std::vector<uint32_t> global_index;
    /// "op.bound_scan" branch span.
    TraceCtx span;
  };

  /// One QueryBackend::BoundScan invocation: its probes fan out to one
  /// dispatch branch per destination key region; the call resolves once
  /// every branch has answered or exhausted its retries (any exhausted
  /// branch turns the whole call into a Timeout).
  struct BoundCall {
    QueryBackend::BoundScanCallback cb;
    std::vector<QueryBackend::BoundRow> rows;
    int outstanding = 0;
    bool timed_out = false;
  };

  /// One in-flight conjunctive query: executor + its transport state.
  struct ActiveExec {
    std::unique_ptr<QueryBackend> backend;
    std::unique_ptr<ConjunctiveExecutor> executor;
    std::unordered_map<uint64_t, OpenBoundScan> open_scans;  // by dispatch_id
    std::unordered_map<uint64_t, BoundCall> calls;           // by call id
    uint64_t next_call_id = 1;
    /// "op.cquery" root span covering the whole conjunctive query.
    TraceCtx span;
  };

  /// Dispatches one BoundScan call: partitions the probes per destination
  /// key region, routes one batched request per region, arms retries.
  /// `trace_parent` parents the per-branch "op.bound_scan" spans (normally
  /// the executor's operator span).
  void StartBoundScan(uint64_t exec_id, const TriplePattern& pattern,
                      std::vector<BindingSet> probes,
                      QueryBackend::BoundScanCallback cb,
                      TraceCtx trace_parent = TraceCtx{});
  /// Per-branch retry timer, mirroring ArmDispatchTimer.
  void ArmBoundScanTimer(uint64_t exec_id, uint64_t did, int attempt);
  /// Closes one branch (answered or exhausted) and resolves the call once
  /// its last branch closes.
  void CloseBoundScan(uint64_t exec_id, uint64_t did, bool answered);
  void ResolveBoundCall(uint64_t exec_id, uint64_t call_id);

  /// Extension dispatch from the overlay.
  void OnExtensionMessage(NodeId origin,
                          std::shared_ptr<const MessageBody> payload,
                          int hops);
  void HandleQueryRequest(const QueryRequest& req);
  void HandleQueryResponse(const QueryResponse& resp);
  void HandleBoundScanRequest(const BoundScanRequest& req);
  void HandleBoundScanResponse(const BoundScanResponse& resp);
  void HandleBatchEnvelope(const BatchEnvelope& env);

  // --- Statistics layer -----------------------------------------------------

  /// Back half of SearchForConjunctive: plans the query (cost-based when
  /// `estimates` carries at least one known entry, legacy greedy otherwise)
  /// and runs the executor.
  void StartConjunctive(const ConjunctiveQuery& query,
                        const QueryOptions& options,
                        std::vector<PatternEstimate> estimates,
                        std::function<void(ConjunctiveResult)> cb);
  /// Builds the estimates vector for `query` from the statistics cache
  /// (sketch estimates overridden by fresher observed cardinalities).
  std::vector<PatternEstimate> EstimatesFor(const ConjunctiveQuery& query);
  void HandleStatsRequest(const StatsRequest& req);
  void HandleStatsRecord(const StatsRecord& rec);

  // --- Serving layer --------------------------------------------------------

  /// Appends an issuer-tracked request to the destination region's pending
  /// batch, scheduling a flush at now + Options::batch.window when the
  /// buffer was empty (flushing early at max_items).
  void EnqueueBatch(const Key& key, std::shared_ptr<const MessageBody> part);
  /// Sends one region's pending batch; `gen` guards the window timer against
  /// a buffer that was already flushed (overflow) and restarted since.
  void FlushBatch(const Key& key, uint64_t gen);

  /// Sends a response `cost` simulated seconds of service time from now,
  /// serialized through this peer's FIFO server (the service-time model).
  /// Immediate when the model is off; deposits into batch_reply_sink_ while
  /// a batch envelope is being served. Takes the body non-const so the
  /// request's causal ctx can be stamped on it — the service model defers
  /// the actual send to a timer, where the ambient delivery ctx is gone.
  void SendResponse(NodeId to, std::shared_ptr<MessageBody> body,
                    SimTime cost);
  /// Service cost of answering one scan/bound-scan request.
  SimTime ScanServeCost(bool cache_hit, size_t rows) const;

  /// Storage listener keeping DB_p in sync.
  void OnStorageChange(UpdateOp op, const Key& key, const std::string& value);

  /// The network's tracer while tracing is live, else nullptr.
  Tracer* LiveTracer() const;
  TraceCtx ResponderParent(const TraceCtx& carried) const;
  /// The frontend opens its "op.serve"/"op.queue" spans on the same tracer.
  friend class QueryFrontend;

  Simulator* sim_;
  Network* network_;
  Rng rng_;
  Options options_;
  OrderPreservingHash hash_;
  std::unique_ptr<PGridPeer> overlay_;
  TripleStore local_db_;
  std::unordered_map<uint64_t, PendingQuery> pending_queries_;
  /// Conjunctive executors in flight, keyed by exec id. shared_ptr so a
  /// finished exec can be kept alive until the stack unwinds (the done
  /// callback fires from inside executor code).
  std::unordered_map<uint64_t, std::shared_ptr<ActiveExec>> active_execs_;
  /// Recursive-mode duplicate suppression: (query id, schema) already handled
  /// at this peer.
  std::set<std::pair<uint64_t, std::string>> recursive_seen_;
  /// Last published connectivity record per (domain, schema), for supersede.
  std::map<std::pair<std::string, std::string>, std::string> published_degrees_;
  uint64_t next_version_ = 1;
  uint64_t next_query_id_ = 1;
  uint64_t next_dispatch_id_ = 1;
  uint64_t next_exec_id_ = 1;
  Counters counters_;

  // --- Statistics-layer state -----------------------------------------------
  std::unique_ptr<StatsCache> stats_cache_;  // null unless Options::stats.enabled
  /// Serving-side sketch of DB_p, rebuilt lazily when a StatsRequest finds
  /// the store version has moved past built_version().
  std::unique_ptr<StoreSketch> serving_sketch_;
  /// One outstanding single-attempt sketch fetch.
  struct OpenStatsFetch {
    uint64_t prefetch_id = 0;
    std::string region;  ///< StatsCache key the record lands under
  };
  std::unordered_map<uint64_t, OpenStatsFetch> open_stats_reqs_;  // by req_id
  /// One query's pre-planning fetch wave: proceeds when every region
  /// answered or at the fetch timeout, whichever is first.
  struct StatsPrefetch {
    int outstanding = 0;
    std::vector<uint64_t> reqs;  ///< req_ids, written off at the timeout
    std::function<void()> proceed;
  };
  std::unordered_map<uint64_t, StatsPrefetch> pending_stats_;  // by prefetch_id
  uint64_t next_stats_req_ = 1;
  uint64_t next_prefetch_id_ = 1;

  // --- Serving-layer state --------------------------------------------------
  std::unique_ptr<ExtentCache> cache_;  // null unless Options::cache.enabled
  std::unique_ptr<QueryFrontend> frontend_;
  /// Pending cross-query batch per destination key region. std::map keeps
  /// flush-vs-enqueue interleavings deterministic.
  struct BatchBuffer {
    uint64_t gen = 0;
    std::vector<std::shared_ptr<const MessageBody>> parts;
  };
  std::map<Key, BatchBuffer> batch_buffers_;
  uint64_t next_batch_gen_ = 1;
  /// Service-time model: when this peer's logical server frees up.
  SimTime busy_until_ = 0;
  /// Non-null while serving a BatchEnvelope: handlers deposit their
  /// responses here (instead of SendDirect) and costs accumulate in
  /// batch_sink_cost_. Only iterative single-pattern and bound-scan parts
  /// are ever batched, so no handler re-enters the network mid-sink.
  std::vector<std::shared_ptr<const MessageBody>>* batch_reply_sink_ = nullptr;
  SimTime batch_sink_cost_ = 0;
  bool serving_batched_request_ = false;  // per_item overhead, not per_request
};

}  // namespace gridvine

#endif  // GRIDVINE_GRIDVINE_GRIDVINE_PEER_H_
