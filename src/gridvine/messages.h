#ifndef GRIDVINE_GRIDVINE_MESSAGES_H_
#define GRIDVINE_GRIDVINE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.h"

namespace gridvine {

/// How a query spreads across schemas (paper Section 4): with `kIterative`
/// the issuing peer looks up mapping paths and reformulates by itself; with
/// `kRecursive` successive reformulations are delegated to the intermediate
/// (destination) peers.
enum class ReformulationMode { kIterative, kRecursive };

/// A triple-pattern query travelling to the peer responsible for its routing
/// key. Carried inside a RoutedEnvelope.
struct QueryRequest : MessageBody {
  uint64_t query_id = 0;
  /// Identifies the issuing peer's dispatch branch, echoed in the response;
  /// 0 for branches the issuer does not track (recursive intermediaries,
  /// range multicasts). Lets the reliable query layer retry a branch and
  /// still account duplicate/late answers exactly once.
  uint64_t dispatch_id = 0;
  /// TriplePatternQuery::Serialize() payload.
  std::string query;
  /// Where answers must be sent (the original issuer).
  NodeId reply_to = kInvalidNode;
  /// kRecursive requests are reformulated and re-routed by the destination.
  ReformulationMode mode = ReformulationMode::kIterative;
  /// Remaining reformulation budget (recursive mode).
  int ttl = 0;
  /// Schemas already covered on this branch (recursive mode, loop guard).
  std::vector<std::string> visited_schemas;
  /// Number of mappings applied so far to derive this query.
  int mapping_path_len = 0;
  /// Product of applied mapping confidences.
  double confidence = 1.0;
  /// Restrict recursive reformulation to sound mapping directions.
  bool sound_only = false;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.query");
    return t;
  }
  size_t SizeBytes() const override {
    size_t n = 48 + query.size();
    for (const auto& s : visited_schemas) n += s.size() + 2;
    return n;
  }
};

/// Answer rows flowing straight back to the issuer.
struct QueryResponse : MessageBody {
  uint64_t query_id = 0;
  /// Echo of QueryRequest::dispatch_id (0 when the request carried none).
  uint64_t dispatch_id = 0;
  /// Schema the answering data was expressed in.
  std::string schema;
  /// SerializeBindings() payload.
  std::string rows;
  int mapping_path_len = 0;
  double confidence = 1.0;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.query_resp");
    return t;
  }
  size_t SizeBytes() const override {
    return 32 + schema.size() + rows.size();
  }
};

}  // namespace gridvine

#endif  // GRIDVINE_GRIDVINE_MESSAGES_H_
