// Experiment E5 — Bayesian mapping assessment and deprecation (paper
// Section 3.2 / Section 4):
//
//   "Removing some of the existing mappings fosters the creation of
//    additional mappings, some of which get deprecated by the Bayesian
//    analysis and are gradually replaced by other mapping paths."
//
// Part 1 sweeps the injected-error rate: a mesh of correct automatic
// mappings over 12 schemas is polluted with a growing fraction of erroneous
// (deranged) mappings; the cycle-analysis assessor must deprecate the bad
// ones (recall) without killing good ones (precision).
//
// Part 2 is the ablation DESIGN.md calls out: the max-cycle-length cap.
// Longer cycles give more evidence at higher enumeration cost.
//
//   $ ./bench/bench_mapping_quality

#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "bench_json.h"
#include "selforg_scale.h"
#include "selforg/mapping_assessor.h"
#include "workload/bio_workload.h"

using namespace gridvine;

namespace {

struct TrialResult {
  double precision = 0;  // deprecated ∩ bad / deprecated
  double recall = 0;     // deprecated ∩ bad / bad
  size_t observations = 0;
};

TrialResult RunTrial(const BioWorkload& workload, double error_rate,
                     int max_cycle_len, uint64_t seed) {
  size_t n = workload.schemas().size();
  MappingGraph graph;
  Rng rng(seed);
  std::set<std::string> bad_ids;
  int seq = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      std::string id = "m" + std::to_string(seq++);
      SchemaMapping m = rng.Bernoulli(error_rate)
                            ? workload.ErroneousMapping(i, j, id, &rng)
                            : workload.GroundTruthMapping(i, j, id);
      m.set_provenance(MappingProvenance::kAutomatic);
      m.set_confidence(0.7);
      if (workload.MappingPrecision(m) < 0.5) bad_ids.insert(id);
      graph.AddMapping(m);
    }
  }

  MappingAssessor::Options opts;
  opts.max_cycle_len = max_cycle_len;
  MappingAssessor assessor(opts);
  auto assessment = assessor.Assess(graph);

  std::set<std::string> deprecated;
  for (const auto& [id, posterior] : assessment.posterior) {
    if (posterior < 0.45) deprecated.insert(id);
  }
  TrialResult result;
  result.observations = assessment.observations.size();
  size_t correct_deprecations = 0;
  for (const auto& id : deprecated) correct_deprecations += bad_ids.count(id);
  result.precision = deprecated.empty()
                         ? 1.0
                         : double(correct_deprecations) / double(deprecated.size());
  result.recall = bad_ids.empty()
                      ? 1.0
                      : double(correct_deprecations) / double(bad_ids.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_mapping_quality");
  BioWorkload::Options wl;
  wl.num_schemas = 12;
  wl.num_entities = 100;
  wl.entities_per_schema = 25;
  wl.min_attrs = 5;
  wl.max_attrs = 8;
  wl.seed = 3;
  BioWorkload workload(wl);

  std::printf("E5: Bayesian cycle analysis — deprecation quality\n");
  std::printf("  12 schemas, full mapping mesh (66 mappings), posterior "
              "threshold 0.45, 5 seeds/row\n\n");

  std::printf("  part 1: injected error rate sweep (cycle cap = 3)\n");
  std::printf("  %-12s %10s %10s %13s\n", "error rate", "precision",
              "recall", "observations");
  for (double rate : {0.05, 0.10, 0.20, 0.30, 0.40}) {
    double precision = 0, recall = 0, obs = 0;
    const int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      auto r = RunTrial(workload, rate, 3, seed);
      precision += r.precision;
      recall += r.recall;
      obs += double(r.observations);
    }
    std::printf("  %-12.0f%% %9.2f %10.2f %13.0f\n", rate * 100,
                precision / kSeeds, recall / kSeeds, obs / kSeeds);
    json.Add("error_rate_" + std::to_string(int(rate * 100)),
             {{"precision", precision / kSeeds},
              {"recall", recall / kSeeds},
              {"observations", obs / kSeeds}});
  }

  std::printf("\n  part 2: cycle-length cap ablation (error rate 20%%)\n");
  std::printf("  %-12s %10s %10s %13s\n", "cycle cap", "precision", "recall",
              "observations");
  for (int cap : {2, 3, 4}) {
    double precision = 0, recall = 0, obs = 0;
    const int kSeeds = 5;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      auto r = RunTrial(workload, 0.20, cap, seed + 50);
      precision += r.precision;
      recall += r.recall;
      obs += double(r.observations);
    }
    std::printf("  %-12d %10.2f %10.2f %13.0f\n", cap, precision / kSeeds,
                recall / kSeeds, obs / kSeeds);
    json.Add("cycle_cap_" + std::to_string(cap),
             {{"precision", precision / kSeeds},
              {"recall", recall / kSeeds},
              {"observations", obs / kSeeds}});
  }
  // Part 3 — mapping quality under schema evolution at scale: on a
  // 10k-peer network one schema's attributes all move to different
  // vocabulary variants mid-run. Agreement maintenance must deprecate every
  // dangling mapping (stale_deprecated > 0) and the re-derived mapping set
  // must carry query recall back to >= 95% of the pre-change level. Quick
  // mode shrinks the network (CI smoke).
  {
    const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
    const size_t peers = quick ? 256 : 10240;
    std::printf("\n  part 3: schema evolution at scale (%zu peers)\n", peers);
    auto r = gridvine::bench::RunEvolutionAtScale(peers, /*seed=*/404);
    std::printf("  %zu stale mappings deprecated, %zu created; recall %.0f%% "
                "-> %.0f%% -> %.0f%% (%d repair rounds)\n",
                r.stale_deprecated, r.created_total, r.recall_pre * 100,
                r.recall_post * 100, r.recall_final * 100, r.recovery_rounds);
    json.Add("evolution_at_scale",
             {{"peers", double(r.peers)},
              {"convergence_rounds", double(r.convergence_rounds)},
              {"stale_deprecated", double(r.stale_deprecated)},
              {"created_total", double(r.created_total)},
              {"recall_pre", r.recall_pre},
              {"recall_final", r.recall_final},
              {"recovery_ratio",
               r.recall_pre > 0 ? r.recall_final / r.recall_pre : 0.0},
              {"bp_messages", double(r.bp_messages)}});
  }
  json.Finish();
  std::printf("\n  expectation: high precision throughout; recall degrades "
              "gracefully as errors saturate cycles.\n  cap=2 finds no "
              "evidence (one mapping per pair => no 2-cycles); cap=3 "
              "suffices; cap=4 multiplies\n  the enumeration cost for little "
              "gain on a dense mesh.\n");
  return 0;
}
