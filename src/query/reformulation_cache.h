#ifndef GRIDVINE_QUERY_REFORMULATION_CACHE_H_
#define GRIDVINE_QUERY_REFORMULATION_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapping/mapping_graph.h"
#include "query/reformulation.h"
#include "rdf/term_dictionary.h"

namespace gridvine {

/// Memoizes ExpandQuery. The paper's iterative reformulation walks the same
/// mapping edges for every incoming query, yet the set of rewrites depends
/// only on (source schema, predicate, hop budget, mapping-graph state): the
/// non-predicate parts of the pattern are carried through every rewrite
/// unchanged (Reformulate only swaps the predicate — the view unfolding of
/// Figure 2). So the cache stores per-predicate *derivations* — (rewritten
/// predicate, mapping-id path, target schema, confidence) — and re-applies
/// them to each concrete query's pattern.
///
/// Keying: the predicate URI is interned into a TermDictionary (the schema
/// is a prefix of the predicate URI, so the predicate id subsumes it) and
/// combined with max_hops. Entries remember the MappingGraph::version() they
/// were derived from; any AddMapping / RemoveMapping / Deprecate bumps the
/// version and stale entries are recomputed on next use.
///
/// A cache instance must be paired with one MappingGraph: version numbers
/// from unrelated graphs are not comparable. Not thread-safe (like the rest
/// of a peer's query state).
class ReformulationCache {
 public:
  ReformulationCache() = default;

  /// Drop-in replacement for ExpandQuery (same contract: every distinct
  /// reformulation reachable through non-deprecated mappings, BFS, original
  /// query excluded).
  std::vector<ReformulatedQuery> Expand(const TriplePatternQuery& query,
                                        const MappingGraph& graph,
                                        int max_hops);

  /// Removes every cached entry (the version check makes this unnecessary
  /// for correctness; it reclaims memory after large graph churn).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t entries() const { return cache_.size(); }

 private:
  struct Derivation {
    std::string predicate_uri;  ///< rewritten predicate of the target schema
    std::vector<std::string> mapping_ids;
    std::string schema;
    double confidence = 1.0;
  };
  struct Entry {
    uint64_t graph_version = 0;
    std::vector<Derivation> derivations;
  };

  std::unordered_map<uint64_t, Entry> cache_;  // (predicate id, hops) packed
  TermDictionary predicate_ids_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_REFORMULATION_CACHE_H_
