// Experiment E6 — iterative vs. recursive query reformulation (paper
// Section 4):
//
//   "In reformulating queries, we support two approaches: iterative, where a
//    peer iteratively looks for paths of mappings and reformulates the query
//    by itself, and recursive, where the successive reformulations are
//    delegated to intermediate peers."
//
// A chain of schemas S0 -> S1 -> ... -> Sk (mapped pairwise) holds matching
// data at every hop. We sweep the chain length and report, per strategy:
// results retrieved, network messages, and time until the LAST result
// arrived. Iterative pays issuer-side mapping fetches per hop; recursive
// pipelines reformulation at the destinations.
//
//   $ ./bench/bench_reformulation

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "gridvine/gridvine_network.h"

using namespace gridvine;

namespace {

struct ModeStats {
  size_t results = 0;
  size_t schemas = 0;
  uint64_t messages = 0;
  double last_result_at = 0;
};

ModeStats RunMode(GridVineNetwork& net, ReformulationMode mode, int chain) {
  TriplePatternQuery query(
      "x", TriplePattern(Term::Var("x"), Term::Uri("S0#organism"),
                         Term::Literal("%match%")));
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  opts.mode = mode;
  opts.max_hops = chain;
  opts.timeout = 30.0;
  uint64_t before = net.network()->stats().messages_sent;
  auto res = net.SearchFor(1, query, opts);
  ModeStats out;
  out.results = res.items.size();
  out.schemas = res.schemas_answered;
  out.messages = net.network()->stats().messages_sent - before;
  for (const auto& item : res.items) {
    if (item.arrival > out.last_result_at) out.last_result_at = item.arrival;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_reformulation");
  std::printf("E6: iterative vs. recursive reformulation along mapping "
              "chains\n\n");
  std::printf("  %-6s | %-28s | %-28s\n", "", "iterative", "recursive");
  std::printf("  %-6s | %8s %6s %12s | %8s %6s %12s\n", "chain", "results",
              "msgs", "last-result", "results", "msgs", "last-result");

  for (int chain : {1, 2, 3, 4, 6, 8}) {
    GridVineNetwork::Options options;
    options.num_peers = 64;
    options.key_depth = 14;
    options.seed = uint64_t(1000 + chain);
    options.latency = GridVineNetwork::LatencyKind::kConstant;
    options.latency_param = 0.025;
    options.peer.query_timeout = 30.0;
    GridVineNetwork net(options);

    // Chain of schemas, one entity each, pairwise mapped.
    for (int s = 0; s <= chain; ++s) {
      std::string name = "S" + std::to_string(s);
      if (!net.InsertSchema(size_t(s), Schema(name, "bio", {"organism"}))
               .ok()) {
        return 1;
      }
      Triple t(Term::Uri("entity-" + name), Term::Uri(name + "#organism"),
               Term::Literal("a match value"));
      if (!net.InsertTriple(size_t(s), t).ok()) return 1;
    }
    for (int s = 0; s < chain; ++s) {
      std::string a = "S" + std::to_string(s);
      std::string b = "S" + std::to_string(s + 1);
      SchemaMapping m(a + "-" + b, a, b);
      m.AddCorrespondence(a + "#organism", b + "#organism").ok();
      if (!net.InsertMapping(size_t(s), m).ok()) return 1;
    }

    ModeStats it = RunMode(net, ReformulationMode::kIterative, chain);
    ModeStats rec = RunMode(net, ReformulationMode::kRecursive, chain);
    std::printf("  %-6d | %8zu %6llu %10.2fs | %8zu %6llu %10.2fs\n", chain,
                it.results, (unsigned long long)it.messages,
                it.last_result_at, rec.results,
                (unsigned long long)rec.messages, rec.last_result_at);
    std::string row = "chain_" + std::to_string(chain);
    json.Add(row + "/iterative", {{"results", double(it.results)},
                                  {"messages", double(it.messages)},
                                  {"last_result_s", it.last_result_at}});
    json.Add(row + "/recursive", {{"results", double(rec.results)},
                                  {"messages", double(rec.messages)},
                                  {"last_result_s", rec.last_result_at}});
  }
  std::printf("\n  expectation: both retrieve chain+1 results; recursive "
              "reaches the last result much faster on long\n  chains "
              "(reformulation is pipelined at the destinations) and uses "
              "fewer messages (each hop's\n  mapping fetch runs at the peer "
              "already responsible for the schema's key space, not at the\n"
              "  issuer).\n");
  json.Finish();
  return 0;
}
