#ifndef GRIDVINE_COMMON_MEM_ESTIMATE_H_
#define GRIDVINE_COMMON_MEM_ESTIMATE_H_

#include <cstddef>
#include <string>

namespace gridvine {

/// Heap-byte estimators behind the MemoryFootprint() accounting APIs.
///
/// These are structural approximations, not allocator truth: they count what
/// the container's layout implies (payload + per-node bookkeeping + table
/// arrays) and ignore malloc rounding. That is the useful number for
/// capacity planning — "bytes per peer at 1M peers" — and it is stable
/// across allocators, which allocator-level measurement is not.

/// Heap bytes behind a std::string, by capacity; 0 when the small-string
/// buffer suffices (libstdc++/libc++ keep <= 15/22 chars inline — 16 is a
/// close, portable-enough threshold).
inline size_t StringHeapBytes(const std::string& s) {
  return s.capacity() >= 16 ? s.capacity() + 1 : 0;
}

/// Red-black-tree container (map/set/multimap) nodes: payload plus parent /
/// left / right pointers and the color word.
inline size_t RbTreeBytes(size_t nodes, size_t value_bytes) {
  return nodes * (value_bytes + 4 * sizeof(void*));
}

/// unordered_map/set: the bucket array plus per-node payload, forward
/// pointer and cached hash.
template <typename M>
size_t HashMapBytes(const M& m) {
  return m.bucket_count() * sizeof(void*) +
         m.size() * (sizeof(typename M::value_type) + 2 * sizeof(void*));
}

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_MEM_ESTIMATE_H_
