// Experiment A2 — lookup availability under churn (paper Section 2.1):
//
//   "The Retrieve and the Update operations provide probabilistic guarantees
//    for data consistency and are efficient even in highly unreliable,
//    dynamic environments."
//
// 64 peers (two replicas per region), exponential on/off churn at several
// intensities. For each churn level we measure lookup success over 400
// queries, (a) with routing-table maintenance running and (b) without.
// Replication absorbs single failures; maintenance keeps routing paths
// alive; both together hold availability high under heavy churn.
//
//   $ ./bench/bench_churn

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "common/stats.h"
#include "sim/churn.h"
#include "pgrid/maintenance.h"
#include "pgrid/pgrid_builder.h"

using namespace gridvine;

namespace {

struct Trial {
  double availability = 0;
  double mean_hops = 0;
  double mean_rtt = 0;
};

Trial Run(double downtime_fraction, bool with_maintenance, uint64_t seed,
          bool retries_on = true) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.03), Rng(seed));
  PGridPeer::Options popts;
  popts.key_depth = 10;
  popts.retry.base_timeout = 1.5;
  popts.retry.max_attempts = retries_on ? 4 : 1;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  for (int i = 0; i < 64; ++i) {
    owned.push_back(
        std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 131 + i), popts));
    peers.push_back(owned.back().get());
  }
  Rng build_rng(seed + 1);
  PGridBuilder::BuildBalanced(peers, &build_rng, /*refs_per_level=*/3);

  std::vector<std::unique_ptr<MaintenanceAgent>> agents;
  if (with_maintenance) {
    MaintenanceAgent::Options mopts;
    mopts.period = 12.0;
    mopts.probe_timeout = 1.0;
    for (auto* p : peers) {
      agents.push_back(std::make_unique<MaintenanceAgent>(
          &sim, p, Rng(seed * 7 + p->id()), mopts));
      agents.back()->Start();
    }
  }

  // Data: one entry per region, present on every replica of the region.
  for (uint64_t k = 0; k < 64; ++k) {
    Key key = Key::FromUint(k * 11, 10);
    for (auto* p : peers) {
      if (p->path().IsPrefixOf(key)) p->InsertLocal(key, "v");
    }
  }

  // Churn: mean session 200 s; downtime scaled to the target offline
  // fraction f = down / (up + down).
  ChurnModel::Options copts;
  copts.mean_session_seconds = 200;
  copts.mean_downtime_seconds =
      downtime_fraction <= 0
          ? 0.001
          : 200 * downtime_fraction / (1 - downtime_fraction);
  copts.pinned = {peers[0]->id()};
  ChurnModel churn(&sim, &net, Rng(seed + 5), copts);
  if (downtime_fraction > 0) churn.Start();

  SampleStats hops, rtt;
  size_t ok = 0;
  const int kQueries = 400;
  for (int q = 0; q < kQueries; ++q) {
    sim.RunUntil(sim.Now() + 5);
    Key key = Key::FromUint(uint64_t(q % 64) * 11, 10);
    bool done = false, got = false;
    peers[0]->Retrieve(key, [&](Result<PGridPeer::LookupResult> r) {
      done = true;
      if (r.ok() && !r->values.empty()) {
        got = true;
        hops.Add(double(r->hops));
        rtt.Add(r->rtt);
      }
    });
    while (!done && sim.pending() > 0) sim.Run(1);
    if (got) ++ok;
  }
  churn.Stop();
  Trial t;
  t.availability = double(ok) / kQueries;
  t.mean_hops = hops.Mean();
  t.mean_rtt = rtt.Mean();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_churn");
  std::printf("A2: lookup availability under churn (64 peers, replicated "
              "regions, 400 lookups/cell)\n\n");
  std::printf("  %-18s | %-27s | %-27s\n", "", "maintenance ON",
              "maintenance OFF");
  std::printf("  %-18s | %13s %13s | %13s %13s\n", "offline fraction",
              "availability", "mean hops", "availability", "mean hops");
  for (double f : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    Trial on = Run(f, true, 42);
    Trial off = Run(f, false, 42);
    // Same cell with the reliability layer clamped to one attempt
    // (maintenance on): what churn costs without retry/failover.
    Trial no_retry = Run(f, true, 42, /*retries_on=*/false);
    std::printf("  %-17.0f%% | %12.1f%% %13.2f | %12.1f%% %13.2f\n", f * 100,
                on.availability * 100, on.mean_hops, off.availability * 100,
                off.mean_hops);
    std::string row = "offline_" + std::to_string(int(f * 100));
    json.Add(row + "/maintenance_on", {{"availability", on.availability},
                                       {"mean_hops", on.mean_hops},
                                       {"mean_rtt_s", on.mean_rtt}});
    json.Add(row + "/maintenance_off", {{"availability", off.availability},
                                        {"mean_hops", off.mean_hops},
                                        {"mean_rtt_s", off.mean_rtt}});
    json.Add(row + "/retries_off", {{"availability", no_retry.availability},
                                    {"mean_hops", no_retry.mean_hops},
                                    {"mean_rtt_s", no_retry.mean_rtt}});
  }
  json.Finish();
  std::printf("\n  expectation: availability stays high with maintenance "
              "(dead refs evicted, gaps refilled);\n  without it, stale "
              "refs accumulate and success decays with churn.\n");
  return 0;
}
