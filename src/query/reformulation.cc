#include "query/reformulation.h"

#include <queue>
#include <set>

namespace gridvine {

Result<TriplePatternQuery> Reformulate(const TriplePatternQuery& query,
                                       const SchemaMapping& mapping) {
  if (mapping.deprecated()) {
    return Status::InvalidArgument("mapping " + mapping.id() +
                                   " is deprecated");
  }
  const Term& pred = query.pattern().predicate();
  if (!pred.IsUri()) {
    return Status::InvalidArgument(
        "cannot reformulate query with variable predicate");
  }
  if (query.SchemaName() != mapping.source_schema()) {
    return Status::InvalidArgument("query schema " + query.SchemaName() +
                                   " does not match mapping source " +
                                   mapping.source_schema());
  }
  auto mapped = mapping.MapAttribute(pred.value());
  if (!mapped.has_value()) {
    return Status::NotFound("no correspondence for predicate " + pred.value() +
                            " in mapping " + mapping.id());
  }
  TriplePattern new_pattern =
      query.pattern().With(TriplePos::kPredicate, Term::Uri(*mapped));
  return query.WithPattern(std::move(new_pattern));
}

Result<TriplePatternQuery> ReformulateAlongPath(
    const TriplePatternQuery& query, const std::vector<SchemaMapping>& path) {
  TriplePatternQuery cur = query;
  for (const SchemaMapping& m : path) {
    GV_ASSIGN_OR_RETURN(cur, Reformulate(cur, m));
  }
  return cur;
}

std::vector<SchemaMapping> OrientMappingsFrom(
    const std::string& schema, const std::vector<SchemaMapping>& mappings,
    bool sound_only) {
  std::vector<SchemaMapping> out;
  for (const SchemaMapping& m : mappings) {
    if (m.deprecated()) continue;
    if (m.source_schema() == schema) {
      bool generalizing = m.type() == MappingType::kSubsumption;
      if (!(sound_only && generalizing)) out.push_back(m);
    }
    if (m.target_schema() == schema) {
      // Reversed traversal: equivalences when declared bidirectional;
      // subsumptions always (broad -> narrow is sound).
      if (m.bidirectional() || m.type() == MappingType::kSubsumption) {
        out.push_back(m.Reversed());
      }
    }
  }
  return out;
}

std::vector<ReformulatedQuery> ExpandQuery(const TriplePatternQuery& query,
                                           const MappingGraph& graph,
                                           int max_hops) {
  std::vector<ReformulatedQuery> out;
  std::string home = query.SchemaName();
  if (home.empty()) return out;

  struct Frontier {
    TriplePatternQuery query;
    std::vector<std::string> mapping_ids;
    double confidence;
    int depth;
  };
  std::set<std::string> visited = {home};
  std::queue<Frontier> frontier;
  frontier.push({query, {}, 1.0, 0});

  while (!frontier.empty()) {
    Frontier cur = frontier.front();
    frontier.pop();
    if (cur.depth >= max_hops) continue;
    std::string cur_schema = cur.query.SchemaName();
    for (const SchemaMapping& m : graph.MappingsFrom(cur_schema)) {
      if (visited.count(m.target_schema())) continue;
      auto reformed = Reformulate(cur.query, m);
      if (!reformed.ok()) continue;  // partial mapping: prune this branch
      visited.insert(m.target_schema());
      ReformulatedQuery rq;
      rq.query = std::move(reformed).value();
      rq.mapping_ids = cur.mapping_ids;
      rq.mapping_ids.push_back(m.id());
      rq.schema = m.target_schema();
      rq.confidence = cur.confidence * m.confidence();
      frontier.push({rq.query, rq.mapping_ids, rq.confidence, cur.depth + 1});
      out.push_back(std::move(rq));
    }
  }
  return out;
}

}  // namespace gridvine
