#ifndef GRIDVINE_SIM_MSG_TYPE_H_
#define GRIDVINE_SIM_MSG_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace gridvine {

/// Interned message type tag: a dense id into a process-wide registry of
/// type names. Message classes intern their tag once (a function-local
/// static in TypeTag()), so per-send type accounting is an integer — the
/// seed's `std::string TypeTag()` allocated a string per message, and the
/// routed/range/direct wrappers even concatenated two.
///
/// Wrapper envelopes use Composite(outer, inner), which interns the combined
/// name ("pgrid.routed/gv.query") on first sight and afterwards resolves it
/// with one integer-keyed hash lookup — no string is built per send.
///
/// Ids are dense and allocation order is deterministic for a deterministic
/// program, but NOT stable across program versions: persist and compare
/// names, not raw ids. The registry is single-threaded, like the simulator.
class MsgType {
 public:
  /// Id 0: the reserved "unknown" tag (default-constructed MsgType).
  MsgType() = default;

  /// Returns the id for `name`, interning it on first use.
  static MsgType Intern(std::string_view name);

  /// Interned "outer/inner" composite (routed/range/direct wrappers).
  static MsgType Composite(MsgType outer, MsgType inner);

  /// Resolves a name without interning; unknown names give the id-0 tag.
  static MsgType Find(std::string_view name);

  /// Number of ids handed out so far (including the reserved id 0).
  static size_t RegistryCount();

  /// The interned name for a raw id (the reserved "?" for out-of-range ids).
  static const std::string& NameOf(uint32_t id);

  uint32_t id() const { return id_; }
  bool unknown() const { return id_ == 0; }

  /// The interned name; valid for the process lifetime.
  const std::string& name() const;

  friend bool operator==(MsgType a, MsgType b) { return a.id_ == b.id_; }
  friend bool operator!=(MsgType a, MsgType b) { return a.id_ != b.id_; }
  friend bool operator<(MsgType a, MsgType b) { return a.id_ < b.id_; }

 private:
  explicit MsgType(uint32_t id) : id_(id) {}

  uint32_t id_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_MSG_TYPE_H_
