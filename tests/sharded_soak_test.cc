// Chaos soak for the sharded engine: loss bursts, partitions, latency
// spikes, duplication and churn (SetAlive flips at global tasks) over a
// multi-shard overlay. Asserts the message-conservation invariant on the
// aggregated per-lane stats, that the reliability layer drains, and that the
// whole faulty run stays bit-identical across shard counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pgrid/pgrid_builder.h"
#include "pgrid/pgrid_peer.h"
#include "sim/fault_plan.h"
#include "sim/latency.h"
#include "sim/sharded.h"

namespace gridvine {
namespace {

struct SoakOutcome {
  NetworkStats stats;
  std::vector<int> op_status;  // per op: hops on success, -2 on failure
  SimTime final_time = 0;
  size_t events = 0;

  friend bool operator==(const SoakOutcome&, const SoakOutcome&) = default;
};

Key BitsKey(Rng* rng, int len) {
  std::string bits;
  for (int b = 0; b < len; ++b) bits += rng->Bernoulli(0.5) ? '1' : '0';
  return Key::FromBits(bits).value();
}

SoakOutcome RunSoak(uint64_t seed, uint32_t shards) {
  ShardedNetwork::Options so;
  so.shards = shards;
  so.seed = seed;
  so.loss_probability = 0.02;
  so.latency = std::make_unique<WanLatency>(0.005, -3.2, 1.0, 0.0, 0.0);
  ShardedNetwork engine(std::move(so));

  const size_t kPeers = 32;
  Rng rng(seed);
  PGridPeer::Options popts;
  popts.key_depth = 10;
  popts.retry = RetryPolicy{/*base_timeout=*/1.0, /*max_attempts=*/4,
                            /*backoff_multiplier=*/2.0, /*max_timeout=*/8.0,
                            /*jitter=*/0.1};
  std::vector<std::unique_ptr<PGridPeer>> peers;
  for (size_t i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<PGridPeer>(
        engine.SimForNext(), engine.LaneForNext(), rng.Fork(), popts));
  }
  std::vector<PGridPeer*> raw;
  for (auto& p : peers) raw.push_back(p.get());
  Rng wire(seed + 1);
  PGridBuilder::BuildBalanced(raw, &wire, 3);

  // Fault plan: a loss burst, a partition between two id stripes, a latency
  // spike, plus independent duplication throughout.
  auto plan = std::make_unique<FaultPlan>();
  plan->AddLossBurst({/*start=*/2.0, /*end=*/4.0, /*probability=*/0.5});
  FaultPlan::Partition part;
  part.start = 5.0;
  part.end = 7.0;
  for (NodeId id = 0; id < NodeId(kPeers); ++id) {
    (id % 4 == 0 ? part.group_a : part.group_b).push_back(id);
  }
  plan->AddPartition(part);
  plan->AddLatencySpike({/*start=*/8.0, /*end=*/9.5, /*extra=*/0.4,
                         /*extra_mean_tail=*/0.2});
  plan->set_duplicate_probability(0.05);
  engine.SetFaultPlan(std::move(plan));

  // Churn at quiescent global tasks: a few non-issuer peers flap.
  for (int f = 0; f < 4; ++f) {
    NodeId victim = NodeId(7 + 5 * f);
    engine.ScheduleGlobal(3.0 + 1.5 * f,
                          [&engine, victim] { engine.SetAlive(victim, false); });
    engine.ScheduleGlobal(3.8 + 1.5 * f,
                          [&engine, victim] { engine.SetAlive(victim, true); });
  }

  // Workload: mixed updates/retrieves from live issuers spread over the
  // fault windows.
  const int kOps = 80;
  Rng key_rng(seed + 13);
  std::vector<Key> keys;
  for (int i = 0; i < kOps; ++i) keys.push_back(BitsKey(&key_rng, 7));
  std::vector<int> op_status(size_t(kOps), -1);
  for (int i = 0; i < kOps; ++i) {
    NodeId issuer = NodeId(size_t(i * 3 + 1) % kPeers);
    if (issuer % 5 == 2) issuer = (issuer + 1) % NodeId(kPeers);
    SimTime at = 0.5 + 0.12 * i;
    if (i % 3 == 0) {
      engine.ScheduleForNode(issuer, at, [&, i, issuer] {
        peers[issuer]->Update(keys[size_t(i)], "v" + std::to_string(i),
                              [&op_status, i](Result<PGridPeer::UpdateOutcome> r) {
                                op_status[size_t(i)] = r.ok() ? r->hops : -2;
                              });
      });
    } else {
      engine.ScheduleForNode(issuer, at, [&, i, issuer] {
        peers[issuer]->Retrieve(
            keys[size_t(i)], [&op_status, i](Result<PGridPeer::LookupResult> r) {
              op_status[size_t(i)] = r.ok() ? r->hops : -2;
            });
      });
    }
  }

  engine.RunUntilIdle();

  SoakOutcome out;
  out.stats = engine.AggregateStats();
  out.op_status = std::move(op_status);
  out.final_time = engine.Now();
  out.events = engine.events_executed();

  // Every request resolved (answered, failed, or timed out) and every
  // callback fired.
  for (auto& p : peers) EXPECT_EQ(p->PendingRequests(), 0u);
  for (int i = 0; i < kOps; ++i) EXPECT_NE(out.op_status[size_t(i)], -1) << i;
  return out;
}

TEST(ShardedSoakTest, ConservationHoldsUnderFaults) {
  SoakOutcome out = RunSoak(31337, 4);
  const NetworkStats& s = out.stats;
  // Once idle, every copy that entered the network left it exactly once:
  // originals + fault-plan duplicates == deliveries + drops (all causes).
  EXPECT_EQ(s.messages_sent + s.messages_duplicated,
            s.messages_delivered + s.messages_dropped);
  EXPECT_EQ(s.messages_dropped,
            s.drops_endpoint + s.drops_loss + s.drops_burst + s.drops_partition);
  // The plan actually bit: every fault class shows up.
  EXPECT_GT(s.messages_duplicated, 0u);
  EXPECT_GT(s.drops_loss, 0u);
  EXPECT_GT(s.drops_burst + s.drops_partition + s.drops_endpoint, 0u);
}

TEST(ShardedSoakTest, FaultyRunBitIdenticalAcrossShardCounts) {
  SoakOutcome one = RunSoak(2024, 1);
  SoakOutcome two = RunSoak(2024, 2);
  SoakOutcome four = RunSoak(2024, 4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace gridvine
