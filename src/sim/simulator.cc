#include "sim/simulator.h"

#include <utility>

namespace gridvine {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

size_t Simulator::Run(size_t max_events) {
  size_t ran = 0;
  while (!queue_.empty() && ran < max_events) {
    // Move the event out before popping: fn may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

size_t Simulator::RunUntil(SimTime t) {
  size_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++ran;
    ++executed_;
  }
  if (now_ < t) now_ = t;
  return ran;
}

}  // namespace gridvine
