// Cross-module integration tests: the full stack (mediation layer on P-Grid
// on the simulated network) under churn, message loss, WAN latency and
// overlay reconfiguration.

#include <gtest/gtest.h>

#include <set>

#include "mapping/path_materializer.h"
#include "sim/churn.h"
#include "workload/bio_workload.h"
#include "gridvine/gridvine_network.h"

namespace gridvine {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

TEST(IntegrationTest, RetrievalSurvivesDeadPeersViaReplicasAndRetries) {
  // 48 peers over 32 leaf paths: 16 paths carry a replica pair.
  GridVineNetwork::Options o;
  o.num_peers = 48;
  o.key_depth = 12;
  o.seed = 3;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.01;
  o.refs_per_level = 3;
  o.overlay.retry.max_attempts = 4;
  o.overlay.retry.base_timeout = 1.0;
  GridVineNetwork net(o);

  ASSERT_TRUE(net.InsertSchema(0, Schema("S", "d", {"a"})).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(net.InsertTriple(size_t(i % net.size()),
                                 T("id" + std::to_string(i), "S#a",
                                   "val" + std::to_string(i)))
                    .ok());
  }

  // Kill 20% of peers (but not the issuer).
  Rng rng(5);
  size_t killed = 0;
  for (NodeId id = 1; id < net.size() && killed < net.size() / 5; ++id) {
    if (rng.Bernoulli(0.5)) {
      net.network()->SetAlive(id, false);
      ++killed;
    }
  }
  ASSERT_GT(killed, 0u);

  // Most queries must still succeed (replicas cover dead responsible peers;
  // retries explore alternate refs). Some keys may be lost when BOTH
  // replicas died: tolerate a small failure budget.
  size_t answered = 0;
  for (int i = 0; i < 40; ++i) {
    TriplePatternQuery q(
        "o", TriplePattern(Term::Uri("id" + std::to_string(i)),
                           Term::Var("p"), Term::Var("o")));
    auto res = net.SearchFor(0, q);
    if (res.status.ok() && !res.items.empty()) ++answered;
  }
  EXPECT_GE(answered, 30u) << "killed " << killed << " peers";
}

TEST(IntegrationTest, LossyWanNetworkStillConverges) {
  GridVineNetwork::Options o;
  o.num_peers = 24;
  o.key_depth = 12;
  o.seed = 8;
  o.latency = GridVineNetwork::LatencyKind::kWan;
  o.latency_param = 0.01;
  o.loss_probability = 0.05;
  o.overlay.retry.max_attempts = 5;
  o.overlay.retry.base_timeout = 2.0;
  o.peer.query_timeout = 20.0;
  GridVineNetwork net(o);

  size_t inserted = 0;
  for (int i = 0; i < 30; ++i) {
    if (net.InsertTriple(size_t(i % net.size()),
                         T("id" + std::to_string(i), "S#a", "v"))
            .ok()) {
      ++inserted;
    }
  }
  // 5% loss with 4 retries: nearly everything lands.
  EXPECT_GE(inserted, 28u);

  size_t answered = 0;
  for (int i = 0; i < 30; ++i) {
    TriplePatternQuery q(
        "o", TriplePattern(Term::Uri("id" + std::to_string(i)),
                           Term::Var("p"), Term::Var("o")));
    auto res = net.SearchFor(size_t((i * 5) % net.size()), q);
    if (res.status.ok() && !res.items.empty()) ++answered;
  }
  EXPECT_GE(answered, 25u);
}

TEST(IntegrationTest, ChurningNetworkKeepsAnsweringPinnedIssuer) {
  GridVineNetwork::Options o;
  o.num_peers = 32;
  o.key_depth = 10;
  o.seed = 13;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.01;
  o.refs_per_level = 3;
  o.overlay.retry.max_attempts = 4;
  o.overlay.retry.base_timeout = 1.0;
  GridVineNetwork net(o);

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(net.InsertTriple(size_t(i % net.size()),
                                 T("id" + std::to_string(i), "S#a", "v"))
                    .ok());
  }

  ChurnModel::Options churn_opts;
  churn_opts.mean_session_seconds = 60;
  churn_opts.mean_downtime_seconds = 10;
  churn_opts.pinned = {net.peer(0)->id()};
  ChurnModel churn(net.sim(), net.network(), Rng(7), churn_opts);
  churn.Start();

  size_t answered = 0;
  for (int i = 0; i < 30; ++i) {
    TriplePatternQuery q(
        "o", TriplePattern(Term::Uri("id" + std::to_string(i)),
                           Term::Var("p"), Term::Var("o")));
    auto res = net.SearchFor(0, q);
    if (res.status.ok() && !res.items.empty()) ++answered;
  }
  churn.Stop();
  // With ~14% average downtime and retries, the vast majority succeeds.
  EXPECT_GE(answered, 22u);
}

TEST(IntegrationTest, AdaptiveRebuildThenFullWorkflow) {
  // Regression (end-to-end flavour of the stale-ref bug): rebuilding the
  // overlay adaptively and then running inserts + reformulated queries.
  GridVineNetwork::Options o;
  o.num_peers = 40;
  o.key_depth = 32;
  o.seed = 21;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.01;
  GridVineNetwork net(o);

  BioWorkload::Options wl;
  wl.num_schemas = 4;
  wl.num_entities = 50;
  wl.entities_per_schema = 20;
  wl.seed = 2;
  BioWorkload workload(wl);

  std::vector<Key> sample;
  const auto& h = net.peer(0)->hasher();
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    for (const auto& t : workload.TriplesFor(s)) {
      sample.push_back(h(t.subject().value()));
      sample.push_back(h(t.predicate().value()));
      sample.push_back(h(t.object().value()));
    }
  }
  net.RebuildOverlayAdaptive(sample);

  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    ASSERT_TRUE(net.InsertSchema(s, workload.schemas()[s]).ok());
    for (const auto& t : workload.TriplesFor(s)) {
      ASSERT_TRUE(net.InsertTriple(s, t).ok());
    }
  }
  for (size_t s = 0; s + 1 < workload.schemas().size(); ++s) {
    ASSERT_TRUE(net.InsertMapping(
                       s, workload.GroundTruthMapping(
                              s, s + 1, "m" + std::to_string(s)))
                    .ok());
  }

  Rng rng(4);
  auto gq = workload.MakeQuery(0, &rng, "organism");
  GridVinePeer::QueryOptions qopts;
  qopts.reformulate = true;
  qopts.max_hops = 4;
  auto res = net.SearchFor(0, gq.query, qopts);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.schemas_answered, 4u);
  std::set<std::string> found;
  for (const auto& item : res.items) found.insert(item.value.value());
  EXPECT_GT(BioWorkload::Recall(gq, found), 0.9);
}

TEST(IntegrationTest, MaterializedShortcutCutsReformulationDepth) {
  GridVineNetwork::Options o;
  o.num_peers = 24;
  o.key_depth = 20;
  o.seed = 31;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.02;
  o.peer.query_timeout = 8.0;
  GridVineNetwork net(o);

  // Chain A -> B -> C -> D with one matching datum in D.
  const std::vector<std::string> schemas = {"A", "B", "C", "D"};
  MappingGraph graph;
  for (size_t s = 0; s < schemas.size(); ++s) {
    ASSERT_TRUE(
        net.InsertSchema(s, Schema(schemas[s], "d", {"organism"})).ok());
  }
  ASSERT_TRUE(net.InsertTriple(3, T("d-entity", "D#organism", "match me"))
                  .ok());
  for (size_t s = 0; s + 1 < schemas.size(); ++s) {
    SchemaMapping m(schemas[s] + schemas[s + 1], schemas[s], schemas[s + 1]);
    ASSERT_TRUE(m.AddCorrespondence(schemas[s] + "#organism",
                                    schemas[s + 1] + "#organism")
                    .ok());
    ASSERT_TRUE(net.InsertMapping(s, m).ok());
    graph.AddMapping(m);
  }

  TriplePatternQuery q("x",
                       TriplePattern(Term::Var("x"), Term::Uri("A#organism"),
                                     Term::Literal("%match%")));
  GridVinePeer::QueryOptions qopts;
  qopts.reformulate = true;
  auto before = net.SearchFor(0, q, qopts);
  ASSERT_TRUE(before.status.ok());
  ASSERT_EQ(before.items.size(), 1u);
  EXPECT_EQ(before.items[0].mapping_path_len, 3);

  // Materialize the A -> D shortcut from the graph view and publish it.
  PathMaterializer::Options popts;
  popts.min_path_len = 3;
  PathMaterializer pm(popts);
  auto shortcuts = pm.SelectAndMaterialize(graph);
  ASSERT_EQ(shortcuts.size(), 1u);
  ASSERT_TRUE(net.InsertMapping(0, shortcuts[0]).ok());

  auto after = net.SearchFor(0, q, qopts);
  ASSERT_TRUE(after.status.ok());
  ASSERT_EQ(after.items.size(), 1u);
  // The shortcut wins: one reformulation hop instead of three.
  EXPECT_EQ(after.items[0].mapping_path_len, 1);
}

TEST(IntegrationTest, RecursiveModeMatchesIterativeResults) {
  GridVineNetwork::Options o;
  o.num_peers = 32;
  o.key_depth = 24;
  o.seed = 77;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.02;
  o.peer.query_timeout = 10.0;
  GridVineNetwork net(o);

  BioWorkload::Options wl;
  wl.num_schemas = 5;
  wl.num_entities = 40;
  wl.entities_per_schema = 15;
  wl.seed = 9;
  BioWorkload workload(wl);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    ASSERT_TRUE(net.InsertSchema(s, workload.schemas()[s]).ok());
    for (const auto& t : workload.TriplesFor(s)) {
      ASSERT_TRUE(net.InsertTriple(s, t).ok());
    }
  }
  for (size_t s = 0; s + 1 < workload.schemas().size(); ++s) {
    ASSERT_TRUE(net.InsertMapping(
                       s, workload.GroundTruthMapping(
                              s, s + 1, "m" + std::to_string(s)))
                    .ok());
  }

  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    auto gq = workload.MakeQuery(size_t(i % 5), &rng, "organism");
    GridVinePeer::QueryOptions it_opts, rec_opts;
    it_opts.reformulate = rec_opts.reformulate = true;
    it_opts.mode = ReformulationMode::kIterative;
    rec_opts.mode = ReformulationMode::kRecursive;
    auto it_res = net.SearchFor(1, gq.query, it_opts);
    auto rec_res = net.SearchFor(1, gq.query, rec_opts);
    std::set<std::string> it_found, rec_found;
    for (const auto& item : it_res.items) it_found.insert(item.value.value());
    for (const auto& item : rec_res.items) {
      rec_found.insert(item.value.value());
    }
    EXPECT_EQ(it_found, rec_found) << gq.query.ToString();
  }
}

}  // namespace
}  // namespace gridvine
