#include "selforg/self_organizer.h"

#include <gtest/gtest.h>

#include "workload/bio_workload.h"

namespace gridvine {
namespace {

/// Live-network fixture: 8 peers, 5 schemas with data, schema i owned by
/// peer i. No mappings initially.
class SelfOrganizerTest : public ::testing::Test {
 protected:
  SelfOrganizerTest() : net_(NetOptions()), workload_(WorkloadOptions()) {}

  static GridVineNetwork::Options NetOptions() {
    GridVineNetwork::Options o;
    o.num_peers = 8;
    o.key_depth = 12;
    o.seed = 5;
    o.latency = GridVineNetwork::LatencyKind::kConstant;
    o.latency_param = 0.01;
    o.peer.query_timeout = 4.0;
    return o;
  }

  static BioWorkload::Options WorkloadOptions() {
    BioWorkload::Options o;
    o.num_schemas = 5;
    o.num_entities = 40;
    o.entities_per_schema = 16;
    o.min_attrs = 4;
    o.max_attrs = 6;
    o.value_noise = 0.0;
    o.seed = 21;
    return o;
  }

  static SelfOrganizer::Options OrgOptions() {
    SelfOrganizer::Options o;
    o.domain = "protein-sequences";
    o.creations_per_round = 3;
    o.seed = 9;
    return o;
  }

  void SetUp() override {
    for (size_t s = 0; s < workload_.schemas().size(); ++s) {
      ASSERT_TRUE(net_.InsertSchema(s, workload_.schemas()[s]).ok());
      for (const auto& t : workload_.TriplesFor(s)) {
        ASSERT_TRUE(net_.InsertTriple(s, t).ok());
      }
    }
    organizer_ = std::make_unique<SelfOrganizer>(&net_, OrgOptions());
    for (size_t s = 0; s < workload_.schemas().size(); ++s) {
      organizer_->RegisterSchemaOwner(workload_.schemas()[s].name(), s);
    }
  }

  GridVineNetwork net_;
  BioWorkload workload_;
  std::unique_ptr<SelfOrganizer> organizer_;
};

TEST_F(SelfOrganizerTest, IndicatorNegativeWithoutMappings) {
  ASSERT_TRUE(organizer_->PublishAllDegrees().ok());
  auto ci = organizer_->ComputeIndicator();
  ASSERT_TRUE(ci.ok()) << ci.status();
  // All degrees zero: ci = 0 at best; definitely not positive, and the
  // graph is certainly not strongly connected.
  EXPECT_LE(*ci, 0.0);
  EXPECT_LT(organizer_->BuildGraphView().LargestSccFraction(), 1.0);
}

TEST_F(SelfOrganizerTest, GraphViewSeesInsertedMappings) {
  ASSERT_TRUE(
      net_.InsertMapping(0, workload_.GroundTruthMapping(0, 1, "m01")).ok());
  MappingGraph g = organizer_->BuildGraphView();
  EXPECT_TRUE(g.Contains("m01"));
  EXPECT_EQ(g.active_mapping_count(), 1u);
}

TEST_F(SelfOrganizerTest, CreateMappingFindsCorrectCorrespondences) {
  auto created = organizer_->CreateMapping(workload_.schemas()[0].name(),
                                           workload_.schemas()[1].name());
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_GT(created->size(), 0u);
  // With shared instance references and name variants, the matcher should be
  // mostly right.
  EXPECT_GE(workload_.MappingPrecision(*created), 0.7)
      << created->Serialize();
  // And the mapping must now be discoverable in the network.
  auto fetched = net_.FetchMappingsFor(3, workload_.schemas()[0].name());
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 1u);
  EXPECT_EQ((*fetched)[0].id(), created->id());
}

TEST_F(SelfOrganizerTest, SampleValueSetsReflectData) {
  auto sets = organizer_->SampleValueSets(workload_.schemas()[0]);
  std::string organism_attr = workload_.AttributeFor(0, "organism");
  ASSERT_TRUE(sets.count(organism_attr));
  EXPECT_FALSE(sets.at(organism_attr).empty());
}

TEST_F(SelfOrganizerTest, CandidatePairsPreferUnlinkedSchemas) {
  ASSERT_TRUE(
      net_.InsertMapping(0, workload_.GroundTruthMapping(0, 1, "m01")).ok());
  MappingGraph g = organizer_->BuildGraphView();
  auto pairs = organizer_->SelectCandidatePairs(g, 100);
  for (const auto& [a, b] : pairs) {
    bool is_linked_pair =
        (a == workload_.schemas()[0].name() &&
         b == workload_.schemas()[1].name()) ||
        (a == workload_.schemas()[1].name() &&
         b == workload_.schemas()[0].name());
    EXPECT_FALSE(is_linked_pair);
  }
  // 5 schemas, 10 pairs, 1 linked -> 9 candidates.
  EXPECT_EQ(pairs.size(), 9u);
}

TEST_F(SelfOrganizerTest, RoundsDriveNetworkTowardInteroperability) {
  double last_scc = organizer_->BuildGraphView().LargestSccFraction();
  EXPECT_LT(last_scc, 1.0);
  size_t total_created = 0;
  double final_scc = last_scc;
  for (int round = 0; round < 6; ++round) {
    auto report = organizer_->RunRound();
    total_created += report.mappings_created;
    final_scc = report.scc_fraction_after;
    if (report.ci_after >= 0 && final_scc >= 1.0) break;
  }
  EXPECT_GT(total_created, 0u);
  // The mediation layer must reach (or approach) global interoperability.
  EXPECT_GE(final_scc, 0.8);
  auto ci = organizer_->ComputeIndicator();
  ASSERT_TRUE(ci.ok());
  EXPECT_GE(*ci, 0.0);
}

TEST_F(SelfOrganizerTest, CreateMappingFailsForUnknownSchema) {
  auto r = organizer_->CreateMapping("NoSuchSchema",
                                     workload_.schemas()[0].name());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
  auto r2 = organizer_->CreateMapping(workload_.schemas()[0].name(),
                                      "NoSuchSchema");
  EXPECT_TRUE(r2.status().IsNotFound());
}

TEST_F(SelfOrganizerTest, IndicatorBeforeAnyPublishIsNotFound) {
  auto ci = organizer_->ComputeIndicator();
  EXPECT_TRUE(ci.status().IsNotFound()) << ci.status();
}

TEST_F(SelfOrganizerTest, OwnerOfUnknownSchemaDefaultsToZero) {
  EXPECT_EQ(organizer_->OwnerOf("NoSuchSchema"), 0u);
  organizer_->RegisterSchemaOwner("X", 3);
  EXPECT_EQ(organizer_->OwnerOf("X"), 3u);
}

TEST_F(SelfOrganizerTest, ErroneousMappingGetsDeprecated) {
  // Correct mesh between all pairs except an injected erroneous mapping.
  const auto& schemas = workload_.schemas();
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (size_t j = i + 1; j < schemas.size(); ++j) {
      if (i == 1 && j == 2) continue;
      auto gt = workload_.GroundTruthMapping(
          i, j, "gt-" + std::to_string(i) + "-" + std::to_string(j));
      // Mark as automatic so the assessor evaluates everything.
      gt.set_provenance(MappingProvenance::kAutomatic);
      gt.set_confidence(0.7);
      ASSERT_TRUE(net_.InsertMapping(i, gt).ok());
    }
  }
  Rng rng(13);
  auto bad = workload_.ErroneousMapping(1, 2, "bad-1-2", &rng);
  ASSERT_TRUE(net_.InsertMapping(1, bad).ok());

  auto report = organizer_->RunRound();
  EXPECT_GE(report.mappings_deprecated, 1u);
  bool bad_deprecated = false;
  for (const auto& id : report.deprecated_ids) {
    if (id == "bad-1-2") bad_deprecated = true;
    // No correct mapping may be deprecated.
    EXPECT_EQ(id, "bad-1-2") << "false positive deprecation";
  }
  EXPECT_TRUE(bad_deprecated);

  // The deprecation must be visible network-wide.
  auto fetched = net_.FetchMappingsFor(4, schemas[1].name());
  ASSERT_TRUE(fetched.ok());
  for (const auto& m : *fetched) {
    if (m.id() == "bad-1-2") EXPECT_TRUE(m.deprecated());
  }
}

}  // namespace
}  // namespace gridvine
