#ifndef GRIDVINE_QUERY_EXEC_PLAN_H_
#define GRIDVINE_QUERY_EXEC_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

namespace gridvine {

/// Physical operators of the distributed conjunctive executor. A plan is a
/// shallow DAG: one operator chain per join-connected pattern group (the
/// groups execute concurrently), then a tail that merges the group outputs
/// (cross-group LocalJoin), restricts to the distinguished variables
/// (Project) and drops duplicates (Dedup).
enum class OpKind {
  /// Fetch one pattern's full extent from the peer(s) owning its routing
  /// key (or key range).
  kRemoteScan,
  /// Substitute the running bindings into the pattern and dispatch the
  /// resulting constant-bound probes toward the data, batched per
  /// destination key region (bind-join pushdown): bytes shipped scale with
  /// the running join's selectivity, not the pattern's extent.
  kBindJoin,
  /// Hash-join the preceding scan's rows into the running binding set at
  /// the issuer (collect-then-join; also the cross-group merge).
  kLocalJoin,
  /// A fully-constant pattern: existence lookup at its subject key,
  /// yielding an empty-or-singleton row.
  kExistenceCheck,
  /// Restrict rows to the distinguished variables.
  kProject,
  /// Drop duplicate rows (compact interned keys, no per-row strings).
  kDedup,
};

const char* OpKindName(OpKind kind);

/// One operator application. `pattern` indexes ConjunctiveQuery::patterns()
/// for the pattern-driven operators and is kNoPattern for structural ones
/// (LocalJoin, Project, Dedup).
struct PlanStep {
  static constexpr size_t kNoPattern = static_cast<size_t>(-1);

  OpKind kind;
  size_t pattern = kNoPattern;
};

/// One join-connected component of the query's patterns, executed as a
/// sequential operator chain — concurrently with the other groups.
struct PlanGroup {
  /// Member patterns in execution order (cheapest first, then join-connected
  /// cheapest; ties broken by original pattern index, so plans are identical
  /// across runs and platforms).
  std::vector<size_t> patterns;
  /// The operator chain resolving this group to a binding set.
  std::vector<PlanStep> steps;
  /// Cost-based plans only (empty otherwise): the estimated running join
  /// cardinality after each pattern in `patterns`, parallel to it. 0 marks a
  /// position the model could not estimate — the adaptive executor skips its
  /// divergence check there.
  std::vector<double> est_cards;
};

/// The physical plan for one conjunctive query.
struct PhysicalPlan {
  std::vector<PlanGroup> groups;
  /// Merge tail: one LocalJoin per extra group (cross product when the
  /// groups share no variables — they never do, by construction), then
  /// Project, then Dedup.
  std::vector<PlanStep> tail;

  /// The flattened pattern order, group-major — the legacy PlanConjunctive
  /// contract (and the order the serial engine used to execute).
  std::vector<size_t> Order() const;

  std::string ToString() const;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_EXEC_PLAN_H_
