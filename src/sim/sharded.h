#ifndef GRIDVINE_SIM_SHARDED_H_
#define GRIDVINE_SIM_SHARDED_H_

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sim/fault_plan.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace gridvine {

class ShardedNetwork;

/// One shard's event queue: a Simulator whose default scheduling path derives
/// the tie-break key from *content* — (creator node, per-creator counter) —
/// instead of a per-queue sequence number. With content keys, two events at
/// the same simulated time order the same way no matter which queue they sit
/// in or when they were pushed, which is what makes a run's outcome
/// independent of the shard count.
///
/// The "current actor" is the node whose event is executing right now (set by
/// the engine's run loop from the popped key, and overridden to the
/// destination node for the duration of a message delivery). Everything that
/// actor does — schedules, latency/loss draws — is attributed to it, and an
/// actor's events always run on its owner shard, serially, so per-actor
/// counters and SmallRng streams need no synchronization.
///
/// Do not drive a ShardSimulator with the base Run*/Schedule loop directly;
/// it only makes sense inside a ShardedNetwork (which also owns the epoch
/// logic for shards == 1).
class ShardSimulator : public Simulator {
 public:
  /// Actor id for code running outside any node's event (the coordinating
  /// thread between epochs). Distinct from every NodeId.
  static constexpr uint32_t kExternalActor = 0xFFFFFFFFu;

  /// Keys the event with (current actor, next per-actor counter).
  void ScheduleAt(SimTime t, EventFn fn) override;

  uint32_t current_actor() const { return current_actor_; }
  void set_current_actor(uint32_t actor) { current_actor_ = actor; }

 private:
  friend class ShardedNetwork;
  ShardedNetwork* engine_ = nullptr;
  uint32_t current_actor_ = kExternalActor;
};

/// Sharded conservative parallel discrete-event engine: partitions the peer
/// population across N shards (owner shard = id % N), each with its own
/// ShardSimulator and worker thread, and plays the Network role for all of
/// them through per-shard "lane" facades. Peers are constructed against
/// their owner shard's simulator and lane and run unchanged.
///
/// Synchronization is conservative lookahead: every message takes at least
/// L = LatencyModel::MinDelay() seconds, so in the epoch window [T, T+L)
/// (T = globally earliest pending event) no shard can hear from another, and
/// all shards run their window concurrently without locks. Cross-shard sends
/// are buffered in per-shard-pair SPSC mailboxes and folded into the
/// destination queues at the barrier between epochs.
///
/// Determinism (the merge rule): every event is keyed (time, creator,
/// per-creator counter). Keys are unique and content-derived, epoch
/// boundaries depend only on the globally earliest event time, and all
/// randomness comes from per-node SmallRng streams drawn inside the owning
/// node's serialized events — so a run's outcome (peer state, aggregate
/// stats, final clock) is bit-identical for any shard count, including 1
/// (where the same epoch loop runs inline with no threads).
/// tests/sharded_determinism_test.cc asserts this for shards in {1, 2, 4}.
///
/// Tracing works in sharded mode: each shard owns a private Tracer
/// (EnableTracing), span ids carry the shard index in the high bits over a
/// shard-local counter, and every span gets a content-derived order key —
/// (creator actor, per-actor trace counter), separate from the event
/// subkeys so traced and untraced runs stay bit-identical. Lanes open
/// flight spans in DoSend exactly like the single-threaded Network; a
/// flight that lands on another shard is closed through a per-shard end-op
/// mailbox drained at the next barrier (same handoff discipline as
/// cross-shard sends). Merge the rings with TraceView(TracerParts()):
/// sorting by (start, order) reproduces the shards=1 span sequence of the
/// same seed. Caveat: under ring eviction a cross-shard flight may be
/// evicted before its barrier-deferred end lands (it exports as still
/// open); size the ring to the run as usual.
///
/// Still out of scope: mid-epoch liveness changes (SetAlive /
/// ScheduleGlobal take effect at quiescent points only — between Run*
/// calls or in a global task).
class ShardedNetwork {
 public:
  struct Options {
    uint32_t shards = 1;
    uint64_t seed = 1;
    double loss_probability = 0.0;
    /// Required; MinDelay() must be positive — it is the lookahead that
    /// gives parallel execution room to run.
    std::unique_ptr<LatencyModel> latency;
  };

  explicit ShardedNetwork(Options opts);
  ~ShardedNetwork();
  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  // ---- topology (all quiescent-only) ----

  /// Registers a node under the next id; its owner shard is id % shards().
  /// Construct the node against SimForNext()/LaneForNext() *before* the
  /// AddNode call — ids are sequential, so the owner is known in advance.
  NodeId AddNode(NetworkNode* node);
  uint32_t OwnerShard(NodeId id) const { return id % shards_; }
  /// The shard that will own the next AddNode'd id.
  uint32_t NextShard() const { return uint32_t(nodes_.size()) % shards_; }

  Simulator* SimFor(NodeId id) { return sims_[OwnerShard(id)].get(); }
  Network* LaneFor(NodeId id);
  Simulator* SimForShard(uint32_t s) { return sims_[s].get(); }
  Network* LaneForShard(uint32_t s);
  Simulator* SimForNext() { return sims_[NextShard()].get(); }
  Network* LaneForNext() { return LaneForShard(NextShard()); }

  uint32_t shards() const { return shards_; }
  size_t size() const { return nodes_.size(); }

  // ---- liveness / faults (quiescent-only writes) ----

  void SetAlive(NodeId id, bool alive);
  bool IsAlive(NodeId id) const {
    return id < alive_.size() && alive_[id] != 0;
  }
  /// One plan shared by all shards; its windows are read-only during a run
  /// (drop/duplicate draws come from per-node streams), so concurrent
  /// consultation is safe. Install or mutate windows only while quiescent.
  void SetFaultPlan(std::unique_ptr<FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  // ---- scheduling (quiescent-only) ----

  /// Schedules `fn` on `id`'s shard, keyed and attributed as if `id` itself
  /// had scheduled it `delay` seconds from the engine clock. This is how
  /// external drivers (benches, harnesses) inject work: never schedule on a
  /// shard simulator directly from outside.
  void ScheduleForNode(NodeId id, SimTime delay, EventFn fn);

  /// Runs `fn` at absolute time `at` (clamped to now) on the coordinating
  /// thread with every shard parked and clocks synced — the place for churn
  /// flips (SetAlive), fault-window edits, and mid-run measurements. Global
  /// tasks run in (time, insertion) order and may schedule further work.
  void ScheduleGlobal(SimTime at, std::function<void()> fn);

  /// Runs `fn` immediately (quiescent) with `id` as the current actor, so
  /// sends and schedules inside attribute to `id`'s streams and counters.
  void RunAsNode(NodeId id, const std::function<void()>& fn);

  // ---- execution ----

  /// Runs epochs until no pending events, mailboxes or global tasks remain
  /// (or `max_events` have fired engine-wide). Returns events executed by
  /// this call.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);
  /// Runs all events with firing time <= t, then advances every clock to t.
  size_t RunUntil(SimTime t);
  /// Runs whole epochs until `*done` is true, checking at epoch boundaries
  /// (events later in the flipping epoch still fire — coarser than the
  /// single-threaded Simulator::RunUntilFlag, but shard-count invariant).
  /// The flag must be written only from one node's handlers (one shard).
  size_t RunUntilFlag(const bool* done);

  /// Engine clock: all shard clocks are synced to this at quiescent points.
  SimTime Now() const { return now_; }
  size_t events_executed() const;
  size_t pending() const;

  // ---- tracing (quiescent-only control) ----

  /// Enables the per-shard tracers (each ring gets `capacity_per_shard`
  /// slots). Tracing draws no Rng and consumes no event subkeys, so a
  /// traced run stays bit-identical to the untraced run of the same seed.
  void EnableTracing(size_t capacity_per_shard = 1 << 20);
  void DisableTracing();
  /// Shard s's private ring (wired into its lane as Network::tracer()).
  Tracer* TracerForShard(uint32_t s) { return tracers_[s].get(); }
  /// All rings, for a merged TraceView.
  std::vector<Tracer*> TracerParts();

  // ---- accounting ----

  /// Per-lane stats folded into one network-wide view. The drain invariant
  /// (sent + duplicated == delivered + dropped, once idle) holds on the
  /// aggregate: sends/send-drops count on the sender's lane, deliveries and
  /// delivery-drops on the destination's.
  NetworkStats AggregateStats() const;
  /// Aggregate "net.*" counters plus the engine's own "sim.shard.*" family
  /// (epochs, barrier wait, cross-shard traffic).
  void PublishMetrics(MetricsRegistry* metrics) const;

  /// Bytes of heap owned by the engine itself: per-node state (rng, seq,
  /// liveness, node table), shard queues and mailboxes. Peer state is the
  /// peers' own MemoryFootprint().
  size_t MemoryFootprint() const;

  uint64_t epochs() const { return epochs_; }
  uint64_t cross_shard_messages() const;
  /// Summed per-epoch spread between the first and last shard to finish —
  /// the cost of the conservative barrier (wall-clock; not part of the
  /// deterministic outcome).
  double barrier_wait_seconds() const { return barrier_wait_seconds_; }

 private:
  friend class ShardSimulator;
  class ShardLane;

  /// A message crossing shards: everything the destination queue needs to
  /// schedule the delivery bit-identically to a same-shard send. `ctx` is
  /// the flight span (invalid when untraced).
  struct PendingDelivery {
    SimTime at;
    uint64_t subkey;
    NodeId from;
    NodeId to;
    std::shared_ptr<const MessageBody> body;
    TraceCtx ctx{};
  };

  /// The scheduled half of a sharded send; mirrors Network::Delivery (32
  /// bytes, inline in EventFn, memcpy-relocatable).
  struct ShardDelivery {
    static constexpr bool kTriviallyRelocatable = true;
    ShardedNetwork* engine;
    NodeId from;
    NodeId to;
    std::shared_ptr<const MessageBody> body;
    void operator()() { engine->Deliver(from, to, std::move(body)); }
  };

  /// Delivery with its flight span aboard — scheduled only for traced
  /// sends, mirroring Network::TracedDelivery (48 bytes, still inline).
  struct TracedShardDelivery {
    static constexpr bool kTriviallyRelocatable = true;
    ShardedNetwork* engine;
    NodeId from;
    NodeId to;
    std::shared_ptr<const MessageBody> body;
    TraceCtx ctx;  ///< always valid here
    void operator()() { engine->DeliverTraced(from, to, std::move(body), ctx); }
  };

  /// A flight span whose delivery landed off its owner shard: the end (and
  /// drop cause, for deliveries to dead nodes) is applied to the owner ring
  /// at the next barrier. drop_cause is -1 for a clean delivery.
  struct TraceEndOp {
    TraceCtx ctx;
    SimTime at;
    int8_t drop_cause;
  };

  struct GlobalTask {
    SimTime at;
    uint64_t seq;  // FIFO among equal times
    std::function<void()> fn;
    bool operator>(const GlobalTask& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// Next content-derived tie-break key for an event created by `actor`.
  /// Called only from the actor's own serialized events (worker thread) or
  /// from the coordinating thread while quiescent.
  uint64_t NextSubkey(uint32_t actor);
  /// Next span-order key for `actor` — same (creator, counter) shape as the
  /// event subkeys but from separate counters, so tracing never perturbs
  /// event ordering. External (quiescent-driver) spans use a plain low
  /// counter, sorting before any node's spans at an equal timestamp (the
  /// driver roots a trace before the nodes it triggers extend it).
  uint64_t NextTraceOrder(uint32_t actor);
  SmallRng* RngFor(uint32_t actor) {
    return actor == ShardSimulator::kExternalActor ? &external_rng_
                                                   : &node_rng_[actor];
  }

  void DoSend(uint32_t shard, ShardLane* lane, NodeId from, NodeId to,
              std::shared_ptr<const MessageBody> body);
  void Dispatch(uint32_t src_shard, NodeId from, NodeId to, SimTime at,
                uint64_t subkey, std::shared_ptr<const MessageBody> body,
                TraceCtx ctx);
  void Deliver(NodeId from, NodeId to,
               std::shared_ptr<const MessageBody> body);
  void DeliverTraced(NodeId from, NodeId to,
                     std::shared_ptr<const MessageBody> body, TraceCtx ctx);
  /// Ends `flight` for a delivery observed on shard `dst` at time `at`:
  /// directly when dst owns the span's ring, else via dst's end-op box.
  void EndFlight(uint32_t dst, TraceCtx flight, SimTime at, int8_t cause);

  /// Pops every event strictly before `horizon` on shard `s`, tracking the
  /// current actor from each popped key.
  void RunShardEpoch(uint32_t s, SimTime horizon);
  /// One barrier-synchronized epoch across all shards (inline if shards==1).
  void RunEpochParallel(SimTime horizon);
  void DrainMailboxes();
  void DrainTraceEnds();
  void AdvanceAll(SimTime t);
  /// The shared engine loop behind the public Run* entry points.
  size_t RunLoop(SimTime until, const bool* done, size_t max_events);
  void WorkerMain(uint32_t s);

  uint32_t shards_;
  uint64_t seed_;
  double loss_probability_;
  std::unique_ptr<LatencyModel> latency_;
  SimTime lookahead_;
  std::unique_ptr<FaultPlan> fault_plan_;

  std::vector<std::unique_ptr<ShardSimulator>> sims_;
  std::vector<std::unique_ptr<ShardLane>> lanes_;

  // Global node state. Indexed by NodeId; mutated only while quiescent
  // except node_rng_/seq_ slots, which are touched only by the owning
  // actor's serialized events.
  std::vector<NetworkNode*> nodes_;
  std::vector<uint8_t> alive_;  // not vector<bool>: one byte per node
  std::vector<uint32_t> seq_;
  std::vector<SmallRng> node_rng_;
  SmallRng external_rng_;
  uint64_t external_seq_ = 0;

  /// Per-shard span rings (always constructed; inert until EnableTracing).
  std::vector<std::unique_ptr<Tracer>> tracers_;
  /// Per-actor span-order counters — deliberately NOT seq_: event subkeys
  /// must be identical traced vs untraced. Same ownership rule as seq_.
  std::vector<uint32_t> trace_seq_;
  uint64_t external_trace_seq_ = 0;
  /// trace_endbox_[dst]: end-ops produced by dst's worker for spans other
  /// shards own; drained by the coordinating thread at the barrier.
  std::vector<std::vector<TraceEndOp>> trace_endbox_;

  /// outbox_[src * shards_ + dst]: written by src's worker during an epoch,
  /// drained by the coordinating thread at the barrier (the barrier's mutex
  /// orders the handoff).
  std::vector<std::vector<PendingDelivery>> outbox_;
  /// Per-shard cross-shard send counters (padded: one worker each).
  struct alignas(64) ShardCounters {
    uint64_t cross_sent = 0;
  };
  std::vector<ShardCounters> shard_counters_;

  std::vector<GlobalTask> global_tasks_;  // min-heap via std::*_heap
  uint64_t global_task_seq_ = 0;

  SimTime now_ = 0.0;
  bool running_ = false;
  uint64_t epochs_ = 0;
  double barrier_wait_seconds_ = 0.0;

  // Worker pool (empty when shards == 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  uint64_t generation_ = 0;
  uint32_t done_count_ = 0;
  SimTime epoch_horizon_ = 0;
  bool exit_ = false;
  std::vector<std::chrono::steady_clock::time_point> finish_times_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_SHARDED_H_
