#ifndef GRIDVINE_STORE_BINDING_CODEC_H_
#define GRIDVINE_STORE_BINDING_CODEC_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/term_dictionary.h"
#include "store/triple_store.h"

namespace gridvine {

/// Serializes binding rows for the wire (query responses). Format, per row:
/// "var=K:value" units joined by '\x1f', rows joined by '\x1e'. Values are
/// escaped ('\\' before '\x1e', '\x1f', '\\').
std::string SerializeBindings(const std::vector<BindingSet>& rows);

/// Inverse of SerializeBindings.
Result<std::vector<BindingSet>> ParseBindings(const std::string& data);

/// Deduplicates binding rows without serializing each row to a string.
/// Variables and terms are interned to dense ids; a row's identity is the
/// packed (var_id, term_id) sequence in variable order (BindingSet is
/// ordered by variable name, so equal rows always pack identically). Rows
/// wider than kMaxInlineVars fall back to the serialized form.
class BindingDeduper {
 public:
  static constexpr size_t kMaxInlineVars = 8;

  /// Returns the dense index of `row` (0-based, in first-seen order),
  /// interning it if unseen. Sets *inserted when non-null.
  size_t Intern(const BindingSet& row, bool* inserted = nullptr);

  /// True the first time `row` is seen.
  bool Insert(const BindingSet& row) {
    bool inserted = false;
    Intern(row, &inserted);
    return inserted;
  }

  /// Number of distinct rows seen.
  size_t size() const { return count_; }

 private:
  struct Key {
    std::array<uint64_t, kMaxInlineVars> packed;
    uint8_t len = 0;
    bool operator==(const Key& o) const {
      if (len != o.len) return false;
      for (uint8_t i = 0; i < len; ++i) {
        if (packed[i] != o.packed[i]) return false;
      }
      return true;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (uint8_t i = 0; i < k.len; ++i) {
        h ^= k.packed[i];
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h ^ k.len);
    }
  };

  uint32_t VarId(const std::string& var);
  uint32_t TermIdFor(const Term& term);

  std::unordered_map<std::string, uint32_t> var_ids_;
  std::unordered_map<Term, uint32_t, TermHash> term_ids_;
  std::unordered_map<Key, size_t, KeyHash> rows_;
  std::unordered_map<std::string, size_t> wide_rows_;
  size_t count_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_STORE_BINDING_CODEC_H_
