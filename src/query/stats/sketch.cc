#include "query/stats/sketch.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/hash.h"
#include "common/mem_estimate.h"

namespace gridvine {

// --- KmvSketch ----------------------------------------------------------------------

void KmvSketch::Add(uint64_t hash) {
  if (mins_.size() < k_) {
    mins_.insert(hash);
    return;
  }
  auto last = std::prev(mins_.end());
  if (hash >= *last) return;
  if (mins_.insert(hash).second) mins_.erase(std::prev(mins_.end()));
}

// The k-minimum order statistic reads the hash as a uniform 64-bit value, so
// FNV's weakly-avalanched raw bits must go through the finalizer first.
void KmvSketch::AddString(std::string_view value) {
  Add(Mix64(Fnv1a64(value)));
}

void KmvSketch::Merge(const KmvSketch& other) {
  for (uint64_t h : other.mins_) Add(h);
}

double KmvSketch::Estimate() const {
  if (mins_.size() < k_) return double(mins_.size());
  // k-th smallest normalized to (0, 1]; +1 avoids a zero divisor when the
  // hash 0 itself was retained.
  double u_k = (double(*std::prev(mins_.end())) + 1.0) / 18446744073709551616.0;
  return double(k_ - 1) / u_k;
}

std::string KmvSketch::Serialize() const {
  std::ostringstream os;
  os << k_ << ':';
  bool first = true;
  for (uint64_t h : mins_) {
    if (!first) os << ',';
    os << h;
    first = false;
  }
  return os.str();
}

Result<KmvSketch> KmvSketch::Parse(const std::string& data) {
  size_t colon = data.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("kmv: missing k");
  }
  size_t k = std::strtoull(data.c_str(), nullptr, 10);
  if (k == 0) return Status::InvalidArgument("kmv: k must be positive");
  KmvSketch sketch(k);
  size_t pos = colon + 1;
  while (pos < data.size()) {
    size_t end = data.find(',', pos);
    if (end == std::string::npos) end = data.size();
    sketch.Add(std::strtoull(data.c_str() + pos, nullptr, 10));
    pos = end + 1;
  }
  return sketch;
}

// --- StoreSketch --------------------------------------------------------------------

StoreSketch StoreSketch::Build(const TripleStore& store) {
  StoreSketch sketch;
  sketch.built_version_ = store.version();
  for (const Triple& t : store.All()) {
    ++sketch.total_rows_;
    uint64_t sh = Mix64(Fnv1a64(t.subject().value()));
    uint64_t oh = Mix64(Fnv1a64(t.object().value()));
    sketch.subjects_.Add(sh);
    sketch.objects_.Add(oh);
    PredicateSummary& ps = sketch.by_predicate_[t.predicate().value()];
    ++ps.rows;
    ps.subjects.Add(sh);
    ps.objects.Add(oh);
  }
  return sketch;
}

PatternEstimate StoreSketch::EstimatePattern(const TriplePattern& pattern) const {
  PatternEstimate e;
  const Term& object = pattern.object();
  // A '%' wildcard object is neither an exact key nor summarized by value
  // order; the planner falls back to the greedy rank for such patterns.
  if (object.IsLiteral() && !pattern.IsExactConstant(TriplePos::kObject)) {
    return e;
  }

  double rows = double(total_rows_);
  double ds = std::max(1.0, subjects_.Estimate());
  double dobj = std::max(1.0, objects_.Estimate());
  if (pattern.IsExactConstant(TriplePos::kPredicate)) {
    auto it = by_predicate_.find(pattern.predicate().value());
    if (it == by_predicate_.end()) {
      // The slice holds nothing under this predicate.
      e.known = true;
      e.distinct_subjects = 1;
      e.distinct_objects = 1;
      return e;
    }
    rows = double(it->second.rows);
    ds = std::max(1.0, it->second.subjects.Estimate());
    dobj = std::max(1.0, it->second.objects.Estimate());
  }
  if (pattern.IsExactConstant(TriplePos::kSubject)) rows /= ds;
  if (pattern.IsExactConstant(TriplePos::kObject)) rows /= dobj;

  e.known = true;
  e.rows = rows;
  e.distinct_subjects = ds;
  e.distinct_objects = dobj;
  return e;
}

namespace {
constexpr char kSep = '\x1f';
constexpr const char* kMagic = "GVSK1";
}  // namespace

std::string StoreSketch::Serialize() const {
  std::ostringstream os;
  os << kMagic << kSep << total_rows_ << kSep << built_version_ << kSep
     << subjects_.Serialize() << kSep << objects_.Serialize() << kSep
     << by_predicate_.size();
  for (const auto& [uri, ps] : by_predicate_) {
    // Length-prefixed URI: predicates are free-form strings on the wire.
    os << kSep << uri.size() << ':' << uri << kSep << ps.rows << kSep
       << ps.subjects.Serialize() << kSep << ps.objects.Serialize();
  }
  return os.str();
}

Result<StoreSketch> StoreSketch::Parse(const std::string& data) {
  size_t pos = 0;
  auto next = [&](std::string* out) -> bool {
    if (pos > data.size()) return false;
    size_t end = data.find(kSep, pos);
    if (end == std::string::npos) end = data.size();
    out->assign(data, pos, end - pos);
    pos = end + 1;
    return true;
  };
  std::string field;
  if (!next(&field) || field != kMagic) {
    return Status::InvalidArgument("sketch: bad magic");
  }
  StoreSketch sketch;
  if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
  sketch.total_rows_ = std::strtoull(field.c_str(), nullptr, 10);
  if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
  sketch.built_version_ = std::strtoull(field.c_str(), nullptr, 10);
  if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
  auto subjects = KmvSketch::Parse(field);
  if (!subjects.ok()) return subjects.status();
  sketch.subjects_ = std::move(subjects).value();
  if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
  auto objects = KmvSketch::Parse(field);
  if (!objects.ok()) return objects.status();
  sketch.objects_ = std::move(objects).value();
  if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
  size_t npred = std::strtoull(field.c_str(), nullptr, 10);
  for (size_t i = 0; i < npred; ++i) {
    // "<len>:<uri>" — the URI may contain the field separator.
    size_t colon = data.find(':', pos);
    if (colon == std::string::npos) {
      return Status::InvalidArgument("sketch: bad predicate length");
    }
    size_t len = std::strtoull(data.c_str() + pos, nullptr, 10);
    if (colon + 1 + len > data.size()) {
      return Status::InvalidArgument("sketch: predicate overruns payload");
    }
    std::string uri = data.substr(colon + 1, len);
    pos = colon + 1 + len + 1;  // skip the separator after the URI
    PredicateSummary ps;
    if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
    ps.rows = std::strtoull(field.c_str(), nullptr, 10);
    if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
    auto subj = KmvSketch::Parse(field);
    if (!subj.ok()) return subj.status();
    ps.subjects = std::move(subj).value();
    if (!next(&field)) return Status::InvalidArgument("sketch: truncated");
    auto obj = KmvSketch::Parse(field);
    if (!obj.ok()) return obj.status();
    ps.objects = std::move(obj).value();
    sketch.by_predicate_.emplace(std::move(uri), std::move(ps));
  }
  return sketch;
}

size_t StoreSketch::MemoryFootprint() const {
  size_t bytes = sizeof(StoreSketch);
  for (const auto& [uri, ps] : by_predicate_) {
    bytes += uri.capacity() + sizeof(PredicateSummary) +
             (ps.subjects.size() + ps.objects.size()) * 3 * sizeof(uint64_t);
  }
  bytes += (subjects_.size() + objects_.size()) * 3 * sizeof(uint64_t);
  return bytes;
}

}  // namespace gridvine
