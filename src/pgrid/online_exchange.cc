#include "pgrid/online_exchange.h"

#include <algorithm>
#include <set>

#include "pgrid/messages.h"

namespace gridvine {

namespace {

/// Partner sampling: a TTL-bounded random walk over routing links.
struct WalkRequest : MessageBody {
  uint64_t txn = 0;
  NodeId initiator = kInvalidNode;
  int ttl = 0;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.walk");
    return t;
  }
  size_t SizeBytes() const override { return 16; }
};

struct WalkResult : MessageBody {
  uint64_t txn = 0;
  NodeId endpoint = kInvalidNode;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.walk_result");
    return t;
  }
  size_t SizeBytes() const override { return 12; }
};

/// The action the responder decided on (the CoopIS'01 case analysis).
enum class ExchangeAction {
  kSplit,       ///< equal paths, overloaded: initiator appends 0, responder 1
  kReplicate,   ///< equal paths, light: become replicas, sync content
  kSpecialize,  ///< initiator's path was a prefix: it appends `split_bit`
  kRefsOnly,    ///< divergent paths (or responder specialized): swap refs
};

struct ExchangeHello : MessageBody {
  uint64_t txn = 0;
  NodeId initiator = kInvalidNode;
  Key path;
  uint64_t load = 0;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.exch_hello");
    return t;
  }
  size_t SizeBytes() const override { return 24; }
};

struct ExchangeReply : MessageBody {
  uint64_t txn = 0;
  NodeId responder = kInvalidNode;
  /// The responder's path AFTER applying its side of the action.
  Key responder_path;
  ExchangeAction action = ExchangeAction::kRefsOnly;
  int split_bit = 0;  // kSpecialize: the bit the initiator appends
  /// Entries now belonging to the initiator.
  std::vector<std::pair<std::string, std::string>> entries;
  /// Ref gossip: ids the initiator may classify (it learns their levels by
  /// maintenance probing later; here only same-prefix levels are shipped).
  std::vector<NodeId> gossip_refs;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.exch_reply");
    return t;
  }
  size_t SizeBytes() const override {
    size_t n = 32 + gossip_refs.size() * 4;
    for (const auto& [k, v] : entries) n += k.size() / 8 + v.size();
    return n;
  }
};

struct ExchangeCommit : MessageBody {
  uint64_t txn = 0;
  std::vector<std::pair<std::string, std::string>> entries;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.exch_commit");
    return t;
  }
  size_t SizeBytes() const override {
    size_t n = 12;
    for (const auto& [k, v] : entries) n += k.size() / 8 + v.size();
    return n;
  }
};

}  // namespace

OnlineExchangeAgent::OnlineExchangeAgent(Simulator* sim, PGridPeer* peer,
                                         Rng rng, Options options)
    : sim_(sim), peer_(peer), rng_(rng), options_(options) {
  peer_->AddProtocolHandler([this](NodeId from, const MessageBody& body) {
    return OnMessage(from, body);
  });
}

void OnlineExchangeAgent::AddSeedContact(NodeId id) {
  if (id != peer_->id() &&
      std::find(seeds_.begin(), seeds_.end(), id) == seeds_.end()) {
    seeds_.push_back(id);
  }
}

void OnlineExchangeAgent::Start() {
  running_ = true;
  ScheduleNext();
}

void OnlineExchangeAgent::ScheduleNext() {
  SimTime delay = options_.period * rng_.UniformDouble(0.5, 1.5);
  sim_->Schedule(delay, [this] {
    if (!running_) return;
    InitiateEncounter();
    ScheduleNext();
  });
}

std::vector<NodeId> OnlineExchangeAgent::KnownContacts() const {
  std::set<NodeId> out(seeds_.begin(), seeds_.end());
  const RoutingTable& routing = *peer_->routing();
  for (int level = 0; level < routing.levels(); ++level) {
    for (NodeId ref : routing.RefsAt(level)) out.insert(ref);
  }
  for (NodeId rep : routing.replicas()) out.insert(rep);
  out.erase(peer_->id());
  return std::vector<NodeId>(out.begin(), out.end());
}

void OnlineExchangeAgent::InitiateEncounter() {
  auto contacts = KnownContacts();
  if (contacts.empty()) return;
  ++stats_.encounters_started;
  auto walk = std::make_shared<WalkRequest>();
  walk->txn = next_txn_++;
  walk->initiator = peer_->id();
  walk->ttl = options_.walk_ttl;
  peer_->SendMessage(rng_.PickOne(contacts), std::move(walk));
}

void OnlineExchangeAgent::ApplyEntries(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  for (const auto& [bits, value] : entries) {
    auto key = Key::FromBits(bits);
    if (key.ok()) peer_->InsertLocal(*key, value);
  }
}

std::vector<std::pair<std::string, std::string>>
OnlineExchangeAgent::EvictEntriesFor(const Key& their_path) {
  std::vector<std::pair<Key, std::string>> to_move;
  for (const auto& [k, v] : peer_->storage()) {
    bool theirs = their_path.IsPrefixOf(k) || k.IsPrefixOf(their_path);
    if (!peer_->IsResponsibleFor(k) && theirs) to_move.emplace_back(k, v);
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [k, v] : to_move) {
    peer_->EraseLocal(k, v);
    out.emplace_back(k.bits(), v);
  }
  return out;
}

bool OnlineExchangeAgent::OnMessage(NodeId from, const MessageBody& body) {
  // --- Random walk ----------------------------------------------------------
  if (const auto* walk = dynamic_cast<const WalkRequest*>(&body)) {
    if (walk->ttl <= 0 && walk->initiator != peer_->id()) {
      // This peer is the sampled partner: report back to the initiator.
      auto result = std::make_shared<WalkResult>();
      result->txn = walk->txn;
      result->endpoint = peer_->id();
      peer_->SendMessage(walk->initiator, std::move(result));
      return true;
    }
    // Still walking — or the walk landed back on its initiator (common in
    // tiny networks), in which case it bounces one extra hop so the sampled
    // partner is never the initiator itself.
    auto contacts = KnownContacts();
    // Avoid trivially bouncing straight back when alternatives exist.
    if (contacts.size() > 1) {
      contacts.erase(std::remove(contacts.begin(), contacts.end(), from),
                     contacts.end());
    }
    if (contacts.empty()) {
      if (walk->initiator != peer_->id()) {
        auto result = std::make_shared<WalkResult>();
        result->txn = walk->txn;
        result->endpoint = peer_->id();
        peer_->SendMessage(walk->initiator, std::move(result));
      }
      return true;
    }
    auto fwd = std::make_shared<WalkRequest>(*walk);
    fwd->ttl = std::max(0, walk->ttl - 1);
    peer_->SendMessage(rng_.PickOne(contacts), std::move(fwd));
    return true;
  }
  if (const auto* result_check = dynamic_cast<const WalkResult*>(&body);
      result_check != nullptr && result_check->endpoint == peer_->id()) {
    return true;  // degenerate self-report (single-contact corner)
  }
  if (const auto* result = dynamic_cast<const WalkResult*>(&body)) {
    if (result->endpoint == peer_->id()) return true;  // walked back home
    auto hello = std::make_shared<ExchangeHello>();
    hello->txn = result->txn;
    hello->initiator = peer_->id();
    hello->path = peer_->path();
    hello->load = peer_->StorageSize();
    peer_->SendMessage(result->endpoint, std::move(hello));
    return true;
  }

  // --- Exchange transaction ---------------------------------------------------
  if (const auto* hello = dynamic_cast<const ExchangeHello*>(&body)) {
    const Key& mine = peer_->path();
    const Key& theirs = hello->path;
    int l = mine.CommonPrefixLength(theirs);

    auto reply = std::make_shared<ExchangeReply>();
    reply->txn = hello->txn;
    reply->responder = peer_->id();

    if (l == mine.length() && l == theirs.length()) {
      // Identical paths: split or replicate.
      size_t joint = peer_->StorageSize() + hello->load;
      bool can_deepen = mine.length() < peer_->options().key_depth;
      if (joint > options_.max_local_keys && can_deepen) {
        int level = mine.length();
        peer_->SetPath(mine.WithBit(1));
        peer_->routing()->AddRef(level, hello->initiator);
        peer_->routing()->RemoveReplica(hello->initiator);
        reply->action = ExchangeAction::kSplit;
        // Entries now in the initiator's half (bit 0 at `level`).
        Key initiator_path = theirs.WithBit(0);
        reply->entries = EvictEntriesFor(initiator_path);
        ++stats_.splits;
      } else {
        peer_->routing()->AddReplica(hello->initiator);
        reply->action = ExchangeAction::kReplicate;
        for (const auto& [k, v] : peer_->storage()) {
          reply->entries.emplace_back(k.bits(), v);
        }
        ++stats_.replications;
      }
    } else if (l == theirs.length()) {
      // Initiator's path is a prefix of ours: it specializes away from us.
      int level = theirs.length();
      reply->action = ExchangeAction::kSpecialize;
      reply->split_bit = 1 - mine.bit(level);
      peer_->routing()->AddRef(level, hello->initiator);
      ++stats_.specializations;
    } else if (l == mine.length()) {
      // Our path is a prefix of the initiator's: WE specialize.
      int level = mine.length();
      peer_->SetPath(mine.WithBit(1 - theirs.bit(level)));
      peer_->routing()->AddRef(level, hello->initiator);
      reply->action = ExchangeAction::kRefsOnly;
      reply->entries = EvictEntriesFor(theirs);
      ++stats_.specializations;
    } else {
      // Divergent paths: swap refs at the divergence level + gossip.
      peer_->routing()->AddRef(l, hello->initiator);
      reply->action = ExchangeAction::kRefsOnly;
      for (int level = 0; level < l; ++level) {
        for (NodeId ref : peer_->routing()->RefsAt(level)) {
          reply->gossip_refs.push_back(ref);
        }
      }
      reply->entries = EvictEntriesFor(theirs);
      ++stats_.ref_exchanges;
    }
    reply->responder_path = peer_->path();
    peer_->SendMessage(hello->initiator, std::move(reply));
    return true;
  }

  if (const auto* reply = dynamic_cast<const ExchangeReply*>(&body)) {
    const Key mine = peer_->path();
    const Key& theirs = reply->responder_path;
    switch (reply->action) {
      case ExchangeAction::kSplit: {
        int level = mine.length();
        peer_->SetPath(mine.WithBit(0));
        peer_->routing()->AddRef(level, reply->responder);
        peer_->routing()->RemoveReplica(reply->responder);
        ++stats_.splits;
        break;
      }
      case ExchangeAction::kReplicate: {
        peer_->routing()->AddReplica(reply->responder);
        ++stats_.replications;
        break;
      }
      case ExchangeAction::kSpecialize: {
        int level = mine.length();
        peer_->SetPath(mine.WithBit(reply->split_bit));
        peer_->routing()->AddRef(level, reply->responder);
        ++stats_.specializations;
        break;
      }
      case ExchangeAction::kRefsOnly: {
        int l = peer_->path().CommonPrefixLength(theirs);
        if (l < peer_->path().length() && l < theirs.length()) {
          peer_->routing()->AddRef(l, reply->responder);
        } else if (peer_->path() == theirs) {
          peer_->routing()->AddReplica(reply->responder);
        }
        ++stats_.ref_exchanges;
        break;
      }
    }
    ApplyEntries(reply->entries);
    // Gossip refs are only *candidates*: classify by probing is the
    // maintenance agent's job; here we cheaply keep them as seeds.
    for (NodeId ref : reply->gossip_refs) AddSeedContact(ref);

    // Commit: hand the responder whatever we hold that is now theirs (for
    // replicate: everything, so the replica converges to the union).
    auto commit = std::make_shared<ExchangeCommit>();
    commit->txn = reply->txn;
    if (reply->action == ExchangeAction::kReplicate) {
      for (const auto& [k, v] : peer_->storage()) {
        commit->entries.emplace_back(k.bits(), v);
      }
    } else {
      commit->entries = EvictEntriesFor(theirs);
    }
    peer_->SendMessage(reply->responder, std::move(commit));
    return true;
  }

  if (const auto* commit = dynamic_cast<const ExchangeCommit*>(&body)) {
    ApplyEntries(commit->entries);
    return true;
  }
  return false;
}

}  // namespace gridvine
