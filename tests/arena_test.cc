#include "common/arena.h"

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"

namespace gridvine {
namespace {

TEST(ArenaTest, StartsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
}

TEST(ArenaTest, AllocateReturnsWritableMemory) {
  Arena arena;
  char* p = static_cast<char*>(arena.Allocate(64, 1));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 64);
  EXPECT_EQ(static_cast<unsigned char>(p[63]), 0xABu);
  EXPECT_GE(arena.bytes_used(), 64u);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  // Odd-size allocations interleaved with aligned requests must still yield
  // correctly aligned pointers.
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    arena.Allocate(3, 1);  // knock the bump pointer off alignment
    void* p = arena.Allocate(8, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  std::vector<char*> blocks;
  for (int i = 0; i < 200; ++i) {
    char* p = static_cast<char*>(arena.Allocate(16, 8));
    std::memset(p, i & 0xFF, 16);
    blocks.push_back(p);
  }
  // Every block still holds its fill pattern: no two allocations aliased.
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 16; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(blocks[size_t(i)][j]), i & 0xFF);
    }
  }
}

TEST(ArenaTest, LargeAllocationGetsDedicatedSpace) {
  Arena arena;
  arena.Allocate(16, 8);
  // Far larger than the max chunk size: must still succeed and be usable.
  const size_t big = 4u << 20;
  char* p = static_cast<char*>(arena.Allocate(big, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(ArenaTest, CopyStringContentsStable) {
  Arena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 500; ++i) {
    originals.push_back("value-" + std::to_string(i * 7919));
  }
  for (const auto& s : originals) views.push_back(arena.CopyString(s));
  // Views remain valid and equal to their sources even after the arena has
  // grown through multiple chunks.
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]);
  }
}

TEST(ArenaTest, CopyEmptyString) {
  Arena arena;
  std::string_view v = arena.CopyString("");
  EXPECT_EQ(v.size(), 0u);
}

TEST(ArenaTest, ResetReclaimsButKeepsCapacity) {
  Arena arena;
  for (int i = 0; i < 1000; ++i) arena.Allocate(100, 8);
  size_t reserved_before = arena.bytes_reserved();
  EXPECT_GT(reserved_before, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Reset keeps the largest chunk for reuse: capacity shrinks (other chunks
  // freed) but does not hit zero.
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved_before);
  EXPECT_EQ(arena.chunk_count(), 1u);
  // And the arena is fully usable again.
  char* p = static_cast<char*>(arena.Allocate(64, 8));
  std::memset(p, 0x5A, 64);
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0x5Au);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a;
  std::string_view v = a.CopyString("persistent-string-over-sso-length");
  Arena b = std::move(a);
  // The characters live in a chunk now owned by b; still intact.
  EXPECT_EQ(v, "persistent-string-over-sso-length");
  EXPECT_GT(b.bytes_used(), 0u);
}

TEST(ArenaTest, GrowthDoublesChunks) {
  Arena arena;
  // Many small allocations should aggregate into few chunks (doubling), not
  // one chunk per allocation.
  for (int i = 0; i < 10000; ++i) arena.Allocate(32, 8);
  EXPECT_LT(arena.chunk_count(), 20u);
}

}  // namespace
}  // namespace gridvine
