#include "selforg/attribute_matcher.h"

#include <algorithm>

#include "common/string_util.h"

namespace gridvine {

namespace {

/// Case-folds and strips separators so "organism_name", "OrganismName" and
/// "organism-name" normalize identically.
std::string NormalizeName(const std::string& local) {
  std::string out;
  for (char c : ToLower(local)) {
    if (c != '_' && c != '-' && c != ' ') out.push_back(c);
  }
  return out;
}

}  // namespace

double AttributeMatcher::Score(const std::string& source_attr_uri,
                               const std::string& target_attr_uri,
                               const ValueSets& source_values,
                               const ValueSets& target_values) const {
  std::string a = NormalizeName(Schema::LocalOfUri(source_attr_uri));
  std::string b = NormalizeName(Schema::LocalOfUri(target_attr_uri));
  double lexical = std::max(EditSimilarity(a, b), TrigramSimilarity(a, b));

  auto sit = source_values.find(source_attr_uri);
  auto tit = target_values.find(target_attr_uri);
  bool have_values = sit != source_values.end() && !sit->second.empty() &&
                     tit != target_values.end() && !tit->second.empty();

  // Embedding channel: only when enabled and both vectors are present.
  bool have_embeddings = false;
  double embed_sim = 0;
  if (options_.embedding_weight > 0 && source_embeddings_ &&
      target_embeddings_) {
    auto se = source_embeddings_->find(source_attr_uri);
    auto te = target_embeddings_->find(target_attr_uri);
    if (se != source_embeddings_->end() && te != target_embeddings_->end()) {
      have_embeddings = true;
      embed_sim = CosineSimilarity(se->second, te->second);
    }
  }

  // Blend whichever channels have evidence, renormalized — a pair missing
  // values or vectors is scored by the rest, not penalized.
  double total_weight = options_.lexical_weight;
  double score = options_.lexical_weight * lexical;
  if (have_values) {
    double value_sim = JaccardSimilarity(sit->second, tit->second);
    total_weight += options_.value_weight;
    score += options_.value_weight * value_sim;
  }
  if (have_embeddings) {
    total_weight += options_.embedding_weight;
    score += options_.embedding_weight * embed_sim;
  }
  if (total_weight <= 0) return lexical;
  return score / total_weight;
}

std::vector<AttributeMatcher::Correspondence> AttributeMatcher::Match(
    const Schema& source, const Schema& target,
    const ValueSets& source_values, const ValueSets& target_values) const {
  // Score every pair, then assign greedily best-first one-to-one.
  std::vector<Correspondence> candidates;
  for (const auto& sa : source.AttributeUris()) {
    for (const auto& ta : target.AttributeUris()) {
      double score = Score(sa, ta, source_values, target_values);
      if (score >= options_.threshold) {
        candidates.push_back(Correspondence{sa, ta, score});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Correspondence& a, const Correspondence& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.source_attr_uri != b.source_attr_uri) {
                return a.source_attr_uri < b.source_attr_uri;
              }
              return a.target_attr_uri < b.target_attr_uri;
            });
  std::set<std::string> used_src, used_dst;
  std::vector<Correspondence> out;
  for (const auto& c : candidates) {
    if (used_src.count(c.source_attr_uri) || used_dst.count(c.target_attr_uri)) {
      continue;
    }
    used_src.insert(c.source_attr_uri);
    used_dst.insert(c.target_attr_uri);
    out.push_back(c);
  }
  return out;
}

}  // namespace gridvine
