#include "query/planner.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

TEST(ClassifyPatternTest, AllClasses) {
  EXPECT_EQ(ClassifyPattern(P(Term::Uri("s"), Term::Var("p"), Term::Var("o"))),
            PatternCost::kExactSubject);
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Uri("p"), Term::Literal("exact"))),
            PatternCost::kExactObject);
  EXPECT_EQ(ClassifyPattern(P(Term::Var("s"), Term::Uri("p"), Term::Var("o"))),
            PatternCost::kExactPredicate);
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Var("p"), Term::Literal("abc%"))),
            PatternCost::kRange);
  EXPECT_EQ(ClassifyPattern(P(Term::Var("s"), Term::Var("p"), Term::Var("o"))),
            PatternCost::kUnroutable);
  // Leading wildcard: not a range.
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Var("p"), Term::Literal("%abc"))),
            PatternCost::kUnroutable);
  // Wildcard literal with an exact predicate: predicate class.
  EXPECT_EQ(ClassifyPattern(
                P(Term::Var("s"), Term::Uri("p"), Term::Literal("%abc%"))),
            PatternCost::kExactPredicate);
}

TEST(PlanConjunctiveTest, CheapestFirst) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),       // predicate
       P(Term::Uri("s"), Term::Uri("p2"), Term::Var("x")),       // subject
       P(Term::Var("x"), Term::Uri("p3"), Term::Literal("v"))}); // object
  auto order = PlanConjunctive(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // exact subject first
  EXPECT_EQ(order[1], 2u);  // exact object second
  EXPECT_EQ(order[2], 0u);  // predicate last
}

TEST(PlanConjunctiveTest, PrefersJoinConnectedPatterns) {
  // p0 binds ?a; p1 is cheap (subject) but disconnected from ?a until p2
  // runs; p2 is predicate-class but shares ?a.
  ConjunctiveQuery q(
      {"a"},
      {P(Term::Uri("s0"), Term::Uri("p0"), Term::Var("a")),   // subject, ?a
       P(Term::Uri("s1"), Term::Uri("p1"), Term::Var("b")),   // subject, ?b
       P(Term::Var("a"), Term::Uri("p2"), Term::Var("b"))});  // joins both
  auto order = PlanConjunctive(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  // After p0, the connected pattern p2 (predicate class, connected) competes
  // with p1 (subject class, NOT connected): connectivity wins.
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
}

TEST(PlanConjunctiveTest, StableForEqualRanks) {
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("p1"), Term::Var("o")),
       P(Term::Var("x"), Term::Uri("p2"), Term::Var("o2"))});
  auto order = PlanConjunctive(q);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
}

TEST(PlanConjunctiveTest, SinglePattern) {
  ConjunctiveQuery q({"x"},
                     {P(Term::Var("x"), Term::Uri("p"), Term::Var("o"))});
  EXPECT_EQ(PlanConjunctive(q), (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace gridvine
