#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

namespace gridvine {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.Now());
    if (times.size() < 5) sim.Schedule(1.0, tick);
  };
  sim.Schedule(1.0, tick);
  sim.Run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 5.0);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(2.0, [&] {
    bool ran = false;
    sim.Schedule(-5.0, [&ran] { ran = true; });
    // Nested event must still run at >= current time.
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1.0, [&] { ++ran; });
  sim.Schedule(2.0, [&] { ++ran; });
  sim.Schedule(5.0, [&] { ++ran; });
  size_t n = sim.RunUntil(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.5);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunWithEventBudget) {
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 10; ++i) sim.Schedule(double(i), [&] { ++ran; });
  EXPECT_EQ(sim.Run(4), 4u);
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(SimulatorTest, ExecutedCounterAccumulates) {
  Simulator sim;
  sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 2u);
  sim.Schedule(3, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1;
  sim.ScheduleAt(7.5, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

// --- Scheduler-semantics regression suite for the 4-ary heap ----------------
// These pin down the contract the seed's std::priority_queue implementation
// provided, so the hand-rolled heap must reproduce it exactly.

TEST(SimulatorTest, FifoTieBreakSurvivesInterleavedPopsAndPushes) {
  // Same-time FIFO must hold even when the heap is reshaped by pops between
  // the pushes (a pure sift-up/sift-down bug shows up here, not in the
  // schedule-all-then-run case).
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(0.5, [&] {
    for (int i = 0; i < 7; ++i) sim.Schedule(0.5, [&order, i] { order.push_back(i); });
  });
  sim.Schedule(1.0, [&order] { order.push_back(100); });
  sim.Schedule(1.0, [&order] { order.push_back(101); });
  sim.Run();
  // The seven events scheduled at t=0.5 fire at t=1.0 with later seqs than
  // the two scheduled up front, so FIFO puts 100, 101 first.
  EXPECT_EQ(order, (std::vector<int>{100, 101, 0, 1, 2, 3, 4, 5, 6}));
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.RunUntil(3.0), 0u);
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
  // Clock never moves backwards.
  EXPECT_EQ(sim.RunUntil(1.0), 0u);
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, RunUntilDoesNotAdvancePastLaterPending) {
  Simulator sim;
  sim.Schedule(5.0, [] {});
  sim.RunUntil(2.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, ReentrantScheduleAtCurrentTimeRunsInSameDrain) {
  // An event scheduling a zero-delay event must see it fire within the same
  // Run() call, after all previously-scheduled same-time events (FIFO).
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1.0, [&] {
    order.push_back(1);
    sim.Schedule(0.0, [&] { order.push_back(3); });
  });
  sim.Schedule(1.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ReentrantScheduleDeepChainDrains) {
  // A chain of events each rescheduling the next at the same timestamp: the
  // heap is reshaped (push during pop aftermath) every step.
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 1000) sim.Schedule(0.0, chain);
  };
  sim.Schedule(1.0, chain);
  sim.Run();
  EXPECT_EQ(count, 1000);
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
}

TEST(SimulatorTest, RunUntilFlagStopsImmediately) {
  Simulator sim;
  bool done = false;
  int after_done = 0;
  sim.Schedule(1.0, [&] { done = true; });
  sim.Schedule(2.0, [&] { ++after_done; });
  size_t ran = sim.RunUntilFlag(&done);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(after_done, 0);  // no event fires once the flag flips
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
}

TEST(SimulatorTest, RunUntilFlagDrainsToIdleWhenFlagNeverFlips) {
  Simulator sim;
  bool done = false;
  int ran_events = 0;
  for (int i = 0; i < 5; ++i) sim.Schedule(double(i), [&] { ++ran_events; });
  EXPECT_EQ(sim.RunUntilFlag(&done), 5u);
  EXPECT_EQ(ran_events, 5);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, ManyRandomTimesRunInNondecreasingOrder) {
  // Heap-order stress: pseudo-random times, verified globally sorted.
  Simulator sim;
  std::vector<double> fired;
  uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double t = double(state >> 40);
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(fired.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(SimulatorTest, LargeCapturesFallBackToHeapCorrectly) {
  // Captures beyond EventFn's inline budget must still work (heap path).
  Simulator sim;
  std::array<uint64_t, 32> big{};  // 256 bytes, > EventFn::kInlineSize
  big[0] = 7;
  big[31] = 9;
  uint64_t sum = 0;
  sim.Schedule(1.0, [big, &sum] { sum = big[0] + big[31]; });
  sim.Run();
  EXPECT_EQ(sum, 16u);
}

}  // namespace
}  // namespace gridvine
