#ifndef GRIDVINE_PGRID_PGRID_PEER_H_
#define GRIDVINE_PGRID_PGRID_PEER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/key.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "pgrid/messages.h"
#include "pgrid/retry_policy.h"
#include "pgrid/routing_table.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace gridvine {

/// A logical P-Grid peer: owns a path π(p) (its slice of the binary key
/// space), a routing table with per-level references into complementary
/// subtrees, a replica set σ(p), and the local key-value storage backing the
/// overlay primitives Retrieve(key) and Update(key, value) of the paper
/// (Section 2.1).
///
/// All operations are asynchronous: results are delivered through callbacks
/// once the simulated network round trips complete. Failures surface as
/// non-OK Status (timeout after retries, routing dead ends).
///
/// Reliability layer (the network itself is UDP-like — silent drops, no
/// error feedback): Retrieve/Update/Remove are ack'd requests governed by
/// Options::retry — per-attempt timeout with capped exponential backoff and
/// jitter (drawn from the peer's seeded Rng, so runs replay exactly), and
/// two failover paths before an attempt is counted lost:
///   - a retry excludes the previous first hop when alternatives exist, so
///     consecutive attempts explore disjoint routes (and, since replicas
///     σ(p) share the destination path, reach replicas of a dead
///     responsible peer);
///   - a *negative* response (routing dead end, hop limit) triggers an
///     immediate failover re-attempt instead of failing the request, as
///     long as attempts remain.
/// Exhaustion always resolves as Status::Timeout (RetryPolicy's terminal
/// status). Update has at-least-one-replica semantics: the ack is sent only
/// after one member of σ(p) — the responsible peer that answered — applied
/// the mutation locally; propagation to the rest of the replica set is
/// asynchronous (probabilistic consistency, as in the paper). Re-applied
/// duplicates (an ack lost, the mutation retried) are absorbed by
/// idempotent local storage.
class PGridPeer : public NetworkNode {
 public:
  struct Options {
    /// Bits of a full-depth key in this overlay instance.
    int key_depth = 16;
    /// Cap on routing references kept per level.
    int max_refs_per_level = 4;
    /// Timeout/backoff/attempt discipline for Retrieve/Update/Remove.
    RetryPolicy retry;
    /// Push mutations to replicas σ(p)?
    bool replicate_updates = true;
    /// Hard bound on forwarding chain length (loop safety net).
    int max_hops = 64;
    /// Load-aware replica selection for fire-and-forget routed payloads
    /// (Route / envelope forwarding — the RemoteScan/BoundScan read path):
    /// instead of a uniform draw over the refs at the divergence level, pick
    /// the one this peer has sent the fewest payloads to (ties by slot
    /// order). Deterministic — no rng draw — and default-off, so disabled
    /// runs consume exactly the HEAD random stream. Reliable Retrieve/Update
    /// keep the randomized+failover discipline either way.
    bool load_aware = false;
  };

  /// Successful lookup payload.
  struct LookupResult {
    std::vector<std::string> values;
    int hops = 0;
    SimTime rtt = 0;  // issue-to-answer simulated seconds
    NodeId responder = kInvalidNode;
  };
  using RetrieveCallback = std::function<void(Result<LookupResult>)>;

  /// Successful update acknowledgement payload.
  struct UpdateOutcome {
    int hops = 0;
    SimTime rtt = 0;
    NodeId responder = kInvalidNode;
  };
  using UpdateCallback = std::function<void(Result<UpdateOutcome>)>;

  /// The peer registers itself with `network` on construction.
  PGridPeer(Simulator* sim, Network* network, Rng rng, Options options);

  PGridPeer(const PGridPeer&) = delete;
  PGridPeer& operator=(const PGridPeer&) = delete;

  // --- Overlay primitives -------------------------------------------------

  /// Looks up all values stored under `key` (or, for a shorter key, under any
  /// stored key it prefixes). Responsible-locally lookups answer immediately.
  void Retrieve(const Key& key, RetrieveCallback cb);

  /// Inserts `value` under `key` at the responsible peer (and its replicas).
  /// Idempotent: an identical (key, value) pair is stored once.
  void Update(const Key& key, const std::string& value, UpdateCallback cb);

  /// Deletes the (key, value) pair at the responsible peer (and replicas).
  void Remove(const Key& key, const std::string& value, UpdateCallback cb);

  // --- Extension interface (used by the mediation layer) -------------------

  /// Invoked when an application payload reaches this peer: either a routed
  /// envelope that this peer is responsible for (`origin` = issuing peer,
  /// `hops` = forwards taken) or a direct send (`hops` = -1).
  using ExtensionHandler = std::function<void(
      NodeId origin, std::shared_ptr<const MessageBody> payload, int hops)>;
  void SetExtensionHandler(ExtensionHandler handler) {
    extension_handler_ = std::move(handler);
  }

  /// Routes `payload` to the peer responsible for `key` (delivered to its
  /// extension handler). Fire-and-forget: any acknowledgement or response is
  /// the payload protocol's business. Delivers locally (hops = 0) when this
  /// peer is itself responsible.
  void Route(const Key& key, std::shared_ptr<const MessageBody> payload);

  /// Sends `payload` directly to node `to`'s extension handler.
  void SendDirect(NodeId to, std::shared_ptr<const MessageBody> payload);

  /// Multicasts `payload` to every peer responsible for part of the subtree
  /// `prefix` (each distinct region delivered once; replicas of a region do
  /// not double-receive). Fire-and-forget, like Route.
  void RouteRange(const Key& prefix,
                  std::shared_ptr<const MessageBody> payload);

  /// Observes every local storage mutation (including replica pushes and
  /// bootstrap inserts); lets the mediation layer mirror overlay storage
  /// into its local triple database DB_p.
  using StorageListener =
      std::function<void(UpdateOp op, const Key& key, const std::string&)>;
  void SetStorageListener(StorageListener listener) {
    storage_listener_ = std::move(listener);
  }

  /// Auxiliary protocol hook: messages the peer does not handle natively
  /// (maintenance responses, construction-protocol traffic, ...) are offered
  /// to each registered handler in order until one returns true. Used by
  /// MaintenanceAgent and OnlineExchangeAgent.
  using ProtocolHandler =
      std::function<bool(NodeId from, const MessageBody& body)>;
  void AddProtocolHandler(ProtocolHandler handler) {
    protocol_handlers_.push_back(std::move(handler));
  }

  /// Sends a raw message to a known node id (maintenance probes).
  void SendMessage(NodeId to, std::shared_ptr<const MessageBody> body) {
    network_->Send(id_, to, std::move(body));
  }

  // --- NetworkNode --------------------------------------------------------

  void OnMessage(NodeId from, std::shared_ptr<const MessageBody> body) override;

  // --- Identity / bootstrap ----------------------------------------------
  // These are construction-time hooks used by PGridBuilder and the exchange
  // protocol; applications use only the primitives above.

  NodeId id() const { return id_; }
  const Key& path() const { return routing_.path(); }
  void SetPath(const Key& path) { routing_.SetPath(path); }
  RoutingTable* routing() { return &routing_; }
  const RoutingTable& routing() const { return routing_; }

  /// True if `key` falls in this peer's subtree (π(p) prefixes it, or it
  /// prefixes π(p) for short range-style keys).
  bool IsResponsibleFor(const Key& key) const;

  /// Stores a pair locally, bypassing routing (bootstrap / replication).
  void InsertLocal(const Key& key, const std::string& value);
  /// Drops a pair locally; true if something was removed.
  bool EraseLocal(const Key& key, const std::string& value);

  /// Ordered local storage (key → value, duplicates by value allowed).
  const std::multimap<Key, std::string>& storage() const { return storage_; }
  size_t StorageSize() const { return storage_.size(); }
  /// Moves out entries NOT belonging to this peer's current path (used when
  /// a path is extended during construction); returns them.
  std::vector<std::pair<Key, std::string>> EvictForeignEntries();

  /// Operation counters for experiments.
  struct Counters {
    uint64_t retrieves_issued = 0;
    uint64_t updates_issued = 0;
    uint64_t forwards = 0;
    uint64_t local_answers = 0;
    uint64_t routing_dead_ends = 0;
    uint64_t timeouts = 0;
    /// Re-attempts after a per-attempt timeout fired.
    uint64_t retries = 0;
    /// Re-attempts triggered by a negative response (dead end / hop limit).
    uint64_t failovers = 0;
    /// Application payloads delivered to this peer's extension handler
    /// (routed envelopes, range showers, direct sends) — the per-peer
    /// request-serving load the replica-imbalance measurements read.
    uint64_t extension_deliveries = 0;
  };
  const Counters& counters() const { return counters_; }

  /// Adds this peer's counters into `metrics` under "pgrid.*".
  void PublishMetrics(MetricsRegistry* metrics) const;

  /// Bytes held by this peer (object, routing table, overlay storage,
  /// in-flight request map), by capacity; see common/mem_estimate.h.
  size_t MemoryFootprint() const;

  /// Requests issued here and not yet resolved (answered, failed or timed
  /// out). The chaos harness asserts this drains to zero.
  size_t PendingRequests() const { return pending_.size(); }

  const Options& options() const { return options_; }

 private:
  struct Pending {
    enum class Kind { kRetrieve, kUpdate } kind;
    RetrieveCallback retrieve_cb;
    UpdateCallback update_cb;
    Key key;
    std::string value;
    UpdateOp op = UpdateOp::kInsert;
    int attempts = 0;
    SimTime started = 0;
    /// First hop of every attempt so far; a re-attempt avoids ALL of them
    /// while untried alternatives exist (falling back to avoiding only the
    /// most recent), so retries explore disjoint routes and a failover never
    /// re-picks a replica that already timed out for this flight.
    std::vector<NodeId> tried_hops;
    /// Operation span ("op.retrieve"/"op.update"/"op.remove") — the parent
    /// of every attempt's request flight span and retry/failover markers.
    TraceCtx span;
  };

  uint64_t NextRequestId() { return (uint64_t(id_) << 32) | next_seq_++; }

  /// Collects stored values for `key` (exact or prefix semantics).
  std::vector<std::string> LocalLookup(const Key& key) const;
  void ApplyLocal(UpdateOp op, const Key& key, const std::string& value);
  void ReplicateToSiblings(UpdateOp op, const Key& key,
                           const std::string& value);

  void SendRetrieveAttempt(uint64_t request_id);
  void SendUpdateAttempt(uint64_t request_id);
  void ArmTimeout(uint64_t request_id);
  void FailPending(uint64_t request_id, Status status);
  /// Negative response for an outstanding request: re-attempt if the retry
  /// budget allows, otherwise fail. Returns true if a re-attempt was made.
  bool FailoverPending(uint64_t request_id);

  /// The network's tracer while tracing is live, else nullptr.
  Tracer* LiveTracer() const;
  /// Opens an operation span parented on the ambient delivery context (a
  /// root when this peer originates the trace); invalid when not tracing.
  TraceCtx StartOpSpan(std::string_view name);
  /// Ends an op span with its outcome annotations.
  void EndOpSpan(TraceCtx span, bool ok, int hops, int attempts);

  void HandleRoutedEnvelope(NodeId from, const RoutedEnvelope& env);
  void HandleRangeEnvelope(NodeId from, const RangeEnvelope& env);
  /// Local delivery + level-wise splitting of a range multicast.
  void ShowerRange(const RangeEnvelope& env);
  void HandleRetrieveRequest(NodeId from, const RetrieveRequest& req);
  void HandleRetrieveResponse(const RetrieveResponse& resp);
  void HandleUpdateRequest(NodeId from, const UpdateRequest& req);
  void HandleUpdateAck(const UpdateAck& ack);
  void HandleReplicaUpdate(const ReplicaUpdate& upd);

  /// Picks the next hop for a fire-and-forget payload: least-loaded when
  /// Options::load_aware, else one uniform draw (the HEAD behaviour).
  /// Records the chosen hop in send_loads_ only in load-aware mode.
  std::optional<NodeId> PayloadNextHop(const Key& key,
                                       NodeId exclude = kInvalidNode);

  Simulator* sim_;
  Network* network_;
  /// One machine word of generator state (see common/rng.h CompactRng) —
  /// seeded from the Rng the constructor receives, so call sites are
  /// unchanged while a bare peer sheds the 2.5 KB mt19937_64.
  CompactRng rng_;
  Options options_;
  NodeId id_;
  RoutingTable routing_;
  /// Payloads routed per destination ref — the state behind load-aware
  /// selection. Empty (never touched) when Options::load_aware is off.
  std::unordered_map<NodeId, uint64_t> send_loads_;
  std::multimap<Key, std::string> storage_;
  /// Exact (key, value) presence index: keeps InsertLocal's idempotence
  /// check O(log n) even when the order-preserving hash piles thousands of
  /// entries onto one key (clustered URIs).
  std::set<std::pair<std::string, std::string>> present_;
  std::unordered_map<uint64_t, Pending> pending_;
  uint32_t next_seq_ = 0;
  Counters counters_;
  ExtensionHandler extension_handler_;
  StorageListener storage_listener_;
  std::vector<ProtocolHandler> protocol_handlers_;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_PGRID_PEER_H_
