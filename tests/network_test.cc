#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/churn.h"

namespace gridvine {
namespace {

struct TestMsg : MessageBody {
  explicit TestMsg(int v) : value(v) {}
  int value;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("test");
    return t;
  }
  size_t SizeBytes() const override { return 10; }
};

class Recorder : public NetworkNode {
 public:
  void OnMessage(NodeId from, std::shared_ptr<const MessageBody> body) override {
    received.push_back({from, dynamic_cast<const TestMsg*>(body.get())->value});
  }
  std::vector<std::pair<NodeId, int>> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : net_(&sim_, std::make_unique<ConstantLatency>(0.1), Rng(7)) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.Send(ida, idb, std::make_shared<TestMsg>(42));
  EXPECT_TRUE(b.received.empty());
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(b.received[0].second, 42);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.1);
}

TEST_F(NetworkTest, SelfSendWorks) {
  Recorder a;
  NodeId ida = net_.AddNode(&a);
  net_.Send(ida, ida, std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST_F(NetworkTest, DropsToDeadNode) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.SetAlive(idb, false);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, DeadSenderSendsNothing) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.SetAlive(ida, false);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, DropsIfNodeDiesInFlight) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  // Kill the destination before the 0.1s delivery fires.
  sim_.Schedule(0.05, [&] { net_.SetAlive(idb, false); });
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, RevivedNodeReceivesAgain) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.SetAlive(idb, false);
  net_.SetAlive(idb, true);
  net_.Send(ida, idb, std::make_shared<TestMsg>(5));
  sim_.Run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, StatsAccounting) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  net_.Send(ida, idb, std::make_shared<TestMsg>(2));
  sim_.Run();
  EXPECT_EQ(net_.stats().messages_sent, 2u);
  EXPECT_EQ(net_.stats().messages_delivered, 2u);
  EXPECT_EQ(net_.stats().bytes_sent, 20u);
  EXPECT_EQ(net_.stats().MessagesForType("test"), 2u);
  EXPECT_EQ(net_.stats().BytesForType("test"), 20u);
  EXPECT_EQ(net_.stats().MessagesByTypeName().at("test"), 2u);
  const_cast<Network&>(net_).ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

// Pins the drop-accounting contract documented on NetworkStats: the *_sent
// counters (total, bytes, per-type) are recorded at Send() time and include
// every message later dropped, while delivered + dropped partitions sent.
TEST_F(NetworkTest, SentCountersIncludeDropsOfEveryKind) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);

  net_.Send(ida, idb, std::make_shared<TestMsg>(1));  // delivered
  sim_.Run();
  net_.SetAlive(idb, false);
  net_.Send(ida, idb, std::make_shared<TestMsg>(2));  // dropped at send
  sim_.Run();
  net_.SetAlive(idb, true);
  net_.Send(ida, idb, std::make_shared<TestMsg>(3));  // dropped in flight
  net_.SetAlive(idb, false);
  sim_.Run();

  const NetworkStats& s = net_.stats();
  EXPECT_EQ(s.messages_sent, 3u);
  EXPECT_EQ(s.messages_delivered, 1u);
  EXPECT_EQ(s.messages_dropped, 2u);
  EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
  // Per-type and byte counters follow messages_sent, not messages_delivered.
  EXPECT_EQ(s.MessagesForType("test"), 3u);
  EXPECT_EQ(s.BytesForType("test"), 30u);
  EXPECT_EQ(s.bytes_sent, 30u);
}

TEST_F(NetworkTest, TypeAccessorsForUnknownTypesReturnZero) {
  EXPECT_EQ(net_.stats().MessagesForType("no.such.type"), 0u);
  EXPECT_EQ(net_.stats().BytesForType("no.such.type"), 0u);
  EXPECT_TRUE(net_.stats().MessagesByTypeName().empty());
}

TEST(NetworkLossTest, LossyNetworkDropsSomeMessages) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(3),
              /*loss_probability=*/0.5);
  Recorder a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  for (int i = 0; i < 200; ++i) net.Send(ida, idb, std::make_shared<TestMsg>(i));
  sim.Run();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST(LatencyModelTest, UniformWithinBounds) {
  Rng rng(11);
  UniformLatency lat(0.2, 0.4);
  for (int i = 0; i < 100; ++i) {
    double s = lat.Sample(&rng);
    EXPECT_GE(s, 0.2);
    EXPECT_LT(s, 0.4);
  }
}

TEST(LatencyModelTest, WanLatencyAboveBase) {
  Rng rng(11);
  WanLatency lat(0.015);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double s = lat.Sample(&rng);
    EXPECT_GT(s, 0.015);
    sum += s;
  }
  // Mean one-way delay lands in a plausible WAN band.
  EXPECT_GT(sum / 1000, 0.03);
  EXPECT_LT(sum / 1000, 0.3);
}

TEST(ChurnTest, TogglesNodesOverTime) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(5));
  std::vector<std::unique_ptr<Recorder>> nodes;
  for (int i = 0; i < 20; ++i) {
    nodes.push_back(std::make_unique<Recorder>());
    net.AddNode(nodes.back().get());
  }
  ChurnModel::Options opts;
  opts.mean_session_seconds = 10;
  opts.mean_downtime_seconds = 5;
  ChurnModel churn(&sim, &net, Rng(6), opts);
  churn.Start();
  sim.RunUntil(100);
  churn.Stop();
  EXPECT_GT(churn.transitions(), 20u);
}

TEST(ChurnTest, PinnedNodesStayAlive) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(5));
  Recorder a;
  NodeId ida = net.AddNode(&a);
  ChurnModel::Options opts;
  opts.mean_session_seconds = 1;
  opts.mean_downtime_seconds = 1;
  opts.pinned = {ida};
  ChurnModel churn(&sim, &net, Rng(6), opts);
  churn.Start();
  sim.RunUntil(50);
  EXPECT_TRUE(net.IsAlive(ida));
  EXPECT_EQ(churn.transitions(), 0u);
}

}  // namespace
}  // namespace gridvine
