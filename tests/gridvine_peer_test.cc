#include "gridvine/gridvine_peer.h"

#include <gtest/gtest.h>

#include "gridvine/gridvine_network.h"

namespace gridvine {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

TriplePatternQuery OrganismQuery(const std::string& predicate,
                                 const std::string& value) {
  return TriplePatternQuery(
      "x", TriplePattern(Term::Var("x"), Term::Uri(predicate),
                         Term::Literal(value)));
}

/// 16-peer network with three bioinformatic schemas and data under each:
///  EMBL#Organism, EMP#SystematicName, PDB#Species all describe organisms.
class GridVineTest : public ::testing::Test {
 protected:
  GridVineTest() : net_(MakeOptions()) {}

  static GridVineNetwork::Options MakeOptions() {
    GridVineNetwork::Options o;
    o.num_peers = 16;
    o.key_depth = 12;
    o.seed = 77;
    o.latency = GridVineNetwork::LatencyKind::kConstant;
    o.latency_param = 0.02;
    o.peer.query_timeout = 5.0;
    return o;
  }

  void SetUp() override {
    ASSERT_TRUE(net_.InsertSchema(
                        0, Schema("EMBL", "bio", {"Organism", "Length"}))
                    .ok());
    ASSERT_TRUE(
        net_.InsertSchema(1, Schema("EMP", "bio", {"SystematicName"})).ok());
    ASSERT_TRUE(net_.InsertSchema(2, Schema("PDB", "bio", {"Species"})).ok());

    ASSERT_TRUE(
        net_.InsertTriple(0, T("embl:A78712", "EMBL#Organism",
                               "Aspergillus niger"))
            .ok());
    ASSERT_TRUE(
        net_.InsertTriple(0, T("embl:A78767", "EMBL#Organism",
                               "Aspergillus niger"))
            .ok());
    ASSERT_TRUE(
        net_.InsertTriple(3, T("embl:B11111", "EMBL#Organism", "Penicillium"))
            .ok());
    ASSERT_TRUE(net_.InsertTriple(
                        4, T("emp:NEN94295", "EMP#SystematicName",
                             "Aspergillus niger"))
                    .ok());
    ASSERT_TRUE(net_.InsertTriple(
                        5, T("pdb:1abc", "PDB#Species", "Aspergillus niger"))
                    .ok());
    ASSERT_TRUE(
        net_.InsertTriple(0, T("embl:A78712", "EMBL#Length", "1204")).ok());
  }

  SchemaMapping EmblToEmp(bool bidirectional = false) {
    SchemaMapping m("embl-emp", "EMBL", "EMP");
    EXPECT_TRUE(
        m.AddCorrespondence("EMBL#Organism", "EMP#SystematicName").ok());
    m.set_bidirectional(bidirectional);
    return m;
  }

  SchemaMapping EmpToPdb() {
    SchemaMapping m("emp-pdb", "EMP", "PDB");
    EXPECT_TRUE(m.AddCorrespondence("EMP#SystematicName", "PDB#Species").ok());
    return m;
  }

  GridVineNetwork net_;
};

TEST_F(GridVineTest, TripleIndexedThreeTimes) {
  // The triple must be stored under the hash of its subject, predicate and
  // object — count peers holding it in their DB_p.
  Triple t = T("embl:A78712", "EMBL#Organism", "Aspergillus niger");
  size_t holders = 0;
  for (size_t i = 0; i < net_.size(); ++i) {
    if (net_.peer(i)->local_db().Contains(t)) ++holders;
  }
  EXPECT_GE(holders, 1u);
  EXPECT_LE(holders, 3u);

  // And the three index keys are each covered by some holder.
  const auto& h = net_.peer(0)->hasher();
  for (const auto& keyval :
       {h("embl:A78712"), h("EMBL#Organism"), h("Aspergillus niger")}) {
    bool covered = false;
    for (size_t i = 0; i < net_.size(); ++i) {
      if (net_.peer(i)->overlay()->IsResponsibleFor(keyval) &&
          net_.peer(i)->local_db().Contains(t)) {
        covered = true;
      }
    }
    EXPECT_TRUE(covered) << keyval;
  }
}

TEST_F(GridVineTest, SearchByPredicateWithLikePattern) {
  auto res = net_.SearchFor(
      7, OrganismQuery("EMBL#Organism", "%Aspergillus%"));
  ASSERT_TRUE(res.status.ok()) << res.status;
  EXPECT_EQ(res.items.size(), 2u);
  for (const auto& item : res.items) {
    EXPECT_EQ(item.schema, "EMBL");
    EXPECT_EQ(item.mapping_path_len, 0);
  }
  EXPECT_EQ(res.schemas_answered, 1u);
  EXPECT_GT(res.latency, 0.0);
}

TEST_F(GridVineTest, SearchBySubject) {
  TriplePatternQuery q("o", TriplePattern(Term::Uri("embl:A78712"),
                                          Term::Var("p"), Term::Var("o")));
  auto res = net_.SearchFor(9, q);
  ASSERT_TRUE(res.status.ok());
  // Two triples with that subject: organism + length.
  EXPECT_EQ(res.items.size(), 2u);
}

TEST_F(GridVineTest, SearchByExactObject) {
  TriplePatternQuery q("x", TriplePattern(Term::Var("x"), Term::Var("p"),
                                          Term::Literal("Penicillium")));
  auto res = net_.SearchFor(11, q);
  ASSERT_TRUE(res.status.ok());
  ASSERT_EQ(res.items.size(), 1u);
  EXPECT_EQ(res.items[0].value.value(), "embl:B11111");
}

TEST_F(GridVineTest, SearchNoMatchesIsEmptyNotError) {
  auto res = net_.SearchFor(3, OrganismQuery("EMBL#Organism", "%Nothing%"));
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.items.empty());
  EXPECT_LT(res.first_result_latency, 0);  // sentinel: no results
}

TEST_F(GridVineTest, InvalidQueryRejected) {
  TriplePatternQuery bad(
      "z", TriplePattern(Term::Var("x"), Term::Uri("p"), Term::Var("y")));
  auto res = net_.SearchFor(0, bad);
  EXPECT_TRUE(res.status.IsInvalidArgument());
}

TEST_F(GridVineTest, FetchSchemaRoundTrip) {
  auto schema = net_.FetchSchema(13, "EMP");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "EMP");
  EXPECT_EQ(schema->attributes(),
            std::vector<std::string>{"SystematicName"});
  EXPECT_TRUE(net_.FetchSchema(13, "NOPE").status().IsNotFound());
}

TEST_F(GridVineTest, MappingStoredAtSourceKeySpace) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp()).ok());
  auto at_src = net_.FetchMappingsFor(9, "EMBL");
  ASSERT_TRUE(at_src.ok());
  ASSERT_EQ(at_src->size(), 1u);
  EXPECT_EQ((*at_src)[0].id(), "embl-emp");
  // Unidirectional: nothing at the target key space.
  auto at_dst = net_.FetchMappingsFor(9, "EMP");
  ASSERT_TRUE(at_dst.ok());
  EXPECT_TRUE(at_dst->empty());
}

TEST_F(GridVineTest, BidirectionalMappingStoredAtBothKeySpaces) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp(/*bidirectional=*/true)).ok());
  auto at_src = net_.FetchMappingsFor(9, "EMBL");
  auto at_dst = net_.FetchMappingsFor(9, "EMP");
  ASSERT_TRUE(at_src.ok());
  ASSERT_TRUE(at_dst.ok());
  EXPECT_EQ(at_src->size(), 1u);
  EXPECT_EQ(at_dst->size(), 1u);
}

TEST_F(GridVineTest, IterativeReformulationReachesSecondSchema) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp()).ok());
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  opts.mode = ReformulationMode::kIterative;
  auto res = net_.SearchFor(7, OrganismQuery("EMBL#Organism", "%Aspergillus%"),
                            opts);
  ASSERT_TRUE(res.status.ok());
  // 2 EMBL sequences + 1 EMP entry (the paper's Figure 2 scenario).
  EXPECT_EQ(res.items.size(), 3u);
  size_t from_emp = 0;
  for (const auto& item : res.items) {
    if (item.schema == "EMP") {
      ++from_emp;
      EXPECT_EQ(item.mapping_path_len, 1);
    }
  }
  EXPECT_EQ(from_emp, 1u);
  EXPECT_EQ(res.reformulations, 1u);
  EXPECT_EQ(res.schemas_answered, 2u);
}

TEST_F(GridVineTest, RecursiveReformulationReachesSecondSchema) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp()).ok());
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  opts.mode = ReformulationMode::kRecursive;
  opts.timeout = 3.0;
  auto res = net_.SearchFor(7, OrganismQuery("EMBL#Organism", "%Aspergillus%"),
                            opts);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.items.size(), 3u);
  EXPECT_EQ(res.schemas_answered, 2u);
}

TEST_F(GridVineTest, ReformulationChainsAcrossThreeSchemas) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp()).ok());
  ASSERT_TRUE(net_.InsertMapping(6, EmpToPdb()).ok());
  for (auto mode :
       {ReformulationMode::kIterative, ReformulationMode::kRecursive}) {
    GridVinePeer::QueryOptions opts;
    opts.reformulate = true;
    opts.mode = mode;
    opts.timeout = 4.0;
    auto res = net_.SearchFor(
        7, OrganismQuery("EMBL#Organism", "%Aspergillus%"), opts);
    ASSERT_TRUE(res.status.ok());
    EXPECT_EQ(res.items.size(), 4u) << "mode " << int(mode);
    EXPECT_EQ(res.schemas_answered, 3u) << "mode " << int(mode);
    bool saw_pdb = false;
    for (const auto& item : res.items) {
      if (item.schema == "PDB") {
        saw_pdb = true;
        EXPECT_EQ(item.mapping_path_len, 2);
      }
    }
    EXPECT_TRUE(saw_pdb);
  }
}

TEST_F(GridVineTest, BidirectionalMappingAnswersReverseQueries) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp(/*bidirectional=*/true)).ok());
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  // Query posed against EMP; data in EMBL reachable via the reverse mapping.
  auto res = net_.SearchFor(
      8, OrganismQuery("EMP#SystematicName", "%Aspergillus%"), opts);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.items.size(), 3u);
}

TEST_F(GridVineTest, DeprecatedMappingIsIgnored) {
  auto m = EmblToEmp();
  m.set_deprecated(true);
  ASSERT_TRUE(net_.InsertMapping(6, m).ok());
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  auto res = net_.SearchFor(7, OrganismQuery("EMBL#Organism", "%Aspergillus%"),
                            opts);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.items.size(), 2u);  // EMBL only
  EXPECT_EQ(res.reformulations, 0u);
}

TEST_F(GridVineTest, UpsertMappingDeprecationPropagates) {
  ASSERT_TRUE(net_.InsertMapping(6, EmblToEmp()).ok());
  auto m = EmblToEmp();
  m.set_deprecated(true);
  ASSERT_TRUE(net_.UpsertMapping(4, m).ok());

  auto fetched = net_.FetchMappingsFor(9, "EMBL");
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 1u);
  EXPECT_TRUE((*fetched)[0].deprecated());

  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  auto res = net_.SearchFor(7, OrganismQuery("EMBL#Organism", "%Aspergillus%"),
                            opts);
  EXPECT_EQ(res.items.size(), 2u);
}

TEST_F(GridVineTest, RemoveTripleMakesItUnfindable) {
  Triple t = T("embl:B11111", "EMBL#Organism", "Penicillium");
  ASSERT_TRUE(net_.RemoveTriple(2, t).ok());
  auto res = net_.SearchFor(3, OrganismQuery("EMBL#Organism", "%Penicillium%"));
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.items.empty());
}

TEST_F(GridVineTest, DegreeRegistryKeepsLatestVersion) {
  ASSERT_TRUE(net_.PublishDegree(0, "bio", "EMBL", 1, 2).ok());
  ASSERT_TRUE(net_.PublishDegree(1, "bio", "EMP", 0, 1).ok());
  // Supersede EMBL's record.
  ASSERT_TRUE(net_.PublishDegree(0, "bio", "EMBL", 3, 4).ok());

  auto records = net_.FetchDomainDegrees(5, "bio");
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  for (const auto& rec : *records) {
    if (rec.schema == "EMBL") {
      EXPECT_EQ(rec.in_degree, 3);
      EXPECT_EQ(rec.out_degree, 4);
    } else {
      EXPECT_EQ(rec.schema, "EMP");
      EXPECT_EQ(rec.out_degree, 1);
    }
  }
}

TEST_F(GridVineTest, ConjunctiveQueryJoins) {
  // ?x is an Aspergillus organism AND has length ?l.
  ConjunctiveQuery q(
      {"x", "l"},
      {TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                     Term::Literal("%Aspergillus%")),
       TriplePattern(Term::Var("x"), Term::Uri("EMBL#Length"),
                     Term::Var("l"))});
  auto res = net_.SearchForConjunctive(10, q);
  ASSERT_TRUE(res.status.ok()) << res.status;
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0].at("x").value(), "embl:A78712");
  EXPECT_EQ(res.rows[0].at("l").value(), "1204");
}

TEST_F(GridVineTest, ConjunctiveQueryEmptyJoinShortCircuits) {
  ConjunctiveQuery q(
      {"x"},
      {TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                     Term::Literal("%NoSuchOrganism%")),
       TriplePattern(Term::Var("x"), Term::Uri("EMBL#Length"),
                     Term::Var("l"))});
  auto res = net_.SearchForConjunctive(10, q);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.rows.empty());
}

TEST_F(GridVineTest, ResultsDeduplicated) {
  // The same triple is reachable via several index keys, but SearchFor must
  // not return duplicates.
  auto res = net_.SearchFor(
      7, OrganismQuery("EMBL#Organism", "Aspergillus niger"));
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.items.size(), 2u);
}

TEST_F(GridVineTest, SubsumptionSoundnessSemantics) {
  // EMBL#Organism ⊑ EMP#SystematicName (every organism entry is a
  // systematic-name entry, not vice versa), unidirectional.
  auto sub = EmblToEmp();
  sub.set_type(MappingType::kSubsumption);
  ASSERT_TRUE(net_.InsertMapping(6, sub).ok());

  // Query against EMP: specializing EMP -> EMBL is sound and available even
  // though the mapping is not bidirectional.
  GridVinePeer::QueryOptions sound;
  sound.reformulate = true;
  sound.sound_only = true;
  auto from_emp = net_.SearchFor(
      8, OrganismQuery("EMP#SystematicName", "%Aspergillus%"), sound);
  ASSERT_TRUE(from_emp.status.ok());
  EXPECT_EQ(from_emp.items.size(), 3u);  // 1 EMP + 2 EMBL

  // Query against EMBL with sound_only: the generalizing direction is
  // excluded, so only EMBL data comes back.
  auto from_embl_sound = net_.SearchFor(
      7, OrganismQuery("EMBL#Organism", "%Aspergillus%"), sound);
  ASSERT_TRUE(from_embl_sound.status.ok());
  EXPECT_EQ(from_embl_sound.items.size(), 2u);

  // Without sound_only the generalizing reformulation runs and EMP's
  // (possibly broader) answers are included.
  GridVinePeer::QueryOptions loose;
  loose.reformulate = true;
  auto from_embl_loose = net_.SearchFor(
      7, OrganismQuery("EMBL#Organism", "%Aspergillus%"), loose);
  ASSERT_TRUE(from_embl_loose.status.ok());
  EXPECT_EQ(from_embl_loose.items.size(), 3u);
}

TEST_F(GridVineTest, CountersTrack) {
  net_.SearchFor(7, OrganismQuery("EMBL#Organism", "%a%"));
  EXPECT_EQ(net_.peer(7)->counters().queries_issued, 1u);
}

}  // namespace
}  // namespace gridvine
