#include "common/logging.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

/// Restores environment-driven parsing when a test exits.
struct SpecGuard {
  explicit SpecGuard(const char* spec) {
    internal::ResetLogSpecForTest(spec);
  }
  ~SpecGuard() { internal::ResetLogSpecForTest(nullptr); }
};

TEST(LoggingTest, DefaultFallsBackToProcessLevel) {
  SpecGuard guard("");
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(LogLevelFor("pgrid"), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, BareLevelAppliesToEveryComponent) {
  SpecGuard guard("debug");
  EXPECT_EQ(LogLevelFor("pgrid"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFor("gridvine"), LogLevel::kDebug);
}

TEST(LoggingTest, PerComponentOverride) {
  SpecGuard guard("pgrid=debug");
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(LogLevelFor("pgrid"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFor("gridvine"), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, MixedSpecDefaultPlusOverride) {
  SpecGuard guard("info,gridvine=debug,selforg=error");
  EXPECT_EQ(LogLevelFor("gridvine"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFor("selforg"), LogLevel::kError);
  EXPECT_EQ(LogLevelFor("pgrid"), LogLevel::kInfo);  // the bare default
}

TEST(LoggingTest, LevelAliasesAndJunkIgnored) {
  SpecGuard guard("pgrid=warn,bogus=notalevel");
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(LogLevelFor("pgrid"), LogLevel::kWarning);
  // The malformed entry contributes nothing; fallback applies.
  EXPECT_EQ(LogLevelFor("bogus"), LogLevel::kError);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace gridvine
