// RetryPolicy unit tests — pure arithmetic, no simulator: backoff growth and
// cap, jitter envelope, attempt accounting, and the terminal status.

#include "pgrid/retry_policy.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(RetryPolicyTest, NominalBackoffGrowsGeometricallyThenCaps) {
  RetryPolicy p;
  p.base_timeout = 2.0;
  p.backoff_multiplier = 3.0;
  p.max_timeout = 25.0;
  EXPECT_DOUBLE_EQ(p.NominalTimeoutFor(1), 2.0);
  EXPECT_DOUBLE_EQ(p.NominalTimeoutFor(2), 6.0);
  EXPECT_DOUBLE_EQ(p.NominalTimeoutFor(3), 18.0);
  EXPECT_DOUBLE_EQ(p.NominalTimeoutFor(4), 25.0);  // 54 capped
  EXPECT_DOUBLE_EQ(p.NominalTimeoutFor(9), 25.0);  // stays at the cap
}

TEST(RetryPolicyTest, ZeroJitterIsExactAndDrawsNothing) {
  RetryPolicy p;
  p.base_timeout = 4.0;
  p.jitter = 0.0;
  Rng a(1), b(1);
  EXPECT_DOUBLE_EQ(p.TimeoutFor(1, &a), 4.0);
  EXPECT_DOUBLE_EQ(p.TimeoutFor(2, &a), 8.0);
  // The Rng was never consulted: both streams still agree on the next draw.
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

TEST(RetryPolicyTest, JitterStaysInsideTheSymmetricEnvelope) {
  RetryPolicy p;
  p.base_timeout = 5.0;
  p.backoff_multiplier = 2.0;
  p.max_timeout = 40.0;
  p.jitter = 0.2;
  Rng rng(42);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const SimTime nominal = p.NominalTimeoutFor(attempt);
    for (int i = 0; i < 200; ++i) {
      const SimTime t = p.TimeoutFor(attempt, &rng);
      EXPECT_GE(t, nominal * 0.8);
      EXPECT_LE(t, nominal * 1.2);
    }
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicUnderAFixedSeed) {
  RetryPolicy p;
  p.jitter = 0.15;
  Rng a(7), b(7);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_DOUBLE_EQ(p.TimeoutFor(attempt, &a), p.TimeoutFor(attempt, &b));
  }
}

TEST(RetryPolicyTest, ExhaustionHonoursTheAttemptCap) {
  RetryPolicy p;
  p.max_attempts = 3;
  EXPECT_FALSE(p.Exhausted(0));
  EXPECT_FALSE(p.Exhausted(1));
  EXPECT_FALSE(p.Exhausted(2));
  EXPECT_TRUE(p.Exhausted(3));
  EXPECT_TRUE(p.Exhausted(4));

  RetryPolicy single;
  single.max_attempts = 1;  // retries disabled
  EXPECT_TRUE(single.Exhausted(1));
}

TEST(RetryPolicyTest, TerminalStatusIsAlwaysTimeout) {
  const Status s = RetryPolicy::TimeoutStatus(3);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTimeout());
  // The attempt count surfaces in the message for diagnostics.
  EXPECT_NE(s.message().find("3"), std::string::npos);
}

}  // namespace
}  // namespace gridvine
