#include "schema/schema.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace gridvine {

bool Schema::HasAttribute(const std::string& local_name) const {
  return std::find(attributes_.begin(), attributes_.end(), local_name) !=
         attributes_.end();
}

std::vector<std::string> Schema::AttributeUris() const {
  std::vector<std::string> out;
  out.reserve(attributes_.size());
  for (const auto& a : attributes_) out.push_back(AttributeUri(a));
  return out;
}

Result<std::pair<std::string, std::string>> Schema::SplitAttributeUri(
    const std::string& uri) {
  size_t pos = uri.rfind('#');
  if (pos == std::string::npos) {
    return Status::InvalidArgument("attribute URI lacks '#': " + uri);
  }
  return std::make_pair(uri.substr(0, pos), uri.substr(pos + 1));
}

std::string Schema::SchemaOfUri(const std::string& uri) {
  size_t pos = uri.rfind('#');
  return pos == std::string::npos ? "" : uri.substr(0, pos);
}

std::string Schema::LocalOfUri(const std::string& uri) {
  size_t pos = uri.rfind('#');
  return pos == std::string::npos ? uri : uri.substr(pos + 1);
}

namespace {

bool HasReservedChar(const std::string& s) {
  return s.find('#') != std::string::npos ||
         s.find('\t') != std::string::npos ||
         s.find('|') != std::string::npos ||
         s.find(',') != std::string::npos;
}

}  // namespace

Status Schema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("schema name empty");
  if (HasReservedChar(name_)) {
    return Status::InvalidArgument("schema name has reserved char: " + name_);
  }
  if (HasReservedChar(domain_)) {
    return Status::InvalidArgument("domain has reserved char: " + domain_);
  }
  std::set<std::string> seen;
  for (const auto& a : attributes_) {
    if (a.empty()) return Status::InvalidArgument("empty attribute name");
    if (HasReservedChar(a)) {
      return Status::InvalidArgument("attribute has reserved char: " + a);
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute: " + a);
    }
  }
  return Status::OK();
}

std::string Schema::Serialize() const {
  return "schema|" + name_ + "|" + domain_ + "|" + Join(attributes_, ",");
}

Result<Schema> Schema::Parse(const std::string& line) {
  std::vector<std::string> parts = Split(line, '|');
  if (parts.size() != 4 || parts[0] != "schema") {
    return Status::Corruption("not a schema record: " + line);
  }
  std::vector<std::string> attrs;
  if (!parts[3].empty()) attrs = Split(parts[3], ',');
  Schema s(parts[1], parts[2], std::move(attrs));
  GV_RETURN_NOT_OK(s.Validate());
  return s;
}

InternPool<Schema>& SchemaPool() {
  static InternPool<Schema> pool;
  return pool;
}

Status SchemaRegistry::Register(const Schema& schema) {
  GV_RETURN_NOT_OK(schema.Validate());
  auto shared = SchemaPool().Intern(schema.Serialize(), schema);
  for (auto& s : schemas_) {
    if (s->name() == schema.name()) {
      s = std::move(shared);
      return Status::OK();
    }
  }
  schemas_.push_back(std::move(shared));
  return Status::OK();
}

bool SchemaRegistry::Contains(const std::string& name) const {
  return GetShared(name) != nullptr;
}

Result<Schema> SchemaRegistry::Get(const std::string& name) const {
  if (auto s = GetShared(name)) return *s;
  return Status::NotFound("schema not registered: " + name);
}

std::shared_ptr<const Schema> SchemaRegistry::GetShared(
    const std::string& name) const {
  for (const auto& s : schemas_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

std::vector<std::string> SchemaRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& s : schemas_) out.push_back(s->name());
  return out;
}

}  // namespace gridvine
