// Cross-cutting property tests: randomized sweeps over seeds/sizes checking
// the invariants the system's correctness rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "pgrid/pgrid_builder.h"
#include "store/triple_store.h"

namespace gridvine {
namespace {

// --- Overlay routing invariants ----------------------------------------------

struct SweepParam {
  uint64_t seed;
  size_t peers;
};

class OverlaySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OverlaySweepTest, GreedyRoutingAlwaysTerminatesWithinDepth) {
  auto [seed, n] = GetParam();
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(seed));
  PGridPeer::Options opts;
  opts.key_depth = 12;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  for (size_t i = 0; i < n; ++i) {
    owned.push_back(
        std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 3 + i), opts));
    peers.push_back(owned.back().get());
  }
  Rng rng(seed + 1);
  PGridBuilder::BuildBalanced(peers, &rng, 2);

  int max_depth = 0;
  for (auto* p : peers) max_depth = std::max(max_depth, p->path().length());

  Rng walk_rng(seed + 2);
  for (int trial = 0; trial < 64; ++trial) {
    Key key = Key::FromUint(uint64_t(walk_rng.UniformInt(0, 4095)), 12);
    PGridPeer* cur = peers[size_t(
        walk_rng.UniformInt(0, int64_t(peers.size()) - 1))];
    int hops = 0;
    while (!cur->IsResponsibleFor(key)) {
      auto next = cur->routing()->NextHop(key, &walk_rng);
      ASSERT_TRUE(next.has_value());
      // Greedy progress: the next peer shares strictly more prefix.
      PGridPeer* nxt = peers[*next];
      ASSERT_GT(nxt->path().CommonPrefixLength(key),
                cur->path().CommonPrefixLength(key));
      cur = nxt;
      ASSERT_LE(++hops, max_depth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, OverlaySweepTest,
    ::testing::Values(SweepParam{1, 8}, SweepParam{2, 17}, SweepParam{3, 32},
                      SweepParam{4, 100}, SweepParam{5, 256},
                      SweepParam{6, 11}));

// --- Store vs. brute-force consistency -----------------------------------------

class StoreConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreConsistencyTest, SelectMatchesBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> all;
  auto rand_name = [&](const char* prefix, int max) {
    return std::string(prefix) + std::to_string(rng.UniformInt(0, max));
  };
  for (int i = 0; i < 300; ++i) {
    Triple t(Term::Uri(rand_name("s", 30)), Term::Uri(rand_name("p", 8)),
             rng.Bernoulli(0.3)
                 ? Term::Uri(rand_name("o", 20))
                 : Term::Literal(rand_name("value ", 20)));
    if (!store.Contains(t)) all.push_back(t);
    ASSERT_TRUE(store.Insert(t).ok());
  }
  auto rand_term = [&](TriplePos pos) -> Term {
    int dice = int(rng.UniformInt(0, 3));
    if (dice == 0) return Term::Var("v" + std::to_string(int(pos)));
    switch (pos) {
      case TriplePos::kSubject:
        return Term::Uri(rand_name("s", 30));
      case TriplePos::kPredicate:
        return Term::Uri(rand_name("p", 8));
      case TriplePos::kObject:
        if (dice == 1) return Term::Literal("%" + rand_name("", 20) + "%");
        return Term::Literal(rand_name("value ", 20));
    }
    return Term::Var("x");
  };
  for (int q = 0; q < 60; ++q) {
    TriplePattern pattern(rand_term(TriplePos::kSubject),
                          rand_term(TriplePos::kPredicate),
                          rand_term(TriplePos::kObject));
    auto got = store.Select(pattern);
    std::vector<Triple> expected;
    for (const auto& t : all) {
      if (pattern.Matches(t)) expected.push_back(t);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << pattern.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreConsistencyTest,
                         ::testing::Values(10, 20, 30, 40));

// Differential test of the ID-encoded store against a naive full-scan
// reference, under a churny workload: random inserts, erases and reinserts
// over a small value universe. The erase volume is far above the lazy
// compaction threshold (dead fraction 1/2 at >= 64 slots), so posting-list
// compaction and slot renumbering run many times mid-test; the dictionary
// keeps growing across phases since erased terms are never forgotten.
class StoreChurnDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreChurnDifferentialTest, ChurnedStoreMatchesBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> reference;  // live triples, naive model

  auto ref_contains = [&](const Triple& t) {
    for (const auto& r : reference) {
      if (r == t) return true;
    }
    return false;
  };
  auto ref_erase = [&](const Triple& t) {
    for (size_t i = 0; i < reference.size(); ++i) {
      if (reference[i] == t) {
        reference.erase(reference.begin() + long(i));
        return true;
      }
    }
    return false;
  };
  auto rand_name = [&](const char* prefix, int max) {
    return std::string(prefix) + std::to_string(rng.UniformInt(0, max));
  };
  // Each phase widens the universe so the dictionary grows monotonically
  // even while the live set shrinks and re-expands.
  for (int phase = 0; phase < 3; ++phase) {
    int width = 10 + phase * 15;
    auto rand_triple = [&]() {
      return Triple(Term::Uri(rand_name("s", width)),
                    Term::Uri(rand_name("p", 4 + phase)),
                    rng.Bernoulli(0.3)
                        ? Term::Uri(rand_name("o", width))
                        : Term::Literal(rand_name("value ", width)));
    };
    for (int op = 0; op < 400; ++op) {
      Triple t = rand_triple();
      if (rng.Bernoulli(0.35) && !reference.empty()) {
        // Erase: half the time a known-live triple, else a random one.
        if (rng.Bernoulli(0.5)) {
          t = reference[size_t(
              rng.UniformInt(0, int64_t(reference.size()) - 1))];
        }
        EXPECT_EQ(store.Erase(t), ref_erase(t));
      } else {
        bool fresh = !ref_contains(t);
        ASSERT_TRUE(store.Insert(t).ok());
        if (fresh) reference.push_back(t);
      }
      ASSERT_EQ(store.size(), reference.size());
    }
    size_t dict_before = store.dictionary_size();

    // Every index and the matcher agree with the naive model.
    auto rand_term = [&](TriplePos pos) -> Term {
      int dice = int(rng.UniformInt(0, 3));
      if (dice == 0) return Term::Var("v" + std::to_string(int(pos)));
      switch (pos) {
        case TriplePos::kSubject:
          return Term::Uri(rand_name("s", width));
        case TriplePos::kPredicate:
          return Term::Uri(rand_name("p", 4 + phase));
        case TriplePos::kObject:
          if (dice == 1) return Term::Literal("%" + rand_name("", width) + "%");
          return Term::Literal(rand_name("value ", width));
      }
      return Term::Var("x");
    };
    for (int q = 0; q < 40; ++q) {
      TriplePattern pattern(rand_term(TriplePos::kSubject),
                            rand_term(TriplePos::kPredicate),
                            rand_term(TriplePos::kObject));
      auto got = store.Select(pattern);
      std::vector<Triple> expected;
      for (const auto& t : reference) {
        if (pattern.Matches(t)) expected.push_back(t);
      }
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << pattern.ToString();
      EXPECT_EQ(store.MatchPattern(pattern).size(),
                store.Select(pattern).size());
    }
    // Queries only read; interning happens on insert.
    EXPECT_EQ(store.dictionary_size(), dict_before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreChurnDifferentialTest,
                         ::testing::Values(7, 77, 777));

// Join differential: hash join output equals the nested-loop definition.
class JoinDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinDifferentialTest, HashJoinMatchesNestedLoop) {
  Rng rng(GetParam());
  TripleStore store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store
                    .Insert(Triple(
                        Term::Uri("e" + std::to_string(rng.UniformInt(0, 40))),
                        Term::Uri("p" + std::to_string(rng.UniformInt(0, 3))),
                        Term::Literal("v" + std::to_string(
                                               rng.UniformInt(0, 15)))))
                    .ok());
  }
  for (int q = 0; q < 20; ++q) {
    auto left = store.MatchPattern(TriplePattern(
        Term::Var("x"), Term::Uri("p" + std::to_string(rng.UniformInt(0, 3))),
        Term::Var("a")));
    auto right = store.MatchPattern(TriplePattern(
        Term::Var("x"), Term::Uri("p" + std::to_string(rng.UniformInt(0, 3))),
        Term::Var("b")));
    auto got = TripleStore::Join(left, right);

    // Nested-loop reference: all compatible pairs, merged bindings.
    std::vector<std::map<std::string, Term>> expected;
    for (const auto& l : left) {
      for (const auto& r : right) {
        bool compatible = true;
        for (const auto& [var, term] : l) {
          auto it = r.find(var);
          if (it != r.end() && !(it->second == term)) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
        auto merged = l;
        merged.insert(r.begin(), r.end());
        expected.push_back(std::move(merged));
      }
    }
    auto canon = [](std::vector<std::map<std::string, Term>> rows) {
      std::vector<std::string> out;
      for (const auto& row : rows) {
        std::string s;
        for (const auto& [var, term] : row) {
          s += var + "=" + term.ToString() + ";";
        }
        out.push_back(std::move(s));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    ASSERT_EQ(canon(got), canon(expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinDifferentialTest,
                         ::testing::Values(5, 55, 555));

// --- Serialization round trips under random content -----------------------------

class SerializationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationFuzzTest, TripleRoundTripsArbitraryBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    auto rand_string = [&](bool allow_weird) {
      std::string s;
      size_t len = size_t(rng.UniformInt(1, 24));
      for (size_t j = 0; j < len; ++j) {
        char c = char(rng.UniformInt(allow_weird ? 1 : 33, 126));
        s.push_back(c);
      }
      return s;
    };
    Triple t(Term::Uri(rand_string(false)), Term::Uri(rand_string(false)),
             Term::Literal(rand_string(true)));  // literals may hold \t, \\ ...
    auto parsed = Triple::Parse(t.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Values(100, 200, 300));

// --- Order-preserving hash: total-order agreement --------------------------------

class HashOrderSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HashOrderSweepTest, SortingByKeyEqualsSortingByString) {
  int depth = GetParam();
  OrderPreservingHash h(depth);
  Rng rng(uint64_t(depth) * 31);
  std::vector<std::string> values;
  for (int i = 0; i < 120; ++i) {
    std::string s;
    size_t len = size_t(rng.UniformInt(1, 10));
    for (size_t j = 0; j < len; ++j) {
      s.push_back(char('a' + rng.UniformInt(0, 25)));
    }
    values.push_back(s);
  }
  auto by_string = values;
  std::sort(by_string.begin(), by_string.end());
  auto by_key = values;
  std::stable_sort(by_key.begin(), by_key.end(),
                   [&](const std::string& a, const std::string& b) {
                     Key ka = h(a), kb = h(b);
                     if (ka == kb) return a < b;  // collisions: tie-break
                     return ka < kb;
                   });
  EXPECT_EQ(by_key, by_string);
}

INSTANTIATE_TEST_SUITE_P(Depths, HashOrderSweepTest,
                         ::testing::Values(16, 24, 40, 64));

}  // namespace
}  // namespace gridvine
