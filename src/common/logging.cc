#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <optional>

namespace gridvine {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
std::optional<LogLevel> ParseLevelName(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning" || name == "warn") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

/// Parsed GV_LOG spec: per-component overrides plus an optional bare-level
/// default for components without one.
struct LogSpec {
  std::map<std::string, LogLevel, std::less<>> components;
  std::optional<LogLevel> default_level;
};

LogSpec ParseLogSpec(const char* spec) {
  LogSpec out;
  if (spec == nullptr) return out;
  std::string_view rest(spec);
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                          : rest.substr(comma + 1);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      if (auto level = ParseLevelName(entry)) out.default_level = *level;
      continue;
    }
    auto level = ParseLevelName(entry.substr(eq + 1));
    if (level) out.components.emplace(entry.substr(0, eq), *level);
  }
  return out;
}

const char* g_spec_override = nullptr;
bool g_spec_overridden = false;

const LogSpec& GetLogSpec() {
  // Parsed lazily on first GV_CLOG; the test hook below re-parses.
  static LogSpec spec = ParseLogSpec(
      g_spec_overridden ? g_spec_override : std::getenv("GV_LOG"));
  static bool last_overridden = g_spec_overridden;
  static const char* last_override = g_spec_override;
  if (last_overridden != g_spec_overridden ||
      last_override != g_spec_override) {
    spec = ParseLogSpec(g_spec_overridden ? g_spec_override
                                          : std::getenv("GV_LOG"));
    last_overridden = g_spec_overridden;
    last_override = g_spec_override;
  }
  return spec;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel LogLevelFor(std::string_view component) {
  const LogSpec& spec = GetLogSpec();
  auto it = spec.components.find(component);
  if (it != spec.components.end()) return it->second;
  if (spec.default_level) return *spec.default_level;
  return GetLogLevel();
}

namespace internal {
void ResetLogSpecForTest(const char* spec) {
  g_spec_override = spec;
  g_spec_overridden = spec != nullptr;
  GetLogSpec();  // force re-parse now
}
}  // namespace internal

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : LogMessage(level, file, line, level >= GetLogLevel()) {}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       bool enabled)
    : enabled_(enabled) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace gridvine
