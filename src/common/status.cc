#include "common/status.h"

namespace gridvine {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverload:
      return "Overload";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace gridvine
