#ifndef GRIDVINE_TESTS_SELFORG_SOAK_HARNESS_H_
#define GRIDVINE_TESTS_SELFORG_SOAK_HARNESS_H_

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "gridvine/gridvine_network.h"
#include "selforg/self_organizer.h"
#include "workload/bio_workload.h"

namespace gridvine {

/// Continuous self-organization soak under loss + churn, engine-agnostic.
///
/// Base message loss comes from Network Options::loss_probability and churn
/// is a deterministic SetAlive schedule applied between RunUntil slices —
/// the two fault channels that behave bit-identically on the single-queue
/// and sharded engines (FaultPlan and ChurnModel are single-queue-only).
/// Mid-run one schema evolves (attribute renames), so the soak also covers
/// agreement maintenance: stale deprecation and re-derivation while peers
/// keep dropping out.
struct SelforgSoakScenario {
  uint64_t seed = 1;
  uint32_t shards = 1;
  /// Run the sharded engine even at shards == 1 (its threadless reference
  /// mode). Classic and sharded runs consume random streams differently and
  /// are not comparable bit-for-bit, so shard-count invariance comparisons
  /// must anchor the shards=1 run on the sharded engine too.
  bool force_sharded = false;
  int peers = 8;
  int schemas = 5;
  /// Base message loss (per-node streams on the sharded engine, shard-count
  /// independent).
  double loss = 0.03;
  /// Pre-seed a ground-truth mapping mesh (all pairs except 1-2) plus one
  /// erroneous mapping "bad-1-2", all automatic: cycles exist from round 0,
  /// so the incremental assessment genuinely runs under the faults and the
  /// bad edge must get deprecated mid-soak.
  bool seed_mesh = true;
  int churn_rounds = 8;  // rounds run with one (rotating) peer down
  SimTime slice = 1.0;   // simulated time advanced before each round
  int evolve_round = 4;  // schema evolution applied before this round; -1 off
  /// Renaming every attribute deterministically severs all of the evolved
  /// schema's mappings, whatever attribute subset each one covers — so the
  /// repair (stale deprecation) and re-derivation (creation) paths must
  /// both fire at every seed, not just where the renamed attrs happened to
  /// be mapped.
  double rename_fraction = 1.0;
  /// Fault-free convergence tail. Long enough for the repair -> re-derive ->
  /// assess pipeline to reach steady state even when loss delayed the
  /// organizer's view of the evolution by a few rounds.
  int quiet_rounds = 6;
};

/// What a soak run observes. `fingerprint` is the replay object: equal
/// strings mean bit-identical trajectories (per-round reports, final factor
/// graph structure and posteriors, all at full precision).
struct SelforgSoakOutcome {
  std::string fingerprint;
  double final_scc = 0.0;
  /// The last round's dirty-region pass converged under the message cap.
  /// (A non-empty dirty set after the round is legitimate carry-over, not a
  /// leak: the round's closing sync can re-intern records whose replicas
  /// diverged while one was dead, queueing work for the next round.)
  bool converged = false;
  bool matches_rebuild = false;  // digest == fresh assessor over same view
  /// The injected "bad-1-2" mapping is still active in the final view. The
  /// per-round deprecation counters undercount under loss (a push can land
  /// in the DHT while its ack times out, so the next sync flips the record
  /// without a counted deprecation) — end-state is the reliable invariant.
  bool erroneous_active = true;
  /// Some active mapping touches the evolved schema at the end — the
  /// re-derivation closed the hole the evolution tore open.
  bool evolved_relinked = false;
  /// Every pre-seeded ground-truth mapping touching the evolved schema is
  /// deprecated (or gone) in the final view. Like the erroneous catch this
  /// is an end-state invariant: the per-round stale counter undercounts
  /// whenever a deprecation push lands while its ack times out.
  bool stale_severed = false;
  size_t total_created = 0;
  size_t total_deprecated = 0;
  size_t total_stale_deprecated = 0;
  uint64_t bp_messages = 0;  // lifetime factor->variable messages
};

inline std::string FormatRoundReport(int idx,
                                     const SelfOrganizer::RoundReport& r) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "round=" << idx << " ci=" << r.ci_before << "->" << r.ci_after
     << " scc=" << r.scc_fraction_after << " created=" << r.mappings_created
     << " deprecated=" << r.mappings_deprecated
     << " stale=" << r.mappings_stale_deprecated
     << " active=" << r.active_mappings << " bp_factors=" << r.bp_factors
     << " bp_messages=" << r.bp_messages
     << " bp_converged=" << r.bp_converged << " ids=[";
  for (const auto& id : r.created_ids) os << "+" << id << ",";
  for (const auto& id : r.deprecated_ids) os << "-" << id << ",";
  for (const auto& id : r.stale_deprecated_ids) os << "~" << id << ",";
  os << "]\n";
  return os.str();
}

/// Structure digest + warm posteriors at full precision — the "no leaked
/// assessment state" comparison object.
inline std::string AssessorFingerprint(const IncrementalAssessor& a) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << a.StructureDigest() << "posteriors:";
  for (const auto& [id, p] : a.Posteriors()) os << " " << id << "=" << p;
  os << "\n";
  return os.str();
}

inline SelforgSoakOutcome RunSelforgSoak(const SelforgSoakScenario& sc) {
  GridVineNetwork::Options no;
  no.num_peers = size_t(sc.peers);
  no.key_depth = 12;
  no.seed = sc.seed;
  no.latency = GridVineNetwork::LatencyKind::kConstant;
  no.latency_param = 0.01;
  no.loss_probability = sc.loss;
  no.shards = sc.shards;
  no.force_sharded = sc.force_sharded;
  no.peer.query_timeout = 4.0;
  GridVineNetwork net(no);

  BioWorkload::Options wo;
  wo.num_schemas = size_t(sc.schemas);
  wo.num_entities = 40;
  wo.entities_per_schema = 16;
  wo.min_attrs = 4;
  wo.max_attrs = 6;
  wo.value_noise = 0.0;
  wo.seed = 21;
  BioWorkload workload(wo);

  // Data load runs under base loss too — the reliability layer absorbs
  // almost all of it, and a deterministic bounded retry covers the rare
  // exhausted-retries timeout (the same seed always loses the same
  // messages, so the retry pattern replays too).
  auto insist = [](auto&& op) {
    Status st = op();
    for (int attempt = 0; attempt < 3 && !st.ok(); ++attempt) st = op();
    EXPECT_TRUE(st.ok()) << st;
  };
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    insist([&] { return net.InsertSchema(s, workload.schemas()[s]); });
    insist([&] { return net.InsertTriples(s, workload.TriplesFor(s)); });
  }
  if (sc.seed_mesh) {
    for (size_t i = 0; i < workload.schemas().size(); ++i) {
      for (size_t j = i + 1; j < workload.schemas().size(); ++j) {
        if (i == 1 && j == 2) continue;
        SchemaMapping gt = workload.GroundTruthMapping(
            i, j, "gt-" + std::to_string(i) + "-" + std::to_string(j));
        gt.set_provenance(MappingProvenance::kAutomatic);
        gt.set_confidence(0.7);
        insist([&] { return net.InsertMapping(i, gt); });
      }
    }
    Rng bad_rng(13);
    SchemaMapping bad = workload.ErroneousMapping(1, 2, "bad-1-2", &bad_rng);
    insist([&] { return net.InsertMapping(1, bad); });
  }
  net.Settle();

  SelfOrganizer::Options oo;
  oo.domain = "protein-sequences";
  oo.creations_per_round = 3;
  oo.seed = 9;
  SelfOrganizer organizer(&net, oo);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    organizer.RegisterSchemaOwner(workload.schemas()[s].name(), s);
  }

  std::ostringstream fp;
  std::vector<SelfOrganizer::RoundReport> reports;
  int round_idx = 0;
  auto run_round = [&] {
    reports.push_back(organizer.RunRound());
    fp << FormatRoundReport(round_idx++, reports.back());
  };

  // Churn phase: each round a fresh victim (never the issuer, peer 0) is
  // dead for the slice and the round itself; it rejoins when the next
  // victim is drawn. SetAlive only between runs — quiescent on both engines.
  Rng churn_rng(sc.seed * 0x9e3779b97f4a7c15ULL + 29);
  int down = -1;
  std::string evolved_name = workload.schemas()[2].name();
  for (int r = 0; r < sc.churn_rounds; ++r) {
    if (sc.evolve_round >= 0 && r == sc.evolve_round) {
      // Schema evolution is applied with every peer up (the owner must
      // accept the upsert); churn resumes right after.
      if (down >= 0) net.SetAlive(size_t(down), true);
      down = -1;
      net.RunUntil(net.Now() + sc.slice);
      Rng ev_rng(sc.seed + 77);
      BioWorkload::SchemaEvolution ev =
          workload.EvolveSchema(2, sc.rename_fraction, &ev_rng);
      evolved_name = ev.new_schema.name();
      EXPECT_FALSE(ev.renamed_uris.empty());
      // The soak's invariants depend on the evolution landing; `insist`
      // keeps an exhausted-retries timeout from silently skipping it.
      insist([&] { return net.UpsertSchema(2, ev.new_schema); });
      for (const auto& t : ev.removed_triples) {
        insist([&] { return net.RemoveTriple(2, t); });
      }
      for (const auto& t : ev.added_triples) {
        insist([&] { return net.InsertTriple(2, t); });
      }
    }
    if (down >= 0) net.SetAlive(size_t(down), true);
    down = int(churn_rng.UniformInt(1, sc.peers - 1));
    net.SetAlive(size_t(down), false);
    net.RunUntil(net.Now() + sc.slice);
    run_round();
  }
  if (down >= 0) net.SetAlive(size_t(down), true);

  // Fault-free tail: organization must converge and the dirty region drain.
  for (int r = 0; r < sc.quiet_rounds; ++r) {
    net.RunUntil(net.Now() + sc.slice);
    run_round();
  }
  net.Settle();

  SelforgSoakOutcome out;
  for (const auto& r : reports) {
    out.total_created += r.mappings_created;
    out.total_deprecated += r.mappings_deprecated;
    out.total_stale_deprecated += r.mappings_stale_deprecated;
  }
  out.final_scc = reports.back().scc_fraction_after;
  out.converged = reports.back().bp_converged;
  out.bp_messages = organizer.assessor().lifetime_messages();

  // Leak check: the maintained factor graph, after the full event history
  // (creations, deprecations, stale repair, failed syncs while owners were
  // down), must equal what a fresh assessor builds from the same view.
  MappingGraph copy = organizer.graph_view();
  copy.SetListener(nullptr);
  IncrementalAssessor fresh(organizer.assessor().options());
  fresh.Attach(&copy);
  out.matches_rebuild =
      organizer.assessor().StructureDigest() == fresh.StructureDigest();

  auto bad = copy.Get("bad-1-2");
  out.erroneous_active = bad.ok() && !bad->deprecated();
  if (sc.seed_mesh && sc.evolve_round >= 0) {
    // rename_fraction=1.0 severed every mapping on schema 2, so each of the
    // pre-evolution ground-truth edges must end up deprecated (a record can
    // also vanish entirely if its replicas were all churned out mid-repair).
    out.stale_severed = true;
    for (int other : {0, 3, 4}) {
      std::string id = other < 2 ? "gt-" + std::to_string(other) + "-2"
                                 : "gt-2-" + std::to_string(other);
      auto stale = copy.Get(id);
      if (stale.ok() && !stale->deprecated()) out.stale_severed = false;
    }
  }
  for (const auto& schema : copy.Schemas()) {
    for (const auto& m : copy.MappingsFrom(schema)) {  // active only
      if (m.source_schema() == evolved_name ||
          m.target_schema() == evolved_name) {
        out.evolved_relinked = true;
      }
    }
  }

  fp << AssessorFingerprint(organizer.assessor());
  out.fingerprint = fp.str();
  return out;
}

}  // namespace gridvine

#endif  // GRIDVINE_TESTS_SELFORG_SOAK_HARNESS_H_
