#ifndef GRIDVINE_SELFORG_SELF_ORGANIZER_H_
#define GRIDVINE_SELFORG_SELF_ORGANIZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gridvine/gridvine_network.h"
#include "mapping/mapping_graph.h"
#include "selforg/attribute_matcher.h"
#include "selforg/mapping_assessor.h"

namespace gridvine {

/// Drives the self-organization loop of paper Section 3 over a live GridVine
/// deployment:
///
///   1. every schema owner publishes its (in, out) degrees to Hash(domain);
///   2. the connectivity indicator ci is derived from the registry;
///   3. while ci < 0 (no giant component), additional mappings are created
///      automatically: a schema pair is selected (preferring pairs sharing
///      instance references, i.e. schemas describing the same entities), the
///      attributes are aligned with lexical + value-set measures, and the
///      mapping is inserted into the network;
///   4. the Bayesian cycle analysis assesses automatic mappings and
///      deprecates those whose posterior correctness falls below threshold,
///      making room for new mapping paths.
///
/// Each RunRound() performs one such round. All state flows through the DHT
/// (schema/mapping/degree records) exactly as individual peers would do it;
/// the organizer itself holds only the owner assignment (which peer is
/// responsible for which schema).
class SelfOrganizer {
 public:
  struct Options {
    std::string domain = "bio";
    /// Matcher configuration for automatic mapping creation.
    AttributeMatcher::Options matcher;
    /// Assessor configuration for deprecation.
    MappingAssessor::Options assessor;
    /// Mappings created per round while ci < 0.
    int creations_per_round = 2;
    /// Posterior below which an automatic mapping is deprecated.
    double deprecate_below = 0.45;
    /// How many object values per attribute are sampled for the set-distance
    /// measure (queries the live network).
    int value_sample_limit = 64;
    /// Reformulation hops used when sampling attribute values.
    uint64_t seed = 42;
  };

  SelfOrganizer(GridVineNetwork* net, Options options);

  /// Declares that `peer_idx` owns (stores/publishes) `schema`.
  void RegisterSchemaOwner(const std::string& schema, size_t peer_idx);

  /// Publishes current degrees for every registered schema (step 1).
  Status PublishAllDegrees();

  /// Crawls the mediation layer through the DHT: domain registry ->
  /// schema list -> per-schema mapping records. Returns the graph view.
  MappingGraph BuildGraphView();

  /// The connectivity indicator from the *registry* (what peers actually
  /// see), not from an omniscient graph.
  Result<double> ComputeIndicator();

  struct RoundReport {
    double ci_before = 0;
    double ci_after = 0;
    double scc_fraction_after = 0;
    size_t mappings_created = 0;
    size_t mappings_deprecated = 0;
    size_t active_mappings = 0;
    std::vector<std::string> created_ids;
    std::vector<std::string> deprecated_ids;
  };

  /// One full self-organization round (steps 1-4).
  RoundReport RunRound();

  /// Automatic mapping creation between two specific schemas (step 3's
  /// inner operation; exposed for tests and ablations).
  Result<SchemaMapping> CreateMapping(const std::string& source,
                                      const std::string& target);

  /// Samples the value sets of every attribute of `schema` by querying the
  /// live network.
  AttributeMatcher::ValueSets SampleValueSets(const Schema& schema);

  /// Selects up to `count` disconnected-ish schema pairs to map, preferring
  /// pairs that share instance references (co-described subjects).
  std::vector<std::pair<std::string, std::string>> SelectCandidatePairs(
      const MappingGraph& graph, int count);

  size_t OwnerOf(const std::string& schema) const;

 private:
  /// Subjects observed under any attribute of `schema` (instance sample).
  std::set<std::string> SampleSubjects(const Schema& schema);

  GridVineNetwork* net_;
  Options options_;
  Rng rng_;
  std::map<std::string, size_t> owners_;
  uint64_t next_mapping_seq_ = 1;
};

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_SELF_ORGANIZER_H_
