#include "common/timeseries.h"

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/trace.h"

namespace gridvine {
namespace {

TEST(MetricsTimeSeriesTest, RecordAppendsOneRowPerMetric) {
  MetricsTimeSeries ts;
  MetricsRegistry m;
  m.Counter("a") = 1;
  m.Gauge("b") = 2.5;
  ts.Record(1.0, m);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.windows(), 1u);
  EXPECT_DOUBLE_EQ(ts.last_window_end(), 1.0);
  m.Counter("a") = 3;
  ts.Record(2.0, m);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.windows(), 2u);
  auto series = ts.Series("a");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].second, 1.0);
  EXPECT_DOUBLE_EQ(series[1].second, 3.0);
}

TEST(MetricsTimeSeriesTest, RecordingSameInstantReplacesNotDuplicates) {
  // A manual HealthTick right after a timer tick lands on the same simulated
  // instant; the window must be replaced, not appended twice.
  MetricsTimeSeries ts;
  MetricsRegistry m;
  m.Counter("a") = 1;
  ts.Record(1.0, m);
  m.Counter("a") = 7;
  ts.Record(1.0, m);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts.windows(), 1u);
  auto series = ts.Series("a");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].second, 7.0);
}

TEST(MetricsTimeSeriesTest, RingEvictsOldestSamples) {
  MetricsTimeSeries ts(/*capacity=*/4);
  MetricsRegistry m;
  m.Counter("a") = 1;
  m.Counter("b") = 2;
  for (int w = 1; w <= 3; ++w) ts.Record(double(w), m);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.evicted(), 2u);
  // Window 1 fell off; windows 2 and 3 survive.
  EXPECT_TRUE(ts.Series("a").empty() || ts.Series("a").front().first >= 2.0);
  EXPECT_EQ(ts.windows(), 2u);
}

TEST(MetricsTimeSeriesTest, LatestWindowDeltasAgainstPreviousWindow) {
  MetricsTimeSeries ts;
  MetricsRegistry m;
  m.Counter("big") = 100;
  m.Counter("small") = 10;
  ts.Record(1.0, m);
  m.Counter("big") = 150;   // delta 50
  m.Counter("small") = 11;  // delta 1
  m.Counter("fresh") = 3;   // new name: delta = value
  ts.Record(2.0, m);
  auto rows = ts.LatestWindow();
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by |delta| descending.
  EXPECT_EQ(rows[0].name, "big");
  EXPECT_DOUBLE_EQ(rows[0].delta, 50.0);
  EXPECT_DOUBLE_EQ(rows[0].value, 150.0);
  EXPECT_EQ(rows[1].name, "fresh");
  EXPECT_DOUBLE_EQ(rows[1].delta, 3.0);
  EXPECT_EQ(rows[2].name, "small");
  EXPECT_DOUBLE_EQ(rows[2].delta, 1.0);
}

TEST(MetricsTimeSeriesTest, ToJsonMatchesArtifactSchema) {
  MetricsTimeSeries ts;
  MetricsRegistry m;
  m.Counter("net.messages_sent") = 42;
  ts.Record(0.5, m);
  std::string json = ts.ToJson(/*window_s=*/0.5);
  EXPECT_NE(json.find("\"window_s\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": ["), std::string::npos);
  EXPECT_NE(json.find("\"t\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"net.messages_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 42"), std::string::npos);
}

TEST(HealthWatchdogTest, ConservationFiresOnFirstWindow) {
  // Conservation is cumulative, so it needs no previous window.
  HealthWatchdog dog;
  MetricsRegistry m;
  m.Counter("net.messages_sent") = 10;
  m.Counter("net.messages_delivered") = 12;  // two forged deliveries
  EXPECT_EQ(dog.Evaluate(1.0, &m), 1u);
  EXPECT_EQ(dog.fired("conservation"), 1u);
  ASSERT_EQ(dog.violations().size(), 1u);
  EXPECT_EQ(dog.violations()[0].rule, "conservation");
  EXPECT_DOUBLE_EQ(dog.violations()[0].window_end, 1.0);
}

TEST(HealthWatchdogTest, ConservationAllowsDuplicatedMessages) {
  HealthWatchdog dog;
  MetricsRegistry m;
  m.Counter("net.messages_sent") = 10;
  m.Counter("net.messages_duplicated") = 2;
  m.Counter("net.messages_delivered") = 11;
  m.Counter("net.messages_dropped") = 1;
  EXPECT_EQ(dog.Evaluate(1.0, &m), 0u);
}

TEST(HealthWatchdogTest, RetrySpikeNeedsDeltaAboveThresholdAndMinSends) {
  HealthWatchdog::Options opts;
  opts.retry_rate_threshold = 0.30;
  opts.retry_min_sends = 50;
  HealthWatchdog dog(opts);
  MetricsRegistry m;
  m.Counter("net.messages_sent") = 1000;
  m.Counter("pgrid.retries") = 500;  // huge cumulative ratio: ignored
  EXPECT_EQ(dog.Evaluate(1.0, &m), 0u);  // first window: no deltas yet

  // Quiet window: 100 sends, 10 retries.
  m.Counter("net.messages_sent") = 1100;
  m.Counter("pgrid.retries") = 510;
  EXPECT_EQ(dog.Evaluate(2.0, &m), 0u);

  // Spike window: 100 sends, 40 retries (> 0.30 * 100).
  m.Counter("net.messages_sent") = 1200;
  m.Counter("pgrid.retries") = 550;
  EXPECT_EQ(dog.Evaluate(3.0, &m), 1u);
  EXPECT_EQ(dog.fired("retry_spike"), 1u);

  // Same ratio but only 10 sends: below retry_min_sends, stays quiet.
  m.Counter("net.messages_sent") = 1210;
  m.Counter("pgrid.retries") = 554;
  EXPECT_EQ(dog.Evaluate(4.0, &m), 0u);
}

TEST(HealthWatchdogTest, CacheCollapseOnlyAfterCacheWasHot) {
  HealthWatchdog::Options opts;
  opts.cache_collapse_threshold = 0.05;
  opts.cache_min_lookups = 20;
  HealthWatchdog dog(opts);
  MetricsRegistry m;
  m.Counter("gv.cache.misses") = 0;
  m.Counter("gv.cache.hits") = 0;
  dog.Evaluate(1.0, &m);

  // Cold cache: 100 lookups, 0 hits — not a collapse, never was hot.
  m.Counter("gv.cache.misses") = 100;
  EXPECT_EQ(dog.Evaluate(2.0, &m), 0u);

  // Warm window: 50 hits.
  m.Counter("gv.cache.hits") = 50;
  m.Counter("gv.cache.misses") = 110;
  EXPECT_EQ(dog.Evaluate(3.0, &m), 0u);

  // Collapse window: 100 lookups, 1 hit (< 5%).
  m.Counter("gv.cache.hits") = 51;
  m.Counter("gv.cache.misses") = 209;
  EXPECT_EQ(dog.Evaluate(4.0, &m), 1u);
  EXPECT_EQ(dog.fired("cache_collapse"), 1u);
}

TEST(HealthWatchdogTest, ShedRateFiresAboveThreshold) {
  HealthWatchdog dog;  // defaults: 10% over >= 10 submitted
  MetricsRegistry m;
  m.Counter("gv.frontend.submitted") = 0;
  m.Counter("gv.frontend.shed") = 0;
  dog.Evaluate(1.0, &m);

  m.Counter("gv.frontend.submitted") = 20;
  m.Counter("gv.frontend.shed") = 5;  // 25% shed
  EXPECT_EQ(dog.Evaluate(2.0, &m), 1u);
  EXPECT_EQ(dog.fired("shed_rate"), 1u);

  // 25% again but only 4 submitted: below shed_min_submitted.
  m.Counter("gv.frontend.submitted") = 24;
  m.Counter("gv.frontend.shed") = 6;
  EXPECT_EQ(dog.Evaluate(3.0, &m), 0u);
}

TEST(HealthWatchdogTest, PublishesCumulativeCounters) {
  HealthWatchdog dog;
  MetricsRegistry m;
  m.Counter("net.messages_sent") = 1;
  m.Counter("net.messages_delivered") = 2;  // conservation violation
  dog.Evaluate(1.0, &m);
  // Evaluate stamps the health.* counters into the registry it was given.
  EXPECT_EQ(m.Counter("health.windows"), 1u);
  EXPECT_EQ(m.Counter("health.violations"), 1u);
  EXPECT_EQ(m.Counter("health.conservation"), 1u);
}

TEST(HealthWatchdogTest, ViolationEmitsTraceMarkerWhenTracing) {
  Tracer tracer;
  tracer.Enable();
  TraceView view({&tracer});
  HealthWatchdog dog;
  dog.SetTracer(&view);
  MetricsRegistry m;
  m.Counter("net.messages_delivered") = 5;  // delivered > sent
  dog.Evaluate(1.0, &m);
  TraceAnalyzer an(view.Snapshot());
  EXPECT_EQ(an.CountNamed("health.violation"), 1u);
  EXPECT_EQ(an.CheckConsistency(), "");
}

}  // namespace
}  // namespace gridvine
