#ifndef GRIDVINE_SIM_NETWORK_H_
#define GRIDVINE_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/latency.h"
#include "sim/simulator.h"

namespace gridvine {

/// Identifies a node (machine) on the simulated network.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Base class for all simulated message payloads. Payloads are passed by
/// shared_ptr within the single simulation process; SizeBytes() lets the
/// network account for (approximate) wire traffic without serializing.
struct MessageBody {
  virtual ~MessageBody() = default;
  /// Approximate serialized size, for traffic accounting.
  virtual size_t SizeBytes() const { return 64; }
  /// Short type tag for tracing/statistics, e.g. "pgrid.retrieve".
  virtual std::string TypeTag() const = 0;
};

/// A node attached to the network: receives messages delivered to its id.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;
  /// Invoked by the network when a message arrives (the node is alive).
  virtual void OnMessage(NodeId from,
                         std::shared_ptr<const MessageBody> body) = 0;
};

/// Cumulative traffic counters.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;  // destination dead or unknown
  uint64_t bytes_sent = 0;
  std::unordered_map<std::string, uint64_t> messages_by_type;
};

/// The simulated transport: point-to-point delivery with sampled latency and
/// optional loss; respects node liveness (churn). The network plays the role
/// of the "Internet layer" in the paper's Figure 1.
class Network {
 public:
  /// `loss_probability` drops each message independently (default lossless).
  Network(Simulator* sim, std::unique_ptr<LatencyModel> latency, Rng rng,
          double loss_probability = 0.0);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node under a fresh id; the node starts alive.
  /// The caller retains ownership of `node`, which must outlive the network.
  NodeId AddNode(NetworkNode* node);

  /// Marks a node up/down (churn). Messages to a down node are dropped;
  /// a down node sends nothing.
  void SetAlive(NodeId id, bool alive);
  bool IsAlive(NodeId id) const;

  /// Sends `body` from `from` to `to`. Delivery is scheduled after a sampled
  /// latency; the message is dropped if either endpoint is dead at send time
  /// or the destination is dead at delivery time (no error feedback, like
  /// UDP — timeouts are the caller's job).
  void Send(NodeId from, NodeId to, std::shared_ptr<const MessageBody> body);

  /// Number of registered nodes (alive or not).
  size_t size() const { return nodes_.size(); }

  Simulator* sim() { return sim_; }
  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

 private:
  struct NodeSlot {
    NetworkNode* node = nullptr;
    bool alive = true;
  };

  Simulator* sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double loss_probability_;
  std::vector<NodeSlot> nodes_;
  NetworkStats stats_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_NETWORK_H_
