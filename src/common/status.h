#ifndef GRIDVINE_COMMON_STATUS_H_
#define GRIDVINE_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace gridvine {

/// Error categories used across the GridVine code base. The set mirrors the
/// usual database-system vocabulary (RocksDB/Arrow style): a small closed enum
/// plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTimeout = 5,
  kUnavailable = 6,
  kNetworkError = 7,
  kCorruption = 8,
  kNotImplemented = 9,
  kInternal = 10,
  kOverload = 11,
};

/// Returns a stable human-readable name for a status code ("OK", "NotFound"...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy in the OK case (no
/// allocation); carries a code and message otherwise. GridVine never throws
/// exceptions across public API boundaries — everything that can fail returns
/// a Status or a Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overload(std::string msg) {
    return Status(StatusCode::kOverload, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsNetworkError() const { return code() == StatusCode::kNetworkError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsOverload() const { return code() == StatusCode::kOverload; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK; shared so copies are cheap.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace gridvine

/// Propagates a non-OK Status to the caller.
#define GV_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::gridvine::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // GRIDVINE_COMMON_STATUS_H_
