// Experiment E9 — serving throughput under a flash crowd.
//
// The paper's deployment measures one query at a time; this bench instead
// drives an open-loop, bursty arrival process (Poisson base rate with
// periodic burst windows) of triple-pattern and bind-join conjunctive
// queries whose hot keys follow a Zipf law over categories — the classic
// flash-crowd shape. Queries enter through per-gateway QueryFrontends; the
// responder-side service model makes row matching cost simulated time, so
// the hot key region's owner is a real bottleneck server.
//
// Four modes over the identical workload and seed: serving features off,
// extent cache only, cross-query batching only, and cache + batching. The
// bench reports sustained qps (simulated time), cache hit rate and latency
// percentiles per mode, and cross-checks equal recall: every arrival must
// return bit-identical rows in all four modes.
//
//   $ ./bench/bench_serving                       # full run
//   $ GV_BENCH_QUICK=1 ./bench/bench_serving      # CI smoke

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/trace.h"
#include "gridvine/gridvine_network.h"
#include "gridvine/query_frontend.h"
#include "store/binding_codec.h"
#include "trace_stats.h"

using namespace gridvine;

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? size_t(std::strtoull(v, nullptr, 10)) : fallback;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = size_t(p * double(sorted.size() - 1));
  return sorted[idx];
}

uint64_t Fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr size_t kCategories = 24;
constexpr size_t kGateways = 8;

/// One precomputed arrival; identical across all modes.
struct Arrival {
  double at = 0;
  size_t gateway = 0;
  size_t category = 0;
  bool conjunctive = false;
};

struct ModeResult {
  std::string name;
  double qps = 0;
  double hit_rate = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  uint64_t shed = 0;
  uint64_t messages = 0;
  uint64_t batch_items = 0;
  double wall_s = 0;
  std::vector<uint64_t> row_hashes;  // per arrival, for the recall check
  gridvine::bench::CriticalPathAgg cp;
};

std::vector<Triple> MakeCorpus(size_t entities) {
  std::vector<Triple> triples;
  for (size_t e = 0; e < entities; ++e) {
    Term subj = Term::Uri("x:e" + std::to_string(e));
    triples.emplace_back(subj, Term::Uri("x:type"),
                         Term::Literal("cat" + std::to_string(e % kCategories)));
    triples.emplace_back(subj, Term::Uri("x:size"),
                         Term::Literal(std::to_string(e % 5)));
  }
  return triples;
}

/// Open-loop bursty arrivals: Poisson at `base_rate`, 6x during a 1 s burst
/// window opening every 5 s — and Zipf(kCategories, 1.1) category skew.
std::vector<Arrival> MakeWorkload(size_t count, double base_rate,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Arrival> out;
  out.reserve(count);
  double t = 0;
  for (size_t i = 0; i < count; ++i) {
    double phase = t - 5.0 * std::floor(t / 5.0);
    double rate = phase < 1.0 ? base_rate * 6.0 : base_rate;
    t += rng.Exponential(rate);
    Arrival a;
    a.at = t;
    a.gateway = size_t(rng.UniformInt(0, int64_t(kGateways) - 1));
    a.category = rng.Zipf(kCategories, 1.1) - 1;
    a.conjunctive = rng.Bernoulli(0.2);
    out.push_back(a);
  }
  return out;
}

ModeResult RunMode(const std::string& name, bool cache, bool batch,
                   size_t peers, size_t entities, size_t concurrency,
                   const std::vector<Arrival>& workload) {
  GridVineNetwork::Options o;
  o.num_peers = peers;
  o.key_depth = 14;
  o.seed = 20260809;
  o.latency = GridVineNetwork::LatencyKind::kUniform;
  o.latency_param = 0.02;
  o.peer.cache.enabled = cache;
  o.peer.batch.enabled = batch;
  // The service model is on in every mode (including "off"): responders pay
  // simulated time per request and per row, so the hot key region is a
  // saturable server and throughput is a property of the serving stack, not
  // of the transport alone.
  o.peer.service.enabled = true;
  o.peer.service.per_request = 4e-3;
  o.peer.service.per_item = 4e-4;
  o.peer.service.per_row = 2e-4;
  o.peer.service.per_hit = 1e-4;
  o.peer.frontend.max_concurrent = concurrency;
  // The recall cross-check needs every arrival answered: queue deep enough
  // that the burst backlog parks instead of shedding.
  o.peer.frontend.max_queue = workload.size();
  GridVineNetwork net(o);
  if (!net.InsertTriples(0, MakeCorpus(entities)).ok()) std::abort();
  net.Settle();
  // Trace the whole serving run: tracing is a pure observer (the recall
  // cross-check still holds), and the op.serve trees carry the admission
  // queue spans the critical-path attribution needs.
  net.tracer()->Enable(/*capacity_per_part=*/1 << 19);

  struct Done {
    double at = 0;
    double latency = 0;
    bool ok = false;
    uint64_t row_hash = 0;
  };
  std::vector<Done> done(workload.size());

  auto wall0 = std::chrono::steady_clock::now();
  // The data-load settle advanced the clock; the arrival process runs
  // relative to wherever it landed.
  const double base = net.Now();
  for (size_t i = 0; i < workload.size(); ++i) {
    const Arrival& a = workload[i];
    Done* d = &done[i];
    GridVinePeer* gw = net.peer(1 + a.gateway);
    Simulator* sim = net.sim();
    net.sim()->ScheduleAt(base + a.at, [d, gw, sim, a] {
      const double issued = sim->Now();
      std::string cat = "cat" + std::to_string(a.category);
      if (a.conjunctive) {
        ConjunctiveQuery cq(
            {"x", "l"},
            {TriplePattern(Term::Var("x"), Term::Uri("x:type"),
                           Term::Literal(cat)),
             TriplePattern(Term::Var("x"), Term::Uri("x:size"),
                           Term::Var("l"))});
        GridVinePeer::QueryOptions opts;
        opts.bind_join = true;
        gw->frontend()->SubmitConjunctive(
            cq, opts, [d, sim, issued](GridVinePeer::ConjunctiveResult r) {
              d->at = sim->Now();
              d->latency = d->at - issued;
              d->ok = r.status.ok();
              std::vector<std::string> rows;
              for (const auto& row : r.rows)
                rows.push_back(SerializeBindings({row}));
              std::sort(rows.begin(), rows.end());
              uint64_t h = 1469598103934665603ULL;
              for (const auto& s : rows) h = Fnv1a(h, s);
              d->row_hash = h;
            });
      } else {
        TriplePatternQuery q("x",
                             TriplePattern(Term::Var("x"), Term::Uri("x:type"),
                                           Term::Literal(cat)));
        gw->frontend()->Submit(
            q, {}, [d, sim, issued](GridVinePeer::QueryResult r) {
              d->at = sim->Now();
              d->latency = d->at - issued;
              d->ok = r.status.ok();
              std::vector<std::string> rows;
              for (const auto& item : r.items)
                rows.push_back(item.value.value());
              std::sort(rows.begin(), rows.end());
              uint64_t h = 1469598103934665603ULL;
              for (const auto& s : rows) h = Fnv1a(h, s);
              d->row_hash = h;
            });
      }
    });
  }
  net.Settle();

  ModeResult res;
  res.name = name;
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall0)
                   .count();

  double first_arrival = base + (workload.empty() ? 0 : workload.front().at);
  double last_completion = first_arrival;
  size_t completed = 0;
  std::vector<double> lat;
  lat.reserve(done.size());
  res.row_hashes.reserve(done.size());
  for (const Done& d : done) {
    res.row_hashes.push_back(d.row_hash);
    if (!d.ok) continue;
    ++completed;
    lat.push_back(d.latency * 1e3);
    last_completion = std::max(last_completion, d.at);
  }
  std::sort(lat.begin(), lat.end());
  double span = last_completion - first_arrival;
  res.qps = span > 0 ? double(completed) / span : 0;
  res.p50_ms = Percentile(lat, 0.50);
  res.p95_ms = Percentile(lat, 0.95);
  res.p99_ms = Percentile(lat, 0.99);

  uint64_t hits = 0, misses = 0;
  for (size_t p = 0; p < net.size(); ++p) {
    if (net.peer(p)->cache() != nullptr) {
      hits += net.peer(p)->cache()->stats().hits;
      misses += net.peer(p)->cache()->stats().misses;
    }
    res.shed += net.peer(p)->frontend()->stats().shed;
    res.batch_items += net.peer(p)->counters().batch_items;
  }
  res.hit_rate = (hits + misses) > 0 ? double(hits) / double(hits + misses) : 0;
  res.messages = net.network()->stats().messages_sent;
  // Latency attribution over every op.serve tree still in the ring. Under
  // ring eviction the oldest trees lose spans; the aggregate stays useful
  // because eviction is uncorrelated with where a query's time went.
  {
    TraceAnalyzer an(net.tracer()->Snapshot());
    for (const auto& s : an.spans()) {
      if (s.parent_id == 0 && s.name == "op.serve") {
        res.cp.Add(an.CriticalPathFor(s.trace_id));
      }
    }
  }
  if (completed + res.shed != done.size()) {
    std::fprintf(stderr, "E9: %zu arrivals unresolved\n",
                 done.size() - completed - size_t(res.shed));
    std::abort();
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_serving");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const size_t kPeers = EnvOr("GV_PEERS", quick ? 24 : 64);
  const size_t kArrivals = EnvOr("GV_ARRIVALS", quick ? 400 : 2000);
  const size_t kEntities = EnvOr("GV_ENTITIES", quick ? 240 : 480);
  const size_t kConcurrency = EnvOr("GV_CONCURRENCY", 8);
  const double kBaseRate = 150.0;

  std::printf("E9: flash-crowd serving throughput\n");
  std::printf("  peers=%zu arrivals=%zu entities=%zu gateways=%zu "
              "concurrency=%zu zipf(s=1.1,n=%zu)\n",
              kPeers, kArrivals, kEntities, kGateways, kConcurrency,
              kCategories);

  const auto workload = MakeWorkload(kArrivals, kBaseRate, 4242);

  struct ModeSpec {
    const char* name;
    bool cache;
    bool batch;
  };
  const ModeSpec specs[] = {{"off", false, false},
                            {"cache", true, false},
                            {"batch", false, true},
                            {"cache_batch", true, true}};
  std::vector<ModeResult> results;
  std::printf("\n  %-12s %9s %9s %9s %9s %9s %7s %10s\n", "mode", "qps",
              "hit_rate", "p50_ms", "p95_ms", "p99_ms", "shed", "messages");
  for (const ModeSpec& spec : specs) {
    results.push_back(RunMode(spec.name, spec.cache, spec.batch, kPeers,
                              kEntities, kConcurrency, workload));
    const ModeResult& r = results.back();
    std::printf("  %-12s %9.1f %9.3f %9.1f %9.1f %9.1f %7llu %10llu\n",
                r.name.c_str(), r.qps, r.hit_rate, r.p50_ms, r.p95_ms,
                r.p99_ms, (unsigned long long)r.shed,
                (unsigned long long)r.messages);
  }
  std::printf("\n");
  for (const ModeResult& r : results) {
    std::printf("  %-12s ", r.name.c_str());
    r.cp.Print("");
  }

  // Equal recall: every arrival returned bit-identical rows in every mode.
  bool recall_equal = true;
  for (size_t m = 1; m < results.size(); ++m) {
    if (results[m].row_hashes != results[0].row_hashes) {
      recall_equal = false;
      std::fprintf(stderr, "E9: mode %s changed results!\n",
                   results[m].name.c_str());
    }
  }
  const ModeResult& off = results[0];
  const ModeResult& full = results[3];
  const double speedup = off.qps > 0 ? full.qps / off.qps : 0;
  std::printf("\n  equal recall across modes: %s\n",
              recall_equal ? "yes" : "NO — BUG");
  std::printf("  cache+batch vs off: %.2fx qps, p99 %.1f -> %.1f ms\n",
              speedup, off.p99_ms, full.p99_ms);

  for (const ModeResult& r : results) {
    std::vector<std::pair<std::string, double>> row = {
        {"qps", r.qps},
        {"hit_rate", r.hit_rate},
        {"p50_ms", r.p50_ms},
        {"p95_ms", r.p95_ms},
        {"p99_ms", r.p99_ms},
        {"shed", double(r.shed)},
        {"messages", double(r.messages)},
        {"batch_items", double(r.batch_items)},
        {"peers", double(kPeers)},
        {"concurrency", double(kConcurrency)},
        {"wall_s", r.wall_s}};
    r.cp.AppendShares(&row);
    json.Add(r.name, std::move(row));
  }
  json.Add("summary", {{"qps_speedup", speedup},
                       {"equal_recall", recall_equal ? 1.0 : 0.0},
                       {"qps", full.qps},
                       {"hit_rate", full.hit_rate},
                       {"p99_ms", full.p99_ms},
                       {"peers", double(kPeers)},
                       {"concurrency", double(kConcurrency)}});
  json.Finish();
  return recall_equal ? 0 : 1;
}
