// Chaos soak: randomized-but-seeded fault scenarios (loss × churn ×
// partitions × duplication) driven through the reliable request layer, with
// drain invariants checked after every run. Any violation prints the
// scenario seed; replay it exactly with
//
//   GV_SOAK_SEED=<seed> ./build/tests/fault_soak_test
//
// which runs the full chaos scenario at that seed in addition to the pinned
// grid below.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fault_harness.h"
#include "selforg_soak_harness.h"

namespace gridvine {
namespace {

// The pinned seed grid CI runs. Deterministic: these exact runs replay
// bit-identically on every machine.
const uint64_t kSeeds[] = {11, 29, 83};

FaultScenario LossScenario(uint64_t seed) {
  FaultScenario s;
  s.name = "loss10";
  s.seed = seed;
  s.loss = 0.10;
  return s;
}

FaultScenario ChurnScenario(uint64_t seed) {
  FaultScenario s;
  s.name = "churn25";
  s.seed = seed;
  s.churn = true;
  s.offline_fraction = 0.25;
  s.rejoin_exchange = true;
  return s;
}

FaultScenario ChaosScenario(uint64_t seed) {
  FaultScenario s;
  s.name = "chaos";
  s.seed = seed;
  s.loss = 0.08;
  s.churn = true;
  s.offline_fraction = 0.20;
  s.rejoin_exchange = true;
  s.loss_bursts = 2;
  s.partitions = 1;
  s.latency_spikes = 1;
  s.duplicate_probability = 0.05;
  return s;
}

TEST(FaultSoakTest, LossScenarioDrainsClean) {
  for (uint64_t seed : kSeeds) {
    FaultRunResult r = RunFaultScenario(LossScenario(seed));
    EXPECT_TRUE(CheckDrainInvariants(LossScenario(seed), r));
    // Base loss must actually bite, and retries must be exercised.
    EXPECT_GT(r.stats.drops_loss, 0u) << "seed=" << seed;
    EXPECT_GT(r.retries, 0u) << "seed=" << seed;
  }
}

TEST(FaultSoakTest, ChurnScenarioDrainsClean) {
  for (uint64_t seed : kSeeds) {
    FaultRunResult r = RunFaultScenario(ChurnScenario(seed));
    EXPECT_TRUE(CheckDrainInvariants(ChurnScenario(seed), r));
    EXPECT_GT(r.churn_transitions, 0u) << "seed=" << seed;
    // Rejoin wiring fired: every down→up flip initiated one exchange.
    EXPECT_GT(r.rejoin_encounters, 0u) << "seed=" << seed;
    // Dead endpoints are the dominant drop cause under churn.
    EXPECT_GT(r.stats.drops_endpoint, 0u) << "seed=" << seed;
  }
}

TEST(FaultSoakTest, ChaosScenarioDrainsClean) {
  for (uint64_t seed : kSeeds) {
    FaultRunResult r = RunFaultScenario(ChaosScenario(seed));
    EXPECT_TRUE(CheckDrainInvariants(ChaosScenario(seed), r));
    // The injected fault windows really intersected traffic.
    EXPECT_GT(r.stats.drops_burst + r.stats.drops_partition, 0u)
        << "seed=" << seed;
    EXPECT_GT(r.stats.messages_duplicated, 0u) << "seed=" << seed;
  }
}

// Tracing under chaos: drops, duplicates, retries and failovers must still
// produce a consistent, fully closed span forest whose retry/failover
// markers reconcile exactly with the peers' counters. Also asserts tracing
// does not perturb the run: the traced run's network statistics are
// bit-identical to the untraced run at the same seed.
TEST(FaultSoakTest, TracedChaosKeepsSpanForestConsistent) {
  for (uint64_t seed : kSeeds) {
    FaultScenario s = ChaosScenario(seed);
    s.trace = true;
    FaultRunResult r = RunFaultScenario(s);
    EXPECT_TRUE(CheckDrainInvariants(s, r));
    EXPECT_TRUE(CheckTraceInvariants(s, r));
    EXPECT_FALSE(r.spans.empty()) << "seed=" << seed;

    FaultRunResult untraced = RunFaultScenario(ChaosScenario(seed));
    EXPECT_TRUE(r.stats == untraced.stats) << "seed=" << seed;
  }
}

TEST(FaultSoakTest, TracedLossRunRecordsRetryMarkers) {
  FaultScenario s = LossScenario(kSeeds[0]);
  s.trace = true;
  FaultRunResult r = RunFaultScenario(s);
  EXPECT_TRUE(CheckTraceInvariants(s, r));
  EXPECT_GT(r.retries, 0u);
  TraceAnalyzer ta(r.spans);
  EXPECT_EQ(ta.CountNamed("op.retry"), r.retries);
}

// Same seed → bit-identical network statistics (NetworkStats operator==
// covers every counter including the per-type vectors) and identical op
// outcomes. This is the replay guarantee the printed seed relies on.
TEST(FaultSoakTest, SameSeedReplaysBitIdentically) {
  for (uint64_t seed : kSeeds) {
    FaultRunResult a = RunFaultScenario(ChaosScenario(seed));
    FaultRunResult b = RunFaultScenario(ChaosScenario(seed));
    EXPECT_TRUE(a.stats == b.stats) << "seed=" << seed;
    EXPECT_EQ(a.ops_ok, b.ops_ok) << "seed=" << seed;
    EXPECT_EQ(a.ops_timeout, b.ops_timeout) << "seed=" << seed;
    EXPECT_EQ(a.churn_transitions, b.churn_transitions) << "seed=" << seed;
    EXPECT_EQ(a.retries, b.retries) << "seed=" << seed;
    EXPECT_EQ(a.failovers, b.failovers) << "seed=" << seed;
  }
}

// Different seeds must explore different trajectories — otherwise the grid
// is redundant and "seeded" is a fiction.
TEST(FaultSoakTest, DifferentSeedsDiverge) {
  FaultRunResult a = RunFaultScenario(ChaosScenario(kSeeds[0]));
  FaultRunResult b = RunFaultScenario(ChaosScenario(kSeeds[1]));
  EXPECT_FALSE(a.stats == b.stats);
}

// The reliability layer must earn its keep: under 10% loss the same seed
// with retries enabled resolves strictly more retrieves than the
// single-attempt baseline. Deterministic, so not flaky.
TEST(FaultSoakTest, RetriesImproveRecallUnderLoss) {
  for (uint64_t seed : kSeeds) {
    FaultScenario on = LossScenario(seed);
    FaultScenario off = LossScenario(seed);
    off.retries_on = false;
    FaultRunResult r_on = RunFaultScenario(on);
    FaultRunResult r_off = RunFaultScenario(off);
    EXPECT_TRUE(CheckDrainInvariants(off, r_off));
    EXPECT_GT(r_on.Recall(), r_off.Recall()) << "seed=" << seed;
  }
}

// --- Continuous self-organization soak -------------------------------------
//
// The mediation layer runs as a background activity on live peers while the
// transport loses messages and a rotating victim peer is dead each round,
// with one schema evolving mid-run. Invariants: the run organizes the
// network anyway, the incremental assessor leaks no state (its maintained
// factor graph equals a fresh rebuild, and the dirty region drains), and
// the whole trajectory is seed-replayable.

SelforgSoakScenario SelforgScenario(uint64_t seed, uint32_t shards) {
  SelforgSoakScenario sc;
  sc.seed = seed;
  sc.shards = shards;
  return sc;
}

TEST(SelforgSoakTest, OrganizesUnderLossAndChurn) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SelforgSoakOutcome out = RunSelforgSoak(SelforgScenario(seed, 1));
    // The cycle analysis ran for real (the seeded mesh has cycles) and the
    // injected erroneous mapping was caught despite loss and churn. The
    // catch is asserted on end-state, not the per-round counter: under loss
    // a deprecation push can land while its ack times out, in which case
    // the record flips on the next sync without a counted deprecation.
    EXPECT_GT(out.bp_messages, 0u);
    EXPECT_FALSE(out.erroneous_active) << out.fingerprint;
    // The evolution (every attribute renamed) severed all of schema 2's
    // mappings: repair deprecated them and re-derivation replaced them...
    // The severing is asserted on end-state for the same reason as the
    // erroneous catch: the per-round stale counter undercounts whenever a
    // deprecation push lands while its ack times out.
    EXPECT_TRUE(out.stale_severed) << out.fingerprint;
    EXPECT_GT(out.total_created, 0u) << out.fingerprint;
    EXPECT_TRUE(out.evolved_relinked) << out.fingerprint;
    // ...interoperability recovered in the quiet tail...
    EXPECT_GE(out.final_scc, 0.8) << out.fingerprint;
    // ...and no assessment state leaked across the faulty rounds.
    EXPECT_TRUE(out.converged) << out.fingerprint;
    EXPECT_TRUE(out.matches_rebuild);
  }
}

// Same seed → bit-identical trajectory: every round report, the final factor
// graph structure and every posterior, at full precision.
TEST(SelforgSoakTest, SameSeedReplaysBitIdentically) {
  SelforgSoakOutcome a = RunSelforgSoak(SelforgScenario(kSeeds[0], 1));
  SelforgSoakOutcome b = RunSelforgSoak(SelforgScenario(kSeeds[0], 1));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(SelforgSoakTest, DifferentSeedsDiverge) {
  SelforgSoakOutcome a = RunSelforgSoak(SelforgScenario(kSeeds[0], 1));
  SelforgSoakOutcome b = RunSelforgSoak(SelforgScenario(kSeeds[1], 1));
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// The conservative-parallel engine must produce the exact same
// self-organization trajectory at shards {1, 2} — churn schedule, round
// reports, factor graph and posteriors included, with the full fault load
// (loss + churn + evolution) on. The shards=1 anchor runs on the sharded
// engine too (force_sharded: its threadless reference mode) because loss
// draws come from per-node streams that are shard-count independent but not
// comparable to the classic engine's single global stream.
TEST(SelforgSoakTest, ShardInvariantAtTwoShards) {
  for (uint64_t seed : {kSeeds[0], kSeeds[2]}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SelforgSoakScenario sc = SelforgScenario(seed, 1);
    sc.force_sharded = true;
    SelforgSoakOutcome one = RunSelforgSoak(sc);
    sc.shards = 2;
    SelforgSoakOutcome two = RunSelforgSoak(sc);
    EXPECT_EQ(one.fingerprint, two.fingerprint);
    EXPECT_TRUE(two.converged);
    EXPECT_TRUE(two.matches_rebuild);
  }
}

// Same invariance higher up the shard ladder: 2 vs 4 worker shards.
TEST(SelforgSoakTest, ShardedEngineLossRunBitIdenticalAcrossShardCounts) {
  SelforgSoakOutcome two = RunSelforgSoak(SelforgScenario(kSeeds[1], 2));
  SelforgSoakOutcome four = RunSelforgSoak(SelforgScenario(kSeeds[1], 4));
  EXPECT_EQ(two.fingerprint, four.fingerprint);
  EXPECT_TRUE(two.converged);
  EXPECT_TRUE(two.matches_rebuild);
}

// GV_SOAK_SEED replays the chaos scenario at an arbitrary seed (the one a
// failing run printed). Skipped when unset.
TEST(FaultSoakTest, EnvSeedReplay) {
  const char* env = std::getenv("GV_SOAK_SEED");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "GV_SOAK_SEED not set";
  }
  const uint64_t seed = std::strtoull(env, nullptr, 10);
  FaultScenario s = ChaosScenario(seed);
  FaultRunResult r = RunFaultScenario(s);
  EXPECT_TRUE(CheckDrainInvariants(s, r));
  FaultRunResult r2 = RunFaultScenario(s);
  EXPECT_TRUE(r.stats == r2.stats) << "seed=" << seed;
}

}  // namespace
}  // namespace gridvine
