#!/usr/bin/env bash
# Builds everything, runs the full test suite and every experiment bench,
# leaving test_output.txt and bench_output.txt at the repository root —
# the complete reproduction in one command.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  "$b"
done 2>&1 | tee bench_output.txt

echo
echo "Done. See EXPERIMENTS.md for the paper-vs-measured interpretation."
