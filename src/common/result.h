#ifndef GRIDVINE_COMMON_RESULT_H_
#define GRIDVINE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gridvine {

/// Either a value of type T or a non-OK Status explaining why the value could
/// not be produced (Arrow's arrow::Result idiom).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common, successful case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing a Result from an
  /// OK status is a programming error and is converted to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Access the value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

}  // namespace gridvine

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration, e.g.
///   GV_ASSIGN_OR_RETURN(auto x, ComputeX());
#define GV_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                             \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()

#define GV_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define GV_ASSIGN_OR_RETURN_CONCAT(x, y) GV_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define GV_ASSIGN_OR_RETURN(lhs, rexpr)                                       \
  GV_ASSIGN_OR_RETURN_IMPL(GV_ASSIGN_OR_RETURN_CONCAT(_gv_result_, __LINE__), \
                           lhs, rexpr)

#endif  // GRIDVINE_COMMON_RESULT_H_
