// Cross-cutting property tests: randomized sweeps over seeds/sizes checking
// the invariants the system's correctness rests on.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "pgrid/pgrid_builder.h"
#include "store/triple_store.h"

namespace gridvine {
namespace {

// --- Overlay routing invariants ----------------------------------------------

struct SweepParam {
  uint64_t seed;
  size_t peers;
};

class OverlaySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OverlaySweepTest, GreedyRoutingAlwaysTerminatesWithinDepth) {
  auto [seed, n] = GetParam();
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(seed));
  PGridPeer::Options opts;
  opts.key_depth = 12;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  for (size_t i = 0; i < n; ++i) {
    owned.push_back(
        std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 3 + i), opts));
    peers.push_back(owned.back().get());
  }
  Rng rng(seed + 1);
  PGridBuilder::BuildBalanced(peers, &rng, 2);

  int max_depth = 0;
  for (auto* p : peers) max_depth = std::max(max_depth, p->path().length());

  Rng walk_rng(seed + 2);
  for (int trial = 0; trial < 64; ++trial) {
    Key key = Key::FromUint(uint64_t(walk_rng.UniformInt(0, 4095)), 12);
    PGridPeer* cur = peers[size_t(
        walk_rng.UniformInt(0, int64_t(peers.size()) - 1))];
    int hops = 0;
    while (!cur->IsResponsibleFor(key)) {
      auto next = cur->routing()->NextHop(key, &walk_rng);
      ASSERT_TRUE(next.has_value());
      // Greedy progress: the next peer shares strictly more prefix.
      PGridPeer* nxt = peers[*next];
      ASSERT_GT(nxt->path().CommonPrefixLength(key),
                cur->path().CommonPrefixLength(key));
      cur = nxt;
      ASSERT_LE(++hops, max_depth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, OverlaySweepTest,
    ::testing::Values(SweepParam{1, 8}, SweepParam{2, 17}, SweepParam{3, 32},
                      SweepParam{4, 100}, SweepParam{5, 256},
                      SweepParam{6, 11}));

// --- Store vs. brute-force consistency -----------------------------------------

class StoreConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreConsistencyTest, SelectMatchesBruteForce) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> all;
  auto rand_name = [&](const char* prefix, int max) {
    return std::string(prefix) + std::to_string(rng.UniformInt(0, max));
  };
  for (int i = 0; i < 300; ++i) {
    Triple t(Term::Uri(rand_name("s", 30)), Term::Uri(rand_name("p", 8)),
             rng.Bernoulli(0.3)
                 ? Term::Uri(rand_name("o", 20))
                 : Term::Literal(rand_name("value ", 20)));
    if (!store.Contains(t)) all.push_back(t);
    ASSERT_TRUE(store.Insert(t).ok());
  }
  auto rand_term = [&](TriplePos pos) -> Term {
    int dice = int(rng.UniformInt(0, 3));
    if (dice == 0) return Term::Var("v" + std::to_string(int(pos)));
    switch (pos) {
      case TriplePos::kSubject:
        return Term::Uri(rand_name("s", 30));
      case TriplePos::kPredicate:
        return Term::Uri(rand_name("p", 8));
      case TriplePos::kObject:
        if (dice == 1) return Term::Literal("%" + rand_name("", 20) + "%");
        return Term::Literal(rand_name("value ", 20));
    }
    return Term::Var("x");
  };
  for (int q = 0; q < 60; ++q) {
    TriplePattern pattern(rand_term(TriplePos::kSubject),
                          rand_term(TriplePos::kPredicate),
                          rand_term(TriplePos::kObject));
    auto got = store.Select(pattern);
    std::vector<Triple> expected;
    for (const auto& t : all) {
      if (pattern.Matches(t)) expected.push_back(t);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << pattern.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreConsistencyTest,
                         ::testing::Values(10, 20, 30, 40));

// --- Serialization round trips under random content -----------------------------

class SerializationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationFuzzTest, TripleRoundTripsArbitraryBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    auto rand_string = [&](bool allow_weird) {
      std::string s;
      size_t len = size_t(rng.UniformInt(1, 24));
      for (size_t j = 0; j < len; ++j) {
        char c = char(rng.UniformInt(allow_weird ? 1 : 33, 126));
        s.push_back(c);
      }
      return s;
    };
    Triple t(Term::Uri(rand_string(false)), Term::Uri(rand_string(false)),
             Term::Literal(rand_string(true)));  // literals may hold \t, \\ ...
    auto parsed = Triple::Parse(t.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Values(100, 200, 300));

// --- Order-preserving hash: total-order agreement --------------------------------

class HashOrderSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HashOrderSweepTest, SortingByKeyEqualsSortingByString) {
  int depth = GetParam();
  OrderPreservingHash h(depth);
  Rng rng(uint64_t(depth) * 31);
  std::vector<std::string> values;
  for (int i = 0; i < 120; ++i) {
    std::string s;
    size_t len = size_t(rng.UniformInt(1, 10));
    for (size_t j = 0; j < len; ++j) {
      s.push_back(char('a' + rng.UniformInt(0, 25)));
    }
    values.push_back(s);
  }
  auto by_string = values;
  std::sort(by_string.begin(), by_string.end());
  auto by_key = values;
  std::stable_sort(by_key.begin(), by_key.end(),
                   [&](const std::string& a, const std::string& b) {
                     Key ka = h(a), kb = h(b);
                     if (ka == kb) return a < b;  // collisions: tie-break
                     return ka < kb;
                   });
  EXPECT_EQ(by_key, by_string);
}

INSTANTIATE_TEST_SUITE_P(Depths, HashOrderSweepTest,
                         ::testing::Values(16, 24, 40, 64));

}  // namespace
}  // namespace gridvine
