#ifndef GRIDVINE_STORE_TRIPLE_STORE_H_
#define GRIDVINE_STORE_TRIPLE_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term_dictionary.h"
#include "rdf/triple.h"
#include "rdf/triple_pattern.h"

namespace gridvine {

/// One set of variable bindings produced by pattern matching, e.g.
/// {x -> <gv://.../seq1>}. Ordered map so join keys are canonical.
using BindingSet = std::map<std::string, Term>;

/// The local database DB_p of a GridVine peer (paper Section 2.2): a triple
/// relation with physical schema (subject, predicate, object) and hash
/// indexes on each attribute, supporting the three relational operators the
/// paper names — selection σ (with SQL-LIKE '%' patterns on literals),
/// projection π, and (self-)join ⋈.
///
/// Storage is dictionary-encoded: every URI/literal is interned once into a
/// TermDictionary and triples are stored as {sid, pid, oid} id tuples. The
/// three per-position indexes are posting lists keyed by TermId, so inserts
/// hash each term string at most once and pattern matching compares 4-byte
/// ids; strings are only touched at the API boundary (decode on Select /
/// MatchPattern output, LIKE filters). Erase tombstones the slot; posting
/// lists are compacted lazily once the dead fraction crosses a threshold.
class TripleStore {
 public:
  TripleStore() = default;

  /// Inserts a triple; duplicates are ignored. Fails on invalid triples.
  Status Insert(const Triple& t);

  /// Bulk ingest: pre-reserves slot and index capacity then inserts each
  /// triple (duplicates ignored). Stops at the first invalid triple and
  /// returns its error; everything before it stays inserted.
  Status InsertBatch(const std::vector<Triple>& triples);

  /// Removes a triple; true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const;
  size_t size() const { return present_.size(); }
  bool empty() const { return present_.empty(); }
  void Clear();

  /// Selection σ: all triples matching the pattern's constants. Uses the
  /// most selective exact-constant index and filters the remainder
  /// (including '%' LIKE predicates on literal objects).
  std::vector<Triple> Select(const TriplePattern& pattern) const;

  /// Pattern matching: σ followed by binding extraction for the pattern's
  /// variables — the building block for π and ⋈.
  std::vector<BindingSet> MatchPattern(const TriplePattern& pattern) const;

  /// Projection π: the values bound to `var`, deduplicated, sorted.
  std::vector<Term> Project(const std::vector<BindingSet>& bindings,
                            const std::string& var) const;

  /// Natural join ⋈ of two binding lists on their shared variables (hash
  /// join over fixed-width interned-id tuples). With no shared variables
  /// this is a cross product.
  static std::vector<BindingSet> Join(const std::vector<BindingSet>& left,
                                      const std::vector<BindingSet>& right);

  /// All distinct predicates present (used by schema/statistics code).
  std::vector<Term> DistinctPredicates() const;

  /// All distinct object values observed for `predicate` (used by the
  /// set-distance attribute matcher).
  std::set<std::string> ObjectValuesFor(const std::string& predicate_uri) const;

  /// Whole content (stable iteration for serialization / tests).
  std::vector<Triple> All() const;

  /// Interned distinct terms (diagnostics; grows monotonically between
  /// Clear() calls).
  size_t dictionary_size() const { return dict_.size(); }

  /// Monotonic mutation counter, in the spirit of MappingGraph::version():
  /// any change that can alter what a pattern matches — insert, erase,
  /// tombstone compaction, Clear — bumps it, so extent caches can validate
  /// entries with a single integer compare instead of subscribing to
  /// change events. Erase and compaction count too: a cache that only
  /// watched inserts would happily serve rows for deleted triples.
  uint64_t version() const { return version_; }

  /// Bytes of heap behind the store (dictionary arena, slot array, presence
  /// and posting indexes), by capacity. Estimated per common/mem_estimate.h.
  size_t MemoryFootprint() const;

 private:
  /// A triple as stored: three dictionary ids.
  struct IdTriple {
    TermId s, p, o;
    bool operator==(const IdTriple& other) const {
      return s == other.s && p == other.p && o == other.o;
    }
  };
  struct IdTripleHash {
    size_t operator()(const IdTriple& t) const {
      // Mix the three 32-bit ids (fmix-style avalanche over two 64-bit lanes).
      uint64_t h = (uint64_t(t.s) << 32) | t.p;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= uint64_t(t.o) * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 29;
      return size_t(h);
    }
  };

  using PostingMap = std::unordered_map<TermId, std::vector<uint32_t>>;

  /// A pattern with its constants resolved against the dictionary, ready for
  /// id-level matching. `impossible` short-circuits when an exact constant
  /// is not interned at all (no triple can match).
  struct CompiledPattern {
    // Per position: kNoTermId when not an exact id constraint.
    TermId exact[3] = {kNoTermId, kNoTermId, kNoTermId};
    // Positions holding a '%' LIKE literal (decode + string match needed).
    const std::string* like[3] = {nullptr, nullptr, nullptr};
    // LIKE verdicts per term id, filled lazily during one scan: dictionary
    // encoding means a '%' predicate runs once per *distinct* value rather
    // than once per row.
    std::unordered_map<TermId, bool> like_verdicts[3];
    // Repeated-variable equality constraints, as position pairs.
    std::vector<std::pair<int, int>> equal_positions;
    bool impossible = false;
  };
  CompiledPattern Compile(const TriplePattern& pattern) const;
  bool MatchesIds(CompiledPattern& cp, const IdTriple& t) const;

  TermId IdAt(const IdTriple& t, int pos) const {
    return pos == 0 ? t.s : pos == 1 ? t.p : t.o;
  }

  /// Live slot ids matching the pattern (smallest applicable posting list,
  /// else full scan), already filtered through MatchesIds.
  std::vector<uint32_t> MatchingSlots(const TriplePattern& pattern) const;

  Triple DecodeSlot(uint32_t slot) const;

  /// Inner insert once validation is done.
  void InsertEncoded(const Triple& t);

  /// Drops tombstoned slots and rebuilds posting lists / the present map
  /// when the dead fraction crosses kCompactDeadFraction. Slot ids are
  /// internal, so renumbering is invisible to callers. The dictionary is
  /// left untouched (ids stay valid; unreferenced terms are rare and cheap).
  void MaybeCompact();
  static constexpr size_t kCompactMinSlots = 64;
  static constexpr double kCompactDeadFraction = 0.5;

  TermDictionary dict_;
  std::vector<IdTriple> slots_;  // erased slots tombstoned via live_
  std::vector<bool> live_;       // parallel to slots_
  /// Dedup + Contains + O(1) erase: encoded triple -> live slot.
  std::unordered_map<IdTriple, uint32_t, IdTripleHash> present_;
  PostingMap by_subject_;
  PostingMap by_predicate_;
  PostingMap by_object_;
  size_t dead_count_ = 0;
  uint64_t version_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_STORE_TRIPLE_STORE_H_
