#ifndef GRIDVINE_QUERY_RDQL_PARSER_H_
#define GRIDVINE_QUERY_RDQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/query.h"

namespace gridvine {

/// Parser for a compact RDQL-style query syntax (the paper cites RDQL [8] as
/// the triple-pattern query model). Grammar:
///
///   query    := SELECT varlist WHERE patterns
///   varlist  := var (',' var)*
///   patterns := pattern (',' pattern)*
///   pattern  := '(' term ',' term ',' term ')'
///   term     := '?'name | '<'uri'>' | '"'literal'"'
///
/// Keywords are case-insensitive; whitespace is free-form; literals support
/// backslash escapes (\" and \\) and may contain '%' LIKE wildcards.
///
/// Examples:
///   SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")
///   SELECT ?x, ?l WHERE (?x, <EMBL#Organism>, "%niger%"),
///                       (?x, <EMBL#Length>, ?l)
///
/// The result is validated (each selected variable must occur in a pattern).
Result<ConjunctiveQuery> ParseRdql(const std::string& text);

/// Convenience for the single-pattern single-variable case (the paper's
/// SearchFor form). Fails when the query has several patterns or variables.
Result<TriplePatternQuery> ParseRdqlSingle(const std::string& text);

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_RDQL_PARSER_H_
