#include "selforg/incremental_assessor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <sstream>

namespace gridvine {

namespace {

/// MappingsFrom returns reversed views of bidirectional mappings with a
/// "~rev" id suffix; the factor graph works in normalized ids.
std::string NormalizeId(const std::string& id) {
  if (id.size() > 4 && id.compare(id.size() - 4, 4, "~rev") == 0) {
    return id.substr(0, id.size() - 4);
  }
  return id;
}

}  // namespace

IncrementalAssessor::IncrementalAssessor() : IncrementalAssessor(Options()) {}

IncrementalAssessor::IncrementalAssessor(Options options)
    : options_(options), checker_(options.assess) {}

IncrementalAssessor::~IncrementalAssessor() { Detach(); }

void IncrementalAssessor::Attach(MappingGraph* graph) {
  Detach();
  graph_ = graph;
  if (!graph_) return;
  graph_->SetListener(this);
  // Cold rebuild, two passes: every variable's prior first, then factor
  // discovery. A factor found while probing its first member must already
  // see the priors of members probed later, or its scope comes out short.
  std::set<std::string> ids;
  for (const auto& schema : graph_->Schemas()) {
    for (const auto& m : graph_->MappingsFrom(schema)) {
      ids.insert(NormalizeId(m.id()));
    }
  }
  for (const std::string& id : ids) {
    auto m = graph_->GetShared(id);
    if (!m || m->deprecated()) continue;
    if (m->provenance() == MappingProvenance::kAutomatic) {
      double p = m->confidence();
      prior_[id] = (p > 0 && p < 1) ? p : options_.assess.default_prior;
    }
  }
  for (const std::string& id : ids) {
    for (const FactorKey& key : CycleSetsContaining(*graph_, id)) {
      if (!factors_.count(key)) InsertFactor(*graph_, key);
    }
  }
}

void IncrementalAssessor::Detach() {
  if (graph_) {
    graph_->SetListener(nullptr);
    graph_ = nullptr;
  }
  prior_.clear();
  factors_.clear();
  edge_index_.clear();
  incidence_.clear();
  dirty_.clear();
}

void IncrementalAssessor::OnMappingAdded(const MappingGraph& graph,
                                         const std::string& id) {
  HandleAdd(graph, id);
}

void IncrementalAssessor::OnMappingReplaced(const MappingGraph& graph,
                                            const std::string& id) {
  // Re-intern: correspondences, confidence, endpoints or the deprecation
  // flag changed under the same id. Retire the old evidence, re-derive.
  HandleRemove(id);
  HandleAdd(graph, id);
}

void IncrementalAssessor::OnMappingDeprecated(const MappingGraph& graph,
                                              const std::string& id) {
  (void)graph;
  HandleRemove(id);
}

void IncrementalAssessor::OnMappingRemoved(const MappingGraph& graph,
                                           const std::string& id) {
  (void)graph;
  HandleRemove(id);
}

void IncrementalAssessor::HandleAdd(const MappingGraph& graph,
                                    const std::string& id) {
  auto m = graph.GetShared(id);
  if (!m || m->deprecated()) return;
  if (m->provenance() == MappingProvenance::kAutomatic) {
    double p = m->confidence();
    prior_[id] = (p > 0 && p < 1) ? p : options_.assess.default_prior;
  }
  for (const FactorKey& key : CycleSetsContaining(graph, id)) {
    if (!factors_.count(key)) InsertFactor(graph, key);
  }
}

void IncrementalAssessor::HandleRemove(const std::string& id) {
  auto eit = edge_index_.find(id);
  if (eit != edge_index_.end()) {
    // DropFactor mutates edge_index_; detach the key list first.
    std::vector<FactorKey> keys(eit->second.begin(), eit->second.end());
    for (const FactorKey& key : keys) DropFactor(key);
  }
  // Every factor scoping the variable contained it as an edge, so the drops
  // above already cleared its incidences.
  prior_.erase(id);
}

void IncrementalAssessor::InsertFactor(const MappingGraph& graph,
                                       const FactorKey& key) {
  std::vector<std::string> cycle = CanonicalCycleOrder(graph, key);
  if (cycle.empty()) return;
  MappingAssessor::CycleObservation obs = checker_.CheckCycle(graph, cycle);
  if (obs.attributes_checked <= 0) return;
  Factor f;
  f.cycle = std::move(obs.mapping_ids);
  f.consistent = obs.consistent;
  f.attributes_checked = obs.attributes_checked;
  for (const std::string& cid : key) {
    if (prior_.count(cid)) f.vars.push_back(cid);  // key sorted -> vars sorted
  }
  // Manual-only cycles carry no assessable variable.
  if (f.vars.empty()) return;
  f.msg_fv.assign(f.vars.size(), 0.5);
  f.msg_vf.resize(f.vars.size());
  for (size_t i = 0; i < f.vars.size(); ++i) {
    f.msg_vf[i] = prior_.at(f.vars[i]);
  }
  for (const std::string& cid : key) edge_index_[cid].insert(key);
  for (const std::string& var : f.vars) {
    incidence_[var].insert(key);
    MarkNeighborsDirty(var, key);
  }
  dirty_.insert(key);
  factors_.emplace(key, std::move(f));
}

void IncrementalAssessor::DropFactor(const FactorKey& key) {
  auto fit = factors_.find(key);
  if (fit == factors_.end()) return;
  const Factor& f = fit->second;
  for (const std::string& cid : key) {
    auto eit = edge_index_.find(cid);
    if (eit != edge_index_.end()) {
      eit->second.erase(key);
      if (eit->second.empty()) edge_index_.erase(eit);
    }
  }
  for (const std::string& var : f.vars) {
    auto iit = incidence_.find(var);
    if (iit != incidence_.end()) {
      iit->second.erase(key);
      if (iit->second.empty()) incidence_.erase(iit);
    }
    // Survivors lose an input message; their outputs must recompute.
    MarkNeighborsDirty(var, key);
  }
  dirty_.erase(key);
  factors_.erase(fit);
}

void IncrementalAssessor::MarkNeighborsDirty(const std::string& var,
                                             const FactorKey& except) {
  auto iit = incidence_.find(var);
  if (iit == incidence_.end()) return;
  for (const FactorKey& key : iit->second) {
    if (key != except) dirty_.insert(key);
  }
}

std::set<IncrementalAssessor::FactorKey> IncrementalAssessor::CycleSetsContaining(
    const MappingGraph& graph, const std::string& id) const {
  std::set<FactorKey> out;
  auto m = graph.GetShared(id);
  if (!m || m->deprecated()) return out;
  const int max_len = options_.assess.max_cycle_len;

  // Probe both orientations: a cycle whose only valid traversal crosses
  // this edge backwards (bidirectional) would be invisible to a
  // forward-only probe.
  std::vector<std::pair<std::string, std::string>> probes = {
      {m->source_schema(), m->target_schema()}};
  if (m->bidirectional()) {
    probes.push_back({m->target_schema(), m->source_schema()});
  }
  for (const auto& [home, start] : probes) {
    if (home == start) continue;
    std::vector<std::string> path = {id};
    std::set<std::string> visited = {home, start};
    std::function<void(const std::string&)> dfs = [&](const std::string& cur) {
      if (int(path.size()) >= max_len) return;
      for (const auto& edge : graph.MappingsFrom(cur)) {
        std::string eid = NormalizeId(edge.id());
        if (eid == id) continue;
        if (std::find(path.begin(), path.end(), eid) != path.end()) continue;
        const std::string& to = edge.target_schema();
        if (to == home) {
          FactorKey key(path.begin(), path.end());
          key.push_back(eid);
          std::sort(key.begin(), key.end());
          out.insert(std::move(key));
          continue;
        }
        if (visited.count(to)) continue;
        visited.insert(to);
        path.push_back(eid);
        dfs(to);
        path.pop_back();
        visited.erase(to);
      }
    };
    dfs(start);
  }
  return out;
}

std::vector<std::string> IncrementalAssessor::CanonicalCycleOrder(
    const MappingGraph& graph, const FactorKey& key) const {
  // A simple cycle gives every schema exactly two incident edges, so a walk
  // that fixes the start edge (traversed forward, as CheckCycle demands of
  // the first mapping) is forced. Try every start edge; keep the
  // lexicographically smallest closed walk.
  std::vector<std::string> best;
  for (const std::string& start_id : key) {
    auto s = graph.GetShared(start_id);
    if (!s) continue;
    const std::string& home = s->source_schema();
    std::string cur = s->target_schema();
    std::vector<std::string> seq = {start_id};
    std::set<std::string> used = {start_id};
    bool ok = true;
    while (ok && used.size() < key.size()) {
      std::string chosen;
      std::string next_schema;
      for (const std::string& cid : key) {
        if (used.count(cid)) continue;
        auto c = graph.GetShared(cid);
        if (!c) {
          ok = false;
          break;
        }
        // Same orientation precedence as CheckCycle: forward first.
        if (c->source_schema() == cur) {
          chosen = cid;
          next_schema = c->target_schema();
          break;
        }
        if (c->bidirectional() && c->target_schema() == cur) {
          chosen = cid;
          next_schema = c->source_schema();
          break;
        }
      }
      if (chosen.empty()) {
        ok = false;
        break;
      }
      seq.push_back(chosen);
      used.insert(chosen);
      cur = next_schema;
    }
    if (ok && cur == home) {
      if (best.empty() || seq < best) best = seq;
    }
  }
  return best;
}

size_t IncrementalAssessor::SlotOf(const Factor& f,
                                   const std::string& var) const {
  auto it = std::lower_bound(f.vars.begin(), f.vars.end(), var);
  return size_t(it - f.vars.begin());
}

void IncrementalAssessor::RefreshVarToFactor(Factor* f) {
  for (size_t i = 0; i < f->vars.size(); ++i) {
    const std::string& var = f->vars[i];
    double good = prior_.at(var);
    double bad = 1 - good;
    auto iit = incidence_.find(var);
    if (iit != incidence_.end()) {
      for (const FactorKey& other : iit->second) {
        const Factor& g = factors_.at(other);
        if (&g == f) continue;
        size_t slot = SlotOf(g, var);
        good *= g.msg_fv[slot];
        bad *= (1 - g.msg_fv[slot]);
      }
    }
    double z = good + bad;
    f->msg_vf[i] = z > 0 ? good / z : 0.5;
  }
}

double IncrementalAssessor::FactorToVarMessage(const Factor& f,
                                               size_t slot) const {
  double q = 1.0;  // P(all *other* variables good)
  for (size_t j = 0; j < f.vars.size(); ++j) {
    if (j != slot) q *= f.msg_vf[j];
  }
  const double eps = options_.assess.epsilon;
  const double del = options_.assess.delta;
  double mu_good, mu_bad;
  if (f.consistent) {
    mu_good = (1 - eps) * q + del * (1 - q);
    mu_bad = del;
  } else {
    mu_good = eps * q + (1 - del) * (1 - q);
    mu_bad = 1 - del;
  }
  double z = mu_good + mu_bad;
  return z > 0 ? mu_good / z : 0.5;
}

IncrementalAssessor::UpdateStats IncrementalAssessor::Update() {
  UpdateStats stats;
  stats.dirty_before = dirty_.size();
  while (!dirty_.empty()) {
    std::set<FactorKey> snapshot;
    snapshot.swap(dirty_);
    ++stats.sweeps;
    for (auto it = snapshot.begin(); it != snapshot.end(); ++it) {
      auto fit = factors_.find(*it);
      if (fit == factors_.end()) continue;
      Factor& f = fit->second;
      if (stats.messages + f.vars.size() > options_.message_cap) {
        // Budget exhausted: the unprocessed remainder stays dirty and
        // resumes on the next Update() call.
        for (; it != snapshot.end(); ++it) dirty_.insert(*it);
        stats.dirty_after = dirty_.size();
        lifetime_messages_ += stats.messages;
        return stats;
      }
      RefreshVarToFactor(&f);
      for (size_t i = 0; i < f.vars.size(); ++i) {
        double next = FactorToVarMessage(f, i);
        ++stats.messages;
        if (std::fabs(next - f.msg_fv[i]) > options_.tolerance) {
          MarkNeighborsDirty(f.vars[i], fit->first);
        }
        f.msg_fv[i] = next;
      }
    }
  }
  stats.converged = true;
  stats.dirty_after = dirty_.size();
  lifetime_messages_ += stats.messages;
  return stats;
}

std::map<std::string, double> IncrementalAssessor::Posteriors() const {
  std::map<std::string, double> post;
  for (const auto& [id, p] : prior_) {
    post[id] = Posterior(id);
    (void)p;
  }
  return post;
}

double IncrementalAssessor::Posterior(const std::string& id) const {
  auto pit = prior_.find(id);
  if (pit == prior_.end()) return 0.0;
  double good = pit->second;
  double bad = 1 - good;
  auto iit = incidence_.find(id);
  if (iit != incidence_.end()) {
    for (const FactorKey& key : iit->second) {
      const Factor& f = factors_.at(key);
      size_t slot = SlotOf(f, id);
      good *= f.msg_fv[slot];
      bad *= (1 - f.msg_fv[slot]);
    }
  }
  double z = good + bad;
  return z > 0 ? good / z : pit->second;
}

std::map<std::string, double> IncrementalAssessor::AssessWithFixedSchedule()
    const {
  // The batch assessor's synchronous (Jacobi) schedule — all factor->var
  // messages from the previous iteration's var->factor messages, then all
  // var->factor — over the maintained factors in canonical key order,
  // cold-started. Within a phase the result depends only on the factor
  // multiset, and the multiply order is the canonical order, so identical
  // structures give bit-identical posteriors.
  struct LocalFactor {
    const Factor* f;
    std::vector<double> fv, vf;
  };
  std::vector<LocalFactor> lf;
  lf.reserve(factors_.size());
  for (const auto& [key, f] : factors_) {
    (void)key;
    LocalFactor l;
    l.f = &f;
    l.fv.assign(f.vars.size(), 0.5);
    l.vf.resize(f.vars.size());
    for (size_t i = 0; i < f.vars.size(); ++i) l.vf[i] = prior_.at(f.vars[i]);
    lf.push_back(std::move(l));
  }
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> inc;
  for (size_t fi = 0; fi < lf.size(); ++fi) {
    for (size_t i = 0; i < lf[fi].f->vars.size(); ++i) {
      inc[lf[fi].f->vars[i]].push_back({fi, i});
    }
  }
  const double eps = options_.assess.epsilon;
  const double del = options_.assess.delta;
  for (int iter = 0; iter < options_.assess.bp_iterations; ++iter) {
    for (auto& l : lf) {
      for (size_t i = 0; i < l.vf.size(); ++i) {
        double q = 1.0;
        for (size_t j = 0; j < l.vf.size(); ++j) {
          if (j != i) q *= l.vf[j];
        }
        double mu_good, mu_bad;
        if (l.f->consistent) {
          mu_good = (1 - eps) * q + del * (1 - q);
          mu_bad = del;
        } else {
          mu_good = eps * q + (1 - del) * (1 - q);
          mu_bad = 1 - del;
        }
        double z = mu_good + mu_bad;
        l.fv[i] = z > 0 ? mu_good / z : 0.5;
      }
    }
    for (const auto& [var, slots] : inc) {
      for (const auto& [fi, i] : slots) {
        double good = prior_.at(var);
        double bad = 1 - good;
        for (const auto& [f2, i2] : slots) {
          if (f2 == fi && i2 == i) continue;
          good *= lf[f2].fv[i2];
          bad *= (1 - lf[f2].fv[i2]);
        }
        double z = good + bad;
        lf[fi].vf[i] = z > 0 ? good / z : 0.5;
      }
    }
  }
  std::map<std::string, double> post;
  for (const auto& [id, p] : prior_) {
    double good = p;
    double bad = 1 - p;
    auto it = inc.find(id);
    if (it != inc.end()) {
      for (const auto& [fi, i] : it->second) {
        good *= lf[fi].fv[i];
        bad *= (1 - lf[fi].fv[i]);
      }
    }
    double z = good + bad;
    post[id] = z > 0 ? good / z : p;
  }
  return post;
}

std::string IncrementalAssessor::StructureDigest() const {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const auto& [id, p] : prior_) {
    os << "var " << id << " prior=" << p << "\n";
  }
  for (const auto& [key, f] : factors_) {
    os << "factor";
    for (const auto& id : key) os << " " << id;
    os << " cycle=";
    for (size_t i = 0; i < f.cycle.size(); ++i) {
      if (i) os << ">";
      os << f.cycle[i];
    }
    os << " consistent=" << (f.consistent ? 1 : 0)
       << " attrs=" << f.attributes_checked << " vars=";
    for (size_t i = 0; i < f.vars.size(); ++i) {
      if (i) os << ",";
      os << f.vars[i];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gridvine
