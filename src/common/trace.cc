#include "common/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gridvine {

void Tracer::Enable(size_t capacity) {
  enabled_ = true;
  capacity_ = capacity == 0 ? 1 : capacity;
}

void Tracer::Clear() {
  ring_.clear();
  index_.clear();
  head_ = 0;
  evicted_ = 0;
}

Tracer::Span* Tracer::Find(TraceCtx ctx) {
  if (!enabled_ || !ctx.valid()) return nullptr;
  auto it = index_.find(ctx.span_id);
  if (it == index_.end()) return nullptr;
  return &ring_[it->second];
}

TraceCtx Tracer::Open(std::string_view name, uint64_t trace_id,
                      uint64_t parent_id) {
  Span span;
  span.span_id = id_base_ | next_id_++;
  span.order = NextOrder(span.span_id);
  span.trace_id = trace_id == 0 ? span.span_id : trace_id;
  span.parent_id = parent_id;
  span.name = name;
  span.start = Now();
  size_t slot;
  if (ring_.size() < capacity_) {
    slot = ring_.size();
    ring_.push_back(std::move(span));
  } else {
    // Ring full: overwrite the oldest slot. Its span is gone for good —
    // unhook it from the open-span index too.
    slot = head_;
    head_ = (head_ + 1) % capacity_;
    index_.erase(ring_[slot].span_id);
    ring_[slot] = std::move(span);
    ++evicted_;
  }
  index_.emplace(ring_[slot].span_id, slot);
  return TraceCtx{ring_[slot].trace_id, ring_[slot].span_id};
}

TraceCtx Tracer::StartTrace(std::string_view name) {
  if (!enabled_) return TraceCtx{};
  return Open(name, 0, 0);
}

TraceCtx Tracer::StartSpan(std::string_view name, TraceCtx parent) {
  if (!enabled_) return TraceCtx{};
  if (!parent.valid()) return Open(name, 0, 0);
  return Open(name, parent.trace_id, parent.span_id);
}

void Tracer::EndSpan(TraceCtx ctx) {
  Span* span = Find(ctx);
  if (span != nullptr && span->end < 0) span->end = Now();
}

void Tracer::EndSpanAt(TraceCtx ctx, double end) {
  Span* span = Find(ctx);
  if (span != nullptr && span->end < 0) span->end = end;
}

TraceCtx Tracer::Instant(std::string_view name, TraceCtx parent) {
  TraceCtx ctx = StartSpan(name, parent);
  EndSpan(ctx);
  return ctx;
}

TraceCtx Tracer::Interval(std::string_view name, TraceCtx parent, double start,
                          double end) {
  TraceCtx ctx = StartSpan(name, parent);
  Span* span = Find(ctx);
  if (span != nullptr) {
    span->start = start;
    span->end = end < start ? start : end;
  }
  return ctx;
}

void Tracer::Annotate(TraceCtx ctx, std::string_view key, double value) {
  Span* span = Find(ctx);
  if (span == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.is_number = true;
  a.number = value;
  span->annotations.push_back(std::move(a));
}

void Tracer::Annotate(TraceCtx ctx, std::string_view key,
                      std::string_view value) {
  Span* span = Find(ctx);
  if (span == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.is_number = false;
  a.text.assign(value);
  span->annotations.push_back(std::move(a));
}

std::vector<Tracer::Span> Tracer::Snapshot() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: once wrapped, the oldest live span sits at head_.
  const size_t n = ring_.size();
  const size_t start = n < capacity_ ? 0 : head_;
  for (size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

namespace {

void AppendJsonEscaped(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
      continue;
    }
    os << c;
  }
}

void AppendJsonNumber(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

/// Lexicographic causal merge key: simulated start time, then the
/// content-derived order, then the id as a total-order backstop.
bool CausallyBefore(const Tracer::Span& a, const Tracer::Span& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.order != b.order) return a.order < b.order;
  return a.span_id < b.span_id;
}

}  // namespace

std::string SpansToChromeJson(const std::vector<Tracer::Span>& spans,
                              uint32_t shards) {
  std::ostringstream os;
  os.precision(15);
  os << "{\"displayTimeUnit\": \"ms\",\n";
  if (shards > 1) {
    // Tooling switch: validate_trace.py applies the shard-merge checks
    // (monotone (ts, order) keys, graph-traversal acyclicity) when present.
    os << "\"otherData\": {\"shards\": " << shards << "},\n";
  }
  os << "\"traceEvents\": [\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Tracer::Span& s = spans[i];
    const double end = s.end < 0 ? s.start : s.end;
    os << "  {\"name\": \"";
    AppendJsonEscaped(os, s.name);
    os << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << s.trace_id
       << ", \"ts\": ";
    AppendJsonNumber(os, s.start * 1e6);
    os << ", \"dur\": ";
    AppendJsonNumber(os, (end - s.start) * 1e6);
    os << ", \"args\": {\"span_id\": " << s.span_id
       << ", \"parent_id\": " << s.parent_id << ", \"order\": " << s.order;
    if (s.end < 0) os << ", \"open\": 1";
    for (const Tracer::Annotation& a : s.annotations) {
      os << ", \"";
      AppendJsonEscaped(os, a.key);
      os << "\": ";
      if (a.is_number) {
        AppendJsonNumber(os, a.number);
      } else {
        os << "\"";
        AppendJsonEscaped(os, a.text);
        os << "\"";
      }
    }
    os << "}}" << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

std::string Tracer::ToChromeJson() const {
  return SpansToChromeJson(Snapshot(), 1);
}

size_t TraceView::size() const {
  size_t n = 0;
  for (const Tracer* t : parts_) n += t->size();
  return n;
}

uint64_t TraceView::evicted() const {
  uint64_t n = 0;
  for (const Tracer* t : parts_) n += t->evicted();
  return n;
}

TraceCtx TraceView::StartTrace(std::string_view name) {
  if (parts_.empty()) return TraceCtx{};
  return parts_[0]->StartTrace(name);
}

Tracer* TraceView::Owner(TraceCtx ctx) {
  if (parts_.empty() || !ctx.valid()) return nullptr;
  const uint64_t shard = ctx.span_id >> Tracer::kShardIdShift;
  return shard < parts_.size() ? parts_[shard] : nullptr;
}

void TraceView::EndSpan(TraceCtx ctx) {
  if (Tracer* t = Owner(ctx)) t->EndSpan(ctx);
}

void TraceView::Annotate(TraceCtx ctx, std::string_view key, double value) {
  if (Tracer* t = Owner(ctx)) t->Annotate(ctx, key, value);
}

void TraceView::Annotate(TraceCtx ctx, std::string_view key,
                         std::string_view value) {
  if (Tracer* t = Owner(ctx)) t->Annotate(ctx, key, value);
}

std::vector<Tracer::Span> TraceView::Snapshot() const {
  std::vector<Tracer::Span> out;
  out.reserve(size());
  for (const Tracer* t : parts_) {
    std::vector<Tracer::Span> part = t->Snapshot();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  // A full sort, not a k-way ring merge: retroactive Interval spans are
  // recorded out of start order even within one ring.
  std::sort(out.begin(), out.end(), CausallyBefore);
  return out;
}

std::string TraceView::ToChromeJson() const {
  return SpansToChromeJson(Snapshot(), parts());
}

TraceAnalyzer::TraceAnalyzer(std::vector<Tracer::Span> spans)
    : spans_(std::move(spans)) {
  for (size_t i = 0; i < spans_.size(); ++i) {
    by_id_.emplace(spans_[i].span_id, i);
  }
}

const Tracer::Span* TraceAnalyzer::Find(uint64_t span_id) const {
  auto it = by_id_.find(span_id);
  return it == by_id_.end() ? nullptr : &spans_[it->second];
}

size_t TraceAnalyzer::CountNamed(std::string_view name) const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.name == name) ++n;
  }
  return n;
}

size_t TraceAnalyzer::CountNamed(std::string_view name,
                                 uint64_t trace_id) const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.trace_id == trace_id && s.name == name) ++n;
  }
  return n;
}

size_t TraceAnalyzer::OpenCount() const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.end < 0) ++n;
  }
  return n;
}

std::string TraceAnalyzer::CheckConsistency(uint64_t evicted) const {
  orphan_warnings_ = 0;
  if (by_id_.size() != spans_.size()) {
    return "duplicate span ids in snapshot";
  }
  for (const auto& s : spans_) {
    std::string where =
        "span " + std::to_string(s.span_id) + " (" + std::string(s.name) + ")";
    if (s.span_id == 0) return where + ": zero span id";
    if (s.parent_id == 0) {
      if (s.trace_id != s.span_id) {
        return where + ": root span with trace_id != span_id";
      }
      continue;
    }
    const Tracer::Span* parent = Find(s.parent_id);
    if (parent == nullptr) {
      // A ring that evicted spans is expected to have dropped some parents;
      // that is lossy, not corrupt. With no evictions it is a real orphan.
      if (evicted > 0) {
        ++orphan_warnings_;
        continue;
      }
      return where + ": orphan (parent " + std::to_string(s.parent_id) +
             " missing)";
    }
    // Parents are opened causally before their children, so the (start,
    // order) key strictly increases parent -> child; any parent chain
    // therefore strictly decreases and cannot cycle. (Numeric id order only
    // holds within one ring — shard-merged snapshots interleave counters.)
    if (parent->start > s.start ||
        (parent->start == s.start && parent->order >= s.order)) {
      return where + ": parent " + std::to_string(s.parent_id) +
             " not causally before the span (cycle?)";
    }
    if (parent->trace_id != s.trace_id) {
      return where + ": trace id differs from parent's";
    }
  }
  return "";
}

TraceAnalyzer::Category TraceAnalyzer::CategoryOf(std::string_view name) {
  if (name == "op.queue") return Category::kQueue;
  if (name == "op.service") return Category::kService;
  if (name == "op.backoff") return Category::kRetry;
  // Operation/executor spans are peer compute; everything else is a message
  // flight, named after its interned message type ("gv.query", ...).
  if (name.substr(0, 3) == "op." || name.substr(0, 5) == "exec.") {
    return Category::kCompute;
  }
  return Category::kNetwork;
}

TraceAnalyzer::CriticalPath TraceAnalyzer::CriticalPathFor(
    uint64_t trace_id) const {
  CriticalPath out;
  const Tracer::Span* root = Find(trace_id);
  if (root == nullptr || root->end < root->start) return out;
  out.total = root->end - root->start;
  if (out.total <= 0) return out;

  // Clip every closed span of the trace to the root window; open spans are
  // treated as running to the root's end (they were still active when the
  // operation finished).
  struct Active {
    double lo, hi;
    double start;  ///< unclipped, for the innermost comparison
    uint64_t order;
    Category cat;
  };
  std::vector<Active> acts;
  std::vector<double> bounds;
  for (const auto& s : spans_) {
    if (s.trace_id != trace_id) continue;
    double lo = std::max(s.start, root->start);
    double hi = std::min(s.end < 0 ? root->end : s.end, root->end);
    if (hi <= lo && s.span_id != root->span_id) continue;  // instants etc.
    acts.push_back(Active{lo, hi, s.start, s.order, CategoryOf(s.name)});
    bounds.push_back(lo);
    bounds.push_back(hi);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Every elementary interval goes to the innermost span active across it:
  // latest start, content order breaking ties — deterministic and, because
  // the root is always active, exhaustive over [root.start, root.end].
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    const double mid = 0.5 * (bounds[i] + bounds[i + 1]);
    const Active* innermost = nullptr;
    for (const Active& a : acts) {
      if (a.lo > mid || a.hi <= mid) continue;
      if (innermost == nullptr || a.start > innermost->start ||
          (a.start == innermost->start && a.order > innermost->order)) {
        innermost = &a;
      }
    }
    if (innermost == nullptr) continue;
    const double len = bounds[i + 1] - bounds[i];
    switch (innermost->cat) {
      case Category::kQueue: out.queue += len; break;
      case Category::kService: out.service += len; break;
      case Category::kNetwork: out.network += len; break;
      case Category::kRetry: out.retry += len; break;
      case Category::kCompute: out.compute += len; break;
    }
  }
  return out;
}

}  // namespace gridvine
