#ifndef GRIDVINE_GRIDVINE_QUERY_FRONTEND_H_
#define GRIDVINE_GRIDVINE_QUERY_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "gridvine/gridvine_peer.h"

namespace gridvine {

/// Per-peer admission control for the serving layer. The paper measures one
/// query at a time; heavy traffic means many concurrent single-pattern and
/// conjunctive resolutions per peer, so the frontend runs up to
/// Options::frontend.max_concurrent of them at once, parks further
/// submissions in a bounded FIFO admission queue, and — once the queue is
/// full — sheds immediately with Status::Overload. Explicit backpressure:
/// the caller learns synchronously that the query was refused, instead of it
/// queueing without bound and timing out deep inside the network.
///
/// Determinism: admission order is submission order; a completion hands its
/// freed slot to the queue head through a zero-delay simulator event (which
/// also bounds stack depth under long query chains). A shed query never
/// touches the network, so no executor or pending-query state can leak.
class QueryFrontend {
 public:
  QueryFrontend(Simulator* sim, GridVinePeer* peer) : sim_(sim), peer_(peer) {}

  /// Cumulative counters plus live levels (filled in by stats()).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t max_queue_depth = 0;
    uint64_t active = 0;
    uint64_t queued = 0;
  };

  /// SearchFor through admission control. The callback always fires exactly
  /// once — with Status::Overload (and no network traffic) when shed.
  void Submit(const TriplePatternQuery& query,
              const GridVinePeer::QueryOptions& options,
              GridVinePeer::QueryCallback cb);

  /// SearchForConjunctive through admission control.
  void SubmitConjunctive(
      const ConjunctiveQuery& query, const GridVinePeer::QueryOptions& options,
      std::function<void(GridVinePeer::ConjunctiveResult)> cb);

  Stats stats() const;
  size_t active() const { return active_; }
  size_t queue_depth() const { return queue_.size(); }
  size_t MemoryFootprint() const;

 private:
  struct Task {
    bool conjunctive = false;
    TriplePatternQuery query;
    ConjunctiveQuery cquery;
    GridVinePeer::QueryOptions options;
    GridVinePeer::QueryCallback cb;
    std::function<void(GridVinePeer::ConjunctiveResult)> ccb;
    /// Root span covering the query's whole stay in the serving layer
    /// (admission wait included); invalid while tracing is off.
    TraceCtx serve_ctx{};
    SimTime enqueued_at = -1;  ///< admission-queue entry time; -1 if direct
  };

  /// Opens the "op.serve" span for `t` (a trace root unless the caller
  /// supplied a parent) and reparents the query under it, so the frontend's
  /// queue wait and the query tree share one end-to-end trace.
  void OpenServeSpan(Task* t);
  void EndServeSpan(const TraceCtx& serve, const Status& status);

  void Admit(Task t);
  void StartTask(Task t);
  void OnTaskDone();
  void Shed(Task t);

  Simulator* sim_;
  GridVinePeer* peer_;
  size_t active_ = 0;
  std::deque<Task> queue_;
  Stats stats_;  // active/queued snapshots filled by stats()
};

}  // namespace gridvine

#endif  // GRIDVINE_GRIDVINE_QUERY_FRONTEND_H_
