#ifndef GRIDVINE_SIM_EVENT_FN_H_
#define GRIDVINE_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gridvine {

/// Opt-in marker for callables that may be relocated with memcpy (moved to a
/// new address and the source abandoned without running its destructor).
/// Trivially copyable types qualify automatically; a type whose members are
/// individually trivially relocatable but not trivially copyable (e.g. one
/// holding a shared_ptr) can opt in with
///   static constexpr bool kTriviallyRelocatable = true;
/// EventFn relocates such callables with a straight 48-byte copy instead of
/// an indirect move-construct+destroy call — the difference is visible in
/// heap sift operations, which relocate events on every reheap level.
template <typename T, typename = void>
struct IsTriviallyRelocatable : std::is_trivially_copyable<T> {};
template <typename T>
struct IsTriviallyRelocatable<T,
                              std::void_t<decltype(T::kTriviallyRelocatable)>>
    : std::bool_constant<T::kTriviallyRelocatable> {};

/// Move-only callable with small-buffer optimization, purpose-built for the
/// simulator's event queue. Captures up to `kInlineSize` bytes live inside
/// the EventFn itself — scheduling an ordinary timer or a network delivery
/// allocates nothing. Larger (or throwing-move) callables fall back to the
/// heap, like std::function.
///
/// Unlike std::function the wrapped callable only needs to be *move*-
/// constructible, and moving an EventFn never allocates or throws. Invoking
/// an empty/moved-from EventFn is undefined.
class EventFn {
 public:
  /// Inline capture budget. 48 bytes fits the transport's delivery record
  /// (pointer + two node ids + shared_ptr body) and typical timer lambdas
  /// (a couple of pointers and ids) with room to spare.
  static constexpr size_t kInlineSize = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::kOps;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &HeapModel<D>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the callable into `dst` from `src`, destroying `src`.
    /// nullptr means "relocate by memcpy of the whole inline buffer".
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineModel {
    static void Invoke(void* self) { (*static_cast<D*>(self))(); }
    static void Relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void Destroy(void* self) noexcept { static_cast<D*>(self)->~D(); }
    static constexpr Ops kOps = {
        &Invoke, IsTriviallyRelocatable<D>::value ? nullptr : &Relocate,
        &Destroy};
  };

  template <typename D>
  struct HeapModel {
    static void Invoke(void* self) { (**static_cast<D**>(self))(); }
    static void Destroy(void* self) noexcept { delete *static_cast<D**>(self); }
    // Relocation is a pointer copy — memcpy-relocatable by construction.
    static constexpr Ops kOps = {&Invoke, nullptr, &Destroy};
  };

  void MoveFrom(EventFn& other) noexcept {
    if (other.ops_) {
      if (other.ops_->relocate) {
        other.ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_EVENT_FN_H_
