#ifndef GRIDVINE_MAPPING_SCHEMA_MAPPING_H_
#define GRIDVINE_MAPPING_SCHEMA_MAPPING_H_

#include <map>
#include <optional>
#include <string>

#include "common/interner.h"
#include "common/result.h"

namespace gridvine {

/// Semantic relationship expressed by a mapping (paper Section 3): GridVine
/// supports both equivalence and inclusion (subsumption) GAV mappings.
enum class MappingType {
  kEquivalence,  ///< source attribute ≡ target attribute
  kSubsumption,  ///< source attribute ⊑ target attribute
};

/// Who created the mapping. Manual mappings are treated as ground truth by
/// the Bayesian quality analysis; automatic ones get probabilistic
/// correctness values (Section 3.2).
enum class MappingProvenance { kManual, kAutomatic };

/// A pairwise GAV schema mapping: a set of attribute correspondences from a
/// source schema to a target schema. Queries posed against the source schema
/// are reformulated by substituting each source predicate with its
/// correspondent (view unfolding).
class SchemaMapping;

/// The process-wide SchemaMapping intern pool (see common/interner.h):
/// MappingGraph views across all peers share one object per distinct
/// serialized mapping.
InternPool<SchemaMapping>& MappingPool();

class SchemaMapping {
 public:
  SchemaMapping() = default;
  SchemaMapping(std::string id, std::string source_schema,
                std::string target_schema)
      : id_(std::move(id)),
        source_schema_(std::move(source_schema)),
        target_schema_(std::move(target_schema)) {}

  const std::string& id() const { return id_; }
  const std::string& source_schema() const { return source_schema_; }
  const std::string& target_schema() const { return target_schema_; }

  MappingType type() const { return type_; }
  void set_type(MappingType t) { type_ = t; }

  MappingProvenance provenance() const { return provenance_; }
  void set_provenance(MappingProvenance p) { provenance_ = p; }

  /// Bidirectional mappings (equivalences) reformulate queries both ways and
  /// are indexed under both schemas' key spaces.
  bool bidirectional() const { return bidirectional_; }
  void set_bidirectional(bool b) { bidirectional_ = b; }

  bool deprecated() const { return deprecated_; }
  void set_deprecated(bool d) { deprecated_ = d; }

  /// Creator's confidence in [0, 1] (1.0 for manual mappings).
  double confidence() const { return confidence_; }
  void set_confidence(double c) { confidence_ = c; }

  /// Adds the correspondence source attribute URI -> target attribute URI.
  /// Both must be full URIs ("Schema#Attr") belonging to the respective
  /// schemas.
  Status AddCorrespondence(const std::string& source_attr_uri,
                           const std::string& target_attr_uri);

  /// Maps a source attribute URI to the corresponding target URI.
  std::optional<std::string> MapAttribute(
      const std::string& source_attr_uri) const;
  /// Inverse direction (only meaningful for bidirectional mappings; the
  /// inverse of a non-injective correspondence returns any preimage).
  std::optional<std::string> MapAttributeReverse(
      const std::string& target_attr_uri) const;

  const std::map<std::string, std::string>& correspondences() const {
    return correspondences_;
  }
  size_t size() const { return correspondences_.size(); }

  /// The mapping with source/target and correspondences swapped.
  SchemaMapping Reversed() const;

  /// Composition this ∘ other: a mapping source() -> other.target(), chaining
  /// correspondences; attributes without a complete chain are dropped.
  /// Error if target_schema() != other.source_schema().
  Result<SchemaMapping> Compose(const SchemaMapping& other) const;

  /// Line format:
  /// "mapping|id|src|dst|type|prov|bidi|depr|conf|sA>tA;sB>tB;..."
  std::string Serialize() const;
  static Result<SchemaMapping> Parse(const std::string& line);

  bool operator==(const SchemaMapping& other) const {
    return id_ == other.id_;
  }

 private:
  std::string id_;
  std::string source_schema_;
  std::string target_schema_;
  MappingType type_ = MappingType::kEquivalence;
  MappingProvenance provenance_ = MappingProvenance::kManual;
  bool bidirectional_ = false;
  bool deprecated_ = false;
  double confidence_ = 1.0;
  std::map<std::string, std::string> correspondences_;
};

}  // namespace gridvine

#endif  // GRIDVINE_MAPPING_SCHEMA_MAPPING_H_
