#ifndef GRIDVINE_GRIDVINE_MESSAGES_H_
#define GRIDVINE_GRIDVINE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.h"

namespace gridvine {

/// How a query spreads across schemas (paper Section 4): with `kIterative`
/// the issuing peer looks up mapping paths and reformulates by itself; with
/// `kRecursive` successive reformulations are delegated to the intermediate
/// (destination) peers.
enum class ReformulationMode { kIterative, kRecursive };

/// A triple-pattern query travelling to the peer responsible for its routing
/// key. Carried inside a RoutedEnvelope.
struct QueryRequest : MessageBody {
  uint64_t query_id = 0;
  /// Identifies the issuing peer's dispatch branch, echoed in the response;
  /// 0 for branches the issuer does not track (recursive intermediaries,
  /// range multicasts). Lets the reliable query layer retry a branch and
  /// still account duplicate/late answers exactly once.
  uint64_t dispatch_id = 0;
  /// TriplePatternQuery::Serialize() payload.
  std::string query;
  /// Where answers must be sent (the original issuer).
  NodeId reply_to = kInvalidNode;
  /// kRecursive requests are reformulated and re-routed by the destination.
  ReformulationMode mode = ReformulationMode::kIterative;
  /// Remaining reformulation budget (recursive mode).
  int ttl = 0;
  /// Schemas already covered on this branch (recursive mode, loop guard).
  std::vector<std::string> visited_schemas;
  /// Number of mappings applied so far to derive this query.
  int mapping_path_len = 0;
  /// Product of applied mapping confidences.
  double confidence = 1.0;
  /// Restrict recursive reformulation to sound mapping directions.
  bool sound_only = false;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.query");
    return t;
  }
  size_t SizeBytes() const override {
    size_t n = 48 + query.size();
    for (const auto& s : visited_schemas) n += s.size() + 2;
    return n;
  }
};

/// Answer rows flowing straight back to the issuer.
struct QueryResponse : MessageBody {
  uint64_t query_id = 0;
  /// Echo of QueryRequest::dispatch_id (0 when the request carried none).
  uint64_t dispatch_id = 0;
  /// Schema the answering data was expressed in.
  std::string schema;
  /// SerializeBindings() payload.
  std::string rows;
  int mapping_path_len = 0;
  double confidence = 1.0;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.query_resp");
    return t;
  }
  size_t SizeBytes() const override {
    return 32 + schema.size() + rows.size();
  }
};

/// A batch of constant-bound probes for one pattern, travelling to the peer
/// responsible for the batch's routing key (bind-join pushdown). The
/// destination substitutes each probe into the pattern, matches its local
/// store, and answers with the free-variable bindings per probe — so the
/// wire carries the running join's distinct keys and its matches, never the
/// pattern's full extent.
struct BoundScanRequest : MessageBody {
  /// The issuing executor instance (unique per conjunctive query run).
  uint64_t exec_id = 0;
  /// Identifies the issuing peer's dispatch branch, echoed in the response;
  /// lets the issuer retry a branch and account duplicates exactly once.
  uint64_t dispatch_id = 0;
  /// TriplePattern::Serialize() payload.
  std::string pattern;
  /// SerializeBindings() payload: the probe rows, deduplicated by the
  /// issuer. Row order defines the probe indexes echoed back.
  std::string probes;
  /// Where the answer must be sent (the original issuer).
  NodeId reply_to = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.bound_scan");
    return t;
  }
  size_t SizeBytes() const override {
    return 32 + pattern.size() + probes.size();
  }
};

/// Free-variable binding rows flowing back to the issuer, each tagged with
/// the probe (index into BoundScanRequest::probes) it extends.
struct BoundScanResponse : MessageBody {
  uint64_t exec_id = 0;
  uint64_t dispatch_id = 0;
  /// SerializeBindings() payload: one row of free-variable bindings per
  /// match (possibly empty bindings when the bound pattern had no free
  /// variables — the existence-check case).
  std::string rows;
  /// Parallel to the rows: which probe each row answers.
  std::vector<uint32_t> probe_index;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.bound_scan_resp");
    return t;
  }
  size_t SizeBytes() const override {
    return 32 + rows.size() + 4 * probe_index.size();
  }
};

/// Asks the peer responsible for a key region for its statistics sketch
/// (query/stats/sketch.h). Sent by an issuer planning a conjunctive query
/// whose cached sketch for that region is missing or past its staleness
/// bound; one attempt, no retries — an unanswered request just leaves the
/// planner on the greedy rank for that region's patterns.
struct StatsRequest : MessageBody {
  /// Identifies the issuer's open request (echoed in the StatsRecord).
  uint64_t req_id = 0;
  /// Where the record must be sent (the planning issuer).
  NodeId reply_to = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.stats");
    return t;
  }
  size_t SizeBytes() const override { return 16; }
};

/// One peer's statistics sketch flowing back to the issuer, published
/// alongside the index entries it summarizes (same key region).
struct StatsRecord : MessageBody {
  uint64_t req_id = 0;
  /// StoreSketch::Serialize() payload.
  std::string sketch;
  /// TripleStore::version() the sketch was built at.
  uint64_t store_version = 0;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("gv.stats_resp");
    return t;
  }
  size_t SizeBytes() const override { return 24 + sketch.size(); }
};

}  // namespace gridvine

#endif  // GRIDVINE_GRIDVINE_MESSAGES_H_
