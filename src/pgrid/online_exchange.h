#ifndef GRIDVINE_PGRID_ONLINE_EXCHANGE_H_
#define GRIDVINE_PGRID_ONLINE_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "pgrid/pgrid_peer.h"
#include "sim/simulator.h"

namespace gridvine {

/// P-Grid construction running over the simulated network itself (the
/// message-driven counterpart of ExchangeProtocol, which manipulates peers
/// out-of-band). Each agent periodically:
///
///   1. samples a uniform-ish random partner with a TTL random walk over the
///      current routing links (bootstrapped by a seed contact list);
///   2. runs a three-message exchange transaction with the partner:
///
///        Hello(path_A, load_A)  ->
///        Reply(path_B, action, entries_for_A, refs gossip)  <-
///        Commit(entries_for_B)  ->
///
///      where `action` is the case analysis of the CoopIS'01 algorithm:
///      identical paths split (when jointly overloaded) or replicate;
///      prefix-related paths make the shorter peer specialize; divergent
///      paths exchange refs. Data drains to whichever side is responsible.
///
/// Combined with MaintenanceAgent, a network bootstrapped this way becomes a
/// fully working overlay with no out-of-band steps.
class OnlineExchangeAgent {
 public:
  struct Options {
    /// Seconds between initiated encounters.
    SimTime period = 10.0;
    /// Random-walk length for partner sampling.
    int walk_ttl = 5;
    /// A pair with identical paths splits when it jointly holds more than
    /// this many entries (and the key depth allows).
    size_t max_local_keys = 64;
    /// Give up on a transaction after this long.
    SimTime transaction_timeout = 10.0;
  };

  OnlineExchangeAgent(Simulator* sim, PGridPeer* peer, Rng rng,
                      Options options);

  /// Peers known before the overlay exists (the bootstrap list); the random
  /// walk starts from these until routing links develop.
  void AddSeedContact(NodeId id);

  void Start();
  void Stop() { running_ = false; }

  /// Initiates one encounter immediately (tests).
  void InitiateEncounter();

  struct Stats {
    uint64_t encounters_started = 0;
    uint64_t splits = 0;
    uint64_t replications = 0;
    uint64_t specializations = 0;
    uint64_t ref_exchanges = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Handles one protocol message; returns false if `body` is not an
  /// exchange-protocol message. Wired through the peer's extension handler
  /// by the owner (see tests) or used standalone.
  bool OnMessage(NodeId from, const MessageBody& body);

 private:
  void ScheduleNext();
  /// Picks a random contact for walking (seed list + routing links).
  std::vector<NodeId> KnownContacts() const;
  void ApplyEntries(const std::vector<std::pair<std::string, std::string>>&);
  /// Entries this peer holds but should belong to a peer with `their_path`.
  std::vector<std::pair<std::string, std::string>> EvictEntriesFor(
      const Key& their_path);

  Simulator* sim_;
  PGridPeer* peer_;
  Rng rng_;
  Options options_;
  bool running_ = false;
  std::vector<NodeId> seeds_;
  uint64_t next_txn_ = 1;
  Stats stats_;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_ONLINE_EXCHANGE_H_
