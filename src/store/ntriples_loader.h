#ifndef GRIDVINE_STORE_NTRIPLES_LOADER_H_
#define GRIDVINE_STORE_NTRIPLES_LOADER_H_

#include <string>

#include "common/result.h"
#include "store/triple_store.h"

namespace gridvine {

/// Parses an N-Triples document and bulk-loads it into `store` via
/// TripleStore::InsertBatch (one capacity reservation for the whole
/// document). Fails without touching the store when the document is
/// malformed. Returns the number of parsed triples (duplicates included;
/// the store deduplicates).
Result<size_t> LoadNTriples(const std::string& text, TripleStore* store);

}  // namespace gridvine

#endif  // GRIDVINE_STORE_NTRIPLES_LOADER_H_
