#ifndef GRIDVINE_QUERY_PLANNER_H_
#define GRIDVINE_QUERY_PLANNER_H_

#include <vector>

#include "query/query.h"

namespace gridvine {

/// How cheaply (and how selectively) one triple pattern can be resolved in
/// the distributed engine, best first. The ordering doubles as a selectivity
/// estimate: an exact subject names one resource; an exact object value is
/// rarer than a predicate shared by a whole relation; a range ("abc%")
/// multicast costs more than any single lookup; a pattern with no routable
/// constant cannot start a conjunction at all.
enum class PatternCost {
  kExactSubject = 0,
  kExactObject = 1,
  kExactPredicate = 2,
  kRange = 3,
  kUnroutable = 4,
};

/// Classifies one pattern.
PatternCost ClassifyPattern(const TriplePattern& pattern);

/// Execution order for a conjunctive query's patterns: cheapest/most
/// selective first, with the constraint that every pattern after the first
/// shares a variable with some earlier pattern where possible (keeps the
/// running join bounded instead of building cross products). Returns indexes
/// into `query.patterns()`.
std::vector<size_t> PlanConjunctive(const ConjunctiveQuery& query);

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_PLANNER_H_
