#ifndef GRIDVINE_RDF_TERM_H_
#define GRIDVINE_RDF_TERM_H_

#include <ostream>
#include <string>

namespace gridvine {

/// Kind of an RDF term as used in triples and triple patterns.
enum class TermKind {
  kUri,      ///< Resource identifier, e.g. "EMBL#Organism" or "gv://0110/ab12#seq1".
  kLiteral,  ///< A value, e.g. "Aspergillus niger".
  kVariable, ///< A query variable, e.g. "?x" (patterns only, never in triples).
};

/// An RDF term: a tagged string. Immutable value type.
class Term {
 public:
  /// Default-constructed term is the empty literal (needed for containers).
  Term() : kind_(TermKind::kLiteral) {}

  static Term Uri(std::string value) {
    return Term(TermKind::kUri, std::move(value));
  }
  static Term Literal(std::string value) {
    return Term(TermKind::kLiteral, std::move(value));
  }
  /// `name` without the leading '?'.
  static Term Var(std::string name) {
    return Term(TermKind::kVariable, std::move(name));
  }

  TermKind kind() const { return kind_; }
  bool IsUri() const { return kind_ == TermKind::kUri; }
  bool IsLiteral() const { return kind_ == TermKind::kLiteral; }
  bool IsVariable() const { return kind_ == TermKind::kVariable; }
  /// A constant is anything that is not a variable.
  bool IsConstant() const { return !IsVariable(); }

  /// The URI, literal value, or variable name (without '?').
  const std::string& value() const { return value_; }

  /// Human-readable form: <uri>, "literal", or ?var.
  std::string ToString() const;

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && value_ == other.value_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    return value_ < other.value_;
  }

 private:
  Term(TermKind kind, std::string value)
      : kind_(kind), value_(std::move(value)) {}

  TermKind kind_;
  std::string value_;
};

inline std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

}  // namespace gridvine

#endif  // GRIDVINE_RDF_TERM_H_
