#include "query/query.h"

#include <algorithm>

#include "schema/schema.h"

namespace gridvine {

Status TriplePatternQuery::Validate() const {
  if (distinguished_var_.empty()) {
    return Status::InvalidArgument("empty distinguished variable");
  }
  auto vars = pattern_.Variables();
  if (std::find(vars.begin(), vars.end(), distinguished_var_) == vars.end()) {
    return Status::InvalidArgument("distinguished variable ?" +
                                   distinguished_var_ +
                                   " not in pattern " + pattern_.ToString());
  }
  return Status::OK();
}

std::string TriplePatternQuery::SchemaName() const {
  if (!pattern_.predicate().IsUri()) return "";
  return Schema::SchemaOfUri(pattern_.predicate().value());
}

std::string TriplePatternQuery::Serialize() const {
  return distinguished_var_ + "\x1e" + pattern_.Serialize();
}

Result<TriplePatternQuery> TriplePatternQuery::Parse(const std::string& data) {
  size_t sep = data.find('\x1e');
  if (sep == std::string::npos) {
    return Status::Corruption("missing query separator");
  }
  GV_ASSIGN_OR_RETURN(TriplePattern pattern,
                      TriplePattern::Parse(data.substr(sep + 1)));
  TriplePatternQuery q(data.substr(0, sep), std::move(pattern));
  GV_RETURN_NOT_OK(q.Validate());
  return q;
}

Status ConjunctiveQuery::Validate() const {
  if (patterns_.empty()) {
    return Status::InvalidArgument("conjunctive query has no patterns");
  }
  if (distinguished_vars_.empty()) {
    return Status::InvalidArgument("no distinguished variables");
  }
  for (const auto& var : distinguished_vars_) {
    bool found = false;
    for (const auto& p : patterns_) {
      auto vars = p.Variables();
      if (std::find(vars.begin(), vars.end(), var) != vars.end()) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("distinguished variable ?" + var +
                                     " not bound by any pattern");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "SearchFor(";
  for (size_t i = 0; i < distinguished_vars_.size(); ++i) {
    if (i) out += ", ";
    out += distinguished_vars_[i] + "?";
  }
  out += " : ";
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i) out += " AND ";
    out += patterns_[i].ToString();
  }
  return out + ")";
}

}  // namespace gridvine
