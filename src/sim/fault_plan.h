#ifndef GRIDVINE_SIM_FAULT_PLAN_H_
#define GRIDVINE_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace gridvine {

using NodeId = uint32_t;  // mirrors sim/network.h (kept header-light)

/// Why a message was dropped; drives the attribution counters in
/// NetworkStats so experiments can tell "the peer was dead" apart from
/// "the wire ate it".
enum class DropCause : uint8_t {
  kEndpoint,   ///< sender/destination dead or unknown (send or delivery time)
  kLoss,       ///< the network's base independent loss probability
  kBurstLoss,  ///< a FaultPlan loss-burst window
  kPartition,  ///< a FaultPlan partition separated the endpoints
};

/// Deterministic fault injection layered on top of Network's base loss and
/// node liveness. A plan is a set of *timed windows* — loss bursts,
/// bidirectional partitions, latency spikes — plus a whole-run duplication
/// probability. All randomness is drawn from the Network's own seeded Rng in
/// a fixed consultation order, so a faulted run replays bit-identically from
/// its seed; the windows themselves are plain data and can be generated from
/// a seed too (see tests/fault_harness.h).
///
/// Hot-path contract: consultation performs no heap allocation and, when no
/// window covers `now` and no duplication is configured, draws nothing from
/// the Rng — installing an empty plan does not perturb a seeded run.
class FaultPlan {
 public:
  /// Elevated independent loss inside [start, end): each message crossing
  /// the window is additionally dropped with `probability`.
  struct LossBurst {
    SimTime start = 0;
    SimTime end = 0;
    double probability = 1.0;
  };

  /// Bidirectional partition inside [start, end): messages with one endpoint
  /// in `group_a` and the other in `group_b` are dropped both ways. Nodes in
  /// neither group are unaffected.
  struct Partition {
    SimTime start = 0;
    SimTime end = 0;
    std::vector<NodeId> group_a;
    std::vector<NodeId> group_b;
  };

  /// Extra one-way latency inside [start, end): every delivery scheduled in
  /// the window picks up `extra` seconds plus an exponential tail of mean
  /// `extra_mean_tail` (0 disables the tail).
  struct LatencySpike {
    SimTime start = 0;
    SimTime end = 0;
    SimTime extra = 0.5;
    SimTime extra_mean_tail = 0;
  };

  void AddLossBurst(const LossBurst& burst) { bursts_.push_back(burst); }
  void AddPartition(const Partition& partition);
  void AddLatencySpike(const LatencySpike& spike) { spikes_.push_back(spike); }

  /// Each non-dropped message is delivered a second time with this
  /// probability (an independent latency sample; the copy can still die at
  /// delivery time). Models the duplicate delivery UDP permits.
  void set_duplicate_probability(double p) { duplicate_probability_ = p; }
  double duplicate_probability() const { return duplicate_probability_; }

  /// Fault verdict for one message at send time. Checks partitions first
  /// (deterministic, no Rng draw), then loss bursts (one Bernoulli draw per
  /// covering window, in insertion order). Returns true and sets `*cause`
  /// if the plan drops the message.
  ///
  /// The SmallRng overloads serve the sharded engine, which consults one
  /// shared plan from every shard with per-node random streams; the plan's
  /// own state is read-only after setup, so concurrent consultation is safe.
  bool ShouldDrop(SimTime now, NodeId from, NodeId to, Rng* rng,
                  DropCause* cause) const;
  bool ShouldDrop(SimTime now, NodeId from, NodeId to, SmallRng* rng,
                  DropCause* cause) const;

  /// One duplication decision (only calls the Rng when the probability is
  /// non-zero).
  bool ShouldDuplicate(Rng* rng) const;
  bool ShouldDuplicate(SmallRng* rng) const;

  /// Extra latency at `now` (0 outside every spike window). Draws from the
  /// Rng only for spikes with a configured tail.
  SimTime ExtraLatency(SimTime now, Rng* rng) const;
  SimTime ExtraLatency(SimTime now, SmallRng* rng) const;

  size_t loss_bursts() const { return bursts_.size(); }
  size_t partitions() const { return partitions_.size(); }
  size_t latency_spikes() const { return spikes_.size(); }

 private:
  bool PartitionDrop(SimTime now, NodeId from, NodeId to,
                     DropCause* cause) const;

  /// Partition with O(1) membership: side_[id] is 1 (group_a), 2 (group_b)
  /// or 0 (unaffected); ids beyond the vector are unaffected.
  struct PartitionSpec {
    SimTime start;
    SimTime end;
    std::vector<uint8_t> side;
  };

  std::vector<LossBurst> bursts_;
  std::vector<PartitionSpec> partitions_;
  std::vector<LatencySpike> spikes_;
  double duplicate_probability_ = 0.0;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_FAULT_PLAN_H_
