#ifndef GRIDVINE_STORE_TRIPLE_STORE_H_
#define GRIDVINE_STORE_TRIPLE_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/triple.h"
#include "rdf/triple_pattern.h"

namespace gridvine {

/// One set of variable bindings produced by pattern matching, e.g.
/// {x -> <gv://.../seq1>}. Ordered map so join keys are canonical.
using BindingSet = std::map<std::string, Term>;

/// The local database DB_p of a GridVine peer (paper Section 2.2): a triple
/// relation with physical schema (subject, predicate, object) and hash
/// indexes on each attribute, supporting the three relational operators the
/// paper names — selection σ (with SQL-LIKE '%' patterns on literals),
/// projection π, and (self-)join ⋈.
class TripleStore {
 public:
  TripleStore() = default;

  /// Inserts a triple; duplicates are ignored. Fails on invalid triples.
  Status Insert(const Triple& t);

  /// Removes a triple; true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const;
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  void Clear();

  /// Selection σ: all triples matching the pattern's constants. Uses the
  /// most selective exact-constant index and filters the remainder
  /// (including '%' LIKE predicates on literal objects).
  std::vector<Triple> Select(const TriplePattern& pattern) const;

  /// Pattern matching: σ followed by binding extraction for the pattern's
  /// variables — the building block for π and ⋈.
  std::vector<BindingSet> MatchPattern(const TriplePattern& pattern) const;

  /// Projection π: the values bound to `var`, deduplicated, sorted.
  std::vector<Term> Project(const std::vector<BindingSet>& bindings,
                            const std::string& var) const;

  /// Natural join ⋈ of two binding lists on their shared variables (hash
  /// join). With no shared variables this is a cross product.
  static std::vector<BindingSet> Join(const std::vector<BindingSet>& left,
                                      const std::vector<BindingSet>& right);

  /// All distinct predicates present (used by schema/statistics code).
  std::vector<Term> DistinctPredicates() const;

  /// All distinct object values observed for `predicate` (used by the
  /// set-distance attribute matcher).
  std::set<std::string> ObjectValuesFor(const std::string& predicate_uri) const;

  /// Whole content (stable iteration for serialization / tests).
  std::vector<Triple> All() const;

 private:
  /// Scan candidates by an exact index, or everything.
  std::vector<uint32_t> CandidateIds(const TriplePattern& pattern) const;

  std::vector<Triple> triples_;          // slot list; erased slots tombstoned
  std::vector<bool> live_;               // parallel to triples_
  std::set<Triple> present_;             // dedup + Contains
  std::unordered_multimap<std::string, uint32_t> by_subject_;
  std::unordered_multimap<std::string, uint32_t> by_predicate_;
  std::unordered_multimap<std::string, uint32_t> by_object_;
  size_t live_count_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_STORE_TRIPLE_STORE_H_
