#ifndef GRIDVINE_COMMON_RNG_H_
#define GRIDVINE_COMMON_RNG_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace gridvine {

/// Deterministic random source used throughout the simulator. Every component
/// takes its Rng (or a seed) explicitly so whole-network experiments are
/// reproducible bit-for-bit from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
  }

  /// Log-normal sample with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential sample with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Zipf-distributed rank in [0, n): P(k) ∝ 1/(k+1)^s. Inverse-CDF over a
  /// lazily built table would be faster; rejection-free linear scan is fine
  /// for the n (tens to thousands) used in workload generation.
  size_t Zipf(size_t n, double s) {
    assert(n > 0);
    double norm = 0;
    for (size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
    double u = UniformDouble(0.0, norm);
    double acc = 0;
    for (size_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(double(k), s);
      if (u <= acc) return k - 1;
    }
    return n - 1;
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& PickOne(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<size_t>(UniformInt(0, int64_t(v.size()) - 1))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Derives an independent child generator; used to give each peer its own
  /// stream so adding a peer does not perturb the others' randomness.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_RNG_H_
