// Event-engine & transport microbenchmark: events/sec through the scheduler,
// messages/sec through the transport on a delivery-heavy relay workload, and
// heap allocations per send+delivery.
//
// The PRE-overhaul engine is reproduced in this binary as a baseline
// ("legacy"): a std::priority_queue<Event> holding std::function callbacks
// (copied out on pop — top() is const), a transport that schedules each
// delivery as a heap-allocated capturing lambda, and per-type stats keyed by
// freshly built std::string tags. The overhauled engine is the real
// gridvine::Simulator/Network. Same workloads, same latency model; the relay
// workloads forward a pre-built body so per-hop work is pure engine —
// the measured difference is the engine.
//
//   $ ./bench/bench_sim_micro
//   GV_BENCH_QUICK=1 shrinks iteration counts to a CI smoke run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_json.h"
#include "common/trace.h"
#include "pgrid/messages.h"
#include "sim/network.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

using namespace gridvine;

// --- Allocation counter (this binary only) -----------------------------------

namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- The pre-overhaul engine, reproduced -------------------------------------

class LegacySimulator {
 public:
  void Schedule(double delay, std::function<void()> fn) {
    if (delay < 0) delay = 0;
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }
  size_t Run() {
    size_t ran = 0;
    while (!queue_.empty()) {
      Event ev = queue_.top();  // the seed's copy-on-pop
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++ran;
    }
    return ran;
  }
  double Now() const { return now_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  double now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

struct LegacyBody {
  virtual ~LegacyBody() = default;
  virtual std::string TypeTag() const = 0;
  virtual size_t SizeBytes() const { return 64; }
};

class LegacyNetwork {
 public:
  using Handler =
      std::function<void(uint32_t, std::shared_ptr<const LegacyBody>)>;

  explicit LegacyNetwork(LegacySimulator* sim, double latency)
      : sim_(sim), latency_(latency) {}

  uint32_t AddNode(Handler h) {
    nodes_.push_back(std::move(h));
    return uint32_t(nodes_.size() - 1);
  }

  void Send(uint32_t from, uint32_t to,
            std::shared_ptr<const LegacyBody> body) {
    ++messages_sent_;
    bytes_sent_ += body->SizeBytes();
    ++messages_by_type_[body->TypeTag()];
    sim_->Schedule(latency_, [this, from, to, body = std::move(body)]() {
      ++messages_delivered_;
      nodes_[to](from, body);
    });
  }

  uint64_t delivered() const { return messages_delivered_; }

 private:
  LegacySimulator* sim_;
  double latency_;
  std::vector<Handler> nodes_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
  std::unordered_map<std::string, uint64_t> messages_by_type_;
};

// --- Workload messages -------------------------------------------------------

struct RelayMsg : MessageBody {
  explicit RelayMsg(int r) : remaining(r) {}
  int remaining;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("bench.relay");
    return t;
  }
  size_t SizeBytes() const override { return 20; }
};

struct LegacyRelayMsg : LegacyBody {
  explicit LegacyRelayMsg(int r) : remaining(r) {}
  int remaining;
  std::string TypeTag() const override { return "bench.relay"; }
  size_t SizeBytes() const override { return 20; }
};

/// The seed's routed wrapper, faithfully: TypeTag() concatenates the inner
/// tag per call — this is what src/pgrid/messages.h:87 did on EVERY routed
/// send before the overhaul.
struct LegacyEnvelope : LegacyBody {
  std::shared_ptr<const LegacyBody> payload;
  std::string TypeTag() const override {
    return "pgrid.routed/" + (payload ? payload->TypeTag() : "null");
  }
  size_t SizeBytes() const override {
    return 16 + (payload ? payload->SizeBytes() : 0);
  }
};

/// Real-engine relay node: forwards the SAME body around the ring until the
/// shared forward budget is spent. No per-hop body construction — the relay
/// workloads measure the engine (schedule, heap ops, delivery dispatch, type
/// accounting), not the application's message building.
class RelayNode : public NetworkNode {
 public:
  Network* net = nullptr;
  NodeId self = 0;
  NodeId next = 0;
  size_t* budget = nullptr;
  void OnMessage(NodeId, std::shared_ptr<const MessageBody> body) override {
    if (*budget > 0) {
      --*budget;
      net->Send(self, next, std::move(body));
    }
  }
};

// --- Workload drivers --------------------------------------------------------

/// Timer workload: `fanout` concurrent self-rescheduling timers, `total`
/// events altogether. Returns events/sec.
double TimerEventsPerSecNew(size_t fanout, size_t total) {
  Simulator sim;
  size_t fired = 0;
  struct Timer {
    Simulator* sim;
    size_t* fired;
    size_t total;
    void operator()() {
      if (++*fired < total) sim->Schedule(1.0, Timer{sim, fired, total});
    }
  };
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < fanout; ++i) {
    sim.Schedule(1.0 + double(i) * 1e-6, Timer{&sim, &fired, total});
  }
  sim.Run();
  return double(fired) / SecondsSince(t0);
}

double TimerEventsPerSecLegacy(size_t fanout, size_t total) {
  LegacySimulator sim;
  size_t fired = 0;
  struct Timer {
    LegacySimulator* sim;
    size_t* fired;
    size_t total;
    void operator()() {
      if (++*fired < total) sim->Schedule(1.0, Timer{sim, fired, total});
    }
  };
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < fanout; ++i) {
    sim.Schedule(1.0 + double(i) * 1e-6, Timer{&sim, &fired, total});
  }
  sim.Run();
  return double(fired) / SecondsSince(t0);
}

/// Tracer states for the overhead rows: the observability bar is that an
/// attached-but-disabled tracer costs nothing measurable on the hot path
/// (run_bench.sh gates the disabled overhead at 3%), and an enabled one
/// costs only its ring writes.
enum class TraceMode { kNoTracer, kDisabled, kEnabled };

/// Delivery workload: `chains` concurrent relay chains around a `peers`-node
/// ring, each `hops` messages long. Returns messages/sec (wall clock).
double RelayMessagesPerSecNew(size_t peers, size_t chains, int hops,
                              TraceMode tm = TraceMode::kNoTracer) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.001), Rng(1));
  Tracer tracer;
  if (tm != TraceMode::kNoTracer) net.SetTracer(&tracer);
  if (tm == TraceMode::kEnabled) tracer.Enable(1 << 16);
  size_t budget = chains * size_t(hops - 1);
  std::vector<RelayNode> nodes(peers);
  for (size_t i = 0; i < peers; ++i) {
    NodeId id = net.AddNode(&nodes[i]);
    nodes[i].net = &net;
    nodes[i].self = id;
    nodes[i].budget = &budget;
  }
  for (size_t i = 0; i < peers; ++i) nodes[i].next = NodeId((i + 1) % peers);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < chains; ++c) {
    net.Send(NodeId(c % peers), NodeId((c + 1) % peers),
             std::make_shared<RelayMsg>(0));
  }
  sim.Run();
  return double(net.stats().messages_delivered) / SecondsSince(t0);
}

double RelayMessagesPerSecLegacy(size_t peers, size_t chains, int hops) {
  LegacySimulator sim;
  LegacyNetwork net(&sim, 0.001);
  size_t budget = chains * size_t(hops - 1);
  std::vector<uint32_t> next(peers);
  for (size_t i = 0; i < peers; ++i) {
    net.AddNode([&net, &next, &budget, i](
                    uint32_t, std::shared_ptr<const LegacyBody> body) {
      if (budget > 0) {
        --budget;
        net.Send(uint32_t(i), next[i], std::move(body));
      }
    });
  }
  for (size_t i = 0; i < peers; ++i) next[i] = uint32_t((i + 1) % peers);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < chains; ++c) {
    net.Send(uint32_t(c % peers), uint32_t((c + 1) % peers),
             std::make_shared<LegacyRelayMsg>(0));
  }
  sim.Run();
  return double(net.delivered()) / SecondsSince(t0);
}

/// Routed-envelope relay: the experiments' real traffic shape. Every send
/// carries a RoutedEnvelope, so per-type accounting resolves the composite
/// tag on every hop: interned wrapper/inner id (new engine) vs string
/// concatenation "pgrid.routed/" + inner plus a string-keyed map bump
/// (legacy — the seed's RoutedEnvelope::TypeTag did exactly this per send).
double RoutedRelayMessagesPerSecNew(size_t peers, size_t chains, int hops) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.001), Rng(1));
  size_t budget = chains * size_t(hops - 1);
  std::vector<RelayNode> nodes(peers);
  for (size_t i = 0; i < peers; ++i) {
    nodes[i].self = net.AddNode(&nodes[i]);
    nodes[i].net = &net;
    nodes[i].budget = &budget;
  }
  for (size_t i = 0; i < peers; ++i) nodes[i].next = NodeId((i + 1) % peers);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < chains; ++c) {
    auto env = std::make_shared<RoutedEnvelope>();
    env->payload = std::make_shared<RelayMsg>(0);
    net.Send(NodeId(c % peers), NodeId((c + 1) % peers), std::move(env));
  }
  sim.Run();
  return double(net.stats().messages_delivered) / SecondsSince(t0);
}

double RoutedRelayMessagesPerSecLegacy(size_t peers, size_t chains, int hops) {
  LegacySimulator sim;
  LegacyNetwork net(&sim, 0.001);
  size_t budget = chains * size_t(hops - 1);
  std::vector<uint32_t> next(peers);
  for (size_t i = 0; i < peers; ++i) {
    net.AddNode([&net, &next, &budget, i](
                    uint32_t, std::shared_ptr<const LegacyBody> body) {
      if (budget > 0) {
        --budget;
        net.Send(uint32_t(i), next[i], std::move(body));
      }
    });
  }
  for (size_t i = 0; i < peers; ++i) next[i] = uint32_t((i + 1) % peers);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < chains; ++c) {
    auto env = std::make_shared<LegacyEnvelope>();
    env->payload = std::make_shared<LegacyRelayMsg>(0);
    net.Send(uint32_t(c % peers), uint32_t((c + 1) % peers), std::move(env));
  }
  sim.Run();
  return double(net.delivered()) / SecondsSince(t0);
}

/// Sharded-engine relay: the same ring shape on the parallel engine, hops
/// counted down inside the message (worker threads cannot share a budget
/// counter). Ring neighbours alternate owner shards, so with shards=2 every
/// hop crosses a shard boundary — the worst case for the lane/mailbox
/// tracing path. The engine's default state (per-shard rings constructed but
/// inert) is the untraced baseline; `enabled` turns the rings on.
struct CountdownRelayNode : NetworkNode {
  Network* net = nullptr;
  NodeId self = 0;
  NodeId next = 0;
  void OnMessage(NodeId, std::shared_ptr<const MessageBody> body) override {
    const auto* m = static_cast<const RelayMsg*>(body.get());
    if (m->remaining > 0)
      net->Send(self, next, std::make_shared<RelayMsg>(m->remaining - 1));
  }
};

double ShardedRelayMessagesPerSec(uint32_t shards, size_t peers, size_t chains,
                                  int hops, bool enabled) {
  ShardedNetwork::Options so;
  so.shards = shards;
  so.seed = 1;
  so.latency = std::make_unique<ConstantLatency>(0.001);
  ShardedNetwork engine(std::move(so));
  if (enabled) engine.EnableTracing(/*capacity_per_shard=*/1 << 16);
  std::vector<CountdownRelayNode> nodes(peers);
  for (size_t i = 0; i < peers; ++i) {
    nodes[i].net = engine.LaneForNext();
    nodes[i].self = engine.AddNode(&nodes[i]);
  }
  for (size_t i = 0; i < peers; ++i) nodes[i].next = NodeId((i + 1) % peers);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < chains; ++c) {
    NodeId from = NodeId(c % peers);
    engine.ScheduleForNode(from, 0.0, [&nodes, from, hops] {
      nodes[from].net->Send(from, nodes[from].next,
                            std::make_shared<RelayMsg>(hops - 1));
    });
  }
  engine.RunUntilIdle();
  return double(engine.AggregateStats().messages_delivered) / SecondsSince(t0);
}

/// Allocations per send+delivery, message bodies pre-built outside the
/// counted window (the engine contract is zero allocations beyond the body).
double AllocsPerMessageNew(size_t count) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.001), Rng(1));
  struct Sink : NetworkNode {
    size_t got = 0;
    void OnMessage(NodeId, std::shared_ptr<const MessageBody>) override {
      ++got;
    }
  };
  Sink sink;
  NodeId a = net.AddNode(&sink);
  NodeId b = net.AddNode(&sink);
  for (size_t i = 0; i < count; ++i)
    net.Send(a, b, std::make_shared<RelayMsg>(0));  // warm-up
  sim.Run();
  std::vector<std::shared_ptr<const MessageBody>> bodies;
  for (size_t i = 0; i < count; ++i)
    bodies.push_back(std::make_shared<RelayMsg>(0));
  size_t before = g_alloc_count;
  for (auto& body : bodies) net.Send(a, b, std::move(body));
  sim.Run();
  return double(g_alloc_count - before) / double(count);
}

double AllocsPerMessageLegacy(size_t count) {
  LegacySimulator sim;
  LegacyNetwork net(&sim, 0.001);
  size_t got = 0;
  uint32_t a = net.AddNode(
      [&got](uint32_t, std::shared_ptr<const LegacyBody>) { ++got; });
  uint32_t b = net.AddNode(
      [&got](uint32_t, std::shared_ptr<const LegacyBody>) { ++got; });
  for (size_t i = 0; i < count; ++i)
    net.Send(a, b, std::make_shared<LegacyRelayMsg>(0));  // warm-up
  sim.Run();
  std::vector<std::shared_ptr<const LegacyBody>> bodies;
  for (size_t i = 0; i < count; ++i)
    bodies.push_back(std::make_shared<LegacyRelayMsg>(0));
  size_t before = g_alloc_count;
  for (auto& body : bodies) net.Send(a, b, std::move(body));
  sim.Run();
  return double(g_alloc_count - before) / double(count);
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_sim_micro");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;

  const size_t kTimerFanout = 1024;
  const size_t kTimerEvents = quick ? 100'000 : 4'000'000;
  const size_t kRelayPeers = 256;
  const size_t kRelayChains = 1024;
  const int kRelayHops = quick ? 100 : 2000;
  const size_t kAllocMsgs = quick ? 10'000 : 100'000;

  std::printf("sim-micro: event engine & transport hot path%s\n\n",
              quick ? " (quick)" : "");

  // Interleave repetitions and keep the best of 3 to damp scheduler noise.
  auto best3 = [](auto fn) {
    double best = 0;
    for (int i = 0; i < 3; ++i) best = std::max(best, fn());
    return best;
  };

  double ev_new =
      best3([&] { return TimerEventsPerSecNew(kTimerFanout, kTimerEvents); });
  double ev_old = best3(
      [&] { return TimerEventsPerSecLegacy(kTimerFanout, kTimerEvents); });
  std::printf("  timer events/sec     new %12.0f   legacy %12.0f   (%.2fx)\n",
              ev_new, ev_old, ev_new / ev_old);

  double msg_new = best3([&] {
    return RelayMessagesPerSecNew(kRelayPeers, kRelayChains, kRelayHops);
  });
  double msg_old = best3([&] {
    return RelayMessagesPerSecLegacy(kRelayPeers, kRelayChains, kRelayHops);
  });
  std::printf("  relay messages/sec   new %12.0f   legacy %12.0f   (%.2fx)\n",
              msg_new, msg_old, msg_new / msg_old);

  double rmsg_new = best3([&] {
    return RoutedRelayMessagesPerSecNew(kRelayPeers, kRelayChains, kRelayHops);
  });
  double rmsg_old = best3([&] {
    return RoutedRelayMessagesPerSecLegacy(kRelayPeers, kRelayChains,
                                           kRelayHops);
  });
  std::printf("  routed messages/sec  new %12.0f   legacy %12.0f   (%.2fx)\n",
              rmsg_new, rmsg_old, rmsg_new / rmsg_old);

  double alloc_new = AllocsPerMessageNew(kAllocMsgs);
  double alloc_old = AllocsPerMessageLegacy(kAllocMsgs);
  std::printf("  allocs/send+deliver  new %12.2f   legacy %12.2f\n",
              alloc_new, alloc_old);

  // Tracing overhead on the relay hot path. run_bench.sh gates the disabled
  // overhead at 3% on full runs: an attached-but-disabled tracer must be one
  // dead branch per send, never a tax on untraced runs. The three states get
  // their own interleaved baseline — comparing against msg_new (measured
  // much earlier, cold) would bias the ratio.
  // Paired repetitions: each rep measures the three states back-to-back and
  // contributes one overhead ratio, and the gate reads the median ratio —
  // machine jitter spanning adjacent windows cancels out of a ratio, and the
  // median sheds the reps where it did not.
  const int kOverheadHops = quick ? 100 : 4000;
  const int kOverheadReps = 5;
  double tr_off = 0, tr_dis = 0, tr_en = 0;
  std::vector<double> dis_ratio, en_ratio;
  for (int i = 0; i < kOverheadReps; ++i) {
    double off = RelayMessagesPerSecNew(kRelayPeers, kRelayChains,
                                        kOverheadHops, TraceMode::kNoTracer);
    double dis = RelayMessagesPerSecNew(kRelayPeers, kRelayChains,
                                        kOverheadHops, TraceMode::kDisabled);
    double en = RelayMessagesPerSecNew(kRelayPeers, kRelayChains,
                                       kOverheadHops, TraceMode::kEnabled);
    tr_off = std::max(tr_off, off);
    tr_dis = std::max(tr_dis, dis);
    tr_en = std::max(tr_en, en);
    dis_ratio.push_back(off / dis);
    en_ratio.push_back(off / en);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double dis_pct = (median(dis_ratio) - 1.0) * 100.0;
  double en_pct = (median(en_ratio) - 1.0) * 100.0;
  std::printf(
      "\n  tracing overhead (relay): disabled %.1f%%  enabled %.1f%%\n",
      dis_pct, en_pct);

  // Sharded variant: every hop crosses a shard boundary, so the enabled run
  // pays the cross-shard end-op mailbox on top of the ring writes.
  const uint32_t kOverheadShards = 2;
  const int kShardedHops = quick ? 50 : 400;
  double sh_off = 0, sh_en = 0;
  std::vector<double> sh_ratio;
  for (int i = 0; i < kOverheadReps; ++i) {
    double off = ShardedRelayMessagesPerSec(kOverheadShards, kRelayPeers,
                                            kRelayChains, kShardedHops, false);
    double en = ShardedRelayMessagesPerSec(kOverheadShards, kRelayPeers,
                                           kRelayChains, kShardedHops, true);
    sh_off = std::max(sh_off, off);
    sh_en = std::max(sh_en, en);
    sh_ratio.push_back(off / en);
  }
  double sh_pct = (median(sh_ratio) - 1.0) * 100.0;
  std::printf("  tracing overhead (sharded relay, %u shards): enabled %.1f%%"
              "  (%.0f -> %.0f msg/s)\n",
              kOverheadShards, sh_pct, sh_off, sh_en);

  json.Add("timer_events", {{"events_per_sec", ev_new},
                            {"events_per_sec_legacy", ev_old},
                            {"speedup", ev_new / ev_old}});
  json.Add("relay_delivery", {{"messages_per_sec", msg_new},
                              {"messages_per_sec_legacy", msg_old},
                              {"speedup", msg_new / msg_old}});
  json.Add("routed_relay_delivery", {{"messages_per_sec", rmsg_new},
                                     {"messages_per_sec_legacy", rmsg_old},
                                     {"speedup", rmsg_new / rmsg_old}});
  json.Add("allocations", {{"allocs_per_message", alloc_new},
                           {"allocs_per_message_legacy", alloc_old}});
  json.Add("tracing_overhead", {{"messages_per_sec_untraced", tr_off},
                                {"messages_per_sec_disabled", tr_dis},
                                {"messages_per_sec_enabled", tr_en},
                                {"disabled_overhead_pct", dis_pct},
                                {"enabled_overhead_pct", en_pct}});
  json.Add("tracing_overhead_sharded",
           {{"shards", double(kOverheadShards)},
            {"messages_per_sec_untraced", sh_off},
            {"messages_per_sec_enabled", sh_en},
            {"enabled_overhead_pct", sh_pct}});
  json.Finish();
  return 0;
}
