// Experiment E2 — P-Grid routing cost (paper Section 2.1):
//
//   "Retrieve(key) is intuitively efficient, i.e., O(log(|Π|)), measured in
//    terms of the number of messages required for resolving a search
//    request, for both balanced and unbalanced trees."
//
// Sweeps the network size from 2^4 to 2^12 peers and measures lookup hop
// counts on (a) a balanced trie with uniform keys and (b) an unbalanced
// (storage-adaptive) trie with heavily skewed keys. Both must scale
// logarithmically.
//
//   $ ./bench/bench_routing

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "common/hash.h"
#include "pgrid/pgrid_builder.h"
#include "pgrid/pgrid_peer.h"

using namespace gridvine;

namespace {

struct Overlay {
  Overlay(size_t n, int key_depth, uint64_t seed)
      : net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(seed)) {
    PGridPeer::Options opts;
    opts.key_depth = key_depth;
    opts.retry.base_timeout = 60.0;
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 131 + i), opts));
      peers.push_back(owned.back().get());
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
};

struct HopStats {
  double mean = 0;
  int max = 0;
  double p99 = 0;
};

/// Inserts `keys` directly at responsible peers, then issues one Retrieve per
/// sampled key from a random peer and collects hop counts.
HopStats MeasureHops(Overlay* o, const std::vector<Key>& keys, Rng* rng,
                     size_t lookups) {
  for (const Key& k : keys) {
    for (auto* p : o->peers) {
      if (p->path().IsPrefixOf(k)) {
        p->InsertLocal(k, "v");
        break;
      }
    }
  }
  std::vector<int> hops;
  for (size_t i = 0; i < lookups; ++i) {
    const Key& k = keys[i % keys.size()];
    PGridPeer* issuer = o->peers[size_t(
        rng->UniformInt(0, int64_t(o->peers.size()) - 1))];
    bool done = false;
    issuer->Retrieve(k, [&](Result<PGridPeer::LookupResult> r) {
      if (r.ok()) hops.push_back(r->hops);
      done = true;
    });
    o->sim.RunUntilFlag(&done);
  }
  HopStats stats;
  if (hops.empty()) return stats;
  std::sort(hops.begin(), hops.end());
  long total = 0;
  for (int h : hops) total += h;
  stats.mean = double(total) / double(hops.size());
  stats.max = hops.back();
  stats.p99 = hops[size_t(0.99 * double(hops.size() - 1))];
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_routing");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const int kKeyDepth = 20;
  const size_t kLookups = quick ? 200 : 2000;
  std::printf("E2: routing hops vs. network size (O(log N) expected)\n\n");
  std::printf("  %-7s %7s | %-25s | %-25s\n", "", "", "balanced trie",
              "adaptive trie, skewed keys");
  std::printf("  %-7s %7s | %7s %7s %7s | %7s %7s %7s\n", "peers", "log2N",
              "mean", "p99", "max", "mean", "p99", "max");

  // Power-of-two sweep, then a 10000-peer configuration — the scale the
  // event-engine overhaul targets (gossip and reformulation fan-out stay
  // interesting only if plain routing is cheap there).
  std::vector<size_t> sizes;
  for (int exp = 4; exp <= (quick ? 6 : 12); ++exp) {
    sizes.push_back(size_t(1) << exp);
  }
  if (!quick) sizes.push_back(10000);

  int seed_salt = 0;
  for (size_t n : sizes) {
    ++seed_salt;

    // (a) Balanced trie, uniform keys.
    Overlay balanced(n, kKeyDepth, 1);
    Rng rng_b(17);
    PGridBuilder::BuildBalanced(balanced.peers, &rng_b);
    std::vector<Key> uniform_keys;
    for (int i = 0; i < 500; ++i) {
      uniform_keys.push_back(UniformHash("key" + std::to_string(i), kKeyDepth));
    }
    Rng lookup_rng(seed_salt);
    HopStats hb = MeasureHops(&balanced, uniform_keys, &lookup_rng, kLookups);

    // (b) Adaptive trie over skewed keys (order-preserving hash of numeric
    // strings concentrates mass in the digit band).
    Overlay adaptive(n, kKeyDepth, 2);
    OrderPreservingHash oph(kKeyDepth);
    std::vector<Key> skewed_keys;
    for (int i = 0; i < 2000; ++i) {
      skewed_keys.push_back(oph(std::to_string(i)));
    }
    Rng rng_a(18);
    PGridBuilder::BuildAdaptive(adaptive.peers, skewed_keys, &rng_a);
    Rng lookup_rng2(seed_salt + 100);
    HopStats ha = MeasureHops(&adaptive, skewed_keys, &lookup_rng2, kLookups);

    std::printf("  %-7zu %7.1f | %7.2f %7.1f %7d | %7.2f %7.1f %7d\n", n,
                std::log2(double(n)), hb.mean, hb.p99, hb.max, ha.mean,
                ha.p99, ha.max);
    std::string row = "peers_" + std::to_string(n);
    json.Add(row + "/balanced", {{"mean_hops", hb.mean},
                                 {"p99_hops", hb.p99},
                                 {"max_hops", double(hb.max)}});
    json.Add(row + "/adaptive", {{"mean_hops", ha.mean},
                                 {"p99_hops", ha.p99},
                                 {"max_hops", double(ha.max)}});
  }
  std::printf("\n  (hops counted on the request path; 0 = issuer was "
              "responsible)\n");
  json.Finish();
  return 0;
}
