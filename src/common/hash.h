#ifndef GRIDVINE_COMMON_HASH_H_
#define GRIDVINE_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/key.h"

namespace gridvine {

/// 64-bit FNV-1a hash, the building block for the uniform hash.
uint64_t Fnv1a64(std::string_view data);

/// Murmur3 fmix64 finalizer. FNV-1a's raw bits avalanche poorly on short
/// inputs — anything consuming the hash as a uniform 64-bit value (key bits,
/// k-minimum-value order statistics) must mix first.
uint64_t Mix64(uint64_t h);

/// Maps `data` to a `depth`-bit Key with (approximately) uniform distribution.
/// Used where load balance matters more than order (e.g. replica salts).
Key UniformHash(std::string_view data, int depth);

/// The order-preserving hash Hash() of the paper (Section 2.2): maps strings
/// to binary keys such that s1 < s2 (lexicographically, case-insensitive on
/// ASCII) implies Hash(s1) <= Hash(s2). It works by interpreting the first
/// characters of the string as digits of a fraction in [0, 1) over a printable
/// alphabet and emitting the binary expansion of that fraction.
///
/// Order preservation lets the trie place lexicographically close data items
/// on nearby peers, enabling prefix/range-style constraints; the price is key
/// skew, which P-Grid's unbalanced trie absorbs (measured in experiment E7).
class OrderPreservingHash {
 public:
  /// `depth` is the number of key bits produced per call.
  explicit OrderPreservingHash(int depth) : depth_(depth) {}

  /// Hashes a string to a `depth()`-bit key.
  Key operator()(std::string_view data) const;

  /// The deepest key-space subtree that contains the keys of ALL strings
  /// starting with `value_prefix`: the common key prefix of the range's low
  /// bound (`value_prefix` padded with minimal characters) and high bound
  /// (padded with maximal ones). Order preservation makes "value LIKE
  /// 'abc%'" resolvable by multicasting to this subtree (possibly a slight
  /// superset of the exact interval).
  Key SubtreeFor(std::string_view value_prefix) const;

  int depth() const { return depth_; }

 private:
  int depth_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_HASH_H_
