#ifndef GRIDVINE_COMMON_TIMESERIES_H_
#define GRIDVINE_COMMON_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gridvine {

class MetricsRegistry;
class TraceView;

/// Windowed history of MetricsRegistry snapshots in *simulated* time: each
/// Record() call flattens the registry into (window_end, name, value) rows
/// appended to a bounded ring (oldest samples evicted first). This is the
/// storage behind the shell's `top` view and the timeseries.json artifact —
/// cheap enough to sample every few hundred simulated milliseconds, queried
/// rarely.
class MetricsTimeSeries {
 public:
  struct Sample {
    double t = 0;  ///< window end, simulated seconds
    std::string name;
    double value = 0;  ///< cumulative value at t (deltas are derived)
  };

  explicit MetricsTimeSeries(size_t capacity = 1 << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends one row per Flatten() metric, stamped `window_end`.
  void Record(double window_end, const MetricsRegistry& m);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  uint64_t evicted() const { return evicted_; }
  /// Number of distinct window timestamps recorded (and still buffered).
  size_t windows() const;
  double last_window_end() const {
    return samples_.empty() ? 0.0 : samples_.back().t;
  }

  const std::deque<Sample>& samples() const { return samples_; }

  /// The latest window's rows with per-window deltas (value - previous
  /// window's value for the same name; the value itself when the name is
  /// new). Sorted by descending |delta| then name — the `top` view.
  struct WindowRow {
    std::string name;
    double value = 0;
    double delta = 0;
  };
  std::vector<WindowRow> LatestWindow() const;

  /// The buffered values of one metric: (t, value) pairs, oldest first.
  std::vector<std::pair<double, double>> Series(std::string_view name) const;

  /// {"window_s": w, "samples": [{"t": .., "name": "..", "value": ..}, ..]}
  /// — the timeseries.json artifact schema scripts/validate_trace.py checks.
  std::string ToJson(double window_s) const;

 private:
  size_t capacity_;
  uint64_t evicted_ = 0;
  std::deque<Sample> samples_;
};

/// Evaluates invariant rules over consecutive metric windows and records
/// violations: counters under "health.*", an entry in violations(), and —
/// when a tracer is attached — a zero-duration "health.violation" trace
/// marker. Rules see the *delta* between the current cumulative snapshot
/// and the previous window's (except conservation, which is cumulative: a
/// message must be sent before it is delivered or dropped, at any horizon).
class HealthWatchdog {
 public:
  struct Options {
    /// Window retries / window sends above this fires "retry_spike"
    /// (needs at least retry_min_sends sends in the window).
    double retry_rate_threshold = 0.30;
    uint64_t retry_min_sends = 50;
    /// Window cache hit rate below this fires "cache_collapse" (needs at
    /// least cache_min_lookups lookups in the window, and only after some
    /// window has seen a hit — a cold cache is not a collapse).
    double cache_collapse_threshold = 0.05;
    uint64_t cache_min_lookups = 20;
    /// Window shed / window submitted above this fires "shed_rate".
    double shed_rate_threshold = 0.10;
    uint64_t shed_min_submitted = 10;
  };

  struct Violation {
    double window_end = 0;
    std::string rule;    ///< "conservation", "retry_spike", ...
    std::string detail;  ///< human-readable numbers
  };

  HealthWatchdog() = default;
  explicit HealthWatchdog(Options opts) : opts_(opts) {}

  /// Attaches the tracer that receives "health.violation" markers (may be
  /// null; only used while tracing is enabled).
  void SetTracer(TraceView* tracer) { tracer_ = tracer; }

  /// Evaluates every rule against `m` (a fresh cumulative snapshot) for the
  /// window ending at `window_end`, updates the "health.*" counters inside
  /// `m`, and returns how many violations this window produced.
  size_t Evaluate(double window_end, MetricsRegistry* m);

  const std::vector<Violation>& violations() const { return violations_; }
  /// Violations of one rule so far.
  uint64_t fired(std::string_view rule) const;
  size_t windows_evaluated() const { return windows_evaluated_; }

  /// Writes cumulative "health.violations" / "health.<rule>" counters.
  void PublishMetrics(MetricsRegistry* m) const;

 private:
  double Value(const std::map<std::string, double, std::less<>>& row,
               std::string_view name) const;
  void Fire(double window_end, std::string rule, std::string detail);

  Options opts_;
  TraceView* tracer_ = nullptr;
  std::vector<Violation> violations_;
  std::map<std::string, uint64_t, std::less<>> fired_;
  std::map<std::string, double, std::less<>> prev_;  ///< last window's values
  bool have_prev_ = false;
  bool cache_seen_hot_ = false;
  size_t windows_evaluated_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_TIMESERIES_H_
