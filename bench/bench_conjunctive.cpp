// Bind-join pushdown vs collect-then-join on a skewed selective-join
// workload: a handful of "gadget" entities (the selective pattern) joined
// against a wide w:size extent every entity contributes to. Collect mode
// ships the full extent of every pattern to the issuer; bind-join ships the
// running join's distinct keys out and only the matching rows back, so rows
// shipped should drop by the extent/selectivity ratio (the PR acceptance
// floor is 3x) and the message count should fall with it (one batched probe
// dispatch per destination key region instead of per-extent responses).
//
//   $ ./bench/bench_conjunctive
//   $ GV_ENTITIES=100 GV_QUERIES=8 ./bench/bench_conjunctive   # quicker
//   $ GV_BENCH_QUICK=1 ./bench/bench_conjunctive               # CI smoke
//
// Every query is also checked differentially: both modes must return the
// same result set, or the bench aborts.

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "trace_stats.h"
#include "gridvine/gridvine_network.h"
#include "store/binding_codec.h"

using namespace gridvine;

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? size_t(std::strtoull(v, nullptr, 10)) : fallback;
}

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

/// Skewed store: every entity has a w:size (the wide extent); one in
/// `selectivity` is a gadget (the selective extent); gadgets link around.
std::vector<Triple> MakeTriples(size_t entities, size_t selectivity,
                                Rng* rng) {
  std::vector<Triple> triples;
  for (size_t e = 0; e < entities; ++e) {
    Term subj = Term::Uri("w:e" + std::to_string(e));
    const bool gadget = e % selectivity == 0;
    triples.emplace_back(subj, Term::Uri("w:type"),
                         Term::Literal(gadget ? "gadget" : "widget"));
    triples.emplace_back(
        subj, Term::Uri("w:size"),
        Term::Literal(std::to_string(rng->UniformInt(1, 9))));
    if (gadget) {
      triples.emplace_back(
          subj, Term::Uri("w:link"),
          Term::Uri("w:e" + std::to_string(
                                rng->UniformInt(0, int64_t(entities) - 1))));
    }
  }
  return triples;
}

std::vector<ConjunctiveQuery> MakeQueries() {
  return {
      // Selective type pattern drives a bind-join into the wide size extent.
      ConjunctiveQuery(
          {"x", "l"},
          {P(Term::Var("x"), Term::Uri("w:type"), Term::Literal("gadget")),
           P(Term::Var("x"), Term::Uri("w:size"), Term::Var("l"))}),
      // Two hops: gadgets, their links, and the link targets' sizes.
      ConjunctiveQuery(
          {"x", "y", "l"},
          {P(Term::Var("x"), Term::Uri("w:type"), Term::Literal("gadget")),
           P(Term::Var("x"), Term::Uri("w:link"), Term::Var("y")),
           P(Term::Var("y"), Term::Uri("w:size"), Term::Var("l"))}),
      // No entity is a gizmo: binding propagation short-circuits after the
      // first scan and never dispatches into the wide size extent, while
      // collect mode ships the whole extent before discovering the join is
      // empty — the message-count gap of the two strategies.
      ConjunctiveQuery(
          {"x", "l"},
          {P(Term::Var("x"), Term::Uri("w:type"), Term::Literal("gizmo")),
           P(Term::Var("x"), Term::Uri("w:size"), Term::Var("l"))}),
  };
}

struct ModeStats {
  uint64_t rows_shipped = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double latency_sum = 0;
  size_t queries = 0;
  std::vector<std::set<std::string>> row_sets;
  std::vector<size_t> hops;     ///< per-query message flights, from traces
  std::vector<size_t> retries;  ///< per-query retry markers, from traces

  double MeanLatency() const {
    return queries == 0 ? 0 : latency_sum / double(queries);
  }
};

/// One full deployment + query run in the given mode. Same seed → identical
/// overlay, placement and data in both modes; only the executor differs.
ModeStats RunMode(bool bind_join, size_t entities, size_t selectivity,
                  size_t rounds, uint64_t seed) {
  GridVineNetwork::Options options;
  options.num_peers = 24;
  options.key_depth = 12;
  options.seed = seed;
  GridVineNetwork net(options);

  Rng data_rng(seed * 31 + 7);
  if (!net.InsertTriples(0, MakeTriples(entities, selectivity, &data_rng))
           .ok()) {
    std::fprintf(stderr, "data load failed\n");
    std::exit(1);
  }
  net.Settle();

  const uint64_t msg_before = net.network()->stats().messages_sent;
  const uint64_t bytes_before = net.network()->stats().bytes_sent;

  // Traced run == untraced run (span ids are a plain counter, no Rng draw),
  // so hop/retry extraction does not perturb the message counts above.
  net.tracer()->Enable(1 << 16);

  GridVinePeer::QueryOptions qopts;
  qopts.bind_join = bind_join;
  ModeStats stats;
  const auto queries = MakeQueries();
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& q : queries) {
      size_t issuer = (r * queries.size()) % net.size();
      net.tracer()->Clear();
      auto res = net.SearchForConjunctive(issuer, q, qopts);
      if (!res.status.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     res.status.ToString().c_str());
        std::exit(1);
      }
      auto ts = gridvine::bench::HopsAndRetries(net.tracer()->Snapshot(),
                                                res.trace_id);
      stats.hops.push_back(ts.hops);
      stats.retries.push_back(ts.retries);
      stats.rows_shipped += res.metrics.RowsShipped();
      stats.latency_sum += res.latency;
      ++stats.queries;
      std::set<std::string> rows;
      for (const auto& row : res.rows) rows.insert(SerializeBindings({row}));
      stats.row_sets.push_back(std::move(rows));
    }
  }
  stats.messages = net.network()->stats().messages_sent - msg_before;
  stats.bytes = net.network()->stats().bytes_sent - bytes_before;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_conjunctive");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const size_t kEntities = EnvOr("GV_ENTITIES", quick ? 80 : 400);
  const size_t kSelectivity = EnvOr("GV_SELECTIVITY", 20);
  const size_t kRounds = EnvOr("GV_QUERIES", quick ? 2 : 8);
  const uint64_t kSeed = EnvOr("GV_SEED", 42);

  std::printf("bind-join pushdown vs collect-then-join\n");
  std::printf("  entities=%zu selectivity=1/%zu rounds=%zu seed=%llu\n",
              kEntities, kSelectivity, kRounds, (unsigned long long)kSeed);

  ModeStats bind = RunMode(true, kEntities, kSelectivity, kRounds, kSeed);
  ModeStats collect = RunMode(false, kEntities, kSelectivity, kRounds, kSeed);

  // Differential gate: identical result sets, query by query.
  if (bind.row_sets != collect.row_sets) {
    std::fprintf(stderr, "DIFFERENTIAL MISMATCH: bind-join result sets "
                         "differ from collect-then-join\n");
    return 1;
  }

  const double row_ratio =
      bind.rows_shipped == 0
          ? 0
          : double(collect.rows_shipped) / double(bind.rows_shipped);
  std::printf("\n  %-24s %12s %12s\n", "metric", "bind-join", "collect");
  std::printf("  %-24s %12llu %12llu\n", "rows shipped",
              (unsigned long long)bind.rows_shipped,
              (unsigned long long)collect.rows_shipped);
  std::printf("  %-24s %12llu %12llu\n", "messages",
              (unsigned long long)bind.messages,
              (unsigned long long)collect.messages);
  std::printf("  %-24s %12llu %12llu\n", "bytes",
              (unsigned long long)bind.bytes,
              (unsigned long long)collect.bytes);
  std::printf("  %-24s %12.3f %12.3f\n", "mean latency (s)",
              bind.MeanLatency(), collect.MeanLatency());
  using gridvine::bench::CountPercentile;
  std::printf("  %-24s %12.0f %12.0f\n", "hops p50 (traced)",
              CountPercentile(bind.hops, 0.50),
              CountPercentile(collect.hops, 0.50));
  std::printf("  %-24s %12.0f %12.0f\n", "hops p99 (traced)",
              CountPercentile(bind.hops, 0.99),
              CountPercentile(collect.hops, 0.99));
  std::printf("  %-24s %12.0f %12.0f\n", "retries p99 (traced)",
              CountPercentile(bind.retries, 0.99),
              CountPercentile(collect.retries, 0.99));
  std::printf("\n  rows-shipped improvement: %.1fx (acceptance floor 3x)\n",
              row_ratio);
  std::printf("  differential check: %zu queries, result sets identical\n",
              bind.row_sets.size());

  json.Add("bind_join", {{"rows_shipped", double(bind.rows_shipped)},
                         {"messages", double(bind.messages)},
                         {"bytes", double(bind.bytes)},
                         {"mean_latency_s", bind.MeanLatency()},
                         {"hops_p50", CountPercentile(bind.hops, 0.50)},
                         {"hops_p90", CountPercentile(bind.hops, 0.90)},
                         {"hops_p99", CountPercentile(bind.hops, 0.99)},
                         {"retries_p99", CountPercentile(bind.retries, 0.99)}});
  json.Add("collect",
           {{"rows_shipped", double(collect.rows_shipped)},
            {"messages", double(collect.messages)},
            {"bytes", double(collect.bytes)},
            {"mean_latency_s", collect.MeanLatency()},
            {"hops_p50", CountPercentile(collect.hops, 0.50)},
            {"hops_p90", CountPercentile(collect.hops, 0.90)},
            {"hops_p99", CountPercentile(collect.hops, 0.99)},
            {"retries_p99", CountPercentile(collect.retries, 0.99)}});
  json.Add("summary", {{"rows_shipped_ratio", row_ratio},
                       {"message_delta",
                        double(collect.messages) - double(bind.messages)},
                       {"differential_ok", 1.0}});
  json.Finish();
  return 0;
}
