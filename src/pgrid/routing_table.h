#ifndef GRIDVINE_PGRID_ROUTING_TABLE_H_
#define GRIDVINE_PGRID_ROUTING_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "sim/network.h"

namespace gridvine {

/// Read-only view over one level's references (or the replica set): a
/// pointer + length into the table's contiguous slot array. Iterable and
/// indexable like the std::vector it replaced; invalidated by any mutation
/// of the table, so don't hold one across AddRef/RemoveRef/SetPath.
class RefSpan {
 public:
  using value_type = NodeId;

  RefSpan() = default;
  RefSpan(const NodeId* data, size_t size) : data_(data), size_(size) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  const NodeId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](size_t i) const { return data_[i]; }

 private:
  const NodeId* data_ = nullptr;
  size_t size_ = 0;
};

/// A P-Grid peer's routing state: for each level l of its path π(p), a set of
/// references to peers whose paths share the first l bits of π(p) and differ
/// at bit l (the "complementary subtree" at that level), plus the replica set
/// σ(p) of peers with the same path.
///
/// The level-wise invariant is exactly what makes greedy prefix routing
/// resolve any key in at most |π(p)| forwards.
///
/// Layout: one contiguous NodeId array of `levels * max_refs_per_level`
/// fixed-width blocks plus a byte of occupancy per level — two heap
/// allocations per peer total (vs. one vector header + one heap block per
/// level before). At 4 refs/level a 20-level table is 320 B of ids + 20
/// count bytes, and a simulation holding a million of these keeps them in
/// ~400 MB instead of several GB of malloc'd node fragments. The level cap
/// is bounded at 255 so counts fit a byte.
class RoutingTable {
 public:
  /// `max_refs_per_level` caps fan-out; additional refs are ignored. More
  /// refs give routing more alternatives under churn at modest memory cost.
  explicit RoutingTable(int max_refs_per_level = 4)
      : max_refs_per_level_(
            max_refs_per_level < 1
                ? 1
                : (max_refs_per_level > 255 ? 255 : max_refs_per_level)) {}

  /// Sets the owning peer's path; resizes the level structure and drops refs
  /// that became inconsistent with the new path (those at levels >= length
  /// never existed; levels shorten only during re-balancing).
  void SetPath(const Key& path);
  const Key& path() const { return path_; }

  /// Adds a reference at `level` (0-based bit index into the path); ignored
  /// when the level is out of range, the table is full at that level, or the
  /// ref is a duplicate. Returns true if stored.
  bool AddRef(int level, NodeId id);

  /// Removes a reference wherever it appears (e.g. observed dead).
  void RemoveRef(NodeId id);

  /// Drops every reference and replica link (used when the peer's region is
  /// reassigned wholesale and existing links no longer satisfy the
  /// complementary-subtree invariant).
  void ClearLinks();

  /// View of level `level`'s refs (empty for out-of-range levels).
  /// Invalidated by any table mutation.
  RefSpan RefsAt(int level) const;

  /// Picks the next hop for `key`: the divergence level l of `key` against
  /// π(p) selects the ref list; a uniformly random entry is returned (random
  /// choice spreads load over alternatives and lets retries explore different
  /// paths under churn). Excludes `exclude` if other options exist.
  /// Returns nullopt when the key belongs to this peer's subtree or no ref
  /// is known at the divergence level. Allocation-free.
  std::optional<NodeId> NextHop(const Key& key, Rng* rng,
                                NodeId exclude = kInvalidNode) const;

  /// Divergence level of `key` against the path, or path length if the key
  /// lies in this peer's subtree.
  int DivergenceLevel(const Key& key) const;

  void AddReplica(NodeId id);
  void RemoveReplica(NodeId id);
  const std::vector<NodeId>& replicas() const { return replicas_; }

  int levels() const { return static_cast<int>(counts_.size()); }
  int max_refs_per_level() const { return max_refs_per_level_; }

  /// Total number of stored references across levels.
  size_t TotalRefs() const;

  /// Bytes of heap behind this table (slot array, counts, replicas, path),
  /// by capacity.
  size_t MemoryFootprint() const;

 private:
  NodeId* LevelBlock(int level) {
    return slots_.data() + size_t(level) * size_t(max_refs_per_level_);
  }
  const NodeId* LevelBlock(int level) const {
    return slots_.data() + size_t(level) * size_t(max_refs_per_level_);
  }

  int max_refs_per_level_;
  Key path_;
  /// Fixed-width blocks, one per level: slots_[l*cap .. l*cap+counts_[l]).
  std::vector<NodeId> slots_;
  std::vector<uint8_t> counts_;
  std::vector<NodeId> replicas_;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_ROUTING_TABLE_H_
