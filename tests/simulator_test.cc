#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace gridvine {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.Now());
    if (times.size() < 5) sim.Schedule(1.0, tick);
  };
  sim.Schedule(1.0, tick);
  sim.Run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 5.0);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(2.0, [&] {
    bool ran = false;
    sim.Schedule(-5.0, [&ran] { ran = true; });
    // Nested event must still run at >= current time.
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1.0, [&] { ++ran; });
  sim.Schedule(2.0, [&] { ++ran; });
  sim.Schedule(5.0, [&] { ++ran; });
  size_t n = sim.RunUntil(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.5);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunWithEventBudget) {
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 10; ++i) sim.Schedule(double(i), [&] { ++ran; });
  EXPECT_EQ(sim.Run(4), 4u);
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(SimulatorTest, ExecutedCounterAccumulates) {
  Simulator sim;
  sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 2u);
  sim.Schedule(3, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1;
  sim.ScheduleAt(7.5, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

}  // namespace
}  // namespace gridvine
