#include "pgrid/routing_table.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

Key K(const std::string& bits) { return Key::FromBits(bits).value(); }

TEST(RoutingTableTest, SetPathSizesLevels) {
  RoutingTable rt(2);
  EXPECT_EQ(rt.levels(), 0);
  rt.SetPath(K("0101"));
  EXPECT_EQ(rt.levels(), 4);
  EXPECT_EQ(rt.path(), K("0101"));
}

TEST(RoutingTableTest, AddRefRespectsCapAndDedup) {
  RoutingTable rt(2);
  rt.SetPath(K("00"));
  EXPECT_TRUE(rt.AddRef(0, 1));
  EXPECT_FALSE(rt.AddRef(0, 1));  // duplicate
  EXPECT_TRUE(rt.AddRef(0, 2));
  EXPECT_FALSE(rt.AddRef(0, 3));  // over cap
  EXPECT_EQ(rt.RefsAt(0).size(), 2u);
  EXPECT_FALSE(rt.AddRef(5, 9));  // out of range
  EXPECT_FALSE(rt.AddRef(-1, 9));
  EXPECT_EQ(rt.TotalRefs(), 2u);
}

TEST(RoutingTableTest, RemoveRefEverywhere) {
  RoutingTable rt(4);
  rt.SetPath(K("00"));
  rt.AddRef(0, 7);
  rt.AddRef(1, 7);
  rt.AddRef(1, 8);
  rt.RemoveRef(7);
  EXPECT_TRUE(rt.RefsAt(0).empty());
  EXPECT_EQ(rt.RefsAt(1).size(), 1u);
}

TEST(RoutingTableTest, DivergenceLevel) {
  RoutingTable rt(2);
  rt.SetPath(K("0101"));
  EXPECT_EQ(rt.DivergenceLevel(K("1000")), 0);
  EXPECT_EQ(rt.DivergenceLevel(K("0001")), 1);
  EXPECT_EQ(rt.DivergenceLevel(K("0111")), 2);
  EXPECT_EQ(rt.DivergenceLevel(K("0100")), 3);
  // Keys in our subtree (path prefixes key) => path length.
  EXPECT_EQ(rt.DivergenceLevel(K("01010")), 4);
  EXPECT_EQ(rt.DivergenceLevel(K("0101")), 4);
  // Short key that prefixes the path is also "ours".
  EXPECT_EQ(rt.DivergenceLevel(K("01")), 4);
}

TEST(RoutingTableTest, NextHopPicksDivergenceLevelRef) {
  RoutingTable rt(2);
  rt.SetPath(K("0101"));
  rt.AddRef(0, 10);
  rt.AddRef(2, 20);
  Rng rng(1);
  auto hop = rt.NextHop(K("1111"), &rng);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 10u);
  hop = rt.NextHop(K("0110"), &rng);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 20u);
}

TEST(RoutingTableTest, NextHopNulloptForOwnSubtreeOrMissingRef) {
  RoutingTable rt(2);
  rt.SetPath(K("0101"));
  rt.AddRef(0, 10);
  Rng rng(1);
  EXPECT_FALSE(rt.NextHop(K("01011"), &rng).has_value());  // local
  EXPECT_FALSE(rt.NextHop(K("0001"), &rng).has_value());   // no ref at lvl 1
}

TEST(RoutingTableTest, NextHopAvoidsExcludedWhenPossible) {
  RoutingTable rt(4);
  rt.SetPath(K("0"));
  rt.AddRef(0, 1);
  rt.AddRef(0, 2);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto hop = rt.NextHop(K("1"), &rng, /*exclude=*/1);
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(*hop, 2u);
  }
  // When the excluded ref is the only one, it is still used.
  RoutingTable rt2(4);
  rt2.SetPath(K("0"));
  rt2.AddRef(0, 1);
  auto hop = rt2.NextHop(K("1"), &rng, /*exclude=*/1);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 1u);
}

TEST(RoutingTableTest, NextHopAvoidingSkipsWholeTriedSet) {
  RoutingTable rt(4);
  rt.SetPath(K("0"));
  rt.AddRef(0, 1);
  rt.AddRef(0, 2);
  rt.AddRef(0, 3);
  Rng rng(1);
  // With two hops already tried, every retry must land on the one survivor —
  // the single-exclude behaviour would happily re-pick `tried[0]`.
  const NodeId tried[] = {1, 3};
  for (int i = 0; i < 20; ++i) {
    auto hop = rt.NextHopAvoiding(K("1"), &rng, tried, 2);
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(*hop, 2u);
  }
  // All refs tried: falls back to avoiding only the most recent attempt.
  const NodeId all_tried[] = {1, 2, 3};
  for (int i = 0; i < 20; ++i) {
    auto hop = rt.NextHopAvoiding(K("1"), &rng, all_tried, 3);
    ASSERT_TRUE(hop.has_value());
    EXPECT_NE(*hop, 3u);
  }
  // Single ref, already tried: still returns it rather than stalling.
  RoutingTable rt2(4);
  rt2.SetPath(K("0"));
  rt2.AddRef(0, 5);
  const NodeId tried5[] = {5};
  auto hop = rt2.NextHopAvoiding(K("1"), &rng, tried5, 1);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 5u);
}

TEST(RoutingTableTest, NextHopAvoidingMatchesNextHopForOneExclude) {
  // Draw-for-draw parity with single-exclude NextHop when |tried| <= 1, so
  // enabling the failover path does not perturb seeded runs that never retry
  // more than once.
  RoutingTable a(4), b(4);
  for (RoutingTable* rt : {&a, &b}) {
    rt->SetPath(K("0101"));
    rt->AddRef(0, 1);
    rt->AddRef(0, 2);
    rt->AddRef(0, 3);
    rt->AddRef(2, 7);
  }
  Rng ra(99), rb(99);
  for (int i = 0; i < 50; ++i) {
    const NodeId ex = NodeId(i % 4);  // cycles through refs and a non-ref
    auto ha = a.NextHop(K("1111"), &ra, ex);
    auto hb = b.NextHopAvoiding(K("1111"), &rb, &ex, 1);
    ASSERT_TRUE(ha.has_value());
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(*ha, *hb) << "i=" << i;
  }
  for (int i = 0; i < 50; ++i) {
    auto ha = a.NextHop(K("1111"), &ra);
    auto hb = b.NextHopAvoiding(K("1111"), &rb, nullptr, 0);
    ASSERT_TRUE(ha.has_value());
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(*ha, *hb) << "i=" << i;
  }
}

/// Reference model of the pre-flattening layout (one vector per level) used
/// to differentially test the contiguous-block implementation under random
/// operation sequences.
struct NestedModel {
  int cap;
  Key path;
  std::vector<std::vector<NodeId>> levels;

  explicit NestedModel(int max_refs) : cap(max_refs) {}

  void SetPath(const Key& p) {
    path = p;
    levels.resize(size_t(p.length()));
    // Growing adds empty levels; shrinking drops truncated ones — matched to
    // RoutingTable::SetPath semantics.
  }
  bool AddRef(int level, NodeId id) {
    if (level < 0 || level >= int(levels.size())) return false;
    auto& refs = levels[size_t(level)];
    if (int(refs.size()) >= cap) return false;
    for (NodeId r : refs) {
      if (r == id) return false;
    }
    refs.push_back(id);
    return true;
  }
  void RemoveRef(NodeId id) {
    for (auto& refs : levels) {
      refs.erase(std::remove(refs.begin(), refs.end(), id), refs.end());
    }
  }
  void ClearLinks() {
    for (auto& refs : levels) refs.clear();
  }
};

TEST(RoutingTableTest, DifferentialAgainstNestedModel) {
  Rng rng(20240809);
  for (int trial = 0; trial < 30; ++trial) {
    const int cap = int(rng.UniformInt(1, 5));
    RoutingTable flat(cap);
    NestedModel model(cap);
    auto random_path = [&](int len) {
      std::string bits;
      for (int i = 0; i < len; ++i) bits += rng.Bernoulli(0.5) ? '1' : '0';
      return Key::FromBits(bits).value();
    };
    Key p = random_path(int(rng.UniformInt(1, 12)));
    flat.SetPath(p);
    model.SetPath(p);

    for (int op = 0; op < 300; ++op) {
      switch (rng.UniformInt(0, 9)) {
        case 0: {  // re-path (grow or shrink)
          Key np = random_path(int(rng.UniformInt(1, 12)));
          flat.SetPath(np);
          model.SetPath(np);
          break;
        }
        case 1: {
          NodeId victim = NodeId(rng.UniformInt(0, 30));
          flat.RemoveRef(victim);
          model.RemoveRef(victim);
          break;
        }
        case 2:
          if (rng.Bernoulli(0.1)) {
            flat.ClearLinks();
            model.ClearLinks();
          }
          break;
        default: {  // mostly adds, often duplicates / over-capacity
          int level = int(rng.UniformInt(0, std::max(0, flat.levels() - 1)));
          NodeId id = NodeId(rng.UniformInt(0, 30));
          EXPECT_EQ(flat.AddRef(level, id), model.AddRef(level, id));
          break;
        }
      }
      // Full structural equivalence after every op: same levels, and each
      // level holds the same refs in the same order.
      ASSERT_EQ(flat.levels(), int(model.levels.size()));
      size_t total = 0;
      for (int l = 0; l < flat.levels(); ++l) {
        RefSpan refs = flat.RefsAt(l);
        const auto& expect = model.levels[size_t(l)];
        ASSERT_EQ(refs.size(), expect.size()) << "level " << l;
        for (size_t i = 0; i < refs.size(); ++i) {
          ASSERT_EQ(refs[i], expect[i]) << "level " << l << " slot " << i;
        }
        total += refs.size();
      }
      ASSERT_EQ(flat.TotalRefs(), total);
    }
  }
}

TEST(RoutingTableTest, NextHopPickIsSeedStable) {
  // Two identical tables given identical rngs must make identical picks —
  // the property that kept the flattening invisible to seeded experiments.
  auto build = [] {
    RoutingTable rt(4);
    rt.SetPath(K("0110"));
    rt.AddRef(0, 1);
    rt.AddRef(0, 2);
    rt.AddRef(0, 3);
    rt.AddRef(1, 4);
    rt.AddRef(2, 5);
    rt.AddRef(2, 6);
    return rt;
  };
  RoutingTable a = build();
  RoutingTable b = build();
  Rng ra(42), rb(42);
  for (int i = 0; i < 50; ++i) {
    Key target = i % 2 ? K("1") : K("0111");
    auto ha = a.NextHop(target, &ra, /*exclude=*/NodeId(i % 4));
    auto hb = b.NextHop(target, &rb, /*exclude=*/NodeId(i % 4));
    ASSERT_EQ(ha.has_value(), hb.has_value());
    if (ha) ASSERT_EQ(*ha, *hb);
  }
}

TEST(RoutingTableTest, MemoryFootprintTracksCapacity) {
  RoutingTable rt(4);
  size_t empty = rt.MemoryFootprint();
  rt.SetPath(K("01010101010101010101"));  // 20 levels
  size_t with_path = rt.MemoryFootprint();
  // 20 levels * 4 refs * 4 bytes of ids plus a count byte per level.
  EXPECT_GE(with_path, empty + 20 * 4 * sizeof(NodeId) + 20);
}

TEST(RoutingTableTest, ReplicaSetDedupAndRemove) {
  RoutingTable rt(2);
  rt.SetPath(K("01"));
  rt.AddReplica(5);
  rt.AddReplica(5);
  rt.AddReplica(6);
  EXPECT_EQ(rt.replicas().size(), 2u);
  rt.RemoveReplica(5);
  EXPECT_EQ(rt.replicas().size(), 1u);
  EXPECT_EQ(rt.replicas()[0], 6u);
}

}  // namespace
}  // namespace gridvine
