#ifndef GRIDVINE_QUERY_EXEC_BIND_H_
#define GRIDVINE_QUERY_EXEC_BIND_H_

#include <string>
#include <vector>

#include "rdf/triple_pattern.h"
#include "store/triple_store.h"

namespace gridvine {

/// Substitutes `bindings` into `pattern`: every variable position whose
/// variable is bound becomes that constant. Unbound variables stay.
TriplePattern SubstituteBindings(const TriplePattern& pattern,
                                 const BindingSet& bindings);

/// The subset of `row` covering exactly the variables in `vars` (missing
/// variables are skipped).
BindingSet RestrictTo(const BindingSet& row,
                      const std::vector<std::string>& vars);

/// The variables of `pattern` that `row` binds — the join columns a
/// bind-join probes on.
std::vector<std::string> SharedVars(const TriplePattern& pattern,
                                    const BindingSet& row);

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_EXEC_BIND_H_
