#include "rdf/term_dictionary.h"

namespace gridvine {

namespace {
Term MakeTerm(TermKind kind, std::string_view value) {
  switch (kind) {
    case TermKind::kUri: return Term::Uri(std::string(value));
    case TermKind::kLiteral: return Term::Literal(std::string(value));
    case TermKind::kVariable: return Term::Var(std::string(value));
  }
  return Term();
}
}  // namespace

size_t TermDictionary::FindBucket(TermKind kind,
                                  std::string_view value) const {
  const size_t mask = buckets_.size() - 1;
  size_t b = HashOf(kind, value) & mask;
  while (buckets_[b] != kNoTermId && !EntryEquals(buckets_[b], kind, value)) {
    b = (b + 1) & mask;
  }
  return b;
}

void TermDictionary::Grow() {
  const size_t new_size = buckets_.empty() ? 16 : buckets_.size() * 2;
  buckets_.assign(new_size, kNoTermId);
  const size_t mask = new_size - 1;
  for (TermId id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    size_t b = HashOf(e.kind, std::string_view(e.chars, e.len)) & mask;
    while (buckets_[b] != kNoTermId) b = (b + 1) & mask;
    buckets_[b] = id;
  }
}

TermId TermDictionary::Intern(const Term& term) {
  if (buckets_.empty() || entries_.size() * 10 >= buckets_.size() * 7) Grow();
  const size_t b = FindBucket(term.kind(), term.value());
  if (buckets_[b] != kNoTermId) return buckets_[b];
  const std::string_view stored = arena_.CopyString(term.value());
  const TermId id = static_cast<TermId>(entries_.size());
  entries_.push_back(
      Entry{stored.data(), static_cast<uint32_t>(stored.size()), term.kind()});
  buckets_[b] = id;
  return id;
}

std::optional<TermId> TermDictionary::Lookup(const Term& term) const {
  if (buckets_.empty()) return std::nullopt;
  const size_t b = FindBucket(term.kind(), term.value());
  if (buckets_[b] == kNoTermId) return std::nullopt;
  return buckets_[b];
}

Term TermDictionary::Decode(TermId id) const {
  const Entry& e = entries_[id];
  return MakeTerm(e.kind, std::string_view(e.chars, e.len));
}

void TermDictionary::Clear() {
  entries_.clear();
  buckets_.clear();
  arena_.Reset();
}

}  // namespace gridvine
