#ifndef GRIDVINE_MAPPING_MAPPING_GRAPH_H_
#define GRIDVINE_MAPPING_MAPPING_GRAPH_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "mapping/schema_mapping.h"

namespace gridvine {

/// The directed graph whose nodes are schemas and whose edges are
/// (non-deprecated) schema mappings — the structure the self-organization
/// machinery of Section 3 reasons about. A bidirectional mapping contributes
/// an edge in each direction.
///
/// The graph is a *view* a peer assembles (e.g. the connectivity-monitoring
/// peer, or an experiment harness); it stores refcounted interned mappings
/// (MappingPool()), so a thousand peers assembling the same graph share one
/// object per mapping. Deprecation swaps in a re-interned variant rather
/// than mutating the shared object.
class MappingGraph {
 public:
  /// Observer for edge-set changes, fired synchronously *after* the change
  /// is applied (the graph already reflects it when the callback runs). The
  /// incremental mapping assessor subscribes here to maintain its cycle
  /// factor graph without re-enumerating from scratch every round.
  class Listener {
   public:
    virtual ~Listener() = default;
    /// A mapping id not previously present was added.
    virtual void OnMappingAdded(const MappingGraph& graph,
                                const std::string& id) = 0;
    /// AddMapping replaced an existing id with *different* content
    /// (re-intern): correspondences, confidence, deprecation flag or
    /// endpoints changed under the same id.
    virtual void OnMappingReplaced(const MappingGraph& graph,
                                   const std::string& id) = 0;
    /// A previously-active mapping was marked deprecated via Deprecate().
    virtual void OnMappingDeprecated(const MappingGraph& graph,
                                     const std::string& id) = 0;
    /// A mapping was removed entirely.
    virtual void OnMappingRemoved(const MappingGraph& graph,
                                  const std::string& id) = 0;
  };

  MappingGraph() = default;

  void AddSchema(const std::string& name);
  /// Adds or replaces a mapping (keyed by id). Schemas are added implicitly.
  /// Re-adding a mapping whose serialized content is unchanged is a no-op:
  /// no version bump, no listener event — so periodically re-syncing a view
  /// from fetched records does not invalidate dependent caches.
  void AddMapping(const SchemaMapping& mapping);
  /// Removes a mapping entirely; true if present.
  bool RemoveMapping(const std::string& id);
  /// Marks a mapping deprecated (kept, but excluded from edges/paths).
  bool Deprecate(const std::string& id);

  /// At most one listener; pass nullptr to detach. The listener must outlive
  /// the graph or be detached first.
  void SetListener(Listener* listener) { listener_ = listener; }

  /// Monotonic counter bumped by every edge-set change (AddMapping with new
  /// or changed content, RemoveMapping, first Deprecate). Lets derived
  /// structures — notably the ReformulationCache — detect staleness with a
  /// single integer compare.
  uint64_t version() const { return version_; }

  Result<SchemaMapping> Get(const std::string& id) const;
  /// The shared immutable object for `id`, or null. No copy.
  std::shared_ptr<const SchemaMapping> GetShared(const std::string& id) const;
  bool Contains(const std::string& id) const;

  std::vector<std::string> Schemas() const;
  size_t schema_count() const { return schemas_.size(); }
  /// Number of non-deprecated mappings.
  size_t active_mapping_count() const;
  size_t mapping_count() const { return mappings_.size(); }

  /// Non-deprecated mappings usable to reformulate *from* `schema`
  /// (including reversed bidirectional ones; those have id "<id>~rev").
  std::vector<SchemaMapping> MappingsFrom(const std::string& schema) const;

  /// In/out degree of a schema counting non-deprecated directed edges.
  int InDegree(const std::string& schema) const;
  int OutDegree(const std::string& schema) const;

  /// Shortest directed path of mappings from `src` to `dst` (BFS), at most
  /// `max_hops` edges. Returns the mappings along the path, empty when
  /// src == dst. NotFound when unreachable.
  Result<std::vector<SchemaMapping>> FindPath(const std::string& src,
                                              const std::string& dst,
                                              int max_hops) const;

  /// All simple directed cycles that start by traversing mapping `id` and
  /// return to its source schema, up to `max_len` edges total. Each cycle is
  /// the edge id sequence. Used by the Bayesian cycle analysis.
  std::vector<std::vector<std::string>> CyclesThrough(const std::string& id,
                                                      int max_len) const;

  /// Fraction of schemas inside the largest strongly connected component
  /// (Tarjan). 1.0 means any schema can reach any other — the paper's
  /// "global interoperability" target.
  double LargestSccFraction() const;

  /// True if every schema can reach every other (LargestSccFraction == 1).
  bool IsStronglyConnected() const;

  /// Degree pairs (in, out) per schema — input to the connectivity
  /// indicator of Section 3.1.
  std::vector<std::pair<int, int>> DegreeSequence() const;

  /// Bytes owned by this view (node names, ref map); shared mapping objects
  /// are accounted in MappingPool().
  size_t MemoryFootprint() const;

 private:
  struct Edge {
    std::string mapping_id;
    std::string from;
    std::string to;
    bool reversed;  // traversal of a bidirectional mapping backwards
  };

  /// Non-deprecated directed edges.
  std::vector<Edge> ActiveEdges() const;

  std::set<std::string> schemas_;
  std::map<std::string, std::shared_ptr<const SchemaMapping>> mappings_;
  uint64_t version_ = 0;
  Listener* listener_ = nullptr;
};

}  // namespace gridvine

#endif  // GRIDVINE_MAPPING_MAPPING_GRAPH_H_
