#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace gridvine {

void Simulator::ScheduleAt(SimTime t, EventFn fn) {
  ScheduleKeyedAt(t, next_seq_++, std::move(fn));
}

void Simulator::ScheduleKeyedAt(SimTime t, uint64_t subkey, EventFn fn) {
  if (t < now_) t = now_;
  t += 0.0;  // normalize -0.0 to +0.0 so the bit-pattern key orders correctly
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  Push(MakeEntry(t, subkey, slot));
}

SimTime Simulator::NextEventTime() const {
  return heap_.empty() ? std::numeric_limits<SimTime>::infinity()
                       : heap_.front().time();
}

bool Simulator::PopBefore(SimTime horizon, uint64_t* subkey, EventFn* fn) {
  if (heap_.empty() || heap_.front().time() >= horizon) return false;
  *subkey = static_cast<uint64_t>(heap_.front().key);
  *fn = PopMin();
  ++executed_;
  return true;
}

void Simulator::Push(HeapEntry ev) {
  size_t i = heap_.size();
  heap_.emplace_back();  // hole; filled below after parents shift down
  while (i > 0) {
    size_t parent = (i - 1) >> 2;
    if (ev.key >= heap_[parent].key) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

EventFn Simulator::PopMin() {
  const HeapEntry min = heap_.front();
  now_ = min.time();
  // Release the slot before the sift: fn may re-schedule from inside its
  // call, and the freshly freed slot is the warmest one to hand back.
  EventFn fn = std::move(slots_[min.slot]);
  free_slots_.push_back(min.slot);

  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root, moving the smallest child up into the
    // hole at each level; `last` itself is written exactly once. The
    // min-of-four scan is a cmov-friendly tournament (no data-dependent
    // branches) in the common interior-node case.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      size_t child = 4 * i + 1;
      if (child >= n) break;
      size_t best;
      if (child + 4 <= n) {
        size_t b01 = heap_[child + 1].key < heap_[child].key ? child + 1
                                                             : child;
        size_t b23 = heap_[child + 3].key < heap_[child + 2].key ? child + 3
                                                                 : child + 2;
        best = heap_[b23].key < heap_[b01].key ? b23 : b01;
      } else {
        best = child;
        for (size_t c = child + 1; c < n; ++c) {
          best = heap_[c].key < heap_[best].key ? c : best;
        }
      }
      if (heap_[best].key >= last.key) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return fn;
}

size_t Simulator::Run(size_t max_events) {
  size_t ran = 0;
  while (!heap_.empty() && ran < max_events) {
    // The callable is moved out before it fires: fn may schedule new events,
    // which reshapes (and can reallocate) the heap and slot pool.
    EventFn fn = PopMin();
    fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

size_t Simulator::RunUntil(SimTime t) {
  size_t ran = 0;
  while (!heap_.empty() && heap_.front().time() <= t) {
    EventFn fn = PopMin();
    fn();
    ++ran;
    ++executed_;
  }
  if (now_ < t) now_ = t;
  return ran;
}

size_t Simulator::RunUntilFlag(const bool* done) {
  size_t ran = 0;
  while (!*done && !heap_.empty()) {
    EventFn fn = PopMin();
    fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

}  // namespace gridvine
