#include "store/ntriples_loader.h"

#include "rdf/ntriples.h"

namespace gridvine {

Result<size_t> LoadNTriples(const std::string& text, TripleStore* store) {
  GV_ASSIGN_OR_RETURN(auto triples, ParseNTriples(text));
  GV_RETURN_NOT_OK(store->InsertBatch(triples));
  return triples.size();
}

}  // namespace gridvine
